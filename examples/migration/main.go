// Migration: an HTTP-serving VM starts at the far SIAT site and is
// live-migrated to HKU while a client keeps requesting — the demo of
// the paper's central capability (Figures 5, 9, 10). Watch the
// connection time collapse and the throughput jump after the move.
package main

import (
	"fmt"
	"log"
	"time"

	"wavnet"
)

func main() {
	world, err := wavnet.NewRealWAN(42)
	if err != nil {
		log.Fatal(err)
	}
	if err := world.WAVNetUp("HKU1", "HKU2", "SIAT"); err != nil {
		log.Fatal(err)
	}
	ip, _ := wavnet.ParseIP("10.77.0.10")
	v := wavnet.NewVM(world.M("SIAT").WAV, "httpd", ip, wavnet.VMConfig{MemoryMB: 64, DirtyRate: 300})
	if err := wavnet.StartHTTPServer(v.Stack(), 80); err != nil {
		log.Fatal(err)
	}

	client := world.M("HKU1").Dom0()
	// Ping + HTTP load for two minutes; migrate after 15 s.
	ping, _ := wavnet.StartPinger(client, v.IP(), 500*time.Millisecond, 2*time.Minute)
	ab := wavnet.StartAB(client, wavnet.Addr{IP: v.IP(), Port: 80}, 1024, 50, 2*time.Minute, 5*time.Second)

	var rep *wavnet.MigrationReport
	world.Eng.Spawn("migrate", func(p *wavnet.Proc) {
		p.Sleep(15 * time.Second)
		var err error
		rep, err = v.Migrate(p, world.M("HKU2").WAV)
		if err != nil {
			log.Fatal(err)
		}
	})
	world.Eng.RunFor(4 * time.Minute)

	fmt.Printf("migration %s -> %s: total %.1fs over %d pre-copy rounds, downtime %.2fs, %d MB moved\n",
		rep.From, rep.To, rep.Total().Seconds(), rep.Rounds, rep.Downtime.Seconds(), rep.BytesSent>>20)
	fmt.Printf("ICMP: %d probes, %d lost during the move\n", ping.Sent, len(ping.Losses))
	fmt.Println("HTTP throughput timeline (5 s windows):")
	for _, s := range ab.ThroughputSeries.Samples {
		bar := int(s.Value / 40)
		fmt.Printf("  t=%6.1fs %7.1f req/s %s\n", s.At.Seconds(), s.Value, barOf(bar))
	}
}

func barOf(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
