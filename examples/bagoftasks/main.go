// Bagoftasks: the paper's motivating workload (§I) end-to-end — a
// Bag-of-Tasks master farms work out to a virtual cluster over WAVNet
// tunnels. Worker selection matters: a cluster picked by the
// locality-sensitive grouping strategy (paper §II.D) finishes the same
// bag faster than a randomly picked one, because task inputs and
// outputs ride the virtual LAN.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"wavnet"
)

func main() {
	// A two-region WAN: four machines near the hub (campus scale) and
	// four far away (trans-Pacific scale), all behind NATs.
	var specs []wavnet.Spec
	for i := 0; i < 4; i++ {
		specs = append(specs, wavnet.Spec{
			Key: fmt.Sprintf("near%d", i), RTTToHub: time.Duration(1+i) * time.Millisecond,
			AccessBps: 100e6, NAT: wavnet.NATFullCone,
		})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, wavnet.Spec{
			Key: fmt.Sprintf("far%d", i), RTTToHub: time.Duration(90+10*i) * time.Millisecond,
			AccessBps: 30e6, NAT: wavnet.NATPortRestrictedCone,
		})
	}
	world, err := wavnet.NewWorld(1, specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual LAN up: %d machines, full tunnel mesh\n", len(world.Machines))

	// Measure the tunnel RTT matrix (what the distance locator would
	// accumulate from host reports).
	n := len(world.Machines)
	rtts := make([][]wavnet.Duration, n)
	for i := range rtts {
		rtts[i] = make([]wavnet.Duration, n)
	}
	world.Eng.Spawn("measure", func(p *wavnet.Proc) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				rtt, err := world.Machines[i].WAV.TunnelRTT(p, world.Machines[j].Key)
				if err != nil {
					log.Fatalf("rtt %s-%s: %v", world.Machines[i].Key, world.Machines[j].Key, err)
				}
				rtts[i][j], rtts[j][i] = rtt, rtt
			}
		}
	})
	world.Eng.RunFor(2 * time.Minute)

	// The master runs on near0; every other machine offers a worker.
	master := world.M("near0").Dom0()
	candidates := world.Machines[1:]
	for _, m := range candidates {
		if _, err := wavnet.StartBagWorker(m.Dom0(), 9000, 1.0); err != nil {
			log.Fatal(err)
		}
	}

	// Grouping runs on the candidate submatrix (the master is fixed).
	sub := make([][]wavnet.Duration, len(candidates))
	for i := range candidates {
		sub[i] = make([]wavnet.Duration, len(candidates))
		for j := range candidates {
			sub[i][j] = rtts[i+1][j+1]
		}
	}

	// The bag: 24 tasks, 2 MB in / 64 KB out, 1.5 s of compute each.
	bag := wavnet.UniformBag(24, 2<<20, 64<<10, 1500*time.Millisecond)

	const k = 3
	loc, err := wavnet.GroupLocality(sub, k)
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := wavnet.GroupRandom(sub, k, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}

	for _, sel := range []struct {
		name  string
		group []int
	}{{"locality-sensitive", loc}, {"random", rnd}} {
		var workers []wavnet.Addr
		var names []string
		for _, idx := range sel.group {
			m := candidates[idx]
			workers = append(workers, wavnet.Addr{IP: m.VIP, Port: 9000})
			names = append(names, m.Key)
		}
		var run *wavnet.BagRun
		world.Eng.Spawn("bag", func(p *wavnet.Proc) {
			r, err := wavnet.ExecuteBag(p, master, workers, bag, wavnet.BagOptions{LanesPerWorker: 2})
			if err != nil {
				log.Fatal(err)
			}
			run = r
		})
		world.Eng.RunFor(time.Hour)
		fmt.Printf("\n%-19s cluster %v\n", sel.name, names)
		fmt.Printf("  group mean RTT %.1f ms, makespan %.1f s\n",
			float64(wavnet.GroupMeanLatency(sub, sel.group))/1e6, run.Makespan().Seconds())
		for addr, count := range run.PerWorker() {
			fmt.Printf("    %-18s %2d tasks\n", addr, count)
		}
	}
}
