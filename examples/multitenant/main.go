// Multitenant: two Virtual Private Clouds — "red" and "blue", both
// using the SAME 10.0.0.0/24 address space — run concurrently over one
// shared physical WAN and one shared rendezvous server. Each tenant's
// hosts mesh only with co-tenants, lease addresses from their own
// per-network DHCP pool, and never see the other tenant's ARP,
// broadcast or unicast traffic: ping works inside a tenant and fails
// across, and a rendezvous lookup from a red host cannot even resolve
// a blue host's record.
package main

import (
	"fmt"
	"log"
	"time"

	"wavnet"
)

func main() {
	// One shared physical substrate: five NATed PCs on an emulated WAN.
	world, err := wavnet.NewEmulatedWAN(42, 5, 100e6)
	if err != nil {
		log.Fatal(err)
	}

	// Two isolated virtual networks with identical CIDRs.
	if _, err := world.CreateVPC("red", "10.0.0.0/24"); err != nil {
		log.Fatal(err)
	}
	if _, err := world.CreateVPC("blue", "10.0.0.0/24"); err != nil {
		log.Fatal(err)
	}
	if err := world.JoinVPC("red", "pc00", "pc01"); err != nil {
		log.Fatal(err)
	}
	if err := world.JoinVPC("blue", "pc02", "pc03", "pc04"); err != nil {
		log.Fatal(err)
	}

	red, _ := world.VPC().Get("red")
	blue, _ := world.VPC().Get("blue")
	for _, n := range []*wavnet.VPCNetwork{red, blue} {
		fmt.Printf("VPC %q (VNI %d, %s):\n", n.Name, n.VNI, n.CIDR)
		for _, m := range n.Members() {
			how := "DHCP lease"
			if m.Anchor() {
				how = "anchor (runs the tenant's DHCP server)"
			}
			fmt.Printf("  %-5s -> %-10s %s\n", m.Host.Name(), m.IP, how)
		}
	}

	rm, bm := red.Members(), blue.Members()
	world.Eng.Spawn("demo", func(p *wavnet.Proc) {
		// Intra-tenant: red pings red, blue pings blue — on the same
		// overlapping addresses, at the same time.
		rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second) // resolve ARP
		rtt, err := rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second)
		fmt.Printf("\nred   %s -> %s: rtt=%v err=%v\n", rm[0].IP, rm[1].IP, rtt, err)
		bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
		rtt, err = bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
		fmt.Printf("blue  %s -> %s: rtt=%v err=%v\n", bm[0].IP, bm[1].IP, rtt, err)

		// Cross-tenant: 10.0.0.3 exists only in blue. Red's ARP for it
		// never crosses the tenant boundary, so the ping times out.
		_, err = rm[0].Stack.Ping(p, bm[2].IP, 56, 5*time.Second)
		fmt.Printf("red   %s -> blue's %s: err=%v (isolated!)\n", rm[0].IP, bm[2].IP, err)

		// Control plane is scoped too: red cannot resolve blue hosts.
		recs, _ := rm[0].Host.Lookup(p, "pc01")
		fmt.Printf("red lookup of co-tenant pc01:  %d record(s)\n", len(recs))
		recs, _ = rm[0].Host.Lookup(p, "pc02")
		fmt.Printf("red lookup of blue's    pc02:  %d record(s)\n", len(recs))
	})
	world.Eng.RunFor(2 * time.Minute)

	fmt.Printf("\nblue DHCP pool leased %d address(es); red and blue never shared a tunnel.\n",
		len(blue.DHCPServer().Leases()))
}
