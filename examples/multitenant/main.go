// Multitenant: two Virtual Private Clouds — "red" and "blue", both
// using the SAME 10.0.0.0/24 address space — run concurrently over one
// shared physical WAN and one shared rendezvous server. Each tenant's
// hosts mesh only with co-tenants, lease addresses from their own
// per-network DHCP pool, and never see the other tenant's ARP,
// broadcast or unicast traffic: ping works inside a tenant and fails
// across, and a rendezvous lookup from a red host cannot even resolve
// a blue host's record.
//
// The second half replays the same idea through the tenant API v2: one
// declarative TenantSpec (networks + members + a policy-carrying
// peering + a quota) converged by World.Apply, idempotently.
package main

import (
	"fmt"
	"log"
	"time"

	"wavnet"
)

func main() {
	// One shared physical substrate: five NATed PCs on an emulated WAN.
	world, err := wavnet.NewEmulatedWAN(42, 5, 100e6)
	if err != nil {
		log.Fatal(err)
	}

	// Two isolated virtual networks with identical CIDRs.
	if _, err := world.CreateVPC("red", "10.0.0.0/24"); err != nil {
		log.Fatal(err)
	}
	if _, err := world.CreateVPC("blue", "10.0.0.0/24"); err != nil {
		log.Fatal(err)
	}
	if err := world.JoinVPC("red", "pc00", "pc01"); err != nil {
		log.Fatal(err)
	}
	if err := world.JoinVPC("blue", "pc02", "pc03", "pc04"); err != nil {
		log.Fatal(err)
	}

	red, _ := world.VPC().Get("red")
	blue, _ := world.VPC().Get("blue")
	for _, n := range []*wavnet.VPCNetwork{red, blue} {
		fmt.Printf("VPC %q (VNI %d, %s):\n", n.Name, n.VNI, n.CIDR)
		for _, m := range n.Members() {
			how := "DHCP lease"
			if m.Anchor() {
				how = "anchor (runs the tenant's DHCP server)"
			}
			fmt.Printf("  %-5s -> %-10s %s\n", m.Host.Name(), m.IP, how)
		}
	}

	rm, bm := red.Members(), blue.Members()
	world.Eng.Spawn("demo", func(p *wavnet.Proc) {
		// Intra-tenant: red pings red, blue pings blue — on the same
		// overlapping addresses, at the same time.
		rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second) // resolve ARP
		rtt, err := rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second)
		fmt.Printf("\nred   %s -> %s: rtt=%v err=%v\n", rm[0].IP, rm[1].IP, rtt, err)
		bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
		rtt, err = bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
		fmt.Printf("blue  %s -> %s: rtt=%v err=%v\n", bm[0].IP, bm[1].IP, rtt, err)

		// Cross-tenant: 10.0.0.3 exists only in blue. Red's ARP for it
		// never crosses the tenant boundary, so the ping times out.
		_, err = rm[0].Stack.Ping(p, bm[2].IP, 56, 5*time.Second)
		fmt.Printf("red   %s -> blue's %s: err=%v (isolated!)\n", rm[0].IP, bm[2].IP, err)

		// Control plane is scoped too: red cannot resolve blue hosts.
		recs, _ := rm[0].Host.Lookup(p, "pc01")
		fmt.Printf("red lookup of co-tenant pc01:  %d record(s)\n", len(recs))
		recs, _ = rm[0].Host.Lookup(p, "pc02")
		fmt.Printf("red lookup of blue's    pc02:  %d record(s)\n", len(recs))
	})
	world.Eng.RunFor(2 * time.Minute)

	fmt.Printf("\nblue DHCP pool leased %d address(es); red and blue never shared a tunnel.\n",
		len(blue.DHCPServer().Leases()))

	applyDemo()
}

// applyDemo is the declarative variant: the whole tenant — two
// networks, a peering that exposes only the db anchor to the web tier,
// and a bandwidth quota — is one spec, and Apply converges a fresh
// world onto it.
func applyDemo() {
	world, err := wavnet.NewEmulatedWAN(43, 3, 100e6)
	if err != nil {
		log.Fatal(err)
	}
	spec := wavnet.TenantSpec{
		Tenant: "acme",
		Networks: []wavnet.NetworkSpec{
			{Name: "web", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}},
			{Name: "db", CIDR: "10.20.0.0/24", Members: []string{"pc02"}},
		},
		Peerings: []wavnet.PeeringSpec{
			{A: "web", B: "db", AllowB: []string{"10.20.0.1/32"}},
		},
		Quota: wavnet.QuotaSpec{RateBps: 20e6},
	}
	var rep, again *wavnet.ApplyReport
	var applyErr error
	world.Eng.Spawn("apply", func(p *wavnet.Proc) {
		if rep, applyErr = world.Apply(p, spec); applyErr != nil {
			return
		}
		again, applyErr = world.Apply(p, spec)
	})
	world.Eng.RunFor(3 * time.Minute)
	if applyErr != nil {
		log.Fatal(applyErr)
	}
	fmt.Printf("\n-- tenant API v2 --\n%s", rep)
	fmt.Printf("re-apply: %s\n", again)

	// The peering policy in action: web reaches the db anchor, and
	// nothing else of db.
	web, _ := world.VPC().Get("web")
	db, _ := world.VPC().Get("db")
	world.Eng.Spawn("probe", func(p *wavnet.Proc) {
		sender := web.Members()[0]
		sender.Stack.Ping(p, db.Members()[0].IP, 56, 5*time.Second)
		rtt, err := sender.Stack.Ping(p, db.Members()[0].IP, 56, 5*time.Second)
		fmt.Printf("web %s -> db anchor %s: rtt=%v err=%v\n", sender.IP, db.Members()[0].IP, rtt, err)
		_, err = sender.Stack.Ping(p, db.CIDR.Base+77, 56, 5*time.Second)
		fmt.Printf("web %s -> db 10.20.0.77: err=%v (outside the allowed prefix)\n", sender.IP, err)
	})
	world.Eng.RunFor(time.Minute)
}
