// Quickstart: two NATed desktops join WAVNet through a rendezvous
// server, punch a direct tunnel, and exchange traffic on the virtual
// LAN — ping first, then a TCP transfer — all inside the deterministic
// simulation.
package main

import (
	"fmt"
	"log"
	"time"

	"wavnet"
)

func main() {
	// The paper's emulated WAN: NATed PCs with 100 Mbps access.
	world, err := wavnet.NewEmulatedWAN(42, 2, 100e6)
	if err != nil {
		log.Fatal(err)
	}
	// Join both machines, punch the tunnel, create their virtual stacks.
	if err := world.WAVNetUp(); err != nil {
		log.Fatal(err)
	}
	a, b := world.Machines[0], world.Machines[1]
	fmt.Printf("%s: NAT=%v, external mapping %v\n", a.Key, a.WAV.NATClass(), a.WAV.Mapped())
	fmt.Printf("%s: NAT=%v, external mapping %v\n", b.Key, b.WAV.NATClass(), b.WAV.Mapped())

	world.Eng.Spawn("demo", func(p *wavnet.Proc) {
		// ICMP across the tunnel (the first ping also resolves ARP).
		a.Dom0().Ping(p, b.VIP, 56, 5e9)
		rtt, err := a.Dom0().Ping(p, b.VIP, 56, 5e9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("virtual LAN ping %s -> %s: %v\n", a.Key, b.Key, rtt)

		// A TCP transfer through the same tunnel.
		if _, err := wavnet.StartSink(b.Dom0(), 5001); err != nil {
			log.Fatal(err)
		}
		res, err := wavnet.TTCP(p, a.Dom0(), wavnet.Addr{IP: b.VIP, Port: 5001}, 8<<20, 16384)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ttcp: %d bytes in %v = %.0f KB/s\n", res.Bytes, res.Elapsed, res.KBps)
	})
	world.Eng.RunFor(2 * time.Minute)

	tun, _ := a.WAV.Tunnel(b.Key)
	fmt.Printf("tunnel stats: %d frames out, %d frames in, %d keepalive pulses\n",
		tun.FramesOut, tun.FramesIn, tun.PulsesOut)
}
