// Mpiheat: the paper's Figure 11 in miniature — an MPI heat-distribution
// job across four VMs (three in HKU, one in far-away SIAT) runs much
// faster when the straggler VM is live-migrated next to its peers.
package main

import (
	"fmt"
	"log"
	"time"

	"wavnet"
	"wavnet/internal/ipstack"
	"wavnet/internal/mpi"
)

func run(migrate bool) (jobTime, migTime wavnet.Duration) {
	world, err := wavnet.NewRealWAN(42)
	if err != nil {
		log.Fatal(err)
	}
	keys := []string{"HKU1", "HKU2", "HKU3", "SIAT"}
	if err := world.WAVNetUp(keys...); err != nil {
		log.Fatal(err)
	}
	var stacks []*ipstack.Stack
	var vms []*wavnet.VM
	for i, k := range keys {
		ip, _ := wavnet.ParseIP(fmt.Sprintf("10.77.1.%d", i+1))
		v := wavnet.NewVM(world.M(k).WAV, fmt.Sprintf("rank%d", i), ip,
			wavnet.VMConfig{MemoryMB: 64, DirtyRate: 300})
		vms = append(vms, v)
		stacks = append(stacks, v.Stack())
	}
	w := mpi.NewWorld(world.Eng, stacks)
	world.Eng.Spawn("job", func(p *wavnet.Proc) {
		if err := w.Connect(p); err != nil {
			log.Fatal(err)
		}
		elapsed, err := mpi.RunHeat(p, w, mpi.HeatParams{
			M: 64, Iterations: 2000, ComputePerIter: 4700 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		jobTime = elapsed
	})
	if migrate {
		world.Eng.Spawn("migrate", func(p *wavnet.Proc) {
			p.Sleep(5 * time.Second)
			rep, err := vms[3].Migrate(p, world.M("HKU1").WAV)
			if err != nil {
				log.Fatal(err)
			}
			migTime = rep.Total()
		})
	}
	world.Eng.RunFor(30 * time.Minute)
	return jobTime, migTime
}

func main() {
	without, _ := run(false)
	with, mig := run(true)
	fmt.Printf("heat distribution, 4 ranks (3x HKU + 1x SIAT), 2000 iterations:\n")
	fmt.Printf("  without migration: %6.1f s (every halo exchange crosses the 74 ms WAN)\n", without.Seconds())
	fmt.Printf("  with migration:    %6.1f s (straggler moved to HKU after %0.1f s of migration)\n",
		with.Seconds(), mig.Seconds())
	fmt.Printf("  speedup: %.1fx\n", float64(without)/float64(with))
}
