// Virtualcluster: the locality-sensitive grouping strategy (paper §II.D)
// applied to the PlanetLab-like latency universe of Figures 12-13 —
// compare the clusters it builds against random selection.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wavnet"
)

func main() {
	ds := wavnet.PlanetLabDataset(42)
	fmt.Printf("universe: %d hosts, %d pairs\n", ds.N(), ds.N()*(ds.N()-1)/2)

	rng := rand.New(rand.NewSource(7))
	fmt.Printf("%6s %22s %22s\n", "k", "locality avg/max (ms)", "random avg/max (ms)")
	for _, k := range []int{4, 8, 16, 32, 64} {
		loc, err := wavnet.GroupLocality(ds.RTT, k)
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := wavnet.GroupRandom(ds.RTT, k, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %10.1f / %-10.1f %10.1f / %-10.1f\n", k,
			msf(wavnet.GroupMeanLatency(ds.RTT, loc)), msf(wavnet.GroupMaxLatency(ds.RTT, loc)),
			msf(wavnet.GroupMeanLatency(ds.RTT, rnd)), msf(wavnet.GroupMaxLatency(ds.RTT, rnd)))
	}

	// Show what the k=8 cluster looks like geographically.
	loc, _ := wavnet.GroupLocality(ds.RTT, 8)
	fmt.Println("\nlocality-selected 8-host cluster:")
	for _, idx := range loc {
		h := ds.Hosts[idx]
		fmt.Printf("  host %3d  region=%s\n", h.Index, h.Region)
	}
}

func msf(d wavnet.Duration) float64 { return float64(d) / 1e6 }
