// Resourcediscovery: the rendezvous layer as a resource index. Hosts
// register multi-attribute state vectors (normalized CPU, memory) that
// the CAN overlay indexes; a user queries by attribute point to find
// machines matching a requirement, then asks the distance locator for a
// mutually-near group (paper §II.A and §II.D).
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"wavnet"
)

// attrDist is the Euclidean distance from a record's attrs to a point.
func attrDist(a wavnet.Point, x, y float64) float64 {
	if len(a) != 2 {
		return math.Inf(1)
	}
	return math.Hypot(a[0]-x, a[1]-y)
}

func main() {
	// Ten machines with varying resource states. Attrs are CAN
	// coordinates in [0,1): here (cpu, mem), normalized.
	var specs []wavnet.Spec
	profiles := []struct {
		cpu, mem float64
	}{
		{0.9, 0.8}, {0.85, 0.9}, {0.9, 0.85}, // big iron
		{0.5, 0.5}, {0.45, 0.55}, {0.55, 0.4}, // mid
		{0.1, 0.2}, {0.15, 0.1}, {0.2, 0.15}, {0.1, 0.1}, // small
	}
	for i, pr := range profiles {
		specs = append(specs, wavnet.Spec{
			Key:       fmt.Sprintf("pc%02d", i),
			RTTToHub:  time.Duration(5+7*i) * time.Millisecond,
			AccessBps: 50e6,
			NAT:       wavnet.NATRestrictedCone,
			Attrs:     wavnet.Point{pr.cpu, pr.mem},
		})
	}
	world, err := wavnet.NewWorld(1, specs, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		log.Fatal(err)
	}

	requester := world.M("pc00").WAV
	world.Eng.Spawn("discover", func(p *wavnet.Proc) {
		// 1. Find a machine by name (routed through the CAN by hash).
		recs, err := requester.Lookup(p, "pc05")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("lookup by name: %-6s NAT=%v mapped=%s attrs=%v\n",
				r.Name, r.NAT, r.Mapped, r.Attrs)
		}

		// 2. Find machines by resource state: who looks like a big
		// machine (cpu≈0.9, mem≈0.85)? The CAN owner of that zone
		// returns its records; the requester ranks them by distance to
		// the query point (with one rendezvous server the single zone
		// spans the whole space, so ranking does the narrowing).
		recs, err = requester.LookupAttrs(p, wavnet.Point{0.9, 0.85})
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(recs, func(i, j int) bool {
			return attrDist(recs[i].Attrs, 0.9, 0.85) < attrDist(recs[j].Attrs, 0.9, 0.85)
		})
		fmt.Println("\nbest matches for attribute point (0.9, 0.85):")
		for _, r := range recs[:3] {
			fmt.Printf("  %-6s attrs=%v\n", r.Name, r.Attrs)
		}

		// 3. Feed the distance locator and ask for a 4-host virtual
		// cluster with minimal mutual latency.
		for _, m := range world.Machines {
			rtts := make(map[string]wavnet.Duration)
			for peer, tun := range m.WAV.Tunnels() {
				if tun.Established() {
					if rtt, err := m.WAV.TunnelRTT(p, peer); err == nil {
						rtts[peer] = rtt
					}
				}
			}
			m.WAV.ReportRTTs(rtts)
		}
		p.Sleep(2 * time.Second) // let the reports land

		group, err := requester.GroupQuery(p, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndistance locator's 4-host virtual cluster: %v\n", group)
	})
	world.Eng.RunFor(5 * time.Minute)
}
