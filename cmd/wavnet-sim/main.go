// Command wavnet-sim runs an ad-hoc WAVNet deployment and reports what
// happened: joins, NAT classifications, tunnel RTTs, and a bandwidth
// probe — a scriptable smoke test for custom topologies.
//
//	wavnet-sim -hosts 8 -wan 50 -probe
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wavnet"
)

func main() {
	hosts := flag.Int("hosts", 4, "number of NATed machines")
	wanMbps := flag.Float64("wan", 100, "WAN access rate per machine (Mbps)")
	seed := flag.Int64("seed", 1, "simulation seed")
	probe := flag.Bool("probe", true, "measure tunnel RTT and TCP bandwidth from machine 0")
	flag.Parse()

	world, err := wavnet.NewEmulatedWAN(*seed, *hosts, *wanMbps*1e6)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := world.WAVNetUp(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-host WAVNet mesh in %s wall time (virtual t=%v)\n",
		*hosts, time.Since(start).Round(time.Millisecond), world.Eng.Now())
	for _, m := range world.Machines {
		fmt.Printf("  %-6s NAT=%-22v mapped=%-21v tunnels=%d\n",
			m.Key, m.WAV.NATClass(), m.WAV.Mapped(), len(m.WAV.Tunnels()))
	}
	if !*probe {
		return
	}
	probeM := world.Machines[0]
	fmt.Printf("\nprobes from %s:\n", probeM.Key)
	for _, peer := range world.Machines[1:] {
		var rtt wavnet.Duration
		var rttErr error
		world.Eng.Spawn("rtt", func(p *wavnet.Proc) {
			rtt, rttErr = probeM.WAV.TunnelRTT(p, peer.Key)
		})
		world.Eng.RunFor(5 * time.Second)
		if rttErr != nil {
			fmt.Printf("  %-6s rtt: error: %v\n", peer.Key, rttErr)
			continue
		}
		np, err := wavnet.StartNetperf(probeM.Dom0(), peer.Dom0(), 5600, 3*time.Second, 3*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		world.Eng.RunFor(30 * time.Second)
		fmt.Printf("  %-6s rtt=%-12v tcp=%.2f Mbps\n", peer.Key, rtt, np.Mbps())
	}
}
