package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"wavnet/internal/obs"
	"wavnet/internal/scenario"
)

// obsDump accumulates observability dumps from the worlds the
// experiment drivers measured — the final metrics scrape, the flow
// telemetry, and the alert-rule state — and writes each requested
// file when the run ends. A driver that sweeps several points hands
// the dump several worlds; each shows up as its own numbered section.
type obsDump struct {
	scrapePath, flowsPath, alertsPath string

	scrapeRows []scrapeRow
	scrapeText strings.Builder
	flowsText  strings.Builder
	alertsText strings.Builder
	runs       map[string]int
}

// scrapeRow is one world's registry in the JSON dump shape.
type scrapeRow struct {
	Experiment string        `json:"experiment"`
	Run        int           `json:"run"`
	Series     *obs.Registry `json:"series"`
}

func newObsDump(scrapePath, flowsPath, alertsPath string) *obsDump {
	return &obsDump{
		scrapePath: scrapePath,
		flowsPath:  flowsPath,
		alertsPath: alertsPath,
		runs:       make(map[string]int),
	}
}

// active reports whether any dump file was requested.
func (d *obsDump) active() bool {
	return d.scrapePath != "" || d.flowsPath != "" || d.alertsPath != ""
}

// observer returns the Options.Observer for one experiment, or nil
// when no dump was requested (experiments then skip the extra scrape).
func (d *obsDump) observer(id string) func(*scenario.World) {
	if !d.active() {
		return nil
	}
	return func(w *scenario.World) {
		d.runs[id]++
		run := d.runs[id]
		if d.scrapePath != "" {
			d.dumpScrape(id, run, w)
		}
		if d.flowsPath != "" {
			d.dumpFlows(id, run, w)
		}
		if d.alertsPath != "" {
			d.dumpAlerts(id, run, w)
		}
	}
}

func section(b *strings.Builder, id string, run int) {
	fmt.Fprintf(b, "=== %s run %d\n", id, run)
}

func (d *obsDump) dumpScrape(id string, run int, w *scenario.World) {
	r := w.Scrape()
	if strings.HasSuffix(d.scrapePath, ".json") {
		d.scrapeRows = append(d.scrapeRows, scrapeRow{Experiment: id, Run: run, Series: r})
		return
	}
	section(&d.scrapeText, id, run)
	d.scrapeText.WriteString(r.String())
	d.scrapeText.WriteByte('\n')
}

// flowLogDumpLimit bounds the per-world flow-log section: the log
// itself is a ring, but dumping thousands of lines per sweep point
// helps nobody.
const flowLogDumpLimit = 200

func (d *obsDump) dumpFlows(id string, run int, w *scenario.World) {
	b := &d.flowsText
	section(b, id, run)
	b.WriteString("-- flow scrape\n")
	b.WriteString(w.FlowScrape().String())
	recs := w.FlowLog.Records()
	fmt.Fprintf(b, "-- flow log (%d retained, %d total)\n", len(recs), w.FlowLog.Total())
	if len(recs) > flowLogDumpLimit {
		fmt.Fprintf(b, "   (newest %d shown)\n", flowLogDumpLimit)
		recs = recs[len(recs)-flowLogDumpLimit:]
	}
	for i := range recs {
		fmt.Fprintf(b, "%s\n", recs[i].String())
	}
	nets := []string{""}
	for _, n := range w.VPC().Networks() {
		nets = append(nets, n.Name)
	}
	for _, net := range nets {
		talkers := w.TopTalkers(net, 10)
		if len(talkers) == 0 {
			continue
		}
		name := net
		if name == "" {
			name = "(default LAN)"
		}
		fmt.Fprintf(b, "-- top talkers %s\n", name)
		for _, t := range talkers {
			fmt.Fprintf(b, "%12d  %s\n", t.Bytes, t.Key)
		}
	}
	b.WriteByte('\n')
}

func (d *obsDump) dumpAlerts(id string, run int, w *scenario.World) {
	b := &d.alertsText
	section(b, id, run)
	fmt.Fprintf(b, "%-24s %-28s %10s %8s %7s %10s %6s %9s\n",
		"rule", "metric", "threshold", "for", "firing", "value", "fired", "resolved")
	for _, rule := range w.Alerts.Rules() {
		firing := "no"
		if w.Alerts.IsFiring(rule.Name) {
			firing = "YES"
		}
		fmt.Fprintf(b, "%-24s %-28s %10.4g %8s %7s %10.4g %6d %9d\n",
			rule.Name, rule.Metric, rule.Threshold, rule.For,
			firing, w.Alerts.Value(rule.Name),
			w.Alerts.Fired(rule.Name), w.Alerts.Resolved(rule.Name))
	}
	b.WriteByte('\n')
}

// flush writes every requested file.
func (d *obsDump) flush() error {
	if d.scrapePath != "" {
		var data []byte
		if strings.HasSuffix(d.scrapePath, ".json") {
			var err error
			if data, err = json.MarshalIndent(d.scrapeRows, "", "  "); err != nil {
				return fmt.Errorf("marshal scrape: %w", err)
			}
		} else {
			data = []byte(d.scrapeText.String())
		}
		if err := os.WriteFile(d.scrapePath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", d.scrapePath)
	}
	if d.flowsPath != "" {
		if err := os.WriteFile(d.flowsPath, []byte(d.flowsText.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", d.flowsPath)
	}
	if d.alertsPath != "" {
		if err := os.WriteFile(d.alertsPath, []byte(d.alertsText.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", d.alertsPath)
	}
	return nil
}
