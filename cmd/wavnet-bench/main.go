// Command wavnet-bench regenerates the paper's tables and figures, and
// pins the repo's performance trajectory.
//
// Usage:
//
//	wavnet-bench -list
//	wavnet-bench [-seed N] [-paper] table2 figure6 ...
//	wavnet-bench all
//	wavnet-bench -trajectory [-pr N] [-out FILE] [-baseline FILE]
//	wavnet-bench [-scrape FILE] [-flows FILE] [-alerts FILE] vpc service ...
//
// Quick mode (default) shrinks durations and transfer sizes while
// preserving each experiment's shape; -paper uses the publication
// parameters where tractable.
//
// The dump flags capture observability state from the same worlds the
// experiments measured: -scrape writes each world's final metrics
// registry (JSON when FILE ends in .json, text otherwise), -flows
// writes the flow scrape, flow log and per-network top talkers, and
// -alerts writes the alert-rule table with firing/fired/resolved
// lifecycle counts.
//
// -trajectory runs the pinned macro-benchmark suite and writes one
// BENCH_<pr>.json point ({pr, bench, metric, value, unit} rows). The
// simulation is deterministic per seed, so the committed point is also
// the baseline: with -baseline pointing at a previous point, the run
// exits 1 when any directed metric regresses by more than 10%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"wavnet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	paper := flag.Bool("paper", false, "use paper-scale parameters (slow)")
	list := flag.Bool("list", false, "list experiments and exit")
	trajectory := flag.Bool("trajectory", false, "run the pinned macro-benchmark suite and write BENCH_<pr>.json")
	pr := flag.Int("pr", 10, "trajectory point number stamped into every row")
	out := flag.String("out", "", "trajectory output file (default BENCH_<pr>.json)")
	baseline := flag.String("baseline", "", "previous trajectory point to compare against (exit 1 on >10% regression)")
	scrapeOut := flag.String("scrape", "", "dump each world's final metrics registry to FILE (.json for JSON)")
	flowsOut := flag.String("flows", "", "dump flow scrape, flow log and top talkers to FILE")
	alertsOut := flag.String("alerts", "", "dump the alert-rule table and lifecycle state to FILE")
	flag.Parse()

	if *trajectory {
		os.Exit(runTrajectory(experiments.Options{Seed: *seed, Quick: !*paper}, *pr, *out, *baseline))
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: wavnet-bench [-seed N] [-paper] <experiment...|all>  (see -list)")
		os.Exit(2)
	}
	var runners []experiments.Runner
	if len(args) == 1 && args[0] == "all" {
		runners = experiments.All()
	} else {
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	opts := experiments.Options{Seed: *seed, Quick: !*paper}
	dump := newObsDump(*scrapeOut, *flowsOut, *alertsOut)
	failed := 0
	for _, r := range runners {
		fmt.Printf("=== %s: %s\n", r.ID, r.Title)
		start := time.Now()
		opts.Observer = dump.observer(r.ID)
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if err := dump.flush(); err != nil {
		fmt.Fprintf(os.Stderr, "dump: %v\n", err)
		failed++
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runTrajectory runs the pinned suite, writes the point, and compares
// it against the baseline when one is given. Returns the exit code.
func runTrajectory(opts experiments.Options, pr int, out, baseline string) int {
	if out == "" {
		out = fmt.Sprintf("BENCH_%d.json", pr)
	}
	start := time.Now()
	res, err := experiments.Trajectory(opts, pr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trajectory failed: %v\n", err)
		return 1
	}
	fmt.Println(res.String())
	fmt.Printf("(%s wall time)\n", time.Since(start).Round(time.Millisecond))
	data, err := experiments.MarshalBench(res.Rows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
		return 1
	}
	fmt.Printf("wrote %s (%d rows)\n", out, len(res.Rows))
	if baseline == "" {
		return 0
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", baseline, err)
		return 1
	}
	var base []experiments.BenchRow
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", baseline, err)
		return 1
	}
	if regressions := experiments.CompareBench(res.Rows, base); len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "%d regression(s) vs %s:\n", len(regressions), baseline)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("no regressions vs %s\n", baseline)
	return 0
}
