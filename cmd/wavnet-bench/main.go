// Command wavnet-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	wavnet-bench -list
//	wavnet-bench [-seed N] [-paper] table2 figure6 ...
//	wavnet-bench all
//
// Quick mode (default) shrinks durations and transfer sizes while
// preserving each experiment's shape; -paper uses the publication
// parameters where tractable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wavnet/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	paper := flag.Bool("paper", false, "use paper-scale parameters (slow)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: wavnet-bench [-seed N] [-paper] <experiment...|all>  (see -list)")
		os.Exit(2)
	}
	var runners []experiments.Runner
	if len(args) == 1 && args[0] == "all" {
		runners = experiments.All()
	} else {
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	opts := experiments.Options{Seed: *seed, Quick: !*paper}
	failed := 0
	for _, r := range runners {
		fmt.Printf("=== %s: %s\n", r.ID, r.Title)
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
