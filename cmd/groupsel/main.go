// Command groupsel runs the locality-sensitive grouping strategy (paper
// §II.D) on a latency matrix and prints the selected virtual cluster.
//
// Input is either the built-in PlanetLab-like dataset (-planetlab) or a
// whitespace-separated N×N matrix of RTTs in milliseconds on stdin.
//
//	groupsel -planetlab -k 8
//	groupsel -k 4 < matrix.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"wavnet"
	"wavnet/internal/grouping"
	"wavnet/internal/planetlab"
	"wavnet/internal/sim"
)

func main() {
	k := flag.Int("k", 8, "cluster size")
	usePL := flag.Bool("planetlab", false, "use the built-in 400-host dataset")
	seed := flag.Int64("seed", 1, "dataset seed")
	compare := flag.Bool("compare", true, "also show random selection and (for small N) the exact optimum")
	flag.Parse()

	var rtts [][]sim.Duration
	if *usePL {
		rtts = planetlab.Generate(*seed, planetlab.Config{}).RTT
	} else {
		var err error
		rtts, err = readMatrix(os.Stdin)
		if err != nil {
			log.Fatalf("reading matrix: %v", err)
		}
	}
	n := len(rtts)
	fmt.Printf("%d candidate hosts, selecting k=%d\n\n", n, *k)

	loc, err := wavnet.GroupLocality(rtts, *k)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, g []int) {
		fmt.Printf("%-18s hosts=%v\n%-18s avg=%.2f ms max=%.2f ms\n", name, g, "",
			float64(wavnet.GroupMeanLatency(rtts, g))/1e6,
			float64(wavnet.GroupMaxLatency(rtts, g))/1e6)
	}
	report("locality-sensitive", loc)
	if *compare {
		rnd, _ := wavnet.GroupRandom(rtts, *k, rand.New(rand.NewSource(*seed)))
		report("random", rnd)
		if n <= 20 && *k <= 6 {
			exact, err := grouping.BruteForce(rtts, *k)
			if err == nil {
				report("exact optimum", exact)
			}
		}
	}
}

func readMatrix(f *os.File) ([][]sim.Duration, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var vals []float64
	for sc.Scan() {
		for _, tok := range splitFields(sc.Text()) {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
	}
	n := 1
	for n*n < len(vals) {
		n++
	}
	if n*n != len(vals) {
		return nil, fmt.Errorf("%d values is not a square matrix", len(vals))
	}
	m := make([][]sim.Duration, n)
	for i := range m {
		m[i] = make([]sim.Duration, n)
		for j := range m[i] {
			m[i][j] = sim.Duration(vals[i*n+j] * 1e6)
		}
	}
	return m, nil
}

func splitFields(s string) []string {
	var out []string
	field := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == ',' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(r)
	}
	if field != "" {
		out = append(out, field)
	}
	return out
}
