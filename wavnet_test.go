package wavnet

import (
	"math/rand"
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	world, err := NewEmulatedWAN(1, 2, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	a, b := world.Machines[0], world.Machines[1]
	var rtt Duration
	world.Eng.Spawn("demo", func(p *Proc) {
		a.Dom0().Ping(p, b.VIP, 56, 5*time.Second)
		rtt, err = a.Dom0().Ping(p, b.VIP, 56, 5*time.Second)
	})
	world.Eng.RunFor(2 * time.Minute)
	if err != nil || rtt <= 0 {
		t.Fatalf("facade ping rtt=%v err=%v", rtt, err)
	}
}

func TestFacadeVMAndMigration(t *testing.T) {
	world, err := NewEmulatedWAN(2, 2, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	ip, err := ParseIP("10.50.0.1")
	if err != nil {
		t.Fatal(err)
	}
	v := NewVM(world.Machines[0].WAV, "vm", ip, VMConfig{MemoryMB: 16})
	var rep *MigrationReport
	world.Eng.Spawn("migrate", func(p *Proc) {
		rep, err = v.Migrate(p, world.Machines[1].WAV)
	})
	world.Eng.RunFor(2 * time.Minute)
	if err != nil || rep == nil || rep.Downtime <= 0 {
		t.Fatalf("migration rep=%+v err=%v", rep, err)
	}
}

func TestFacadeGrouping(t *testing.T) {
	ds := PlanetLabDataset(3)
	loc, err := GroupLocality(ds.RTT, 8)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := GroupRandom(ds.RTT, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if GroupMeanLatency(ds.RTT, loc) >= GroupMeanLatency(ds.RTT, rnd) {
		t.Fatal("locality grouping not better than random on the PlanetLab universe")
	}
	if GroupMaxLatency(ds.RTT, loc) < GroupMeanLatency(ds.RTT, loc) {
		t.Fatal("max < mean")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Fatalf("expected 21 experiments, got %d", len(Experiments()))
	}
	if _, ok := Experiment("figure13"); !ok {
		t.Fatal("figure13 missing")
	}
	if _, ok := Experiment("vpc"); !ok {
		t.Fatal("vpc missing")
	}
	if _, ok := Experiment("peering"); !ok {
		t.Fatal("peering missing")
	}
	if _, ok := Experiment("federation"); !ok {
		t.Fatal("federation missing")
	}
	if _, ok := Experiment("failover"); !ok {
		t.Fatal("failover missing")
	}
	if _, ok := Experiment("placement"); !ok {
		t.Fatal("placement missing")
	}
	if _, ok := Experiment("migration"); !ok {
		t.Fatal("migration missing")
	}
	if _, ok := Experiment("service"); !ok {
		t.Fatal("service missing")
	}
	// Run the cheapest real experiment end to end through the facade.
	r, _ := Experiment("figure13")
	res, err := r.Run(ExperimentOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty result")
	}
}
