package ether

import (
	"math/rand"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// LinkPipe is a point-to-point NIC pair with per-direction bandwidth,
// delay and a drop-tail queue — a crossover cable with realistic link
// dynamics. Useful for testing stacks in isolation and for modeling
// simple two-host segments without a full netsim topology.
type LinkPipe struct {
	A, B NIC
}

type linkEnd struct {
	link *netsim.Link
	peer *linkEnd
	recv func(*Frame)
	// Drops counts frames lost to the full queue.
	Drops uint64
}

func (e *linkEnd) Send(f *Frame) {
	if !e.link.Send(f.WireLen(), func() {
		if e.peer.recv != nil {
			e.peer.recv(f)
		}
	}) {
		e.Drops++
	}
}

func (e *linkEnd) SetRecv(fn func(*Frame)) { e.recv = fn }

// NewLinkPipe builds a full-duplex link with the given rate (bits/second,
// 0 = unlimited), one-way delay and queue capacity in bytes (0 = default).
func NewLinkPipe(eng *sim.Engine, rateBps float64, delay sim.Duration, queueBytes int) *LinkPipe {
	a := &linkEnd{link: netsim.NewLink(eng, rateBps, delay, queueBytes)}
	b := &linkEnd{link: netsim.NewLink(eng, rateBps, delay, queueBytes)}
	a.peer, b.peer = b, a
	return &LinkPipe{A: a, B: b}
}

// ImpairedNIC wraps a NIC and drops a fraction of frames in each
// direction — fault injection for protocol robustness tests.
type ImpairedNIC struct {
	inner    NIC
	rng      *rand.Rand
	LossRate float64
	recv     func(*Frame)
	// DroppedTx / DroppedRx count injected losses.
	DroppedTx, DroppedRx uint64
}

// Impair wraps nic with a random-loss fault injector.
func Impair(nic NIC, lossRate float64, rng *rand.Rand) *ImpairedNIC {
	im := &ImpairedNIC{inner: nic, rng: rng, LossRate: lossRate}
	nic.SetRecv(func(f *Frame) {
		if im.rng.Float64() < im.LossRate {
			im.DroppedRx++
			return
		}
		if im.recv != nil {
			im.recv(f)
		}
	})
	return im
}

// Send forwards the frame unless the loss draw eats it.
func (im *ImpairedNIC) Send(f *Frame) {
	if im.rng.Float64() < im.LossRate {
		im.DroppedTx++
		return
	}
	im.inner.Send(f)
}

// SetRecv registers the downstream receive handler.
func (im *ImpairedNIC) SetRecv(fn func(*Frame)) { im.recv = fn }
