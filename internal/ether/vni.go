package ether

import (
	"sort"

	"wavnet/internal/sim"
)

// VNITable is a set of MAC learning tables keyed by VNI (virtual
// network identifier): one independent forwarding table per virtual
// network, so tenants with overlapping MAC or IP address spaces never
// share state. The WAV-Switch uses it to map (VNI, MAC) onto wide-area
// tunnels; a plain MACTable is the degenerate single-tenant case.
type VNITable[P comparable] struct {
	eng     *sim.Engine
	ageTime sim.Duration
	tables  map[uint32]*MACTable[P]
}

// NewVNITable creates an empty per-VNI table set; ageTime <= 0 selects
// the MACTable default (300 s).
func NewVNITable[P comparable](eng *sim.Engine, ageTime sim.Duration) *VNITable[P] {
	return &VNITable[P]{eng: eng, ageTime: ageTime, tables: make(map[uint32]*MACTable[P])}
}

// Learn records that mac was seen on port within the given VNI.
func (t *VNITable[P]) Learn(vni uint32, mac MAC, port P) {
	tbl, ok := t.tables[vni]
	if !ok {
		tbl = NewMACTable[P](t.eng, t.ageTime)
		t.tables[vni] = tbl
	}
	tbl.Learn(mac, port)
}

// Lookup returns the port mac was last seen on within the VNI.
func (t *VNITable[P]) Lookup(vni uint32, mac MAC) (P, bool) {
	tbl, ok := t.tables[vni]
	if !ok {
		var zero P
		return zero, false
	}
	return tbl.Lookup(mac)
}

// Forget drops the entry for mac within the VNI.
func (t *VNITable[P]) Forget(vni uint32, mac MAC) {
	if tbl, ok := t.tables[vni]; ok {
		tbl.Forget(mac)
	}
}

// ForgetPort drops every entry pointing at port across all VNIs (used
// when a tunnel goes away).
func (t *VNITable[P]) ForgetPort(port P) {
	for _, tbl := range t.tables {
		tbl.ForgetPort(port)
	}
}

// DropVNI discards the whole table of one VNI (network deletion).
func (t *VNITable[P]) DropVNI(vni uint32) { delete(t.tables, vni) }

// Len reports the total number of entries across all VNIs.
func (t *VNITable[P]) Len() int {
	n := 0
	for _, tbl := range t.tables {
		n += tbl.Len()
	}
	return n
}

// VNIs returns the VNIs with at least one entry, sorted.
func (t *VNITable[P]) VNIs() []uint32 {
	out := make([]uint32, 0, len(t.tables))
	for vni, tbl := range t.tables {
		if tbl.Len() > 0 {
			out = append(out, vni)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
