package ether

import (
	"sort"
	"sync"
	"sync/atomic"

	"wavnet/internal/sim"
)

// VNITable is a set of MAC learning tables keyed by VNI (virtual
// network identifier): one independent forwarding table per virtual
// network, so tenants with overlapping MAC or IP address spaces never
// share state. The WAV-Switch uses it to map (VNI, MAC) onto wide-area
// tunnels; a plain MACTable is the degenerate single-tenant case.
//
// Like MACTable, the VNI index is copy-on-write: steady-state Lookup
// and Learn resolve the per-VNI table through a lock-free atomic load,
// and only the first frame of a new VNI (or DropVNI) rebuilds the index
// under the mutex. Forwarding within a VNI then contends — or rather
// doesn't — per MACTable's own COW discipline.
type VNITable[P comparable] struct {
	eng     *sim.Engine
	ageTime sim.Duration
	mu      sync.Mutex // serializes index rebuilds only
	tables  atomic.Pointer[map[uint32]*MACTable[P]]
}

// NewVNITable creates an empty per-VNI table set; ageTime <= 0 selects
// the MACTable default (300 s).
func NewVNITable[P comparable](eng *sim.Engine, ageTime sim.Duration) *VNITable[P] {
	t := &VNITable[P]{eng: eng, ageTime: ageTime}
	m := make(map[uint32]*MACTable[P])
	t.tables.Store(&m)
	return t
}

// table returns the VNI's MACTable, creating it on first use.
func (t *VNITable[P]) table(vni uint32) *MACTable[P] {
	if tbl, ok := (*t.tables.Load())[vni]; ok {
		return tbl
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.tables.Load()
	if tbl, ok := old[vni]; ok { // raced with another creator
		return tbl
	}
	tbl := NewMACTable[P](t.eng, t.ageTime)
	m := make(map[uint32]*MACTable[P], len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[vni] = tbl
	t.tables.Store(&m)
	return tbl
}

// Learn records that mac was seen on port within the given VNI.
func (t *VNITable[P]) Learn(vni uint32, mac MAC, port P) {
	t.table(vni).Learn(mac, port)
}

// Lookup returns the port mac was last seen on within the VNI.
func (t *VNITable[P]) Lookup(vni uint32, mac MAC) (P, bool) {
	if tbl, ok := (*t.tables.Load())[vni]; ok {
		return tbl.Lookup(mac)
	}
	var zero P
	return zero, false
}

// Forget drops the entry for mac within the VNI.
func (t *VNITable[P]) Forget(vni uint32, mac MAC) {
	if tbl, ok := (*t.tables.Load())[vni]; ok {
		tbl.Forget(mac)
	}
}

// ForgetPort drops every entry pointing at port across all VNIs (used
// when a tunnel goes away).
func (t *VNITable[P]) ForgetPort(port P) {
	for _, tbl := range *t.tables.Load() {
		tbl.ForgetPort(port)
	}
}

// DropVNI discards the whole table of one VNI (network deletion).
func (t *VNITable[P]) DropVNI(vni uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.tables.Load()
	if _, ok := old[vni]; !ok {
		return
	}
	m := make(map[uint32]*MACTable[P], len(old))
	for k, v := range old {
		if k != vni {
			m[k] = v
		}
	}
	t.tables.Store(&m)
}

// Len reports the total number of entries across all VNIs.
func (t *VNITable[P]) Len() int {
	n := 0
	for _, tbl := range *t.tables.Load() {
		n += tbl.Len()
	}
	return n
}

// VNIs returns the VNIs with at least one entry, sorted.
func (t *VNITable[P]) VNIs() []uint32 {
	tables := *t.tables.Load()
	out := make([]uint32, 0, len(tables))
	for vni, tbl := range tables {
		if tbl.Len() > 0 {
			out = append(out, vni)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
