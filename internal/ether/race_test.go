package ether

import (
	"sync"
	"testing"

	"wavnet/internal/sim"
)

// TestTableRaceForwardingVsLearning drives concurrent forwarding
// lookups, refresh learns, new-MAC learns and port flushes against the
// copy-on-write MACTable/VNITable. The simulation proper is
// single-threaded, but the COW design's contract is that lookups never
// contend with learning — this is the race-detector proof (wired into
// the CI race job by name).
func TestTableRaceForwardingVsLearning(t *testing.T) {
	eng := sim.NewEngine(1)
	table := NewVNITable[int](eng, 0)
	const vnis = 4
	const macs = 64
	for v := 0; v < vnis; v++ {
		for m := 0; m < macs; m++ {
			table.Learn(uint32(v), SeqMAC(uint32(m)), m)
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	// Forwarders: pure lookups.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20000; i++ {
				table.Lookup(uint32(i%vnis), SeqMAC(uint32((i+g)%macs)))
			}
		}(g)
	}
	// Learners: refresh known MACs and keep inventing new ones (the
	// slow path that rebuilds and republishes the map).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 10000; i++ {
				table.Learn(uint32(i%vnis), SeqMAC(uint32(i%macs)), g)
				if i%100 == 0 {
					table.Learn(uint32(i%vnis), SeqMAC(uint32(macs+i)), g)
				}
			}
		}(g)
	}
	// Control plane: port flushes and VNI drops/recreates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			table.ForgetPort(i % 4)
			table.Forget(uint32(i%vnis), SeqMAC(uint32(i%macs)))
			if i%50 == 0 {
				table.DropVNI(uint32(vnis + 1))
				table.Learn(uint32(vnis+1), SeqMAC(1), 1)
			}
		}
	}()
	close(start)
	wg.Wait()
	// Sanity: the table still answers and rebuild reclaims nothing live.
	table.Learn(0, SeqMAC(3), 9)
	if p, ok := table.Lookup(0, SeqMAC(3)); !ok || p != 9 {
		t.Fatalf("post-race lookup = %v %v, want 9 true", p, ok)
	}
}

// BenchmarkForwardTableSteadyState is the switch's per-frame table work
// — one refresh learn plus one unicast lookup on the COW tables —
// pinned at 0 allocs/op by the alloc-budget CI job.
func BenchmarkForwardTableSteadyState(b *testing.B) {
	eng := sim.NewEngine(1)
	table := NewVNITable[int](eng, 0)
	src, dst := SeqMAC(1), SeqMAC(2)
	table.Learn(42, src, 1)
	table.Learn(42, dst, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Learn(42, src, 1)
		if _, ok := table.Lookup(42, dst); !ok {
			b.Fatal("miss")
		}
	}
}
