package ether

import (
	"wavnet/internal/sim"
)

// NIC is the attachment point a protocol stack (or VM) binds to: it can
// transmit frames into the link layer and registers a callback for
// frames delivered to it.
type NIC interface {
	// Send injects a frame into the link layer.
	Send(f *Frame)
	// SetRecv registers the handler for frames arriving at this NIC.
	SetRecv(fn func(f *Frame))
}

// Bridge is a software Ethernet bridge: MAC-learning, flooding, per-frame
// forwarding latency. It is the "dedicated virtual network bridge" of the
// paper's Figure 5 that joins VM vifs, the host stack and the WAVNet tap.
type Bridge struct {
	eng     *sim.Engine
	name    string
	ports   []*BridgePort
	fdb     *MACTable[*BridgePort]
	fwdLat  sim.Duration
	nextIdx int

	// Stats.
	Forwarded uint64
	Flooded   uint64
	Dropped   uint64
}

// NewBridge creates a bridge with the given per-frame forwarding latency
// (the software processing cost; ~10 µs is typical for an in-kernel
// bridge).
func NewBridge(eng *sim.Engine, name string, fwdLatency sim.Duration) *Bridge {
	return &Bridge{
		eng:    eng,
		name:   name,
		fdb:    NewMACTable[*BridgePort](eng, 0),
		fwdLat: fwdLatency,
	}
}

// Name returns the bridge name.
func (b *Bridge) Name() string { return b.name }

// BridgePort is one attachment to a bridge; it implements NIC.
type BridgePort struct {
	bridge *Bridge
	name   string
	recv   func(*Frame)
	idx    int
	dead   bool
}

var _ NIC = (*BridgePort)(nil)

// AddPort attaches a new port.
func (b *Bridge) AddPort(name string) *BridgePort {
	p := &BridgePort{bridge: b, name: name, idx: b.nextIdx}
	b.nextIdx++
	b.ports = append(b.ports, p)
	return p
}

// RemovePort detaches a port (frames toward it are dropped; its MAC
// entries are flushed). Used when a VM vif is unplugged for migration.
func (b *Bridge) RemovePort(p *BridgePort) {
	p.dead = true
	b.fdb.ForgetPort(p)
	for i, q := range b.ports {
		if q == p {
			b.ports = append(b.ports[:i], b.ports[i+1:]...)
			return
		}
	}
}

// Ports returns the current port list.
func (b *Bridge) Ports() []*BridgePort { return append([]*BridgePort(nil), b.ports...) }

// Name returns the port name.
func (p *BridgePort) Name() string { return p.name }

// Bridge returns the bridge this port is attached to.
func (p *BridgePort) Bridge() *Bridge { return p.bridge }

// SetRecv registers the frame handler for this port's attached device.
func (p *BridgePort) SetRecv(fn func(*Frame)) { p.recv = fn }

// Send injects a frame from the attached device into the bridge.
func (p *BridgePort) Send(f *Frame) {
	if p.dead {
		return
	}
	p.bridge.input(p, f)
}

// input learns, then forwards or floods after the forwarding latency.
func (b *Bridge) input(in *BridgePort, f *Frame) {
	b.fdb.Learn(f.Src, in)
	deliver := func(out *BridgePort) {
		b.eng.Schedule(b.fwdLat, func() {
			if !out.dead && out.recv != nil {
				out.recv(f)
			}
		})
	}
	if !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() {
		if out, ok := b.fdb.Lookup(f.Dst); ok {
			if out == in {
				b.Dropped++
				return
			}
			b.Forwarded++
			deliver(out)
			return
		}
	}
	// Flood: everyone but the ingress port.
	b.Flooded++
	for _, out := range b.ports {
		if out != in {
			deliver(out)
		}
	}
}

// Pipe is a direct point-to-point NIC pair (a crossover cable), useful in
// tests and for attaching a stack straight to a tunnel endpoint without a
// bridge.
type Pipe struct {
	A, B NIC
}

type pipeEnd struct {
	eng   *sim.Engine
	lat   sim.Duration
	peer  *pipeEnd
	recv  func(*Frame)
	alive bool
}

func (e *pipeEnd) Send(f *Frame) {
	peer := e.peer
	e.eng.Schedule(e.lat, func() {
		if peer.alive && peer.recv != nil {
			peer.recv(f)
		}
	})
}
func (e *pipeEnd) SetRecv(fn func(*Frame)) { e.recv = fn }

// NewPipe returns two NICs wired back-to-back with the given latency.
func NewPipe(eng *sim.Engine, latency sim.Duration) *Pipe {
	a := &pipeEnd{eng: eng, lat: latency, alive: true}
	b := &pipeEnd{eng: eng, lat: latency, alive: true}
	a.peer, b.peer = b, a
	return &Pipe{A: a, B: b}
}
