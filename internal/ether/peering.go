package ether

import (
	"sort"

	"wavnet/internal/netsim"
)

// Prefix is an IPv4 prefix used by peering policy: frames may cross
// from one VNI into another only when their destination address falls
// inside an allowed prefix.
type Prefix struct {
	IP   netsim.IP
	Bits int
}

// Mask returns the prefix's netmask.
func (p Prefix) Mask() netsim.IP {
	if p.Bits <= 0 {
		return 0
	}
	return netsim.IP(^uint32(0) << (32 - p.Bits))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip netsim.IP) bool { return ip&p.Mask() == p.IP&p.Mask() }

// PeeringTable is the inter-VNI gateway policy of the WAV-Switch path:
// a directed rule (from, into) permits frames tagged with VNI `from` to
// be re-injected into the local segment of VNI `into`, but only when
// the frame's destination address matches one of the rule's prefixes.
// An empty prefix list allows every destination (the callers normally
// pass the target network's CIDR instead).
type PeeringTable struct {
	rules map[[2]uint32][]Prefix
	// peersCache memoizes PeersOf per VNI: the flood path consults it
	// for every broadcast frame, while rules change only on (re)apply.
	peersCache map[uint32][]uint32
}

// NewPeeringTable returns an empty policy table.
func NewPeeringTable() *PeeringTable {
	return &PeeringTable{rules: make(map[[2]uint32][]Prefix)}
}

// Allow installs (replacing any previous rule) the directed rule
// permitting frames from `from` into `into` for the given destination
// prefixes.
func (t *PeeringTable) Allow(from, into uint32, prefixes []Prefix) {
	t.rules[[2]uint32{from, into}] = append([]Prefix(nil), prefixes...)
	t.peersCache = nil
}

// Revoke removes the directed rule (from, into).
func (t *PeeringTable) Revoke(from, into uint32) {
	delete(t.rules, [2]uint32{from, into})
	t.peersCache = nil
}

// Rule returns the directed rule's prefixes and whether it exists.
func (t *PeeringTable) Rule(from, into uint32) ([]Prefix, bool) {
	ps, ok := t.rules[[2]uint32{from, into}]
	return ps, ok
}

// Allows reports whether a frame tagged `from` with destination dst may
// be injected into the segment of `into`.
func (t *PeeringTable) Allows(from, into uint32, dst netsim.IP) bool {
	ps, ok := t.rules[[2]uint32{from, into}]
	if !ok {
		return false
	}
	if len(ps) == 0 {
		return true
	}
	for _, p := range ps {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}

// Routes returns the VNIs reachable from `from` (the rule targets),
// sorted for deterministic gateway iteration.
func (t *PeeringTable) Routes(from uint32) []uint32 {
	var out []uint32
	for key := range t.rules {
		if key[0] == from {
			out = append(out, key[1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Peered reports whether any rule links a and b in either direction —
// the sender-side test for whether flooding a's frames toward a tunnel
// that only carries b can still be useful (the far end's gateway may
// re-inject them).
func (t *PeeringTable) Peered(a, b uint32) bool {
	if _, ok := t.rules[[2]uint32{a, b}]; ok {
		return true
	}
	_, ok := t.rules[[2]uint32{b, a}]
	return ok
}

// PeersOf returns every VNI linked to v by a rule in either direction,
// sorted. The result is memoized until the next Allow/Revoke/DropVNI —
// callers must not mutate it.
func (t *PeeringTable) PeersOf(v uint32) []uint32 {
	if t.peersCache == nil {
		t.peersCache = make(map[uint32][]uint32)
	} else if cached, ok := t.peersCache[v]; ok {
		return cached
	}
	seen := make(map[uint32]bool)
	for key := range t.rules {
		if key[0] == v {
			seen[key[1]] = true
		}
		if key[1] == v {
			seen[key[0]] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for vni := range seen {
		out = append(out, vni)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	t.peersCache[v] = out
	return out
}

// DropVNI removes every rule touching v in either role (used when a
// host leaves the virtual network).
func (t *PeeringTable) DropVNI(v uint32) {
	for key := range t.rules {
		if key[0] == v || key[1] == v {
			delete(t.rules, key)
		}
	}
	t.peersCache = nil
}

// Len reports the number of directed rules.
func (t *PeeringTable) Len() int { return len(t.rules) }
