// Package ether provides the link-layer building blocks of WAVNet's
// virtual LAN: Ethernet frame and ARP codecs, a software bridge with MAC
// learning (the Linux bridge of the paper's Figure 5), and the generic
// learning table the WAV-Switch reuses to map MACs onto wide-area
// tunnels.
package ether

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// SeqMAC returns a locally-administered unicast MAC derived from a
// sequence number, for deterministic address assignment.
func SeqMAC(n uint32) MAC {
	return MAC{0x02, 0x57, 0x41, byte(n >> 16), byte(n >> 8), byte(n)} // 02:57:41 = "WA"
}

// EtherType values used on the virtual LAN.
const (
	TypeIPv4 uint16 = 0x0800
	TypeARP  uint16 = 0x0806
)

// HeaderLen is the Ethernet header size (no FCS is modeled).
const HeaderLen = 14

// Frame is a link-layer frame. Payload is not copied by the bridge;
// receivers must treat frames as immutable.
type Frame struct {
	Dst, Src MAC
	Type     uint16
	Payload  []byte
}

// WireLen returns the frame's size on the wire.
func (f *Frame) WireLen() int { return HeaderLen + len(f.Payload) }

// Marshal encodes the frame for tunneling.
func (f *Frame) Marshal() []byte {
	b := make([]byte, HeaderLen+len(f.Payload))
	f.MarshalTo(b)
	return b
}

// MarshalTo encodes the frame into b, which must hold at least
// WireLen() bytes, and returns the number of bytes written. It lets
// encapsulations prepend their own headers without a second copy.
func (f *Frame) MarshalTo(b []byte) int {
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	binary.BigEndian.PutUint16(b[12:14], f.Type)
	copy(b[HeaderLen:], f.Payload)
	return HeaderLen + len(f.Payload)
}

// UnmarshalFrame decodes a tunneled frame. The payload aliases b.
func UnmarshalFrame(b []byte) (*Frame, error) {
	f := new(Frame)
	if err := UnmarshalFrameInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// UnmarshalFrameInto decodes a tunneled frame into a caller-owned
// Frame, allocating nothing. The payload aliases b.
func UnmarshalFrameInto(f *Frame, b []byte) error {
	if len(b) < HeaderLen {
		return errShortFrame
	}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.Type = binary.BigEndian.Uint16(b[12:14])
	f.Payload = b[HeaderLen:]
	return nil
}

var errShortFrame = errors.New("ether: short frame")

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an ARP packet for IPv4-over-Ethernet. Gratuitous ARP (the
// mechanism that re-points peers after VM live migration) sets
// SenderIP == TargetIP and broadcasts.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  netsim.IP
	TargetMAC MAC
	TargetIP  netsim.IP
}

const arpLen = 28

// Marshal encodes the ARP packet (fixed Ethernet/IPv4 hardware and
// protocol types).
func (a *ARP) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:], 1)      // HTYPE Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // PTYPE IPv4
	b[4], b[5] = 6, 4                         // HLEN, PLEN
	binary.BigEndian.PutUint16(b[6:], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	binary.BigEndian.PutUint32(b[14:], uint32(a.SenderIP))
	copy(b[18:24], a.TargetMAC[:])
	binary.BigEndian.PutUint32(b[24:], uint32(a.TargetIP))
	return b
}

// UnmarshalARP decodes an ARP packet.
func UnmarshalARP(b []byte) (*ARP, error) {
	if len(b) < arpLen {
		return nil, errors.New("ether: short ARP")
	}
	a := &ARP{
		Op:       binary.BigEndian.Uint16(b[6:]),
		SenderIP: netsim.IP(binary.BigEndian.Uint32(b[14:])),
		TargetIP: netsim.IP(binary.BigEndian.Uint32(b[24:])),
	}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.TargetMAC[:], b[18:24])
	return a, nil
}

// GratuitousARP builds the broadcast announcement a VMM injects when a
// migrated VM resumes.
func GratuitousARP(mac MAC, ip netsim.IP) *Frame {
	arp := &ARP{Op: ARPRequest, SenderMAC: mac, SenderIP: ip, TargetMAC: MAC{}, TargetIP: ip}
	return &Frame{Dst: Broadcast, Src: mac, Type: TypeARP, Payload: arp.Marshal()}
}

// MACTable is a learning table with entry aging, generic over the port
// type so both the software bridge and the WAV-Switch can use it.
//
// It is copy-on-write: the entry map is immutable once published, so
// forwarding lookups and refresh-learns of known MACs are lock-free
// atomic reads/writes and never contend with structural changes. Only
// mutations that change the key set (a new MAC, Forget, ForgetPort)
// take the mutex, rebuild the map — sweeping aged-out entries while
// they are at it — and publish the copy. Lookup is a pure read: a stale
// entry reports a miss and is reclaimed by the next rebuild or an
// explicit Sweep, never on the fast path.
type MACTable[P comparable] struct {
	eng     *sim.Engine
	AgeTime sim.Duration
	mu      sync.Mutex // serializes map rebuilds only
	entries atomic.Pointer[map[MAC]*macEntry[P]]
}

type macEntry[P comparable] struct {
	port atomic.Pointer[P]
	seen atomic.Int64 // sim.Time of the last Learn
}

// NewMACTable creates a table; ageTime <= 0 selects 300 s (the Linux
// bridge default).
func NewMACTable[P comparable](eng *sim.Engine, ageTime sim.Duration) *MACTable[P] {
	if ageTime <= 0 {
		ageTime = 300 * sim.Second
	}
	t := &MACTable[P]{eng: eng, AgeTime: ageTime}
	m := make(map[MAC]*macEntry[P])
	t.entries.Store(&m)
	return t
}

// Learn records that mac was seen on port. Refreshing a known MAC is
// the data-path case and is allocation-free and lock-free; the first
// sighting of a MAC rebuilds the map under the mutex.
func (t *MACTable[P]) Learn(mac MAC, port P) {
	if mac.IsMulticast() {
		return
	}
	if e, ok := (*t.entries.Load())[mac]; ok {
		if *e.port.Load() != port {
			p := port
			e.port.Store(&p)
		}
		e.seen.Store(int64(t.eng.Now()))
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := (*t.entries.Load())[mac]; ok { // raced with another learner
		p := port
		e.port.Store(&p)
		e.seen.Store(int64(t.eng.Now()))
		return
	}
	e := &macEntry[P]{}
	p := port
	e.port.Store(&p)
	e.seen.Store(int64(t.eng.Now()))
	t.rebuild(func(m map[MAC]*macEntry[P]) { m[mac] = e })
}

// rebuild copies the published map, dropping aged-out entries along the
// way, applies mutate to the copy, and publishes it. Caller holds mu.
func (t *MACTable[P]) rebuild(mutate func(map[MAC]*macEntry[P])) {
	old := *t.entries.Load()
	now := t.eng.Now()
	m := make(map[MAC]*macEntry[P], len(old)+1)
	for mac, e := range old {
		if now.Sub(sim.Time(e.seen.Load())) > t.AgeTime {
			continue
		}
		m[mac] = e
	}
	if mutate != nil {
		mutate(m)
	}
	t.entries.Store(&m)
}

// Lookup returns the port mac was last seen on, if the entry is fresh.
// It is a pure lock-free read safe to call concurrently with Learn.
func (t *MACTable[P]) Lookup(mac MAC) (P, bool) {
	e, ok := (*t.entries.Load())[mac]
	if !ok || t.eng.Now().Sub(sim.Time(e.seen.Load())) > t.AgeTime {
		var zero P
		return zero, false
	}
	return *e.port.Load(), true
}

// Forget drops the entry for mac.
func (t *MACTable[P]) Forget(mac MAC) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := (*t.entries.Load())[mac]; !ok {
		return
	}
	t.rebuild(func(m map[MAC]*macEntry[P]) { delete(m, mac) })
}

// ForgetPort drops every entry pointing at port (used when a tunnel or
// bridge port goes away).
func (t *MACTable[P]) ForgetPort(port P) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuild(func(m map[MAC]*macEntry[P]) {
		for mac, e := range m {
			if *e.port.Load() == port {
				delete(m, mac)
			}
		}
	})
}

// Sweep reclaims aged-out entries off the fast path.
func (t *MACTable[P]) Sweep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuild(nil)
}

// Len reports the number of entries still resident, fresh or not
// (aged-out entries linger until the next rebuild or Sweep).
func (t *MACTable[P]) Len() int { return len(*t.entries.Load()) }
