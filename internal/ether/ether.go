// Package ether provides the link-layer building blocks of WAVNet's
// virtual LAN: Ethernet frame and ARP codecs, a software bridge with MAC
// learning (the Linux bridge of the paper's Figure 5), and the generic
// learning table the WAV-Switch reuses to map MACs onto wide-area
// tunnels.
package ether

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// SeqMAC returns a locally-administered unicast MAC derived from a
// sequence number, for deterministic address assignment.
func SeqMAC(n uint32) MAC {
	return MAC{0x02, 0x57, 0x41, byte(n >> 16), byte(n >> 8), byte(n)} // 02:57:41 = "WA"
}

// EtherType values used on the virtual LAN.
const (
	TypeIPv4 uint16 = 0x0800
	TypeARP  uint16 = 0x0806
)

// HeaderLen is the Ethernet header size (no FCS is modeled).
const HeaderLen = 14

// Frame is a link-layer frame. Payload is not copied by the bridge;
// receivers must treat frames as immutable.
type Frame struct {
	Dst, Src MAC
	Type     uint16
	Payload  []byte
}

// WireLen returns the frame's size on the wire.
func (f *Frame) WireLen() int { return HeaderLen + len(f.Payload) }

// Marshal encodes the frame for tunneling.
func (f *Frame) Marshal() []byte {
	b := make([]byte, HeaderLen+len(f.Payload))
	f.MarshalTo(b)
	return b
}

// MarshalTo encodes the frame into b, which must hold at least
// WireLen() bytes, and returns the number of bytes written. It lets
// encapsulations prepend their own headers without a second copy.
func (f *Frame) MarshalTo(b []byte) int {
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	binary.BigEndian.PutUint16(b[12:14], f.Type)
	copy(b[HeaderLen:], f.Payload)
	return HeaderLen + len(f.Payload)
}

// UnmarshalFrame decodes a tunneled frame. The payload aliases b.
func UnmarshalFrame(b []byte) (*Frame, error) {
	if len(b) < HeaderLen {
		return nil, errors.New("ether: short frame")
	}
	f := &Frame{Type: binary.BigEndian.Uint16(b[12:14]), Payload: b[HeaderLen:]}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	return f, nil
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an ARP packet for IPv4-over-Ethernet. Gratuitous ARP (the
// mechanism that re-points peers after VM live migration) sets
// SenderIP == TargetIP and broadcasts.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  netsim.IP
	TargetMAC MAC
	TargetIP  netsim.IP
}

const arpLen = 28

// Marshal encodes the ARP packet (fixed Ethernet/IPv4 hardware and
// protocol types).
func (a *ARP) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:], 1)      // HTYPE Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // PTYPE IPv4
	b[4], b[5] = 6, 4                         // HLEN, PLEN
	binary.BigEndian.PutUint16(b[6:], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	binary.BigEndian.PutUint32(b[14:], uint32(a.SenderIP))
	copy(b[18:24], a.TargetMAC[:])
	binary.BigEndian.PutUint32(b[24:], uint32(a.TargetIP))
	return b
}

// UnmarshalARP decodes an ARP packet.
func UnmarshalARP(b []byte) (*ARP, error) {
	if len(b) < arpLen {
		return nil, errors.New("ether: short ARP")
	}
	a := &ARP{
		Op:       binary.BigEndian.Uint16(b[6:]),
		SenderIP: netsim.IP(binary.BigEndian.Uint32(b[14:])),
		TargetIP: netsim.IP(binary.BigEndian.Uint32(b[24:])),
	}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.TargetMAC[:], b[18:24])
	return a, nil
}

// GratuitousARP builds the broadcast announcement a VMM injects when a
// migrated VM resumes.
func GratuitousARP(mac MAC, ip netsim.IP) *Frame {
	arp := &ARP{Op: ARPRequest, SenderMAC: mac, SenderIP: ip, TargetMAC: MAC{}, TargetIP: ip}
	return &Frame{Dst: Broadcast, Src: mac, Type: TypeARP, Payload: arp.Marshal()}
}

// MACTable is a learning table with entry aging, generic over the port
// type so both the software bridge and the WAV-Switch can use it.
type MACTable[P comparable] struct {
	eng     *sim.Engine
	AgeTime sim.Duration
	entries map[MAC]*macEntry[P]
}

type macEntry[P comparable] struct {
	port P
	seen sim.Time
}

// NewMACTable creates a table; ageTime <= 0 selects 300 s (the Linux
// bridge default).
func NewMACTable[P comparable](eng *sim.Engine, ageTime sim.Duration) *MACTable[P] {
	if ageTime <= 0 {
		ageTime = 300 * sim.Second
	}
	return &MACTable[P]{eng: eng, AgeTime: ageTime, entries: make(map[MAC]*macEntry[P])}
}

// Learn records that mac was seen on port.
func (t *MACTable[P]) Learn(mac MAC, port P) {
	if mac.IsMulticast() {
		return
	}
	e, ok := t.entries[mac]
	if !ok {
		e = &macEntry[P]{}
		t.entries[mac] = e
	}
	e.port = port
	e.seen = t.eng.Now()
}

// Lookup returns the port mac was last seen on, if the entry is fresh.
func (t *MACTable[P]) Lookup(mac MAC) (P, bool) {
	var zero P
	e, ok := t.entries[mac]
	if !ok {
		return zero, false
	}
	if t.eng.Now().Sub(e.seen) > t.AgeTime {
		delete(t.entries, mac)
		return zero, false
	}
	return e.port, true
}

// Forget drops the entry for mac.
func (t *MACTable[P]) Forget(mac MAC) { delete(t.entries, mac) }

// ForgetPort drops every entry pointing at port (used when a tunnel or
// bridge port goes away).
func (t *MACTable[P]) ForgetPort(port P) {
	for mac, e := range t.entries {
		if e.port == port {
			delete(t.entries, mac)
		}
	}
}

// Len reports the number of live entries (without aging them).
func (t *MACTable[P]) Len() int { return len(t.entries) }
