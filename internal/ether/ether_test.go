package ether

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Dst: SeqMAC(1), Src: SeqMAC(2), Type: TypeIPv4, Payload: []byte("payload")}
	got, err := UnmarshalFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	if f.WireLen() != HeaderLen+7 {
		t.Fatalf("WireLen = %d", f.WireLen())
	}
}

func TestFrameUnmarshalShort(t *testing.T) {
	if _, err := UnmarshalFrame(make([]byte, 13)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, typ uint16, payload []byte) bool {
		fr := &Frame{Dst: MAC(dst), Src: MAC(src), Type: typ, Payload: payload}
		got, err := UnmarshalFrame(fr.Marshal())
		return err == nil && got.Dst == fr.Dst && got.Src == fr.Src &&
			got.Type == fr.Type && bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Op:        ARPReply,
		SenderMAC: SeqMAC(3),
		SenderIP:  netsim.MustParseIP("10.0.0.3"),
		TargetMAC: SeqMAC(4),
		TargetIP:  netsim.MustParseIP("10.0.0.4"),
	}
	got, err := UnmarshalARP(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
}

func TestGratuitousARP(t *testing.T) {
	ip := netsim.MustParseIP("10.0.0.9")
	f := GratuitousARP(SeqMAC(9), ip)
	if !f.Dst.IsBroadcast() {
		t.Fatal("gratuitous ARP must broadcast")
	}
	a, err := UnmarshalARP(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.SenderIP != ip || a.TargetIP != ip {
		t.Fatalf("gratuitous ARP sender/target IPs: %v %v", a.SenderIP, a.TargetIP)
	}
}

func TestMACHelpers(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast flags wrong")
	}
	if SeqMAC(1).IsMulticast() {
		t.Fatal("SeqMAC must be unicast")
	}
	if SeqMAC(1) == SeqMAC(2) {
		t.Fatal("SeqMAC collision")
	}
	if SeqMAC(7).String() == "" {
		t.Fatal("empty MAC string")
	}
}

func TestMACTableLearnLookupAge(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewMACTable[int](eng, 10*time.Second)
	tbl.Learn(SeqMAC(1), 42)
	if p, ok := tbl.Lookup(SeqMAC(1)); !ok || p != 42 {
		t.Fatalf("lookup = %v,%v", p, ok)
	}
	eng.RunUntil(sim.Time(11 * time.Second))
	if _, ok := tbl.Lookup(SeqMAC(1)); ok {
		t.Fatal("entry survived aging")
	}
	tbl.Learn(Broadcast, 1)
	if _, ok := tbl.Lookup(Broadcast); ok {
		t.Fatal("multicast learned")
	}
}

func TestMACTableForgetPort(t *testing.T) {
	eng := sim.NewEngine(1)
	tbl := NewMACTable[string](eng, 0)
	tbl.Learn(SeqMAC(1), "tun-a")
	tbl.Learn(SeqMAC(2), "tun-a")
	tbl.Learn(SeqMAC(3), "tun-b")
	tbl.ForgetPort("tun-a")
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after ForgetPort", tbl.Len())
	}
	if _, ok := tbl.Lookup(SeqMAC(3)); !ok {
		t.Fatal("unrelated entry lost")
	}
}

// threePortBridge wires three stub devices to a bridge and returns their
// receive logs.
func threePortBridge(eng *sim.Engine) (*Bridge, []*BridgePort, []*[]*Frame) {
	b := NewBridge(eng, "br0", 10*time.Microsecond)
	var ports []*BridgePort
	var logs []*[]*Frame
	for _, name := range []string{"p0", "p1", "p2"} {
		p := b.AddPort(name)
		log := &[]*Frame{}
		p.SetRecv(func(f *Frame) { *log = append(*log, f) })
		ports = append(ports, p)
		logs = append(logs, log)
	}
	return b, ports, logs
}

func TestBridgeFloodsUnknownThenForwards(t *testing.T) {
	eng := sim.NewEngine(1)
	_, ports, logs := threePortBridge(eng)
	macA, macB := SeqMAC(10), SeqMAC(11)

	// Unknown destination: flood to all but ingress.
	ports[0].Send(&Frame{Dst: macB, Src: macA, Type: TypeIPv4, Payload: []byte("x")})
	eng.Run()
	if len(*logs[0]) != 0 || len(*logs[1]) != 1 || len(*logs[2]) != 1 {
		t.Fatalf("flood delivery: %d %d %d", len(*logs[0]), len(*logs[1]), len(*logs[2]))
	}

	// B replies from port 2: A is now learned, so delivery is unicast.
	ports[2].Send(&Frame{Dst: macA, Src: macB, Type: TypeIPv4, Payload: []byte("y")})
	eng.Run()
	if len(*logs[0]) != 1 || len(*logs[1]) != 1 {
		t.Fatalf("reply delivery: %d %d", len(*logs[0]), len(*logs[1]))
	}

	// A to B again: B was learned on port 2 — unicast, no flood.
	ports[0].Send(&Frame{Dst: macB, Src: macA, Type: TypeIPv4, Payload: []byte("z")})
	eng.Run()
	if len(*logs[1]) != 1 {
		t.Fatal("frame flooded despite learned destination")
	}
	if len(*logs[2]) != 2 {
		t.Fatalf("unicast delivery failed: %d", len(*logs[2]))
	}
}

func TestBridgeBroadcast(t *testing.T) {
	eng := sim.NewEngine(1)
	_, ports, logs := threePortBridge(eng)
	ports[1].Send(&Frame{Dst: Broadcast, Src: SeqMAC(1), Type: TypeARP})
	eng.Run()
	if len(*logs[0]) != 1 || len(*logs[1]) != 0 || len(*logs[2]) != 1 {
		t.Fatalf("broadcast delivery: %d %d %d", len(*logs[0]), len(*logs[1]), len(*logs[2]))
	}
}

func TestBridgeRemovePort(t *testing.T) {
	eng := sim.NewEngine(1)
	b, ports, logs := threePortBridge(eng)
	macA := SeqMAC(20)
	ports[0].Send(&Frame{Dst: Broadcast, Src: macA, Type: TypeARP}) // learn A@p0
	eng.Run()
	b.RemovePort(ports[0])
	// Frames to A now flood (entry flushed) and nothing reaches the dead port.
	ports[1].Send(&Frame{Dst: macA, Src: SeqMAC(21), Type: TypeIPv4})
	eng.Run()
	if len(*logs[0]) != 0 { // p0 sent the broadcast, so it never received anything
		t.Fatalf("dead port received frames: %d", len(*logs[0]))
	}
	if len(*logs[2]) != 2 {
		t.Fatalf("flood after flush missing: %d", len(*logs[2]))
	}
}

func TestBridgeMigrationRelearn(t *testing.T) {
	// The live-migration critical path: a MAC moves ports, the gratuitous
	// ARP must re-point the table immediately.
	eng := sim.NewEngine(1)
	_, ports, logs := threePortBridge(eng)
	vm := SeqMAC(30)
	ports[1].Send(&Frame{Dst: Broadcast, Src: vm, Type: TypeARP}) // VM at p1
	eng.Run()
	// VM "migrates" to p2 and announces itself.
	ports[2].Send(GratuitousARP(vm, netsim.MustParseIP("10.0.0.30")))
	eng.Run()
	// Traffic to the VM must now reach p2 only.
	before2 := len(*logs[2])
	before1 := len(*logs[1])
	ports[0].Send(&Frame{Dst: vm, Src: SeqMAC(31), Type: TypeIPv4})
	eng.Run()
	if len(*logs[1]) != before1 {
		t.Fatal("frame still delivered to the old port")
	}
	if len(*logs[2]) != before2+1 {
		t.Fatal("frame not delivered to the new port")
	}
}

func TestPipe(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPipe(eng, time.Millisecond)
	var got *Frame
	var at sim.Time
	p.B.SetRecv(func(f *Frame) { got = f; at = eng.Now() })
	p.A.Send(&Frame{Dst: SeqMAC(1), Src: SeqMAC(2), Type: TypeIPv4})
	eng.Run()
	if got == nil || at != sim.Time(time.Millisecond) {
		t.Fatalf("pipe delivery got=%v at=%v", got, at)
	}
}
