package rendezvous

import (
	"fmt"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// newBroker adds one more rendezvous server to an existing test network
// (newServer builds the first at 50.0.0.1).
func newBroker(t *testing.T, eng *sim.Engine, nw *netsim.Network, n int, cfg Config) *Server {
	t.Helper()
	site := nw.NewSite(fmt.Sprintf("hub%d", n))
	ip := fmt.Sprintf("50.0.%d.1", n)
	alt := fmt.Sprintf("50.0.%d.2", n)
	host := nw.NewPublicHost("rdv"+ip, site, netsim.MustParseIP(ip), 0, time.Millisecond)
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 30 * time.Second
	}
	s, err := NewServer(host, netsim.MustParseIP(alt), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Bootstrap()
	return s
}

// federate wires mutual trust between every pair of brokers.
func federate(brokers ...*Server) {
	for _, a := range brokers {
		for _, b := range brokers {
			if a != b {
				a.Federate(b.Addr())
			}
		}
	}
}

// TestFederationCodecRoundTrips covers the broker-to-broker message
// kinds on the shared JSON codec.
func TestFederationCodecRoundTrips(t *testing.T) {
	rec := HostRecord{
		Name:   "alpha",
		Mapped: netsim.Addr{IP: netsim.MustParseIP("60.0.0.1"), Port: 4500},
		Server: netsim.Addr{IP: netsim.MustParseIP("50.0.0.1"), Port: DefaultPort},
		Net:    "red", VNI: 7,
	}
	cases := []*Msg{
		{Kind: kindReplicate, Rec: &rec},
		{Kind: kindWithdraw, Name: "alpha", Net: "red"},
		{Kind: kindFwdConnect, ID: 42, Name: "beta", Rec: &rec},
		{Kind: kindFwdConnectAck, ID: 42, Rec: &rec},
		{Kind: kindPeerAllow, Nets: []string{"red", "blue"}},
		{Kind: kindPeerRevoke, Nets: []string{"red", "blue"}},
	}
	for _, m := range cases {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%s: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.ID != m.ID || got.Name != m.Name || got.Net != m.Net {
			t.Fatalf("%s: envelope mismatch: %+v", m.Kind, got)
		}
		if len(m.Nets) != len(got.Nets) {
			t.Fatalf("%s: nets %v -> %v", m.Kind, m.Nets, got.Nets)
		}
		for i := range m.Nets {
			if got.Nets[i] != m.Nets[i] {
				t.Fatalf("%s: nets %v -> %v", m.Kind, m.Nets, got.Nets)
			}
		}
		if m.Rec != nil {
			if got.Rec == nil || got.Rec.Name != m.Rec.Name || got.Rec.Net != m.Rec.Net ||
				got.Rec.VNI != m.Rec.VNI || got.Rec.Server != m.Rec.Server || got.Rec.Mapped != m.Rec.Mapped {
				t.Fatalf("%s: record mismatch: %+v", m.Kind, got.Rec)
			}
		}
	}
}

// TestReplicationIsScopedByNetwork: records of a network travel only to
// the brokers its replication set names; a federated broker that does
// not serve the network holds zero of its records, and rejects replicas
// pushed at it anyway.
func TestReplicationIsScopedByNetwork(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	c := newBroker(t, eng, nw, 2, Config{})
	federate(a, b, c)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})
	// c is never told about red.

	cl := newClient(t, nw, "60.0.0.1")
	cl.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red", VNI: 3}})
	eng.RunFor(2 * time.Second)

	if !a.HasSession("alpha") {
		t.Fatal("home broker lost the session")
	}
	if !b.HasReplica("alpha") {
		t.Fatal("named broker did not receive the replica")
	}
	if got := b.RecordsFor("red"); got != 1 {
		t.Fatalf("b records for red = %d, want 1", got)
	}
	if got := c.RecordsFor("red"); got != 0 {
		t.Fatalf("scope violated: unnamed broker holds %d red records", got)
	}
	if c.ReplicaCount() != 0 {
		t.Fatalf("unnamed broker holds %d replicas", c.ReplicaCount())
	}

	// A replica pushed at c from a federated peer is rejected by the
	// serve check; one from a stranger is rejected by the trust check.
	rec := HostRecord{Name: "mallory", Net: "red", Server: a.Addr()}
	before := c.RejectedFederation
	a.sendReplicate(c.Addr(), rec)
	eng.RunFor(time.Second)
	if c.HasReplica("mallory") {
		t.Fatal("unserved-network replica accepted")
	}
	stranger := newClient(t, nw, "60.0.0.9")
	stranger.sock.SendTo(c.Addr(), Encode(&Msg{Kind: kindReplicate, Rec: &rec}))
	eng.RunFor(time.Second)
	if c.HasReplica("mallory") {
		t.Fatal("unfederated replica accepted")
	}
	if c.RejectedFederation != before+2 {
		t.Fatalf("rejected = %d, want %d", c.RejectedFederation, before+2)
	}

	// Cross-broker lookup resolves through the replica, scoped: visible
	// to a co-tenant querier on b, invisible outside the network.
	q := newClient(t, nw, "60.0.0.2")
	q.send(b, &Msg{Kind: "lookup", ID: 5, Name: "alpha", Net: "red"})
	q.send(b, &Msg{Kind: "lookup", ID: 6, Name: "alpha", Net: "blue"})
	eng.RunFor(2 * time.Second)
	replies := 0
	for _, m := range q.got {
		if m.Kind != "lookup-reply" {
			continue
		}
		replies++
		switch m.ID {
		case 5:
			if len(m.Records) != 1 || m.Records[0].Name != "alpha" || m.Records[0].Server != a.Addr() {
				t.Fatalf("scoped lookup through replica: %+v", m.Records)
			}
		case 6:
			if len(m.Records) != 0 {
				t.Fatalf("foreign-net lookup leaked %d records", len(m.Records))
			}
		}
	}
	if replies != 2 {
		t.Fatalf("got %d lookup replies, want 2", replies)
	}
}

// TestCrossBrokerConnectForwards: a connect whose target is homed on a
// different broker forwards the punch orchestration there, and both
// hosts end up with punch orders naming each other.
func TestCrossBrokerConnectForwards(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	federate(a, b)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})

	alpha := newClient(t, nw, "60.0.0.1")
	beta := newClient(t, nw, "60.0.0.2")
	alpha.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	beta.send(b, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", Net: "red"}})
	eng.RunFor(2 * time.Second)
	if !a.HasReplica("beta") || !b.HasReplica("alpha") {
		t.Fatal("replicas did not converge")
	}

	alpha.send(a, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	oa, ob := alpha.last("punch-order"), beta.last("punch-order")
	if oa == nil || ob == nil {
		t.Fatalf("punch orders missing: a=%v b=%v", oa, ob)
	}
	if oa.Peer.Name != "beta" || ob.Peer.Name != "alpha" {
		t.Fatalf("wrong peers: %v / %v", oa.Peer.Name, ob.Peer.Name)
	}
	if oa.Peer.Mapped.IsZero() || ob.Peer.Mapped.IsZero() {
		t.Fatal("punch order lacks the peer's mapping")
	}
	if a.FwdConnectsOut != 1 || b.FwdConnectsIn != 1 {
		t.Fatalf("forward counters: out=%d in=%d", a.FwdConnectsOut, b.FwdConnectsIn)
	}

	// A cross-tenant target is refused at the requester's broker even
	// though a replica exists.
	gamma := newClient(t, nw, "60.0.0.3")
	a.SetNetBrokers("blue", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("blue", []netsim.Addr{a.Addr()})
	gamma.send(b, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "gamma", Net: "blue"}})
	eng.RunFor(2 * time.Second)
	alpha.send(a, &Msg{Kind: "connect", ID: 3, Name: "alpha", Peer: &HostRecord{Name: "gamma"}})
	eng.RunFor(2 * time.Second)
	if e := alpha.last("error"); e == nil || e.ID != 3 {
		t.Fatalf("cross-tenant forwarded connect not refused: %+v", e)
	}
}

// TestFwdConnectFailureFastFails: when the target's home broker cannot
// serve a forwarded connect (stale replica, session expired there), the
// kindError travels back through the requester's broker and resolves
// the pending introduction — the host gets a coded error instead of
// waiting out its timeout.
func TestFwdConnectFailureFastFails(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	federate(a, b)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})

	alpha := newClient(t, nw, "60.0.0.1")
	alpha.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	eng.RunFor(time.Second)
	// A stale replica: b advertises ghost but holds no session for it.
	b.sendReplicate(a.Addr(), HostRecord{Name: "ghost", Net: "red", Server: b.Addr()})
	eng.RunFor(time.Second)
	if !a.HasReplica("ghost") {
		t.Fatal("replica setup failed")
	}
	alpha.send(a, &Msg{Kind: "connect", ID: 7, Name: "alpha", Peer: &HostRecord{Name: "ghost"}})
	eng.RunFor(2 * time.Second)
	e := alpha.last("error")
	if e == nil || e.ID != 7 {
		t.Fatalf("no fast error for failed forwarded connect: %+v", e)
	}
	if e.Code != CodeNotFound {
		t.Fatalf("error not coded transient: %+v", e)
	}
}

// TestFederatedButUnnamedBrokerRejected: being federated is not enough —
// replication, withdrawal and peering propagation are honored only from
// brokers inside the network's own replication set.
func TestFederatedButUnnamedBrokerRejected(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	outsider := newBroker(t, eng, nw, 2, Config{})
	federate(a, b, outsider)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})
	a.SetNetBrokers("blue", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("blue", []netsim.Addr{a.Addr()})

	// The outsider is federated with b but in no replication set: its
	// replicate must not overwrite the genuine record, and its peering
	// propagation must not open b.
	cl := newClient(t, nw, "60.0.0.1")
	cl.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	eng.RunFor(2 * time.Second)
	outsider.sendReplicate(b.Addr(), HostRecord{Name: "alpha", Net: "red", Server: outsider.Addr()})
	outsider.sock.SendTo(b.Addr(), Encode(&Msg{Kind: kindPeerAllow, Nets: []string{"red", "blue"}}))
	outsider.sendWithdraw(b.Addr(), HostRecord{Name: "alpha", Net: "red"})
	eng.RunFor(time.Second)
	if b.PeeringAllowed("red", "blue") {
		t.Fatal("peer-allow from an unnamed broker was honored")
	}
	if !b.HasReplica("alpha") {
		t.Fatal("withdraw from an unnamed broker was honored")
	}
	rep := b.RecordsFor("red")
	if rep != 1 {
		t.Fatalf("red records = %d, want the one genuine replica", rep)
	}
	if b.RejectedFederation < 3 {
		t.Fatalf("rejections = %d, want >= 3", b.RejectedFederation)
	}
	// The genuine replica must still name the true home broker.
	q := newClient(t, nw, "60.0.0.2")
	q.send(b, &Msg{Kind: "lookup", ID: 5, Name: "alpha", Net: "red"})
	eng.RunFor(time.Second)
	lr := q.last("lookup-reply")
	if lr == nil || len(lr.Records) != 1 || lr.Records[0].Server != a.Addr() {
		t.Fatalf("replica corrupted: %+v", lr)
	}
}

// TestPeeringAllowancePropagates: AllowPeering on one broker reaches
// every federated broker serving either network, and the propagated
// allowance actually permits a forwarded cross-network connect there.
func TestPeeringAllowancePropagates(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	federate(a, b)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})
	a.SetNetBrokers("blue", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("blue", []netsim.Addr{a.Addr()})

	alpha := newClient(t, nw, "60.0.0.1")
	gamma := newClient(t, nw, "60.0.0.3")
	alpha.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	gamma.send(b, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "gamma", Net: "blue"}})
	eng.RunFor(2 * time.Second)

	a.AllowPeering("red", "blue")
	eng.RunFor(time.Second)
	if !b.PeeringAllowed("red", "blue") {
		t.Fatal("allowance did not propagate")
	}

	// gamma (homed on b) connects to alpha (homed on a): b forwards, a
	// must honor the propagated allowance when validating the intro.
	gamma.send(b, &Msg{Kind: "connect", ID: 2, Name: "gamma", Peer: &HostRecord{Name: "alpha"}})
	eng.RunFor(2 * time.Second)
	if o := gamma.last("punch-order"); o == nil || o.Peer.Name != "alpha" {
		t.Fatalf("peered cross-broker connect failed: %+v", o)
	}

	a.RevokePeering("red", "blue")
	eng.RunFor(time.Second)
	if b.PeeringAllowed("red", "blue") {
		t.Fatal("revocation did not propagate")
	}
	gamma.send(b, &Msg{Kind: "connect", ID: 4, Name: "gamma", Peer: &HostRecord{Name: "alpha"}})
	eng.RunFor(2 * time.Second)
	if e := gamma.last("error"); e == nil || e.ID != 4 {
		t.Fatal("connect after revocation not refused")
	}
}

// TestWithdrawOnExpiryAndRescope: a session that expires (or rescopes
// to another network) is withdrawn from its replication set.
func TestWithdrawOnExpiryAndRescope(t *testing.T) {
	eng, nw, a := newServer(t)
	b := newBroker(t, eng, nw, 1, Config{})
	federate(a, b)
	a.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{a.Addr()})
	a.SetNetBrokers("blue", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("blue", []netsim.Addr{a.Addr()})

	cl := newClient(t, nw, "60.0.0.1")
	cl.send(a, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	eng.RunFor(2 * time.Second)
	if !b.HasReplica("alpha") {
		t.Fatal("no replica")
	}

	// Rescope to blue: the red replica is replaced, never duplicated.
	cl.send(a, &Msg{Kind: "join", ID: 2, Rec: &HostRecord{Name: "alpha", Net: "blue"}})
	eng.RunFor(2 * time.Second)
	if got := b.RecordsFor("red"); got != 0 {
		t.Fatalf("rescoped record still replicated under red (%d)", got)
	}
	if got := b.RecordsFor("blue"); got != 1 {
		t.Fatalf("blue records = %d, want 1", got)
	}

	// Keep the session alive a while (replicas must survive refreshes),
	// then stop pulsing and let it expire everywhere.
	for i := 0; i < 4; i++ {
		eng.RunFor(10 * time.Second)
		cl.send(a, &Msg{Kind: "pulse", Name: "alpha"})
	}
	eng.RunFor(time.Second)
	if !b.HasReplica("alpha") {
		t.Fatal("replica did not survive refresh cycles")
	}
	eng.RunFor(2 * time.Minute)
	if a.HasSession("alpha") {
		t.Fatal("session did not expire")
	}
	if b.HasReplica("alpha") {
		t.Fatal("replica outlived the session")
	}
}

// TestBatchedReplicationLags: with a replication interval configured,
// a freshly joined record becomes visible at the peer only after the
// next flush — the lag the federation experiment measures.
func TestBatchedReplicationLags(t *testing.T) {
	eng, nw, a := newServer(t)
	lag := 5 * time.Second
	b := newBroker(t, eng, nw, 1, Config{})
	lagged := newBroker(t, eng, nw, 2, Config{ReplicateInterval: lag})
	federate(a, b, lagged)
	lagged.SetNetBrokers("red", []netsim.Addr{b.Addr()})
	b.SetNetBrokers("red", []netsim.Addr{lagged.Addr()})

	cl := newClient(t, nw, "60.0.0.1")
	cl.send(lagged, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", Net: "red"}})
	eng.RunFor(time.Second)
	if b.HasReplica("alpha") {
		t.Fatal("batched replication arrived before the flush interval")
	}
	eng.RunFor(lag + time.Second)
	if !b.HasReplica("alpha") {
		t.Fatal("batched replication never flushed")
	}
}
