package rendezvous

import (
	"sort"

	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Federated rendezvous: brokers peer with each other and replicate host
// records *scoped by network*. A record for tenant network N is copied
// only to the brokers N's tenant spec names (the reconciled replication
// set), so a broker never learns about tenants it does not serve — the
// PIP/VNP-style partition of virtual-network state across mutually
// distrusting providers. Cross-broker lookups answer from the local
// replica store (no extra hop); cross-broker connects forward the punch
// orchestration to the target's home broker, which holds the only live
// NAT session to the target; peering allowances propagate so inter-VNI
// gateway connects keep working across the federation.

// replica is one host record received from a federated peer. rec.Server
// names the home broker the punch orchestration must be forwarded to.
type replica struct {
	rec      HostRecord
	lastSeen sim.Time
}

// Federate registers a trusted peer broker. Broker-to-broker messages
// (replication, withdrawal, forwarded connects, peering propagation)
// from addresses that were never federated are rejected and counted.
// Federating (or re-federating) a peer also resets its liveness clock,
// granting a fresh BrokerTTL of grace before it can be declared dead.
func (s *Server) Federate(peer netsim.Addr) {
	s.federated[peer] = true
	s.peerSeen[peer] = s.eng.Now()
}

// Federated reports whether the address is a trusted peer broker.
func (s *Server) Federated(peer netsim.Addr) bool { return s.federated[peer] }

// SetNetBrokers installs the replication set of one virtual network:
// the federated brokers (excluding this one) that must hold replicas of
// the network's records. Installing a set also marks the network as
// served here, which is what admits inbound replicas for it. Records of
// current sessions are replicated to newly added peers immediately and
// withdrawn from removed ones, so reconfiguration converges without
// waiting for the refresh ticker.
func (s *Server) SetNetBrokers(net string, peers []netsim.Addr) {
	old := s.netBrokers[net]
	s.netBrokers[net] = append([]netsim.Addr(nil), peers...)
	oldSet := make(map[netsim.Addr]bool, len(old))
	for _, a := range old {
		oldSet[a] = true
	}
	newSet := make(map[netsim.Addr]bool, len(peers))
	for _, a := range peers {
		newSet[a] = true
	}
	for _, ses := range s.sessions {
		if ses.rec.Net != net {
			continue
		}
		for _, a := range peers {
			if !oldSet[a] {
				s.sendReplicate(a, ses.rec)
			}
		}
		for _, a := range old {
			if !newSet[a] {
				s.sendWithdraw(a, ses.rec)
			}
		}
	}
}

// ClearNetBrokers removes a network from this broker's serve set:
// replicas held for it are dropped, sessions homed here are withdrawn
// from the old peers, and future replicas for it are rejected.
func (s *Server) ClearNetBrokers(net string) {
	s.SetNetBrokers(net, nil)
	delete(s.netBrokers, net)
	for name, rep := range s.replicas {
		if rep.rec.Net == net {
			delete(s.replicas, name)
		}
	}
}

// ServesNet reports whether the network was configured on this broker
// (a replication set was installed, possibly empty).
func (s *Server) ServesNet(net string) bool {
	_, ok := s.netBrokers[net]
	return ok
}

// replicate copies a session record to the network's replication set —
// immediately, or batched onto the flush ticker when the server is
// configured with a replication interval.
func (s *Server) replicate(rec HostRecord) {
	if len(s.netBrokers[rec.Net]) == 0 {
		return
	}
	if s.cfg.ReplicateInterval > 0 {
		s.dirty[rec.Name] = true
		return
	}
	for _, peer := range s.netBrokers[rec.Net] {
		s.sendReplicate(peer, rec)
	}
}

// flushReplication sends every batched record (the replication-lag knob
// of the federation experiment).
func (s *Server) flushReplication() {
	for name := range s.dirty {
		delete(s.dirty, name)
		ses, ok := s.sessions[name]
		if !ok {
			continue
		}
		for _, peer := range s.netBrokers[ses.rec.Net] {
			s.sendReplicate(peer, ses.rec)
		}
	}
}

func (s *Server) sendReplicate(peer netsim.Addr, rec HostRecord) {
	s.ReplicationsOut++
	s.sock.SendTo(peer, Encode(&Msg{Kind: kindReplicate, Rec: &rec}))
}

// withdraw retracts a record from the network's replication set
// (session expiry, rescope to another network, teardown). Withdrawals
// are never batched: a stale replica is a correctness hazard, a late
// replica only a slower connect.
func (s *Server) withdraw(rec HostRecord) {
	delete(s.dirty, rec.Name)
	for _, peer := range s.netBrokers[rec.Net] {
		s.sendWithdraw(peer, rec)
	}
}

func (s *Server) sendWithdraw(peer netsim.Addr, rec HostRecord) {
	s.WithdrawalsOut++
	s.sock.SendTo(peer, Encode(&Msg{Kind: kindWithdraw, Name: rec.Name, Net: rec.Net}))
}

// brokerOfNet reports whether src is one of the brokers this server
// was configured to share the network with — the per-message trust
// check behind "mutually distrusting providers": being federated at
// all is not enough, the sender must be in the network's own set.
func (s *Server) brokerOfNet(net string, src netsim.Addr) bool {
	for _, peer := range s.netBrokers[net] {
		if peer == src {
			return true
		}
	}
	return false
}

// onReplicate stores a record received from a federated peer. The scope
// check is the trust boundary: replicas are accepted only for networks
// this broker was explicitly configured to serve, and only from the
// brokers of that network's own replication set.
func (s *Server) onReplicate(src netsim.Addr, m *Msg) {
	if m.Rec == nil || m.Rec.Name == "" || !s.federated[src] ||
		!s.ServesNet(m.Rec.Net) || !s.brokerOfNet(m.Rec.Net, src) {
		s.RejectedFederation++
		return
	}
	// A broker trusted for one network must not overwrite another
	// network's replica of the same name: the old network's home broker
	// withdraws (or lets expire) its record first; until then the
	// existing replica stands.
	if rep, ok := s.replicas[m.Rec.Name]; ok && rep.rec.Net != m.Rec.Net {
		s.RejectedFederation++
		return
	}
	// The mirror of onJoin's replica adoption: a federated peer claiming
	// the host homes with IT supersedes our stale session of the same
	// name — without this, a host that re-homed away (e.g. partitioned
	// from us but not from the federation) would keep being answered
	// with the dead-end session for a full TTL, shadowing the fresh
	// replica in lookups and connects. Only a session quiet for more
	// than the refresh interval is superseded: a host truly homed here
	// pulses far more often, so a live session can never be evicted by
	// a peer's (possibly stale) refresh replication.
	if ses, ok := s.sessions[m.Rec.Name]; ok && ses.rec.Net == m.Rec.Net &&
		m.Rec.Server != s.Addr() &&
		ses.lastSeen < s.eng.Now().Add(-s.cfg.SessionTTL/2) {
		delete(s.sessions, m.Rec.Name)
		s.SessionsSuperseded++
	}
	s.ReplicationsIn++
	s.replicas[m.Rec.Name] = &replica{rec: *m.Rec, lastSeen: s.eng.Now()}
}

// onWithdraw drops a replica at its home broker's request.
func (s *Server) onWithdraw(src netsim.Addr, m *Msg) {
	rep, ok := s.replicas[m.Name]
	if !ok || rep.rec.Net != m.Net {
		return
	}
	if !s.federated[src] || !s.brokerOfNet(m.Net, src) {
		s.RejectedFederation++
		return
	}
	s.WithdrawalsIn++
	delete(s.replicas, m.Name)
}

// expireReplicas drops replicas that stopped being refreshed — the
// home broker re-replicates live sessions at half the TTL, so a replica
// older than a full TTL belongs to a dead host or a dead broker.
func (s *Server) expireReplicas(cutoff sim.Time) {
	for name, rep := range s.replicas {
		if rep.lastSeen < cutoff {
			delete(s.replicas, name)
			s.ReplicaExpiries++
		}
	}
}

// ---- broker liveness ----

// pulsePeers sends the broker liveness keepalive to every federated
// peer (the sender side of dead-broker detection).
func (s *Server) pulsePeers() {
	for _, peer := range s.FederatedPeers() {
		s.BrokerPulsesOut++
		s.sock.SendTo(peer, Encode(&Msg{Kind: kindBrokerPulse}))
	}
}

// onBrokerPulse counts an inbound keepalive; the liveness clock itself
// was already bumped centrally in onPacket for any federated source.
func (s *Server) onBrokerPulse(src netsim.Addr) {
	if !s.federated[src] {
		s.RejectedFederation++
		return
	}
	s.BrokerPulsesIn++
}

// brokerDead reports whether a federated peer has been silent past the
// liveness TTL. Addresses that were never federated (including this
// broker's own) are never "dead": staleness only makes sense for peers
// we expect keepalives from.
func (s *Server) brokerDead(peer netsim.Addr) bool {
	if !s.federated[peer] {
		return false
	}
	return s.peerSeen[peer] < s.eng.Now().Add(-s.cfg.BrokerTTL)
}

// expireDeadBrokers withdraws the replicas of federated peers that went
// silent past the liveness TTL: their hosts are re-homing onto the
// survivors, and a record naming a dead home broker would keep steering
// forwarded connects into a black hole. The peer stays federated — if
// it restarts at the same address it is trusted (and pulsing) again.
func (s *Server) expireDeadBrokers() {
	now := s.eng.Now()
	cutoff := now.Add(-s.cfg.BrokerTTL)
	for name, rep := range s.replicas {
		if s.federated[rep.rec.Server] && s.peerSeen[rep.rec.Server] < cutoff {
			delete(s.replicas, name)
			s.DeadBrokerReplicaDrops++
		}
	}
}

// onFwdConnect serves a forwarded connect at the target's home broker:
// a federated peer holds the requester's session, we hold the target's.
// Validation and punch/relay orchestration are shared with the CAN
// introduction path. The forwarding broker must be in the replication
// set of the requester's network or the target's — any other federated
// broker has no business brokering between these tenants.
func (s *Server) onFwdConnect(src netsim.Addr, m *Msg) {
	reqNet := ""
	if m.Rec != nil {
		reqNet = m.Rec.Net
	}
	targetNet := ""
	if ses, ok := s.sessions[m.Name]; ok {
		targetNet = ses.rec.Net
	}
	if !s.federated[src] || !(s.brokerOfNet(reqNet, src) || s.brokerOfNet(targetNet, src)) {
		s.RejectedFederation++
		return
	}
	s.FwdConnectsIn++
	s.introduceLocal(src, m, kindFwdConnectAck)
}

// propagatePeering pushes a peering allowance (or revocation) to every
// federated broker serving either network.
func (s *Server) propagatePeering(kind, netA, netB string) {
	sent := make(map[netsim.Addr]bool)
	for _, net := range []string{netA, netB} {
		for _, peer := range s.netBrokers[net] {
			if sent[peer] {
				continue
			}
			sent[peer] = true
			if kind == kindPeerAllow {
				s.PeerAllowsOut++
			} else {
				s.PeerRevokesOut++
			}
			s.sock.SendTo(peer, Encode(&Msg{Kind: kind, Nets: []string{netA, netB}}))
		}
	}
}

// onPeerPropagation applies a propagated allowance. It deliberately does
// not re-propagate: the origin broker fans out to every serving peer
// itself, which keeps the exchange loop-free. The sender must be in a
// replication set of one of the two networks.
func (s *Server) onPeerPropagation(src netsim.Addr, m *Msg) {
	if !s.federated[src] || len(m.Nets) != 2 ||
		!(s.brokerOfNet(m.Nets[0], src) || s.brokerOfNet(m.Nets[1], src)) {
		s.RejectedFederation++
		return
	}
	key := peerKey(m.Nets[0], m.Nets[1])
	if m.Kind == kindPeerAllow {
		s.PeerAllowsIn++
		s.peered[key] = true
	} else {
		s.PeerRevokesIn++
		delete(s.peered, key)
	}
}

// PeeringAllowed reports whether brokered connects between the two
// networks are currently permitted here.
func (s *Server) PeeringAllowed(netA, netB string) bool { return s.netsLinked(netA, netB) }

// HasSession reports whether the named host is homed on this broker.
func (s *Server) HasSession(name string) bool {
	_, ok := s.sessions[name]
	return ok
}

// HasReplica reports whether this broker holds a federated replica of
// the named host.
func (s *Server) HasReplica(name string) bool {
	_, ok := s.replicas[name]
	return ok
}

// ReplicaCount reports the number of replicas held (after expiry).
func (s *Server) ReplicaCount() int {
	s.expire()
	return len(s.replicas)
}

// RecordsFor counts every record of one virtual network this broker
// holds, homed sessions and replicas alike. The federation's scope
// invariant is RecordsFor(n) == 0 on any broker n's tenant spec does
// not name.
func (s *Server) RecordsFor(net string) int {
	s.expire()
	count := 0
	for _, ses := range s.sessions {
		if ses.rec.Net == net {
			count++
		}
	}
	for _, rep := range s.replicas {
		if rep.rec.Net == net {
			count++
		}
	}
	return count
}

// Counters exports the broker's control-plane counters as a uniform
// metrics.CounterSet (like core.Host.VPCCounters for the data plane):
// session traffic, relay usage, and the federation's replication,
// forwarding and expiry activity.
func (s *Server) Counters() *metrics.CounterSet {
	c := metrics.NewCounterSet()
	c.Set("joins", s.Joins)
	c.Set("pulses", s.Pulses)
	c.Set("lookups", s.Lookups)
	c.Set("connects", s.Connects)
	c.Set("relayed_introductions", s.RelayedIntroductions)
	c.Set("relay_channels", s.RelayChannels)
	c.Set("relay_frames", s.RelayFrames)
	c.Set("replications_out", s.ReplicationsOut)
	c.Set("replications_in", s.ReplicationsIn)
	c.Set("withdrawals_out", s.WithdrawalsOut)
	c.Set("withdrawals_in", s.WithdrawalsIn)
	c.Set("fwd_connects_out", s.FwdConnectsOut)
	c.Set("fwd_connects_in", s.FwdConnectsIn)
	c.Set("peer_allows_out", s.PeerAllowsOut)
	c.Set("peer_allows_in", s.PeerAllowsIn)
	c.Set("peer_revokes_out", s.PeerRevokesOut)
	c.Set("peer_revokes_in", s.PeerRevokesIn)
	c.Set("session_expiries", s.SessionExpiries)
	c.Set("replica_expired", s.ReplicaExpiries)
	c.Set("rejected_federation", s.RejectedFederation)
	c.Set("broker_pulses_out", s.BrokerPulsesOut)
	c.Set("broker_pulses_in", s.BrokerPulsesIn)
	c.Set("replica_dead_broker", s.DeadBrokerReplicaDrops)
	c.Set("replica_adopted", s.ReplicaAdoptions)
	c.Set("session_superseded", s.SessionsSuperseded)
	c.Set("stale_fwd_rejects", s.StaleFwdRejects)
	c.Set("vip_announces_in", s.VIPAnnouncesIn)
	c.Set("vip_withdrawals_in", s.VIPWithdrawalsIn)
	c.Set("vip_replications_out", s.VIPReplicationsOut)
	c.Set("vip_replications_in", s.VIPReplicationsIn)
	c.Set("vip_retracts_out", s.VIPRetractsOut)
	c.Set("vip_retracts_in", s.VIPRetractsIn)
	c.Set("vip_lookups", s.VIPLookups)
	c.Set("vip_expiries", s.VIPExpiries)
	c.Set("vip_dead_broker", s.DeadBrokerVIPDrops)
	c.Set("vip_rejected", s.RejectedVIP)
	return c
}

// PeerDead reports whether a federated peer broker has been silent past
// the liveness TTL (diagnostics and chaos assertions).
func (s *Server) PeerDead(peer netsim.Addr) bool { return s.brokerDead(peer) }

// FederatedPeers lists the trusted peer brokers, sorted for stable
// iteration in tests and diagnostics.
func (s *Server) FederatedPeers() []netsim.Addr {
	out := make([]netsim.Addr, 0, len(s.federated))
	for a := range s.federated {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].IP < out[j].IP || (out[i].IP == out[j].IP && out[i].Port < out[j].Port)
	})
	return out
}
