// Package rendezvous implements WAVNet's rendezvous servers: publicly
// addressable nodes that (1) register NATed hosts and keep a session
// alive with them so connection requests can be relayed inward, (2)
// organize themselves in a CAN overlay that indexes host resource
// records, (3) broker UDP hole punching between pairs of hosts, and (4)
// run the distance locator feeding the locality-sensitive grouping
// strategy.
package rendezvous

import (
	"encoding/json"
	"fmt"
	"sort"

	"wavnet/internal/can"
	"wavnet/internal/grouping"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// DefaultPort is the well-known broker port.
const DefaultPort = 4342

// CodeNotFound marks an error reply whose cause may be transient in a
// federation — the name may exist on a broker whose record replication
// has not converged here yet — so clients may back off and retry.
const CodeNotFound = "not-found"

// CodeUnknownSession marks a pulse-ack from a broker that holds no
// session for the pulsing host: the broker restarted (or the session
// expired) and the host must re-register to become reachable again.
const CodeUnknownSession = "unknown-session"

// HostRecord is what the rendezvous layer knows about a registered host.
type HostRecord struct {
	Name   string      `json:"name"`
	Mapped netsim.Addr `json:"mapped"` // NAT external address of the host's WAVNet socket
	NAT    nat.Type    `json:"nat"`
	// Attrs is the host's resource state (e.g. normalized CPU, memory),
	// mapped to a CAN point for attribute queries.
	Attrs can.Point `json:"attrs"`
	// Server is the broker responsible for this host (where connection
	// requests must be relayed through).
	Server netsim.Addr `json:"server"`
	// Net and VNI scope the host to one virtual network (tenant).
	// Discovery and brokered connects never cross networks; the empty
	// name is the default network every legacy host lives in.
	Net string `json:"net,omitempty"`
	VNI uint32 `json:"vni,omitempty"`
}

// Wire message kinds between hosts and brokers, and between brokers.
const (
	kindJoin        = "join"
	kindJoinAck     = "join-ack"
	kindPulse       = "pulse"
	kindPulseAck    = "pulse-ack" // broker -> host: session keepalive confirmed (or unknown)
	kindLookup      = "lookup"
	kindLookupReply = "lookup-reply"
	kindConnect     = "connect"     // host -> its broker: connect me to <name>
	kindIntroduce   = "introduce"   // broker -> broker: introduce my host to yours
	kindIntroAck    = "intro-ack"   // broker -> broker: here is my host's record
	kindPunchOrder  = "punch-order" // broker -> host: punch to this record
	kindError       = "error"       // any -> requester
	kindGroupQuery  = "group-query" // host -> broker: pick k mutually-near hosts
	kindGroupReply  = "group-reply" //
	kindRTTReport   = "rtt-report"  // host -> broker: measured RTTs to peers
	kindRelayOrder  = "relay-order" // broker -> host: unpunchable pair, tunnel via relay

	// Federation (broker <-> broker, see federation.go). Replication is
	// scoped: a record for network N travels only to brokers N's tenant
	// spec names, so a broker never learns about tenants it doesn't serve.
	kindReplicate     = "replicate"       // home broker -> federated broker: scoped record copy
	kindWithdraw      = "withdraw"        // home broker -> federated broker: record expired/rescoped
	kindFwdConnect    = "fwd-connect"     // requester's broker -> target's home broker: broker the punch
	kindFwdConnectAck = "fwd-connect-ack" // target's home broker -> requester's broker
	kindPeerAllow     = "peer-allow"      // broker -> federated broker: peering allowance propagation
	kindPeerRevoke    = "peer-revoke"     //
	kindBrokerPulse   = "broker-pulse"    // broker -> federated broker: liveness keepalive
)

// Msg is the JSON envelope for all rendezvous traffic (it always starts
// with '{', which keeps it distinguishable from the binary Packet
// Assembler types on a shared socket).
type Msg struct {
	Kind  string `json:"kind"`
	ID    uint64 `json:"id,omitempty"`
	Name  string `json:"name,omitempty"`
	Error string `json:"error,omitempty"`
	// Code machine-classifies an error ("not-found" marks the transient
	// ones a federated fabric may retry: the target may exist on another
	// broker whose replication has not converged yet).
	Code string      `json:"code,omitempty"`
	Rec  *HostRecord `json:"rec,omitempty"`
	Peer *HostRecord `json:"peer,omitempty"`

	// Net scopes lookups and group queries to the requester's virtual
	// network ("" = the default network).
	Net string `json:"net,omitempty"`

	// Nets carries the two virtual networks of a propagated peering
	// allowance (peer-allow / peer-revoke).
	Nets []string `json:"nets,omitempty"`

	// Lookup / grouping.
	Attrs   can.Point        `json:"attrs,omitempty"`
	Records []HostRecord     `json:"records,omitempty"`
	K       int              `json:"k,omitempty"`
	Group   []string         `json:"group,omitempty"`
	RTTs    map[string]int64 `json:"rtts,omitempty"` // peer name -> RTT ns

	// Relay fallback (unpunchable NAT pairs).
	RelayChan uint64      `json:"relayChan,omitempty"`
	RelayAddr netsim.Addr `json:"relayAddr,omitempty"`

	// Tenant service VIPs (vip.go): one record on announce/withdraw/
	// replicate, the sorted backend list on a vip-lookup reply, and the
	// service name a lookup asks for.
	VIP     *VIPRecord  `json:"vip,omitempty"`
	VIPs    []VIPRecord `json:"vips,omitempty"`
	Service string      `json:"service,omitempty"`
}

// Encode serializes a message.
func Encode(m *Msg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("rendezvous: marshal: " + err.Error())
	}
	return b
}

// Decode parses a message.
func Decode(b []byte) (*Msg, error) {
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Config tunes a rendezvous server.
type Config struct {
	Port       uint16       // broker port (default 4342)
	CANPort    uint16       // CAN overlay port (default 4343)
	STUNPort   uint16       // primary STUN port (default 3478)
	SessionTTL sim.Duration // host records expire without pulses (default 60 s)
	CANDims    int          // CAN dimensionality (default 2)

	// DisableRelay turns off the relay fallback for unpunchable NAT
	// pairs, restoring the paper's connect-refused behaviour.
	DisableRelay bool
	// RelayIdle expires relay channels with no traffic (default 120 s).
	RelayIdle sim.Duration

	// ReplicateInterval batches federated record replication: joins mark
	// the record dirty and a ticker flushes the batch every interval.
	// Zero replicates immediately on join (no added lag). Withdrawals are
	// always immediate. The federation experiment sweeps this to measure
	// how replication lag delays cross-broker visibility.
	ReplicateInterval sim.Duration

	// BrokerPulseInterval spaces the liveness keepalives this broker
	// sends to its federated peers (default SessionTTL/4). Any message
	// from a peer counts as liveness; the pulse only covers idle links.
	BrokerPulseInterval sim.Duration
	// BrokerTTL is the federation's liveness TTL: a federated peer
	// silent for longer is considered dead — its replicas are withdrawn
	// here and forwarded connects toward it are refused as transient
	// not-found so requesters retry after the targets re-home (default
	// SessionTTL).
	BrokerTTL sim.Duration

	// Name labels this broker's spans and scraped series (defaults to
	// the broker's dial address); Tracer records the punch-orchestration
	// spans (request → fwd-connect → ack), nil disables tracing.
	Name   string
	Tracer *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	if c.CANPort == 0 {
		c.CANPort = 4343
	}
	if c.STUNPort == 0 {
		c.STUNPort = 3478
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 60 * sim.Second
	}
	if c.CANDims <= 0 {
		c.CANDims = 2
	}
	if c.RelayIdle <= 0 {
		c.RelayIdle = 120 * sim.Second
	}
	if c.BrokerPulseInterval <= 0 {
		c.BrokerPulseInterval = c.SessionTTL / 4
	}
	if c.BrokerTTL <= 0 {
		c.BrokerTTL = c.SessionTTL
	}
	return c
}

type session struct {
	rec      HostRecord
	lastSeen sim.Time
}

// pendingIntro is one in-flight cross-broker introduction. Entries are
// swept after a session TTL: a remote broker that died mid-introduction
// must not leak them forever (the requesting host gave up long before).
type pendingIntro struct {
	host    netsim.Addr // requesting host
	hostID  uint64      // the host's connect request ID
	remote  netsim.Addr // the broker the intro was forwarded to; only it may resolve
	created sim.Time
	span    *obs.Span // the punch span, closed when the intro resolves
}

// Server is one rendezvous server.
type Server struct {
	host *netsim.Host
	eng  *sim.Engine
	cfg  Config
	sock *netsim.UDPSocket

	can  *can.Node
	stun *stun.Server

	sessions map[string]*session
	locator  *Locator
	relays   map[uint64]*relayChannel

	// pendingIntro correlates broker-to-broker introductions (CAN and
	// federated alike) back to the requesting host: the reply must go to
	// its address carrying its original request ID, not the intro's.
	pendingIntro map[uint64]pendingIntro

	// peered holds the network pairs the control plane may introduce
	// hosts across (VPC peering); lookups stay strictly scoped.
	peered map[[2]string]bool

	// Federation state (federation.go): trusted peer brokers, the
	// per-network replication sets, the replicas received from peers,
	// and the dirty set pending a batched replication flush.
	federated  map[netsim.Addr]bool
	netBrokers map[string][]netsim.Addr
	replicas   map[string]*replica
	dirty      map[string]bool
	// vipRecs holds the tenant-service VIP records (vip.go), locally
	// announced and federated replicas alike, keyed net/service/backend.
	vipRecs map[string]*vipEntry
	// peerSeen is the liveness clock per federated peer: bumped by any
	// message from it (broker pulses cover idle links). A peer silent
	// past BrokerTTL is dead — see expireDeadBrokers.
	peerSeen map[netsim.Addr]sim.Time

	// Tickers, kept so Close can stop them (a closed broker must not
	// keep publishing or pulsing from beyond the grave).
	refreshTick *sim.Ticker
	replTick    *sim.Ticker
	brokerTick  *sim.Ticker
	closed      bool

	nextID uint64

	// Stats.
	Joins, Pulses, Connects, Lookups uint64
	RelayedIntroductions             uint64
	RelayChannels                    uint64 // channels ever created
	RelayFrames, RelayBytes          uint64 // data-plane relay traffic
	// Federation stats.
	ReplicationsOut, ReplicationsIn  uint64
	WithdrawalsOut, WithdrawalsIn    uint64
	FwdConnectsOut, FwdConnectsIn    uint64
	PeerAllowsOut, PeerAllowsIn      uint64
	PeerRevokesOut, PeerRevokesIn    uint64
	SessionExpiries, ReplicaExpiries uint64
	// Broker-failover stats: liveness keepalives exchanged, replicas
	// dropped because their home broker went silent past the liveness
	// TTL, replicas superseded by the host re-homing HERE, stale local
	// sessions superseded by a peer's replica of a host that re-homed
	// AWAY, and forwarded connects refused because the target's home
	// broker is dead.
	BrokerPulsesOut, BrokerPulsesIn uint64
	DeadBrokerReplicaDrops          uint64
	ReplicaAdoptions                uint64
	SessionsSuperseded              uint64
	StaleFwdRejects                 uint64
	// RejectedFederation counts broker-to-broker messages refused because
	// the source is not a federated peer or the record's network is not
	// served here (the scope check).
	RejectedFederation uint64
	// Tenant-service VIP stats (vip.go): announcement/withdrawal traffic
	// from hosts, replication within the network's broker set, lookups
	// answered, records expired or dropped with their dead home broker,
	// and announcements refused by the session/scope check.
	VIPAnnouncesIn, VIPWithdrawalsIn      uint64
	VIPReplicationsOut, VIPReplicationsIn uint64
	VIPRetractsOut, VIPRetractsIn         uint64
	VIPLookups, VIPExpiries               uint64
	DeadBrokerVIPDrops, RejectedVIP       uint64
}

// NewServer starts a rendezvous server on a public host. stunAltIP must
// be an unused public IP at the same host for the STUN alternate address.
func NewServer(host *netsim.Host, stunAltIP netsim.IP, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		host:         host,
		eng:          host.Engine(),
		cfg:          cfg,
		sessions:     make(map[string]*session),
		relays:       make(map[uint64]*relayChannel),
		pendingIntro: make(map[uint64]pendingIntro),
		peered:       make(map[[2]string]bool),
		federated:    make(map[netsim.Addr]bool),
		netBrokers:   make(map[string][]netsim.Addr),
		replicas:     make(map[string]*replica),
		dirty:        make(map[string]bool),
		vipRecs:      make(map[string]*vipEntry),
		peerSeen:     make(map[netsim.Addr]sim.Time),
		locator:      NewLocator(),
	}
	if s.cfg.Name == "" {
		s.cfg.Name = s.Addr().String()
	}
	sock, err := host.BindUDP(cfg.Port, s.onPacket)
	if err != nil {
		return nil, err
	}
	s.sock = sock
	node, err := can.NewNode(host, cfg.CANPort, can.Config{Dims: cfg.CANDims})
	if err != nil {
		return nil, err
	}
	s.can = node
	srv, err := stun.NewServer(host, stunAltIP, cfg.STUNPort, cfg.STUNPort+1)
	if err != nil {
		return nil, err
	}
	s.stun = srv
	// Republish live session records into the CAN (and re-replicate them
	// to federated brokers) at half the TTL so they outlive their initial
	// put as long as the host keeps pulsing.
	s.refreshTick = sim.NewTicker(s.eng, cfg.SessionTTL/2, func() {
		s.expire()
		for _, ses := range s.sessions {
			s.publish(ses.rec)
			s.replicate(ses.rec)
		}
		s.refreshVIPs()
	})
	if cfg.ReplicateInterval > 0 {
		s.replTick = sim.NewTicker(s.eng, cfg.ReplicateInterval, func() { s.flushReplication() })
	}
	// Broker-to-broker liveness keepalives: cover idle federation links
	// so peer death is detected even with no replication traffic.
	s.brokerTick = sim.NewTicker(s.eng, cfg.BrokerPulseInterval, func() { s.pulsePeers() })
	return s, nil
}

// publish writes a host record into the CAN index.
func (s *Server) publish(rec HostRecord) {
	if !s.can.Active() {
		return
	}
	res := can.Resource{
		ID:    rec.Name,
		Key:   s.recordPoint(rec),
		Value: can.MarshalValue(rec),
	}
	s.can.Put(res, 2*s.cfg.SessionTTL, func(error) {})
}

// Bootstrap makes this server the first CAN member.
func (s *Server) Bootstrap() { s.can.Bootstrap() }

// JoinOverlay joins the CAN via another server's overlay address.
func (s *Server) JoinOverlay(seed netsim.Addr, cb func(error)) { s.can.Join(seed, cb) }

// Addr returns the broker address hosts should contact.
func (s *Server) Addr() netsim.Addr { return netsim.Addr{IP: s.host.IP(), Port: s.cfg.Port} }

// OverlayAddr returns the CAN overlay address for other servers.
func (s *Server) OverlayAddr() netsim.Addr { return s.can.Addr() }

// STUNAddr returns the primary STUN address.
func (s *Server) STUNAddr() netsim.Addr {
	return netsim.Addr{IP: s.host.IP(), Port: s.cfg.STUNPort}
}

// Locator exposes the server's distance locator.
func (s *Server) Locator() *Locator { return s.locator }

// Shutdown closes the broker socket abruptly — a crash, not a graceful
// leave. Registered sessions, pending introductions and relay channels
// all become unreachable; established direct tunnels are unaffected
// because the data plane never touches the broker.
func (s *Server) Shutdown() { s.sock.Close() }

// Close crashes the whole broker machine's service set: the broker
// socket, the STUN service, the CAN overlay node and every ticker stop.
// All session, replica and CAN state is lost; a fresh Server may rebind
// the same host and ports afterwards (scenario.World.RestartBroker).
// The chaos harness uses this as the kill primitive: unlike Shutdown,
// nothing keeps answering STUN or republishing from the dead broker.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.refreshTick.Stop()
	if s.replTick != nil {
		s.replTick.Stop()
	}
	s.brokerTick.Stop()
	s.sock.Close()
	s.can.Close()
	s.stun.Close()
}

// Closed reports whether the broker was killed via Close.
func (s *Server) Closed() bool { return s.closed }

// Sessions reports the number of live host sessions.
func (s *Server) Sessions() int {
	s.expire()
	return len(s.sessions)
}

func (s *Server) expire() {
	cutoff := s.eng.Now().Add(-s.cfg.SessionTTL)
	for name, ses := range s.sessions {
		if ses.lastSeen < cutoff {
			delete(s.sessions, name)
			s.SessionExpiries++
			// The federation must not keep advertising a dead host.
			s.withdraw(ses.rec)
		}
	}
	s.expireReplicas(cutoff)
	s.expireDeadBrokers()
	s.expireVIPs(cutoff)
	for id, pi := range s.pendingIntro {
		if pi.created < cutoff {
			pi.span.Event("expired: intro never acked")
			pi.span.End()
			delete(s.pendingIntro, id)
		}
	}
}

func (s *Server) reply(to netsim.Addr, m *Msg) { s.sock.SendTo(to, Encode(m)) }

func (s *Server) onPacket(pkt netsim.Packet) {
	if len(pkt.Payload) > 0 && pkt.Payload[0] == RelayMagic {
		s.onRelay(pkt)
		return
	}
	m, err := Decode(pkt.Payload)
	if err != nil {
		return
	}
	// Any message from a federated peer proves it alive; the dedicated
	// broker-pulse only covers otherwise idle links.
	if s.federated[pkt.Src] {
		s.peerSeen[pkt.Src] = s.eng.Now()
	}
	switch m.Kind {
	case kindJoin:
		s.onJoin(pkt.Src, m)
	case kindPulse:
		s.onPulse(pkt.Src, m)
	case kindLookup:
		s.onLookup(pkt.Src, m)
	case kindConnect:
		s.onConnect(pkt.Src, m)
	case kindIntroduce:
		s.onIntroduce(pkt.Src, m)
	case kindIntroAck:
		s.onIntroAck(pkt.Src, m)
	case kindGroupQuery:
		s.onGroupQuery(pkt.Src, m)
	case kindRTTReport:
		s.onRTTReport(m)
	case kindReplicate:
		s.onReplicate(pkt.Src, m)
	case kindWithdraw:
		s.onWithdraw(pkt.Src, m)
	case kindFwdConnect:
		s.onFwdConnect(pkt.Src, m)
	case kindFwdConnectAck:
		s.onIntroAck(pkt.Src, m) // same resolution path as a CAN introduction
	case kindPeerAllow, kindPeerRevoke:
		s.onPeerPropagation(pkt.Src, m)
	case kindBrokerPulse:
		s.onBrokerPulse(pkt.Src)
	case kindVIPAnnounce:
		s.onVIPAnnounce(pkt.Src, m)
	case kindVIPWithdraw:
		s.onVIPWithdraw(pkt.Src, m)
	case kindVIPLookup:
		s.onVIPLookup(pkt.Src, m)
	case kindVIPReplicate:
		s.onVIPReplicate(pkt.Src, m)
	case kindVIPRetract:
		s.onVIPRetract(pkt.Src, m)
	case kindError:
		// A broker-to-broker failure (introduce or fwd-connect refused at
		// the remote end): resolve the pending introduction so the
		// requesting host fails fast instead of waiting out its timeout.
		// Hosts never send errors to brokers; stray IDs are ignored.
		s.onIntroAck(pkt.Src, m)
	}
}

// onJoin registers a host and publishes its record into the CAN.
func (s *Server) onJoin(src netsim.Addr, m *Msg) {
	if m.Rec == nil || m.Rec.Name == "" {
		s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: "bad join"})
		return
	}
	s.Joins++
	rec := *m.Rec
	// The observed source is authoritative for the host's reachable
	// address (it is the NAT mapping of the host's WAVNet socket).
	rec.Mapped = src
	rec.Server = s.Addr()
	// A re-registration that rescopes the host to another network must
	// pull the stale record out of the old network's federation.
	if prev, ok := s.sessions[rec.Name]; ok && prev.rec.Net != rec.Net {
		s.withdraw(prev.rec)
	}
	// A host re-homing HERE supersedes the replica its old broker pushed:
	// the live session is authoritative, and keeping the replica would
	// leave a record naming the (likely dead) old home as forwarding
	// target.
	if rep, ok := s.replicas[rec.Name]; ok && rep.rec.Net == rec.Net {
		delete(s.replicas, rec.Name)
		s.ReplicaAdoptions++
	}
	s.sessions[rec.Name] = &session{rec: rec, lastSeen: s.eng.Now()}
	s.publish(rec)
	s.replicate(rec)
	s.reply(src, &Msg{Kind: kindJoinAck, ID: m.ID, Rec: &rec})
}

// recordPoint maps a host record to its CAN key: the attribute vector,
// or a name hash when no attributes are given.
func (s *Server) recordPoint(rec HostRecord) can.Point {
	if len(rec.Attrs) == s.cfg.CANDims && rec.Attrs.Valid() {
		return rec.Attrs
	}
	return namePoint(rec.Name, s.cfg.CANDims)
}

// namePoint hashes a name into a CAN point (FNV-1a per dimension).
func namePoint(name string, dims int) can.Point {
	p := make(can.Point, dims)
	var h uint64 = 14695981039346656037
	for d := 0; d < dims; d++ {
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		h ^= uint64(d+1) * 0x9E3779B97F4A7C15
		h *= 1099511628211
		p[d] = float64(h%1_000_000) / 1_000_000
	}
	return p
}

// onPulse refreshes the session and acknowledges, so hosts can tell a
// live broker from a dead one (home-broker silence triggers re-homing).
// A pulse for a session this broker does not hold is answered with
// CodeUnknownSession: the broker restarted and lost its state, and the
// host must re-register to become reachable again.
func (s *Server) onPulse(src netsim.Addr, m *Msg) {
	s.Pulses++
	ses, ok := s.sessions[m.Name]
	if !ok {
		s.reply(src, &Msg{Kind: kindPulseAck, Name: m.Name, Code: CodeUnknownSession})
		return
	}
	ses.lastSeen = s.eng.Now()
	ses.rec.Mapped = src
	s.reply(src, &Msg{Kind: kindPulseAck, Name: m.Name})
}

func (s *Server) onRTTReport(m *Msg) {
	for peer, ns := range m.RTTs {
		s.locator.Report(m.Name, peer, sim.Duration(ns))
	}
}

// onLookup serves resource queries: by name (local, then CAN), or by
// attribute point (CAN owner's records). Every path is scoped to the
// requester's virtual network: records from other tenants are simply
// invisible, so a lookup that only matches foreign hosts returns an
// empty record set rather than an error.
func (s *Server) onLookup(src netsim.Addr, m *Msg) {
	s.Lookups++
	s.expire()
	if m.Name != "" {
		if ses, ok := s.sessions[m.Name]; ok {
			recs := []HostRecord{}
			if ses.rec.Net == m.Net {
				recs = append(recs, ses.rec)
			}
			s.reply(src, &Msg{Kind: kindLookupReply, ID: m.ID, Records: recs})
			return
		}
		// A federated replica answers locally: cross-broker names resolve
		// without an extra hop (scoped exactly like sessions — a replica
		// from another network is invisible, not an error).
		if rep, ok := s.replicas[m.Name]; ok {
			recs := []HostRecord{}
			if rep.rec.Net == m.Net {
				recs = append(recs, rep.rec)
			}
			s.reply(src, &Msg{Kind: kindLookupReply, ID: m.ID, Records: recs})
			return
		}
		// Route through the CAN by name hash.
		id := m.ID
		s.can.Lookup(namePoint(m.Name, s.cfg.CANDims), func(res can.LookupResult, err error) {
			if err != nil {
				s.reply(src, &Msg{Kind: kindError, ID: id, Error: err.Error()})
				return
			}
			var recs []HostRecord
			for _, r := range res.Resources {
				if r.ID != m.Name {
					continue
				}
				var rec HostRecord
				if json.Unmarshal(r.Value, &rec) == nil && rec.Net == m.Net {
					recs = append(recs, rec)
				}
			}
			s.reply(src, &Msg{Kind: kindLookupReply, ID: id, Records: recs})
		})
		return
	}
	if m.Attrs != nil {
		id := m.ID
		s.can.Lookup(m.Attrs, func(res can.LookupResult, err error) {
			if err != nil {
				s.reply(src, &Msg{Kind: kindError, ID: id, Error: err.Error()})
				return
			}
			var recs []HostRecord
			for _, r := range res.Resources {
				var rec HostRecord
				if json.Unmarshal(r.Value, &rec) == nil && rec.Net == m.Net {
					recs = append(recs, rec)
				}
			}
			sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
			s.reply(src, &Msg{Kind: kindLookupReply, ID: id, Records: recs})
		})
		return
	}
	// No criteria: all co-tenant records this broker holds, homed and
	// replicated alike (diagnostics).
	var recs []HostRecord
	for _, ses := range s.sessions {
		if ses.rec.Net == m.Net {
			recs = append(recs, ses.rec)
		}
	}
	for name, rep := range s.replicas {
		if _, local := s.sessions[name]; !local && rep.rec.Net == m.Net {
			recs = append(recs, rep.rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	s.reply(src, &Msg{Kind: kindLookupReply, ID: m.ID, Records: recs})
}

// peerKey normalizes an unordered network pair.
func peerKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// AllowPeering permits brokered connects between hosts of the two named
// virtual networks (VPC peering). Lookup and group queries remain
// strictly scoped — peering opens introductions, not discovery. The
// allowance is propagated to every federated broker serving either
// network, so inter-VNI gateway connects keep working when the two
// endpoints are homed on different brokers.
func (s *Server) AllowPeering(netA, netB string) {
	s.peered[peerKey(netA, netB)] = true
	s.propagatePeering(kindPeerAllow, netA, netB)
}

// RevokePeering withdraws a peering allowance (also federation-wide).
func (s *Server) RevokePeering(netA, netB string) {
	delete(s.peered, peerKey(netA, netB))
	s.propagatePeering(kindPeerRevoke, netA, netB)
}

// netsLinked reports whether hosts of the two networks may be
// introduced to each other: same network, or an explicit peering.
func (s *Server) netsLinked(a, b string) bool {
	return a == b || s.peered[peerKey(a, b)]
}

// onConnect brokers a connection: find the target (locally or via its
// own server), have both sides told to punch simultaneously.
func (s *Server) onConnect(src netsim.Addr, m *Msg) {
	s.Connects++
	requester, ok := s.sessions[m.Name]
	if !ok {
		s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: "requester not registered"})
		return
	}
	reqRec := requester.rec
	target := m.Peer.Name
	sp := s.cfg.Tracer.Start(nil, "punch", obs.Labels{Broker: s.cfg.Name, Net: reqRec.Net})
	sp.Event("connect %s -> %s", m.Name, target)

	if ses, local := s.sessions[target]; local {
		if !s.netsLinked(ses.rec.Net, reqRec.Net) {
			// Tenant isolation: the broker never introduces hosts across
			// virtual networks unless an explicit peering allows it.
			sp.Event("refused: cross-tenant")
			sp.End()
			s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: "cross-tenant connect refused"})
			return
		}
		// Both hosts are ours: order both to punch.
		sp.Event("local punch order")
		sp.End()
		s.orderPunch(reqRec, ses.rec, m.ID, src)
		return
	}
	// A federated replica names the target's home broker directly:
	// forward the punch orchestration there (the home broker holds the
	// live NAT session to the target).
	if rep, held := s.replicas[target]; held {
		if !s.netsLinked(rep.rec.Net, reqRec.Net) {
			sp.Event("refused: cross-tenant")
			sp.End()
			s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: "cross-tenant connect refused"})
			return
		}
		if s.brokerDead(rep.rec.Server) {
			// The replica is stale: its home broker stopped answering.
			// Refuse rather than forward into a black hole — as a
			// transient not-found, because the target re-homes onto a
			// surviving broker and the retry will find the fresh record.
			s.StaleFwdRejects++
			sp.Event("refused: stale replica, home broker %v dead", rep.rec.Server)
			sp.End()
			s.reply(src, &Msg{Kind: kindError, ID: m.ID, Code: CodeNotFound,
				Error: "home broker of " + target + " unresponsive"})
			return
		}
		s.FwdConnectsOut++
		s.nextID++
		introID := s.nextID
		sp.Event("fwd-connect to home broker %v", rep.rec.Server)
		s.pendingIntro[introID] = pendingIntro{host: src, hostID: m.ID,
			remote: rep.rec.Server, created: s.eng.Now(), span: sp}
		s.sock.SendTo(rep.rec.Server, Encode(&Msg{
			Kind: kindFwdConnect, ID: introID, Name: target, Rec: &reqRec,
		}))
		return
	}
	// Find the target's record through the CAN, then ask its server.
	id := m.ID
	s.can.Lookup(namePoint(target, s.cfg.CANDims), func(res can.LookupResult, err error) {
		if err != nil {
			sp.Event("refused: CAN lookup failed: %v", err)
			sp.End()
			s.reply(src, &Msg{Kind: kindError, ID: id, Error: "target lookup: " + err.Error()})
			return
		}
		for _, r := range res.Resources {
			if r.ID != target {
				continue
			}
			var rec HostRecord
			if json.Unmarshal(r.Value, &rec) != nil {
				continue
			}
			if !s.netsLinked(rec.Net, reqRec.Net) {
				sp.Event("refused: cross-tenant")
				sp.End()
				s.reply(src, &Msg{Kind: kindError, ID: id, Error: "cross-tenant connect refused"})
				return
			}
			// Relay through the target's own broker so it can notify the
			// target over the maintained NAT session.
			s.RelayedIntroductions++
			s.nextID++
			introID := s.nextID
			sp.Event("CAN introduce via broker %v", rec.Server)
			s.pendingIntro[introID] = pendingIntro{host: src, hostID: id,
				remote: rec.Server, created: s.eng.Now(), span: sp}
			s.sock.SendTo(rec.Server, Encode(&Msg{
				Kind: kindIntroduce, ID: introID, Name: target, Rec: &reqRec,
			}))
			return
		}
		sp.Event("refused: target not found")
		sp.End()
		s.reply(src, &Msg{Kind: kindError, ID: id, Code: CodeNotFound,
			Error: "target not found: " + target})
	})
}

// orderPunch tells both hosts about each other; pairs hole punching
// cannot traverse fall back to a relay channel through this broker.
func (s *Server) orderPunch(a, b HostRecord, id uint64, requester netsim.Addr) {
	if !nat.Punchable(a.NAT, b.NAT) {
		if s.cfg.DisableRelay {
			s.reply(requester, &Msg{Kind: kindError, ID: id,
				Error: fmt.Sprintf("unpunchable NAT pair %v/%v", a.NAT, b.NAT)})
			return
		}
		s.orderRelay(a, b, id, requester)
		return
	}
	s.reply(a.Mapped, &Msg{Kind: kindPunchOrder, ID: id, Peer: &b})
	s.reply(b.Mapped, &Msg{Kind: kindPunchOrder, Peer: &a})
}

// onIntroduce (at the target's server): notify our host and ack with its
// record.
func (s *Server) onIntroduce(src netsim.Addr, m *Msg) {
	s.introduceLocal(src, m, kindIntroAck)
}

// introduceLocal brokers a connect whose requester lives on another
// server (a CAN introduction or a federated forwarded connect): notify
// our host and ack with its record. Unpunchable pairs get a relay
// channel hosted *here* (the target's broker), because only this server
// has a live NAT session to the target; the requester reaches any
// public address on its own.
func (s *Server) introduceLocal(src netsim.Addr, m *Msg, ackKind string) {
	ses, ok := s.sessions[m.Name]
	if !ok {
		s.reply(src, &Msg{Kind: kindError, ID: m.ID, Code: CodeNotFound,
			Error: "unknown host " + m.Name})
		return
	}
	if m.Rec != nil && !s.netsLinked(m.Rec.Net, ses.rec.Net) {
		// The requester's broker should have refused already; enforce
		// tenant isolation here too in case records were stale.
		s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: "cross-tenant connect refused"})
		return
	}
	if m.Rec != nil && !nat.Punchable(m.Rec.NAT, ses.rec.NAT) {
		if s.cfg.DisableRelay {
			s.reply(src, &Msg{Kind: kindError, ID: m.ID,
				Error: fmt.Sprintf("unpunchable NAT pair %v/%v", m.Rec.NAT, ses.rec.NAT)})
			return
		}
		// The requester's relay endpoint cannot be predicted (it may sit
		// behind a symmetric NAT); it is learned from its first envelope.
		ch := s.newRelayChannel(ses.rec.Name, m.Rec.Name, ses.rec.Mapped, netsim.Addr{})
		s.reply(ses.rec.Mapped, &Msg{Kind: kindRelayOrder, Peer: m.Rec,
			RelayChan: ch.id, RelayAddr: s.Addr()})
		s.reply(src, &Msg{Kind: ackKind, ID: m.ID, Rec: &ses.rec,
			RelayChan: ch.id, RelayAddr: s.Addr()})
		return
	}
	// Tell our host to punch toward the requester.
	s.reply(ses.rec.Mapped, &Msg{Kind: kindPunchOrder, Peer: m.Rec})
	// Hand the record back to the requester's server.
	s.reply(src, &Msg{Kind: ackKind, ID: m.ID, Rec: &ses.rec})
}

// onIntroAck (back at the requester's server): order our host to punch,
// or to use the relay channel the target's server allocated. Replies
// carry the host's own request ID so its RPC waiters correlate. Only
// the broker the introduction was forwarded to may resolve it — intro
// IDs are sequential and guessable, so an unauthenticated ack could
// otherwise steer the requester toward an attacker-chosen address.
func (s *Server) onIntroAck(src netsim.Addr, m *Msg) {
	pi, ok := s.pendingIntro[m.ID]
	if !ok {
		return
	}
	if src != pi.remote {
		s.RejectedFederation++
		return
	}
	delete(s.pendingIntro, m.ID)
	if m.Error != "" || m.Rec == nil {
		pi.span.Event("intro-ack error: %s", m.Error)
		pi.span.End()
		s.reply(pi.host, &Msg{Kind: kindError, ID: pi.hostID, Error: m.Error, Code: m.Code})
		return
	}
	if m.RelayChan != 0 {
		pi.span.Event("intro-ack: relay order")
		pi.span.End()
		s.reply(pi.host, &Msg{Kind: kindRelayOrder, ID: pi.hostID, Peer: m.Rec,
			RelayChan: m.RelayChan, RelayAddr: m.RelayAddr})
		return
	}
	pi.span.Event("intro-ack: punch order")
	pi.span.End()
	s.reply(pi.host, &Msg{Kind: kindPunchOrder, ID: pi.hostID, Peer: m.Rec})
}

// onGroupQuery runs the locality-sensitive grouping over the locator's
// latency matrix. Queries from a virtual network only ever select
// co-tenant hosts. Default-network queries skip hosts whose session is
// scoped to a tenant (a brokered connect to them would be refused) but
// still admit hosts that report RTTs without maintaining a broker
// session.
func (s *Server) onGroupQuery(src netsim.Addr, m *Msg) {
	var names []string
	var err error
	s.expire()
	if m.Net == "" {
		names, err = s.locator.GroupAmong(m.K, func(name string) bool {
			ses, ok := s.sessions[name]
			return !ok || ses.rec.Net == ""
		})
	} else {
		allowed := make(map[string]bool)
		for name, ses := range s.sessions {
			if ses.rec.Net == m.Net {
				allowed[name] = true
			}
		}
		// Federated replicas are co-tenants too: their RTTs enter the
		// locator whenever a local host reports a measurement to them.
		for name, rep := range s.replicas {
			if rep.rec.Net == m.Net {
				allowed[name] = true
			}
		}
		names, err = s.locator.GroupAmong(m.K, func(name string) bool { return allowed[name] })
	}
	if err != nil {
		s.reply(src, &Msg{Kind: kindError, ID: m.ID, Error: err.Error()})
		return
	}
	s.reply(src, &Msg{Kind: kindGroupReply, ID: m.ID, Group: names})
}

// Locator is the distance locator: it accumulates pairwise RTT
// observations between named hosts and answers k-group queries with the
// paper's O(N·k) locality-sensitive algorithm.
type Locator struct {
	names map[string]int
	order []string
	rtts  [][]sim.Duration
}

// NewLocator returns an empty locator.
func NewLocator() *Locator {
	return &Locator{names: make(map[string]int)}
}

func (l *Locator) idx(name string) int {
	if i, ok := l.names[name]; ok {
		return i
	}
	i := len(l.order)
	l.names[name] = i
	l.order = append(l.order, name)
	for r := range l.rtts {
		l.rtts[r] = append(l.rtts[r], 0)
	}
	l.rtts = append(l.rtts, make([]sim.Duration, i+1))
	return i
}

// Report records a measured RTT between two hosts (stored symmetrically,
// per the paper's symmetry assumption).
func (l *Locator) Report(a, b string, rtt sim.Duration) {
	if a == b {
		return
	}
	i, j := l.idx(a), l.idx(b)
	l.rtts[i][j] = rtt
	l.rtts[j][i] = rtt
}

// Hosts returns the known host names.
func (l *Locator) Hosts() []string { return append([]string(nil), l.order...) }

// Matrix exposes the accumulated RTT matrix (rows indexed like Hosts).
func (l *Locator) Matrix() [][]sim.Duration { return l.rtts }

// Group selects k mutually-near hosts using the locality-sensitive
// approximation and returns their names.
func (l *Locator) Group(k int) ([]string, error) {
	sel, err := grouping.LocalitySensitive(l.rtts, k)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(sel))
	for i, idx := range sel {
		names[i] = l.order[idx]
	}
	return names, nil
}

// GroupAmong is Group restricted to the hosts allowed() admits: the
// grouping runs on the sub-matrix of permitted rows/columns, which is
// how group queries stay inside one tenant.
func (l *Locator) GroupAmong(k int, allowed func(string) bool) ([]string, error) {
	var idxs []int
	for i, name := range l.order {
		if allowed(name) {
			idxs = append(idxs, i)
		}
	}
	sub := make([][]sim.Duration, len(idxs))
	for r, i := range idxs {
		sub[r] = make([]sim.Duration, len(idxs))
		for c, j := range idxs {
			sub[r][c] = l.rtts[i][j]
		}
	}
	sel, err := grouping.LocalitySensitive(sub, k)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(sel))
	for i, s := range sel {
		names[i] = l.order[idxs[s]]
	}
	return names, nil
}
