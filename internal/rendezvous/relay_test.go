package rendezvous

import (
	"encoding/binary"
	"testing"
	"time"

	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// rawClient extends the JSON client with raw (relay-envelope) traffic.
type rawClient struct {
	*client
	raw [][]byte
}

func newRawClient(t *testing.T, nw *netsim.Network, ip string) *rawClient {
	t.Helper()
	site := nw.NewSite("c")
	h := nw.NewPublicHost("c"+ip, site, netsim.MustParseIP(ip), 0, time.Millisecond)
	rc := &rawClient{client: &client{}}
	sock, err := h.BindUDP(4500, func(p netsim.Packet) {
		if len(p.Payload) > 0 && p.Payload[0] == RelayMagic {
			rc.raw = append(rc.raw, append([]byte(nil), p.Payload...))
			return
		}
		if m, err := Decode(p.Payload); err == nil {
			rc.got = append(rc.got, m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rc.sock = sock
	return rc
}

func envelope(ch uint64, inner []byte) []byte {
	b := make([]byte, RelayHeaderLen+len(inner))
	b[0] = RelayMagic
	binary.BigEndian.PutUint64(b[1:], ch)
	copy(b[RelayHeaderLen:], inner)
	return b
}

func TestConnectOrdersRelayForSymmetricPair(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newRawClient(t, nw, "60.0.0.1")
	b := newRawClient(t, nw, "60.0.0.2")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", NAT: nat.Symmetric}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", NAT: nat.Symmetric}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	oa, ob := a.last("relay-order"), b.last("relay-order")
	if oa == nil || ob == nil {
		t.Fatalf("relay orders missing: a=%v b=%v", oa, ob)
	}
	if oa.RelayChan == 0 || oa.RelayChan != ob.RelayChan {
		t.Fatalf("channel ids disagree: %d vs %d", oa.RelayChan, ob.RelayChan)
	}
	if oa.RelayAddr != s.Addr() {
		t.Fatalf("relay addr %v, want broker %v", oa.RelayAddr, s.Addr())
	}
	if a.last("punch-order") != nil {
		t.Fatal("punch order issued for an unpunchable pair")
	}
}

func TestRelayForwardsBetweenEndpoints(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newRawClient(t, nw, "60.0.0.1")
	b := newRawClient(t, nw, "60.0.0.2")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", NAT: nat.Symmetric}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", NAT: nat.Symmetric}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	ch := a.last("relay-order").RelayChan

	a.sock.SendTo(s.Addr(), envelope(ch, []byte{0x11, 'h', 'i'}))
	eng.RunFor(2 * time.Second)
	if len(b.raw) != 1 {
		t.Fatalf("peer received %d relay frames, want 1", len(b.raw))
	}
	if string(b.raw[0][RelayHeaderLen:]) != "\x11hi" {
		t.Fatalf("relay corrupted payload: %x", b.raw[0])
	}
	// Reverse direction.
	b.sock.SendTo(s.Addr(), envelope(ch, []byte{0x11, 'y', 'o'}))
	eng.RunFor(2 * time.Second)
	if len(a.raw) != 1 {
		t.Fatalf("requester received %d relay frames, want 1", len(a.raw))
	}
	if s.RelayFrames != 2 {
		t.Fatalf("RelayFrames = %d, want 2", s.RelayFrames)
	}
	if s.RelayBytes == 0 {
		t.Fatal("RelayBytes not accounted")
	}
}

func TestRelayDropsUnknownChannelAndThirdParties(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newRawClient(t, nw, "60.0.0.1")
	b := newRawClient(t, nw, "60.0.0.2")
	mallory := newRawClient(t, nw, "60.0.0.66")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", NAT: nat.Symmetric}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", NAT: nat.Symmetric}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	ch := a.last("relay-order").RelayChan

	// Unknown channel id: dropped.
	a.sock.SendTo(s.Addr(), envelope(ch+1, []byte{0x11}))
	// Known channel, but both endpoint slots are taken by a and b: a
	// third party cannot inject.
	mallory.sock.SendTo(s.Addr(), envelope(ch, []byte{0x11, 'x'}))
	eng.RunFor(2 * time.Second)
	if len(a.raw)+len(b.raw) != 0 {
		t.Fatalf("unauthorized relay traffic forwarded: a=%d b=%d", len(a.raw), len(b.raw))
	}
}

func TestRelayChannelExpiresWhenIdle(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newRawClient(t, nw, "60.0.0.1")
	b := newRawClient(t, nw, "60.0.0.2")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", NAT: nat.Symmetric}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", NAT: nat.Symmetric}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	if s.RelayChannelCount() != 1 {
		t.Fatalf("channels = %d, want 1", s.RelayChannelCount())
	}
	eng.RunFor(3 * time.Minute) // default RelayIdle is 120 s
	if s.RelayChannelCount() != 0 {
		t.Fatalf("idle channel survived: %d", s.RelayChannelCount())
	}
}

func TestDisableRelayRestoresRefusal(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	site := nw.NewSite("hub")
	host := nw.NewPublicHost("rdv", site, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	s, err := NewServer(host, netsim.MustParseIP("50.0.0.2"), Config{DisableRelay: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Bootstrap()
	a := newRawClient(t, nw, "60.0.0.1")
	b := newRawClient(t, nw, "60.0.0.2")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha", NAT: nat.Symmetric}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta", NAT: nat.Symmetric}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	if a.last("error") == nil {
		t.Fatal("no refusal with relay disabled")
	}
	if a.last("relay-order") != nil {
		t.Fatal("relay order issued despite DisableRelay")
	}
}
