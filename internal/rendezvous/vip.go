package rendezvous

import (
	"sort"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Tenant service VIPs at the rendezvous layer: the service controller
// announces a VIP record per healthy backend through the backend's (or
// the service anchor's) home broker, and the record is replicated
// strictly within the network's declared broker set — the same trust
// boundary as host-record replication. Cross-broker lookups of a VIP
// then resolve fabric-wide: any broker of the set can answer "who backs
// service S" sorted by the requester's policy (declared order for
// failover-ordered, locator distance for anycast-nearest). Withdrawal
// is immediate and never batched, exactly like host-record withdrawal:
// a stale VIP record steers new connections into a dead backend.

// Steering policies a VIPRecord may carry.
const (
	PolicyAnycastNearest  = "anycast-nearest"
	PolicyFailoverOrdered = "failover-ordered"
)

// VIPRecord advertises one healthy backend of a tenant service.
type VIPRecord struct {
	Service string      `json:"service"`
	Net     string      `json:"net"`
	VIP     netsim.IP   `json:"vip"`
	Backend string      `json:"backend"`       // backend name within the service
	Host    string      `json:"host"`          // WAVNet host carrying the backend
	Order   int         `json:"order"`         // failover-ordered rank
	Policy  string      `json:"policy"`        // steering policy of the service
	Server  netsim.Addr `json:"srv,omitempty"` // home broker of the record
}

// key identifies a record: one entry per (network, service, backend).
func (r VIPRecord) key() string { return r.Net + "/" + r.Service + "/" + r.Backend }

// VIP wire message kinds (host <-> broker, broker <-> broker).
const (
	kindVIPAnnounce  = "vip-announce"  // host -> its broker: healthy backend
	kindVIPWithdraw  = "vip-withdraw"  // host -> its broker: backend died/evicted
	kindVIPLookup    = "vip-lookup"    // host -> broker: who backs this service?
	kindVIPReply     = "vip-reply"     //
	kindVIPReplicate = "vip-replicate" // home broker -> federated broker: scoped copy
	kindVIPRetract   = "vip-retract"   // home broker -> federated broker: record withdrawn
)

// vipEntry is one stored VIP record, locally announced or replicated.
type vipEntry struct {
	rec      VIPRecord
	lastSeen sim.Time
}

// onVIPAnnounce stores (or refreshes) a VIP record announced by a host
// homed here and replicates it within the network's broker set. The
// sender must hold a live session scoped to the record's network — a
// VIP record is tenant state and rides the same trust the host's own
// registration earned.
func (s *Server) onVIPAnnounce(src netsim.Addr, m *Msg) {
	if m.VIP == nil || m.VIP.Service == "" || m.VIP.Backend == "" {
		return
	}
	ses, ok := s.sessions[m.Name]
	if !ok || ses.rec.Net != m.VIP.Net || ses.rec.Mapped != src {
		s.RejectedVIP++
		return
	}
	s.VIPAnnouncesIn++
	rec := *m.VIP
	rec.Server = s.Addr()
	s.vipRecs[rec.key()] = &vipEntry{rec: rec, lastSeen: s.eng.Now()}
	for _, peer := range s.netBrokers[rec.Net] {
		s.VIPReplicationsOut++
		s.sock.SendTo(peer, Encode(&Msg{Kind: kindVIPReplicate, VIP: &rec}))
	}
}

// onVIPWithdraw drops a record at its announcer's request and retracts
// it from the network's broker set. Withdrawal is validated like the
// announcement, but a session that just expired may still withdraw — a
// dying backend must be able to clean up after itself.
func (s *Server) onVIPWithdraw(src netsim.Addr, m *Msg) {
	if m.VIP == nil {
		return
	}
	e, ok := s.vipRecs[m.VIP.key()]
	if !ok {
		return
	}
	if ses, live := s.sessions[m.Name]; live && ses.rec.Mapped != src {
		s.RejectedVIP++
		return
	}
	s.VIPWithdrawalsIn++
	delete(s.vipRecs, m.VIP.key())
	for _, peer := range s.netBrokers[e.rec.Net] {
		s.VIPRetractsOut++
		s.sock.SendTo(peer, Encode(&Msg{Kind: kindVIPRetract, VIP: &e.rec}))
	}
}

// onVIPReplicate stores a record received from a federated peer, under
// the same scope check as host-record replication: only for networks
// configured here, only from brokers of that network's own set.
func (s *Server) onVIPReplicate(src netsim.Addr, m *Msg) {
	if m.VIP == nil || !s.federated[src] ||
		!s.ServesNet(m.VIP.Net) || !s.brokerOfNet(m.VIP.Net, src) {
		s.RejectedFederation++
		return
	}
	s.VIPReplicationsIn++
	s.vipRecs[m.VIP.key()] = &vipEntry{rec: *m.VIP, lastSeen: s.eng.Now()}
}

// onVIPRetract drops a replicated record at its home broker's request.
func (s *Server) onVIPRetract(src netsim.Addr, m *Msg) {
	if m.VIP == nil {
		return
	}
	e, ok := s.vipRecs[m.VIP.key()]
	if !ok {
		return
	}
	if !s.federated[src] || !s.brokerOfNet(e.rec.Net, src) {
		s.RejectedFederation++
		return
	}
	s.VIPRetractsIn++
	delete(s.vipRecs, m.VIP.key())
}

// onVIPLookup answers "who backs service S in network N" from the local
// VIP record store, sorted for the requester: failover-ordered services
// by their declared rank, anycast services by the locator's distance
// between the requester and each backend's host (unknown distances
// last). The requester gets healthy backends only — withdrawal already
// removed the dead ones.
func (s *Server) onVIPLookup(src netsim.Addr, m *Msg) {
	s.VIPLookups++
	recs := s.VIPRecords(m.Net, m.Service)
	if len(recs) == 0 {
		s.reply(src, &Msg{Kind: kindError, ID: m.ID,
			Error: "no such service: " + m.Service, Code: CodeNotFound})
		return
	}
	anycast := recs[0].Policy != PolicyFailoverOrdered
	sort.SliceStable(recs, func(i, j int) bool {
		if anycast {
			di, iok := s.locator.RTT(m.Name, recs[i].Host)
			dj, jok := s.locator.RTT(m.Name, recs[j].Host)
			if iok != jok {
				return iok
			}
			if iok && jok && di != dj {
				return di < dj
			}
			return recs[i].Backend < recs[j].Backend
		}
		if recs[i].Order != recs[j].Order {
			return recs[i].Order < recs[j].Order
		}
		return recs[i].Backend < recs[j].Backend
	})
	s.reply(src, &Msg{Kind: kindVIPReply, ID: m.ID, VIPs: recs})
}

// refreshVIPs re-replicates locally announced VIP records at the
// refresh tick (records travel with sessions: half the TTL), so a
// replica outlives its initial copy as long as the home broker lives.
func (s *Server) refreshVIPs() {
	for _, e := range s.vipRecs {
		if e.rec.Server != s.Addr() {
			continue
		}
		e.lastSeen = s.eng.Now()
		for _, peer := range s.netBrokers[e.rec.Net] {
			s.VIPReplicationsOut++
			s.sock.SendTo(peer, Encode(&Msg{Kind: kindVIPReplicate, VIP: &e.rec}))
		}
	}
}

// expireVIPs drops VIP records that lost their ground: replicas no
// longer refreshed (dead home broker), replicas homed on a federated
// peer that went silent past the liveness TTL, and local records whose
// backing host vanished from the network entirely (neither session nor
// replica — the backend's host died without withdrawing).
func (s *Server) expireVIPs(cutoff sim.Time) {
	deadCutoff := s.eng.Now().Add(-s.cfg.BrokerTTL)
	for key, e := range s.vipRecs {
		if e.rec.Server != s.Addr() {
			if e.lastSeen < cutoff {
				delete(s.vipRecs, key)
				s.VIPExpiries++
				continue
			}
			if s.federated[e.rec.Server] && s.peerSeen[e.rec.Server] < deadCutoff {
				delete(s.vipRecs, key)
				s.DeadBrokerVIPDrops++
			}
			continue
		}
		if !s.hostKnown(e.rec.Host, e.rec.Net) {
			delete(s.vipRecs, key)
			s.VIPExpiries++
		}
	}
}

// hostKnown reports whether the named host is visible in the network
// here, as a homed session or a federated replica.
func (s *Server) hostKnown(name, net string) bool {
	if ses, ok := s.sessions[name]; ok && ses.rec.Net == net {
		return true
	}
	if rep, ok := s.replicas[name]; ok && rep.rec.Net == net {
		return true
	}
	return false
}

// VIPRecords returns the stored records of one service (all services of
// the network when service is empty), sorted by key for determinism.
func (s *Server) VIPRecords(net, service string) []VIPRecord {
	keys := make([]string, 0, len(s.vipRecs))
	for key, e := range s.vipRecs {
		if e.rec.Net == net && (service == "" || e.rec.Service == service) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]VIPRecord, 0, len(keys))
	for _, key := range keys {
		out = append(out, s.vipRecs[key].rec)
	}
	return out
}

// VIPRecordsFor counts every VIP record held for one network. The
// federation's scope invariant extends to services: VIPRecordsFor(n)
// == 0 on any broker n's tenant spec does not name.
func (s *Server) VIPRecordsFor(net string) int {
	s.expire()
	return len(s.VIPRecords(net, ""))
}

// RTT reports the locator's stored distance between two named hosts
// (false when either is unknown or no measurement was ever reported).
func (l *Locator) RTT(a, b string) (sim.Duration, bool) {
	i, iok := l.names[a]
	j, jok := l.names[b]
	if !iok || !jok || l.rtts[i][j] == 0 {
		return 0, false
	}
	return l.rtts[i][j], true
}
