package rendezvous

import (
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func newServer(t *testing.T) (*sim.Engine, *netsim.Network, *Server) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	site := nw.NewSite("hub")
	host := nw.NewPublicHost("rdv", site, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	s, err := NewServer(host, netsim.MustParseIP("50.0.0.2"), Config{SessionTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Bootstrap()
	return eng, nw, s
}

// client is a minimal broker client speaking the JSON protocol.
type client struct {
	sock *netsim.UDPSocket
	got  []*Msg
}

func newClient(t *testing.T, nw *netsim.Network, ip string) *client {
	t.Helper()
	site := nw.NewSite("c")
	h := nw.NewPublicHost("c"+ip, site, netsim.MustParseIP(ip), 0, time.Millisecond)
	c := &client{}
	sock, err := h.BindUDP(4500, func(p netsim.Packet) {
		if m, err := Decode(p.Payload); err == nil {
			c.got = append(c.got, m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.sock = sock
	return c
}

func (c *client) send(s *Server, m *Msg) { c.sock.SendTo(s.Addr(), Encode(m)) }

func (c *client) last(kind string) *Msg {
	for i := len(c.got) - 1; i >= 0; i-- {
		if c.got[i].Kind == kind {
			return c.got[i]
		}
	}
	return nil
}

func TestJoinLookupAndExpiry(t *testing.T) {
	eng, nw, s := newServer(t)
	c := newClient(t, nw, "60.0.0.1")
	c.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha"}})
	eng.RunFor(2 * time.Second)
	ack := c.last("join-ack")
	if ack == nil || ack.Rec == nil {
		t.Fatalf("no join ack: %+v", c.got)
	}
	if ack.Rec.Mapped.IP != netsim.MustParseIP("60.0.0.1") {
		t.Fatalf("observed mapping %v", ack.Rec.Mapped)
	}
	if s.Sessions() != 1 {
		t.Fatalf("sessions %d", s.Sessions())
	}
	// Lookup by name.
	c.send(s, &Msg{Kind: "lookup", ID: 2, Name: "alpha"})
	eng.RunFor(2 * time.Second)
	lr := c.last("lookup-reply")
	if lr == nil || len(lr.Records) != 1 || lr.Records[0].Name != "alpha" {
		t.Fatalf("lookup reply %+v", lr)
	}
	// Session expires without pulses.
	eng.RunFor(40 * time.Second)
	if s.Sessions() != 0 {
		t.Fatalf("stale session survived: %d", s.Sessions())
	}
}

func TestPulseKeepsSessionAlive(t *testing.T) {
	eng, nw, s := newServer(t)
	c := newClient(t, nw, "60.0.0.1")
	c.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha"}})
	eng.RunFor(time.Second)
	for i := 0; i < 6; i++ {
		eng.RunFor(10 * time.Second)
		c.send(s, &Msg{Kind: "pulse", Name: "alpha"})
	}
	eng.RunFor(time.Second)
	if s.Sessions() != 1 {
		t.Fatalf("pulsed session expired: %d", s.Sessions())
	}
}

func TestConnectOrdersPunchBothSides(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newClient(t, nw, "60.0.0.1")
	b := newClient(t, nw, "60.0.0.2")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha"}})
	b.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "beta"}})
	eng.RunFor(2 * time.Second)
	oa, ob := a.last("punch-order"), b.last("punch-order")
	if oa == nil || ob == nil {
		t.Fatalf("punch orders missing: a=%v b=%v", oa, ob)
	}
	if oa.Peer.Name != "beta" || ob.Peer.Name != "alpha" {
		t.Fatalf("wrong peers: %v / %v", oa.Peer.Name, ob.Peer.Name)
	}
	if oa.Peer.Mapped.IsZero() {
		t.Fatal("punch order lacks the peer's mapping")
	}
}

func TestConnectUnknownTargetErrors(t *testing.T) {
	eng, nw, s := newServer(t)
	a := newClient(t, nw, "60.0.0.1")
	a.send(s, &Msg{Kind: "join", ID: 1, Rec: &HostRecord{Name: "alpha"}})
	eng.RunFor(time.Second)
	a.send(s, &Msg{Kind: "connect", ID: 2, Name: "alpha", Peer: &HostRecord{Name: "ghost"}})
	eng.RunFor(5 * time.Second)
	if e := a.last("error"); e == nil {
		t.Fatal("no error for unknown target")
	}
}

func TestLocatorGroup(t *testing.T) {
	l := NewLocator()
	// Two tight pairs far from each other.
	l.Report("a", "b", 2*time.Millisecond)
	l.Report("c", "d", 2*time.Millisecond)
	l.Report("a", "c", 100*time.Millisecond)
	l.Report("a", "d", 100*time.Millisecond)
	l.Report("b", "c", 100*time.Millisecond)
	l.Report("b", "d", 100*time.Millisecond)
	g, err := l.Group(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("group %v", g)
	}
	pair := g[0] + g[1]
	if !(pair == "ab" || pair == "ba" || pair == "cd" || pair == "dc") {
		t.Fatalf("group picked distant pair: %v", g)
	}
	if len(l.Hosts()) != 4 || len(l.Matrix()) != 4 {
		t.Fatal("locator bookkeeping wrong")
	}
}
