package rendezvous

import (
	"testing"
	"testing/quick"

	"wavnet/internal/can"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func TestPropertyMsgRoundTrips(t *testing.T) {
	f := func(kind string, id uint64, name, errStr string, k int,
		relayChan uint64, relayIP uint32, relayPort uint16,
		recName string, mappedIP uint32, mappedPort uint16, natRaw uint8,
		ax, ay float64, netA, netB string) bool {
		m := &Msg{
			Kind: kind, ID: id, Name: name, Error: errStr, K: k,
			RelayChan: relayChan,
			RelayAddr: netsim.Addr{IP: netsim.IP(relayIP), Port: relayPort},
			Nets:      []string{netA, netB},
			Rec: &HostRecord{
				Name:   recName,
				Mapped: netsim.Addr{IP: netsim.IP(mappedIP), Port: mappedPort},
				NAT:    nat.Type(natRaw % 5),
				Attrs:  can.Point{ax, ay},
			},
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return got.Kind == m.Kind && got.ID == m.ID && got.Name == m.Name &&
			got.Error == m.Error && got.K == m.K &&
			got.RelayChan == m.RelayChan && got.RelayAddr == m.RelayAddr &&
			len(got.Nets) == 2 && got.Nets[0] == netA && got.Nets[1] == netB &&
			got.Rec != nil && got.Rec.Name == m.Rec.Name &&
			got.Rec.Mapped == m.Rec.Mapped && got.Rec.NAT == m.Rec.NAT &&
			len(got.Rec.Attrs) == 2 &&
			got.Rec.Attrs[0] == ax && got.Rec.Attrs[1] == ay
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Decode(b) // error is fine; panic is not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLocatorMatrixStaysSymmetric(t *testing.T) {
	f := func(pairs []uint16, rttsRaw []uint32) bool {
		l := NewLocator()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for i, pr := range pairs {
			if i >= len(rttsRaw) {
				break
			}
			x := names[int(pr)%len(names)]
			y := names[int(pr>>8)%len(names)]
			l.Report(x, y, sim.Duration(rttsRaw[i]%1e9))
		}
		m := l.Matrix()
		for i := range m {
			if m[i][i] != 0 {
				return false
			}
			for j := range m[i] {
				if m[i][j] != m[j][i] {
					return false
				}
			}
		}
		return len(l.Hosts()) == len(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelfReportIgnored(t *testing.T) {
	l := NewLocator()
	l.Report("a", "a", sim.Second)
	if len(l.Hosts()) != 0 {
		t.Fatalf("self-report created hosts: %v", l.Hosts())
	}
}
