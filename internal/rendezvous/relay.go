package rendezvous

import (
	"encoding/binary"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// The paper's hole punching covers full-cone, restricted-cone and
// port-restricted-cone NATs; symmetric NATs (and symmetric/port-
// restricted pairs) defeat it. For those pairs the broker falls back to
// relaying: it allocates a channel and both hosts tunnel their frames
// through the broker's socket. This is exactly the centralized
// forwarding the paper's design avoids for the common case — the relay
// exists so that no host pair is unreachable, and the ablation
// benchmarks quantify what the direct path saves.

// RelayMagic is the first byte of relayed tunnel traffic on the broker
// socket (and of the relay envelope hosts exchange with the broker).
const RelayMagic = 0x16

// RelayHeaderLen is the relay envelope overhead: magic + channel id.
const RelayHeaderLen = 1 + 8

// relayChannel is one brokered host pair. Endpoint addresses are
// learned from traffic (a symmetric NAT maps the broker destination
// differently from any punched path, so the broker can only observe,
// never predict, them).
type relayChannel struct {
	id       uint64
	names    [2]string
	addrs    [2]netsim.Addr
	lastUsed sim.Time

	Frames, Bytes uint64
}

// newRelayChannel allocates a channel between two named hosts. Known
// session addresses seed the endpoints; unknown ones stay zero until the
// first envelope arrives.
func (s *Server) newRelayChannel(aName, bName string, aAddr, bAddr netsim.Addr) *relayChannel {
	id := s.eng.Rand().Uint64()
	for id == 0 || s.relays[id] != nil {
		id = s.eng.Rand().Uint64()
	}
	ch := &relayChannel{
		id:       id,
		names:    [2]string{aName, bName},
		addrs:    [2]netsim.Addr{aAddr, bAddr},
		lastUsed: s.eng.Now(),
	}
	s.relays[id] = ch
	s.RelayChannels++
	return ch
}

// onRelay forwards one relay envelope to the channel's other endpoint.
// The source address refreshes (or fills in) the sender's endpoint slot,
// which is how NAT rebinds and initially-unknown mappings are absorbed.
func (s *Server) onRelay(pkt netsim.Packet) {
	if len(pkt.Payload) < RelayHeaderLen {
		return
	}
	id := binary.BigEndian.Uint64(pkt.Payload[1:])
	ch, ok := s.relays[id]
	if !ok {
		return
	}
	var from int
	switch pkt.Src {
	case ch.addrs[0]:
		from = 0
	case ch.addrs[1]:
		from = 1
	default:
		// Unknown source: claim the first empty slot. A 64-bit random
		// channel id is the (simulation-grade) admission control.
		switch {
		case ch.addrs[0].IsZero():
			from = 0
			ch.addrs[0] = pkt.Src
		case ch.addrs[1].IsZero():
			from = 1
			ch.addrs[1] = pkt.Src
		default:
			return
		}
	}
	ch.lastUsed = s.eng.Now()
	to := ch.addrs[1-from]
	if to.IsZero() {
		return // peer has not checked in yet; drop (UDP semantics)
	}
	ch.Frames++
	ch.Bytes += uint64(len(pkt.Payload))
	s.RelayFrames++
	s.RelayBytes += uint64(len(pkt.Payload))
	s.sock.SendTo(to, pkt.Payload)
}

// expireRelays drops channels idle longer than the configured TTL.
func (s *Server) expireRelays() {
	cutoff := s.eng.Now().Add(-s.cfg.RelayIdle)
	for id, ch := range s.relays {
		if ch.lastUsed < cutoff {
			delete(s.relays, id)
		}
	}
}

// RelayChannelCount reports live relay channels (after expiry).
func (s *Server) RelayChannelCount() int {
	s.expireRelays()
	return len(s.relays)
}

// orderRelay tells both (local) hosts to tunnel through this broker.
func (s *Server) orderRelay(a, b HostRecord, id uint64, requester netsim.Addr) {
	ch := s.newRelayChannel(a.Name, b.Name, a.Mapped, b.Mapped)
	s.reply(a.Mapped, &Msg{Kind: kindRelayOrder, ID: id, Peer: &b,
		RelayChan: ch.id, RelayAddr: s.Addr()})
	s.reply(b.Mapped, &Msg{Kind: kindRelayOrder, Peer: &a,
		RelayChan: ch.id, RelayAddr: s.Addr()})
}
