package stun

import (
	"testing"
	"testing/quick"
	"time"

	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:    TypeBindingResponse,
		Mapped:  netsim.Addr{IP: netsim.MustParseIP("8.8.8.8"), Port: 1234},
		Source:  netsim.Addr{IP: netsim.MustParseIP("1.2.3.4"), Port: 3478},
		Changed: netsim.Addr{IP: netsim.MustParseIP("1.2.3.5"), Port: 3479},
		Change:  ChangeIP | ChangePort,
	}
	m.TxID[0] = 0xAB
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	m := &Message{Type: TypeBindingRequest}
	wire := m.Marshal()
	wire[3] = 200 // claim long attributes
	if _, err := Unmarshal(wire); err == nil {
		t.Error("truncated attributes accepted")
	}
}

func TestPropertyMarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// classifyRig builds a world with a STUN server and one client host
// behind the requested NAT type (or public when typ == nat.None).
func classifyRig(t *testing.T, typ nat.Type) (got Result, err error) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	sSite := nw.NewSite("server")
	cSite := nw.NewSite("client")
	nw.SetRTT(sSite, cSite, 20*time.Millisecond)

	srvHost := nw.NewPublicHost("stun", sSite, netsim.MustParseIP("3.3.3.3"), 0, 0)
	if _, e := NewServer(srvHost, netsim.MustParseIP("3.3.3.4"), 3478, 3479); e != nil {
		t.Fatal(e)
	}

	var client *netsim.Host
	if typ == nat.None {
		client = nw.NewPublicHost("client", cSite, netsim.MustParseIP("9.9.9.9"), 0, 0)
	} else {
		gw := nw.NewPublicHost("gw", cSite, netsim.MustParseIP("5.5.5.5"), 0, 0)
		lan := nw.NewLan("lan", cSite, 100e6, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.1.1"))
		client = lan.NewHost("client", netsim.MustParseIP("192.168.1.2"))
		nat.Attach(gw, typ)
	}

	eng.Spawn("classify", func(p *sim.Proc) {
		got, err = Classify(p, client, netsim.Addr{IP: netsim.MustParseIP("3.3.3.3"), Port: 3478}, Config{})
	})
	eng.Run()
	return got, err
}

func TestClassifyOpenInternet(t *testing.T) {
	res, err := classifyRig(t, nat.None)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassOpenInternet {
		t.Fatalf("class = %v, want open-internet", res.Class)
	}
	if res.Mapped != res.Local {
		t.Fatalf("public host should observe its own address, got %v vs %v", res.Mapped, res.Local)
	}
}

func TestClassifyFullCone(t *testing.T) {
	res, err := classifyRig(t, nat.FullCone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassFullCone {
		t.Fatalf("class = %v, want full-cone", res.Class)
	}
	if res.Mapped.IP != netsim.MustParseIP("5.5.5.5") {
		t.Fatalf("mapped address %v should be the gateway's public IP", res.Mapped)
	}
}

func TestClassifyRestrictedCone(t *testing.T) {
	res, err := classifyRig(t, nat.RestrictedCone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassRestrictedCone {
		t.Fatalf("class = %v, want restricted-cone", res.Class)
	}
}

func TestClassifyPortRestrictedCone(t *testing.T) {
	res, err := classifyRig(t, nat.PortRestrictedCone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassPortRestrictedCone {
		t.Fatalf("class = %v, want port-restricted-cone", res.Class)
	}
}

func TestClassifySymmetric(t *testing.T) {
	res, err := classifyRig(t, nat.Symmetric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassSymmetric {
		t.Fatalf("class = %v, want symmetric", res.Class)
	}
}

func TestClassifyBlocked(t *testing.T) {
	// No server bound at the target address: all tests time out.
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	s := nw.NewSite("s")
	client := nw.NewPublicHost("client", s, netsim.MustParseIP("9.9.9.9"), 0, 0)
	var res Result
	var err error
	eng.Spawn("classify", func(p *sim.Proc) {
		res, err = Classify(p, client, netsim.Addr{IP: netsim.MustParseIP("3.3.3.3"), Port: 3478},
			Config{Timeout: 100 * time.Millisecond, Retries: 2})
	})
	eng.Run()
	if err == nil || res.Class != ClassUDPBlocked {
		t.Fatalf("got class=%v err=%v, want blocked", res.Class, err)
	}
}

func TestClassifySurvivesLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	nw := netsim.New(eng)
	nw.LossRate = 0.2
	sSite := nw.NewSite("server")
	cSite := nw.NewSite("client")
	nw.SetRTT(sSite, cSite, 20*time.Millisecond)
	srvHost := nw.NewPublicHost("stun", sSite, netsim.MustParseIP("3.3.3.3"), 0, 0)
	if _, err := NewServer(srvHost, netsim.MustParseIP("3.3.3.4"), 3478, 3479); err != nil {
		t.Fatal(err)
	}
	gw := nw.NewPublicHost("gw", cSite, netsim.MustParseIP("5.5.5.5"), 0, 0)
	lan := nw.NewLan("lan", cSite, 100e6, 50*time.Microsecond)
	lan.AttachGateway(gw, netsim.MustParseIP("192.168.1.1"))
	client := lan.NewHost("client", netsim.MustParseIP("192.168.1.2"))
	nat.Attach(gw, nat.FullCone)

	var res Result
	var err error
	eng.Spawn("classify", func(p *sim.Proc) {
		res, err = Classify(p, client, netsim.Addr{IP: netsim.MustParseIP("3.3.3.3"), Port: 3478},
			Config{Retries: 6})
	})
	eng.Run()
	if err != nil {
		t.Fatalf("classification failed under 20%% loss: %v", err)
	}
	if res.Class != ClassFullCone {
		t.Fatalf("class = %v, want full-cone", res.Class)
	}
}

func TestClassStringAndNATType(t *testing.T) {
	cases := map[NATClass]nat.Type{
		ClassOpenInternet:       nat.None,
		ClassFullCone:           nat.FullCone,
		ClassRestrictedCone:     nat.RestrictedCone,
		ClassPortRestrictedCone: nat.PortRestrictedCone,
		ClassSymmetric:          nat.Symmetric,
		ClassSymmetricFirewall:  nat.Symmetric,
		ClassUDPBlocked:         nat.None,
	}
	for cls, want := range cases {
		if cls.NATType() != want {
			t.Errorf("%v.NATType() = %v, want %v", cls, cls.NATType(), want)
		}
		if cls.String() == "unknown" {
			t.Errorf("class %d has no name", int(cls))
		}
	}
}
