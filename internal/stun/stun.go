// Package stun implements the Simple Traversal of UDP through NATs
// protocol (RFC 3489 era, as WAVNet used) over the simulated network:
// a binary message codec, a server with primary/alternate addresses
// honouring CHANGE-REQUEST, and a client that runs the classic
// classification algorithm to detect the NAT type in front of a host.
package stun

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/netsim"
)

// Message types.
const (
	TypeBindingRequest  = 0x0001
	TypeBindingResponse = 0x0101
)

// Attribute types.
const (
	AttrMappedAddress  = 0x0001
	AttrChangeRequest  = 0x0003
	AttrSourceAddress  = 0x0004
	AttrChangedAddress = 0x0005
)

// CHANGE-REQUEST flag bits.
const (
	ChangeIP   = 0x04
	ChangePort = 0x02
)

// Message is a decoded STUN message.
type Message struct {
	Type    uint16
	TxID    [16]byte
	Mapped  netsim.Addr // MAPPED-ADDRESS
	Source  netsim.Addr // SOURCE-ADDRESS
	Changed netsim.Addr // CHANGED-ADDRESS
	Change  uint8       // CHANGE-REQUEST flags
}

const headerLen = 20

// Marshal encodes the message into wire format.
func (m *Message) Marshal() []byte {
	var attrs []byte
	appendAddr := func(typ uint16, a netsim.Addr) {
		attr := make([]byte, 4+8)
		binary.BigEndian.PutUint16(attr[0:], typ)
		binary.BigEndian.PutUint16(attr[2:], 8)
		attr[4] = 0
		attr[5] = 0x01 // family IPv4
		binary.BigEndian.PutUint16(attr[6:], a.Port)
		binary.BigEndian.PutUint32(attr[8:], uint32(a.IP))
		attrs = append(attrs, attr...)
	}
	if !m.Mapped.IsZero() {
		appendAddr(AttrMappedAddress, m.Mapped)
	}
	if !m.Source.IsZero() {
		appendAddr(AttrSourceAddress, m.Source)
	}
	if !m.Changed.IsZero() {
		appendAddr(AttrChangedAddress, m.Changed)
	}
	if m.Change != 0 {
		attr := make([]byte, 4+4)
		binary.BigEndian.PutUint16(attr[0:], AttrChangeRequest)
		binary.BigEndian.PutUint16(attr[2:], 4)
		attr[7] = m.Change
		attrs = append(attrs, attr...)
	}
	out := make([]byte, headerLen+len(attrs))
	binary.BigEndian.PutUint16(out[0:], m.Type)
	binary.BigEndian.PutUint16(out[2:], uint16(len(attrs)))
	copy(out[4:], m.TxID[:])
	copy(out[headerLen:], attrs)
	return out
}

// Unmarshal decodes a wire-format STUN message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerLen {
		return nil, errors.New("stun: short message")
	}
	m := &Message{Type: binary.BigEndian.Uint16(b[0:])}
	length := int(binary.BigEndian.Uint16(b[2:]))
	copy(m.TxID[:], b[4:headerLen])
	if len(b) < headerLen+length {
		return nil, errors.New("stun: truncated attributes")
	}
	attrs := b[headerLen : headerLen+length]
	for len(attrs) >= 4 {
		typ := binary.BigEndian.Uint16(attrs[0:])
		alen := int(binary.BigEndian.Uint16(attrs[2:]))
		if len(attrs) < 4+alen {
			return nil, errors.New("stun: truncated attribute")
		}
		val := attrs[4 : 4+alen]
		switch typ {
		case AttrMappedAddress, AttrSourceAddress, AttrChangedAddress:
			if alen != 8 {
				return nil, fmt.Errorf("stun: bad address attribute length %d", alen)
			}
			a := netsim.Addr{
				Port: binary.BigEndian.Uint16(val[2:]),
				IP:   netsim.IP(binary.BigEndian.Uint32(val[4:])),
			}
			switch typ {
			case AttrMappedAddress:
				m.Mapped = a
			case AttrSourceAddress:
				m.Source = a
			case AttrChangedAddress:
				m.Changed = a
			}
		case AttrChangeRequest:
			if alen != 4 {
				return nil, errors.New("stun: bad change-request length")
			}
			m.Change = val[3]
		default:
			// Unknown attributes are skipped (comprehension-optional).
		}
		attrs = attrs[4+alen:]
	}
	return m, nil
}
