package stun

import (
	"wavnet/internal/netsim"
)

// Server is a STUN server answering binding requests from four distinct
// source addresses: {primary, alternate IP} × {primary, alternate port},
// as the classification algorithm's CHANGE-REQUEST tests require. The
// alternate IP is installed as an alias of the same host.
type Server struct {
	host    *netsim.Host
	ip, ip2 netsim.IP
	p1, p2  uint16
	socks   []*netsim.UDPSocket

	Requests uint64
}

// NewServer starts a STUN server on host, adding altIP as a host alias.
// Ports p1 (primary) and p2 (alternate) are bound for both addresses.
func NewServer(host *netsim.Host, altIP netsim.IP, p1, p2 uint16) (*Server, error) {
	s := &Server{host: host, ip: host.IP(), ip2: altIP, p1: p1, p2: p2}
	host.Network().AddAlias(host, altIP)
	for _, port := range []uint16{p1, p2} {
		port := port
		sock, err := host.BindUDP(port, func(pkt netsim.Packet) { s.serve(pkt) })
		if err != nil {
			return nil, err
		}
		s.socks = append(s.socks, sock)
	}
	return s, nil
}

// Close releases the server's ports so a restarted service can rebind
// them; the alternate-IP alias stays with the host.
func (s *Server) Close() {
	for _, sock := range s.socks {
		sock.Close()
	}
}

// PrimaryAddr returns the address clients should first contact.
func (s *Server) PrimaryAddr() netsim.Addr { return netsim.Addr{IP: s.ip, Port: s.p1} }

// AlternateAddr returns the fully-changed address (other IP, other port).
func (s *Server) AlternateAddr() netsim.Addr { return netsim.Addr{IP: s.ip2, Port: s.p2} }

func (s *Server) serve(pkt netsim.Packet) {
	req, err := Unmarshal(pkt.Payload)
	if err != nil || req.Type != TypeBindingRequest {
		return
	}
	s.Requests++

	// Choose the response source per CHANGE-REQUEST.
	srcIP := pkt.Dst.IP
	srcPort := pkt.Dst.Port
	if req.Change&ChangeIP != 0 {
		srcIP = s.otherIP(srcIP)
	}
	if req.Change&ChangePort != 0 {
		srcPort = s.otherPort(srcPort)
	}

	resp := &Message{
		Type:    TypeBindingResponse,
		TxID:    req.TxID,
		Mapped:  pkt.Src,
		Source:  netsim.Addr{IP: srcIP, Port: srcPort},
		Changed: netsim.Addr{IP: s.otherIP(pkt.Dst.IP), Port: s.otherPort(pkt.Dst.Port)},
	}
	s.host.SendRaw(&netsim.Packet{
		Src:     netsim.Addr{IP: srcIP, Port: srcPort},
		Dst:     pkt.Src,
		Payload: resp.Marshal(),
	})
}

func (s *Server) otherIP(ip netsim.IP) netsim.IP {
	if ip == s.ip {
		return s.ip2
	}
	return s.ip
}

func (s *Server) otherPort(p uint16) uint16 {
	if p == s.p1 {
		return s.p2
	}
	return s.p1
}
