package stun

import (
	"errors"

	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// NATClass is the outcome of the RFC 3489 classification algorithm.
type NATClass int

// Classification results, in the order the algorithm distinguishes them.
const (
	ClassUDPBlocked NATClass = iota
	ClassOpenInternet
	ClassSymmetricFirewall
	ClassFullCone
	ClassRestrictedCone
	ClassPortRestrictedCone
	ClassSymmetric
)

// String names the class.
func (c NATClass) String() string {
	switch c {
	case ClassUDPBlocked:
		return "udp-blocked"
	case ClassOpenInternet:
		return "open-internet"
	case ClassSymmetricFirewall:
		return "symmetric-firewall"
	case ClassFullCone:
		return "full-cone"
	case ClassRestrictedCone:
		return "restricted-cone"
	case ClassPortRestrictedCone:
		return "port-restricted-cone"
	case ClassSymmetric:
		return "symmetric"
	}
	return "unknown"
}

// NATType maps the classification onto the nat package's behaviour enum
// (open-internet and firewall classes map to nat.None and nat.Symmetric
// respectively for punchability decisions).
func (c NATClass) NATType() nat.Type {
	switch c {
	case ClassFullCone:
		return nat.FullCone
	case ClassRestrictedCone:
		return nat.RestrictedCone
	case ClassPortRestrictedCone:
		return nat.PortRestrictedCone
	case ClassSymmetric, ClassSymmetricFirewall:
		return nat.Symmetric
	default:
		return nat.None
	}
}

// Result carries the classification and the external mapping observed on
// the primary test, which hole punching advertises to peers.
type Result struct {
	Class  NATClass
	Mapped netsim.Addr // external address seen by the server
	Local  netsim.Addr // the socket's local address
}

// Config tunes the client's retransmission behaviour.
type Config struct {
	Timeout sim.Duration // per-attempt wait (default 500 ms)
	Retries int          // attempts per test (default 3)
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 500 * sim.Millisecond
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	return c
}

// ErrBlocked is returned when no STUN response is received at all.
var ErrBlocked = errors.New("stun: no response (UDP blocked)")

// Classify runs the RFC 3489 NAT discovery algorithm from host against
// the given server, using a fresh ephemeral UDP socket. It must be called
// from a simulation process.
func Classify(p *sim.Proc, host *netsim.Host, server netsim.Addr, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	c, err := newClient(p, host, cfg)
	if err != nil {
		return Result{}, err
	}
	defer c.close()

	// Test I: plain binding request to the primary address.
	r1, ok := c.test(server, 0)
	if !ok {
		return Result{Class: ClassUDPBlocked}, ErrBlocked
	}
	res := Result{Mapped: r1.Mapped, Local: c.local()}

	notNATed := r1.Mapped == c.local()

	// Test II: ask the server to reply from the alternate IP and port.
	_, okII := c.test(server, ChangeIP|ChangePort)

	if notNATed {
		if okII {
			res.Class = ClassOpenInternet
		} else {
			res.Class = ClassSymmetricFirewall
		}
		return res, nil
	}
	if okII {
		res.Class = ClassFullCone
		return res, nil
	}

	// Test I': plain request to the alternate address; a different
	// mapping means the NAT allocates per destination (symmetric).
	alt := r1.Changed
	if alt.IsZero() {
		return res, errors.New("stun: server did not provide CHANGED-ADDRESS")
	}
	r3, ok := c.test(alt, 0)
	if !ok {
		return res, errors.New("stun: alternate server address unreachable")
	}
	if r3.Mapped != r1.Mapped {
		res.Class = ClassSymmetric
		return res, nil
	}

	// Test III: reply from the same IP but the alternate port.
	if _, ok := c.test(server, ChangePort); ok {
		res.Class = ClassRestrictedCone
	} else {
		res.Class = ClassPortRestrictedCone
	}
	return res, nil
}

type client struct {
	p    *sim.Proc
	host *netsim.Host
	cfg  Config
	sock *netsim.UDPSocket
	inbx []netsim.Packet
	wq   sim.WaitQueue
	txid uint64
}

func newClient(p *sim.Proc, host *netsim.Host, cfg Config) (*client, error) {
	c := &client{p: p, host: host, cfg: cfg}
	sock, err := host.BindUDP(0, func(pkt netsim.Packet) {
		c.inbx = append(c.inbx, pkt)
		c.wq.Signal()
	})
	if err != nil {
		return nil, err
	}
	c.sock = sock
	return c, nil
}

func (c *client) local() netsim.Addr { return c.sock.LocalAddr() }
func (c *client) close()             { c.sock.Close() }

// test performs one STUN test with retransmission; ok=false on timeout.
func (c *client) test(dst netsim.Addr, change uint8) (*Message, bool) {
	c.txid++
	var tx [16]byte
	tx[0] = byte(c.txid >> 8)
	tx[1] = byte(c.txid)
	req := &Message{Type: TypeBindingRequest, TxID: tx, Change: change}
	wire := req.Marshal()

	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		c.sock.SendTo(dst, wire)
		deadline := c.p.Now().Add(c.cfg.Timeout)
		for {
			// Drain queued packets first.
			for len(c.inbx) > 0 {
				pkt := c.inbx[0]
				c.inbx = c.inbx[1:]
				resp, err := Unmarshal(pkt.Payload)
				if err != nil || resp.Type != TypeBindingResponse || resp.TxID != tx {
					continue
				}
				return resp, true
			}
			remain := deadline.Sub(c.p.Now())
			if remain <= 0 {
				break
			}
			fired := false
			timer := sim.NewTimer(c.p.Engine(), func() { fired = true; c.p.Interrupt() })
			timer.Reset(remain)
			woke := c.wq.Wait(c.p)
			timer.Stop()
			if fired {
				// Our own deadline interrupt: consume it.
				c.p.ClearInterrupt()
			}
			if !woke {
				if !fired {
					// External interrupt: abandon the whole test so the
					// stop request propagates to the caller promptly.
					return nil, false
				}
				break // retransmit on the next attempt
			}
		}
	}
	return nil, false
}
