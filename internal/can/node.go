package can

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Config tunes a CAN node.
type Config struct {
	Dims            int          // dimensionality of the space (default 2)
	HeartbeatPeriod sim.Duration // neighbor hello interval (default 5s)
	FailAfter       int          // heartbeats missed before takeover (default 3)
	RPCTimeout      sim.Duration // client request timeout (default 3s)
	MaxHops         int          // routing TTL (default 64)
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = 2
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 5 * sim.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 3 * sim.Second
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
	return c
}

type neighborInfo struct {
	addr     netsim.Addr
	zones    []Zone
	lastSeen sim.Time
	// neighborAddrs is the neighbor's own neighbor list from its last
	// hello, used to greet bereaved peers after a failure takeover.
	neighborAddrs []netsim.Addr
}

type pendingReq struct {
	cb    func(*wireMsg, error)
	timer *sim.Timer
}

// Node is one CAN participant (a WAVNet rendezvous server). All methods
// must be called from simulation context.
type Node struct {
	host *netsim.Host
	sock *netsim.UDPSocket
	eng  *sim.Engine
	cfg  Config

	active    bool
	zones     []Zone
	resources map[string]*Resource
	neighbors map[netsim.Addr]*neighborInfo

	pending map[uint64]*pendingReq
	nextID  uint64

	hbEv *sim.Event

	// Stats.
	RouteForwards uint64
	RouteFails    uint64
	MsgsIn        uint64
	MsgsOut       uint64
	Takeovers     uint64
}

// NewNode binds a CAN node to a UDP port on host. The node is inactive
// until Bootstrap or Join.
func NewNode(host *netsim.Host, port uint16, cfg Config) (*Node, error) {
	n := &Node{
		host:      host,
		eng:       host.Engine(),
		cfg:       cfg.withDefaults(),
		resources: make(map[string]*Resource),
		neighbors: make(map[netsim.Addr]*neighborInfo),
		pending:   make(map[uint64]*pendingReq),
	}
	sock, err := host.BindUDP(port, n.onPacket)
	if err != nil {
		return nil, err
	}
	n.sock = sock
	return n, nil
}

// Addr returns the node's overlay address.
func (n *Node) Addr() netsim.Addr { return n.sock.LocalAddr() }

// Zones returns the zones the node currently owns.
func (n *Node) Zones() []Zone { return append([]Zone(nil), n.zones...) }

// NeighborCount reports the size of the neighbor set.
func (n *Node) NeighborCount() int { return len(n.neighbors) }

// ResourceCount reports the number of stored resources.
func (n *Node) ResourceCount() int { return len(n.resources) }

// Active reports whether the node currently owns any zone.
func (n *Node) Active() bool { return n.active }

// Close tears the node down abruptly (a crash, not a graceful Leave):
// the socket is released, the heartbeat stops, and all zone and
// resource state is discarded. Neighbors discover the death through
// their own missed-hello detection. A fresh node may rebind the port.
func (n *Node) Close() {
	n.active = false
	n.zones = nil
	n.resources = make(map[string]*Resource)
	n.neighbors = make(map[netsim.Addr]*neighborInfo)
	if n.hbEv != nil {
		n.eng.Cancel(n.hbEv)
		n.hbEv = nil
	}
	n.sock.Close()
}

// Bootstrap makes this node the first member, owning the whole space.
func (n *Node) Bootstrap() {
	n.zones = []Zone{FullZone(n.cfg.Dims)}
	n.active = true
	n.startHeartbeat()
}

// Join contacts a seed node and acquires a zone; cb runs with the outcome.
func (n *Node) Join(seed netsim.Addr, cb func(error)) {
	point := make(Point, n.cfg.Dims)
	for i := range point {
		point[i] = n.eng.Rand().Float64()
	}
	id := n.newRPC(func(m *wireMsg, err error) {
		if err != nil {
			cb(err)
			return
		}
		n.zones = m.Zones
		for _, r := range m.Resources {
			r := r
			n.resources[r.ID] = &r
		}
		n.active = true
		now := n.eng.Now()
		for _, nb := range m.Neighbors {
			if n.adjacentToMe(nb.Zones) {
				n.neighbors[nb.Addr] = &neighborInfo{addr: nb.Addr, zones: nb.Zones, lastSeen: now}
			}
		}
		n.startHeartbeat()
		n.sendHellos()
		cb(nil)
	})
	n.send(seed, &wireMsg{
		Kind:   kindJoinRoute,
		ID:     id,
		Origin: n.Addr(),
		Target: point,
	})
}

// Put stores (or refreshes) a resource at the owner of its key point.
// ttl of zero means no expiry.
func (n *Node) Put(res Resource, ttl sim.Duration, cb func(error)) {
	if !res.Key.Valid() || len(res.Key) != n.cfg.Dims {
		cb(fmt.Errorf("can: invalid key %v", res.Key))
		return
	}
	if ttl > 0 {
		res.Expires = int64(n.eng.Now().Add(ttl))
	}
	id := n.newRPC(func(m *wireMsg, err error) { cb(err) })
	n.route(&wireMsg{
		Kind:     kindPut,
		ID:       id,
		Origin:   n.Addr(),
		Target:   res.Key,
		Resource: &res,
	})
}

// Remove deletes a resource by ID from the owner of its key point.
func (n *Node) Remove(key Point, resID string, cb func(error)) {
	id := n.newRPC(func(m *wireMsg, err error) { cb(err) })
	n.route(&wireMsg{
		Kind:   kindRemove,
		ID:     id,
		Origin: n.Addr(),
		Target: key,
		ResID:  resID,
	})
}

// LookupResult is the answer to a Lookup: the owner of the queried point
// and every live resource it stores.
type LookupResult struct {
	Owner     netsim.Addr
	Resources []Resource
	Hops      int
}

// Lookup routes to the owner of point and returns its resource set.
func (n *Node) Lookup(point Point, cb func(LookupResult, error)) {
	if !point.Valid() || len(point) != n.cfg.Dims {
		cb(LookupResult{}, fmt.Errorf("can: invalid point %v", point))
		return
	}
	id := n.newRPC(func(m *wireMsg, err error) {
		if err != nil {
			cb(LookupResult{}, err)
			return
		}
		cb(LookupResult{Owner: m.Origin, Resources: m.Resources, Hops: m.Hops}, nil)
	})
	n.route(&wireMsg{
		Kind:   kindLookup,
		ID:     id,
		Origin: n.Addr(),
		Target: point,
	})
}

// Leave gracefully hands the node's zones and resources to a neighbor and
// deactivates the node.
func (n *Node) Leave() {
	if !n.active {
		return
	}
	succ := n.chooseSuccessor()
	if succ != nil {
		msg := &wireMsg{
			Kind:      kindTakeover,
			Origin:    n.Addr(),
			Zones:     n.zones,
			Neighbors: n.neighborWires(),
		}
		for _, r := range n.resources {
			msg.Resources = append(msg.Resources, *r)
		}
		sort.Slice(msg.Resources, func(i, j int) bool { return msg.Resources[i].ID < msg.Resources[j].ID })
		n.send(succ.addr, msg)
		for addr := range n.neighbors {
			if addr != succ.addr {
				n.send(addr, &wireMsg{Kind: kindBye, Origin: n.Addr()})
			}
		}
	}
	n.active = false
	n.zones = nil
	n.resources = make(map[string]*Resource)
	n.neighbors = make(map[netsim.Addr]*neighborInfo)
	if n.hbEv != nil {
		n.eng.Cancel(n.hbEv)
		n.hbEv = nil
	}
}

// chooseSuccessor prefers a neighbor whose zone merges with ours into a
// rectangle; otherwise the neighbor with the smallest total volume.
func (n *Node) chooseSuccessor() *neighborInfo {
	var best *neighborInfo
	bestVol := 0.0
	for _, nb := range n.sortedNeighbors() {
		if len(n.zones) == 1 && len(nb.zones) == 1 {
			if _, ok := n.zones[0].MergeableWith(nb.zones[0]); ok {
				return nb
			}
		}
		v := 0.0
		for _, z := range nb.zones {
			v += z.Volume()
		}
		if best == nil || v < bestVol {
			best, bestVol = nb, v
		}
	}
	return best
}

func (n *Node) sortedNeighbors() []*neighborInfo {
	out := make([]*neighborInfo, 0, len(n.neighbors))
	for _, nb := range n.neighbors {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].addr.IP != out[j].addr.IP {
			return out[i].addr.IP < out[j].addr.IP
		}
		return out[i].addr.Port < out[j].addr.Port
	})
	return out
}

func (n *Node) neighborWires() []neighborWire {
	var ws []neighborWire
	for _, nb := range n.sortedNeighbors() {
		ws = append(ws, neighborWire{Addr: nb.addr, Zones: nb.zones})
	}
	return ws
}

func (n *Node) adjacentToMe(zones []Zone) bool { return anyAdjacent(n.zones, zones) }

// ---- messaging ----

func (n *Node) send(to netsim.Addr, m *wireMsg) {
	n.MsgsOut++
	n.sock.SendTo(to, encode(m))
}

func (n *Node) newRPC(cb func(*wireMsg, error)) uint64 {
	n.nextID++
	id := n.nextID
	pr := &pendingReq{cb: cb}
	pr.timer = sim.NewTimer(n.eng, func() {
		delete(n.pending, id)
		cb(nil, errors.New("can: request timed out"))
	})
	pr.timer.Reset(n.cfg.RPCTimeout)
	n.pending[id] = pr
	return id
}

func (n *Node) resolveRPC(id uint64, m *wireMsg) {
	pr, ok := n.pending[id]
	if !ok {
		return
	}
	pr.timer.Stop()
	delete(n.pending, id)
	if m.Kind == kindError {
		pr.cb(nil, errors.New("can: "+m.Err))
		return
	}
	pr.cb(m, nil)
}

func (n *Node) onPacket(pkt netsim.Packet) {
	m, err := decode(pkt.Payload)
	if err != nil {
		return
	}
	n.MsgsIn++
	switch m.Kind {
	case kindJoinRoute:
		n.route(m)
	case kindPut, kindLookup, kindRemove:
		n.route(m)
	case kindJoinReply, kindPutAck, kindLookupReply, kindError:
		n.resolveRPC(m.ID, m)
	case kindHello:
		n.onHello(pkt.Src, m)
	case kindBye:
		delete(n.neighbors, m.Origin)
	case kindTakeover:
		n.onTakeover(m)
	}
}

// route delivers m locally if a zone of ours contains the target, else
// greedily forwards toward it.
func (n *Node) route(m *wireMsg) {
	if !n.active {
		n.replyError(m, "node inactive")
		return
	}
	if anyContains(n.zones, m.Target) {
		n.handleLocal(m)
		return
	}
	m.Hops++
	if m.Hops > n.cfg.MaxHops {
		n.RouteFails++
		n.replyError(m, "hop limit exceeded")
		return
	}
	// A neighbor that owns the point outright wins immediately; this also
	// resolves boundary points, whose distance to several zones is zero.
	for _, nb := range n.sortedNeighbors() {
		if anyContains(nb.zones, m.Target) {
			n.RouteForwards++
			n.send(nb.addr, m)
			return
		}
	}
	// Greedy step with a strict lexicographic (edge distance, center
	// distance) improvement, which guarantees progress even along zone
	// boundaries where edge distances tie at zero.
	var best *neighborInfo
	bestD := minDistToZones(n.zones, m.Target)
	bestC := n.centerDist(n.zones, m.Target)
	for _, nb := range n.sortedNeighbors() {
		d := minDistToZones(nb.zones, m.Target)
		c := n.centerDist(nb.zones, m.Target)
		if d < bestD || (d == bestD && c < bestC) {
			best, bestD, bestC = nb, d, c
		}
	}
	if best == nil {
		n.RouteFails++
		n.replyError(m, "routing dead end")
		return
	}
	n.RouteForwards++
	n.send(best.addr, m)
}

// centerDist is the smallest distance from a zone center to the target.
func (n *Node) centerDist(zones []Zone, p Point) float64 {
	best := 2.0
	for _, z := range zones {
		if d := Dist(z.Center(), p); d < best {
			best = d
		}
	}
	return best
}

func (n *Node) replyError(m *wireMsg, why string) {
	if m.ID != 0 && !m.Origin.IsZero() {
		n.send(m.Origin, &wireMsg{Kind: kindError, ID: m.ID, Err: why})
	}
}

// handleLocal executes a routed request at the owner.
func (n *Node) handleLocal(m *wireMsg) {
	switch m.Kind {
	case kindJoinRoute:
		n.handleJoin(m)
	case kindPut:
		r := *m.Resource
		n.resources[r.ID] = &r
		n.send(m.Origin, &wireMsg{Kind: kindPutAck, ID: m.ID})
	case kindRemove:
		delete(n.resources, m.ResID)
		n.send(m.Origin, &wireMsg{Kind: kindPutAck, ID: m.ID})
	case kindLookup:
		n.expireResources()
		reply := &wireMsg{Kind: kindLookupReply, ID: m.ID, Origin: n.Addr(), Hops: m.Hops}
		for _, r := range n.resources {
			reply.Resources = append(reply.Resources, *r)
		}
		sort.Slice(reply.Resources, func(i, j int) bool { return reply.Resources[i].ID < reply.Resources[j].ID })
		n.send(m.Origin, reply)
	}
}

func (n *Node) expireResources() {
	now := int64(n.eng.Now())
	for id, r := range n.resources {
		if r.Expires != 0 && r.Expires < now {
			delete(n.resources, id)
		}
	}
}

// handleJoin splits the zone containing the join point and hands the half
// containing it (with its resources and our neighbor set) to the joiner.
func (n *Node) handleJoin(m *wireMsg) {
	zi := -1
	for i, z := range n.zones {
		if z.Contains(m.Target) {
			zi = i
			break
		}
	}
	if zi < 0 {
		n.replyError(m, "join point not owned")
		return
	}
	lower, upper := n.zones[zi].Split(n.zones[zi].LongestDim())
	mine, theirs := lower, upper
	if theirs.Contains(m.Target) {
		// Joiner takes the half with its point.
	} else {
		mine, theirs = upper, lower
	}
	n.zones[zi] = mine

	reply := &wireMsg{
		Kind:  kindJoinReply,
		ID:    m.ID,
		Zones: []Zone{theirs},
	}
	// Hand over resources falling in the joiner's half.
	for id, r := range n.resources {
		if theirs.Contains(r.Key) {
			reply.Resources = append(reply.Resources, *r)
			delete(n.resources, id)
		}
	}
	sort.Slice(reply.Resources, func(i, j int) bool { return reply.Resources[i].ID < reply.Resources[j].ID })
	// Advertise our neighbors plus ourselves.
	reply.Neighbors = append(n.neighborWires(), neighborWire{Addr: n.Addr(), Zones: n.zones})
	n.send(m.Origin, reply)

	// The joiner becomes our neighbor; our zone shrank, so refresh
	// everyone and drop the no-longer-adjacent.
	n.neighbors[m.Origin] = &neighborInfo{addr: m.Origin, zones: []Zone{theirs}, lastSeen: n.eng.Now()}
	n.pruneNeighbors()
	n.sendHellos()
}

func (n *Node) pruneNeighbors() {
	for addr, nb := range n.neighbors {
		if !n.adjacentToMe(nb.zones) {
			delete(n.neighbors, addr)
		}
	}
}

// onHello refreshes (or establishes) a neighbor relationship, and drops
// cached entries the sender's zones prove stale (e.g. a dead node whose
// area the sender has taken over).
func (n *Node) onHello(src netsim.Addr, m *wireMsg) {
	if !n.active {
		return
	}
	for addr, other := range n.neighbors {
		if addr != src && zonesOverlap(other.zones, m.Zones) {
			delete(n.neighbors, addr)
		}
	}
	if !n.adjacentToMe(m.Zones) {
		delete(n.neighbors, src)
		return
	}
	nb, ok := n.neighbors[src]
	if !ok {
		nb = &neighborInfo{addr: src}
		n.neighbors[src] = nb
	}
	nb.zones = m.Zones
	nb.lastSeen = n.eng.Now()
	nb.neighborAddrs = nb.neighborAddrs[:0]
	for _, w := range m.Neighbors {
		nb.neighborAddrs = append(nb.neighborAddrs, w.Addr)
	}
}

// onTakeover adopts zones and resources from a departing (or claimed-dead)
// neighbor.
func (n *Node) onTakeover(m *wireMsg) {
	if !n.active {
		return
	}
	n.Takeovers++
	n.adoptZones(m.Zones)
	for _, r := range m.Resources {
		r := r
		n.resources[r.ID] = &r
	}
	delete(n.neighbors, m.Origin)
	// Greet the leaver's neighbors so they learn the new owner.
	now := n.eng.Now()
	for _, nb := range m.Neighbors {
		if nb.Addr == n.Addr() {
			continue
		}
		if n.adjacentToMe(nb.Zones) {
			if _, ok := n.neighbors[nb.Addr]; !ok {
				n.neighbors[nb.Addr] = &neighborInfo{addr: nb.Addr, zones: nb.Zones, lastSeen: now}
			}
		}
	}
	n.sendHellos()
}

// adoptZones merges new zones into our set, coalescing rectangles where
// possible.
func (n *Node) adoptZones(zones []Zone) {
	n.zones = append(n.zones, zones...)
	for {
		merged := false
	outer:
		for i := 0; i < len(n.zones); i++ {
			for j := i + 1; j < len(n.zones); j++ {
				if mz, ok := n.zones[i].MergeableWith(n.zones[j]); ok {
					n.zones[i] = mz
					n.zones = append(n.zones[:j], n.zones[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return
		}
	}
}

// ---- heartbeats & failure handling ----

// startHeartbeat begins the jittered hello/failure-detection loop. The
// ±10% jitter decorrelates detectors so one neighbor claims a dead zone
// first and its hellos (which carry the new zone set) stop the rest.
func (n *Node) startHeartbeat() {
	if n.hbEv != nil {
		n.eng.Cancel(n.hbEv)
	}
	var tick func()
	schedule := func() {
		j := 1 + (n.eng.Rand().Float64()*0.2 - 0.1)
		d := sim.Duration(float64(n.cfg.HeartbeatPeriod) * j)
		n.hbEv = n.eng.Schedule(d, tick)
	}
	tick = func() {
		if !n.active {
			return
		}
		n.sendHellos()
		n.checkDead()
		schedule()
	}
	schedule()
}

func (n *Node) sendHellos() {
	msg := &wireMsg{Kind: kindHello, Origin: n.Addr(), Zones: n.zones, Neighbors: n.neighborWires()}
	for _, nb := range n.sortedNeighbors() {
		n.send(nb.addr, msg)
	}
}

func (n *Node) checkDead() {
	cutoff := n.eng.Now().Add(-sim.Duration(n.cfg.FailAfter) * n.cfg.HeartbeatPeriod)
	for addr, nb := range n.neighbors {
		if nb.lastSeen < cutoff {
			// Takeover: adopt the dead neighbor's last known zones, then
			// greet its former neighbors so they cancel their own claims.
			delete(n.neighbors, addr)
			n.Takeovers++
			n.adoptZones(nb.zones)
			now := n.eng.Now()
			for _, peer := range nb.neighborAddrs {
				if peer == n.Addr() {
					continue
				}
				if _, known := n.neighbors[peer]; !known {
					n.neighbors[peer] = &neighborInfo{addr: peer, lastSeen: now}
				}
			}
			n.sendHellos()
		}
	}
}

// ---- blocking wrappers for process-style callers ----

// JoinSync joins via seed and blocks the process until the join resolves.
func (n *Node) JoinSync(p *sim.Proc, seed netsim.Addr) error {
	var err error
	done := false
	n.Join(seed, func(e error) {
		err = e
		done = true
		p.Unpark()
	})
	for !done {
		if !p.Park() {
			return errors.New("can: join interrupted")
		}
	}
	return err
}

// PutSync stores a resource, blocking until acknowledged.
func (n *Node) PutSync(p *sim.Proc, res Resource, ttl sim.Duration) error {
	var err error
	done := false
	n.Put(res, ttl, func(e error) {
		err = e
		done = true
		p.Unpark()
	})
	for !done {
		if !p.Park() {
			return errors.New("can: put interrupted")
		}
	}
	return err
}

// LookupSync queries the owner of a point, blocking until the reply.
func (n *Node) LookupSync(p *sim.Proc, point Point) (LookupResult, error) {
	var res LookupResult
	var err error
	done := false
	n.Lookup(point, func(r LookupResult, e error) {
		res, err = r, e
		done = true
		p.Unpark()
	})
	for !done {
		if !p.Park() {
			return res, errors.New("can: lookup interrupted")
		}
	}
	return res, err
}

// MarshalValue is a helper to JSON-encode resource payloads.
func MarshalValue(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic("can: value marshal: " + err.Error())
	}
	return b
}
