package can

import (
	"encoding/json"

	"wavnet/internal/netsim"
)

// Resource is a soft-state item stored in the CAN: WAVNet rendezvous
// servers store host records keyed by their normalized attribute vectors.
type Resource struct {
	ID    string          `json:"id"`
	Key   Point           `json:"key"`
	Value json.RawMessage `json:"value"`
	// Expires is the absolute sim time (ns) past which the record is
	// dropped; zero means no expiry.
	Expires int64 `json:"expires,omitempty"`
}

// Message kinds.
const (
	kindJoinRoute   = "join-route"
	kindJoinReply   = "join-reply"
	kindHello       = "hello"
	kindBye         = "bye"
	kindTakeover    = "takeover"
	kindPut         = "put"
	kindPutAck      = "put-ack"
	kindLookup      = "lookup"
	kindLookupReply = "lookup-reply"
	kindRemove      = "remove"
	kindError       = "error"
)

// neighborWire is the neighbor description exchanged in messages.
type neighborWire struct {
	Addr  netsim.Addr `json:"addr"`
	Zones []Zone      `json:"zones"`
}

// wireMsg is the single JSON envelope for all CAN traffic. Unused fields
// are omitted per kind.
type wireMsg struct {
	Kind   string      `json:"kind"`
	ID     uint64      `json:"id,omitempty"`     // RPC correlation
	Origin netsim.Addr `json:"origin,omitempty"` // RPC reply-to
	Target Point       `json:"target,omitempty"` // routing destination
	Hops   int         `json:"hops,omitempty"`

	Zones     []Zone         `json:"zones,omitempty"`
	Neighbors []neighborWire `json:"neighbors,omitempty"`
	Resources []Resource     `json:"resources,omitempty"`
	Resource  *Resource      `json:"resource,omitempty"`
	ResID     string         `json:"res_id,omitempty"`
	Err       string         `json:"err,omitempty"`
}

func encode(m *wireMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("can: marshal: " + err.Error())
	}
	return b
}

func decode(b []byte) (*wireMsg, error) {
	var m wireMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
