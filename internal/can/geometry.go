// Package can implements a Content-Addressable Network (Ratnasamy et al.,
// SIGCOMM 2001): the structured overlay WAVNet's rendezvous servers use
// to organize themselves and to index host resource states.
//
// Nodes partition a d-dimensional unit torus into zones. Each node owns
// one or more zones (more than one transiently, after taking over a
// departed neighbor), stores the resources whose key points fall inside
// them, and routes greedily by forwarding to the neighbor closest to the
// target point.
package can

import (
	"fmt"
	"math"
)

// Point is a coordinate in the d-dimensional unit torus [0,1)^d.
type Point []float64

// Valid reports whether every coordinate lies in [0,1).
func (p Point) Valid() bool {
	for _, x := range p {
		if x < 0 || x >= 1 || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// torusDist1 is the one-dimensional circular distance between a and b.
func torusDist1(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Dist returns the Euclidean torus distance between two points.
func Dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := torusDist1(a[i], b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Zone is an axis-aligned hyper-rectangle [Lo[i], Hi[i]) per dimension.
// Zones produced by binary splitting never wrap the torus.
type Zone struct {
	Lo, Hi Point
}

// FullZone returns the entire d-dimensional space.
func FullZone(d int) Zone {
	z := Zone{Lo: make(Point, d), Hi: make(Point, d)}
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	return z
}

// Dims returns the dimensionality of the zone.
func (z Zone) Dims() int { return len(z.Lo) }

// Contains reports whether p falls inside the zone.
func (z Zone) Contains(p Point) bool {
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's d-dimensional volume.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= z.Hi[i] - z.Lo[i]
	}
	return v
}

// Center returns the zone's midpoint.
func (z Zone) Center() Point {
	c := make(Point, z.Dims())
	for i := range c {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// LongestDim returns the index of the widest dimension (ties to the
// lowest index), which binary splitting halves to keep zones square-ish.
func (z Zone) LongestDim() int {
	best, bestW := 0, 0.0
	for i := range z.Lo {
		if w := z.Hi[i] - z.Lo[i]; w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// Split halves the zone along dim, returning the lower and upper halves.
func (z Zone) Split(dim int) (lower, upper Zone) {
	mid := (z.Lo[dim] + z.Hi[dim]) / 2
	lower = Zone{Lo: z.Lo.Clone(), Hi: z.Hi.Clone()}
	upper = Zone{Lo: z.Lo.Clone(), Hi: z.Hi.Clone()}
	lower.Hi[dim] = mid
	upper.Lo[dim] = mid
	return lower, upper
}

// MergeableWith reports whether the two zones can be merged back into a
// single rectangle (they abut along exactly one dimension and are equal
// in all others), and the merged zone.
func (z Zone) MergeableWith(o Zone) (Zone, bool) {
	if z.Dims() != o.Dims() {
		return Zone{}, false
	}
	mergeDim := -1
	for i := range z.Lo {
		same := z.Lo[i] == o.Lo[i] && z.Hi[i] == o.Hi[i]
		abut := z.Hi[i] == o.Lo[i] || o.Hi[i] == z.Lo[i]
		switch {
		case same:
			continue
		case abut && mergeDim == -1:
			mergeDim = i
		default:
			return Zone{}, false
		}
	}
	if mergeDim == -1 {
		return Zone{}, false
	}
	m := Zone{Lo: z.Lo.Clone(), Hi: z.Hi.Clone()}
	m.Lo[mergeDim] = math.Min(z.Lo[mergeDim], o.Lo[mergeDim])
	m.Hi[mergeDim] = math.Max(z.Hi[mergeDim], o.Hi[mergeDim])
	return m, true
}

// overlap1 reports whether [alo,ahi) and [blo,bhi) share positive measure.
func overlap1(alo, ahi, blo, bhi float64) bool {
	return math.Max(alo, blo) < math.Min(ahi, bhi)
}

// abut1 reports whether the two intervals touch end-to-end on the torus.
func abut1(alo, ahi, blo, bhi float64) bool {
	if ahi == blo || bhi == alo {
		return true
	}
	// Wraparound contact at the 0/1 seam.
	if ahi == 1 && blo == 0 || bhi == 1 && alo == 0 {
		return true
	}
	return false
}

// Adjacent reports whether two zones are CAN neighbors: they abut along
// exactly one dimension and overlap in every other.
func Adjacent(a, b Zone) bool {
	if a.Dims() != b.Dims() {
		return false
	}
	// The full space is nobody's neighbor (and a zone is not its own).
	abuts := 0
	for i := range a.Lo {
		ao, bo := overlap1(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]), abut1(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i])
		switch {
		case ao:
			continue
		case bo:
			abuts++
		default:
			return false
		}
	}
	return abuts == 1
}

// DistToPoint returns the Euclidean torus distance from p to the nearest
// point of the zone (zero when contained). Greedy routing minimizes it.
func (z Zone) DistToPoint(p Point) float64 {
	var s float64
	for i := range p {
		if p[i] >= z.Lo[i] && p[i] < z.Hi[i] {
			continue
		}
		d := math.Min(torusDist1(p[i], z.Lo[i]), torusDist1(p[i], z.Hi[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// String renders the zone compactly.
func (z Zone) String() string {
	s := "["
	for i := range z.Lo {
		if i > 0 {
			s += " × "
		}
		s += fmt.Sprintf("%.4g..%.4g", z.Lo[i], z.Hi[i])
	}
	return s + ")"
}

// zonesOverlap reports whether any pair across the two zone sets shares
// positive measure. Live zones never overlap, so overlap with a cached
// neighbor entry means the cache is stale.
func zonesOverlap(a, b []Zone) bool {
	for _, za := range a {
		for _, zb := range b {
			all := true
			for i := range za.Lo {
				if !overlap1(za.Lo[i], za.Hi[i], zb.Lo[i], zb.Hi[i]) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
	}
	return false
}

// minDistToZones returns the smallest DistToPoint over a zone set.
func minDistToZones(zones []Zone, p Point) float64 {
	best := math.Inf(1)
	for _, z := range zones {
		if d := z.DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}

// anyContains reports whether any zone in the set contains p.
func anyContains(zones []Zone, p Point) bool {
	for _, z := range zones {
		if z.Contains(p) {
			return true
		}
	}
	return false
}

// anyAdjacent reports whether any pair across the two zone sets is
// adjacent or overlapping-adjacent.
func anyAdjacent(a, b []Zone) bool {
	for _, za := range a {
		for _, zb := range b {
			if Adjacent(za, zb) {
				return true
			}
		}
	}
	return false
}
