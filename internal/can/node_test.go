package can

import (
	"math"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// overlay builds n CAN nodes on public hosts at one site with a small RTT
// and joins them sequentially.
type overlay struct {
	eng   *sim.Engine
	nw    *netsim.Network
	nodes []*Node
}

func buildOverlay(t *testing.T, n int, seed int64) *overlay {
	t.Helper()
	o := &overlay{eng: sim.NewEngine(seed)}
	o.nw = netsim.New(o.eng)
	site := o.nw.NewSite("dc")
	site2 := o.nw.NewSite("dc2")
	o.nw.SetRTT(site, site2, 10*time.Millisecond)
	for i := 0; i < n; i++ {
		s := site
		if i%2 == 1 {
			s = site2
		}
		ip := netsim.MakeIP(10+byte(i/200), byte(i%200)+1, 0, 1)
		h := o.nw.NewPublicHost("rs", s, ip, 0, 0)
		node, err := NewNode(h, 9000, Config{Dims: 2})
		if err != nil {
			t.Fatal(err)
		}
		o.nodes = append(o.nodes, node)
	}
	o.nodes[0].Bootstrap()
	for i := 1; i < n; i++ {
		i := i
		var joinErr error
		done := false
		// Stagger joins to keep heartbeats decorrelated.
		o.eng.Schedule(time.Duration(i)*200*time.Millisecond, func() {
			o.nodes[i].Join(o.nodes[0].Addr(), func(e error) { joinErr = e; done = true })
		})
		o.eng.RunUntil(o.eng.Now().Add(time.Duration(i+1) * 200 * time.Millisecond).Add(5 * time.Second))
		if !done || joinErr != nil {
			t.Fatalf("node %d join: done=%v err=%v", i, done, joinErr)
		}
	}
	return o
}

func (o *overlay) totalVolume() float64 {
	var v float64
	for _, n := range o.nodes {
		if !n.Active() {
			continue
		}
		for _, z := range n.zones {
			v += z.Volume()
		}
	}
	return v
}

func TestTwoNodePartition(t *testing.T) {
	o := buildOverlay(t, 2, 1)
	if math.Abs(o.totalVolume()-1) > 1e-12 {
		t.Fatalf("volume sum %v", o.totalVolume())
	}
	if o.nodes[0].NeighborCount() != 1 || o.nodes[1].NeighborCount() != 1 {
		t.Fatalf("neighbor counts %d, %d", o.nodes[0].NeighborCount(), o.nodes[1].NeighborCount())
	}
}

func TestSixteenNodePartitionAndRouting(t *testing.T) {
	o := buildOverlay(t, 16, 2)
	if math.Abs(o.totalVolume()-1) > 1e-12 {
		t.Fatalf("volume sum %v", o.totalVolume())
	}
	// Every lookup from every node must land on the owner of the point.
	probes := []Point{{0.1, 0.1}, {0.9, 0.2}, {0.5, 0.5}, {0.01, 0.99}, {0.7, 0.7}}
	for _, probe := range probes {
		probe := probe
		var owner netsim.Addr
		var err error
		done := false
		o.nodes[5].Lookup(probe, func(r LookupResult, e error) { owner, err = r.Owner, e; done = true })
		o.eng.RunFor(5 * time.Second)
		if !done || err != nil {
			t.Fatalf("lookup %v: done=%v err=%v", probe, done, err)
		}
		// Verify the responding node really owns the point.
		found := false
		for _, n := range o.nodes {
			if n.Addr() == owner {
				found = anyContains(n.zones, probe)
			}
		}
		if !found {
			t.Fatalf("lookup %v answered by non-owner %v", probe, owner)
		}
	}
}

func TestPutLookupRemove(t *testing.T) {
	o := buildOverlay(t, 8, 3)
	key := Point{0.42, 0.42}
	res := Resource{ID: "host-a", Key: key, Value: MarshalValue(map[string]int{"cpu": 4})}

	var putErr error
	done := false
	o.nodes[1].Put(res, 0, func(e error) { putErr = e; done = true })
	o.eng.RunFor(3 * time.Second)
	if !done || putErr != nil {
		t.Fatalf("put: done=%v err=%v", done, putErr)
	}

	var got LookupResult
	var lookErr error
	done = false
	o.nodes[6].Lookup(key, func(r LookupResult, e error) { got, lookErr = r, e; done = true })
	o.eng.RunFor(3 * time.Second)
	if !done || lookErr != nil {
		t.Fatalf("lookup: done=%v err=%v", done, lookErr)
	}
	if len(got.Resources) != 1 || got.Resources[0].ID != "host-a" {
		t.Fatalf("lookup resources = %+v", got.Resources)
	}

	done = false
	o.nodes[2].Remove(key, "host-a", func(e error) { done = true })
	o.eng.RunFor(3 * time.Second)
	if !done {
		t.Fatal("remove did not resolve")
	}
	done = false
	o.nodes[6].Lookup(key, func(r LookupResult, e error) { got = r; done = true })
	o.eng.RunFor(3 * time.Second)
	if !done || len(got.Resources) != 0 {
		t.Fatalf("resource survived removal: %+v", got.Resources)
	}
}

func TestResourceTTLExpiry(t *testing.T) {
	o := buildOverlay(t, 4, 4)
	key := Point{0.3, 0.3}
	done := false
	o.nodes[1].Put(Resource{ID: "r", Key: key, Value: MarshalValue(1)}, 10*time.Second, func(error) { done = true })
	o.eng.RunFor(3 * time.Second)
	if !done {
		t.Fatal("put did not resolve")
	}
	var got LookupResult
	done = false
	o.nodes[2].Lookup(key, func(r LookupResult, e error) { got = r; done = true })
	o.eng.RunFor(2 * time.Second)
	if !done || len(got.Resources) != 1 {
		t.Fatalf("resource missing before expiry: %+v", got.Resources)
	}
	o.eng.RunFor(10 * time.Second) // past TTL
	done = false
	o.nodes[2].Lookup(key, func(r LookupResult, e error) { got = r; done = true })
	o.eng.RunFor(2 * time.Second)
	if !done || len(got.Resources) != 0 {
		t.Fatalf("resource survived TTL: %+v", got.Resources)
	}
}

func TestGracefulLeave(t *testing.T) {
	o := buildOverlay(t, 8, 5)
	// Park a resource in node 3's zone first.
	victim := o.nodes[3]
	key := victim.zones[0].Center()
	done := false
	o.nodes[0].Put(Resource{ID: "keepme", Key: key, Value: MarshalValue("v")}, 0, func(error) { done = true })
	o.eng.RunFor(3 * time.Second)
	if !done {
		t.Fatal("put did not resolve")
	}

	victim.Leave()
	o.eng.RunFor(12 * time.Second) // let hellos settle

	if math.Abs(o.totalVolume()-1) > 1e-12 {
		t.Fatalf("volume sum after leave %v", o.totalVolume())
	}
	// The resource must still be findable, now at the successor.
	var got LookupResult
	done = false
	o.nodes[1].Lookup(key, func(r LookupResult, e error) { got = r; done = true })
	o.eng.RunFor(3 * time.Second)
	if !done || len(got.Resources) != 1 || got.Resources[0].ID != "keepme" {
		t.Fatalf("resource lost after graceful leave: %+v", got.Resources)
	}
}

func TestCrashTakeover(t *testing.T) {
	o := buildOverlay(t, 8, 6)
	victim := o.nodes[4]
	key := victim.zones[0].Center()
	// Simulated crash: the node stops responding entirely.
	victim.active = false
	if victim.hbEv != nil {
		o.eng.Cancel(victim.hbEv)
	}
	victim.sock.Close()

	// Wait for failure detection (FailAfter × heartbeat + slack).
	o.eng.RunFor(60 * time.Second)

	if math.Abs(o.totalVolume()-1) > 1e-9 {
		t.Fatalf("volume sum after crash takeover = %v", o.totalVolume())
	}
	// Routing to the dead zone must succeed again.
	var err error
	done := false
	o.nodes[0].Lookup(key, func(r LookupResult, e error) { err = e; done = true })
	o.eng.RunFor(5 * time.Second)
	if !done || err != nil {
		t.Fatalf("lookup into recovered zone: done=%v err=%v", done, err)
	}
}

func TestJoinSyncAndLookupSync(t *testing.T) {
	eng := sim.NewEngine(7)
	nw := netsim.New(eng)
	site := nw.NewSite("dc")
	h1 := nw.NewPublicHost("a", site, netsim.MustParseIP("10.0.0.1"), 0, 0)
	h2 := nw.NewPublicHost("b", site, netsim.MustParseIP("10.0.0.2"), 0, 0)
	n1, _ := NewNode(h1, 9000, Config{Dims: 2})
	n2, _ := NewNode(h2, 9000, Config{Dims: 2})
	n1.Bootstrap()
	var joinErr, putErr, lookErr error
	var res LookupResult
	eng.Spawn("driver", func(p *sim.Proc) {
		joinErr = n2.JoinSync(p, n1.Addr())
		putErr = n2.PutSync(p, Resource{ID: "x", Key: Point{0.5, 0.5}, Value: MarshalValue(9)}, 0)
		res, lookErr = n1.LookupSync(p, Point{0.5, 0.5})
	})
	eng.RunFor(30 * time.Second)
	if joinErr != nil || putErr != nil || lookErr != nil {
		t.Fatalf("sync ops: %v %v %v", joinErr, putErr, lookErr)
	}
	if len(res.Resources) != 1 || res.Resources[0].ID != "x" {
		t.Fatalf("lookup = %+v", res.Resources)
	}
}

func TestLookupTimeoutWhenUnreachable(t *testing.T) {
	eng := sim.NewEngine(8)
	nw := netsim.New(eng)
	site := nw.NewSite("dc")
	h1 := nw.NewPublicHost("a", site, netsim.MustParseIP("10.0.0.1"), 0, 0)
	n1, _ := NewNode(h1, 9000, Config{Dims: 2, RPCTimeout: time.Second})
	// Not bootstrapped: inactive node must fail the RPC.
	var err error
	done := false
	n1.Lookup(Point{0.5, 0.5}, func(r LookupResult, e error) { err = e; done = true })
	eng.RunFor(5 * time.Second)
	if !done || err == nil {
		t.Fatalf("lookup on inactive node: done=%v err=%v", done, err)
	}
}

func TestDeterministicOverlay(t *testing.T) {
	sig := func() string {
		o := buildOverlay(t, 8, 42)
		s := ""
		for _, n := range o.nodes {
			for _, z := range n.zones {
				s += z.String() + ";"
			}
			s += "|"
		}
		return s
	}
	if sig() != sig() {
		t.Fatal("overlay construction not deterministic")
	}
}
