package can

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullZone(t *testing.T) {
	z := FullZone(3)
	if z.Volume() != 1 {
		t.Fatalf("full zone volume = %v", z.Volume())
	}
	if !z.Contains(Point{0, 0.5, 0.999}) {
		t.Fatal("full zone must contain interior points")
	}
	if z.Contains(Point{0, 1, 0}) {
		t.Fatal("upper bound is exclusive")
	}
}

func TestSplitHalvesVolume(t *testing.T) {
	z := FullZone(2)
	lo, hi := z.Split(0)
	if lo.Volume() != 0.5 || hi.Volume() != 0.5 {
		t.Fatalf("split volumes %v, %v", lo.Volume(), hi.Volume())
	}
	if !lo.Contains(Point{0.25, 0.5}) || !hi.Contains(Point{0.75, 0.5}) {
		t.Fatal("split halves contain wrong points")
	}
	if lo.Contains(Point{0.5, 0.5}) {
		t.Fatal("boundary belongs to the upper half")
	}
	if !hi.Contains(Point{0.5, 0.5}) {
		t.Fatal("upper half must contain the boundary")
	}
}

func TestMergeInverseOfSplit(t *testing.T) {
	z := Zone{Lo: Point{0.25, 0.5}, Hi: Point{0.5, 0.75}}
	lo, hi := z.Split(1)
	m, ok := lo.MergeableWith(hi)
	if !ok {
		t.Fatal("split halves must be mergeable")
	}
	if m.Volume() != z.Volume() || !m.Contains(z.Center()) {
		t.Fatalf("merge produced %v, want %v", m, z)
	}
	// Non-abutting zones must not merge.
	far := Zone{Lo: Point{0.75, 0.5}, Hi: Point{1, 0.75}}
	if _, ok := lo.MergeableWith(far); ok {
		t.Fatal("disjoint zones merged")
	}
}

func TestAdjacent(t *testing.T) {
	left := Zone{Lo: Point{0, 0}, Hi: Point{0.5, 1}}
	right := Zone{Lo: Point{0.5, 0}, Hi: Point{1, 1}}
	if !Adjacent(left, right) {
		t.Fatal("abutting halves are neighbors")
	}
	// Torus wrap: [0,0.25) and [0.75,1) abut across the seam.
	a := Zone{Lo: Point{0, 0}, Hi: Point{0.25, 1}}
	b := Zone{Lo: Point{0.75, 0}, Hi: Point{1, 1}}
	if !Adjacent(a, b) {
		t.Fatal("zones must wrap around the torus seam")
	}
	// Corner contact (abut in two dims) is not adjacency.
	c := Zone{Lo: Point{0, 0}, Hi: Point{0.5, 0.5}}
	d := Zone{Lo: Point{0.5, 0.5}, Hi: Point{1, 1}}
	if Adjacent(c, d) {
		t.Fatal("corner contact misclassified as adjacency")
	}
}

func TestDistToPoint(t *testing.T) {
	z := Zone{Lo: Point{0.25, 0.25}, Hi: Point{0.5, 0.5}}
	if d := z.DistToPoint(Point{0.3, 0.3}); d != 0 {
		t.Fatalf("interior point distance %v", d)
	}
	if d := z.DistToPoint(Point{0.75, 0.3}); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("distance %v, want 0.25", d)
	}
	// Wraparound: point at 0.95 is 0.05+0.25=0.30 from Lo across the seam
	// but only 1-0.95+0.25... the near edge is Lo=0.25 at distance
	// min(|0.95-0.25|, 1-0.7)=0.3; Hi=0.5 at min(0.45, 0.55)=0.45.
	if d := z.DistToPoint(Point{0.95, 0.3}); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("wrap distance %v, want 0.30", d)
	}
}

func TestTorusDistSymmetryAndWrap(t *testing.T) {
	if d := Dist(Point{0.1, 0.1}, Point{0.9, 0.1}); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("wrap distance %v, want 0.2", d)
	}
	f := func(ax, ay, bx, by float64) bool {
		norm := func(x float64) float64 { x = math.Mod(math.Abs(x), 1); return x }
		a := Point{norm(ax), norm(ay)}
		b := Point{norm(bx), norm(by)}
		return math.Abs(Dist(a, b)-Dist(b, a)) < 1e-12 && Dist(a, b) <= math.Sqrt(0.5)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated random splits always partition the space: volumes
// sum to 1 and random points are contained in exactly one zone.
func TestPropertySplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		zones := []Zone{FullZone(2)}
		for i := 0; i < 40; i++ {
			k := rng.Intn(len(zones))
			lo, hi := zones[k].Split(zones[k].LongestDim())
			zones[k] = lo
			zones = append(zones, hi)
		}
		var vol float64
		for _, z := range zones {
			vol += z.Volume()
		}
		if math.Abs(vol-1) > 1e-12 {
			t.Fatalf("volumes sum to %v", vol)
		}
		for probe := 0; probe < 100; probe++ {
			p := Point{rng.Float64(), rng.Float64()}
			owners := 0
			for _, z := range zones {
				if z.Contains(p) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("point %v owned by %d zones", p, owners)
			}
		}
	}
}

// Property: after any split, the two halves are adjacent and mergeable.
func TestPropertySplitAdjacentMergeable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	zones := []Zone{FullZone(3)}
	for i := 0; i < 100; i++ {
		k := rng.Intn(len(zones))
		dim := rng.Intn(3)
		lo, hi := zones[k].Split(dim)
		if !Adjacent(lo, hi) {
			t.Fatalf("split halves of %v not adjacent", zones[k])
		}
		if m, ok := lo.MergeableWith(hi); !ok || math.Abs(m.Volume()-zones[k].Volume()) > 1e-15 {
			t.Fatalf("split halves of %v not mergeable", zones[k])
		}
		zones[k] = lo
		zones = append(zones, hi)
	}
}

func TestZoneString(t *testing.T) {
	z := Zone{Lo: Point{0, 0.5}, Hi: Point{0.5, 1}}
	if z.String() == "" {
		t.Fatal("empty String()")
	}
}
