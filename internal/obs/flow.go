// Flow telemetry export leg: the record shape one closed (or live)
// data-plane flow exports, a bounded in-memory flow log the core's
// eviction sweep appends to, and a space-bounded top-K talkers sketch
// (count-min + min-heap) so "who is hot" stays O(K) to answer at
// 10k-host scale. The hot-path flow *accounting* lives in
// internal/core/flow.go; this file is everything downstream of it.
package obs

import (
	"container/heap"
	"fmt"
	"sync"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// FlowDropReason classifies why the data plane dropped a flow's frame.
// The first two fire inside the WAVNet host (sender-side metering and
// the receiver-side isolation check); the rest are wire fates reported
// back by the substrate's drop hook.
type FlowDropReason uint8

// Flow drop reasons.
const (
	FlowDropQuota     FlowDropReason = iota // sender-side tenant metering
	FlowDropCrossVNI                        // receiver-side isolation check
	FlowDropNoRoute                         // substrate had no route
	FlowDropQueue                           // access-link queue overflow
	FlowDropWANLoss                         // random WAN loss
	FlowDropPartition                       // severed WAN path
	FlowDropReasons                         // count; keep last
)

// String names the reason the way flow series are labeled.
func (r FlowDropReason) String() string {
	switch r {
	case FlowDropQuota:
		return "quota"
	case FlowDropCrossVNI:
		return "cross_vni"
	case FlowDropNoRoute:
		return "no_route"
	case FlowDropQueue:
		return "queue_overflow"
	case FlowDropWANLoss:
		return "wan_loss"
	case FlowDropPartition:
		return "partition"
	default:
		return fmt.Sprintf("reason%d", uint8(r))
	}
}

// FlowRecord is one flow-log record: the 6-tuple key, what the flow
// moved, why frames of it died, and its first/last-seen sim timestamps.
// Host is the WAVNet host that accounted the flow (sender for egress
// and drop records, receiver for ingress); Tenant/Net are filled by the
// scenario aggregation, which knows the VNI→tenant mapping.
type FlowRecord struct {
	Host   string
	Tenant string
	Net    string

	VNI          uint32
	Src, Dst     ether.MAC
	SrcIP, DstIP netsim.IP
	// Proto is the IPv4 protocol number for IP frames (1=ICMP, 6=TCP,
	// 17=UDP) and the EtherType for everything else (values ≥ 0x0600
	// never collide with protocol numbers).
	Proto uint16

	Bytes, Frames uint64
	Drops         [FlowDropReasons]uint64

	First, Last sim.Time
}

// DropTotal sums the record's drops across reasons.
func (r *FlowRecord) DropTotal() uint64 {
	var n uint64
	for _, d := range r.Drops {
		n += d
	}
	return n
}

// Key renders the flow's identity as a stable string — the top-K
// sketch's key and the flow log's human-readable handle.
func (r *FlowRecord) Key() string {
	return fmt.Sprintf("vni%d %s>%s %s>%s proto%d",
		r.VNI, r.Src, r.Dst, r.SrcIP, r.DstIP, r.Proto)
}

// String renders one flow-log line.
func (r *FlowRecord) String() string {
	return fmt.Sprintf("%v..%v host=%s %s bytes=%d frames=%d drops=%d",
		r.First, r.Last, r.Host, r.Key(), r.Bytes, r.Frames, r.DropTotal())
}

// FlowLog is a bounded ring of flow records. The core's eviction sweep
// appends a record when a flow idles out of the table; scenario worlds
// share one log across every host. Nil-safe and safe for concurrent
// use (experiments read while the simulation appends).
type FlowLog struct {
	mu      sync.Mutex
	recs    []FlowRecord
	next    int
	wrapped bool
	limit   int
	total   uint64
}

// DefaultFlowLogLimit bounds the log when NewFlowLog is given no limit.
const DefaultFlowLogLimit = 4096

// NewFlowLog creates a flow log holding at most limit records (<=0 uses
// DefaultFlowLogLimit); the oldest records are overwritten past it.
func NewFlowLog(limit int) *FlowLog {
	if limit <= 0 {
		limit = DefaultFlowLogLimit
	}
	return &FlowLog{limit: limit}
}

// Append records one closed flow (nil-safe).
func (l *FlowLog) Append(r FlowRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.recs) < l.limit {
		l.recs = append(l.recs, r)
		return
	}
	l.recs[l.next] = r
	l.next = (l.next + 1) % l.limit
	l.wrapped = true
}

// Records returns the retained records, oldest first.
func (l *FlowLog) Records() []FlowRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]FlowRecord(nil), l.recs...)
	}
	out := make([]FlowRecord, 0, len(l.recs))
	out = append(out, l.recs[l.next:]...)
	out = append(out, l.recs[:l.next]...)
	return out
}

// Len reports the retained record count.
func (l *FlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Total reports every record ever appended (including overwritten ones).
func (l *FlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ---- top-K talkers sketch ----

// Talker is one heavy-hitter estimate.
type Talker struct {
	Key   string
	Bytes uint64
}

// Count-min sketch shape: 4 hash rows of 1024 counters bound the
// overestimate to ~N/1024 per row with 4 independent chances, which is
// plenty to rank heavy hitters when K ≪ 1024.
const (
	topkRows = 4
	topkCols = 1024 // power of two
)

// TopK tracks the heaviest flows by byte weight in bounded space: a
// count-min sketch estimates every key's total without storing keys,
// and a K-entry min-heap retains the current heavy hitters. Offer is
// O(rows + log K); Top is O(K log K). Not concurrency-safe — callers
// build sketches from a consistent scrape.
type TopK struct {
	k     int
	cm    [topkRows][topkCols]uint64
	heap  talkerHeap
	index map[string]int // key → heap position
}

// NewTopK returns a sketch retaining the k heaviest keys (k<=0 → 10).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = 10
	}
	return &TopK{k: k, index: make(map[string]int, k+1)}
}

// Offer adds weight bytes under key and updates the heavy-hitter heap.
func (t *TopK) Offer(key string, bytes uint64) {
	if bytes == 0 {
		return
	}
	est := ^uint64(0)
	h := fnv64(key)
	for row := 0; row < topkRows; row++ {
		// Derive per-row hashes from one FNV pass (h, then mixes of it):
		// cheap and independent enough for heavy-hitter ranking.
		col := (h >> (row * 13)) & (topkCols - 1)
		t.cm[row][col] += bytes
		if v := t.cm[row][col]; v < est {
			est = v
		}
	}
	if pos, ok := t.index[key]; ok {
		t.heap.items[pos].Bytes = est
		heap.Fix(&t.heap, pos)
		return
	}
	if t.heap.Len() < t.k {
		heap.Push(&t.heap, Talker{Key: key, Bytes: est})
		t.reindex()
		return
	}
	if est <= t.heap.items[0].Bytes {
		return
	}
	delete(t.index, t.heap.items[0].Key)
	t.heap.items[0] = Talker{Key: key, Bytes: est}
	heap.Fix(&t.heap, 0)
	t.reindex()
}

// reindex rebuilds the key→position map after heap membership changed.
// The heap holds at most K entries, so this stays O(K).
func (t *TopK) reindex() {
	for i, it := range t.heap.items {
		t.index[it.Key] = i
	}
}

// Top returns the retained talkers, heaviest first.
func (t *TopK) Top() []Talker {
	out := append([]Talker(nil), t.heap.items...)
	// Heaviest first; ties break by key for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j-1], out[j]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Talker) bool {
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Key > b.Key
}

// Estimate reports the sketch's byte estimate for one key (an
// overestimate by construction, tight for heavy hitters).
func (t *TopK) Estimate(key string) uint64 {
	est := ^uint64(0)
	h := fnv64(key)
	for row := 0; row < topkRows; row++ {
		col := (h >> (row * 13)) & (topkCols - 1)
		if v := t.cm[row][col]; v < est {
			est = v
		}
	}
	return est
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// talkerHeap is a min-heap by estimated bytes (ties by key, so the
// eviction order is deterministic).
type talkerHeap struct{ items []Talker }

func (h *talkerHeap) Len() int           { return len(h.items) }
func (h *talkerHeap) Less(i, j int) bool { return less(h.items[i], h.items[j]) }
func (h *talkerHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *talkerHeap) Push(x any)         { h.items = append(h.items, x.(Talker)) }
func (h *talkerHeap) Pop() any {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}
