package obs

import (
	"sort"
	"strings"
	"sync"

	"wavnet/internal/sim"
)

// AlertRule is one declarative alerting condition: a metric selector, a
// threshold, and how long the breach must hold before the alert fires —
// `metric > threshold for N sim-seconds`, evaluated against each
// registry snapshot the world scrapes.
type AlertRule struct {
	// Name identifies the alert; its span is named "alert.<Name>".
	Name string
	// Metric selects series by name; one '*' matches any run of
	// characters (e.g. "service.*" covers every service counter,
	// "service.*.withdrawals" just the withdrawal counters).
	Metric string
	// Labels narrows the match: empty fields are wildcards, non-empty
	// fields must equal the series' label.
	Labels Labels
	// Rate evaluates counters as per-second rates over the interval
	// since the previous Eval instead of cumulative totals. Rate rules
	// need two snapshots, so they never fire on the first Eval.
	Rate bool
	// Quantile picks the histogram statistic to compare (0 < q <= 1);
	// zero reads the observed max. Ignored for counters and gauges.
	Quantile float64
	// Threshold is the exclusive bound: the alert condition is
	// value > Threshold.
	Threshold float64
	// For is how long the condition must hold continuously before the
	// alert transitions from pending to firing (0 fires immediately).
	For sim.Duration
}

// alertState carries one rule's lifecycle between Evals.
type alertState struct {
	rule         AlertRule
	pending      bool
	pendingSince sim.Time
	firing       bool
	span         *Span
	value        float64
	fired        uint64
	resolved     uint64
}

// AlertEngine evaluates a fixed rule set against successive registry
// snapshots, driving each rule through Inactive → Pending → Firing →
// Resolved and recording the firing window as a span ("alert.<name>")
// on the world trace. Safe for concurrent use; snapshots are expected
// in sim-time order.
type AlertEngine struct {
	mu     sync.Mutex
	trace  *Trace
	states []*alertState
	prev   *Registry
	prevAt sim.Time
	evals  uint64
}

// NewAlertEngine builds an engine over a trace (nil disables spans but
// keeps the lifecycle and counters) and a rule catalogue.
func NewAlertEngine(trace *Trace, rules ...AlertRule) *AlertEngine {
	e := &AlertEngine{trace: trace}
	for _, r := range rules {
		e.states = append(e.states, &alertState{rule: r})
	}
	return e
}

// AddRule appends a rule to a running engine (starts Inactive).
func (e *AlertEngine) AddRule(r AlertRule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.states = append(e.states, &alertState{rule: r})
}

// Rules returns the catalogue in registration order.
func (e *AlertEngine) Rules() []AlertRule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertRule, len(e.states))
	for i, st := range e.states {
		out[i] = st.rule
	}
	return out
}

// matchMetric applies the rule's name selector: an exact name, or a
// pattern whose single '*' matches any run of characters.
func matchMetric(pattern, name string) bool {
	i := strings.IndexByte(pattern, '*')
	if i < 0 {
		return pattern == name
	}
	prefix, suffix := pattern[:i], pattern[i+1:]
	return len(name) >= len(prefix)+len(suffix) &&
		strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix)
}

// matchLabels treats empty rule fields as wildcards.
func matchLabels(rule, have Labels) bool {
	return (rule.Tenant == "" || rule.Tenant == have.Tenant) &&
		(rule.Net == "" || rule.Net == have.Net) &&
		(rule.Broker == "" || rule.Broker == have.Broker) &&
		(rule.Host == "" || rule.Host == have.Host)
}

// Eval scores every rule against the snapshot taken at now and advances
// lifecycles. The engine retains the snapshot as the baseline for the
// next Eval's rate rules, so callers must hand over a registry they
// will not keep mutating (World.Scrape builds a fresh one per call).
func (e *AlertEngine) Eval(now sim.Time, snap *Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var view *RateView
	if e.evals > 0 {
		view = snap.Since(e.prev, now.Sub(e.prevAt))
	}
	for _, st := range e.states {
		value, ok := e.score(st.rule, snap, view)
		st.value = value
		e.advance(st, now, value, ok && value > st.rule.Threshold)
	}
	e.prev, e.prevAt = snap, now
	e.evals++
}

// score computes one rule's value over the snapshot: counters sum
// across matched series (as rates over the interval when Rate is set),
// gauges sum, histograms take the worst (largest) quantile. ok is false
// when the rule cannot be evaluated yet (rate rule on the first Eval).
func (e *AlertEngine) score(rule AlertRule, snap *Registry, view *RateView) (float64, bool) {
	if rule.Rate && view == nil {
		return 0, false
	}
	src := snap
	if rule.Rate {
		src = view.Delta
	}
	var sum float64
	var worst float64
	for _, s := range src.sorted() {
		if !matchMetric(rule.Metric, s.key.name) || !matchLabels(rule.Labels, s.key.labels) {
			continue
		}
		switch s.kind {
		case KindCounter:
			sum += float64(s.counter.Value())
		case KindGauge:
			sum += s.gauge.Value()
		default:
			var v float64
			if rule.Quantile > 0 {
				v = s.hist.Quantile(rule.Quantile)
			} else {
				v = s.hist.Max()
			}
			if v > worst {
				worst = v
			}
		}
	}
	if worst > 0 {
		return worst, true
	}
	if rule.Rate {
		sum /= view.seconds()
	}
	return sum, true
}

// advance drives one rule's state machine for this Eval.
func (e *AlertEngine) advance(st *alertState, now sim.Time, value float64, breach bool) {
	if !breach {
		st.pending = false
		if st.firing {
			st.firing = false
			st.resolved++
			st.span.Event("resolved value=%.4g threshold=%.4g", value, st.rule.Threshold)
			st.span.End()
			st.span = nil
		}
		return
	}
	if st.firing {
		return
	}
	if !st.pending {
		st.pending = true
		st.pendingSince = now
	}
	if now.Sub(st.pendingSince) < st.rule.For {
		return
	}
	st.pending = false
	st.firing = true
	st.fired++
	st.span = e.trace.Start(nil, "alert."+st.rule.Name, st.rule.Labels)
	st.span.Event("firing value=%.4g threshold=%.4g for=%v held=%v",
		value, st.rule.Threshold, st.rule.For, now.Sub(st.pendingSince))
}

// Firing returns the names of currently firing alerts, sorted.
func (e *AlertEngine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.states {
		if st.firing {
			out = append(out, st.rule.Name)
		}
	}
	sort.Strings(out)
	return out
}

// IsFiring reports whether the named alert is currently firing.
func (e *AlertEngine) IsFiring(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.rule.Name == name && st.firing {
			return true
		}
	}
	return false
}

// Fired reports how many times the named alert transitioned to firing.
func (e *AlertEngine) Fired(name string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.rule.Name == name {
			return st.fired
		}
	}
	return 0
}

// Resolved reports how many times the named alert resolved.
func (e *AlertEngine) Resolved(name string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.rule.Name == name {
			return st.resolved
		}
	}
	return 0
}

// Value reports the named rule's value at the last Eval.
func (e *AlertEngine) Value(name string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.rule.Name == name {
			return st.value
		}
	}
	return 0
}

// ScrapeInto exports the engine's own state: an alerts_firing gauge and
// per-rule fired/resolved counters plus a 0/1 firing gauge, named
// "alert.<rule>.{fired,resolved,firing}".
func (e *AlertEngine) ScrapeInto(r *Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var firing int
	for _, st := range e.states {
		if st.firing {
			firing++
		}
		r.Counter("alert."+st.rule.Name+".fired", Labels{}).Add(st.fired)
		r.Counter("alert."+st.rule.Name+".resolved", Labels{}).Add(st.resolved)
		g := 0.0
		if st.firing {
			g = 1
		}
		r.Gauge("alert."+st.rule.Name+".firing", Labels{}).Set(g)
	}
	r.Gauge("alerts_firing", Labels{}).Set(float64(firing))
}
