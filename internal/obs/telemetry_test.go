package obs

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"wavnet/internal/sim"
)

// TestHistogramQuantileEdges pins the geometric-interpolation corner
// cases: an empty histogram, a single-bucket point mass, and values
// past the last doubling bucket (which clamp into it).
func TestHistogramQuantileEdges(t *testing.T) {
	empty := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, v)
		}
	}
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatalf("empty mean/max = %g/%g, want 0/0", empty.Mean(), empty.Max())
	}

	// Single bucket: everything lands in (128, 256]; interpolation must
	// stay clamped to the observed [min, max], and q<=0 / q>=1 return the
	// extrema exactly.
	single := NewHistogram()
	for i := 0; i < 100; i++ {
		single.Observe(200)
	}
	single.Observe(130)
	single.Observe(250)
	if got := single.Quantile(-1); got != 130 {
		t.Fatalf("Quantile(-1) = %g, want min 130", got)
	}
	if got := single.Quantile(2); got != 250 {
		t.Fatalf("Quantile(2) = %g, want max 250", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		v := single.Quantile(q)
		if v < 130 || v > 250 {
			t.Fatalf("Quantile(%g) = %g outside observed [130, 250]", q, v)
		}
	}

	// Max-bucket overflow: values beyond 2^63 clamp into the last bucket
	// and quantiles still clamp to the observed max, not the bucket's
	// upper bound.
	huge := NewHistogram()
	big := math.Exp2(70)
	huge.Observe(big)
	huge.Observe(big * 2)
	if got := huge.Quantile(0.99); got > big*2 {
		t.Fatalf("overflow Quantile(0.99) = %g exceeds observed max %g", got, big*2)
	}
	if got := huge.Max(); got != big*2 {
		t.Fatalf("overflow Max = %g, want %g", got, big*2)
	}
	// The sub-1 bucket: zeros and negatives all land in bucket 0 and
	// interpolate inside [0, 1] clamped to the observations.
	low := NewHistogram()
	low.Observe(-5) // clamps to 0
	low.Observe(0.5)
	low.Observe(1)
	if v := low.Quantile(0.5); v < 0 || v > 1 {
		t.Fatalf("bucket-0 Quantile(0.5) = %g outside [0, 1]", v)
	}
}

// TestRegistryMergeCollisions pins what Merge does when both registries
// carry the same (name, labels) series: counters and gauges add,
// histograms merge bucket-wise, and distinct label sets stay distinct.
func TestRegistryMergeCollisions(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	la := Labels{Tenant: "t0", Host: "pc00"}
	lb := Labels{Tenant: "t0", Host: "pc01"}

	a.Counter("frames", la).Add(10)
	b.Counter("frames", la).Add(5) // collides with a's series
	b.Counter("frames", lb).Add(7) // distinct labels, must not fold in

	a.Gauge("active", la).Set(3)
	b.Gauge("active", la).Set(4)

	a.Histogram("lat", la).Observe(10)
	b.Histogram("lat", la).Observe(1000)

	a.Merge(b)
	if v, _ := a.CounterValue("frames", la); v != 15 {
		t.Fatalf("merged collided counter = %d, want 15", v)
	}
	if v, _ := a.CounterValue("frames", lb); v != 7 {
		t.Fatalf("merged distinct-label counter = %d, want 7", v)
	}
	if a.Total("frames") != 22 {
		t.Fatalf("Total(frames) = %d, want 22", a.Total("frames"))
	}
	if v, _ := a.GaugeValue("active", la); v != 7 {
		t.Fatalf("merged gauge = %g, want 7 (gauges add under Merge)", v)
	}
	h := a.Histogram("lat", la)
	if h.Count() != 2 || h.Max() != 1000 {
		t.Fatalf("merged histogram count=%d max=%g, want 2/1000", h.Count(), h.Max())
	}

	// A kind collision (counter vs gauge under one name+labels) is a
	// programming error and must panic rather than silently misread.
	defer func() {
		if recover() == nil {
			t.Fatalf("kind-mismatch Merge did not panic")
		}
	}()
	c := NewRegistry()
	c.Gauge("frames", la).Set(1)
	a.Merge(c)
}

// TestAddHistogramFolds covers the external-histogram fold used by
// World.Scrape for per-host batch-size distributions.
func TestAddHistogramFolds(t *testing.T) {
	r := NewRegistry()
	ext := NewHistogram()
	ext.Observe(8)
	ext.Observe(16)
	r.AddHistogram("batch_frames", Labels{Host: "pc00"}, ext)
	r.AddHistogram("batch_frames", Labels{Host: "pc00"}, nil) // nil-safe no-op
	h := r.Histogram("batch_frames", Labels{Host: "pc00"})
	if h.Count() != 2 || h.Max() != 16 {
		t.Fatalf("folded histogram count=%d max=%g, want 2/16", h.Count(), h.Max())
	}
	// The source histogram stays untouched and can keep observing.
	ext.Observe(32)
	if h.Count() != 2 {
		t.Fatalf("registry histogram tracked the source after the fold")
	}
}

// TestSinceRates covers RateView: per-second rates, the restart clamp,
// and the zero-interval floor.
func TestSinceRates(t *testing.T) {
	l := Labels{Broker: "b0"}
	prev, cur := NewRegistry(), NewRegistry()
	prev.Counter("pulses", l).Add(100)
	cur.Counter("pulses", l).Add(150)
	cur.Counter("joins", l).Add(10) // absent in prev: whole value is new

	view := cur.Since(prev, 10*sim.Second)
	if got := view.Rate("pulses", l); got != 5 {
		t.Fatalf("Rate(pulses) = %g, want 5/s", got)
	}
	if got := view.RateTotal("joins"); got != 1 {
		t.Fatalf("RateTotal(joins) = %g, want 1/s", got)
	}
	if got := view.Rate("missing", l); got != 0 {
		t.Fatalf("Rate(missing) = %g, want 0", got)
	}

	// Restart: current below previous clamps the delta (and rate) to 0.
	reset := NewRegistry()
	reset.Counter("pulses", l).Add(3)
	if got := reset.Since(prev, sim.Second).Rate("pulses", l); got != 0 {
		t.Fatalf("post-restart Rate = %g, want 0 (clamped)", got)
	}

	// Nil prev treats everything as new; zero interval floors at a
	// nanosecond instead of dividing by zero.
	if got := cur.Since(nil, 0).Rate("pulses", l); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("zero-interval rate = %g, want finite", got)
	}
}

// TestAlertEngineLifecycle drives a For-gated threshold rule through
// pending, firing, and resolved, checking the span and counters.
func TestAlertEngineLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	trace := NewTrace(eng, 0)
	e := NewAlertEngine(trace, AlertRule{
		Name: "hot", Metric: "temp", Threshold: 50, For: 2 * sim.Second,
	})
	at := func(s int) sim.Time { return sim.Time(0).Add(sim.Duration(s) * sim.Second) }
	snap := func(v float64) *Registry {
		r := NewRegistry()
		r.Gauge("temp", Labels{}).Set(v)
		return r
	}

	e.Eval(at(0), snap(10)) // calm
	if e.IsFiring("hot") || len(e.Firing()) != 0 {
		t.Fatalf("alert firing while calm")
	}
	e.Eval(at(1), snap(90)) // breach starts: pending, not yet firing
	if e.IsFiring("hot") {
		t.Fatalf("alert fired before For held")
	}
	e.Eval(at(2), snap(90)) // held 1s of 2s
	if e.IsFiring("hot") {
		t.Fatalf("alert fired at 1s of a 2s For")
	}
	e.Eval(at(3), snap(90)) // held 2s: fires
	if !e.IsFiring("hot") || e.Fired("hot") != 1 {
		t.Fatalf("alert not firing after For held (fired=%d)", e.Fired("hot"))
	}
	if e.Value("hot") != 90 {
		t.Fatalf("Value = %g, want 90", e.Value("hot"))
	}
	e.Eval(at(4), snap(90)) // still firing, no re-fire
	if e.Fired("hot") != 1 {
		t.Fatalf("steady breach re-fired (fired=%d)", e.Fired("hot"))
	}
	e.Eval(at(5), snap(10)) // recovers
	if e.IsFiring("hot") || e.Resolved("hot") != 1 {
		t.Fatalf("alert not resolved (resolved=%d)", e.Resolved("hot"))
	}

	spans := trace.Find("alert.hot")
	if len(spans) != 1 || !spans[0].Ended() {
		t.Fatalf("want 1 ended alert span, got %d", len(spans))
	}
	if !spans[0].HasEvent("firing") || !spans[0].HasEvent("resolved") {
		t.Fatalf("alert span missing lifecycle events: %v", spans[0].Events())
	}

	// A breach that recovers before For expires never fires.
	e.Eval(at(6), snap(90))
	e.Eval(at(7), snap(10))
	if e.Fired("hot") != 1 {
		t.Fatalf("sub-For blip fired the alert")
	}

	// ScrapeInto exports the lifecycle counters.
	r := NewRegistry()
	e.ScrapeInto(r)
	if v, _ := r.CounterValue("alert.hot.fired", Labels{}); v != 1 {
		t.Fatalf("exported fired = %d, want 1", v)
	}
	if v, _ := r.GaugeValue("alerts_firing", Labels{}); v != 0 {
		t.Fatalf("exported alerts_firing = %g, want 0", v)
	}
}

// TestAlertEngineRateRule checks that rate rules score per-second
// deltas and never fire on the first Eval.
func TestAlertEngineRateRule(t *testing.T) {
	e := NewAlertEngine(nil, AlertRule{
		Name: "drops", Metric: "flow_drops.partition", Rate: true, Threshold: 1,
	})
	at := func(s int) sim.Time { return sim.Time(0).Add(sim.Duration(s) * sim.Second) }
	snap := func(total uint64) *Registry {
		r := NewRegistry()
		r.Counter("flow_drops.partition", Labels{Host: "pc00"}).Add(total)
		return r
	}
	e.Eval(at(0), snap(1000)) // huge total, but rate rules need a baseline
	if e.IsFiring("drops") {
		t.Fatalf("rate rule fired on the first Eval")
	}
	e.Eval(at(10), snap(1000)) // 0/s
	if e.IsFiring("drops") {
		t.Fatalf("rate rule fired at 0/s")
	}
	e.Eval(at(20), snap(1100)) // 10/s > 1
	if !e.IsFiring("drops") || e.Value("drops") != 10 {
		t.Fatalf("rate rule not firing at 10/s (value=%g)", e.Value("drops"))
	}
	e.Eval(at(30), snap(1100)) // back to 0/s: resolves (nil trace is fine)
	if e.IsFiring("drops") || e.Resolved("drops") != 1 {
		t.Fatalf("rate rule did not resolve")
	}
}

// TestMatchMetricWildcard pins the one-star selector grammar.
func TestMatchMetricWildcard(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"pulses", "pulses", true},
		{"pulses", "pulses_out", false},
		{"service.*", "service.vip.withdrawals", true},
		{"service.*.withdrawals", "service.vip.withdrawals", true},
		{"service.*.withdrawals", "service.vip.failovers", false},
		{"service.*.withdrawals", "service.withdrawals", false}, // overlap guard
		{"*", "anything", true},
		{"*.drops", "flow.drops", true},
	}
	for _, c := range cases {
		if got := matchMetric(c.pattern, c.name); got != c.want {
			t.Fatalf("matchMetric(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

// TestFlowLogRing checks the bounded ring: the newest records survive,
// Total keeps counting, and a nil log is a no-op.
func TestFlowLogRing(t *testing.T) {
	l := NewFlowLog(4)
	for i := 0; i < 10; i++ {
		l.Append(FlowRecord{VNI: uint32(i), Bytes: uint64(i)})
	}
	if l.Len() != 4 || l.Total() != 10 {
		t.Fatalf("ring len=%d total=%d, want 4/10", l.Len(), l.Total())
	}
	recs := l.Records()
	for i, r := range recs {
		if want := uint32(6 + i); r.VNI != want {
			t.Fatalf("ring kept record vni=%d at %d, want %d (oldest evicted, order kept)", r.VNI, i, want)
		}
	}
	var nilLog *FlowLog
	nilLog.Append(FlowRecord{}) // must not panic
	if nilLog.Len() != 0 || nilLog.Records() != nil || nilLog.Total() != 0 {
		t.Fatalf("nil FlowLog not inert")
	}
}

// TestTopKHeavyHitters checks the sketch ranks a dominant flow first
// and bounds the overestimate enough to keep ordering among well-spread
// keys.
func TestTopKHeavyHitters(t *testing.T) {
	tk := NewTopK(3)
	for i := 0; i < 200; i++ {
		tk.Offer(fmt.Sprintf("noise-%d", i), 10)
	}
	tk.Offer("elephant", 1_000_000)
	tk.Offer("moose", 500_000)
	tk.Offer("mouse", 50_000)
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("Top returned %d talkers, want 3", len(top))
	}
	if top[0].Key != "elephant" || top[1].Key != "moose" || top[2].Key != "mouse" {
		t.Fatalf("wrong ranking: %v", top)
	}
	if est := tk.Estimate("elephant"); est < 1_000_000 {
		t.Fatalf("count-min underestimated: %d < 1000000", est)
	}
	if strings.Contains(fmt.Sprint(top), "noise") {
		t.Fatalf("noise key displaced a heavy hitter: %v", top)
	}
}

// TestFlowDropReasonNames pins the reason strings the scrape uses as
// counter suffixes.
func TestFlowDropReasonNames(t *testing.T) {
	want := map[FlowDropReason]string{
		FlowDropQuota:     "quota",
		FlowDropCrossVNI:  "cross_vni",
		FlowDropNoRoute:   "no_route",
		FlowDropQueue:     "queue_overflow",
		FlowDropWANLoss:   "wan_loss",
		FlowDropPartition: "partition",
	}
	for r, name := range want {
		if r.String() != name {
			t.Fatalf("reason %d = %q, want %q", r, r.String(), name)
		}
	}
	if int(FlowDropReasons) != len(want) {
		t.Fatalf("FlowDropReasons = %d, want %d", FlowDropReasons, len(want))
	}
}
