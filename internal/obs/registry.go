package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wavnet/internal/metrics"
)

// Kind discriminates the series types a Registry holds.
type Kind uint8

// Series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind for renders.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is one monotonic series of a Registry.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter (scrapers copy cumulative totals in).
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is one instantaneous-value series of a Registry.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// seriesKey identifies one series: Labels is comparable, so the pair
// works directly as a map key.
type seriesKey struct {
	name   string
	labels Labels
}

// series is one named, labeled instrument.
type series struct {
	key     seriesKey
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a collection of labeled series. Lookups create series on
// first use; asking for an existing (name, labels) pair under a
// different kind panics — that is a wiring error, not load-time state.
// Safe for concurrent use (experiment drivers scrape from helper
// goroutines while the simulation records).
type Registry struct {
	mu    sync.Mutex
	byKey map[seriesKey]*series
	order []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[seriesKey]*series)}
}

// lookup finds or creates a series of the given kind.
func (r *Registry) lookup(name string, labels Labels, kind Kind) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey{name, labels}
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %s%s registered as %s, requested as %s",
				name, labels, s.kind, kind))
		}
		return s
	}
	s := &series{key: key, kind: kind}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	default:
		s.hist = NewHistogram()
	}
	r.byKey[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns the named labeled counter, creating it at zero.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.lookup(name, labels, KindCounter).counter
}

// Gauge returns the named labeled gauge, creating it at zero.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.lookup(name, labels, KindGauge).gauge
}

// Histogram returns the named labeled histogram, creating it empty.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	return r.lookup(name, labels, KindHistogram).hist
}

// AddHistogram folds an externally-maintained histogram into the named
// labeled series bucket-wise, so scrapers can export distributions
// subsystems keep privately (e.g. a host's frames-per-batch histogram).
func (r *Registry) AddHistogram(name string, labels Labels, h *Histogram) {
	if h == nil {
		return
	}
	r.Histogram(name, labels).merge(h)
}

// AddCounterSet plugs a subsystem's flat CounterSet into the registry
// under one label set: every counter of the set is added into the
// like-named labeled counter (so scraping two sources onto the same
// labels sums them).
func (r *Registry) AddCounterSet(labels Labels, cs *metrics.CounterSet) {
	r.AddCounterSetPrefix("", labels, cs)
}

// AddCounterSetPrefix is AddCounterSet with every counter name
// prefixed — scrapers use it to namespace subsystems whose flat
// counter names would otherwise collide (e.g. "placement.").
func (r *Registry) AddCounterSetPrefix(prefix string, labels Labels, cs *metrics.CounterSet) {
	if cs == nil {
		return
	}
	for _, name := range cs.Names() {
		r.Counter(prefix+name, labels).Add(cs.Get(name))
	}
}

// Len reports the number of series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// CounterValue reads one labeled counter (0, false when absent).
func (r *Registry) CounterValue(name string, labels Labels) (uint64, bool) {
	r.mu.Lock()
	s, ok := r.byKey[seriesKey{name, labels}]
	r.mu.Unlock()
	if !ok || s.kind != KindCounter {
		return 0, false
	}
	return s.counter.Value(), true
}

// GaugeValue reads one labeled gauge (0, false when absent).
func (r *Registry) GaugeValue(name string, labels Labels) (float64, bool) {
	r.mu.Lock()
	s, ok := r.byKey[seriesKey{name, labels}]
	r.mu.Unlock()
	if !ok || s.kind != KindGauge {
		return 0, false
	}
	return s.gauge.Value(), true
}

// Total sums a counter name across every label set — the registry
// analogue of merging per-host CounterSets before reading one name.
func (r *Registry) Total(name string) uint64 {
	var sum uint64
	for _, s := range r.sorted() {
		if s.key.name == name && s.kind == KindCounter {
			sum += s.counter.Value()
		}
	}
	return sum
}

// sorted snapshots the series ordered by (name, labels) — the stable
// render order, independent of registration order.
func (r *Registry) sorted() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.name != out[j].key.name {
			return out[i].key.name < out[j].key.name
		}
		return out[i].key.labels.String() < out[j].key.labels.String()
	})
	return out
}

// Snapshot deep-copies the registry: later recording into r leaves the
// snapshot untouched.
func (r *Registry) Snapshot() *Registry {
	out := NewRegistry()
	out.Merge(r)
	return out
}

// Merge folds other into r: counters and gauges sum, histograms merge
// bucket-wise, series absent from r are created.
func (r *Registry) Merge(other *Registry) {
	for _, s := range other.sorted() {
		switch s.kind {
		case KindCounter:
			r.Counter(s.key.name, s.key.labels).Add(s.counter.Value())
		case KindGauge:
			r.Gauge(s.key.name, s.key.labels).Add(s.gauge.Value())
		default:
			r.Histogram(s.key.name, s.key.labels).merge(s.hist)
		}
	}
}

// Delta returns a new registry holding r minus prev per series:
// counters subtract clamped at zero (a restarted source reset its
// totals; see metrics.CounterSet.Delta), histograms subtract
// bucket-wise, gauges keep their current (instantaneous) value.
func (r *Registry) Delta(prev *Registry) *Registry {
	out := NewRegistry()
	for _, s := range r.sorted() {
		switch s.kind {
		case KindCounter:
			cur := s.counter.Value()
			if p, ok := prev.CounterValue(s.key.name, s.key.labels); ok && p < cur {
				out.Counter(s.key.name, s.key.labels).Set(cur - p)
			} else if !ok {
				out.Counter(s.key.name, s.key.labels).Set(cur)
			} else {
				out.Counter(s.key.name, s.key.labels).Set(0)
			}
		case KindGauge:
			out.Gauge(s.key.name, s.key.labels).Set(s.gauge.Value())
		default:
			prev.mu.Lock()
			ps, ok := prev.byKey[seriesKey{s.key.name, s.key.labels}]
			prev.mu.Unlock()
			if ok && ps.kind == KindHistogram {
				out.Histogram(s.key.name, s.key.labels).merge(s.hist.delta(ps.hist))
			} else {
				out.Histogram(s.key.name, s.key.labels).merge(s.hist)
			}
		}
	}
	return out
}

// String renders one line per series, sorted by (name, labels):
//
//	flooded_frames{tenant=acme,host=pc00} 12
//	lookup_ms{broker=rdv} count=40 p50=2.1 p95=3.9 p99=4 max=4.2
func (r *Registry) String() string {
	var b strings.Builder
	for _, s := range r.sorted() {
		fmt.Fprintf(&b, "%s%s ", s.key.name, s.key.labels)
		switch s.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%d", s.counter.Value())
		case KindGauge:
			fmt.Fprintf(&b, "%g", s.gauge.Value())
		default:
			b.WriteString(s.hist.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seriesJSON is the registry's JSON row shape.
type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *float64          `json:"sum,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P95    *float64          `json:"p95,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
	Max    *float64          `json:"max,omitempty"`
}

func labelMap(l Labels) map[string]string {
	m := make(map[string]string)
	if l.Tenant != "" {
		m["tenant"] = l.Tenant
	}
	if l.Net != "" {
		m["net"] = l.Net
	}
	if l.Broker != "" {
		m["broker"] = l.Broker
	}
	if l.Host != "" {
		m["host"] = l.Host
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// MarshalJSON renders the registry as a sorted array of series rows.
func (r *Registry) MarshalJSON() ([]byte, error) {
	rows := make([]seriesJSON, 0, r.Len())
	f := func(v float64) *float64 { return &v }
	for _, s := range r.sorted() {
		row := seriesJSON{Name: s.key.name, Labels: labelMap(s.key.labels), Kind: s.kind.String()}
		switch s.kind {
		case KindCounter:
			row.Value = f(float64(s.counter.Value()))
		case KindGauge:
			row.Value = f(s.gauge.Value())
		default:
			n := s.hist.Count()
			row.Count = &n
			row.Sum = f(s.hist.Sum())
			row.P50 = f(s.hist.P50())
			row.P95 = f(s.hist.P95())
			row.P99 = f(s.hist.P99())
			row.Max = f(s.hist.Max())
		}
		rows = append(rows, row)
	}
	return json.Marshal(rows)
}
