package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"wavnet/internal/metrics"
	"wavnet/internal/sim"
)

func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000: the true p50 is ~500, p95 ~950, p99 ~990.
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %g, want 1000", h.Max())
	}
	if got, want := h.Sum(), float64(1000*1001/2); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Log-scale buckets bound the quantile error at a factor of two;
	// geometric interpolation should land much closer.
	checks := []struct {
		q, want float64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%g = %g, want within 2x of %g", c.q, got, c.want)
		}
	}
	if h.Quantile(0) != 1 {
		t.Errorf("q0 = %g, want observed min 1", h.Quantile(0))
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("q1 = %g, want observed max 1000", h.Quantile(1))
	}
}

func TestHistogramPointMass(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	// Every quantile of a point mass is the point: min/max clamping
	// must defeat bucket-width error entirely.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("q%g = %g, want 42", q, got)
		}
	}
	if h.P50() != 42 || h.P95() != 42 || h.P99() != 42 || h.Max() != 42 {
		t.Errorf("accessors = %g/%g/%g/%g, want all 42", h.P50(), h.P95(), h.P99(), h.Max())
	}
}

func TestHistogramDelta(t *testing.T) {
	prev := NewHistogram()
	cur := NewHistogram()
	for v := 1; v <= 10; v++ {
		prev.Observe(float64(v))
		cur.Observe(float64(v))
	}
	for v := 100; v <= 120; v++ {
		cur.Observe(float64(v))
	}
	d := cur.delta(prev)
	if d.Count() != 21 {
		t.Fatalf("delta count = %d, want 21", d.Count())
	}
	// A source that reset (prev > cur) clamps instead of wrapping.
	d2 := prev.delta(cur)
	if d2.Count() != 0 {
		t.Fatalf("reset delta count = %d, want 0", d2.Count())
	}
}

func TestRegistryLabeledSeries(t *testing.T) {
	r := NewRegistry()
	acme := Labels{Tenant: "acme", Net: "red", Host: "pc00"}
	beta := Labels{Tenant: "beta", Net: "blue", Host: "pc01"}
	r.Counter("flooded_frames", acme).Add(7)
	r.Counter("flooded_frames", beta).Add(3)
	r.Gauge("tunnels", acme).Set(4)
	r.Histogram("lookup_ms", Labels{Broker: "rdv"}).Observe(2.5)

	if v, ok := r.CounterValue("flooded_frames", acme); !ok || v != 7 {
		t.Fatalf("acme flooded_frames = %d,%v", v, ok)
	}
	if r.Total("flooded_frames") != 10 {
		t.Fatalf("total = %d, want 10", r.Total("flooded_frames"))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}

	cs := metrics.NewCounterSet()
	cs.Add("quota_drops", 5)
	r.AddCounterSet(acme, cs)
	r.AddCounterSet(acme, cs) // same labels: sums
	if v, _ := r.CounterValue("quota_drops", acme); v != 10 {
		t.Fatalf("quota_drops = %d, want 10", v)
	}

	out := r.String()
	if want := "flooded_frames{tenant=acme,net=red,host=pc00} 7"; !contains(out, want) {
		t.Errorf("text render missing %q:\n%s", want, out)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if len(rows) != r.Len() {
		t.Fatalf("json rows = %d, want %d", len(rows), r.Len())
	}
}

func TestRegistryMergeIdentity(t *testing.T) {
	r := NewRegistry()
	l := Labels{Host: "pc00"}
	r.Counter("frames", l).Add(9)
	r.Gauge("load", l).Set(1.5)
	for v := 1; v <= 50; v++ {
		r.Histogram("lat_ms", l).Observe(float64(v))
	}
	// Merging into an empty registry is the identity.
	m := NewRegistry()
	m.Merge(r)
	if m.String() != r.String() {
		t.Fatalf("merge-into-empty changed the registry:\n%s\nvs\n%s", m.String(), r.String())
	}
	// Merging an empty registry is also the identity.
	before := r.String()
	r.Merge(NewRegistry())
	if r.String() != before {
		t.Fatalf("merge-of-empty changed the registry")
	}
	// Snapshot isolates: recording after Snapshot must not leak in.
	snap := r.Snapshot()
	r.Counter("frames", l).Add(100)
	if v, _ := snap.CounterValue("frames", l); v != 9 {
		t.Fatalf("snapshot leaked: frames = %d, want 9", v)
	}
}

func TestRegistryDeltaClampsResets(t *testing.T) {
	prev := NewRegistry()
	cur := NewRegistry()
	l := Labels{Broker: "b2"}
	prev.Counter("joins", l).Set(40) // before the broker restarted
	cur.Counter("joins", l).Set(6)   // restarted: totals reset
	d := cur.Delta(prev)
	if v, _ := d.CounterValue("joins", l); v != 0 {
		t.Fatalf("reset delta = %d, want 0 (clamped)", v)
	}
	cur.Counter("joins", l).Add(100)
	d = cur.Delta(prev)
	if v, _ := d.CounterValue("joins", l); v != 66 {
		t.Fatalf("delta = %d, want 66", v)
	}
}

// TestRegistryConcurrent hammers one registry from recorder and
// scraper goroutines; run under -race this is the experiment-driver
// concurrency of World.Scrape.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := Labels{Host: fmt.Sprintf("pc%02d", g%4)}
			for i := 0; i < 2000; i++ {
				r.Counter("frames", l).Inc()
				r.Gauge("load", l).Add(0.5)
				r.Histogram("lat_ms", l).Observe(float64(i % 100))
			}
		}(g)
	}
	var wgScrape sync.WaitGroup
	for s := 0; s < 4; s++ {
		wgScrape.Add(1)
		go func() {
			defer wgScrape.Done()
			for i := 0; i < 50; i++ {
				snap := r.Snapshot()
				_ = snap.String()
				_, _ = json.Marshal(snap)
				_ = snap.Delta(r)
			}
		}()
	}
	wg.Wait()
	wgScrape.Wait()
	if got := r.Total("frames"); got != 8*2000 {
		t.Fatalf("frames total = %d, want %d", got, 8*2000)
	}
	l0 := Labels{Host: "pc00"}
	if v, _ := r.GaugeValue("load", l0); math.Abs(v-2*2000*0.5) > 1e-9 {
		t.Fatalf("gauge = %g, want %g", v, 2*2000*0.5)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(float64(i))
				if i%100 == 0 {
					_ = h.P95()
					_ = h.String()
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start(nil, "noop", Labels{})
	if sp != nil {
		t.Fatalf("nil trace returned non-nil span")
	}
	// Every method must tolerate the nil span.
	sp.Event("ignored %d", 1)
	sp.End()
	if sp.Ended() || sp.Name() != "" || sp.Duration() != 0 || sp.TraceID() != 0 {
		t.Fatalf("nil span accessors not zero")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil || tr.Dump() != "" {
		t.Fatalf("nil trace accessors not zero")
	}
	tr.Reset()
}

func TestSpanTreeAndExport(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTrace(eng, 0)
	var root, child *Span
	eng.Schedule(10*sim.Millisecond, func() {
		root = tr.Start(nil, "migrate", Labels{Host: "pc00"})
		root.Event("pc00 -> pc01")
	})
	eng.Schedule(20*sim.Millisecond, func() {
		child = tr.Start(root, "migrate.round", Labels{Host: "pc00"})
	})
	eng.Schedule(30*sim.Millisecond, func() { child.End() })
	eng.Schedule(40*sim.Millisecond, func() { root.End() })
	eng.Run()

	if root.TraceID() != child.TraceID() {
		t.Fatalf("causality ID not threaded: %d vs %d", root.TraceID(), child.TraceID())
	}
	if child.ParentID() != root.ID() {
		t.Fatalf("parent not linked")
	}
	if got := child.Duration(); got != 10*sim.Millisecond {
		t.Fatalf("child duration = %v, want 10ms", got)
	}
	if !root.HasEvent("pc01") {
		t.Fatalf("event lost")
	}
	kids := tr.Children(root)
	if len(kids) != 1 || kids[0] != child {
		t.Fatalf("Children = %v", kids)
	}
	if got := tr.Find("migrate.round"); len(got) != 1 {
		t.Fatalf("Find = %d spans", len(got))
	}
	// End is idempotent.
	root.End()
	if root.Duration() != 30*sim.Millisecond {
		t.Fatalf("re-End moved the end time")
	}

	dump := tr.Dump()
	if !contains(dump, "migrate{host=pc00}") || !contains(dump, "trace 1") {
		t.Fatalf("dump missing span line:\n%s", dump)
	}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var rows []spanJSON
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if len(rows) != 2 || rows[0].Name != "migrate" || rows[1].Parent != rows[0].Span {
		t.Fatalf("json export wrong: %+v", rows)
	}
}

func TestTraceBounded(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTrace(eng, 4)
	var last *Span
	for i := 0; i < 6; i++ {
		last = tr.Start(nil, "s", Labels{})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	// A dropped span still functions (events, End, parenting).
	last.Event("still works")
	last.End()
	if !last.Ended() {
		t.Fatalf("dropped span cannot end")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
