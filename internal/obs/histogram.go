package obs

import (
	"fmt"
	"math"
	"sync"
)

// histBuckets is the fixed bucket count of every histogram: bucket 0
// holds values <= 1, bucket i holds (2^(i-1), 2^i], so 63 doubling
// buckets span any simulation quantity (nanoseconds to terabytes) with
// factor-2 resolution. A fixed shape keeps Delta and Merge trivially
// well-defined across registries.
const histBuckets = 64

// Histogram is a fixed log-scale (powers of two) histogram with
// quantile accessors. Safe for concurrent use; observations are
// non-negative float64s in whatever unit the caller picks.
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]uint64
	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean reports the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by geometric
// interpolation within the covering bucket, clamped to the observed
// [min, max]. Log-scale buckets bound the error at a factor of two;
// in practice interpolation lands much closer.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	cum := float64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(i)
		// Position of the rank inside this bucket, geometrically
		// interpolated between the bucket's bounds.
		frac := (rank - prev) / float64(c)
		var v float64
		if lo <= 0 {
			v = hi * frac
		} else {
			v = lo * math.Pow(hi/lo, frac)
		}
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// P50, P95 and P99 are the standard latency quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// bucketBounds returns the (lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
}

// clone deep-copies the histogram.
func (h *Histogram) clone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := &Histogram{count: h.count, sum: h.sum, min: h.min, max: h.max}
	out.counts = h.counts
	return out
}

// merge adds other's observations into h.
func (h *Histogram) merge(other *Histogram) {
	o := other.clone()
	h.mu.Lock()
	defer h.mu.Unlock()
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// delta returns h minus prev, bucket-wise and clamped at zero (a
// restarted source resets to empty; clamping keeps deltas sane). The
// observed extrema cannot be subtracted, so the current min/max carry
// over.
func (h *Histogram) delta(prev *Histogram) *Histogram {
	cur := h.clone()
	p := prev.clone()
	out := &Histogram{min: cur.min, max: cur.max}
	for i := range cur.counts {
		if cur.counts[i] > p.counts[i] {
			out.counts[i] = cur.counts[i] - p.counts[i]
			out.count += out.counts[i]
		}
	}
	if s := cur.sum - p.sum; s > 0 {
		out.sum = s
	}
	return out
}

// String renders the summary row used by the registry's text form.
func (h *Histogram) String() string {
	return fmt.Sprintf("count=%d p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		h.Count(), h.P50(), h.P95(), h.P99(), h.Max())
}
