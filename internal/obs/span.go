package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"wavnet/internal/sim"
)

// Trace is a bounded in-memory span recorder stamped with sim.Time.
// Every method on Trace and Span is safe on a nil receiver — wiring a
// nil *Trace through a Config disables tracing with no call-site
// guards — and safe for concurrent use (chaos helpers inspect the
// buffer from test goroutines while the simulation records).
type Trace struct {
	eng   *sim.Engine
	limit int

	mu        sync.Mutex
	spans     []*Span
	nextTrace uint64
	nextSpan  uint64
	dropped   uint64
}

// DefaultSpanLimit bounds the buffer when NewTrace is given no limit.
const DefaultSpanLimit = 16384

// NewTrace creates a recorder holding at most limit spans (<=0 uses
// DefaultSpanLimit); spans started past the limit still function as
// parents but are dropped from the buffer and counted.
func NewTrace(eng *sim.Engine, limit int) *Trace {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Trace{eng: eng, limit: limit}
}

// SpanEvent is one timestamped annotation inside a span.
type SpanEvent struct {
	At  sim.Time
	Msg string
}

// Span is one timed step of a multi-step flow. Spans started from the
// same root share a trace (causality) ID; a span records its start
// eagerly, so the buffer shows in-flight work, and closes with End.
type Span struct {
	tr *Trace

	name     string
	labels   Labels
	traceID  uint64
	id       uint64
	parentID uint64 // 0 = root
	start    sim.Time
	end      sim.Time
	ended    bool
	events   []SpanEvent
}

// Start opens a span. A nil parent starts a new causality tree; a
// non-nil parent threads its trace ID through. Nil-safe: a nil Trace
// returns a nil Span, and every Span method tolerates a nil receiver.
func (tr *Trace) Start(parent *Span, name string, labels Labels) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextSpan++
	sp := &Span{tr: tr, name: name, labels: labels, id: tr.nextSpan, start: tr.eng.Now()}
	if parent != nil {
		sp.traceID = parent.traceID
		sp.parentID = parent.id
	} else {
		tr.nextTrace++
		sp.traceID = tr.nextTrace
	}
	if len(tr.spans) >= tr.limit {
		tr.dropped++
	} else {
		tr.spans = append(tr.spans, sp)
	}
	return sp
}

// Event appends a timestamped annotation (nil-safe, no-op after End).
func (sp *Span) Event(format string, args ...any) {
	if sp == nil {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.events = append(sp.events, SpanEvent{At: sp.tr.eng.Now(), Msg: msg})
}

// End closes the span at the current sim time (nil-safe, idempotent).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.ended {
		sp.ended = true
		sp.end = sp.tr.eng.Now()
	}
}

// Name returns the span's name ("" on nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// SpanLabels returns the span's label set.
func (sp *Span) SpanLabels() Labels {
	if sp == nil {
		return Labels{}
	}
	return sp.labels
}

// TraceID returns the causality ID shared by the span's tree.
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.traceID
}

// ID returns the span's own ID; ParentID is 0 for roots.
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// ParentID returns the parent span's ID (0 for roots).
func (sp *Span) ParentID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.parentID
}

// StartTime reports when the span opened.
func (sp *Span) StartTime() sim.Time {
	if sp == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.start
}

// EndTime reports when the span closed (0 while open).
func (sp *Span) EndTime() sim.Time {
	if sp == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.end
}

// Ended reports whether End was called.
func (sp *Span) Ended() bool {
	if sp == nil {
		return false
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.ended
}

// Duration is end-start for closed spans (0 while open).
func (sp *Span) Duration() sim.Duration {
	if sp == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.ended {
		return 0
	}
	return sp.end.Sub(sp.start)
}

// Events returns a copy of the span's annotations.
func (sp *Span) Events() []SpanEvent {
	if sp == nil {
		return nil
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return append([]SpanEvent(nil), sp.events...)
}

// HasEvent reports whether any annotation contains the substring.
func (sp *Span) HasEvent(substr string) bool {
	for _, ev := range sp.Events() {
		if strings.Contains(ev.Msg, substr) {
			return true
		}
	}
	return false
}

// Spans returns the recorded spans in start order (chronological: sim
// time is monotonic).
func (tr *Trace) Spans() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Span(nil), tr.spans...)
}

// Find returns the recorded spans with the given name, in start order.
func (tr *Trace) Find(name string) []*Span {
	var out []*Span
	for _, sp := range tr.Spans() {
		if sp.name == name {
			out = append(out, sp)
		}
	}
	return out
}

// Children returns the recorded direct children of a span, in start
// order.
func (tr *Trace) Children(parent *Span) []*Span {
	if parent == nil {
		return nil
	}
	var out []*Span
	for _, sp := range tr.Spans() {
		if sp.parentID == parent.id && sp.traceID == parent.traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Len reports the number of recorded spans.
func (tr *Trace) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.spans)
}

// Dropped reports spans not recorded because the buffer was full.
func (tr *Trace) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Reset discards the buffer (IDs keep counting so spans stay unique).
func (tr *Trace) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.spans = nil
	tr.dropped = 0
}

// line renders one span for the text dump.
func (sp *Span) line() string {
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	var b strings.Builder
	dur := "open"
	if sp.ended {
		dur = fmt.Sprintf("+%.3fms", float64(sp.end.Sub(sp.start))/1e6)
	}
	fmt.Fprintf(&b, "%s %-9s %s%s [trace %d span %d", sp.start, dur, sp.name, sp.labels, sp.traceID, sp.id)
	if sp.parentID != 0 {
		fmt.Fprintf(&b, " < %d", sp.parentID)
	}
	b.WriteByte(']')
	for _, ev := range sp.events {
		fmt.Fprintf(&b, "; %s %s", ev.At, ev.Msg)
	}
	return b.String()
}

// WriteTo dumps the buffer chronologically, one line per span.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, sp := range tr.Spans() {
		n, err := fmt.Fprintln(w, sp.line())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Dump returns the chronological text form of the buffer.
func (tr *Trace) Dump() string {
	var b strings.Builder
	tr.WriteTo(&b)
	return b.String()
}

// spanJSON is the export shape of one span.
type spanJSON struct {
	Trace  uint64            `json:"trace"`
	Span   uint64            `json:"span"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Start  int64             `json:"start_ns"`
	End    int64             `json:"end_ns,omitempty"`
	Events []spanEventJSON   `json:"events,omitempty"`
}

type spanEventJSON struct {
	At  int64  `json:"at_ns"`
	Msg string `json:"msg"`
}

// MarshalJSON exports the buffer as a chronological span array.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	spans := tr.Spans()
	rows := make([]spanJSON, 0, len(spans))
	for _, sp := range spans {
		sp.tr.mu.Lock()
		row := spanJSON{
			Trace: sp.traceID, Span: sp.id, Parent: sp.parentID,
			Name: sp.name, Labels: labelMap(sp.labels), Start: int64(sp.start),
		}
		if sp.ended {
			row.End = int64(sp.end)
		}
		for _, ev := range sp.events {
			row.Events = append(row.Events, spanEventJSON{At: int64(ev.At), Msg: ev.Msg})
		}
		sp.tr.mu.Unlock()
		rows = append(rows, row)
	}
	return json.Marshal(rows)
}
