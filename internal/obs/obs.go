// Package obs is the fabric-wide observability layer: a labeled
// metrics registry (counters, gauges, log-scale histograms) and a
// sim-time span tracer.
//
// The registry generalizes metrics.CounterSet — every subsystem keeps
// exporting a flat CounterSet, and scrapers (scenario.World.Scrape)
// plug those sets into a Registry under a {tenant, net, broker, host}
// label set so per-layer series survive aggregation. One snapshot /
// delta / merge API covers the whole registry, with a stable text and
// JSON render for experiment tables and the BENCH_* trajectory files.
//
// The tracer records spans stamped with sim.Time and threaded by a
// causality (trace) ID through the fabric's multi-step flows — Apply
// reconciliation, punch orchestration, broker re-home elections,
// migration rounds — so chaos tests can assert on timelines ("the
// re-home closed within three pulse periods of the kill") instead of
// terminal counters alone. All span methods are nil-receiver safe:
// subsystems trace unconditionally and a nil *Trace disables it.
package obs

import "strings"

// Labels identifies one series: the four dimensions the fabric slices
// by. Empty fields are omitted from renders; the zero value labels a
// global series. Labels is comparable and used as a map key.
type Labels struct {
	Tenant string
	Net    string
	Broker string
	Host   string
}

// String renders the label set as {tenant=...,net=...,broker=...,host=...}
// with empty dimensions omitted ("" for the zero value).
func (l Labels) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("tenant", l.Tenant)
	add("net", l.Net)
	add("broker", l.Broker)
	add("host", l.Host)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
