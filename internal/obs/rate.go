package obs

import "wavnet/internal/sim"

// RateView is a registry delta bound to the interval it covers, so
// per-second rates fall out without every caller hand-rolling
// CounterSet.Delta loops. Built by Registry.Since.
type RateView struct {
	// Delta holds current-minus-previous per series: counters clamp at
	// zero across source restarts (see Registry.Delta), gauges carry
	// their instantaneous value, histograms subtract bucket-wise.
	Delta *Registry
	// Interval is the sim time the delta covers.
	Interval sim.Duration
}

// Since returns the per-interval view of r against a previous snapshot.
// A nil prev treats everything in r as new (the first scrape of a run).
func (r *Registry) Since(prev *Registry, interval sim.Duration) *RateView {
	if prev == nil {
		prev = NewRegistry()
	}
	return &RateView{Delta: r.Delta(prev), Interval: interval}
}

// seconds is the view's interval in seconds, floored at a nanosecond so
// a zero-width interval reports deltas rather than dividing by zero.
func (v *RateView) seconds() float64 {
	if v.Interval <= 0 {
		return 1e-9
	}
	return v.Interval.Seconds()
}

// Rate reports one labeled counter's per-second rate over the interval
// (0 when the series is absent).
func (v *RateView) Rate(name string, labels Labels) float64 {
	d, ok := v.Delta.CounterValue(name, labels)
	if !ok {
		return 0
	}
	return float64(d) / v.seconds()
}

// RateTotal reports a counter name's per-second rate summed across
// every label set.
func (v *RateView) RateTotal(name string) float64 {
	return float64(v.Delta.Total(name)) / v.seconds()
}
