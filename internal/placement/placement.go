// Package placement is the tenant-aware VM scheduler: given a VM that
// needs a host, it picks the best member of the VM's virtual network.
//
// The scheduler composes three signals, in strict priority order:
//
//   - federation scope: a candidate must be homed on one of the brokers
//     the VM's network declares (NetworkSpec.Brokers) — a VM's vif must
//     never land on a host whose records live outside the tenant's
//     declared broker set;
//   - locality: the distance locator's measured RTT matrix is run
//     through the paper's locality-sensitive grouping
//     (grouping.LocalitySensitiveFiltered), and candidates inside the
//     resulting mutually-near core are preferred — a VM placed there
//     talks to most of its co-tenants over short edges;
//   - load: within a tier, candidates carrying fewer VMs (then less VM
//     memory, then lower mean RTT) win, so placement spreads instead of
//     piling onto one machine.
//
// The scheduler is deliberately stateless about the fleet: callers
// (vpc.Manager's reconciler) pass the current candidates and matrix on
// every decision, which keeps it trivially correct under membership
// churn and broker failover.
package placement

import (
	"errors"
	"fmt"
	"sort"

	"wavnet/internal/grouping"
	"wavnet/internal/metrics"
	"wavnet/internal/sim"
)

// Errors returned by the scheduler.
var (
	// ErrNoCandidates means the request's constraints excluded every
	// candidate host (or none were offered).
	ErrNoCandidates = errors.New("placement: no eligible candidate host")
)

// Candidate is one host eligible to run a VM: a member of the VM's
// network, with its declared home broker and its current VM load.
type Candidate struct {
	// Key is the machine key / WAVNet host name.
	Key string
	// Broker is the broker the host is declared to home on ("" = the
	// fabric's primary broker).
	Broker string
	// VMs is the number of the tenant's VMs already placed on this host.
	VMs int
	// MemMB is the VM memory (MB) already placed on this host.
	MemMB int
}

// Request describes the VM that needs a host.
type Request struct {
	// VM names the VM (diagnostics only).
	VM string
	// MemoryMB is the VM's image size.
	MemoryMB int
	// Brokers is the network's declared federation; a candidate homed on
	// an unnamed broker is excluded. Empty disables the check (an
	// unfederated network admits members on the primary broker only, so
	// every candidate is in scope by construction).
	Brokers []string
}

// Config tunes the scheduler.
type Config struct {
	// GroupSize is the size k of the locality core the scheduler asks
	// the grouping algorithm for; 0 derives it as half the candidates
	// (minimum 2).
	GroupSize int
	// MaxEdge is the "reasonable connection" cutoff handed to
	// LocalitySensitiveFiltered: candidate cores containing a pairwise
	// RTT above it are discarded (0 disables the filter).
	MaxEdge sim.Duration
}

// Decision reports one placement choice with its scoring diagnostics.
type Decision struct {
	// Host is the chosen machine key.
	Host string
	// InGroup reports whether the chosen host sits inside the locality
	// core (false when no RTT data was available).
	InGroup bool
	// MeanRTT is the chosen host's mean measured RTT to the other
	// candidates (0 when unmeasured).
	MeanRTT sim.Duration
	// Group is the locality core the matrix produced (nil without data).
	Group []string
}

// Scheduler scores candidates and exports its decisions as counters.
type Scheduler struct {
	cfg Config
	c   *metrics.CounterSet
}

// New returns a scheduler.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg, c: metrics.NewCounterSet()}
}

// Counters exports the scheduler's decision statistics: placements
// made, choices that landed inside the locality core (group_hits),
// decisions taken with no RTT data at all (no_matrix), decisions where
// data existed but no usable core emerged (core_unusable), and
// candidates excluded by the federation scope (filtered_broker).
func (s *Scheduler) Counters() *metrics.CounterSet { return s.c }

// score is one candidate's evaluated standing.
type score struct {
	cand    Candidate
	inGroup bool
	mean    sim.Duration
	known   bool // at least one measured RTT to another candidate
}

// Choose picks a host for the request from cands. names/rtts is the
// distance locator's accumulated matrix (rows follow names; 0 entries
// are unmeasured); candidates absent from it are scored by load alone.
func (s *Scheduler) Choose(req Request, cands []Candidate, names []string, rtts [][]sim.Duration) (Decision, error) {
	// Federation scope first: it is a hard constraint, not a preference.
	eligible := make([]Candidate, 0, len(cands))
	if len(req.Brokers) > 0 {
		named := make(map[string]bool, len(req.Brokers))
		for _, b := range req.Brokers {
			named[b] = true
		}
		for _, c := range cands {
			if named[c.Broker] {
				eligible = append(eligible, c)
			} else {
				s.c.Add("filtered_broker", 1)
			}
		}
	} else {
		eligible = append(eligible, cands...)
	}
	if len(eligible) == 0 {
		return Decision{}, fmt.Errorf("%w: %s (offered %d)", ErrNoCandidates, req.VM, len(cands))
	}

	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	scores := make([]score, len(eligible))
	for i, c := range eligible {
		scores[i] = score{cand: c}
		ci, ok := idx[c.Key]
		if !ok {
			continue
		}
		var sum sim.Duration
		n := 0
		for _, other := range eligible {
			oi, ok := idx[other.Key]
			if !ok || oi == ci {
				continue
			}
			if d := rtts[ci][oi]; d > 0 {
				sum += d
				n++
			}
		}
		if n > 0 {
			scores[i].mean = sum / sim.Duration(n)
			scores[i].known = true
		}
	}

	// Locality core over the measured sub-matrix of eligible candidates.
	group, measured := s.localityCore(eligible, idx, rtts)
	switch {
	case group != nil:
		in := make(map[string]bool, len(group))
		for _, name := range group {
			in[name] = true
		}
		for i := range scores {
			scores[i].inGroup = in[scores[i].cand.Key]
		}
	case measured:
		// RTT data existed but the grouping produced no usable core:
		// distinct from having no data at all, which usually means RTT
		// reporting is not wired up.
		s.c.Add("core_unusable", 1)
	default:
		s.c.Add("no_matrix", 1)
	}

	sort.SliceStable(scores, func(a, b int) bool {
		x, y := scores[a], scores[b]
		if x.inGroup != y.inGroup {
			return x.inGroup
		}
		if x.cand.VMs != y.cand.VMs {
			return x.cand.VMs < y.cand.VMs
		}
		if x.cand.MemMB != y.cand.MemMB {
			return x.cand.MemMB < y.cand.MemMB
		}
		if x.known != y.known {
			return x.known // measured hosts beat unmeasured ties
		}
		if x.mean != y.mean {
			return x.mean < y.mean
		}
		return x.cand.Key < y.cand.Key
	})
	best := scores[0]
	s.c.Add("placements", 1)
	if best.inGroup {
		s.c.Add("group_hits", 1)
	}
	return Decision{
		Host:    best.cand.Key,
		InGroup: best.inGroup,
		MeanRTT: best.mean,
		Group:   group,
	}, nil
}

// localityCore runs the paper's locality-sensitive grouping over the
// eligible candidates' measured sub-matrix and returns the core's
// member names (nil when none could be formed). measured reports
// whether any pairwise RTT data existed at all.
func (s *Scheduler) localityCore(eligible []Candidate, idx map[string]int, rtts [][]sim.Duration) (group []string, measured bool) {
	var rows []int
	var keys []string
	for _, c := range eligible {
		if i, ok := idx[c.Key]; ok {
			rows = append(rows, i)
			keys = append(keys, c.Key)
		}
	}
	if len(rows) < 2 {
		return nil, false
	}
	sub := make([][]sim.Duration, len(rows))
	for r, i := range rows {
		sub[r] = make([]sim.Duration, len(rows))
		for c, j := range rows {
			sub[r][c] = rtts[i][j]
			if r != c && sub[r][c] > 0 {
				measured = true
			}
		}
	}
	if !measured {
		return nil, false
	}
	k := s.cfg.GroupSize
	if k <= 0 {
		k = (len(rows) + 1) / 2
	}
	if k < 2 {
		k = 2
	}
	if k > len(rows) {
		k = len(rows)
	}
	sel, err := grouping.LocalitySensitiveFiltered(sub, k, s.cfg.MaxEdge)
	if err != nil {
		return nil, true
	}
	out := make([]string, len(sel))
	for i, r := range sel {
		out[i] = keys[r]
	}
	sort.Strings(out)
	return out, true
}
