package placement

import (
	"errors"
	"testing"
	"time"

	"wavnet/internal/sim"
)

// twoClusters is a 6-host universe: a,b,c sit 2 ms apart; d,e,f sit
// 2 ms apart; the clusters are 150 ms from each other.
func twoClusters() ([]string, [][]sim.Duration) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	near := 2 * time.Millisecond
	far := 150 * time.Millisecond
	n := len(names)
	rtts := make([][]sim.Duration, n)
	for i := range rtts {
		rtts[i] = make([]sim.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if (i < 3) == (j < 3) {
				rtts[i][j] = near
			} else {
				rtts[i][j] = far
			}
		}
	}
	return names, rtts
}

func cands(keys ...string) []Candidate {
	out := make([]Candidate, len(keys))
	for i, k := range keys {
		out[i] = Candidate{Key: k}
	}
	return out
}

func TestChoosePrefersLocalityCore(t *testing.T) {
	names, rtts := twoClusters()
	s := New(Config{GroupSize: 3})
	d, err := s.Choose(Request{VM: "vm1"}, cands("a", "b", "c", "d", "e", "f"), names, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if !d.InGroup {
		t.Fatalf("decision %+v not inside the locality core", d)
	}
	if d.Host != "a" && d.Host != "b" && d.Host != "c" {
		t.Fatalf("chose %s, want a near-cluster host (core %v)", d.Host, d.Group)
	}
	if len(d.Group) != 3 {
		t.Fatalf("core %v, want 3 hosts", d.Group)
	}
	if s.Counters().Get("group_hits") != 1 || s.Counters().Get("placements") != 1 {
		t.Fatalf("counters: %s", s.Counters())
	}
}

func TestChooseBalancesLoadWithinCore(t *testing.T) {
	names, rtts := twoClusters()
	s := New(Config{GroupSize: 3})
	cs := []Candidate{
		{Key: "a", VMs: 2, MemMB: 512},
		{Key: "b", VMs: 1, MemMB: 256},
		{Key: "c", VMs: 1, MemMB: 128},
		{Key: "d"}, // empty but outside the core
	}
	d, err := s.Choose(Request{VM: "vm1"}, cs, names, rtts)
	if err != nil {
		t.Fatal(err)
	}
	// Load spreads inside the core: the lighter of the two one-VM hosts
	// wins; the idle host outside the core never does.
	if d.Host != "c" {
		t.Fatalf("chose %s, want c (core %v)", d.Host, d.Group)
	}
}

func TestChooseFiltersByBrokerScope(t *testing.T) {
	names, rtts := twoClusters()
	s := New(Config{})
	cs := []Candidate{
		{Key: "a", Broker: "b0"},
		{Key: "b", Broker: "witness"}, // homed outside the declared set
		{Key: "d", Broker: "b1"},
	}
	d, err := s.Choose(Request{VM: "vm1", Brokers: []string{"b0", "b1"}}, cs, names, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Host == "b" {
		t.Fatal("chose a host homed outside the network's broker set")
	}
	if s.Counters().Get("filtered_broker") != 1 {
		t.Fatalf("counters: %s", s.Counters())
	}
	// All candidates out of scope: a hard error, never a fallback.
	if _, err := s.Choose(Request{VM: "vm2", Brokers: []string{"b9"}}, cs, names, rtts); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestChooseWithoutMatrixFallsBackToLoad(t *testing.T) {
	s := New(Config{})
	cs := []Candidate{
		{Key: "x", VMs: 3},
		{Key: "y", VMs: 0},
		{Key: "z", VMs: 1},
	}
	d, err := s.Choose(Request{VM: "vm1"}, cs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Host != "y" || d.InGroup || d.Group != nil {
		t.Fatalf("decision %+v, want least-loaded y with no locality claim", d)
	}
	if s.Counters().Get("no_matrix") != 1 {
		t.Fatalf("counters: %s", s.Counters())
	}
}

func TestChooseMaxEdgeFilter(t *testing.T) {
	names, rtts := twoClusters()
	// A core of 4 must straddle the clusters (each has 3); with a 10 ms
	// edge cutoff every straddling candidate is filtered and the
	// algorithm falls back to the best unfiltered candidate — the
	// decision still lands on a near-cluster host.
	s := New(Config{GroupSize: 4, MaxEdge: 10 * time.Millisecond})
	d, err := s.Choose(Request{VM: "vm1"}, cands(names...), names, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Host == "" {
		t.Fatal("no host chosen")
	}
}

func TestChooseDeterministic(t *testing.T) {
	names, rtts := twoClusters()
	s := New(Config{GroupSize: 3})
	first, err := s.Choose(Request{VM: "vm1"}, cands(names...), names, rtts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := s.Choose(Request{VM: "vm1"}, cands(names...), names, rtts)
		if err != nil {
			t.Fatal(err)
		}
		if again.Host != first.Host {
			t.Fatalf("non-deterministic choice: %s then %s", first.Host, again.Host)
		}
	}
}
