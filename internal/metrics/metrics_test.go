package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"wavnet/internal/sim"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev %v", s.Stddev)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		// Map arbitrary floats into a finite range: summing values near
		// ±MaxFloat64 legitimately overflows any mean computation.
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vs = append(vs, math.Mod(v, 1e9))
		}
		s := Summarize(vs)
		if s.Count == 0 {
			return len(vs) == 0
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Min <= s.P50 && s.P50 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBetween(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Time(sim.Second), float64(i))
	}
	sub := s.Between(sim.Time(3*sim.Second), sim.Time(6*sim.Second))
	if sub.Len() != 3 || sub.Samples[0].Value != 3 {
		t.Fatalf("between: %+v", sub.Samples)
	}
	if s.Summary().Mean != 4.5 {
		t.Fatalf("mean %v", s.Summary().Mean)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.99, 10, 42} {
		h.Observe(v)
	}
	if h.Under != 1 || h.Over != 2 || h.CountN != 7 {
		t.Fatalf("histogram %+v", h)
	}
	if h.Buckets[0] != 2 || h.Buckets[5] != 1 || h.Buckets[9] != 1 {
		t.Fatalf("buckets %v", h.Buckets)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRateAndMs(t *testing.T) {
	if r := Rate(1250000, sim.Second); r != 10 {
		t.Fatalf("rate %v, want 10 Mbps", r)
	}
	if Rate(100, 0) != 0 {
		t.Fatal("rate with zero duration")
	}
	if MsFloat(1500000) != 1.5 {
		t.Fatal("MsFloat")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(100)
	c.Inc(50)
	if c.N != 2 || c.Total != 150 {
		t.Fatalf("counter %+v", c)
	}
}
