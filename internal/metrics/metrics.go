// Package metrics provides the small measurement toolkit used by the
// WAVNet experiment harness: time series of samples, summary statistics
// and fixed-width histograms. Everything operates on float64 values and
// sim.Time timestamps so that any experiment (RTT probes, interval
// bandwidth reports, request rates) records through one API.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wavnet/internal/sim"
)

// Sample is one timestamped observation.
type Sample struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series.
type Series struct {
	Name    string
	Samples []Sample
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.
func (s *Series) Add(at sim.Time, v float64) {
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns just the observation values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		vs[i] = smp.Value
	}
	return vs
}

// Summary returns summary statistics over all samples.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

// Between returns the sub-series with from <= At < to.
func (s *Series) Between(from, to sim.Time) *Series {
	out := NewSeries(s.Name)
	for _, smp := range s.Samples {
		if smp.At >= from && smp.At < to {
			out.Add(smp.At, smp.Value)
		}
	}
	return out
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Count              int
	Min, Max, Mean     float64
	P50, P95, P99      float64
	Stddev             float64
	Sum                float64
	MinIndex, MaxIndex int
}

// Summarize computes summary statistics. An empty input yields a zero
// Summary with Count == 0.
func Summarize(vs []float64) Summary {
	var sm Summary
	sm.Count = len(vs)
	if sm.Count == 0 {
		return sm
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	sm.Min, sm.Max = sorted[0], sorted[len(sorted)-1]
	for i, v := range vs {
		sm.Sum += v
		if v == sm.Min {
			sm.MinIndex = i
		}
		if v == sm.Max {
			sm.MaxIndex = i
		}
	}
	sm.Mean = sm.Sum / float64(sm.Count)
	var ss float64
	for _, v := range vs {
		d := v - sm.Mean
		ss += d * d
	}
	sm.Stddev = math.Sqrt(ss / float64(sm.Count))
	sm.P50 = percentileSorted(sorted, 0.50)
	sm.P95 = percentileSorted(sorted, 0.95)
	sm.P99 = percentileSorted(sorted, 0.99)
	return sm
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter is a monotonically increasing event counter with a byte/value
// total, handy for packets and bytes.
type Counter struct {
	N     uint64
	Total float64
}

// Inc adds one event carrying value v (e.g. packet size).
func (c *Counter) Inc(v float64) { c.N++; c.Total += v }

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values
// outside the range land in the under/overflow buckets.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []uint64
	Under     uint64
	Over      uint64
	CountN    uint64
	width     float64
	populated bool
}

// NewHistogram creates a histogram with n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n), width: (hi - lo) / float64(n)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.CountN++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		h.Buckets[int((v-h.Lo)/h.width)]++
	}
}

// String renders a compact textual histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	max := uint64(1)
	for _, c := range h.Buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Buckets {
		lo := h.Lo + float64(i)*h.width
		bar := strings.Repeat("#", int(40*c/max))
		fmt.Fprintf(&b, "%12.3f |%-40s %d\n", lo, bar, c)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "   underflow: %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "    overflow: %d\n", h.Over)
	}
	return b.String()
}

// Rate converts a byte count and a duration to megabits per second.
func Rate(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// MsFloat converts a duration to float milliseconds.
func MsFloat(d sim.Duration) float64 { return float64(d) / 1e6 }
