package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	c.Set("a", 3)
	c.Add("b", 2)
	c.Add("a", 1)
	if c.Get("a") != 4 || c.Get("b") != 2 || c.Get("absent") != 0 {
		t.Fatalf("values: %s", c)
	}
	if !c.Has("a") || c.Has("absent") {
		t.Fatal("Has")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("insertion order lost: %v", names)
	}
	if c.String() != "a=4 b=2" {
		t.Fatalf("render %q", c)
	}
}

func TestCounterSetMerge(t *testing.T) {
	a := NewCounterSet()
	a.Set("x", 1)
	b := NewCounterSet()
	b.Set("x", 2)
	b.Set("y", 5)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 5 {
		t.Fatalf("merge: %s", a)
	}
}

func TestCounterSetDelta(t *testing.T) {
	before := NewCounterSet()
	before.Set("lookups", 10)
	after := NewCounterSet()
	after.Set("lookups", 25)
	after.Set("connects", 4)
	d := after.Delta(before)
	if d.Get("lookups") != 15 || d.Get("connects") != 4 {
		t.Fatalf("delta: %s", d)
	}
	// Delta keeps after's name order and never mutates its inputs.
	if names := d.Names(); len(names) != 2 || names[0] != "lookups" {
		t.Fatalf("delta names: %v", names)
	}
	if before.Get("lookups") != 10 || after.Get("lookups") != 25 {
		t.Fatal("inputs mutated")
	}
}

func TestCounterSetDeltaClampsRegression(t *testing.T) {
	// A restarted source starts its totals over: the current value sits
	// below the snapshot. The delta must clamp to zero, not wrap uint64.
	before := NewCounterSet()
	before.Set("joins", 40)
	before.Set("pulses", 7)
	after := NewCounterSet()
	after.Set("joins", 3) // restarted and re-counted a little
	after.Set("pulses", 7)
	d := after.Delta(before)
	if d.Get("joins") != 0 {
		t.Fatalf("reset counter delta = %d, want 0 (clamped)", d.Get("joins"))
	}
	if d.Get("pulses") != 0 {
		t.Fatalf("unchanged counter delta = %d, want 0", d.Get("pulses"))
	}
}

// TestCounterSetDeltaConcurrent hammers one set from concurrent writers
// while readers snapshot Deltas, Merges and renders against it. The
// simulation itself is single-threaded, but every experiment driver now
// leans on Delta around measured phases (and the chaos harness reads
// counters from probe tickers), so CounterSet must hold up under the
// race detector — run with -race to verify.
func TestCounterSetDeltaConcurrent(t *testing.T) {
	c := NewCounterSet()
	base := NewCounterSet()
	base.Set("shared", 1)
	const writers, rounds = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Add("shared", 1)
				c.Add(string(rune('a'+i)), 2)
				c.Set(string(rune('A'+i)), uint64(j))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				d := c.Delta(base)
				if d.Get("shared") > writers*rounds {
					t.Errorf("delta over-counted: %d", d.Get("shared"))
					return
				}
				_ = d.String()
				agg := NewCounterSet()
				agg.Merge(c)
				_ = agg.Names()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != writers*rounds {
		t.Fatalf("lost updates: shared = %d, want %d", got, writers*rounds)
	}
	final := c.Delta(base)
	if got := final.Get("shared"); got != writers*rounds-1 {
		t.Fatalf("final delta = %d, want %d", got, writers*rounds-1)
	}
}
