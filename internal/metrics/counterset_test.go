package metrics

import "testing"

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	c.Set("a", 3)
	c.Add("b", 2)
	c.Add("a", 1)
	if c.Get("a") != 4 || c.Get("b") != 2 || c.Get("absent") != 0 {
		t.Fatalf("values: %s", c)
	}
	if !c.Has("a") || c.Has("absent") {
		t.Fatal("Has")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("insertion order lost: %v", names)
	}
	if c.String() != "a=4 b=2" {
		t.Fatalf("render %q", c)
	}
}

func TestCounterSetMerge(t *testing.T) {
	a := NewCounterSet()
	a.Set("x", 1)
	b := NewCounterSet()
	b.Set("x", 2)
	b.Set("y", 5)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 5 {
		t.Fatalf("merge: %s", a)
	}
}

func TestCounterSetDelta(t *testing.T) {
	before := NewCounterSet()
	before.Set("lookups", 10)
	after := NewCounterSet()
	after.Set("lookups", 25)
	after.Set("connects", 4)
	d := after.Delta(before)
	if d.Get("lookups") != 15 || d.Get("connects") != 4 {
		t.Fatalf("delta: %s", d)
	}
	// Delta keeps after's name order and never mutates its inputs.
	if names := d.Names(); len(names) != 2 || names[0] != "lookups" {
		t.Fatalf("delta names: %v", names)
	}
	if before.Get("lookups") != 10 || after.Get("lookups") != 25 {
		t.Fatal("inputs mutated")
	}
}
