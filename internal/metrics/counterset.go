package metrics

import (
	"fmt"
	"strings"
)

// CounterSet is an insertion-ordered collection of named event counters:
// the uniform export format for data-plane statistics (VPC isolation
// drops, per-VNI flood and suppression counts, quota drops), so
// experiments render and aggregate them through one API instead of
// poking subsystem struct fields.
type CounterSet struct {
	names []string
	vals  map[string]uint64
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]uint64)}
}

// Set assigns a counter's value, registering the name on first use.
func (c *CounterSet) Set(name string, v uint64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] = v
}

// Add increments a counter by v, registering the name on first use.
func (c *CounterSet) Add(name string, v uint64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += v
}

// Get returns a counter's value (0 when absent).
func (c *CounterSet) Get(name string) uint64 { return c.vals[name] }

// Has reports whether the counter was ever set.
func (c *CounterSet) Has(name string) bool {
	_, ok := c.vals[name]
	return ok
}

// Names returns the counter names in insertion order.
func (c *CounterSet) Names() []string { return append([]string(nil), c.names...) }

// Delta returns a new set holding, for every counter of c, its value
// minus prev's (0 when prev never saw the name). Experiments snapshot a
// CounterSet before a measured phase and Delta it afterwards to report
// only the phase's activity.
func (c *CounterSet) Delta(prev *CounterSet) *CounterSet {
	out := NewCounterSet()
	for _, name := range c.names {
		out.Set(name, c.vals[name]-prev.Get(name))
	}
	return out
}

// Merge adds every counter of other into c (summing shared names).
func (c *CounterSet) Merge(other *CounterSet) {
	for _, name := range other.names {
		c.Add(name, other.vals[name])
	}
}

// String renders "name=value" pairs in insertion order.
func (c *CounterSet) String() string {
	var b strings.Builder
	for i, name := range c.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.vals[name])
	}
	return b.String()
}
