package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterSet is an insertion-ordered collection of named event counters:
// the uniform export format for data-plane statistics (VPC isolation
// drops, per-VNI flood and suppression counts, quota drops), so
// experiments render and aggregate them through one API instead of
// poking subsystem struct fields. It is safe for concurrent use: the
// simulation itself is single-threaded, but experiment drivers and the
// chaos harness snapshot and Delta sets from helper goroutines.
//
// Every counter is a fixed *uint64 slot updated atomically; the mutex
// guards only name registration and iteration order. Hot paths resolve
// a slot once with Handle and bump it with atomic.AddUint64 — no lock,
// no map probe, no allocation per increment — while Get/Delta/String
// keep reading consistent snapshots of the same slots.
type CounterSet struct {
	mu    sync.RWMutex
	names []string
	vals  map[string]*uint64
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]*uint64)}
}

// slot returns the counter's value cell, registering the name on first
// use.
func (c *CounterSet) slot(name string) *uint64 {
	c.mu.RLock()
	p, ok := c.vals[name]
	c.mu.RUnlock()
	if ok {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.vals[name]; ok {
		return p
	}
	p = new(uint64)
	c.names = append(c.names, name)
	c.vals[name] = p
	return p
}

// Handle returns the counter's live value cell for lock-free updates
// from a hot path: resolve once, then atomic.AddUint64(h, n). The cell
// stays valid for the set's lifetime and is visible to every reader.
func (c *CounterSet) Handle(name string) *uint64 { return c.slot(name) }

// Set assigns a counter's value, registering the name on first use.
func (c *CounterSet) Set(name string, v uint64) {
	atomic.StoreUint64(c.slot(name), v)
}

// Add increments a counter by v, registering the name on first use.
func (c *CounterSet) Add(name string, v uint64) {
	atomic.AddUint64(c.slot(name), v)
}

// Get returns a counter's value (0 when absent).
func (c *CounterSet) Get(name string) uint64 {
	c.mu.RLock()
	p, ok := c.vals[name]
	c.mu.RUnlock()
	if !ok {
		return 0
	}
	return atomic.LoadUint64(p)
}

// Has reports whether the counter was ever set.
func (c *CounterSet) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.vals[name]
	return ok
}

// Names returns the counter names in insertion order.
func (c *CounterSet) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.names...)
}

// snapshot copies names and values under the read lock.
func (c *CounterSet) snapshot() ([]string, map[string]uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := append([]string(nil), c.names...)
	vals := make(map[string]uint64, len(c.vals))
	for k, p := range c.vals {
		vals[k] = atomic.LoadUint64(p)
	}
	return names, vals
}

// Delta returns a new set holding, for every counter of c, its value
// minus prev's (0 when prev never saw the name). Experiments snapshot a
// CounterSet before a measured phase and Delta it afterwards to report
// only the phase's activity. A counter that went backwards — a
// restarted broker or host starts its totals over from zero — clamps
// to zero instead of wrapping uint64 into a garbage delta.
func (c *CounterSet) Delta(prev *CounterSet) *CounterSet {
	names, vals := c.snapshot()
	out := NewCounterSet()
	for _, name := range names {
		v, p := vals[name], prev.Get(name)
		if v < p {
			v = p
		}
		out.Set(name, v-p)
	}
	return out
}

// Merge adds every counter of other into c (summing shared names).
func (c *CounterSet) Merge(other *CounterSet) {
	names, vals := other.snapshot()
	for _, name := range names {
		c.Add(name, vals[name])
	}
}

// String renders "name=value" pairs in insertion order.
func (c *CounterSet) String() string {
	names, vals := c.snapshot()
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, vals[name])
	}
	return b.String()
}
