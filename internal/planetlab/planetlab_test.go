package planetlab

import (
	"testing"
	"time"

	"wavnet/internal/grouping"
	"wavnet/internal/sim"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(1, Config{Hosts: 400})
	if d.N() != 400 {
		t.Fatalf("hosts = %d", d.N())
	}
	// Symmetry, positivity, zero diagonal.
	for i := 0; i < d.N(); i++ {
		if d.RTT[i][i] != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := i + 1; j < d.N(); j++ {
			if d.RTT[i][j] != d.RTT[j][i] {
				t.Fatal("asymmetric matrix")
			}
			if d.RTT[i][j] <= 0 {
				t.Fatal("non-positive RTT")
			}
		}
	}
}

func TestLatencyDistribution(t *testing.T) {
	// The paper's Figure 12: most pairs below 1 s, a visible tail up to
	// multiple seconds from overloaded nodes.
	d := Generate(2, Config{Hosts: 400})
	total, under1s, over1s, over10s := 0, 0, 0, 0
	var min, max sim.Duration = 1 << 62, 0
	d.Pairs(func(i, j int, rtt sim.Duration) {
		total++
		if rtt < time.Second {
			under1s++
		} else {
			over1s++
		}
		if rtt >= 10*time.Second {
			over10s++
		}
		if rtt < min {
			min = rtt
		}
		if rtt > max {
			max = rtt
		}
	})
	if total != 400*399/2 {
		t.Fatalf("pairs = %d", total)
	}
	if frac := float64(under1s) / float64(total); frac < 0.85 {
		t.Fatalf("only %.2f of pairs under 1 s", frac)
	}
	if over1s == 0 {
		t.Fatal("no heavy tail: Figure 12(a) needs multi-second outliers")
	}
	if max < 500*time.Millisecond {
		t.Fatalf("max RTT %v too small for a PlanetLab-like tail", max)
	}
	if min > 100*time.Millisecond {
		t.Fatalf("min RTT %v: regional clusters missing", min)
	}
	if over10s > total/100 {
		t.Fatalf("tail too fat: %d pairs above 10s", over10s)
	}
}

func TestRegionalLocality(t *testing.T) {
	d := Generate(3, Config{Hosts: 300})
	var intra, inter sim.Duration
	var nIntra, nInter int
	d.Pairs(func(i, j int, rtt sim.Duration) {
		if d.Hosts[i].Overloaded || d.Hosts[j].Overloaded {
			return
		}
		if d.Hosts[i].Region == d.Hosts[j].Region {
			intra += rtt
			nIntra++
		} else {
			inter += rtt
			nInter++
		}
	})
	if nIntra == 0 || nInter == 0 {
		t.Fatal("missing intra or inter pairs")
	}
	if intra/sim.Duration(nIntra) >= inter/sim.Duration(nInter) {
		t.Fatal("intra-region latency not below inter-region latency")
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(42, Config{Hosts: 100})
	b := Generate(42, Config{Hosts: 100})
	for i := range a.RTT {
		for j := range a.RTT[i] {
			if a.RTT[i][j] != b.RTT[i][j] {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
	c := Generate(43, Config{Hosts: 100})
	same := true
	for i := range a.RTT {
		for j := range a.RTT[i] {
			if a.RTT[i][j] != c.RTT[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestGroupingOnDataset(t *testing.T) {
	// Figure 13's premise: locality-sensitive groups on this dataset
	// must be far tighter than the global mean.
	d := Generate(4, Config{Hosts: 400})
	var sum sim.Duration
	n := 0
	d.Pairs(func(i, j int, rtt sim.Duration) { sum += rtt; n++ })
	globalMean := sum / sim.Duration(n)
	for _, k := range []int{8, 16, 32} {
		g, err := grouping.LocalitySensitive(d.RTT, k)
		if err != nil {
			t.Fatal(err)
		}
		mean := grouping.MeanLatency(d.RTT, g)
		if mean > globalMean/3 {
			t.Fatalf("k=%d group mean %v not far below global %v", k, mean, globalMean)
		}
	}
}
