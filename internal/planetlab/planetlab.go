// Package planetlab generates the synthetic stand-in for the paper's
// PlanetLab measurements (Figures 12–14): a 400-host matrix of pairwise
// RTTs with the structure real PlanetLab data shows — regional clusters
// with millisecond-scale internal latencies, inter-continental distances
// of tens to hundreds of milliseconds, and a heavy tail of
// multi-second outliers from overloaded nodes.
//
// The paper measured ~80 000 of the 159 600 directed pairs and relied on
// latency symmetry; we generate the symmetric matrix directly.
package planetlab

import (
	"math"
	"math/rand"

	"wavnet/internal/sim"
)

// Region is a geographic cluster of hosts.
type Region struct {
	Name     string
	Lat, Lon float64 // degrees
	Weight   float64 // share of hosts placed here
}

// DefaultRegions approximates the PlanetLab deployment of 2011:
// concentrated in North America and Europe, with Asia-Pacific and
// South-American sites.
func DefaultRegions() []Region {
	return []Region{
		{"us-east", 40.7, -74.0, 0.22},
		{"us-west", 37.4, -122.1, 0.16},
		{"europe-west", 48.9, 2.3, 0.20},
		{"europe-north", 59.3, 18.1, 0.08},
		{"asia-east", 35.7, 139.7, 0.12},
		{"asia-south", 22.3, 114.2, 0.08},
		{"oceania", -33.9, 151.2, 0.04},
		{"south-america", -23.5, -46.6, 0.05},
		{"canada", 43.7, -79.4, 0.05},
	}
}

// Config tunes the generator.
type Config struct {
	Hosts   int      // number of hosts (default 400)
	Regions []Region // default DefaultRegions
	// BaseMS is the fixed per-path overhead in milliseconds (default 4).
	BaseMS float64
	// MSPerKm converts great-circle distance to propagation delay;
	// 0.015 ms/km ≈ 2/3 c in fiber with typical route stretch (default).
	MSPerKm float64
	// IntraRegionMS is the mean latency between hosts of one region
	// (default 12).
	IntraRegionMS float64
	// OverloadFrac is the fraction of hosts that are overloaded and add
	// large queueing delays to every path touching them (default 0.04,
	// producing Figure 12(a)'s multi-second outliers).
	OverloadFrac float64
	// OverloadMaxMS bounds the overload delay (default 5000 ms).
	OverloadMaxMS float64
	// JitterFrac randomizes each pair by ±frac (default 0.2).
	JitterFrac float64
}

func (c Config) withDefaults() Config {
	if c.Hosts <= 0 {
		c.Hosts = 400
	}
	if c.Regions == nil {
		c.Regions = DefaultRegions()
	}
	if c.BaseMS <= 0 {
		c.BaseMS = 4
	}
	if c.MSPerKm <= 0 {
		c.MSPerKm = 0.015
	}
	if c.IntraRegionMS <= 0 {
		c.IntraRegionMS = 12
	}
	if c.OverloadFrac <= 0 {
		c.OverloadFrac = 0.04
	}
	if c.OverloadMaxMS <= 0 {
		c.OverloadMaxMS = 5000
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.2
	}
	return c
}

// HostInfo describes one generated host.
type HostInfo struct {
	Index      int
	Region     string
	Lat, Lon   float64
	Overloaded bool
	// OverloadMS is this host's contribution to every path it is on.
	OverloadMS float64
}

// Dataset is the generated latency universe.
type Dataset struct {
	Hosts []HostInfo
	// RTT[i][j] is the symmetric round-trip latency between hosts.
	RTT [][]sim.Duration
}

// N returns the number of hosts.
func (d *Dataset) N() int { return len(d.Hosts) }

// Pairs invokes fn for every unordered host pair (i<j).
func (d *Dataset) Pairs(fn func(i, j int, rtt sim.Duration)) {
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			fn(i, j, d.RTT[i][j])
		}
	}
}

// Generate builds a dataset from a seed.
func Generate(seed int64, cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}

	// Place hosts.
	for i := 0; i < cfg.Hosts; i++ {
		r := pickRegion(rng, cfg.Regions)
		// Scatter around the region center (~±3° ≈ metro+national span).
		h := HostInfo{
			Index:  i,
			Region: r.Name,
			Lat:    r.Lat + rng.NormFloat64()*1.5,
			Lon:    r.Lon + rng.NormFloat64()*2.0,
		}
		if rng.Float64() < cfg.OverloadFrac {
			h.Overloaded = true
			// Log-uniform overload severity between 100 ms and the cap:
			// a saturated PlanetLab node delays every probe it answers.
			lo, hi := math.Log(100), math.Log(cfg.OverloadMaxMS/2)
			h.OverloadMS = math.Exp(lo + rng.Float64()*(hi-lo))
		}
		d.Hosts = append(d.Hosts, h)
	}

	// Pairwise RTTs.
	n := cfg.Hosts
	d.RTT = make([][]sim.Duration, n)
	for i := range d.RTT {
		d.RTT[i] = make([]sim.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := d.Hosts[i], d.Hosts[j]
			var ms float64
			if a.Region == b.Region {
				ms = cfg.BaseMS + rng.ExpFloat64()*cfg.IntraRegionMS
			} else {
				km := greatCircleKm(a.Lat, a.Lon, b.Lat, b.Lon)
				ms = cfg.BaseMS + km*cfg.MSPerKm
			}
			ms *= 1 + (rng.Float64()*2-1)*cfg.JitterFrac
			ms += a.OverloadMS + b.OverloadMS
			if ms < 0.2 {
				ms = 0.2
			}
			rtt := sim.Duration(ms * float64(sim.Millisecond))
			d.RTT[i][j] = rtt
			d.RTT[j][i] = rtt
		}
	}
	return d
}

func pickRegion(rng *rand.Rand, regions []Region) Region {
	var total float64
	for _, r := range regions {
		total += r.Weight
	}
	x := rng.Float64() * total
	for _, r := range regions {
		x -= r.Weight
		if x <= 0 {
			return r
		}
	}
	return regions[len(regions)-1]
}

// greatCircleKm computes the haversine distance.
func greatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}
