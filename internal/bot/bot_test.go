package bot

import (
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// cluster is a master plus n workers on one bridged segment.
type cluster struct {
	eng     *sim.Engine
	master  *ipstack.Stack
	workers []*Worker
	wstacks []*ipstack.Stack
	addrs   []netsim.Addr
}

// buildCluster wires the segment with the given per-frame bridge latency
// and per-worker speeds.
func buildCluster(t *testing.T, latency sim.Duration, speeds ...float64) *cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	br := ether.NewBridge(eng, "br0", latency)
	c := &cluster{eng: eng}
	c.master = ipstack.New(eng, "master", br.AddPort("m"), ether.SeqMAC(1),
		netsim.MustParseIP("10.7.0.1"), ipstack.Config{})
	for i, sp := range speeds {
		st := ipstack.New(eng, "worker", br.AddPort("w"), ether.SeqMAC(uint32(i+2)),
			netsim.MakeIP(10, 7, 0, byte(10+i)), ipstack.Config{})
		w, err := StartWorker(st, 9000, sp)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
		c.wstacks = append(c.wstacks, st)
		c.addrs = append(c.addrs, netsim.Addr{IP: st.IP(), Port: 9000})
	}
	return c
}

// execute runs the bag to completion and returns the run.
func (c *cluster) execute(t *testing.T, tasks []Task, opts Options, horizon sim.Duration) *Run {
	t.Helper()
	var run *Run
	var err error
	c.eng.Spawn("bag", func(p *sim.Proc) {
		run, err = Execute(p, c.master, c.addrs, tasks, opts)
	})
	c.eng.RunFor(horizon)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if run == nil {
		t.Fatal("bag did not finish within the horizon")
	}
	return run
}

func TestSingleWorkerRunsSequentially(t *testing.T) {
	c := buildCluster(t, 10*time.Microsecond, 1.0)
	const n = 8
	compute := 2 * time.Second
	run := c.execute(t, UniformTasks(n, 1024, 1024, compute), Options{}, time.Hour)
	if len(run.Results) != n {
		t.Fatalf("completed %d tasks, want %d", len(run.Results), n)
	}
	if run.Makespan() < n*compute {
		t.Fatalf("makespan %v below serial compute %v", run.Makespan(), n*compute)
	}
	if c.workers[0].TasksDone != n {
		t.Fatalf("worker did %d tasks, want %d", c.workers[0].TasksDone, n)
	}
}

func TestWorkersScaleNearLinearly(t *testing.T) {
	compute := 4 * time.Second
	const n = 16
	c1 := buildCluster(t, 10*time.Microsecond, 1.0)
	serial := c1.execute(t, UniformTasks(n, 256, 256, compute), Options{}, time.Hour).Makespan()
	c4 := buildCluster(t, 10*time.Microsecond, 1, 1, 1, 1)
	par := c4.execute(t, UniformTasks(n, 256, 256, compute), Options{}, time.Hour).Makespan()
	speedup := serial.Seconds() / par.Seconds()
	if speedup < 3.5 || speedup > 4.2 {
		t.Fatalf("speedup %.2f with 4 workers, want ≈4 (serial %v, parallel %v)", speedup, serial, par)
	}
}

func TestFasterWorkerTakesMoreTasks(t *testing.T) {
	c := buildCluster(t, 10*time.Microsecond, 4.0, 1.0)
	run := c.execute(t, UniformTasks(20, 512, 512, 2*time.Second), Options{}, time.Hour)
	per := run.PerWorker()
	fast, slow := per[c.addrs[0]], per[c.addrs[1]]
	if fast <= slow {
		t.Fatalf("fast worker did %d tasks, slow %d; pull scheduling should favour the fast one", fast, slow)
	}
	if fast+slow != 20 {
		t.Fatalf("task accounting: %d+%d != 20", fast, slow)
	}
}

func TestTransferDominatedBagFeelsTheNetwork(t *testing.T) {
	// Same bag, same compute, but the far cluster's bridge adds 40 ms
	// per frame: with 4 MB of input per task the transfer dominates.
	near := buildCluster(t, 10*time.Microsecond, 1.0)
	far := buildCluster(t, 40*time.Millisecond, 1.0)
	bag := UniformTasks(4, 4<<20, 1024, 100*time.Millisecond)
	nearMk := near.execute(t, bag, Options{}, 4*time.Hour).Makespan()
	farMk := far.execute(t, bag, Options{}, 4*time.Hour).Makespan()
	if farMk < 4*nearMk {
		t.Fatalf("makespan near=%v far=%v; expected far ≫ near", nearMk, farMk)
	}
}

func TestLanesOverlapTransferAndCompute(t *testing.T) {
	// One worker, two lanes: while lane A computes, lane B transfers.
	// With transfer ≈ compute the overlap shortens the makespan.
	bag := UniformTasks(8, 2<<20, 1024, 500*time.Millisecond)
	c1 := buildCluster(t, 2*time.Millisecond, 1.0)
	oneLane := c1.execute(t, bag, Options{LanesPerWorker: 1}, time.Hour).Makespan()
	c2 := buildCluster(t, 2*time.Millisecond, 1.0)
	twoLanes := c2.execute(t, bag, Options{LanesPerWorker: 2}, time.Hour).Makespan()
	if twoLanes >= oneLane {
		t.Fatalf("two lanes (%v) not faster than one (%v)", twoLanes, oneLane)
	}
}

func TestWorkerDeathRequeuesTasks(t *testing.T) {
	c := buildCluster(t, 10*time.Microsecond, 1.0, 1.0)
	// Detach worker 0's NIC mid-run: its in-flight task stalls, TCP
	// times out, and the task must be requeued to worker 1.
	c.eng.Schedule(3*time.Second, func() {
		c.wstacks[0].SetNIC(nil)
	})
	run := c.execute(t, UniformTasks(10, 64<<10, 1024, 2*time.Second),
		Options{TaskTimeout: 30 * time.Second}, 4*time.Hour)
	if len(run.Results) != 10 {
		t.Fatalf("completed %d tasks, want 10", len(run.Results))
	}
	if run.Requeues == 0 {
		t.Fatal("no task was requeued despite the worker failure")
	}
	per := run.PerWorker()
	if per[c.addrs[1]] == 0 {
		t.Fatal("surviving worker did nothing")
	}
	retried := 0
	for _, r := range run.Results {
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no result records a retry")
	}
}

func TestExecuteValidatesInput(t *testing.T) {
	c := buildCluster(t, 10*time.Microsecond, 1.0)
	c.eng.Spawn("bad", func(p *sim.Proc) {
		if _, err := Execute(p, c.master, nil, UniformTasks(1, 1, 1, time.Second), Options{}); err == nil {
			t.Error("no error for empty worker set")
		}
		if _, err := Execute(p, c.master, c.addrs, nil, Options{}); err == nil {
			t.Error("no error for empty bag")
		}
	})
	c.eng.RunFor(time.Second)
}

func TestWorkerSpeedValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	br := ether.NewBridge(eng, "br0", 0)
	st := ipstack.New(eng, "w", br.AddPort("w"), ether.SeqMAC(1), netsim.MustParseIP("10.7.0.2"), ipstack.Config{})
	if _, err := StartWorker(st, 9000, 0); err == nil {
		t.Fatal("zero speed accepted")
	}
	if _, err := StartWorker(st, 9000, -1); err == nil {
		t.Fatal("negative speed accepted")
	}
}
