// Package bot is a Bag-of-Tasks runtime over WAVNet's virtual cluster —
// the paper's motivating workload class ("users who want multiple
// non-dedicated computing resources to complete computation-intensive
// jobs, e.g. Bag-of-Task applications", §I). A master streams task
// inputs to workers over virtual TCP, workers compute for a simulated
// duration scaled by their speed, and results stream back; the makespan
// therefore reflects both the cluster's compute capacity and the
// quality of the network between master and workers — which is what the
// locality-sensitive grouping strategy optimizes.
package bot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Task is one unit of work: ship InputBytes to a worker, compute for
// Compute (at speed 1.0), ship OutputBytes back.
type Task struct {
	ID          int
	InputBytes  int
	OutputBytes int
	Compute     sim.Duration
}

// UniformTasks builds n identical tasks.
func UniformTasks(n, inputBytes, outputBytes int, compute sim.Duration) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{ID: i, InputBytes: inputBytes, OutputBytes: outputBytes, Compute: compute}
	}
	return ts
}

// taskHeader is the master->worker frame: id, input length, compute
// nanoseconds, output length.
const taskHeaderLen = 8 + 4 + 8 + 4

// resultHeaderLen is the worker->master frame: id, output length.
const resultHeaderLen = 8 + 4

// Worker executes tasks for any master that connects. One worker serves
// connections sequentially per accepted connection but accepts several
// concurrent masters (or dispatcher lanes).
type Worker struct {
	stack *ipstack.Stack
	lis   *ipstack.Listener
	speed float64

	// Stats.
	TasksDone    uint64
	BytesIn      uint64
	BytesOut     uint64
	ComputeSpent sim.Duration
}

// StartWorker runs a worker on st:port with the given relative speed
// (1.0 = reference machine; 2.0 halves compute time).
func StartWorker(st *ipstack.Stack, port uint16, speed float64) (*Worker, error) {
	if speed <= 0 {
		return nil, errors.New("bot: worker speed must be positive")
	}
	lis, err := st.Listen(port)
	if err != nil {
		return nil, err
	}
	w := &Worker{stack: st, lis: lis, speed: speed}
	st.Engine().Spawn("bot-worker-accept", func(p *sim.Proc) {
		for {
			conn, err := lis.Accept(p)
			if err != nil {
				return
			}
			st.Engine().Spawn("bot-worker-conn", func(cp *sim.Proc) {
				defer conn.Close()
				w.serve(cp, conn)
			})
		}
	})
	return w, nil
}

// Stop closes the worker's listener (in-flight connections finish).
func (w *Worker) Stop() { w.lis.Close() }

// serve executes tasks arriving on one connection until it closes.
func (w *Worker) serve(p *sim.Proc, conn *ipstack.Conn) {
	hdr := make([]byte, taskHeaderLen)
	for {
		if err := readFull(p, conn, hdr); err != nil {
			return
		}
		id := binary.BigEndian.Uint64(hdr[0:])
		inLen := int(binary.BigEndian.Uint32(hdr[8:]))
		compute := sim.Duration(binary.BigEndian.Uint64(hdr[12:]))
		outLen := int(binary.BigEndian.Uint32(hdr[20:]))

		if err := discard(p, conn, inLen); err != nil {
			return
		}
		w.BytesIn += uint64(inLen)

		scaled := sim.Duration(float64(compute) / w.speed)
		if scaled > 0 {
			p.Sleep(scaled)
		}
		w.ComputeSpent += scaled

		resp := make([]byte, resultHeaderLen)
		binary.BigEndian.PutUint64(resp[0:], id)
		binary.BigEndian.PutUint32(resp[8:], uint32(outLen))
		if _, err := conn.Write(p, resp); err != nil {
			return
		}
		if err := writeZeros(p, conn, outLen); err != nil {
			return
		}
		w.BytesOut += uint64(outLen)
		w.TasksDone++
	}
}

// TaskResult records one completed task.
type TaskResult struct {
	Task     Task
	Worker   netsim.Addr
	Started  sim.Time
	Finished sim.Time
	// Attempts counts dispatch tries (>1 means the task was requeued
	// after a worker failure).
	Attempts int
}

// Run is a completed bag execution.
type Run struct {
	Results  []TaskResult
	Start    sim.Time
	End      sim.Time
	Requeues int
}

// Makespan is the wall-clock duration of the whole bag.
func (r *Run) Makespan() sim.Duration { return r.End.Sub(r.Start) }

// PerWorker tallies completed tasks by worker address.
func (r *Run) PerWorker() map[netsim.Addr]int {
	m := make(map[netsim.Addr]int)
	for _, res := range r.Results {
		m[res.Worker]++
	}
	return m
}

// Options tunes Execute.
type Options struct {
	// LanesPerWorker is the number of concurrent task streams per worker
	// (default 1; >1 overlaps a lane's transfer with another's compute).
	LanesPerWorker int
	// MaxAttempts bounds per-task dispatch attempts across worker
	// failures (default 3).
	MaxAttempts int
	// TaskTimeout aborts a dispatch whose result has not arrived in time
	// and requeues the task. Without it a worker that dies *after*
	// acknowledging the request leaves a half-open connection that TCP
	// alone never detects (there is nothing in flight to retransmit).
	// Zero disables the watchdog.
	TaskTimeout sim.Duration
}

func (o Options) withDefaults() Options {
	if o.LanesPerWorker <= 0 {
		o.LanesPerWorker = 1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	return o
}

// Execute runs the bag on the given workers from master, blocking the
// calling process until every task completes (or becomes undeliverable).
// Scheduling is pull-based: each worker lane takes the next pending task,
// so faster or nearer workers naturally take more of the bag.
func Execute(p *sim.Proc, master *ipstack.Stack, workers []netsim.Addr, tasks []Task, opts Options) (*Run, error) {
	if len(workers) == 0 {
		return nil, errors.New("bot: no workers")
	}
	if len(tasks) == 0 {
		return nil, errors.New("bot: empty bag")
	}
	opts = opts.withDefaults()
	eng := master.Engine()

	type pending struct {
		task     Task
		attempts int
	}
	queue := make([]pending, len(tasks))
	for i, t := range tasks {
		queue[i] = pending{task: t}
	}
	run := &Run{Start: eng.Now()}
	var failed []Task
	outstanding := 0
	lanes := 0
	var wake sim.WaitQueue

	take := func() (pending, bool) {
		if len(queue) == 0 {
			return pending{}, false
		}
		t := queue[0]
		queue = queue[1:]
		outstanding++
		return t, true
	}
	finish := func(t pending, w netsim.Addr, started sim.Time, err error) {
		outstanding--
		if err == nil {
			run.Results = append(run.Results, TaskResult{
				Task: t.task, Worker: w, Started: started,
				Finished: eng.Now(), Attempts: t.attempts + 1,
			})
		} else if t.attempts+1 < opts.MaxAttempts {
			t.attempts++
			run.Requeues++
			queue = append(queue, t)
		} else {
			failed = append(failed, t.task)
		}
		wake.Broadcast()
	}

	for _, w := range workers {
		for lane := 0; lane < opts.LanesPerWorker; lane++ {
			w := w
			lanes++
			eng.Spawn(fmt.Sprintf("bot-lane-%s", w), func(lp *sim.Proc) {
				defer func() {
					lanes--
					wake.Broadcast()
				}()
				var conn *ipstack.Conn
				defer func() {
					if conn != nil {
						conn.Close()
					}
				}()
				for {
					t, ok := take()
					if !ok {
						// Tasks in flight elsewhere may still be requeued
						// (worker failure); park until the bag settles.
						if outstanding == 0 {
							return
						}
						if !wake.Wait(lp) {
							return
						}
						continue
					}
					started := lp.Now()
					if conn == nil {
						c, err := master.Dial(lp, w)
						if err != nil {
							finish(t, w, started, err)
							return // this worker is unreachable; stop its lane
						}
						conn = c
					}
					var watchdog *sim.Timer
					if opts.TaskTimeout > 0 {
						c := conn
						watchdog = sim.NewTimer(eng, func() { c.Abort() })
						watchdog.Reset(opts.TaskTimeout)
					}
					err := dispatch(lp, conn, t.task)
					if watchdog != nil {
						watchdog.Stop()
					}
					if err != nil {
						conn.Abort()
						conn = nil
						finish(t, w, started, err)
						return
					}
					finish(t, w, started, nil)
				}
			})
		}
	}

	for outstanding > 0 || (len(queue) > 0 && lanes > 0) {
		if !wake.Wait(p) {
			return nil, errors.New("bot: interrupted")
		}
	}
	run.End = eng.Now()
	sort.Slice(run.Results, func(i, j int) bool { return run.Results[i].Task.ID < run.Results[j].Task.ID })
	if len(failed) > 0 || len(run.Results) != len(tasks) {
		return run, fmt.Errorf("bot: %d of %d tasks undeliverable", len(tasks)-len(run.Results), len(tasks))
	}
	return run, nil
}

// dispatch ships one task over an established connection and waits for
// its result.
func dispatch(p *sim.Proc, conn *ipstack.Conn, t Task) error {
	hdr := make([]byte, taskHeaderLen)
	binary.BigEndian.PutUint64(hdr[0:], uint64(t.ID))
	binary.BigEndian.PutUint32(hdr[8:], uint32(t.InputBytes))
	binary.BigEndian.PutUint64(hdr[12:], uint64(t.Compute))
	binary.BigEndian.PutUint32(hdr[20:], uint32(t.OutputBytes))
	if _, err := conn.Write(p, hdr); err != nil {
		return err
	}
	if err := writeZeros(p, conn, t.InputBytes); err != nil {
		return err
	}
	resp := make([]byte, resultHeaderLen)
	if err := readFull(p, conn, resp); err != nil {
		return err
	}
	if got := binary.BigEndian.Uint64(resp[0:]); got != uint64(t.ID) {
		return fmt.Errorf("bot: result for task %d, expected %d", got, t.ID)
	}
	outLen := int(binary.BigEndian.Uint32(resp[8:]))
	return discard(p, conn, outLen)
}

// ---- stream helpers ----

func readFull(p *sim.Proc, conn *ipstack.Conn, buf []byte) error {
	for off := 0; off < len(buf); {
		n, err := conn.Read(p, buf[off:])
		off += n
		if err != nil {
			if err == io.EOF && off == len(buf) {
				return nil
			}
			return err
		}
	}
	return nil
}

func discard(p *sim.Proc, conn *ipstack.Conn, n int) error {
	buf := make([]byte, 32<<10)
	for n > 0 {
		want := n
		if want > len(buf) {
			want = len(buf)
		}
		got, err := conn.Read(p, buf[:want])
		n -= got
		if err != nil {
			if err == io.EOF && n <= 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

func writeZeros(p *sim.Proc, conn *ipstack.Conn, n int) error {
	buf := make([]byte, 32<<10)
	for n > 0 {
		want := n
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := conn.Write(p, buf[:want]); err != nil {
			return err
		}
		n -= want
	}
	return nil
}
