// Chaos harness: deterministic fault injection against the sim clock.
//
// A fault schedule is a list of (offset, operation) pairs scheduled on
// the world's engine when Inject is called; because the engine is a
// deterministic discrete-event simulator, a given seed and schedule
// always produce the same interleaving of faults and protocol traffic.
// The injector records every execution (virtual time, outcome) so tests
// can assert both that the faults fired and that the system converged
// afterwards.

package scenario

import (
	"fmt"

	"wavnet/internal/sim"
)

// Fault is one scripted fault: Op runs against the world After the
// schedule's injection time.
type Fault struct {
	After sim.Duration
	Name  string
	Op    func(w *World) error
}

// KillBrokerAt schedules a broker crash (see World.KillBroker).
func KillBrokerAt(after sim.Duration, broker string) Fault {
	return Fault{After: after, Name: "kill-broker " + broker,
		Op: func(w *World) error { return w.KillBroker(broker) }}
}

// RestartBrokerAt schedules a crashed broker's restart with empty state
// (see World.RestartBroker).
func RestartBrokerAt(after sim.Duration, broker string) Fault {
	return Fault{After: after, Name: "restart-broker " + broker,
		Op: func(w *World) error { _, err := w.RestartBroker(broker); return err }}
}

// PartitionAt schedules a WAN partition between two endpoints (broker
// names or machine keys).
func PartitionAt(after sim.Duration, a, b string) Fault {
	return Fault{After: after, Name: fmt.Sprintf("partition %s|%s", a, b),
		Op: func(w *World) error { return w.Partition(a, b) }}
}

// HealAt schedules the repair of a WAN partition.
func HealAt(after sim.Duration, a, b string) Fault {
	return Fault{After: after, Name: fmt.Sprintf("heal %s|%s", a, b),
		Op: func(w *World) error { return w.Heal(a, b) }}
}

// FaultRecord is one executed fault: when it ran (virtual time) and how
// it went.
type FaultRecord struct {
	At   sim.Time
	Name string
	Err  error
}

func (r FaultRecord) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%v %s: %v", r.At, r.Name, r.Err)
	}
	return fmt.Sprintf("%v %s", r.At, r.Name)
}

// FaultInjector tracks a running schedule.
type FaultInjector struct {
	log     []FaultRecord
	pending int
}

// Inject schedules a fault script on the world's engine. Offsets are
// relative to the injection time; faults with equal offsets run in
// argument order (the engine's tie-break is FIFO). The injector only
// schedules — the caller drives the engine as usual.
func (w *World) Inject(faults ...Fault) *FaultInjector {
	fi := &FaultInjector{}
	for _, f := range faults {
		f := f
		fi.pending++
		w.Eng.Schedule(f.After, func() {
			err := f.Op(w)
			fi.log = append(fi.log, FaultRecord{At: w.Eng.Now(), Name: f.Name, Err: err})
			fi.pending--
		})
	}
	return fi
}

// Done reports whether every scheduled fault has executed.
func (fi *FaultInjector) Done() bool { return fi.pending == 0 }

// Log returns the executed faults in execution order.
func (fi *FaultInjector) Log() []FaultRecord {
	return append([]FaultRecord(nil), fi.log...)
}

// Failures returns the faults whose operation returned an error — a
// well-formed chaos test asserts this is empty.
func (fi *FaultInjector) Failures() []FaultRecord {
	var out []FaultRecord
	for _, r := range fi.log {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
