package scenario

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/obs"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestObsScrapeWorld brings a small mesh up and checks the world-wide
// scrape: every joined host contributes labeled data-plane series, the
// broker contributes control-plane series, and ScrapeCheck passes.
func TestObsScrapeWorld(t *testing.T) {
	w, err := Build(61, EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	r := w.Scrape()
	if r.Len() == 0 {
		t.Fatal("scrape returned an empty registry")
	}
	// Each of the three hosts meshed with the other two.
	for _, key := range []string{"pc00", "pc01", "pc02"} {
		l := obs.Labels{Host: key, Broker: PrimaryBroker}
		g, ok := r.GaugeValue("tunnels", l)
		if !ok {
			t.Fatalf("%s has no tunnels gauge; scrape:\n%s", key, r)
		}
		if g != 2 {
			t.Fatalf("%s tunnels gauge = %v, want 2", key, g)
		}
	}
	// The primary broker registered all three hosts.
	if v, ok := r.CounterValue("joins", obs.Labels{Broker: PrimaryBroker}); !ok || v < 3 {
		t.Fatalf("broker joins = %d (present=%v), want >= 3", v, ok)
	}
	if err := w.ScrapeCheck(); err != nil {
		t.Fatal(err)
	}
	// The text render carries the labels.
	if s := r.String(); !strings.Contains(s, "tunnels{broker=rdv,host=pc00}") {
		t.Fatalf("render lacks labeled series:\n%s", s)
	}
}

// TestObsScrapeTenantLabels applies a tenant spec and checks scraped
// member series carry {tenant, net, broker, host} labels intact.
func TestObsScrapeTenantLabels(t *testing.T) {
	w, err := Build(62, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "red", CIDR: "10.90.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	r := w.Scrape()
	l := obs.Labels{Tenant: "acme", Net: "red", Broker: PrimaryBroker, Host: "pc00"}
	if _, ok := r.CounterValue("flooded_frames", l); !ok {
		t.Fatalf("no tenant-labeled series for pc00; scrape:\n%s", r)
	}
}

// TestChaosRehomeSpanTimeline is the span-timeline chaos assertion: a
// broker dies and the orphaned hosts' re-home elections must show up as
// closed spans — each started after the kill and closed within the
// detection window (BrokerTimeout) plus three pulse periods, with the
// election outcome recorded as an event. Terminal counters alone cannot
// distinguish a prompt failover from one that dawdled; the span
// timestamps can.
func TestChaosRehomeSpanTimeline(t *testing.T) {
	w, err := Build(63, EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if _, err := w.AddBroker("b1", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddBroker("b2", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{"pc00": "b1", "pc01": "b1", "pc02": "b2"} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.81.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}

	if err := w.KillBroker("b1"); err != nil {
		t.Fatal(err)
	}
	killTime := w.Eng.Now()
	ttl := chaosBrokerCfg().SessionTTL
	w.Eng.RunFor(ttl + 10*time.Second)

	hostCfg := chaosHostCfg()
	budget := hostCfg.BrokerTimeout + 3*sim.Duration(hostCfg.RendezvousPulsePeriod)
	spans := w.Obs.Find("rehome")
	byHost := map[string]*obs.Span{}
	for _, sp := range spans {
		byHost[sp.SpanLabels().Host] = sp
	}
	for _, key := range []string{"pc00", "pc01"} {
		sp, ok := byHost[key]
		if !ok {
			t.Fatalf("%s recorded no rehome span; trace:\n%s", key, w.Obs.Dump())
		}
		if !sp.Ended() {
			t.Fatalf("%s rehome span never closed; trace:\n%s", key, w.Obs.Dump())
		}
		if sp.StartTime() < killTime {
			t.Fatalf("%s rehome span started %v, before the kill at %v",
				key, sp.StartTime(), killTime)
		}
		if d := sp.EndTime().Sub(killTime); d > budget {
			t.Fatalf("%s rehome span closed %v after the kill, beyond the %v budget",
				key, d, budget)
		}
		if !sp.HasEvent("rehomed to") {
			t.Fatalf("%s rehome span lacks the election outcome: %+v", key, sp.Events())
		}
	}
	if sp, ok := byHost["pc02"]; ok {
		t.Fatalf("pc02 (homed on the survivor) recorded a rehome span: %v", sp.Events())
	}
}

// TestObsMigrationSpanTree checks the causality threading: a managed
// migration ordered by a reconcile shows up as a "migrate" span
// parented under that apply's span, with one child per pre-copy round
// plus the stop-and-copy, and the downtime recorded as an event.
func TestObsMigrationSpanTree(t *testing.T) {
	w, err := Build(64, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "mnet", CIDR: "10.73.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
		VMs: []vpc.VMSpec{{
			Name: "db", Network: "mnet", IP: "10.73.0.200", MemoryMB: 32, Host: "pc00",
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	spec.VMs[0].Host = "pc01"
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}

	migs := w.Obs.Find("migrate")
	if len(migs) != 1 {
		t.Fatalf("found %d migrate spans, want 1; trace:\n%s", len(migs), w.Obs.Dump())
	}
	mig := migs[0]
	if !mig.Ended() {
		t.Fatal("migrate span never closed")
	}
	if mig.Duration() <= 0 {
		t.Fatalf("migrate span duration %v, want > 0", mig.Duration())
	}
	if !mig.HasEvent("resumed at pc01") {
		t.Fatalf("migrate span lacks the handoff event: %+v", mig.Events())
	}

	// The migration is parented under the apply that ordered it.
	var applySpan *obs.Span
	for _, sp := range w.Obs.Find("apply") {
		if sp.ID() == mig.ParentID() && sp.TraceID() == mig.TraceID() {
			applySpan = sp
		}
	}
	if applySpan == nil {
		t.Fatalf("migrate span has no apply parent; trace:\n%s", w.Obs.Dump())
	}
	if !applySpan.HasEvent("vm-migrate") {
		t.Fatalf("apply span lacks the vm-migrate action: %+v", applySpan.Events())
	}

	// Pre-copy rounds and stop-and-copy ride as children of the migrate.
	kids := w.Obs.Children(mig)
	rounds, stopcopy := 0, 0
	for _, k := range kids {
		switch k.Name() {
		case "migrate.round":
			rounds++
		case "migrate.stopcopy":
			stopcopy++
		}
		if !k.Ended() {
			t.Fatalf("child span %s never closed", k.Name())
		}
	}
	if rounds < 1 || stopcopy != 1 {
		t.Fatalf("migrate children: %d rounds, %d stopcopy; want >=1 and 1", rounds, stopcopy)
	}
}

// TestRestartBrokerCounterDeltaClamped is the regression for the Delta
// underflow: a restarted broker starts its counters over, so a delta
// against a pre-kill snapshot must clamp at zero instead of wrapping
// uint64 into astronomical rates.
func TestRestartBrokerCounterDeltaClamped(t *testing.T) {
	w, err := Build(65, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	prev := w.Rdv.Counters()
	if prev.Get("joins") < 2 {
		t.Fatalf("primary broker saw %d joins, want >= 2", prev.Get("joins"))
	}
	if err := w.KillBroker(PrimaryBroker); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RestartBroker(PrimaryBroker); err != nil {
		t.Fatal(err)
	}
	// The fresh server's totals restart from zero: every delta entry
	// clamps instead of wrapping.
	d := w.Rdv.Counters().Delta(prev)
	for _, name := range d.Names() {
		if v := d.Get(name); v > 1<<62 {
			t.Fatalf("delta %s = %d: uint64 wraparound", name, v)
		}
	}
	if v := d.Get("joins"); v != 0 {
		t.Fatalf("joins delta after restart = %d, want 0 (clamped)", v)
	}
}
