// Flow-telemetry surfacing: the fabric-wide flow scrape, the top-K
// talkers ranking, the substrate→flow drop-reason mapping and the
// default alert-rule catalogue every world starts with.
package scenario

import (
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// flowDropReason maps a substrate drop reason onto the flow table's
// classification, so the network's drop hook can charge wire fates
// back to the overlay flows the lost packet carried.
func flowDropReason(r netsim.DropReason) obs.FlowDropReason {
	switch r {
	case netsim.DropNoRoute:
		return obs.FlowDropNoRoute
	case netsim.DropQueue:
		return obs.FlowDropQueue
	case netsim.DropWANLoss:
		return obs.FlowDropWANLoss
	default:
		return obs.FlowDropPartition
	}
}

// DefaultAlertRules is the catalogue every Build starts the world's
// alert engine with: rate rules need two scrapes before they can fire,
// so experiments that scrape on a cadence get the full lifecycle for
// free and one-shot scrapers just see them inactive.
func DefaultAlertRules() []obs.AlertRule {
	return []obs.AlertRule{
		{
			// A tenant is being throttled hard: sender-side metering is
			// rejecting a sustained stream of frames.
			Name:   "tenant-quota-throttled",
			Metric: "quota_drops", Rate: true,
			Threshold: 5, For: 2 * sim.Second,
		},
		{
			// The wire is eating frames on a severed path — fires while a
			// partition starves live traffic, resolves after the heal.
			Name:   "partition-frame-loss",
			Metric: "flow_drops.partition", Rate: true,
			Threshold: 0, For: 3 * sim.Second,
		},
		{
			// A health-probed service backend was just withdrawn.
			Name:   "vip-backend-withdrawn",
			Metric: "service.*.withdrawals", Rate: true,
			Threshold: 0,
		},
		{
			// Hosts are re-homing onto surviving brokers (a broker died or
			// went unreachable); resolves when the wave settles.
			Name:   "broker-rehome",
			Metric: "rehomes", Rate: true,
			Threshold: 0,
		},
		{
			// Re-home attempts are failing — no broker of the declared set
			// is answering.
			Name:   "broker-rehome-failing",
			Metric: "rehome_failures", Rate: true,
			Threshold: 0,
		},
		{
			// Egress batches are far beyond the configured cap's intent:
			// either misconfiguration or a pathological traffic shape.
			Name:   "batch-p99-oversize",
			Metric: "batch_frames", Quantile: 0.99,
			Threshold: 64,
		},
	}
}

// flowLabels files one flow's series: the accounting host and its
// broker, with tenant and net resolved from the flow's own VNI (a host
// can carry segments of several networks, so the host's primary
// network would mislabel foreign-segment flows).
func (w *World) flowLabels(host string, vni uint32) obs.Labels {
	l := obs.Labels{Host: host, Broker: w.HomeBroker(host)}
	if vni != 0 && w.vpcMgr != nil {
		for _, n := range w.vpcMgr.Networks() {
			if n.VNI == vni {
				l.Tenant, l.Net = n.Tenant, n.Name
				break
			}
		}
	}
	return l
}

// addFlowSeries folds one flow's totals into the registry under l.
func addFlowSeries(r *obs.Registry, l obs.Labels, bytes, frames uint64, drops *[obs.FlowDropReasons]uint64) {
	r.Counter("flow.bytes", l).Add(bytes)
	r.Counter("flow.frames", l).Add(frames)
	for reason, n := range drops {
		if n > 0 {
			r.Counter("flow.drops."+obs.FlowDropReason(reason).String(), l).Add(n)
		}
	}
}

// FlowScrape aggregates flow accounting fabric-wide into one labeled
// registry: every joined host's live flow table plus the shared flow
// log's closed records, each flow filed under {tenant, net, broker,
// host} by its own VNI. The two sides are disjoint by construction —
// eviction removes a flow from the table as its record enters the log
// — so summing them counts each frame once per accounting host.
func (w *World) FlowScrape() *obs.Registry {
	r := obs.NewRegistry()
	for _, m := range w.Machines {
		if m.WAV == nil {
			continue
		}
		snap := m.WAV.Flows().Snapshot()
		r.Gauge("flow.active", obs.Labels{Host: m.Key, Broker: w.HomeBroker(m.Key)}).
			Set(float64(len(snap)))
		for i := range snap {
			st := &snap[i]
			addFlowSeries(r, w.flowLabels(m.Key, st.Key.VNI), st.Bytes, st.Frames, &st.Drops)
		}
	}
	for _, rec := range w.FlowLog.Records() {
		l := w.flowLabels(rec.Host, rec.VNI)
		addFlowSeries(r, l, rec.Bytes, rec.Frames, &rec.Drops)
		r.Counter("flow.closed_records", l).Inc()
	}
	return r
}

// TopTalkers ranks the k heaviest flows of a network by byte weight,
// over everything the fabric has accounted: live flow tables plus the
// flow log, funneled through a count-min + heap sketch so the answer
// stays bounded regardless of flow-table sizes. The empty network name
// ranks the default virtual LAN (VNI 0). A flow forwarded end to end
// is accounted on both its sender and receiver, which doubles its
// weight uniformly and leaves the ranking unchanged.
func (w *World) TopTalkers(network string, k int) []obs.Talker {
	vni := uint32(0)
	if network != "" {
		n, ok := w.VPC().Get(network)
		if !ok {
			return nil
		}
		vni = n.VNI
	}
	t := obs.NewTopK(k)
	for _, m := range w.Machines {
		if m.WAV == nil {
			continue
		}
		for _, st := range m.WAV.Flows().Snapshot() {
			if st.Key.VNI != vni {
				continue
			}
			rec := st.Record(m.Key)
			t.Offer(rec.Key(), rec.Bytes)
		}
	}
	for _, rec := range w.FlowLog.Records() {
		if rec.VNI != vni {
			continue
		}
		t.Offer(rec.Key(), rec.Bytes)
	}
	return t.Top()
}
