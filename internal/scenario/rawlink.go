package scenario

import (
	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// rawLink is the "native network" NIC: it relays Ethernet frames between
// two machines over plain UDP with no overlay processing at all,
// representing applications running directly on the physical hosts. The
// peer's NAT mapping is discovered with STUN and opened by simultaneous
// hellos, after which frames flow with only UDP/IP overhead.
type rawLink struct {
	sock     *netsim.UDPSocket
	mapped   netsim.Addr
	peer     netsim.Addr
	recv     func(*ether.Frame)
	stunWait func(*stun.Message)
	up       bool
}

const (
	rawHello = 0x31
	rawFrame = 0x32
)

func newRawLink(phys *netsim.Host, port uint16) (*rawLink, error) {
	l := &rawLink{}
	sock, err := phys.BindUDP(port, l.onPacket)
	if err != nil {
		return nil, err
	}
	l.sock = sock
	return l, nil
}

func (l *rawLink) onPacket(pkt netsim.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	switch pkt.Payload[0] {
	case 0x00, 0x01:
		if m, err := stun.Unmarshal(pkt.Payload); err == nil &&
			m.Type == stun.TypeBindingResponse && l.stunWait != nil {
			l.stunWait(m)
		}
	case rawHello:
		l.up = true
		l.peer = pkt.Src
	case rawFrame:
		if f, err := ether.UnmarshalFrame(pkt.Payload[1:]); err == nil && l.recv != nil {
			l.recv(f)
		}
	}
}

// punch learns our mapping via STUN, waits for the peer's mapping to be
// published (the shared *peerOut), and exchanges hellos until both
// directions are open.
func (l *rawLink) punch(p *sim.Proc, stunServer netsim.Addr, peerMapped *netsim.Addr) bool {
	// Binding request from this socket.
	got := false
	l.stunWait = func(m *stun.Message) {
		l.mapped = m.Mapped
		got = true
		p.Unpark()
	}
	req := &stun.Message{Type: stun.TypeBindingRequest}
	req.TxID[0] = 0x77
	for try := 0; try < 3 && !got; try++ {
		l.sock.SendTo(stunServer, req.Marshal())
		timer := sim.NewTimer(p.Engine(), func() { p.Unpark() })
		timer.Reset(500 * sim.Millisecond)
		p.Park()
		timer.Stop()
	}
	l.stunWait = nil
	if l.mapped.IsZero() {
		return false
	}
	// Publish and wait for the peer's mapping.
	*peerMapped = l.mapped
	for l.peer.IsZero() && !l.up {
		if !p.Sleep(50 * sim.Millisecond) {
			return false
		}
	}
	// Simultaneous hello exchange.
	for try := 0; try < 40 && !l.up; try++ {
		l.sock.SendTo(l.peer, []byte{rawHello})
		p.Sleep(100 * sim.Millisecond)
	}
	if l.up {
		// A couple of extra hellos so the peer's side also opens, then a
		// keepalive ticker so the NAT mappings outlive idle periods.
		l.sock.SendTo(l.peer, []byte{rawHello})
		sim.NewTicker(p.Engine(), 10*sim.Second, func() {
			l.sock.SendTo(l.peer, []byte{rawHello})
		})
	}
	return l.up
}

// Send implements ether.NIC.
func (l *rawLink) Send(f *ether.Frame) {
	if l.peer.IsZero() {
		return
	}
	wire := make([]byte, 1+f.WireLen())
	wire[0] = rawFrame
	copy(wire[1:], f.Marshal())
	l.sock.SendTo(l.peer, wire)
}

// SetRecv implements ether.NIC.
func (l *rawLink) SetRecv(fn func(*ether.Frame)) { l.recv = fn }
