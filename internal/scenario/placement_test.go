package scenario

import (
	"io"
	"strings"
	"testing"
	"time"

	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestPlacementApplyPlacesAndMigrates is the acceptance test of the VM
// pass: an Apply with a VMSpec boots the VM on the declared member,
// changing VMSpec.Host live-migrates it while an in-flight TCP session
// to the VM survives, and re-applying the converged spec is a no-op.
func TestPlacementApplyPlacesAndMigrates(t *testing.T) {
	w, err := Build(51, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.70.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02", "pc03"},
		}},
		VMs: []vpc.VMSpec{{
			Name: "web", Network: "vnet", IP: "10.70.0.200", MemoryMB: 32, Host: "pc00",
		}},
	}
	rep, err := w.ApplySync(spec)
	if err != nil {
		t.Fatalf("apply: %v (report: %v)", err, rep)
	}
	if ops := strings.Join(rep.Ops(), ","); !strings.Contains(ops, "vm-place") {
		t.Fatalf("ops = %q, want a vm-place", ops)
	}
	v, ok := w.ResolveVM("web")
	if !ok {
		t.Fatal("ResolveVM found no managed VM")
	}
	if host, _ := w.VMHost("web"); host != "pc00" {
		t.Fatalf("VM on %q, want pc00", host)
	}

	// The VM is reachable on the tenant segment from a co-member.
	n, _ := w.VPC().Get("vnet")
	member := func(key string) *vpc.Member {
		m, ok := n.Member(key)
		if !ok {
			t.Fatalf("%s not a member", key)
		}
		return m
	}
	var pingErr error
	pinged := false
	w.Eng.Spawn("ping", func(p *sim.Proc) {
		_, pingErr = member("pc03").Stack.Ping(p, v.IP(), 56, 5*time.Second)
		pinged = true
	})
	w.Eng.RunFor(15 * time.Second)
	if !pinged || pingErr != nil {
		t.Fatalf("pre-migration ping: done=%v err=%v", pinged, pingErr)
	}

	// An in-flight TCP session rides across the migration: the VM runs a
	// sink, a co-member streams to it paced over ~10 s while the Apply
	// below relocates the VM.
	total := 100 * 16384
	received := 0
	var srvErr, sendErr error
	sendDone := false
	w.Eng.Spawn("vm-server", func(p *sim.Proc) {
		l, err := v.Stack().Listen(5001)
		if err != nil {
			srvErr = err
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 32<<10)
		for {
			nn, err := c.Read(p, buf)
			received += nn
			if err == io.EOF {
				return
			}
			if err != nil {
				srvErr = err
				return
			}
		}
	})
	w.Eng.Spawn("client", func(p *sim.Proc) {
		defer func() { sendDone = true }()
		c, err := member("pc01").Stack.Dial(p, netsim.Addr{IP: v.IP(), Port: 5001})
		if err != nil {
			sendErr = err
			return
		}
		chunk := make([]byte, 16384)
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := c.Write(p, chunk); err != nil {
				sendErr = err
				return
			}
			p.Sleep(100 * time.Millisecond)
		}
		c.Close()
	})
	w.Eng.RunFor(500 * time.Millisecond) // let the stream establish

	spec.VMs[0].Host = "pc02"
	rep, err = w.ApplySync(spec)
	if err != nil {
		t.Fatalf("migrating apply: %v (report: %v)", err, rep)
	}
	if ops := strings.Join(rep.Ops(), ","); ops != "vm-migrate" {
		t.Fatalf("ops = %q, want exactly vm-migrate", ops)
	}
	if host, _ := w.VMHost("web"); host != "pc02" {
		t.Fatalf("VM on %q after migration, want pc02", host)
	}
	if v.Host().Name() != "pc02" {
		t.Fatalf("VM host port says %q, want pc02", v.Host().Name())
	}
	// Only members carry the tenant's segment — the vif cannot have
	// visited a host outside the network.
	if c := v.Counters(); c.Get("migrations") != 1 || c.Get("aborts") != 0 {
		t.Fatalf("VM counters %s, want migrations=1 aborts=0", c)
	}

	// Drain the stream to completion: every byte crossed the migration.
	for spent := 0; !sendDone && spent < 120; spent++ {
		w.Eng.RunFor(time.Second)
	}
	w.Eng.RunFor(5 * time.Second)
	if srvErr != nil || sendErr != nil {
		t.Fatalf("stream: srv=%v send=%v", srvErr, sendErr)
	}
	if received != total {
		t.Fatalf("received %d of %d across the migration", received, total)
	}

	// Idempotent: the converged spec re-applies to an empty report.
	again, err := w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("re-apply not idempotent: %v", again)
	}

	// Dropping the VM from the spec evicts it.
	spec.VMs = nil
	rep, err = w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ops := strings.Join(rep.Ops(), ","); ops != "vm-evict" {
		t.Fatalf("ops = %q, want exactly vm-evict", ops)
	}
	if _, ok := w.ResolveVM("web"); ok {
		t.Fatal("evicted VM still resolvable")
	}
}

// TestPlacementSchedulerUsesLocality spreads a network over a tight and
// a distant cluster: with measured RTTs reported to the locator, an
// unpinned VM must land inside the tight cluster, and the tenant's VM
// quota must refuse a spec exceeding it.
func TestPlacementSchedulerUsesLocality(t *testing.T) {
	near := []string{"n0", "n1", "n2"}
	far := []string{"f0", "f1", "f2"}
	var specs []Spec
	for _, k := range near {
		specs = append(specs, Spec{Key: k, RTTToHub: time.Millisecond, AccessBps: 100e6, NAT: nat.FullCone})
	}
	for _, k := range far {
		specs = append(specs, Spec{Key: k, RTTToHub: 60 * time.Millisecond, AccessBps: 100e6, NAT: nat.FullCone})
	}
	w, err := Build(52, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.71.0.0/24", StaticAddressing: true,
			Members: append(append([]string(nil), near...), far...),
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	if err := w.ReportNetRTTs("vnet"); err != nil {
		t.Fatal(err)
	}
	spec.VMs = []vpc.VMSpec{{Name: "batch", Network: "vnet", IP: "10.71.0.200", MemoryMB: 32}}
	rep, err := w.ApplySync(spec)
	if err != nil {
		t.Fatalf("apply: %v (report: %v)", err, rep)
	}
	host, ok := w.VMHost("batch")
	if !ok {
		t.Fatal("VM not placed")
	}
	isNear := false
	for _, k := range near {
		if host == k {
			isNear = true
		}
	}
	if !isNear {
		t.Fatalf("scheduler placed the VM on %q, want a tight-cluster host %v", host, near)
	}
	pc := w.VPC().PlacementCounters()
	if pc.Get("placements") == 0 || pc.Get("group_hits") == 0 {
		t.Fatalf("placement counters %s: want a locality-core hit", pc)
	}
	// A scheduler choice is sticky: re-applying does not move the VM.
	again, err := w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("re-apply not idempotent: %v", again)
	}

	// The VM quota is a declarative envelope: a spec past it is refused
	// before any state is touched.
	over := spec
	over.Quota.MaxVMs = 1
	over.VMs = append([]vpc.VMSpec(nil), spec.VMs...)
	over.VMs = append(over.VMs, vpc.VMSpec{Name: "extra", Network: "vnet", IP: "10.71.0.201"})
	if _, err := w.ApplySync(over); err == nil || !strings.Contains(err.Error(), "MaxVMs") {
		t.Fatalf("over-quota apply error = %v, want MaxVMs refusal", err)
	}
	if len(w.VPC().VMNames("acme")) != 1 {
		t.Fatalf("refused apply changed VM state: %v", w.VPC().VMNames("acme"))
	}
}

// TestChaosMigrationSurvivesBrokerFailover kills the source host's home
// broker in the middle of a live migration: the data plane carries the
// pre-copy to completion regardless, the orphaned host re-homes onto
// the surviving declared broker, and the VM answers pings afterwards.
func TestChaosMigrationSurvivesBrokerFailover(t *testing.T) {
	w, err := Build(53, EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if _, err := w.AddBroker("b1", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	witness, err := w.AddBroker("witness", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{"pc00": "b1", "pc01": "b2", "pc02": "b2"} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "mnet", CIDR: "10.72.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02"},
			Brokers: []string{"b1", "b2"},
		}},
		VMs: []vpc.VMSpec{{
			Name: "db", Network: "mnet", IP: "10.72.0.200", MemoryMB: 64, Host: "pc00",
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}

	// Kill the source's home broker 2 s into the migration (64 MB at
	// ~100 Mbps runs ~6 s); the transfer must not notice.
	fi := w.Inject(KillBrokerAt(2*time.Second, "b1"))
	spec.VMs[0].Host = "pc01"
	rep, err := w.ApplySync(spec)
	if err != nil {
		t.Fatalf("migrating apply: %v (report: %v)", err, rep)
	}
	if ops := strings.Join(rep.Ops(), ","); ops != "vm-migrate" {
		t.Fatalf("ops = %q, want exactly vm-migrate", ops)
	}
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if host, _ := w.VMHost("db"); host != "pc01" {
		t.Fatalf("VM on %q, want pc01", host)
	}

	// The orphaned source re-homes onto the surviving declared broker.
	ttl := chaosBrokerCfg().SessionTTL
	w.Eng.RunFor(ttl + 10*time.Second)
	if home, ok := w.CurrentHome("pc00"); !ok || home != "b2" {
		t.Fatalf("pc00 homed on %q, want b2", home)
	}
	if !b2.HasSession("pc00") {
		t.Fatal("b2 has no session for the re-homed source host")
	}
	if w.M("pc00").WAV.Rehomes != 1 {
		t.Fatalf("pc00 counted %d rehomes, want 1", w.M("pc00").WAV.Rehomes)
	}

	// The VM converged and answers pings — including from the host that
	// just lost and re-elected its broker.
	v, _ := w.ResolveVM("db")
	n, _ := w.VPC().Get("mnet")
	for _, key := range []string{"pc00", "pc02"} {
		m, _ := n.Member(key)
		var pingErr error
		pinged := false
		w.Eng.Spawn("ping-"+key, func(p *sim.Proc) {
			_, pingErr = m.Stack.Ping(p, v.IP(), 56, 5*time.Second)
			pinged = true
		})
		w.Eng.RunFor(15 * time.Second)
		if !pinged || pingErr != nil {
			t.Fatalf("post-failover ping from %s: done=%v err=%v", key, pinged, pingErr)
		}
	}
	// The unnamed witness learned nothing through the whole episode.
	if got := witness.RecordsFor("mnet"); got != 0 {
		t.Fatalf("witness broker holds %d mnet records, want 0", got)
	}
}
