package scenario

import (
	"testing"
	"time"

	"wavnet/internal/can"
	"wavnet/internal/core"
	"wavnet/internal/nat"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// chaosHostCfg shortens the host-side keepalive machinery so failures
// are detected within seconds of simulated time instead of minutes.
func chaosHostCfg() core.Config {
	return core.Config{
		RendezvousPulsePeriod: 2 * time.Second,
		BrokerTimeout:         6 * time.Second,
	}
}

// chaosBrokerCfg shortens the broker-side TTLs to match.
func chaosBrokerCfg() rendezvous.Config {
	return rendezvous.Config{
		SessionTTL: 30 * time.Second, // liveness TTL: re-homing must finish within this
	}
}

// TestChaosBrokerFailoverMidTraffic is the acceptance chaos test: a
// tenant network spans two brokers with live cross-broker traffic; the
// fault schedule kills one home broker. Every host homed there must
// re-home onto the surviving declared broker within the liveness TTL,
// a fresh ConnectTo between the tenant's hosts must succeed afterwards,
// and the witness broker the spec never named must still hold zero of
// the tenant's records.
func TestChaosBrokerFailoverMidTraffic(t *testing.T) {
	w, err := Build(41, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if _, err := w.AddBroker("b1", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	witness, err := w.AddBroker("witness", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.80.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02", "pc03"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	// The reconciler pushed the declared broker set as failover
	// candidates to every member.
	if got := len(w.M("pc00").WAV.BrokerCandidates()); got != 2 {
		t.Fatalf("pc00 has %d broker candidates, want 2", got)
	}

	// Continuous cross-broker traffic: pc00 (b1) pings pc03 (b2)
	// throughout the failover; the data plane must never notice.
	net, _ := w.VPC().Get("fed")
	var src, dst *vpc.Member
	for _, m := range net.Members() {
		switch m.Host.Name() {
		case "pc00":
			src = m
		case "pc03":
			dst = m
		}
	}
	pings, pingFails := 0, 0
	stop := false
	w.Eng.Spawn("traffic", func(p *sim.Proc) {
		for !stop {
			if _, err := src.Stack.Ping(p, dst.IP, 56, 2*time.Second); err != nil {
				pingFails++
			}
			pings++
			p.Sleep(time.Second)
		}
	})

	// Kill b1 two seconds in; track when each affected host re-homes.
	killAt := 2 * time.Second
	fi := w.Inject(KillBrokerAt(killAt, "b1"))
	killTime := w.Eng.Now().Add(killAt)
	rehomed := map[string]sim.Time{}
	probe := sim.NewTicker(w.Eng, 100*time.Millisecond, func() {
		for _, key := range []string{"pc00", "pc01"} {
			if _, ok := rehomed[key]; !ok && b2.HasSession(key) {
				rehomed[key] = w.Eng.Now()
			}
		}
	})
	ttl := chaosBrokerCfg().SessionTTL
	w.Eng.RunFor(ttl + 10*time.Second)
	probe.Stop()
	stop = true

	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if !fi.Done() {
		t.Fatal("fault schedule did not finish")
	}
	for _, key := range []string{"pc00", "pc01"} {
		at, ok := rehomed[key]
		if !ok {
			t.Fatalf("%s never re-homed onto b2", key)
		}
		if d := at.Sub(killTime); d > ttl {
			t.Fatalf("%s re-homed %v after the kill, beyond the %v liveness TTL", key, d, ttl)
		}
		if home, ok := w.CurrentHome(key); !ok || home != "b2" {
			t.Fatalf("%s homed on %q, want b2", key, home)
		}
		if w.M(key).WAV.Rehomes != 1 {
			t.Fatalf("%s counted %d rehomes, want 1", key, w.M(key).WAV.Rehomes)
		}
	}
	// The survivor holds all four records as sessions: the replicas that
	// named dead b1 as home were superseded when their hosts re-homed.
	if got := b2.RecordsFor("fed"); got != 4 {
		t.Fatalf("b2 holds %d fed records, want 4", got)
	}
	if got := b2.ReplicaCount(); got != 0 {
		t.Fatalf("b2 still holds %d replicas naming the dead broker", got)
	}
	if b2.Counters().Get("replica_adopted") == 0 {
		t.Fatal("no replica was superseded by a re-homing session")
	}
	// Mid-traffic: the data plane rode out the control-plane failure.
	if pings == 0 || pingFails > 0 {
		t.Fatalf("traffic suffered: %d/%d pings failed", pingFails, pings)
	}
	// Fresh connects work post-failover (brokered by the survivor).
	w.M("pc01").WAV.Disconnect("pc02")
	w.M("pc02").WAV.Disconnect("pc01")
	var connErr error
	w.Eng.Spawn("reconnect", func(p *sim.Proc) {
		_, connErr = w.M("pc01").WAV.ConnectTo(p, "pc02")
	})
	w.Eng.RunFor(30 * time.Second)
	if connErr != nil {
		t.Fatalf("post-failover connect: %v", connErr)
	}
	// The unnamed witness learned nothing through the whole episode.
	if got := witness.RecordsFor("fed"); got != 0 || witness.ReplicaCount() != 0 {
		t.Fatalf("witness broker holds %d fed records, %d replicas; want 0",
			got, witness.ReplicaCount())
	}
}

// TestChaosKillRestartSchedule scripts a kill and a delayed restart:
// the dead broker must come back empty, be re-federated, and reconverge
// to holding replicas of every record once home brokers re-replicate on
// their refresh tick. Hosts that re-homed away stay with their new home.
func TestChaosKillRestartSchedule(t *testing.T) {
	w, err := Build(42, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if _, err := w.AddBroker("b1", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddBroker("b2", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.81.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02", "pc03"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}

	fi := w.Inject(
		KillBrokerAt(2*time.Second, "b1"),
		RestartBrokerAt(40*time.Second, "b1"),
	)
	w.Eng.RunFor(90 * time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	log := fi.Log()
	if len(log) != 2 || log[0].Name != "kill-broker b1" || log[1].Name != "restart-broker b1" {
		t.Fatalf("unexpected fault log: %v", log)
	}

	b1, _ := w.Broker("b1")
	if b1.Closed() {
		t.Fatal("Broker() still resolves the killed instance after restart")
	}
	// pc00/pc01 re-homed to b2 during the outage and stay there.
	for _, key := range []string{"pc00", "pc01"} {
		if home, _ := w.CurrentHome(key); home != "b2" {
			t.Fatalf("%s homed on %q after restart, want b2", key, home)
		}
	}
	// The restarted broker reconverged: b2 re-replicates every session
	// on its refresh tick, so b1 holds all four records as replicas.
	if got := b1.RecordsFor("fed"); got != 4 {
		t.Fatalf("restarted b1 holds %d fed records, want 4", got)
	}
	if got := b1.Sessions(); got != 0 {
		t.Fatalf("restarted b1 holds %d sessions, want 0 (hosts re-homed away)", got)
	}
}

// TestChaosReplicaExpiryOnDeadBroker covers the silent-withdrawal fix:
// when a home broker dies and its hosts cannot re-home (no surviving
// candidate), the surviving broker must (1) refuse to forward fresh
// connects toward the dead broker once past the liveness TTL and (2)
// withdraw the dead broker's replicas — both visible through the
// replica_expired / replica_dead_broker / stale_fwd_rejects counters.
func TestChaosReplicaExpiryOnDeadBroker(t *testing.T) {
	w, err := Build(43, EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	// A long session TTL (late refresh tick) keeps the stale replica
	// around well past broker-death detection, so the fwd-connect
	// rejection window is wide and deterministic.
	cfg := rendezvous.Config{
		SessionTTL:          40 * time.Second,
		BrokerPulseInterval: 2 * time.Second,
		BrokerTTL:           6 * time.Second,
	}
	b1, err := w.AddBroker("b1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Federate the default network manually (no reconciler => no
	// candidate push => the b1-homed hosts can NOT re-home; their
	// replicas on b2 must be cleaned up instead of lingering).
	if err := w.ConfigureNetFederation("", []string{"b1", "b2"}); err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{"pc00": "b1", "pc01": "b1", "pc02": "b2"} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	if !b2.HasReplica("pc00") {
		t.Fatal("b2 never received pc00's replica")
	}

	// Align the schedule to just after one of b2's refresh ticks (every
	// SessionTTL/2 since creation), so detection (+~7s) and the stale
	// connect (+~13s) both land before the next sweep (+20s) —
	// deterministically, whatever WAVNetUp's duration was.
	period := sim.Time(cfg.SessionTTL / 2)
	w.Eng.RunUntil((w.Eng.Now()/period + 1) * period)
	w.Eng.RunFor(100 * time.Millisecond)

	fi := w.Inject(KillBrokerAt(time.Second, "b1"))
	// Past the broker liveness TTL but inside the replica TTL: b2 has
	// declared b1 dead.
	w.Eng.RunFor(12 * time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if !b2.PeerDead(b1.Addr()) {
		t.Fatal("b2 did not declare b1 dead after the liveness TTL")
	}
	if !b2.HasReplica("pc00") {
		t.Fatal("replica swept before the stale-forward window; adjust test timing")
	}
	// A fresh connect toward a target homed on the dead broker must be
	// refused as a transient not-found, not forwarded into a black hole.
	w.M("pc02").WAV.Disconnect("pc00")
	w.M("pc00").WAV.Disconnect("pc02")
	var connErr error
	w.Eng.Spawn("stale-connect", func(p *sim.Proc) {
		_, connErr = w.M("pc02").WAV.ConnectTo(p, "pc00")
	})
	w.Eng.RunFor(30 * time.Second)
	if connErr == nil {
		t.Fatal("connect toward a dead broker's host succeeded unexpectedly")
	}
	c := b2.Counters()
	if c.Get("stale_fwd_rejects") == 0 {
		t.Fatal("no stale fwd-connect was rejected")
	}
	// Replica cleanup is no longer silent: the dead broker's replicas
	// were withdrawn and the counters prove it.
	w.Eng.RunFor(30 * time.Second)
	if b2.HasReplica("pc00") || b2.HasReplica("pc01") {
		t.Fatal("b2 still holds replicas of the dead broker's hosts")
	}
	c = b2.Counters()
	if c.Get("replica_dead_broker")+c.Get("replica_expired") == 0 {
		t.Fatal("replica cleanup left no counter trace")
	}
}

// TestChaosPartitionHealReconverges partitions the two brokers of a
// federated network: during the partition each side withdraws the
// other's replicas (dead-broker sweep), and after healing the refresh
// tick re-replicates everything.
func TestChaosPartitionHealReconverges(t *testing.T) {
	w, err := Build(44, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	cfg := rendezvous.Config{
		SessionTTL:          20 * time.Second,
		BrokerPulseInterval: 2 * time.Second,
		BrokerTTL:           8 * time.Second,
	}
	b1, err := w.AddBroker("b1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.82.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02", "pc03"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	if b1.ReplicaCount() != 2 || b2.ReplicaCount() != 2 {
		t.Fatalf("pre-partition replicas: b1=%d b2=%d, want 2 each",
			b1.ReplicaCount(), b2.ReplicaCount())
	}

	fi := w.Inject(
		PartitionAt(time.Second, "b1", "b2"),
		HealAt(31*time.Second, "b1", "b2"),
	)
	// Mid-partition: both sides see a silent peer and withdraw.
	w.Eng.RunFor(20 * time.Second)
	if !b1.PeerDead(b2.Addr()) || !b2.PeerDead(b1.Addr()) {
		t.Fatal("partitioned brokers did not declare each other dead")
	}
	if b1.ReplicaCount() != 0 || b2.ReplicaCount() != 0 {
		t.Fatalf("mid-partition replicas: b1=%d b2=%d, want 0 each",
			b1.ReplicaCount(), b2.ReplicaCount())
	}
	// Healed: the refresh tick re-replicates, scope intact.
	w.Eng.RunFor(40 * time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if b1.ReplicaCount() != 2 || b2.ReplicaCount() != 2 {
		t.Fatalf("post-heal replicas: b1=%d b2=%d, want 2 each",
			b1.ReplicaCount(), b2.ReplicaCount())
	}
	if b1.PeerDead(b2.Addr()) || b2.PeerDead(b1.Addr()) {
		t.Fatal("healed brokers still considered dead")
	}
	if w.Net.PartitionDrops == 0 {
		t.Fatal("the partition dropped no packets")
	}
}

// TestChaosHostBrokerPartitionSupersedesStaleSession: the home broker
// stays alive but is partitioned from its host, so the host re-homes
// while the old broker keeps a stale session. The peer's replication of
// the fresh record must supersede that session (it would otherwise
// shadow the replica in lookups and connects for a full TTL), after
// which connects brokered via the old home forward correctly.
func TestChaosHostBrokerPartitionSupersedesStaleSession(t *testing.T) {
	w, err := Build(46, EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	cfg := rendezvous.Config{SessionTTL: 20 * time.Second}
	b1, err := w.AddBroker("b1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddBroker("b2", cfg); err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{"pc00": "b1", "pc01": "b1", "pc02": "b2"} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.83.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}

	// Sever pc00 from its home broker only; b1 itself stays alive and
	// federated (b1<->b2 and every other path keep flowing).
	fi := w.Inject(PartitionAt(time.Second, "pc00", "b1"))
	w.Eng.RunFor(cfg.SessionTTL + 20*time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if home, _ := w.CurrentHome("pc00"); home != "b2" {
		t.Fatalf("pc00 homed on %q, want b2", home)
	}
	// b1's stale session was superseded by b2's replication of the
	// fresh record — not left to shadow it until TTL expiry.
	if b1.HasSession("pc00") {
		t.Fatal("b1 still holds pc00's stale session")
	}
	if !b1.HasReplica("pc00") {
		t.Fatal("b1 holds no replica of re-homed pc00")
	}
	if b1.Counters().Get("session_superseded") == 0 {
		t.Fatal("no session was superseded on the old home broker")
	}
	// The host that stayed on b1 keeps its live session (its constant
	// pulsing makes it ineligible for superseding).
	if !b1.HasSession("pc01") {
		t.Fatal("b1 lost pc01's live session")
	}
	// A connect brokered via b1 now forwards to pc00's real home.
	w.M("pc01").WAV.Disconnect("pc00")
	w.M("pc00").WAV.Disconnect("pc01")
	var connErr error
	w.Eng.Spawn("via-old-home", func(p *sim.Proc) {
		_, connErr = w.M("pc01").WAV.ConnectTo(p, "pc00")
	})
	w.Eng.RunFor(30 * time.Second)
	if connErr != nil {
		t.Fatalf("connect via the old home broker: %v", connErr)
	}
}

// TestChaosRestartedBrokerNoStaleAttrPoints is the CAN-path regression
// guard: a restarted broker starts with an empty CAN, so attribute
// lookups must not resolve records of hosts that never re-registered —
// only the re-registered ones, exactly once.
func TestChaosRestartedBrokerNoStaleAttrPoints(t *testing.T) {
	specs := []Spec{
		{Key: "alpha", RTTToHub: 2 * time.Millisecond, AccessBps: 100e6,
			NAT: nat.FullCone, Attrs: can.Point{0.2, 0.2}},
		{Key: "beta", RTTToHub: 2 * time.Millisecond, AccessBps: 100e6,
			NAT: nat.RestrictedCone, Attrs: can.Point{0.8, 0.8}},
	}
	w, err := Build(45, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	b1, err := w.AddBroker("b1", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"alpha", "beta"} {
		if err := w.SetHome(key, "b1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	lookup := func(from string, at can.Point) []rendezvous.HostRecord {
		t.Helper()
		var recs []rendezvous.HostRecord
		var err error
		done := false
		w.Eng.Spawn("lookup", func(p *sim.Proc) {
			recs, err = w.M(from).WAV.LookupAttrs(p, at)
			done = true
		})
		w.Eng.RunFor(15 * time.Second)
		if !done || err != nil {
			t.Fatalf("LookupAttrs from %s: done=%v err=%v", from, done, err)
		}
		return recs
	}
	// Attribute lookups return every record in the queried point's CAN
	// zone; with a single broker that zone is the whole space, so alpha
	// must be among them pre-restart.
	has := func(recs []rendezvous.HostRecord, name string) bool {
		for _, r := range recs {
			if r.Name == name {
				return true
			}
		}
		return false
	}
	if recs := lookup("beta", can.Point{0.2, 0.2}); !has(recs, "alpha") {
		t.Fatalf("pre-restart lookup = %+v, want alpha present", recs)
	}

	// alpha leaves for good; the broker crashes and restarts empty.
	w.M("alpha").WAV.Leave()
	fi := w.Inject(
		KillBrokerAt(time.Second, "b1"),
		RestartBrokerAt(3*time.Second, "b1"),
	)
	// beta keeps pulsing, gets the unknown-session ack from the fresh
	// broker, and re-registers (republishing its attribute point).
	w.Eng.RunFor(30 * time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault schedule failed: %v", fails)
	}
	if w.M("beta").WAV.Reregisters == 0 {
		t.Fatal("beta never re-registered with the restarted broker")
	}
	b1, _ = w.Broker("b1")
	if !b1.HasSession("beta") {
		t.Fatal("restarted broker has no session for beta")
	}
	// The dead host's attribute point must be gone; beta's must resolve
	// exactly once (no duplicate or stale CAN entries).
	if recs := lookup("beta", can.Point{0.2, 0.2}); has(recs, "alpha") {
		t.Fatalf("restarted broker served stale attribute records: %+v", recs)
	}
	if recs := lookup("beta", can.Point{0.8, 0.8}); len(recs) != 1 || recs[0].Name != "beta" {
		t.Fatalf("post-restart lookup for beta = %+v, want exactly beta", recs)
	}
}
