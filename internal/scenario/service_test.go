package scenario

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestChaosServiceVIPSurvivesFailures is the service-layer acceptance
// chaos test: one VIP backed by three backends (two member hosts and a
// managed VM) keeps serving pings and TCP through (a) the death of the
// active backend, (b) the failover of the anchor's home broker, and
// (c) a live migration of the backend VM. Failover time is bounded by
// the probe fall budget, the withdrawn backend recovers after heal, and
// a witness broker the spec never named holds zero VIP records.
func TestChaosServiceVIPSurvivesFailures(t *testing.T) {
	w, err := Build(71, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if _, err := w.AddBroker("b1", chaosBrokerCfg()); err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	witness, err := w.AddBroker("witness", chaosBrokerCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}

	const (
		interval = time.Second
		timeout  = 250 * time.Millisecond
		fall     = 3
	)
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "svc", CIDR: "10.90.0.0/24", StaticAddressing: true,
			ServicePool: "10.90.0.192/28",
			Members:     []string{"pc00", "pc01", "pc02", "pc03"},
			Brokers:     []string{"b1", "b2"},
		}},
		VMs: []vpc.VMSpec{{Name: "cache", Network: "svc", IP: "10.90.0.50", Host: "pc02"}},
		Services: []vpc.ServiceSpec{{
			Name: "web", Network: "svc", VIP: "10.90.0.200",
			Policy: "failover-ordered",
			// pc01 ranks first so the ACTIVE backend is not the anchor
			// (pc00): killing it must not take the prober down too.
			Backends: []vpc.BackendSpec{{Member: "pc01"}, {Member: "pc03"}, {VM: "cache"}},
			Interval: interval, Timeout: timeout, Fall: fall, Rise: 2,
		}},
	}
	rep, err := w.ApplySync(spec)
	if err != nil {
		t.Fatalf("apply: %v (report: %v)", err, rep)
	}
	if ops := strings.Join(rep.Ops(), ","); !strings.Contains(ops, "service-create") {
		t.Fatalf("ops = %q, want a service-create", ops)
	}
	again, err := w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("re-apply not a no-op: %v", again)
	}

	svc, ok := w.ResolveService("web")
	if !ok {
		t.Fatal("ResolveService found no service")
	}
	vip, _ := w.ServiceVIP("web")
	if vip.String() != "10.90.0.200" {
		t.Fatalf("VIP = %s, want 10.90.0.200", vip)
	}

	n, _ := w.VPC().Get("svc")
	member := func(key string) *vpc.Member {
		m, ok := n.Member(key)
		if !ok {
			t.Fatalf("%s not a member", key)
		}
		return m
	}
	v, ok := w.ResolveVM("cache")
	if !ok {
		t.Fatal("ResolveVM found no managed VM")
	}

	// Every backend serves a one-shot TCP echo on :8080 from the stack
	// the VIP is aliased onto.
	serve := func(name string, st *ipstack.Stack) {
		w.Eng.Spawn("srv-"+name, func(p *sim.Proc) {
			l, err := st.Listen(8080)
			if err != nil {
				return
			}
			for {
				c, err := l.Accept(p)
				if err != nil {
					return
				}
				buf := make([]byte, 64)
				if nn, err := c.Read(p, buf); err == nil && nn > 0 {
					c.Write(p, buf[:nn])
				}
				c.Close()
			}
		})
	}
	serve("pc01", member("pc01").Stack)
	serve("pc03", member("pc03").Stack)
	serve("cache", v.Stack())

	// pingVIP and dialVIP drive the VIP from a client host; steering on
	// that host picks the backend.
	pingVIP := func(from string) error {
		var perr error
		done := false
		w.Eng.Spawn("ping-"+from, func(p *sim.Proc) {
			_, perr = member(from).Stack.Ping(p, vip, 56, 3*time.Second)
			done = true
		})
		w.Eng.RunFor(5 * time.Second)
		if !done {
			t.Fatalf("ping from %s never finished", from)
		}
		return perr
	}
	dialVIP := func(from string) error {
		var derr error
		done := false
		w.Eng.Spawn("dial-"+from, func(p *sim.Proc) {
			defer func() { done = true }()
			c, err := member(from).Stack.Dial(p, netsim.Addr{IP: vip, Port: 8080})
			if err != nil {
				derr = err
				return
			}
			defer c.Close()
			if _, err := c.Write(p, []byte("hello vip")); err != nil {
				derr = err
				return
			}
			buf := make([]byte, 64)
			if nn, err := c.Read(p, buf); err != nil && nn == 0 {
				derr = err
			}
		})
		w.Eng.RunFor(10 * time.Second)
		if !done {
			t.Fatalf("dial from %s never finished", from)
		}
		return derr
	}

	w.Eng.RunFor(5 * time.Second) // tunnels and first probe rounds settle
	if got, _ := svc.Active(); got != "pc01" {
		t.Fatalf("active backend = %q, want pc01", got)
	}
	if err := pingVIP("pc00"); err != nil {
		t.Fatalf("baseline ping via VIP: %v", err)
	}
	if err := dialVIP("pc02"); err != nil {
		t.Fatalf("baseline TCP via VIP: %v", err)
	}

	// (a) Kill the active backend: isolate pc01 from every machine AND
	// every broker one second in — a partial cut would not do, because
	// the fabric's relay fallback can legitimately resurrect a backend
	// the brokers still reach. Probes from the anchor start missing;
	// within the fall budget the VIP must steer to pc03.
	isolated := []string{"pc00", "pc02", "pc03", "b1", "b2"}
	faults := make([]Fault, 0, len(isolated))
	for _, peer := range isolated {
		faults = append(faults, PartitionAt(time.Second, "pc01", peer))
	}
	fi := w.Inject(faults...)
	w.Eng.RunFor(10 * time.Second)
	if fails := fi.Failures(); len(fails) != 0 {
		t.Fatalf("fault injection failed: %v", fails)
	}
	if svc.Healthy("pc01") {
		t.Fatal("pc01 still marked healthy after partition")
	}
	if got, _ := svc.Active(); got != "pc03" {
		t.Fatalf("active backend = %q after backend death, want pc03", got)
	}
	if err := pingVIP("pc00"); err != nil {
		t.Fatalf("ping via VIP after backend death: %v", err)
	}
	if err := dialVIP("pc02"); err != nil {
		t.Fatalf("TCP via VIP after backend death: %v", err)
	}
	if c := svc.Counters(); c.Get("withdrawals") < 1 || c.Get("failovers") < 1 {
		t.Fatalf("counters %s, want withdrawals>=1 failovers>=1", c)
	}

	// The failover left a span whose duration — first missed probe to
	// steering flip — is bounded by the probe fall budget.
	budget := time.Duration(fall)*interval + timeout
	found := false
	for _, sp := range w.Obs.Find("service.failover") {
		if !sp.HasEvent("withdrew backend pc01") {
			continue
		}
		found = true
		if d := sp.Duration(); d <= 0 || time.Duration(d) > budget {
			t.Fatalf("failover span took %v, budget %v", d, budget)
		}
	}
	if !found {
		t.Fatal("no service.failover span recorded the pc01 withdrawal")
	}

	// (b) Kill the anchor's home broker. The anchor re-homes onto b2 and
	// re-asserts its VIP records there; the data plane never notices.
	if err := w.KillBroker("b1"); err != nil {
		t.Fatal(err)
	}
	ttl := chaosBrokerCfg().SessionTTL
	w.Eng.RunFor(ttl + 10*time.Second)
	if home, ok := w.CurrentHome("pc00"); !ok || home != "b2" {
		t.Fatalf("anchor homed at %q after broker kill, want b2", home)
	}
	if got := b2.VIPRecordsFor("svc"); got < 1 {
		t.Fatalf("b2 holds %d VIP records after broker failover, want >=1", got)
	}
	if err := pingVIP("pc00"); err != nil {
		t.Fatalf("ping via VIP after broker failover: %v", err)
	}

	// Heal pc01. It was dark longer than the tunnel timeout, so every
	// mesh edge to it was garbage-collected — and its old home broker is
	// gone. Recovery is three layers deep: pc01 re-homes onto b2, the
	// network's mesh-repair loop re-punches the dropped tunnels, and
	// after Rise clean probes the service re-announces the backend; the
	// failover-ordered policy then steers the VIP back to its first rank.
	for _, peer := range isolated {
		if err := w.Heal("pc01", peer); err != nil {
			t.Fatal(err)
		}
	}
	w.Eng.RunFor(30 * time.Second)
	if !svc.Healthy("pc01") {
		t.Fatal("pc01 did not recover after heal")
	}
	if got, _ := svc.Active(); got != "pc01" {
		t.Fatalf("active backend = %q after recovery, want pc01", got)
	}
	if c := svc.Counters(); c.Get("recoveries") < 1 {
		t.Fatalf("counters %s, want recoveries>=1", c)
	}
	if err := dialVIP("pc02"); err != nil {
		t.Fatalf("TCP via VIP after recovery: %v", err)
	}

	// (c) Live-migrate the backend VM. The VM pass migrates, the service
	// pass sees the resolved backend drift and rebuilds in place.
	spec.VMs[0].Host = "pc01"
	rep, err = w.ApplySync(spec)
	if err != nil {
		t.Fatalf("migrating apply: %v (report: %v)", err, rep)
	}
	if ops := strings.Join(rep.Ops(), ","); ops != "vm-migrate,service-update" {
		t.Fatalf("ops = %q, want exactly vm-migrate,service-update", ops)
	}
	if host, _ := w.VMHost("cache"); host != "pc01" {
		t.Fatalf("VM on %q after migration, want pc01", host)
	}
	w.Eng.RunFor(5 * time.Second)
	svc, _ = w.ResolveService("web") // rebuilt instance
	if !svc.Healthy("cache") {
		t.Fatal("cache unhealthy after live migration")
	}
	if err := pingVIP("pc00"); err != nil {
		t.Fatalf("ping via VIP after VM migration: %v", err)
	}

	// Converged: a final re-apply is a no-op, and the witness broker the
	// spec never named holds no stray record of any kind.
	again, err = w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("post-chaos re-apply not a no-op: %v", again)
	}
	if got := witness.VIPRecordsFor("svc"); got != 0 {
		t.Fatalf("witness holds %d VIP records, want 0", got)
	}
	if got := witness.RecordsFor("svc"); got != 0 {
		t.Fatalf("witness holds %d host records, want 0", got)
	}
	if err := w.ScrapeCheck(); err != nil {
		t.Fatal(err)
	}
}
