package scenario

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestFederatedNetworkEndToEnd is the federation acceptance test: one
// tenant network spans two brokers; a host homed on broker A punches a
// tunnel end-to-end to a co-tenant homed on broker B (data plane
// verified by ping), while a federated broker the spec does not name —
// and the unnamed primary — hold zero of the tenant's records.
func TestFederatedNetworkEndToEnd(t *testing.T) {
	w, err := Build(31, EmulatedWANSpecs(5, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w.AddBroker("b1", rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	witness, err := w.AddBroker("witness", rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}

	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "fed", CIDR: "10.70.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02", "pc03"},
			Brokers: []string{"b1", "b2"},
		}},
	}
	rep, err := w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range rep.Actions {
		if a.Op == "federate" && a.Network == "fed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no federate action in %v", rep.Ops())
	}
	rep2, err := w.ApplySync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Empty() {
		t.Fatalf("second apply not idempotent: %v", rep2.Ops())
	}

	// Homing: sessions live on the declared home brokers only.
	if !b1.HasSession("pc00") || !b2.HasSession("pc02") {
		t.Fatal("hosts did not home on their brokers")
	}
	if w.Rdv.HasSession("pc00") || w.Rdv.HasSession("pc02") {
		t.Fatal("hosts also registered on the primary broker")
	}

	// Scope: both named brokers know all four records (homed+replica);
	// the unnamed witness and the unnamed primary know none.
	if got := b1.RecordsFor("fed"); got != 4 {
		t.Fatalf("b1 records = %d, want 4", got)
	}
	if got := b2.RecordsFor("fed"); got != 4 {
		t.Fatalf("b2 records = %d, want 4", got)
	}
	if got := witness.RecordsFor("fed"); got != 0 || witness.ReplicaCount() != 0 {
		t.Fatalf("witness broker holds %d fed records, %d replicas; want 0",
			got, witness.ReplicaCount())
	}
	if got := w.Rdv.RecordsFor("fed"); got != 0 {
		t.Fatalf("primary broker holds %d fed records, want 0", got)
	}

	// Cross-broker tunnel: pc00 (b1) <-> pc03 (b2) was punched during
	// the admission mesh; it must be direct (not relayed) and carry
	// traffic end-to-end.
	tun, ok := w.M("pc00").WAV.Tunnel("pc03")
	if !ok || !tun.Established() {
		t.Fatal("no established cross-broker tunnel pc00-pc03")
	}
	if tun.Relayed {
		t.Fatal("cross-broker tunnel fell back to relay; punch was not brokered")
	}
	net, _ := w.VPC().Get("fed")
	var src, dst *vpc.Member
	for _, m := range net.Members() {
		switch m.Host.Name() {
		case "pc00":
			src = m
		case "pc03":
			dst = m
		}
	}
	var pingErr error
	w.Eng.Spawn("cross-ping", func(p *sim.Proc) {
		src.Stack.Ping(p, dst.IP, 56, 5*time.Second) // warm ARP
		_, pingErr = src.Stack.Ping(p, dst.IP, 56, 5*time.Second)
	})
	w.Eng.RunFor(15 * time.Second)
	if pingErr != nil {
		t.Fatalf("cross-broker ping: %v", pingErr)
	}

	// Cross-broker lookup resolves through the replica store.
	var recs []rendezvous.HostRecord
	var lookErr error
	w.Eng.Spawn("lookup", func(p *sim.Proc) {
		recs, lookErr = w.M("pc00").WAV.Lookup(p, "pc03")
	})
	w.Eng.RunFor(10 * time.Second)
	if lookErr != nil || len(recs) != 1 || recs[0].Server != b2.Addr() {
		t.Fatalf("cross-broker lookup: err=%v recs=%+v", lookErr, recs)
	}

	// A member homed on a broker the network does not name is refused
	// before its record could leak outside the federation.
	bad := spec
	bad.Networks = append([]vpc.NetworkSpec(nil), spec.Networks...)
	bad.Networks[0].Members = append(append([]string(nil),
		spec.Networks[0].Members...), "pc04") // pc04 homes on the primary
	if _, err := w.ApplySync(bad); err == nil ||
		!strings.Contains(err.Error(), "does not name") {
		t.Fatalf("unhomed member admitted: %v", err)
	}
}

// TestFederatedPeeringAcrossBrokers: two networks of one tenant, homed
// on different brokers but sharing a broker set, peer — the allowance
// propagates across the federation and the inter-VNI gateway path works
// for endpoints homed on different brokers.
func TestFederatedPeeringAcrossBrokers(t *testing.T) {
	w, err := Build(32, EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w.AddBroker("b1", rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.AddBroker("b2", rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for key, broker := range map[string]string{
		"pc00": "b1", "pc01": "b1", "pc02": "b2", "pc03": "b2",
	} {
		if err := w.SetHome(key, broker); err != nil {
			t.Fatal(err)
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "red", CIDR: "10.10.0.0/24", StaticAddressing: true,
				Members: []string{"pc00", "pc01"}, Brokers: []string{"b1", "b2"}},
			{Name: "blue", CIDR: "10.20.0.0/24", StaticAddressing: true,
				Members: []string{"pc02", "pc03"}, Brokers: []string{"b1", "b2"}},
		},
		Peerings: []vpc.PeeringSpec{{A: "red", B: "blue"}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	if !b1.PeeringAllowed("red", "blue") || !b2.PeeringAllowed("red", "blue") {
		t.Fatal("peering allowance did not reach both brokers")
	}

	red, _ := w.VPC().Get("red")
	blue, _ := w.VPC().Get("blue")
	sender := red.Members()[0]  // homed on b1
	target := blue.Members()[1] // homed on b2
	var pingErr error
	w.Eng.Spawn("peered-ping", func(p *sim.Proc) {
		sender.Stack.Ping(p, target.IP, 32, 4*time.Second)
		_, pingErr = sender.Stack.Ping(p, target.IP, 32, 4*time.Second)
	})
	w.Eng.RunFor(20 * time.Second)
	if pingErr != nil {
		t.Fatalf("peered cross-broker ping: %v", pingErr)
	}

	// Unpeer: the revocation must reach both brokers too.
	spec.Peerings = nil
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	if b1.PeeringAllowed("red", "blue") || b2.PeeringAllowed("red", "blue") {
		t.Fatal("revocation did not reach both brokers")
	}
}
