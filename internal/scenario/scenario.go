// Package scenario builds the evaluation topologies of the paper:
//
//   - the real Asia-Pacific WAN of Table I (seven sites, measured RTTs to
//     HKU, access bandwidths calibrated to the paper's reported WAVNet
//     throughputs), and
//   - the emulated WAN (NATed PCs behind gateways whose uplinks are
//     shaped to a configurable rate, like the paper's iptables + tc
//     testbed).
//
// A World owns the physical network plus helpers that bring WAVNet, the
// IPOP baseline, or a raw "physical" data path up on any machine subset.
package scenario

import (
	"fmt"
	"time"

	"wavnet/internal/can"
	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/ipop"
	"wavnet/internal/ipstack"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/service"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
	"wavnet/internal/vpc"
)

// Spec describes one machine of a topology.
type Spec struct {
	Key       string
	RTTToHub  sim.Duration // round trip to the hub site (HKU)
	AccessBps float64      // gateway uplink/downlink rate
	NAT       nat.Type
	// Attrs is the machine's resource-state vector (e.g. normalized CPU
	// and memory), indexed by the rendezvous layer's CAN for attribute
	// queries. Optional; length must match the CAN dimensionality (2).
	Attrs can.Point
}

// RealWANSpecs reproduces Table I. RTTs are the paper's ping latencies;
// access bandwidths are calibrated so that measured WAVNet throughput
// lands near the paper's reported values (Tables IV and V).
func RealWANSpecs() []Spec {
	ms := func(v float64) sim.Duration { return sim.Duration(v * float64(time.Millisecond)) }
	return []Spec{
		{Key: "HKU1", RTTToHub: ms(0.5), AccessBps: 100e6, NAT: nat.FullCone},
		{Key: "HKU2", RTTToHub: ms(0.5), AccessBps: 100e6, NAT: nat.FullCone},
		{Key: "HKU3", RTTToHub: ms(0.5), AccessBps: 100e6, NAT: nat.RestrictedCone},
		{Key: "PU", RTTToHub: ms(30.2), AccessBps: 50e6, NAT: nat.RestrictedCone},
		{Key: "Sinica", RTTToHub: ms(24.8), AccessBps: 48e6, NAT: nat.FullCone},
		{Key: "AIST", RTTToHub: ms(75.8), AccessBps: 60e6, NAT: nat.PortRestrictedCone},
		{Key: "SDSC", RTTToHub: ms(271.2), AccessBps: 30e6, NAT: nat.FullCone},
		{Key: "OffCam", RTTToHub: ms(4.4), AccessBps: 95e6, NAT: nat.PortRestrictedCone},
		{Key: "SIAT", RTTToHub: ms(74.2), AccessBps: 21e6, NAT: nat.RestrictedCone},
	}
}

// RealWANOverrides lists measured pairwise RTTs that deviate from the
// hub-sum approximation (Table II reports SIAT–PU directly).
func RealWANOverrides() map[[2]string]sim.Duration {
	return map[[2]string]sim.Duration{
		{"SIAT", "PU"}: 219427 * time.Microsecond,
	}
}

// Machine is one physical host of a scenario with its optional overlay
// attachments.
type Machine struct {
	Key   string
	Index int
	Spec  Spec
	Phys  *netsim.Host
	GW    *nat.Gateway

	WAV  *core.Host
	IPOP *ipop.Node

	// home names the rendezvous broker this machine registers with
	// ("" = the world's primary broker).
	home string

	// VIP is the machine's virtual address on the WAVNet LAN (10.1.0.x);
	// the IPOP dom0 uses 10.2.0.x.
	VIP     netsim.IP
	IPOPVIP netsim.IP

	physStacks map[string]*ipstack.Stack
}

// Dom0 returns the machine's WAVNet management stack (nil before
// WAVNetUp).
func (m *Machine) Dom0() *ipstack.Stack {
	if m.WAV == nil {
		return nil
	}
	return m.WAV.Dom0()
}

// PrimaryBroker is the name of the rendezvous broker Build creates.
const PrimaryBroker = "rdv"

// brokerSite is the immutable placement of one broker: the machine it
// runs on, its site, STUN alternate IP and config — everything needed
// to restart a fresh server there after a kill.
type brokerSite struct {
	host *netsim.Host
	site *netsim.Site
	alt  netsim.IP
	cfg  rendezvous.Config
}

// World is a built scenario.
type World struct {
	Eng      *sim.Engine
	Net      *netsim.Network
	Hub      *netsim.Site
	Rdv      *rendezvous.Server // primary broker (Brokers[0])
	Machines []*Machine
	byKey    map[string]*Machine
	// machineOf attributes substrate hosts (each machine's PC and its
	// site gateway) back to the machine, so the network's drop hook can
	// charge wire losses to the WAVNet flows the lost packet carried —
	// WAN drops happen at the gateway, after NAT rewrote the source.
	machineOf map[*netsim.Host]*Machine

	// Obs is the world's span tracer: every host, broker, VM and the
	// VPC reconciler record their multi-step control flows (tunnel
	// punches, re-home elections, applies, migrations) into it, so
	// chaos tests assert on timelines rather than terminal counters.
	Obs *obs.Trace

	// FlowLog receives the closed flow records of every WAVNet host the
	// world creates (idle evictions and Leave/DrainFlows drains).
	// FlowScrape folds it into labeled series; TopTalkers ranks it.
	FlowLog *obs.FlowLog

	// Alerts is the world's rule-driven alerting engine: every Scrape
	// feeds it the fresh snapshot, advancing each rule's pending →
	// firing → resolved lifecycle and recording firing windows as
	// "alert.<name>" spans on Obs. Built with DefaultAlertRules; add
	// scenario-specific rules before traffic starts.
	Alerts *obs.AlertEngine

	// HostCfg is the template config for WAVNet hosts the world creates
	// (joinHosts, ResolveHost); per-machine attributes override Attrs.
	// Set it before WAVNetUp/Apply — chaos tests use it to shorten pulse
	// periods and broker timeouts.
	HostCfg core.Config

	// Brokers are the world's rendezvous servers in creation order; all
	// are mutually federated, but records replicate only within each
	// network's declared broker set.
	Brokers      []*rendezvous.Server
	brokerByName map[string]*rendezvous.Server
	brokerSites  map[string]*brokerSite
	deadBrokers  map[string]bool
	// netFed is the applied federation per network: the broker names
	// serving it (absent = primary only).
	netFed map[string][]string

	IPOPNet *ipop.Network

	physPort uint16
	vpcMgr   *vpc.Manager

	// vms are the world-booted (unmanaged) VMs by name; tenant-managed
	// VMs live on the VPC manager and are found through ResolveVM.
	vms map[string]*vm.VM
}

// M returns a machine by key, panicking on unknown keys (scenario wiring
// errors are programming errors).
func (w *World) M(key string) *Machine {
	m, ok := w.byKey[key]
	if !ok {
		panic("scenario: unknown machine " + key)
	}
	return m
}

// Build constructs a world from specs: a hub site holding the rendezvous
// server, plus one NATed machine per spec at its own site.
func Build(seed int64, specs []Spec, overrides map[[2]string]sim.Duration) (*World, error) {
	w := &World{
		Eng:          sim.NewEngine(seed),
		byKey:        make(map[string]*Machine),
		machineOf:    make(map[*netsim.Host]*Machine),
		brokerByName: make(map[string]*rendezvous.Server),
		brokerSites:  make(map[string]*brokerSite),
		deadBrokers:  make(map[string]bool),
		netFed:       make(map[string][]string),
		physPort:     4700,
		vms:          make(map[string]*vm.VM),
	}
	w.Net = netsim.New(w.Eng)
	w.Hub = w.Net.NewSite("hub")
	w.Obs = obs.NewTrace(w.Eng, 0)
	w.FlowLog = obs.NewFlowLog(0)
	w.Alerts = obs.NewAlertEngine(w.Obs, DefaultAlertRules()...)
	// Attribute substrate drops back to the overlay: a lost packet that
	// carried an encapsulated frame (or a batch of them) charges each
	// frame's flow on the machine that sent it. The hook runs on the sim
	// event loop, so the flow table's single-writer invariant holds.
	w.Net.SetDropHook(func(from *netsim.Host, pkt *netsim.Packet, reason netsim.DropReason) {
		m := w.machineOf[from]
		if m == nil || m.WAV == nil {
			return
		}
		m.WAV.AccountWireDrop(pkt.Payload, flowDropReason(reason))
	})

	rdvCfg := rendezvous.Config{Name: PrimaryBroker, Tracer: w.Obs}
	rdvHost := w.Net.NewPublicHost("rdv", w.Hub, netsim.MustParseIP("50.0.0.1"), 1e9, 100*time.Microsecond)
	rdv, err := rendezvous.NewServer(rdvHost, netsim.MustParseIP("50.0.0.2"), rdvCfg)
	if err != nil {
		return nil, err
	}
	rdv.Bootstrap()
	w.Rdv = rdv
	w.Brokers = []*rendezvous.Server{rdv}
	w.brokerByName[PrimaryBroker] = rdv
	w.brokerSites[PrimaryBroker] = &brokerSite{
		host: rdvHost, site: w.Hub, alt: netsim.MustParseIP("50.0.0.2"), cfg: rdvCfg,
	}

	sites := make([]*netsim.Site, len(specs))
	for i, sp := range specs {
		site := w.Net.NewSite(sp.Key)
		sites[i] = site
		w.Net.SetRTT(w.Hub, site, sp.RTTToHub)
		for j := 0; j < i; j++ {
			rtt := sp.RTTToHub + specs[j].RTTToHub
			if overrides != nil {
				if v, ok := overrides[[2]string{sp.Key, specs[j].Key}]; ok {
					rtt = v
				} else if v, ok := overrides[[2]string{specs[j].Key, sp.Key}]; ok {
					rtt = v
				}
			}
			w.Net.SetRTT(site, sites[j], rtt)
		}
		gwIP := netsim.MakeIP(60, byte(i+1), 0, 1)
		gw := w.Net.NewPublicHost("gw-"+sp.Key, site, gwIP, sp.AccessBps, 100*time.Microsecond)
		lan := w.Net.NewLan("lan-"+sp.Key, site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		m := &Machine{
			Key:        sp.Key,
			Index:      i,
			Spec:       sp,
			GW:         nat.Attach(gw, sp.NAT),
			VIP:        netsim.MakeIP(10, 1, byte(i/250), byte(i%250+1)),
			IPOPVIP:    netsim.MakeIP(10, 2, byte(i/250), byte(i%250+1)),
			physStacks: make(map[string]*ipstack.Stack),
		}
		m.Phys = lan.NewHost("pc-"+sp.Key, netsim.MustParseIP("192.168.0.2"))
		w.Machines = append(w.Machines, m)
		w.byKey[sp.Key] = m
		w.machineOf[m.Phys] = m
		w.machineOf[gw] = m
	}
	return w, nil
}

// ---- federated rendezvous: broker topology ----

// AddBroker creates one more rendezvous server at its own public site
// and federates it mutually with every existing broker. Federation is
// trust, not replication: records still travel only within each
// network's declared broker set (TenantSpec's NetworkSpec.Brokers).
func (w *World) AddBroker(name string, cfg rendezvous.Config) (*rendezvous.Server, error) {
	if name == "" {
		return nil, fmt.Errorf("scenario: broker needs a name")
	}
	if _, dup := w.brokerByName[name]; dup {
		return nil, fmt.Errorf("scenario: broker %q already exists", name)
	}
	n := len(w.Brokers)
	if n > 250 {
		return nil, fmt.Errorf("scenario: broker address space exhausted")
	}
	site := w.Net.NewSite("hub-" + name)
	alt := netsim.MakeIP(50, 0, byte(n), 2)
	host := w.Net.NewPublicHost("rdv-"+name, site,
		netsim.MakeIP(50, 0, byte(n), 1), 1e9, 100*time.Microsecond)
	if cfg.Name == "" {
		cfg.Name = name
	}
	if cfg.Tracer == nil {
		cfg.Tracer = w.Obs
	}
	s, err := rendezvous.NewServer(host, alt, cfg)
	if err != nil {
		return nil, err
	}
	s.Bootstrap()
	for _, other := range w.Brokers {
		other.Federate(s.Addr())
		s.Federate(other.Addr())
	}
	w.Brokers = append(w.Brokers, s)
	w.brokerByName[name] = s
	w.brokerSites[name] = &brokerSite{host: host, site: site, alt: alt, cfg: cfg}
	return s, nil
}

// ---- broker failover: kill, restart, partition ----

// KillBroker crashes a named broker: its broker socket, STUN service
// and CAN node close and all state (sessions, replicas, CAN index) is
// lost. Hosts homed there detect the silence and re-home onto another
// broker of their network's declared set; surviving brokers withdraw
// its replicas after the liveness TTL. The broker can come back with
// RestartBroker.
func (w *World) KillBroker(name string) error {
	s, ok := w.brokerByName[name]
	if !ok {
		return fmt.Errorf("scenario: unknown broker %q", name)
	}
	if w.deadBrokers[name] {
		return fmt.Errorf("scenario: broker %q is already dead", name)
	}
	s.Close()
	w.deadBrokers[name] = true
	return nil
}

// RestartBroker brings a killed broker back on the same machine and
// addresses, with empty state (crash-restart semantics: no sessions, no
// replicas, a fresh CAN). It re-federates mutually with every live
// broker and re-installs the replication sets of the networks whose
// specs name it; home brokers re-replicate live records on their next
// refresh tick, and hosts that kept pulsing re-register when the fresh
// broker answers their pulse with an unknown-session code.
func (w *World) RestartBroker(name string) (*rendezvous.Server, error) {
	info, ok := w.brokerSites[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown broker %q", name)
	}
	if !w.deadBrokers[name] {
		return nil, fmt.Errorf("scenario: broker %q is not dead", name)
	}
	s, err := rendezvous.NewServer(info.host, info.alt, info.cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: restart %q: %w", name, err)
	}
	s.Bootstrap()
	delete(w.deadBrokers, name)
	for other, os := range w.brokerByName {
		if other == name || w.deadBrokers[other] {
			continue
		}
		os.Federate(s.Addr())
		s.Federate(os.Addr())
	}
	for i, old := range w.Brokers {
		if old == w.brokerByName[name] {
			w.Brokers[i] = s
		}
	}
	w.brokerByName[name] = s
	if name == PrimaryBroker {
		w.Rdv = s
	}
	for net, names := range w.netFed {
		for _, b := range names {
			if b != name {
				continue
			}
			peers := make([]netsim.Addr, 0, len(names)-1)
			for _, other := range names {
				if other != name {
					peers = append(peers, w.brokerByName[other].Addr())
				}
			}
			s.SetNetBrokers(net, peers)
		}
	}
	return s, nil
}

// BrokerDead reports whether a broker is currently killed.
func (w *World) BrokerDead(name string) bool { return w.deadBrokers[name] }

// CurrentHome scans the live brokers for the machine's session and
// returns the broker actually holding it now — after a failover this
// differs from the declared home (SetHome). Scan order follows broker
// creation order for determinism.
func (w *World) CurrentHome(key string) (string, bool) {
	for _, s := range w.Brokers {
		name := w.brokerName(s)
		if name == "" || w.deadBrokers[name] {
			continue
		}
		if s.HasSession(key) {
			return name, true
		}
	}
	return "", false
}

func (w *World) brokerName(s *rendezvous.Server) string {
	for name, b := range w.brokerByName {
		if b == s {
			return name
		}
	}
	return ""
}

// siteOf resolves a broker name or machine key to its site (for
// partition faults).
func (w *World) siteOf(name string) (*netsim.Site, error) {
	if info, ok := w.brokerSites[name]; ok {
		return info.site, nil
	}
	if m, ok := w.byKey[name]; ok {
		return m.Phys.Site(), nil
	}
	return nil, fmt.Errorf("scenario: unknown broker or machine %q", name)
}

// Partition severs the WAN path between the sites of two named
// endpoints (broker names or machine keys) until Heal. Traffic in both
// directions is dropped; everything else keeps flowing.
func (w *World) Partition(a, b string) error {
	sa, err := w.siteOf(a)
	if err != nil {
		return err
	}
	sb, err := w.siteOf(b)
	if err != nil {
		return err
	}
	w.Net.Partition(sa, sb)
	return nil
}

// Heal restores the WAN path between two partitioned endpoints.
func (w *World) Heal(a, b string) error {
	sa, err := w.siteOf(a)
	if err != nil {
		return err
	}
	sb, err := w.siteOf(b)
	if err != nil {
		return err
	}
	w.Net.Heal(sa, sb)
	return nil
}

// BrokerAddr implements vpc.Fabric: the dial address of a named broker
// ("" names the primary). Dead brokers still resolve — their address is
// a valid candidate again after RestartBroker, and hosts skip them
// while they stay down.
func (w *World) BrokerAddr(name string) (netsim.Addr, bool) {
	if name == "" {
		name = PrimaryBroker
	}
	s, ok := w.brokerByName[name]
	if !ok {
		return netsim.Addr{}, false
	}
	return s.Addr(), true
}

// Broker resolves a broker by name (PrimaryBroker is always present).
func (w *World) Broker(name string) (*rendezvous.Server, bool) {
	s, ok := w.brokerByName[name]
	return s, ok
}

// SetHome homes a machine on a named broker: its WAVNet host registers
// there instead of the primary. Must be called before the machine joins.
func (w *World) SetHome(key, broker string) error {
	m, ok := w.byKey[key]
	if !ok {
		return fmt.Errorf("scenario: unknown machine %q", key)
	}
	if _, ok := w.brokerByName[broker]; !ok {
		return fmt.Errorf("scenario: unknown broker %q", broker)
	}
	if m.WAV != nil && m.WAV.Joined() {
		return fmt.Errorf("scenario: %s already joined its broker", key)
	}
	m.home = broker
	return nil
}

// HomeBroker implements vpc.Fabric: the name of the broker the machine
// registers with. The empty key names the primary broker itself.
func (w *World) HomeBroker(key string) string {
	if m, ok := w.byKey[key]; ok && m.home != "" {
		return m.home
	}
	return PrimaryBroker
}

func (w *World) homeOf(m *Machine) *rendezvous.Server {
	if m.home != "" {
		return w.brokerByName[m.home]
	}
	return w.Rdv
}

// ConfigureNetFederation implements vpc.Fabric: it installs a network's
// replication set on every named broker (each gets the others as its
// peers for the network) and withdraws the network from brokers no
// longer named.
func (w *World) ConfigureNetFederation(net string, brokers []string) error {
	servers := make([]*rendezvous.Server, len(brokers))
	for i, name := range brokers {
		s, ok := w.brokerByName[name]
		if !ok {
			return fmt.Errorf("scenario: network %q names unknown broker %q", net, name)
		}
		servers[i] = s
	}
	named := make(map[string]bool, len(brokers))
	for _, name := range brokers {
		named[name] = true
	}
	for _, old := range w.netFed[net] {
		if !named[old] {
			w.brokerByName[old].ClearNetBrokers(net)
		}
	}
	for i, s := range servers {
		peers := make([]netsim.Addr, 0, len(servers)-1)
		for j, other := range servers {
			if j != i {
				peers = append(peers, other.Addr())
			}
		}
		s.SetNetBrokers(net, peers)
	}
	if len(brokers) == 0 {
		delete(w.netFed, net)
	} else {
		w.netFed[net] = append([]string(nil), brokers...)
	}
	return nil
}

// Locality implements vpc.Fabric: the measured RTT matrix the first
// live broker serving the network has accumulated in its distance
// locator. Returns (nil, nil) when every serving broker is dead — the
// placement scheduler then degrades to load balancing.
func (w *World) Locality(net string) ([]string, [][]sim.Duration) {
	for _, s := range w.brokersServing(net) {
		if name := w.brokerName(s); name != "" && w.deadBrokers[name] {
			continue
		}
		l := s.Locator()
		return l.Hosts(), l.Matrix()
	}
	return nil, nil
}

// ReportNetRTTs measures the tunnel RTT between every connected pair of
// the named network's members and reports the results into the distance
// locator of each broker serving the network — the harness's compressed
// stand-in for every member uploading an rtt-report to its home broker
// and the federation sharing the locator state. Run it before applying
// a spec with scheduler-placed VMs so placement has locality data. It
// drives the engine internally.
func (w *World) ReportNetRTTs(network string) error {
	n, ok := w.VPC().Get(network)
	if !ok {
		return vpc.ErrNoSuchNetwork
	}
	members := n.Members()
	type meas struct {
		a, b string
		rtt  sim.Duration
	}
	var out []meas
	var firstErr error
	done, want := 0, 0
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			a, b := members[i].Host, members[j].Host
			if _, ok := a.Tunnel(b.Name()); !ok {
				continue
			}
			want++
			w.Eng.Spawn("rtt-"+a.Name()+"-"+b.Name(), func(p *sim.Proc) {
				defer func() { done++ }()
				rtt, err := a.TunnelRTT(p, b.Name())
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("scenario: rtt %s-%s: %w", a.Name(), b.Name(), err)
					}
					return
				}
				out = append(out, meas{a.Name(), b.Name(), rtt})
			})
		}
	}
	for spent := 0; done < want && spent < 60; spent++ {
		w.Eng.RunFor(time.Second)
	}
	if firstErr != nil {
		return firstErr
	}
	if done < want {
		return fmt.Errorf("scenario: %d RTT probes still pending", want-done)
	}
	for _, s := range w.brokersServing(network) {
		if name := w.brokerName(s); name != "" && w.deadBrokers[name] {
			continue
		}
		for _, m := range out {
			s.Locator().Report(m.a, m.b, m.rtt)
		}
	}
	return nil
}

// brokersServing returns the servers holding a network's records: its
// federated set, or the primary broker when it has none.
func (w *World) brokersServing(net string) []*rendezvous.Server {
	names, ok := w.netFed[net]
	if !ok {
		return []*rendezvous.Server{w.Rdv}
	}
	out := make([]*rendezvous.Server, 0, len(names))
	for _, name := range names {
		out = append(out, w.brokerByName[name])
	}
	return out
}

// EmulatedWANSpecs builds n identical NATed PCs whose WAN access is
// shaped to wanBps — the paper's emulated testbed. Round trips between
// any two PCs are ≈2 ms (campus-scale).
func EmulatedWANSpecs(n int, wanBps float64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		typ := nat.FullCone
		switch i % 3 {
		case 1:
			typ = nat.RestrictedCone
		case 2:
			typ = nat.PortRestrictedCone
		}
		specs[i] = Spec{
			Key:       fmt.Sprintf("pc%02d", i),
			RTTToHub:  time.Millisecond,
			AccessBps: wanBps,
			NAT:       typ,
		}
	}
	return specs
}

// hostConfig derives one machine's WAVNet host config from the world's
// template, with the machine's resource attributes layered on.
func (w *World) hostConfig(m *Machine) core.Config {
	cfg := w.HostCfg
	cfg.Attrs = m.Spec.Attrs
	if cfg.Tracer == nil {
		cfg.Tracer = w.Obs
	}
	if cfg.FlowLog == nil {
		cfg.FlowLog = w.FlowLog
	}
	return cfg
}

// joinHosts creates WAVNet hosts on the machines that lack one and
// registers them with the rendezvous server concurrently, optionally
// creating their default-LAN Dom0 stacks. It drives the engine.
func (w *World) joinHosts(ms []*Machine, withDom0 bool) error {
	errs := make([]error, len(ms))
	for i, m := range ms {
		i, m := i, m
		if m.WAV != nil {
			continue
		}
		h, err := core.NewHost(m.Phys, m.Key, w.hostConfig(m))
		if err != nil {
			return err
		}
		m.WAV = h
		home := w.homeOf(m)
		w.Eng.Spawn("join-"+m.Key, func(p *sim.Proc) {
			if errs[i] = h.Join(p, home.Addr()); errs[i] != nil {
				return
			}
			if withDom0 {
				h.CreateDom0(m.VIP)
			}
		})
	}
	w.Eng.RunFor(30 * time.Second)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("scenario: join %s: %w", ms[i].Key, err)
		}
	}
	return nil
}

// WAVNetUp joins the listed machines (all, when none given) to the
// rendezvous server, creates their Dom0 stacks, and establishes the full
// tunnel mesh among them. It drives the engine internally.
func (w *World) WAVNetUp(keys ...string) error {
	ms := w.pick(keys)
	if err := w.joinHosts(ms, true); err != nil {
		return err
	}
	// Full mesh among the subset, staggered so thousands of setup
	// exchanges do not collide in the same instant.
	pending := 0
	var firstErr error
	stagger := time.Duration(0)
	for i := range ms {
		for j := i + 1; j < len(ms); j++ {
			a, b := ms[i], ms[j]
			if _, ok := a.WAV.Tunnel(b.Key); ok {
				continue
			}
			pending++
			delay := stagger
			stagger += 10 * time.Millisecond
			w.Eng.Schedule(delay, func() {
				w.Eng.Spawn("mesh", func(p *sim.Proc) {
					if _, err := a.WAV.ConnectTo(p, b.Key); err != nil && firstErr == nil {
						firstErr = fmt.Errorf("scenario: connect %s-%s: %w", a.Key, b.Key, err)
					}
					pending--
				})
			})
		}
	}
	w.Eng.RunFor(2*time.Minute + stagger)
	if firstErr != nil {
		return firstErr
	}
	if pending != 0 {
		return fmt.Errorf("scenario: %d tunnels still pending", pending)
	}
	return nil
}

// ---- VM helpers ----

// AddVM boots an unmanaged VM on a machine's WAVNet host, attached to
// the default virtual LAN (the machine needs WAVNetUp's Dom0 for the
// migration channel). Tenant-scoped, scheduler-placed VMs are declared
// in TenantSpec.VMs instead and converge through Apply.
func (w *World) AddVM(key, name string, ip netsim.IP, cfg vm.Config) (*vm.VM, error) {
	if _, ok := w.vms[name]; ok {
		return nil, fmt.Errorf("scenario: VM %q already exists", name)
	}
	if _, managed := w.VPC().VM(name); managed {
		return nil, fmt.Errorf("scenario: VM %q is managed by the tenant API", name)
	}
	m, ok := w.byKey[key]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown machine %q", key)
	}
	if m.WAV == nil || m.WAV.Dom0() == nil {
		return nil, fmt.Errorf("scenario: machine %q has no WAVNet Dom0 (run WAVNetUp first)", key)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = w.Obs
	}
	v := vm.New(m.WAV, name, ip, cfg)
	w.vms[name] = v
	return v, nil
}

// ResolveVM finds a VM by name: tenant-managed VMs (placed by Apply)
// first, then world-booted ones (AddVM).
func (w *World) ResolveVM(name string) (*vm.VM, bool) {
	if v, ok := w.VPC().VM(name); ok {
		return v, true
	}
	v, ok := w.vms[name]
	return v, ok
}

// VMHost reports the machine key a VM currently runs on.
func (w *World) VMHost(name string) (string, bool) {
	if key, ok := w.VPC().VMHost(name); ok {
		return key, true
	}
	if v, ok := w.vms[name]; ok {
		return v.Host().Name(), true
	}
	return "", false
}

// ResolveService finds a tenant service by name (placed by Apply).
func (w *World) ResolveService(name string) (*service.Service, bool) {
	return w.VPC().Service(name)
}

// ServiceVIP reports the resolved VIP of a tenant service.
func (w *World) ServiceVIP(name string) (netsim.IP, bool) {
	return w.VPC().ServiceVIP(name)
}

// VPC returns the world's multi-tenant control plane (created lazily).
func (w *World) VPC() *vpc.Manager {
	if w.vpcMgr == nil {
		w.vpcMgr = vpc.NewManager()
		w.vpcMgr.SetTracer(w.Obs)
	}
	return w.vpcMgr
}

// ---- tenant API v2: declarative specs + reconciling Apply ----

// Apply converges the world onto a declarative TenantSpec: networks are
// created or torn down, members admitted or evicted (joining machines
// to the rendezvous layer on demand), peering gateways and broker
// allowances installed or revoked, and per-tenant quotas asserted. It
// blocks the calling process and returns the list of actions taken;
// applying an unchanged spec again returns an empty report. On error
// the report still lists the actions performed before the failure.
func (w *World) Apply(p *sim.Proc, spec vpc.TenantSpec) (*vpc.ApplyReport, error) {
	return w.VPC().Reconcile(p, spec, w)
}

// ResolveHost implements vpc.Fabric: it returns the machine's WAVNet
// host, creating it and joining it to its home broker first when
// needed.
func (w *World) ResolveHost(p *sim.Proc, key string) (*core.Host, error) {
	m, ok := w.byKey[key]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown machine %q", key)
	}
	if m.WAV == nil {
		h, err := core.NewHost(m.Phys, m.Key, w.hostConfig(m))
		if err != nil {
			return nil, err
		}
		m.WAV = h
	}
	if !m.WAV.Joined() {
		if err := m.WAV.Join(p, w.homeOf(m).Addr()); err != nil {
			return nil, fmt.Errorf("scenario: join %s: %w", key, err)
		}
	}
	return m.WAV, nil
}

// AllowNetPeering implements vpc.Fabric: the allowance is asserted on
// one origin broker per network and federation propagation
// (peer-allow) carries it to the rest of each replication set — one
// direct call plus a linear fan-out instead of telling every broker
// directly.
func (w *World) AllowNetPeering(a, b string) {
	for _, s := range w.peeringOrigins(a, b) {
		s.AllowPeering(a, b)
	}
}

// RevokeNetPeering implements vpc.Fabric against the same origins.
func (w *World) RevokeNetPeering(a, b string) {
	for _, s := range w.peeringOrigins(a, b) {
		s.RevokePeering(a, b)
	}
}

// peeringOrigins picks the first broker serving each network (deduped):
// its propagation reaches the network's remaining brokers, so two
// origins cover both sets even when they are disjoint.
func (w *World) peeringOrigins(a, b string) []*rendezvous.Server {
	seen := make(map[*rendezvous.Server]bool)
	var out []*rendezvous.Server
	for _, net := range []string{a, b} {
		if serving := w.brokersServing(net); len(serving) > 0 && !seen[serving[0]] {
			seen[serving[0]] = true
			out = append(out, serving[0])
		}
	}
	return out
}

// ApplySync runs Apply in a fresh process and drives the engine in
// slices until it converges, for callers outside simulation context
// (tests, experiment drivers, and the legacy imperative shims).
func (w *World) ApplySync(spec vpc.TenantSpec) (*vpc.ApplyReport, error) {
	var rep *vpc.ApplyReport
	var err error
	done := false
	w.Eng.Spawn("apply-"+spec.Tenant, func(p *sim.Proc) {
		rep, err = w.Apply(p, spec)
		done = true
	})
	members := 0
	for _, ns := range spec.Networks {
		members += len(ns.Members)
	}
	budget := time.Duration(members+len(spec.Peerings))*time.Minute + 30*time.Second
	// Live migrations are the slowest converge actions by far: budget
	// each VM generously (a pre-copy of hundreds of MB over a shaped WAN
	// runs for minutes of simulated time).
	budget += time.Duration(len(spec.VMs)) * 5 * time.Minute
	budget += time.Duration(len(spec.Services)) * 30 * time.Second
	// Drive the engine in slices so the world's clock stops close to
	// when convergence actually finishes (setup time is a measurement).
	for spent := time.Duration(0); !done && spent < budget; spent += time.Second {
		w.Eng.RunFor(time.Second)
	}
	if err != nil {
		return rep, err
	}
	if !done {
		return rep, fmt.Errorf("scenario: apply for tenant %s still pending", spec.Tenant)
	}
	return rep, nil
}

// CreateVPC registers a new isolated virtual network on the world's
// control plane, e.g. CreateVPC("red", "10.0.0.0/24").
//
// Deprecated: declare the network in a wavnet.TenantSpec and call
// World.Apply; CreateVPC is a shim that applies a one-network spec for
// a tenant of the same name.
func (w *World) CreateVPC(name, cidr string) (*vpc.Network, error) {
	if _, ok := w.VPC().Get(name); ok {
		return nil, vpc.ErrNetworkExists
	}
	spec := w.VPC().SnapshotTenant(name)
	spec.Networks = append(spec.Networks, vpc.NetworkSpec{Name: name, CIDR: cidr})
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	n, _ := w.VPC().Get(name)
	return n, nil
}

// JoinVPC admits the listed machines (all, when none given) into a
// virtual network: each joins the rendezvous server if it has not yet,
// is scoped to the network, meshes with its co-tenants only, and gets
// an address from the network's pool (DHCP-leased past the anchor).
// It drives the engine internally. Unlike WAVNetUp, no cross-tenant
// tunnels are built.
//
// Deprecated: list the members in a wavnet.TenantSpec and call
// World.Apply; JoinVPC is a shim that snapshots the owning tenant's
// live state, appends the machines to the network's member list and
// re-applies.
func (w *World) JoinVPC(network string, keys ...string) error {
	n, ok := w.VPC().Get(network)
	if !ok {
		if network == "" {
			return vpc.ErrNoDefault
		}
		return vpc.ErrNoSuchNetwork
	}
	tenant := n.Tenant
	if tenant == "" {
		tenant = n.Name
	}
	spec := w.VPC().SnapshotTenant(tenant)
	idx := -1
	for i := range spec.Networks {
		if spec.Networks[i].Name == n.Name {
			idx = i
		}
	}
	if idx < 0 {
		// Unowned network (created imperatively on the manager): the
		// apply below adopts it into the tenant. Its existing members
		// must ride along or the declarative diff would evict them.
		ns := vpc.NetworkSpec{
			Name: n.Name, CIDR: n.CIDR.String(), VNI: n.VNI,
			StaticAddressing: n.Config().StaticAddressing, Lease: n.Config().Lease,
		}
		for _, m := range n.Members() {
			ns.Members = append(ns.Members, m.Host.Name())
		}
		spec.Networks = append(spec.Networks, ns)
		idx = len(spec.Networks) - 1
	}
	ns := &spec.Networks[idx]
	have := make(map[string]bool, len(ns.Members))
	for _, k := range ns.Members {
		have[k] = true
	}
	for _, m := range w.pick(keys) {
		if !have[m.Key] {
			ns.Members = append(ns.Members, m.Key)
			have[m.Key] = true
		}
	}
	_, err := w.ApplySync(spec)
	return err
}

// IPOPUp brings the IPOP baseline up on the listed machines.
func (w *World) IPOPUp(keys ...string) error {
	ms := w.pick(keys)
	if w.IPOPNet == nil {
		w.IPOPNet = ipop.New(w.Eng, ipop.Config{})
	}
	for _, m := range ms {
		if m.IPOP != nil {
			continue
		}
		node, err := w.IPOPNet.AddNode(m.Phys, m.Key)
		if err != nil {
			return err
		}
		m.IPOP = node
	}
	w.IPOPNet.Build()
	failed := -1
	w.Eng.Spawn("ipop-bootstrap", func(p *sim.Proc) {
		failed = w.IPOPNet.Bootstrap(p, w.Rdv.STUNAddr())
	})
	w.Eng.RunFor(60 * time.Second)
	if failed != 0 {
		return fmt.Errorf("scenario: ipop bootstrap left %d links down", failed)
	}
	for _, m := range ms {
		if m.IPOP.Dom0() == nil {
			m.IPOP.CreateDom0(m.IPOPVIP)
		}
	}
	return nil
}

// PhysicalPair sets up the native-performance baseline between two
// machines: stacks joined by a raw UDP frame relay with no overlay
// processing (only UDP/IP encapsulation), holes pre-punched by
// simultaneous hellos. Returns the two stacks.
func (w *World) PhysicalPair(a, b *Machine) (*ipstack.Stack, *ipstack.Stack, error) {
	if st, ok := a.physStacks[b.Key]; ok {
		return st, b.physStacks[a.Key], nil
	}
	w.physPort++
	port := w.physPort
	la, err := newRawLink(a.Phys, port)
	if err != nil {
		return nil, nil, err
	}
	lb, err := newRawLink(b.Phys, port)
	if err != nil {
		return nil, nil, err
	}
	// Discover external mappings via the rendezvous STUN service and
	// punch simultaneously.
	okA, okB := false, false
	w.Eng.Spawn("phys-punch-a", func(p *sim.Proc) { okA = la.punch(p, w.Rdv.STUNAddr(), &lb.peer) })
	w.Eng.Spawn("phys-punch-b", func(p *sim.Proc) { okB = lb.punch(p, w.Rdv.STUNAddr(), &la.peer) })
	w.Eng.RunFor(15 * time.Second)
	if !okA || !okB {
		return nil, nil, fmt.Errorf("scenario: physical punch %s-%s failed", a.Key, b.Key)
	}
	mtu := 1472 - ether.HeaderLen
	sa := ipstack.New(w.Eng, a.Key+"-phys", la, ether.SeqMAC(uint32(1000+a.Index)),
		netsim.MakeIP(10, 9, byte(a.Index), 1), ipstack.Config{MTU: mtu})
	sb := ipstack.New(w.Eng, b.Key+"-phys", lb, ether.SeqMAC(uint32(1000+b.Index)),
		netsim.MakeIP(10, 9, byte(a.Index), 2), ipstack.Config{MTU: mtu})
	a.physStacks[b.Key] = sa
	b.physStacks[a.Key] = sb
	return sa, sb, nil
}

// ---- observability: the world-wide scrape ----

// Scrape aggregates every subsystem's counters into one labeled
// registry — the fabric-wide observability snapshot. Each joined host
// contributes its VPC data-plane counters and a "tunnels" gauge under
// {tenant, net, broker, host}; each live broker its control-plane
// counters under {broker}; world-booted VMs their migration counters
// under {host} (prefixed "vm."); and the VPC manager its managed VMs
// and placement-scheduler counters. Series with identical name+labels
// sum, so scraping is safe at any point of a scenario.
func (w *World) Scrape() *obs.Registry {
	r := obs.NewRegistry()
	for _, m := range w.Machines {
		if m.WAV == nil {
			continue
		}
		l := w.machineLabels(m)
		r.AddCounterSet(l, m.WAV.VPCCounters())
		r.Gauge("tunnels", l).Set(float64(len(m.WAV.Tunnels())))
		r.AddHistogram("batch_frames", l, m.WAV.BatchSizes())
	}
	for _, s := range w.Brokers {
		name := w.brokerName(s)
		if name == "" || w.deadBrokers[name] {
			continue
		}
		r.AddCounterSet(obs.Labels{Broker: name}, s.Counters())
	}
	for _, v := range w.vms {
		r.AddCounterSetPrefix("vm.", obs.Labels{Host: v.Host().Name()}, v.Counters())
	}
	if w.vpcMgr != nil {
		w.vpcMgr.ScrapeInto(r)
	}
	// Substrate delivery and loss totals, unlabeled (the wire is shared
	// infrastructure, not owned by any tenant).
	r.Counter("net.delivered", obs.Labels{}).Set(w.Net.Delivered)
	r.Counter("net.lost_wan", obs.Labels{}).Set(w.Net.LostWAN)
	r.Counter("net.no_route", obs.Labels{}).Set(w.Net.NoRoute)
	r.Counter("net.queue_drops", obs.Labels{}).Set(w.Net.QueueDrops)
	r.Counter("net.partition_drops", obs.Labels{}).Set(w.Net.PartitionDrops)
	// Every scrape advances the alert rules: Eval retains the snapshot
	// as the next rate baseline (each Scrape builds a fresh registry, so
	// handing it over is safe), then the engine's own lifecycle counters
	// ride along in the same snapshot.
	w.Alerts.Eval(w.Eng.Now(), r)
	w.Alerts.ScrapeInto(r)
	return r
}

// machineLabels builds the label set a machine's series are filed
// under: {tenant, net, broker, host}, with the tenant resolved through
// the VPC manager when the machine is scoped to a network.
func (w *World) machineLabels(m *Machine) obs.Labels {
	net := ""
	if m.WAV != nil {
		net, _ = m.WAV.Network()
	}
	l := obs.Labels{Host: m.Key, Net: net, Broker: w.HomeBroker(m.Key)}
	if net != "" && w.vpcMgr != nil {
		if n, ok := w.vpcMgr.Get(net); ok {
			l.Tenant = n.Tenant
		}
	}
	return l
}

// ScrapeCheck asserts the scrape is non-empty — every experiment driver
// calls it at the end so the CI smoke job verifies the observability
// wiring survived whatever the experiment did to the world.
func (w *World) ScrapeCheck() error {
	r := w.Scrape()
	if r.Len() == 0 {
		return fmt.Errorf("scenario: world scrape returned an empty registry")
	}
	return nil
}

func (w *World) pick(keys []string) []*Machine {
	if len(keys) == 0 {
		return w.Machines
	}
	out := make([]*Machine, len(keys))
	for i, k := range keys {
		out[i] = w.M(k)
	}
	return out
}
