package scenario

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// TestWorldFlowScrapeAndTopTalkers brings a small mesh up, pushes ping
// traffic, and checks the flow surfacing end to end: the flow scrape
// carries per-host byte/frame series, the flow log fills on drain, and
// the top-talkers ranking surfaces the ICMP flow.
func TestWorldFlowScrapeAndTopTalkers(t *testing.T) {
	w, err := Build(71, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	src := w.M("pc00")
	dstVIP := w.M("pc01").VIP
	var pingErr error
	w.Eng.Spawn("traffic", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := src.Dom0().Ping(p, dstVIP, 256, time.Second); err != nil {
				pingErr = err
			}
			p.Sleep(100 * time.Millisecond)
		}
	})
	w.Eng.RunFor(10 * time.Second)
	if pingErr != nil {
		t.Fatalf("ping: %v", pingErr)
	}

	r := w.FlowScrape()
	l := obs.Labels{Host: "pc00", Broker: PrimaryBroker}
	if v, ok := r.CounterValue("flow.bytes", l); !ok || v == 0 {
		t.Fatalf("pc00 flow.bytes = %d (present=%v); scrape:\n%s", v, ok, r)
	}
	if g, ok := r.GaugeValue("flow.active", l); !ok || g == 0 {
		t.Fatalf("pc00 flow.active = %v (present=%v)", g, ok)
	}

	// The ICMP flow dominates the default LAN's talkers.
	talkers := w.TopTalkers("", 5)
	if len(talkers) == 0 {
		t.Fatal("no talkers on the default LAN")
	}
	if !strings.Contains(talkers[0].Key, "proto1") {
		t.Fatalf("top talker is not the ICMP flow: %+v", talkers)
	}
	if talkers[0].Bytes == 0 {
		t.Fatalf("top talker has zero weight: %+v", talkers)
	}

	// Leave drains pc00's live flows into the world's shared log, and
	// the flow scrape picks the closed records up.
	src.WAV.Leave()
	if w.FlowLog.Len() == 0 {
		t.Fatal("world flow log empty after Leave drain")
	}
	r = w.FlowScrape()
	if v, _ := r.CounterValue("flow.closed_records", l); v == 0 {
		t.Fatalf("no closed records for pc00; scrape:\n%s", r)
	}
}

// TestChaosPartitionAlertFiresAndResolves is the alerting chaos test: a
// WAN partition starves one tenant's live ping traffic, the substrate's
// drop hook charges the losses back to the flow (via the sender's
// gateway, where WAN drops happen), and the partition-frame-loss rate
// rule must fire — with a span and a firing event — then resolve after
// the heal, with the span closed by a resolved event.
func TestChaosPartitionAlertFiresAndResolves(t *testing.T) {
	const alert = "partition-frame-loss"
	w, err := Build(72, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	src := w.M("pc00")
	dstVIP := w.M("pc01").VIP
	stop := false
	fails, lastOK := 0, false
	w.Eng.Spawn("traffic", func(p *sim.Proc) {
		for !stop {
			if _, err := src.Dom0().Ping(p, dstVIP, 56, 500*time.Millisecond); err != nil {
				fails++
				lastOK = false
			} else {
				lastOK = true
			}
			p.Sleep(100 * time.Millisecond)
		}
	})
	// The scrape cadence drives the alert engine's Evals.
	scrape := sim.NewTicker(w.Eng, time.Second, func() { w.Scrape() })

	w.Eng.RunFor(5 * time.Second)
	if w.Alerts.IsFiring(alert) {
		t.Fatal("alert firing before the partition")
	}
	if fails != 0 {
		t.Fatalf("%d pings failed before the partition", fails)
	}

	if err := w.Partition("pc00", "pc01"); err != nil {
		t.Fatal(err)
	}
	w.Eng.RunFor(12 * time.Second)
	if !w.Alerts.IsFiring(alert) {
		t.Fatalf("alert not firing mid-partition (value=%v)", w.Alerts.Value(alert))
	}
	if fails == 0 {
		t.Fatal("partition did not starve the ping traffic")
	}
	// The starved flow itself carries the attribution: wire drops at the
	// gateway charged back to the ICMP flow on the sending machine.
	attributed := false
	for _, st := range src.WAV.Flows().Snapshot() {
		if st.Key.Proto == 1 && st.Drops[obs.FlowDropPartition] > 0 {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("no partition drops attributed to pc00's ICMP flow: %+v",
			src.WAV.Flows().Snapshot())
	}

	if err := w.Heal("pc00", "pc01"); err != nil {
		t.Fatal(err)
	}
	w.Eng.RunFor(10 * time.Second)
	scrape.Stop()
	stop = true
	if w.Alerts.IsFiring(alert) {
		t.Fatal("alert still firing after the heal")
	}
	if f, r := w.Alerts.Fired(alert), w.Alerts.Resolved(alert); f != 1 || r != 1 {
		t.Fatalf("alert fired=%d resolved=%d, want exactly 1 each", f, r)
	}
	if !lastOK {
		t.Fatal("traffic did not recover after the heal")
	}

	// The firing window is a closed span with both lifecycle events.
	spans := w.Obs.Find("alert." + alert)
	if len(spans) != 1 {
		t.Fatalf("found %d alert spans, want 1; trace:\n%s", len(spans), w.Obs.Dump())
	}
	sp := spans[0]
	if !sp.Ended() {
		t.Fatal("alert span never closed")
	}
	if !sp.HasEvent("firing") || !sp.HasEvent("resolved") {
		t.Fatalf("alert span lacks lifecycle events: %+v", sp.Events())
	}
	if sp.Duration() <= 0 {
		t.Fatalf("alert span duration %v, want > 0", sp.Duration())
	}
}

// TestRestartBrokerCounterDeltaSinceRate is the registry-level restart
// regression: rates derived through Registry.Since across a broker
// crash-restart must clamp at zero instead of wrapping uint64 into
// astronomical values — the same contract CounterSet.Delta holds,
// asserted through the Since view the alert engine's rate rules use.
func TestRestartBrokerCounterDeltaSinceRate(t *testing.T) {
	w, err := Build(73, EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.HostCfg = chaosHostCfg()
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	// Let keepalive traffic accumulate broker-side pulse counts.
	w.Eng.RunFor(20 * time.Second)
	prev := w.Scrape()
	prevAt := w.Eng.Now()
	bl := obs.Labels{Broker: PrimaryBroker}
	if v, ok := prev.CounterValue("pulses", bl); !ok || v == 0 {
		t.Fatalf("broker pulses before restart = %d (present=%v)", v, ok)
	}

	if err := w.KillBroker(PrimaryBroker); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RestartBroker(PrimaryBroker); err != nil {
		t.Fatal(err)
	}
	// A short window: the fresh broker's totals restart near zero and
	// stay below the pre-kill snapshot.
	w.Eng.RunFor(5 * time.Second)

	cur := w.Scrape()
	view := cur.Since(prev, w.Eng.Now().Sub(prevAt))
	if v := view.Rate("pulses", bl); v != 0 {
		t.Fatalf("pulses rate across restart = %v, want 0 (clamped)", v)
	}
	// Nothing in the whole view wrapped: a wrapped uint64 divided by the
	// interval would still be astronomically large.
	for _, name := range []string{"pulses", "joins", "lookups", "connects"} {
		if v := view.RateTotal(name); v < 0 || v > 1e12 {
			t.Fatalf("%s rate across restart = %v: wraparound", name, v)
		}
	}
	// Host-side series kept counting: their deltas are genuine.
	if v, ok := cur.CounterValue("pulses", bl); !ok {
		t.Fatalf("restarted broker exports no pulses counter (present=%v)", ok)
	} else if p, _ := prev.CounterValue("pulses", bl); v >= p {
		t.Fatalf("restarted broker pulses %d did not reset below %d", v, p)
	}
}
