package scenario

import (
	"testing"
	"time"

	"wavnet/internal/sim"
)

func TestRealWANBuildAndOverlays(t *testing.T) {
	w, err := Build(1, RealWANSpecs(), RealWANOverrides())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WAVNetUp("HKU1", "SIAT", "PU"); err != nil {
		t.Fatal(err)
	}
	// Tunnel RTT HKU-SIAT must be near the paper's 74.2 ms.
	var rtt sim.Duration
	var rttErr error
	w.Eng.Spawn("probe", func(p *sim.Proc) {
		rtt, rttErr = w.M("HKU1").WAV.TunnelRTT(p, "SIAT")
	})
	w.Eng.RunFor(10 * time.Second)
	if rttErr != nil {
		t.Fatal(rttErr)
	}
	if rtt < 74*time.Millisecond || rtt > 80*time.Millisecond {
		t.Fatalf("HKU-SIAT tunnel rtt = %v", rtt)
	}
	if err := w.IPOPUp("HKU1", "SIAT", "PU"); err != nil {
		t.Fatal(err)
	}
	// Physical baseline pair.
	sa, sb, err := w.PhysicalPair(w.M("HKU1"), w.M("SIAT"))
	if err != nil {
		t.Fatal(err)
	}
	var prtt sim.Duration
	w.Eng.Spawn("phys-ping", func(p *sim.Proc) {
		sa.Ping(p, sb.IP(), 56, 5*time.Second)
		prtt, _ = sa.Ping(p, sb.IP(), 56, 5*time.Second)
	})
	w.Eng.RunFor(10 * time.Second)
	if prtt < 74*time.Millisecond || prtt > 78*time.Millisecond {
		t.Fatalf("physical rtt = %v", prtt)
	}
}

func TestEmulatedWANBuild(t *testing.T) {
	w, err := Build(2, EmulatedWANSpecs(8, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	for _, m := range w.Machines {
		if got := len(m.WAV.Tunnels()); got != 7 {
			t.Fatalf("%s has %d tunnels, want 7", m.Key, got)
		}
	}
}
