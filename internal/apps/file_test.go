package apps

import (
	"errors"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func TestFetchDeliversExactBytes(t *testing.T) {
	eng, a, b := pipeWorld(4, 80e6, 10*time.Millisecond)
	srv, err := StartFileServer(b, 2200, map[string]int64{
		"dataset.tar": 4 << 20,
		"empty":       0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res, emptyRes *FetchResult
	var fetchErr, emptyErr error
	eng.Spawn("fetch", func(p *sim.Proc) {
		res, fetchErr = Fetch(p, a, netsim.Addr{IP: b.IP(), Port: 2200}, "dataset.tar")
		emptyRes, emptyErr = Fetch(p, a, netsim.Addr{IP: b.IP(), Port: 2200}, "empty")
	})
	eng.RunFor(10 * time.Minute)
	if fetchErr != nil {
		t.Fatalf("fetch: %v", fetchErr)
	}
	if res.Bytes != 4<<20 {
		t.Fatalf("fetched %d bytes, want %d", res.Bytes, 4<<20)
	}
	if emptyErr != nil || emptyRes.Bytes != 0 {
		t.Fatalf("empty file: %v / %+v", emptyErr, emptyRes)
	}
	if srv.Transfers != 2 || srv.BytesOut != 4<<20 {
		t.Fatalf("server stats: %d transfers, %d bytes", srv.Transfers, srv.BytesOut)
	}
}

func TestFetchThroughputTracksLinkRate(t *testing.T) {
	// An 8 Mbps pipe should bound the transfer at ≈1 MB/s.
	eng, a, b := pipeWorld(5, 8e6, 20*time.Millisecond)
	if _, err := StartFileServer(b, 2200, map[string]int64{"big": 2 << 20}); err != nil {
		t.Fatal(err)
	}
	var res *FetchResult
	var err error
	eng.Spawn("fetch", func(p *sim.Proc) {
		res, err = Fetch(p, a, netsim.Addr{IP: b.IP(), Port: 2200}, "big")
	})
	eng.RunFor(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBps() > 1.1 {
		t.Fatalf("%.2f MB/s exceeds an 8 Mbps link", res.MBps())
	}
	if res.MBps() < 0.6 {
		t.Fatalf("%.2f MB/s is too far below the 1 MB/s link rate", res.MBps())
	}
}

func TestFetchUnknownFile(t *testing.T) {
	eng, a, b := pipeWorld(6, 0, 5*time.Millisecond)
	if _, err := StartFileServer(b, 2200, map[string]int64{"real": 1024}); err != nil {
		t.Fatal(err)
	}
	var err error
	eng.Spawn("fetch", func(p *sim.Proc) {
		_, err = Fetch(p, a, netsim.Addr{IP: b.IP(), Port: 2200}, "ghost")
	})
	eng.RunFor(time.Minute)
	if !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("want ErrNoSuchFile, got %v", err)
	}
}

func TestFileServerRejectsNegativeSize(t *testing.T) {
	eng, _, b := pipeWorld(7, 0, time.Millisecond)
	_ = eng
	if _, err := StartFileServer(b, 2200, map[string]int64{"bad": -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}
