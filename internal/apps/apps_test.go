package apps

import (
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

func pipeWorld(seed int64, rateBps float64, delay sim.Duration) (*sim.Engine, *ipstack.Stack, *ipstack.Stack) {
	eng := sim.NewEngine(seed)
	pipe := ether.NewLinkPipe(eng, rateBps, delay, 0)
	a := ipstack.New(eng, "a", pipe.A, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), ipstack.Config{})
	b := ipstack.New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), ipstack.Config{})
	return eng, a, b
}

func TestPinger(t *testing.T) {
	eng, a, b := pipeWorld(1, 0, 10*time.Millisecond)
	run, _ := StartPinger(a, b.IP(), 100*time.Millisecond, 2*time.Second)
	eng.Run()
	if !run.Done {
		t.Fatal("pinger did not finish")
	}
	if run.Sent < 19 || run.Sent > 21 {
		t.Fatalf("sent %d probes, want ~20", run.Sent)
	}
	if len(run.Losses) != 0 {
		t.Fatalf("losses on a clean link: %d", len(run.Losses))
	}
	s := run.RTTms.Summary()
	if s.P50 < 19 || s.P50 > 42 {
		t.Fatalf("median rtt %.1f ms, want ≈20", s.P50)
	}
}

func TestPingerCountsLosses(t *testing.T) {
	eng := sim.NewEngine(2)
	pipe := ether.NewLinkPipe(eng, 0, 5*time.Millisecond, 0)
	lossy := ether.Impair(pipe.A, 0.3, eng.Rand())
	a := ipstack.New(eng, "a", lossy, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), ipstack.Config{})
	b := ipstack.New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), ipstack.Config{})
	_ = b
	run, _ := StartPinger(a, netsim.MustParseIP("10.0.0.2"), 50*time.Millisecond, 5*time.Second)
	eng.Run()
	if run.LossRate() < 0.1 {
		t.Fatalf("loss rate %.2f too low under 30%% frame loss", run.LossRate())
	}
}

func TestTTCP(t *testing.T) {
	eng, a, b := pipeWorld(3, 10e6, 5*time.Millisecond)
	if _, err := StartSink(b, 5001); err != nil {
		t.Fatal(err)
	}
	var res *TTCPResult
	var err error
	eng.Spawn("ttcp", func(p *sim.Proc) {
		res, err = TTCP(p, a, netsim.Addr{IP: b.IP(), Port: 5001}, 2<<20, 16384)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 Mbps ≈ 1190 KB/s after header overhead.
	if res.KBps < 750 || res.KBps > 1250 {
		t.Fatalf("ttcp rate %.0f KB/s over a 10 Mbps link", res.KBps)
	}
}

func TestNetperf(t *testing.T) {
	eng, a, b := pipeWorld(4, 20e6, 5*time.Millisecond)
	run, err := StartNetperf(a, b, 5001, 10*time.Second, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !run.Done || run.Err != nil {
		t.Fatalf("netperf done=%v err=%v", run.Done, run.Err)
	}
	if m := run.Mbps(); m < 16 || m > 20 {
		t.Fatalf("netperf %.2f Mbps over 20 Mbps", m)
	}
	if run.IntervalMbps.Len() < 18 {
		t.Fatalf("only %d interval samples", run.IntervalMbps.Len())
	}
	// Steady state: later intervals near line rate.
	last := run.IntervalMbps.Samples[run.IntervalMbps.Len()-1].Value
	if last < 15 {
		t.Fatalf("final interval %.2f Mbps", last)
	}
}

func TestHTTPAndAB(t *testing.T) {
	eng, a, b := pipeWorld(5, 100e6, 2*time.Millisecond)
	if err := StartHTTPServer(b, 80); err != nil {
		t.Fatal(err)
	}
	res := StartAB(a, netsim.Addr{IP: b.IP(), Port: 80}, 1024, 4, 5*time.Second, 0)
	eng.Run()
	if !res.Done {
		t.Fatal("AB did not finish")
	}
	if res.Failures > 0 {
		t.Fatalf("%d failures", res.Failures)
	}
	if res.Requests < 100 {
		t.Fatalf("only %d requests completed", res.Requests)
	}
	// Connection time ≈ RTT (4 ms).
	if res.ConnMs.Mean < 3 || res.ConnMs.Mean > 10 {
		t.Fatalf("mean connect %.1f ms, want ≈4", res.ConnMs.Mean)
	}
	if res.Bytes != int64(res.Requests)*1024 {
		t.Fatalf("bytes %d for %d requests", res.Bytes, res.Requests)
	}
}

func TestABThroughputTracksFileSize(t *testing.T) {
	rate := func(size int) float64 {
		eng, a, b := pipeWorld(6, 50e6, 2*time.Millisecond)
		StartHTTPServer(b, 80)
		res := StartAB(a, netsim.Addr{IP: b.IP(), Port: 80}, size, 8, 5*time.Second, 0)
		eng.Run()
		return res.ReqPerSec()
	}
	small, large := rate(1024), rate(64<<10)
	if small <= large {
		t.Fatalf("1K req/s (%.0f) should exceed 64K req/s (%.0f)", small, large)
	}
}

func TestBadHTTPRequest(t *testing.T) {
	eng, a, b := pipeWorld(7, 0, time.Millisecond)
	StartHTTPServer(b, 80)
	var reply string
	eng.Spawn("bad", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Write(p, []byte("BOGUS\n"))
		buf := make([]byte, 128)
		n, _ := c.Read(p, buf)
		reply = string(buf[:n])
	})
	eng.Run()
	if reply == "" || reply[:3] != "ERR" {
		t.Fatalf("bad request got %q", reply)
	}
}
