package apps

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// The paper's §II.D names "FTP/SCP services" among the bandwidth- and
// latency-sensitive workloads a virtual cluster runs. FileServer/Fetch
// is that workload: a catalogue of named synthetic files served over
// one TCP connection per transfer, with an scp-style throughput report.

// FileServer serves a catalogue of named synthetic files.
type FileServer struct {
	files map[string]int64

	// Stats.
	Transfers uint64
	BytesOut  uint64
	Misses    uint64
}

// StartFileServer serves the given catalogue (name -> size in bytes) on
// st:port. The wire protocol is one request line "GET <name>\n",
// answered by an 8-byte big-endian length (max-uint64 for a miss)
// followed by the bytes.
func StartFileServer(st *ipstack.Stack, port uint16, catalogue map[string]int64) (*FileServer, error) {
	for name, size := range catalogue {
		if size < 0 {
			return nil, fmt.Errorf("apps: file %q has negative size", name)
		}
	}
	fs := &FileServer{files: make(map[string]int64, len(catalogue))}
	for name, size := range catalogue {
		fs.files[name] = size
	}
	lis, err := st.Listen(port)
	if err != nil {
		return nil, err
	}
	eng := st.Engine()
	eng.Spawn("file-accept", func(p *sim.Proc) {
		for {
			conn, err := lis.Accept(p)
			if err != nil {
				return
			}
			eng.Spawn("file-conn", func(cp *sim.Proc) {
				defer conn.Close()
				fs.serve(cp, conn)
			})
		}
	})
	return fs, nil
}

const fileMiss = ^uint64(0)

func (fs *FileServer) serve(p *sim.Proc, conn *ipstack.Conn) {
	req, err := readLine(p, conn)
	if err != nil {
		return
	}
	var name string
	if n, _ := fmt.Sscanf(req, "GET %s", &name); n != 1 {
		return
	}
	size, ok := fs.files[name]
	var hdr [8]byte
	if !ok {
		fs.Misses++
		binary.BigEndian.PutUint64(hdr[:], fileMiss)
		conn.Write(p, hdr[:])
		return
	}
	binary.BigEndian.PutUint64(hdr[:], uint64(size))
	if _, err := conn.Write(p, hdr[:]); err != nil {
		return
	}
	chunk := make([]byte, 32<<10)
	for sent := int64(0); sent < size; {
		n := size - sent
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		if _, err := conn.Write(p, chunk[:n]); err != nil {
			return
		}
		sent += n
	}
	fs.Transfers++
	fs.BytesOut += uint64(size)
}

// FetchResult is one completed file transfer, as scp would report it.
type FetchResult struct {
	Name    string
	Bytes   int64
	Elapsed sim.Duration
}

// MBps is the transfer rate in megabytes per second.
func (r *FetchResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// ErrNoSuchFile is returned by Fetch for a name the server lacks.
var ErrNoSuchFile = errors.New("apps: no such file")

// Fetch retrieves one file from a FileServer, blocking the process until
// the last byte arrives.
func Fetch(p *sim.Proc, st *ipstack.Stack, server netsim.Addr, name string) (*FetchResult, error) {
	start := p.Now()
	conn, err := st.Dial(p, server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(p, []byte("GET "+name+"\n")); err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := conn.ReadFull(p, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint64(hdr[:])
	if size == fileMiss {
		return nil, ErrNoSuchFile
	}
	buf := make([]byte, 32<<10)
	var got int64
	for got < int64(size) {
		n, err := conn.Read(p, buf)
		got += int64(n)
		if err != nil {
			if got >= int64(size) {
				break
			}
			return nil, fmt.Errorf("apps: fetch %q: %w after %d/%d bytes", name, err, got, size)
		}
	}
	return &FetchResult{Name: name, Bytes: got, Elapsed: p.Now().Sub(start)}, nil
}
