// Package apps implements the measurement workloads of the paper's
// evaluation — ping, ttcp, netperf TCP_STREAM and an ApacheBench-style
// HTTP load generator — as real clients and servers running on virtual
// protocol stacks. Every byte they move traverses the full encapsulation
// path, so their numbers are measurements, not models.
package apps

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// ---- ping ----

// PingRun is an in-progress or completed ICMP probe series.
type PingRun struct {
	// RTTms holds one sample per answered echo (value in milliseconds).
	RTTms *metrics.Series
	// Losses records the send times of unanswered echos.
	Losses []sim.Time
	Sent   int
	Done   bool
}

// LossRate reports the fraction of unanswered probes.
func (r *PingRun) LossRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(len(r.Losses)) / float64(r.Sent)
}

// StartPinger launches a ping loop from st to dst: one echo every
// interval for the given duration (0 = until the run's Stop flag is
// set by the caller via the returned cancel func).
func StartPinger(st *ipstack.Stack, dst netsim.IP, interval, duration sim.Duration) (*PingRun, func()) {
	run := &PingRun{RTTms: metrics.NewSeries("ping-rtt-ms")}
	stop := false
	st.Engine().Spawn("pinger", func(p *sim.Proc) {
		deadline := p.Now().Add(duration)
		for !stop && (duration == 0 || p.Now() < deadline) {
			sentAt := p.Now()
			run.Sent++
			rtt, err := st.Ping(p, dst, 56, interval)
			if err != nil {
				run.Losses = append(run.Losses, sentAt)
			} else {
				run.RTTms.Add(sentAt, metrics.MsFloat(rtt))
			}
			// Keep the cadence even when the reply was fast.
			if wait := interval - p.Now().Sub(sentAt); wait > 0 {
				p.Sleep(wait)
			}
		}
		run.Done = true
	})
	return run, func() { stop = true }
}

// ---- sink servers ----

// StartSink starts a TCP sink on port that reads and discards
// everything from every connection (the netperf/ttcp server side). The
// returned counter accumulates received bytes.
func StartSink(st *ipstack.Stack, port uint16) (*metrics.Counter, error) {
	lis, err := st.Listen(port)
	if err != nil {
		return nil, err
	}
	ctr := &metrics.Counter{}
	st.Engine().Spawn("sink-accept", func(p *sim.Proc) {
		for {
			conn, err := lis.Accept(p)
			if err != nil {
				return
			}
			st.Engine().Spawn("sink-conn", func(cp *sim.Proc) {
				buf := make([]byte, 64<<10)
				for {
					n, err := conn.Read(cp, buf)
					ctr.Inc(float64(n))
					if err != nil {
						return
					}
				}
			})
		}
	})
	return ctr, nil
}

// ---- ttcp ----

// TTCPResult is one ttcp transfer measurement.
type TTCPResult struct {
	Bytes   int64
	Elapsed sim.Duration
	// KBps is the transfer rate in kilobytes/second, as ttcp reports.
	KBps float64
}

// TTCP performs a bulk transfer of total bytes from st to dst (which
// must run a sink), writing in bufSize chunks — the paper uses 16384.
func TTCP(p *sim.Proc, st *ipstack.Stack, dst netsim.Addr, total int64, bufSize int) (*TTCPResult, error) {
	if bufSize <= 0 {
		bufSize = 16384
	}
	conn, err := st.Dial(p, dst)
	if err != nil {
		return nil, err
	}
	start := p.Now()
	chunk := make([]byte, bufSize)
	for sent := int64(0); sent < total; {
		n := total - sent
		if n > int64(len(chunk)) {
			n = int64(len(chunk))
		}
		if _, err := conn.Write(p, chunk[:n]); err != nil {
			return nil, err
		}
		sent += n
	}
	conn.Close()
	// Wait until everything is acknowledged (ttcp measures to completion).
	for conn.Flight() > 0 && conn.Err() == nil {
		p.Sleep(10 * sim.Millisecond)
	}
	elapsed := p.Now().Sub(start)
	return &TTCPResult{
		Bytes:   total,
		Elapsed: elapsed,
		KBps:    float64(total) / 1024 / elapsed.Seconds(),
	}, nil
}

// ---- netperf TCP_STREAM ----

// NetperfRun is a TCP_STREAM measurement: a sender that streams for a
// fixed duration and a receiver-side interval report (the paper polls
// every 500 ms during migration experiments).
type NetperfRun struct {
	// IntervalMbps holds one receiver-side throughput sample per interval.
	IntervalMbps *metrics.Series
	TotalBytes   int64
	Elapsed      sim.Duration
	Done         bool
	Err          error
}

// Mbps is the mean receiver-side throughput over the full run.
func (r *NetperfRun) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return metrics.Rate(r.TotalBytes, r.Elapsed)
}

// StartNetperf launches a TCP_STREAM from src to a fresh sink on dst
// port, streaming for duration with the given report interval.
func StartNetperf(src, dst *ipstack.Stack, port uint16, duration, interval sim.Duration) (*NetperfRun, error) {
	run := &NetperfRun{IntervalMbps: metrics.NewSeries("netperf-mbps")}
	lis, err := dst.Listen(port)
	if err != nil {
		return nil, err
	}
	eng := src.Engine()
	var rxBytes int64
	// Receiver + interval reporter.
	eng.Spawn("netperf-recv", func(p *sim.Proc) {
		conn, err := lis.Accept(p)
		lis.Close()
		if err != nil {
			run.Err = err
			return
		}
		// Reporter samples rxBytes every interval.
		stop := false
		eng.Spawn("netperf-report", func(rp *sim.Proc) {
			last := int64(0)
			for !stop {
				rp.Sleep(interval)
				cur := rxBytes
				run.IntervalMbps.Add(rp.Now(), metrics.Rate(cur-last, interval))
				last = cur
			}
		})
		buf := make([]byte, 64<<10)
		for {
			n, err := conn.Read(p, buf)
			rxBytes += int64(n)
			if err != nil {
				stop = true
				return
			}
		}
	})
	// Sender.
	eng.Spawn("netperf-send", func(p *sim.Proc) {
		start := p.Now()
		conn, err := src.Dial(p, netsim.Addr{IP: dst.IP(), Port: port})
		if err != nil {
			run.Err = err
			run.Done = true
			return
		}
		chunk := make([]byte, 32<<10)
		deadline := start.Add(duration)
		for p.Now() < deadline {
			if _, err := conn.Write(p, chunk); err != nil {
				break
			}
		}
		conn.Close()
		run.TotalBytes = rxBytes
		run.Elapsed = p.Now().Sub(start)
		run.Done = true
	})
	return run, nil
}

// ---- HTTP server and ApacheBench ----

// HTTPConfig tunes the synthetic HTTP server.
type HTTPConfig struct {
	// ServiceTime is the serialized per-request CPU cost (a single-core
	// Apache worker model); default 600 µs ≈ 1600 req/s peak.
	ServiceTime sim.Duration
}

// StartHTTPServer serves synthetic files: a request line "GET /<size>"
// is answered with that many bytes (e.g. "GET /8192"). This mirrors the
// paper's AB tests with 1K/8K/64K files.
func StartHTTPServer(st *ipstack.Stack, port uint16) error {
	return StartHTTPServerCfg(st, port, HTTPConfig{})
}

// StartHTTPServerCfg is StartHTTPServer with explicit tuning.
func StartHTTPServerCfg(st *ipstack.Stack, port uint16, cfg HTTPConfig) error {
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 600 * sim.Microsecond
	}
	lis, err := st.Listen(port)
	if err != nil {
		return err
	}
	eng := st.Engine()
	// busyUntil serializes request CPU across connections (one core).
	var busyUntil sim.Time
	eng.Spawn("http-accept", func(p *sim.Proc) {
		for {
			conn, err := lis.Accept(p)
			if err != nil {
				return
			}
			eng.Spawn("http-conn", func(cp *sim.Proc) {
				defer conn.Close()
				req, err := readLine(cp, conn)
				if err != nil {
					return
				}
				if cfg.ServiceTime > 0 {
					now := cp.Now()
					if busyUntil < now {
						busyUntil = now
					}
					busyUntil = busyUntil.Add(cfg.ServiceTime)
					cp.Sleep(busyUntil.Sub(now))
				}
				size := parseRequestSize(req)
				if size < 0 {
					conn.Write(cp, []byte("ERR bad request\n"))
					return
				}
				header := fmt.Sprintf("OK %d\n", size)
				if _, err := conn.Write(cp, []byte(header)); err != nil {
					return
				}
				chunk := make([]byte, 16<<10)
				for sent := 0; sent < size; {
					n := size - sent
					if n > len(chunk) {
						n = len(chunk)
					}
					if _, err := conn.Write(cp, chunk[:n]); err != nil {
						return
					}
					sent += n
				}
			})
		}
	})
	return nil
}

func parseRequestSize(req string) int {
	parts := strings.Fields(req)
	if len(parts) != 2 || parts[0] != "GET" || !strings.HasPrefix(parts[1], "/") {
		return -1
	}
	n, err := strconv.Atoi(parts[1][1:])
	if err != nil || n < 0 || n > 64<<20 {
		return -1
	}
	return n
}

func readLine(p *sim.Proc, conn *ipstack.Conn) (string, error) {
	var line []byte
	b := make([]byte, 1)
	for len(line) < 4096 {
		if _, err := conn.Read(p, b); err != nil {
			return "", err
		}
		if b[0] == '\n' {
			return string(line), nil
		}
		line = append(line, b[0])
	}
	return "", errors.New("apps: request line too long")
}

// ABResult is an ApacheBench-style report.
type ABResult struct {
	Requests int
	Failures int
	Elapsed  sim.Duration
	ConnMs   metrics.Summary // per-request TCP connect time (ms)
	TotalMs  metrics.Summary // per-request completion time (ms)
	Bytes    int64
	// ThroughputSeries samples completed requests/second per interval
	// (used by Figure 10's timeline).
	ThroughputSeries *metrics.Series
	Done             bool
}

// ReqPerSec is the mean request rate.
func (r *ABResult) ReqPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// StartAB launches concurrency worker loops fetching /<size> from the
// server for the given duration (like `ab -c N -t T`). The interval
// parameter sets the throughput sampling period (0 = no series).
func StartAB(client *ipstack.Stack, server netsim.Addr, size, concurrency int,
	duration, interval sim.Duration) *ABResult {
	res := &ABResult{ThroughputSeries: metrics.NewSeries("ab-req-per-sec")}
	eng := client.Engine()
	var connMs, totalMs []float64
	start := eng.Now()
	deadline := start.Add(duration)
	live := concurrency
	var windowCount int

	if interval > 0 {
		eng.Spawn("ab-report", func(p *sim.Proc) {
			for p.Now() < deadline {
				p.Sleep(interval)
				res.ThroughputSeries.Add(p.Now(), float64(windowCount)/interval.Seconds())
				windowCount = 0
			}
		})
	}
	req := []byte(fmt.Sprintf("GET /%d\n", size))
	for w := 0; w < concurrency; w++ {
		eng.Spawn("ab-worker", func(p *sim.Proc) {
			defer func() {
				live--
				if live == 0 {
					res.Elapsed = p.Now().Sub(start)
					res.ConnMs = metrics.Summarize(connMs)
					res.TotalMs = metrics.Summarize(totalMs)
					res.Done = true
				}
			}()
			buf := make([]byte, 32<<10)
			for p.Now() < deadline {
				t0 := p.Now()
				conn, err := client.Dial(p, server)
				if err != nil {
					res.Failures++
					continue
				}
				connMs = append(connMs, metrics.MsFloat(p.Now().Sub(t0)))
				if _, err := conn.Write(p, req); err != nil {
					res.Failures++
					conn.Close()
					continue
				}
				hdr, err := readLine(p, conn)
				if err != nil || !strings.HasPrefix(hdr, "OK ") {
					res.Failures++
					conn.Close()
					continue
				}
				want, _ := strconv.Atoi(strings.TrimPrefix(hdr, "OK "))
				got := 0
				ok := true
				for got < want {
					n, err := conn.Read(p, buf)
					got += n
					if err != nil {
						ok = got >= want
						break
					}
				}
				conn.Close()
				if !ok {
					res.Failures++
					continue
				}
				res.Requests++
				windowCount++
				res.Bytes += int64(got)
				totalMs = append(totalMs, metrics.MsFloat(p.Now().Sub(t0)))
			}
		})
	}
	return res
}
