package netsim

import (
	"wavnet/internal/sim"
)

// DefaultQueueBytes is the default drop-tail queue capacity of a link, a
// typical home-router buffer.
const DefaultQueueBytes = 256 << 10

// Link is a unidirectional rate-limited, drop-tail-queued pipe: the model
// of one direction of an access link (or a `tc` token bucket in the
// paper's emulated WAN). A zero RateBps means infinite bandwidth.
type Link struct {
	eng        *sim.Engine
	RateBps    float64
	Delay      sim.Duration
	QueueBytes int

	busyUntil sim.Time

	// Stats.
	SentPackets uint64
	SentBytes   uint64
	Dropped     uint64
}

// NewLink creates a link. rateBps <= 0 means unlimited; queueBytes <= 0
// selects DefaultQueueBytes.
func NewLink(eng *sim.Engine, rateBps float64, delay sim.Duration, queueBytes int) *Link {
	if queueBytes <= 0 {
		queueBytes = DefaultQueueBytes
	}
	return &Link{eng: eng, RateBps: rateBps, Delay: delay, QueueBytes: queueBytes}
}

// Backlog reports the bytes currently queued for transmission.
func (l *Link) Backlog() int {
	now := l.eng.Now()
	if l.busyUntil <= now || l.RateBps <= 0 {
		return 0
	}
	return int(l.busyUntil.Sub(now).Seconds() * l.RateBps / 8)
}

// Send serializes size bytes through the link and invokes then when the
// last bit (plus the link's fixed delay) arrives at the far end. It
// reports false — and does not invoke then — when the drop-tail queue is
// full.
func (l *Link) Send(size int, then func()) bool {
	now := l.eng.Now()
	if l.RateBps <= 0 {
		l.SentPackets++
		l.SentBytes += uint64(size)
		l.eng.Schedule(l.Delay, then)
		return true
	}
	// Drop-tail: refuse new packets once the backlog exceeds the queue
	// capacity (the packet in service is part of the backlog, so a queue
	// always admits at least one packet beyond its capacity).
	if l.Backlog() > l.QueueBytes {
		l.Dropped++
		return false
	}
	if l.busyUntil < now {
		l.busyUntil = now
	}
	tx := sim.Duration(float64(size*8) / l.RateBps * 1e9)
	l.busyUntil = l.busyUntil.Add(tx)
	l.SentPackets++
	l.SentBytes += uint64(size)
	l.eng.At(l.busyUntil.Add(l.Delay), then)
	return true
}
