package netsim

import (
	"fmt"

	"wavnet/internal/sim"
)

// Host is a machine attached to the network: a desktop PC, a rendezvous
// server, or a NAT gateway (a public host also attached to a LAN).
type Host struct {
	net  *Network
	name string
	site *Site

	// ip is the host's primary address: public for WAN-attached hosts,
	// private for LAN hosts.
	ip      IP
	aliases []IP

	// WAN access links (public hosts only).
	up, down *Link

	// LAN attachment (LAN hosts and gateways).
	lan            *Lan
	lanIP          IP
	lanUp, lanDown *Link

	// rawHandler, when set, sees every packet delivered to this host
	// before UDP demultiplexing; returning true consumes the packet.
	// NAT gateways use this to implement translation and forwarding.
	rawHandler func(pkt *Packet) bool

	udpPorts  map[uint16]*UDPSocket
	nextEphem uint16

	// Stats.
	RecvPackets   uint64
	RecvBytes     uint64
	SentPackets   uint64
	NoSocketDrops uint64
}

// Name returns the diagnostic name of the host.
func (h *Host) Name() string { return h.name }

// Site returns the site the host is located at.
func (h *Host) Site() *Site { return h.site }

// IP returns the host's primary address.
func (h *Host) IP() IP { return h.ip }

// LanIP returns the gateway's private-side address (zero for non-gateways;
// equal to IP for plain LAN hosts).
func (h *Host) LanIP() IP {
	if h.lanIP != 0 {
		return h.lanIP
	}
	if h.lan != nil {
		return h.ip
	}
	return 0
}

// Lan returns the LAN this host is attached to, if any.
func (h *Host) Lan() *Lan { return h.lan }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.net.eng }

// Uplink returns the WAN uplink for public hosts (nil otherwise); exposed
// so scenarios can tune rates mid-run.
func (h *Host) Uplink() *Link { return h.up }

// Downlink returns the WAN downlink for public hosts (nil otherwise).
func (h *Host) Downlink() *Link { return h.down }

func (h *Host) isPublic() bool { return h.up != nil }

// SetRawHandler installs fn as the raw packet hook (see Host docs).
func (h *Host) SetRawHandler(fn func(pkt *Packet) bool) { h.rawHandler = fn }

// ownsIP reports whether addr is one of the host's addresses on any side.
func (h *Host) ownsIP(ip IP) bool {
	if ip == h.ip || ip == h.lanIP {
		return true
	}
	for _, a := range h.aliases {
		if a == ip {
			return true
		}
	}
	return false
}

func (h *Host) deliverLocal(pkt *Packet) {
	if h.rawHandler != nil && h.rawHandler(pkt) {
		// Consumed by NAT: the rewritten copy now owns any pooled buffer.
		return
	}
	h.RecvPackets++
	h.RecvBytes += uint64(pkt.Wire)
	if s, ok := h.udpPorts[pkt.Dst.Port]; ok {
		s.handler(*pkt)
		pkt.release()
		return
	}
	h.NoSocketDrops++
	pkt.release()
}

// SendRaw injects a fully-formed packet into the network from this host;
// NAT gateways use it to emit rewritten packets. The source address is
// taken from the packet as-is.
func (h *Host) SendRaw(pkt *Packet) {
	if pkt.Wire == 0 {
		pkt.Wire = len(pkt.Payload) + udpIPHeaderBytes
	}
	h.SentPackets++
	h.net.route(h, pkt)
}

// SendLan injects a packet directly onto the host's LAN toward a LAN IP,
// bypassing routing — gateways use it to deliver DNATed packets inward.
func (h *Host) SendLan(dstLanIP IP, pkt *Packet) {
	if pkt.Wire == 0 {
		pkt.Wire = len(pkt.Payload) + udpIPHeaderBytes
	}
	dst, ok := h.lan.byIP[dstLanIP]
	if !ok {
		h.net.NoRoute++
		pkt.release()
		return
	}
	h.SentPackets++
	h.net.lanTransit(h, dst, pkt)
}

// UDPSocket is a bound UDP port delivering inbound datagrams to a
// callback. The callback runs in event context.
type UDPSocket struct {
	host    *Host
	port    uint16
	handler func(Packet)
	closed  bool
}

// BindUDP binds a UDP port (0 selects an ephemeral port) with a receive
// callback.
func (h *Host) BindUDP(port uint16, handler func(Packet)) (*UDPSocket, error) {
	if port == 0 {
		port = h.allocEphemeral()
		if port == 0 {
			return nil, fmt.Errorf("netsim: %s: no free ephemeral ports", h.name)
		}
	} else if _, busy := h.udpPorts[port]; busy {
		return nil, fmt.Errorf("netsim: %s: port %d in use", h.name, port)
	}
	s := &UDPSocket{host: h, port: port, handler: handler}
	h.udpPorts[port] = s
	return s, nil
}

func (h *Host) allocEphemeral() uint16 {
	if h.nextEphem < 49152 {
		h.nextEphem = 49152
	}
	for i := 0; i < 16384; i++ {
		p := h.nextEphem
		h.nextEphem++
		if h.nextEphem == 0 {
			h.nextEphem = 49152
		}
		if _, busy := h.udpPorts[p]; !busy && p != 0 {
			return p
		}
	}
	return 0
}

// Port returns the bound local port.
func (s *UDPSocket) Port() uint16 { return s.port }

// LocalAddr returns the socket's address using the host's primary IP.
func (s *UDPSocket) LocalAddr() Addr { return Addr{IP: s.host.ip, Port: s.port} }

// Host returns the owning host.
func (s *UDPSocket) Host() *Host { return s.host }

// SendTo transmits payload to dst. The payload is not copied; callers
// must not mutate it afterwards.
func (s *UDPSocket) SendTo(dst Addr, payload []byte) {
	if s.closed {
		return
	}
	pkt := &Packet{
		Src:     Addr{IP: s.host.ip, Port: s.port},
		Dst:     dst,
		Payload: payload,
	}
	s.host.SendRaw(pkt)
}

// SendToSized is SendTo with an explicit wire size, for protocols whose
// real-world encapsulation carries more header bytes than the simulated
// payload (e.g. the IPOP baseline's overlay header).
func (s *UDPSocket) SendToSized(dst Addr, payload []byte, wire int) {
	if s.closed {
		return
	}
	if wire < len(payload)+udpIPHeaderBytes {
		wire = len(payload) + udpIPHeaderBytes
	}
	pkt := &Packet{
		Src:     Addr{IP: s.host.ip, Port: s.port},
		Dst:     dst,
		Payload: payload,
		Wire:    wire,
	}
	s.host.SendRaw(pkt)
}

// Close releases the port.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.udpPorts, s.port)
}

// UDPQueue wraps a UDP port with a FIFO so simulation processes can
// receive datagrams in blocking style.
type UDPQueue struct {
	Sock  *UDPSocket
	queue []Packet
	wq    sim.WaitQueue
	cap   int
}

// BindUDPQueue binds a port and returns a queue with the given capacity
// (datagrams beyond it are dropped, like a kernel socket buffer).
func (h *Host) BindUDPQueue(port uint16, capacity int) (*UDPQueue, error) {
	if capacity <= 0 {
		capacity = 128
	}
	q := &UDPQueue{cap: capacity}
	s, err := h.BindUDP(port, func(p Packet) {
		if len(q.queue) >= q.cap {
			return
		}
		q.queue = append(q.queue, p)
		q.wq.Signal()
	})
	if err != nil {
		return nil, err
	}
	q.Sock = s
	return q, nil
}

// Recv blocks the process until a datagram arrives. Returns ok=false if
// interrupted or the engine stops... the second return is false only on
// interruption.
func (q *UDPQueue) Recv(p *sim.Proc) (Packet, bool) {
	for len(q.queue) == 0 {
		if !q.wq.Wait(p) {
			return Packet{}, false
		}
	}
	pkt := q.queue[0]
	q.queue = q.queue[1:]
	return pkt, true
}

// RecvTimeout is Recv with a deadline; ok=false on timeout or interrupt.
func (q *UDPQueue) RecvTimeout(p *sim.Proc, d sim.Duration) (Packet, bool) {
	if len(q.queue) > 0 {
		pkt := q.queue[0]
		q.queue = q.queue[1:]
		return pkt, true
	}
	deadline := p.Now().Add(d)
	fired := false
	timer := sim.NewTimer(p.Engine(), func() { fired = true; p.Interrupt() })
	timer.Reset(d)
	defer func() {
		timer.Stop()
		if fired {
			// The interrupt was our own deadline, not an external stop
			// request: consume it so it cannot leak into later waits.
			p.ClearInterrupt()
		}
	}()
	for len(q.queue) == 0 {
		if !q.wq.Wait(p) {
			return Packet{}, false
		}
		if p.Now() >= deadline && len(q.queue) == 0 {
			return Packet{}, false
		}
	}
	pkt := q.queue[0]
	q.queue = q.queue[1:]
	return pkt, true
}
