// Package netsim models the physical Internet that WAVNet runs over: a
// set of geographical sites joined by a propagation-latency mesh, hosts
// and NAT gateways attached through rate-limited access links, and an
// unreliable UDP datagram service on top.
//
// The model captures exactly the quantities the paper's evaluation
// depends on — round-trip latency, bottleneck bandwidth (the `tc`-shaped
// links of the emulated WAN), queueing delay, jitter and loss — while
// remaining a deterministic discrete-event simulation.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// BroadcastIP is the limited-broadcast address 255.255.255.255, delivered
// to every stack on the local virtual LAN segment.
const BroadcastIP IP = 0xFFFFFFFF

// MakeIP assembles an address from its four dotted-quad octets.
func MakeIP(a, b, c, d byte) IP {
	return IP(a)<<24 | IP(b)<<16 | IP(c)<<8 | IP(d)
}

// ParseIP parses a dotted-quad IPv4 string.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: bad IP %q", s)
	}
	var ip IP
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netsim: bad IP %q", s)
		}
		ip = ip<<8 | IP(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on error; for constants in tests and
// scenario builders.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IsPrivate reports whether ip falls in the RFC 1918 ranges.
func (ip IP) IsPrivate() bool {
	switch {
	case ip>>24 == 10:
		return true
	case ip>>20 == 0xAC1: // 172.16.0.0/12
		return true
	case ip>>16 == 0xC0A8: // 192.168.0.0/16
		return true
	}
	return false
}

// Addr is a UDP endpoint address.
type Addr struct {
	IP   IP
	Port uint16
}

// String renders "ip:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// IsZero reports whether a is the zero Addr.
func (a Addr) IsZero() bool { return a.IP == 0 && a.Port == 0 }

// udpIPHeaderBytes is the wire overhead of an IPv4+UDP header pair, added
// to every datagram's payload length to form its wire size.
const udpIPHeaderBytes = 28

// Packet is a UDP datagram in flight. Payload is the application bytes;
// Wire is the total size on the wire (set automatically when sent).
type Packet struct {
	Src, Dst Addr
	Payload  []byte
	Wire     int
	// pooled, when non-nil, is the pool-owned buffer backing Payload;
	// it is recycled after final delivery (see SendToPooled).
	pooled *[]byte
}
