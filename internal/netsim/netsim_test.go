package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"wavnet/internal/sim"
)

func newTestNet() (*sim.Engine, *Network) {
	eng := sim.NewEngine(1)
	return eng, New(eng)
}

func TestIPParseFormat(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.168.1.254", "255.255.255.255", "147.8.1.1"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if ip.String() != s {
			t.Errorf("round trip %q -> %q", s, ip.String())
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", bad)
		}
	}
}

func TestIPIsPrivate(t *testing.T) {
	priv := []string{"10.1.2.3", "172.16.0.1", "172.31.255.255", "192.168.0.1"}
	pub := []string{"8.8.8.8", "172.15.0.1", "172.32.0.1", "147.8.1.1", "193.168.0.1"}
	for _, s := range priv {
		if !MustParseIP(s).IsPrivate() {
			t.Errorf("%s should be private", s)
		}
	}
	for _, s := range pub {
		if MustParseIP(s).IsPrivate() {
			t.Errorf("%s should be public", s)
		}
	}
}

func TestPropertyIPRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicHostLatency(t *testing.T) {
	eng, nw := newTestNet()
	a := nw.NewSite("A")
	b := nw.NewSite("B")
	nw.SetRTT(a, b, 80*time.Millisecond)

	ha := nw.NewPublicHost("ha", a, MustParseIP("1.0.0.1"), 0, 0)
	hb := nw.NewPublicHost("hb", b, MustParseIP("1.0.0.2"), 0, 0)

	var recvAt sim.Time
	_, err := hb.BindUDP(7, func(p Packet) { recvAt = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := ha.BindUDP(9, nil)
	sa.SendTo(Addr{hb.IP(), 7}, []byte("hello"))
	eng.Run()
	if recvAt != sim.Time(40*time.Millisecond) {
		t.Fatalf("one-way delivery at %v, want 40ms", recvAt)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	// 8 Mbps => 1000 bytes take 1 ms.
	ha := nw.NewPublicHost("ha", s, MustParseIP("1.0.0.1"), 8e6, 0)
	hb := nw.NewPublicHost("hb", s, MustParseIP("1.0.0.2"), 0, 0)

	var times []sim.Time
	hb.BindUDP(7, func(p Packet) { times = append(times, eng.Now()) })
	sa, _ := ha.BindUDP(9, nil)
	// Two back-to-back packets of 972 payload bytes = 1000 wire bytes.
	sa.SendTo(Addr{hb.IP(), 7}, make([]byte, 972))
	sa.SendTo(Addr{hb.IP(), 7}, make([]byte, 972))
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	if times[0] != sim.Time(time.Millisecond) {
		t.Fatalf("first packet at %v, want 1ms", times[0])
	}
	if times[1] != sim.Time(2*time.Millisecond) {
		t.Fatalf("second packet at %v, want 2ms (queued behind first)", times[1])
	}
}

func TestLinkQueueDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, 8e6, 0, 2000) // queue capacity 2000 bytes
	delivered := 0
	ok1 := l.Send(1500, func() { delivered++ })
	ok2 := l.Send(1500, func() { delivered++ })
	ok3 := l.Send(1500, func() { delivered++ }) // backlog 3000 > 2000: drop
	eng.Run()
	if !ok1 || !ok2 {
		t.Fatal("first two sends should be accepted")
	}
	if ok3 {
		t.Fatal("third send should be dropped by the full queue")
	}
	if delivered != 2 || l.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, l.Dropped)
	}
}

func TestLanAndGatewayForwarding(t *testing.T) {
	eng, nw := newTestNet()
	site := nw.NewSite("S")
	remote := nw.NewSite("R")
	nw.SetRTT(site, remote, 20*time.Millisecond)

	gw := nw.NewPublicHost("gw", site, MustParseIP("5.0.0.1"), 0, 0)
	lan := nw.NewLan("lan0", site, 100e6, 100*time.Microsecond)
	lan.AttachGateway(gw, MustParseIP("192.168.0.1"))
	h1 := lan.NewHost("h1", MustParseIP("192.168.0.2"))
	h2 := lan.NewHost("h2", MustParseIP("192.168.0.3"))
	srv := nw.NewPublicHost("srv", remote, MustParseIP("6.0.0.1"), 0, 0)

	// LAN-to-LAN delivery works without the gateway.
	got := ""
	h2.BindUDP(7, func(p Packet) { got = string(p.Payload) })
	s1, _ := h1.BindUDP(0, nil)
	s1.SendTo(Addr{h2.IP(), 7}, []byte("local"))

	// Off-LAN traffic lands on the gateway's raw handler.
	var atGateway *Packet
	gw.SetRawHandler(func(p *Packet) bool {
		if !gw.ownsIP(p.Dst.IP) {
			atGateway = p
			return true
		}
		return false
	})
	s1.SendTo(Addr{srv.IP(), 80}, []byte("wan"))
	eng.Run()

	if got != "local" {
		t.Fatalf("LAN delivery failed, got %q", got)
	}
	if atGateway == nil {
		t.Fatal("off-LAN packet did not transit the gateway")
	}
	if atGateway.Dst.IP != srv.IP() {
		t.Fatalf("gateway saw wrong destination %s", atGateway.Dst)
	}
}

func TestPrivateAddressNotRoutable(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	pub := nw.NewPublicHost("pub", s, MustParseIP("9.0.0.1"), 0, 0)
	sock, _ := pub.BindUDP(0, nil)
	sock.SendTo(Addr{MustParseIP("192.168.0.5"), 80}, []byte("x"))
	eng.Run()
	if nw.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", nw.NoRoute)
	}
}

func TestWANLoss(t *testing.T) {
	eng, nw := newTestNet()
	nw.LossRate = 0.5
	s1, s2 := nw.NewSite("A"), nw.NewSite("B")
	nw.SetRTT(s1, s2, 10*time.Millisecond)
	ha := nw.NewPublicHost("a", s1, MustParseIP("1.0.0.1"), 0, 0)
	hb := nw.NewPublicHost("b", s2, MustParseIP("1.0.0.2"), 0, 0)
	n := 0
	hb.BindUDP(7, func(p Packet) { n++ })
	sa, _ := ha.BindUDP(0, nil)
	for i := 0; i < 1000; i++ {
		sa.SendTo(Addr{hb.IP(), 7}, []byte("x"))
	}
	eng.Run()
	if n < 400 || n > 600 {
		t.Fatalf("with 50%% loss, delivered %d of 1000", n)
	}
	if nw.LostWAN != uint64(1000-n) {
		t.Fatalf("LostWAN=%d, delivered=%d", nw.LostWAN, n)
	}
}

func TestEphemeralPortAllocation(t *testing.T) {
	_, nw := newTestNet()
	s := nw.NewSite("S")
	h := nw.NewPublicHost("h", s, MustParseIP("1.0.0.1"), 0, 0)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		sock, err := h.BindUDP(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sock.Port() < 49152 {
			t.Fatalf("ephemeral port %d below 49152", sock.Port())
		}
		if seen[sock.Port()] {
			t.Fatalf("duplicate ephemeral port %d", sock.Port())
		}
		seen[sock.Port()] = true
	}
}

func TestBindConflict(t *testing.T) {
	_, nw := newTestNet()
	s := nw.NewSite("S")
	h := nw.NewPublicHost("h", s, MustParseIP("1.0.0.1"), 0, 0)
	if _, err := h.BindUDP(5000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BindUDP(5000, nil); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestSocketCloseReleasesPort(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	h := nw.NewPublicHost("h", s, MustParseIP("1.0.0.1"), 0, 0)
	sock, _ := h.BindUDP(5000, func(Packet) { t.Fatal("closed socket received") })
	sock.Close()
	if _, err := h.BindUDP(5000, nil); err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
	// Sending to self after close should hit NoSocketDrops... bind another
	// host to exercise the path.
	h2 := nw.NewPublicHost("h2", s, MustParseIP("1.0.0.2"), 0, 0)
	s2, _ := h2.BindUDP(0, nil)
	s2.SendTo(Addr{h.IP(), 6000}, []byte("x"))
	eng.Run()
	if h.NoSocketDrops != 1 {
		t.Fatalf("NoSocketDrops = %d, want 1", h.NoSocketDrops)
	}
}

func TestUDPQueueRecv(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	a := nw.NewPublicHost("a", s, MustParseIP("1.0.0.1"), 0, 0)
	b := nw.NewPublicHost("b", s, MustParseIP("1.0.0.2"), 0, 0)
	q, err := b.BindUDPQueue(7, 16)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	eng.Spawn("recv", func(p *sim.Proc) {
		pkt, ok := q.Recv(p)
		if ok {
			got = string(pkt.Payload)
		}
	})
	eng.Spawn("send", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		sa, _ := a.BindUDP(0, nil)
		sa.SendTo(Addr{b.IP(), 7}, []byte("queued"))
	})
	eng.Run()
	if got != "queued" {
		t.Fatalf("got %q", got)
	}
}

func TestUDPQueueRecvTimeout(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	b := nw.NewPublicHost("b", s, MustParseIP("1.0.0.2"), 0, 0)
	q, _ := b.BindUDPQueue(7, 16)
	var ok bool
	var elapsed sim.Time
	eng.Spawn("recv", func(p *sim.Proc) {
		_, ok = q.RecvTimeout(p, 30*time.Millisecond)
		elapsed = p.Now()
	})
	eng.Run()
	if ok {
		t.Fatal("RecvTimeout returned ok with no traffic")
	}
	if elapsed != sim.Time(30*time.Millisecond) {
		t.Fatalf("timed out at %v, want 30ms", elapsed)
	}
}

func TestAliasDelivery(t *testing.T) {
	eng, nw := newTestNet()
	s := nw.NewSite("S")
	h := nw.NewPublicHost("h", s, MustParseIP("1.0.0.1"), 0, 0)
	nw.AddAlias(h, MustParseIP("1.0.0.99"))
	var dst Addr
	h.BindUDP(7, func(p Packet) { dst = p.Dst })
	h2 := nw.NewPublicHost("h2", s, MustParseIP("1.0.0.2"), 0, 0)
	s2, _ := h2.BindUDP(0, nil)
	s2.SendTo(Addr{MustParseIP("1.0.0.99"), 7}, []byte("x"))
	eng.Run()
	if dst.IP != MustParseIP("1.0.0.99") {
		t.Fatalf("alias delivery failed, dst=%v", dst)
	}
}

func TestBandwidthMeasurement(t *testing.T) {
	// Sanity: a saturating sender through a 10 Mbps link delivers
	// ~10 Mbps of wire bytes.
	eng, nw := newTestNet()
	a := nw.NewSite("A")
	b := nw.NewSite("B")
	nw.SetRTT(a, b, 10*time.Millisecond)
	ha := nw.NewPublicHost("ha", a, MustParseIP("1.0.0.1"), 10e6, 0)
	hb := nw.NewPublicHost("hb", b, MustParseIP("1.0.0.2"), 100e6, 0)
	var rx uint64
	hb.BindUDP(7, func(p Packet) {
		if eng.Now() <= sim.Time(time.Second) {
			rx += uint64(p.Wire)
		}
	})
	sa, _ := ha.BindUDP(0, nil)
	payload := make([]byte, 1472)
	// Offer 20 Mbps for 1 second: send 1500B every 600µs.
	for i := 0; i < 1667; i++ {
		eng.Schedule(time.Duration(i)*600*time.Microsecond, func() {
			sa.SendTo(Addr{hb.IP(), 7}, payload)
		})
	}
	eng.Run()
	gotMbps := float64(rx) * 8 / 1e6 / 1.0
	if gotMbps < 9 || gotMbps > 11 {
		t.Fatalf("throughput %.2f Mbps through 10 Mbps link", gotMbps)
	}
}
