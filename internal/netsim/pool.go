package netsim

import "sync"

// Pooled payload buffers. SendTo does not copy, so a sender normally
// loses ownership of a payload forever: the slice is retained by
// in-flight transit closures until delivery. For packets whose receive
// handler does not retain the payload either (keepalive pulses, echo
// bounces, punch acks — not frames, which alias into bridges, and not
// relay envelopes, which brokers forward onward), SendToPooled closes
// the loop: the buffer is recycled automatically once the final
// receiver's handler returns, or released at the drop site when the
// packet dies in transit (no-route, partition, queue overflow, WAN
// loss, NAT refusal). NAT translation preserves the recycling tag
// because gateways re-emit a copy of the whole Packet struct, and the
// drop sites release exactly once because release clears the tag.

// PooledBufCap is the capacity of pooled payload buffers.
const PooledBufCap = 256

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, PooledBufCap)
	return &b
}}

// GetBuf returns a zero-length buffer with PooledBufCap capacity.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool.
func PutBuf(b *[]byte) { bufPool.Put(b) }

// SendToPooled transmits *buf to dst and recycles buf once the packet
// is delivered and its receive handler has returned. The handler (and
// any deliver hook) must not retain the payload.
func (s *UDPSocket) SendToPooled(dst Addr, buf *[]byte) {
	if s.closed {
		PutBuf(buf)
		return
	}
	pkt := &Packet{
		Src:     Addr{IP: s.host.ip, Port: s.port},
		Dst:     dst,
		Payload: *buf,
		pooled:  buf,
	}
	s.host.SendRaw(pkt)
}

// Release recycles the packet's pooled buffer, if it carries one.
// Consumers outside netsim (NAT gateways) call it when they terminate a
// packet instead of re-emitting it; releasing twice is harmless.
func (pkt *Packet) Release() { pkt.release() }

// release recycles the packet's pooled buffer, if it carries one.
func (pkt *Packet) release() {
	if pkt.pooled != nil {
		PutBuf(pkt.pooled)
		pkt.pooled = nil
	}
}
