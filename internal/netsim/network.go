package netsim

import (
	"fmt"

	"wavnet/internal/sim"
)

// Site is a geographical location (university, data center, home network).
// Propagation latency between hosts is a function of their sites.
type Site struct {
	Index int
	Name  string
}

// Network is the simulated Internet: sites, a one-way latency mesh,
// public hosts (routable IPs) and LANs hanging off gateways.
type Network struct {
	eng   *sim.Engine
	sites []*Site

	// oneWay[a][b] is the one-way propagation delay between sites a and b.
	oneWay [][]sim.Duration

	byIP  map[IP]*Host // public routing table (includes gateway aliases)
	hosts []*Host

	// LossRate is the probability a WAN transit drops a packet.
	LossRate float64
	// JitterFrac adds uniform ±frac×latency noise to each WAN transit.
	JitterFrac float64

	// partitions holds site pairs whose WAN path is currently severed
	// (fault injection); packets between them are silently dropped.
	partitions map[[2]int]bool

	// Stats.
	Delivered      uint64
	LostWAN        uint64
	NoRoute        uint64
	QueueDrops     uint64
	PartitionDrops uint64
	deliverHook    func(*Packet)
	dropHook       func(*Host, *Packet, DropReason)
}

// DropReason classifies why the network dropped an in-flight packet.
type DropReason uint8

// Drop reasons, one per drop site class.
const (
	DropNoRoute   DropReason = iota // no gateway / unknown destination
	DropQueue                       // access-link queue overflow
	DropWANLoss                     // random WAN loss (LossRate)
	DropPartition                   // severed site pair (fault injection)
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropNoRoute:
		return "no_route"
	case DropQueue:
		return "queue_overflow"
	case DropWANLoss:
		return "wan_loss"
	default:
		return "partition"
	}
}

// New creates an empty network on the given engine.
func New(eng *sim.Engine) *Network {
	return &Network{
		eng:  eng,
		byIP: make(map[IP]*Host),
	}
}

// Engine returns the simulation engine this network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// NewSite registers a site and returns it. Latency to every existing site
// defaults to zero until SetLatency is called.
func (n *Network) NewSite(name string) *Site {
	s := &Site{Index: len(n.sites), Name: name}
	n.sites = append(n.sites, s)
	for i := range n.oneWay {
		n.oneWay[i] = append(n.oneWay[i], 0)
	}
	n.oneWay = append(n.oneWay, make([]sim.Duration, len(n.sites)))
	return s
}

// SetLatency sets the symmetric one-way propagation delay between two
// sites. Use SetRTT for round-trip values as the paper reports them.
func (n *Network) SetLatency(a, b *Site, oneWay sim.Duration) {
	n.oneWay[a.Index][b.Index] = oneWay
	n.oneWay[b.Index][a.Index] = oneWay
}

// SetRTT sets the symmetric propagation so that the round trip between
// the two sites equals rtt.
func (n *Network) SetRTT(a, b *Site, rtt sim.Duration) {
	n.SetLatency(a, b, rtt/2)
}

// Latency reports the configured one-way delay between two sites.
func (n *Network) Latency(a, b *Site) sim.Duration {
	return n.oneWay[a.Index][b.Index]
}

// Sites returns all registered sites.
func (n *Network) Sites() []*Site { return n.sites }

// sitePair normalizes an unordered site-index pair.
func sitePair(a, b *Site) [2]int {
	i, j := a.Index, b.Index
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// Partition severs the WAN path between two sites: packets in either
// direction are dropped (and counted in PartitionDrops) until Heal.
// Intra-site and LAN traffic is unaffected — this models a wide-area
// routing failure, not a host crash.
func (n *Network) Partition(a, b *Site) {
	if n.partitions == nil {
		n.partitions = make(map[[2]int]bool)
	}
	n.partitions[sitePair(a, b)] = true
}

// Heal restores the WAN path between two partitioned sites.
func (n *Network) Heal(a, b *Site) { delete(n.partitions, sitePair(a, b)) }

// Partitioned reports whether the WAN path between two sites is severed.
func (n *Network) Partitioned(a, b *Site) bool { return n.partitions[sitePair(a, b)] }

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// HostByIP resolves a public IP to its host (nil if unknown).
func (n *Network) HostByIP(ip IP) *Host { return n.byIP[ip] }

// SetDeliverHook installs a tap invoked for every packet that reaches any
// host, before local processing. Used by tests and tracing.
func (n *Network) SetDeliverHook(fn func(*Packet)) { n.deliverHook = fn }

// SetDropHook installs a tap invoked for every packet the network
// drops, with the sending host and the reason, before the packet's
// buffer is released (the payload is only valid for the duration of
// the call). Scenario worlds use it to attribute wire losses back to
// the WAVNet flows the packet carried.
func (n *Network) SetDropHook(fn func(from *Host, pkt *Packet, reason DropReason)) {
	n.dropHook = fn
}

// drop counts nothing itself: it runs the drop hook, then releases the
// packet. Every drop site bumps its own stat and funnels through here.
func (n *Network) drop(from *Host, pkt *Packet, reason DropReason) {
	if n.dropHook != nil {
		n.dropHook(from, pkt, reason)
	}
	pkt.release()
}

// NewPublicHost attaches a host with a routable IP directly to the WAN
// through an access link of the given rate (bits/second in each
// direction; 0 = unlimited) and access delay.
func (n *Network) NewPublicHost(name string, site *Site, ip IP, rateBps float64, accessDelay sim.Duration) *Host {
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netsim: duplicate public IP %s", ip))
	}
	h := &Host{
		net:      n,
		name:     name,
		site:     site,
		ip:       ip,
		up:       NewLink(n.eng, rateBps, accessDelay, 0),
		down:     NewLink(n.eng, rateBps, accessDelay, 0),
		udpPorts: make(map[uint16]*UDPSocket),
	}
	n.byIP[ip] = h
	n.hosts = append(n.hosts, h)
	return h
}

// AddAlias routes an additional public IP to an existing host (used by
// the STUN server's alternate address). Re-adding an alias the host
// already owns is a no-op, so services can be restarted on the same
// machine after a crash.
func (n *Network) AddAlias(h *Host, ip IP) {
	if owner, dup := n.byIP[ip]; dup {
		if owner == h {
			return
		}
		panic(fmt.Sprintf("netsim: duplicate alias IP %s", ip))
	}
	h.aliases = append(h.aliases, ip)
	n.byIP[ip] = h
}

// Lan is a switched local network at one site: every attached host gets a
// dedicated full-duplex adapter at the LAN rate.
type Lan struct {
	net   *Network
	site  *Site
	name  string
	rate  float64
	delay sim.Duration
	byIP  map[IP]*Host
	hosts []*Host
	gw    *Host
}

// NewLan creates a LAN at a site with the given per-adapter rate
// (bits/second) and per-hop delay.
func (n *Network) NewLan(name string, site *Site, rateBps float64, delay sim.Duration) *Lan {
	return &Lan{
		net:   n,
		site:  site,
		name:  name,
		rate:  rateBps,
		delay: delay,
		byIP:  make(map[IP]*Host),
	}
}

// NewHost attaches a new host to the LAN with a private address.
func (l *Lan) NewHost(name string, privIP IP) *Host {
	if _, dup := l.byIP[privIP]; dup {
		panic(fmt.Sprintf("netsim: duplicate LAN IP %s on %s", privIP, l.name))
	}
	h := &Host{
		net:      l.net,
		name:     name,
		site:     l.site,
		ip:       privIP,
		lan:      l,
		lanUp:    NewLink(l.net.eng, l.rate, l.delay, 0),
		lanDown:  NewLink(l.net.eng, l.rate, l.delay, 0),
		udpPorts: make(map[uint16]*UDPSocket),
	}
	l.byIP[privIP] = h
	l.hosts = append(l.hosts, h)
	l.net.hosts = append(l.net.hosts, h)
	return h
}

// AttachGateway joins an existing public host to this LAN with the given
// private address, making it the LAN's default gateway. All non-local
// traffic from LAN hosts is forwarded to it.
func (l *Lan) AttachGateway(gw *Host, privIP IP) {
	if _, dup := l.byIP[privIP]; dup {
		panic(fmt.Sprintf("netsim: duplicate LAN IP %s on %s", privIP, l.name))
	}
	gw.lan = l
	gw.lanIP = privIP
	gw.lanUp = NewLink(l.net.eng, l.rate, l.delay, 0)
	gw.lanDown = NewLink(l.net.eng, l.rate, l.delay, 0)
	l.byIP[privIP] = gw
	l.gw = gw
}

// Gateway returns the LAN's default gateway, if any.
func (l *Lan) Gateway() *Host { return l.gw }

// Hosts returns all hosts attached to the LAN (excluding the gateway).
func (l *Lan) Hosts() []*Host { return l.hosts }

// route moves a packet from a sending host toward its destination,
// applying LAN hops, gateway forwarding and the WAN path.
func (n *Network) route(from *Host, pkt *Packet) {
	// Same-LAN delivery?
	if from.lan != nil {
		if dst, ok := from.lan.byIP[pkt.Dst.IP]; ok {
			n.lanTransit(from, dst, pkt)
			return
		}
		if !from.isPublic() {
			// Private host sending off-LAN: forward to the gateway.
			gw := from.lan.gw
			if gw == nil {
				n.NoRoute++
				n.drop(from, pkt, DropNoRoute)
				return
			}
			n.lanTransit(from, gw, pkt)
			return
		}
	}
	if from.isPublic() {
		n.wanTransit(from, pkt)
		return
	}
	n.NoRoute++
	n.drop(from, pkt, DropNoRoute)
}

// lanTransit carries a packet one hop across a LAN: serialize on the
// sender's adapter, then on the receiver's, then deliver.
func (n *Network) lanTransit(from, to *Host, pkt *Packet) {
	if !from.lanUp.Send(pkt.Wire, func() {
		if !to.lanDown.Send(pkt.Wire, func() { n.deliver(to, pkt) }) {
			n.QueueDrops++
			n.drop(from, pkt, DropQueue)
		}
	}) {
		n.QueueDrops++
		n.drop(from, pkt, DropQueue)
	}
}

// wanTransit carries a packet from a public host across the WAN to the
// public host owning the destination IP.
func (n *Network) wanTransit(from *Host, pkt *Packet) {
	dst, ok := n.byIP[pkt.Dst.IP]
	if !ok {
		n.NoRoute++
		n.drop(from, pkt, DropNoRoute)
		return
	}
	if n.partitions[sitePair(from.site, dst.site)] {
		n.PartitionDrops++
		n.drop(from, pkt, DropPartition)
		return
	}
	if !from.up.Send(pkt.Wire, func() {
		// Core propagation with optional jitter and loss.
		if n.LossRate > 0 && n.eng.Rand().Float64() < n.LossRate {
			n.LostWAN++
			n.drop(from, pkt, DropWANLoss)
			return
		}
		lat := n.oneWay[from.site.Index][dst.site.Index]
		if n.JitterFrac > 0 && lat > 0 {
			j := (n.eng.Rand().Float64()*2 - 1) * n.JitterFrac * float64(lat)
			lat += sim.Duration(j)
		}
		n.eng.Schedule(lat, func() {
			if !dst.down.Send(pkt.Wire, func() { n.deliver(dst, pkt) }) {
				n.QueueDrops++
				n.drop(from, pkt, DropQueue)
			}
		})
	}) {
		n.QueueDrops++
		n.drop(from, pkt, DropQueue)
	}
}

func (n *Network) deliver(h *Host, pkt *Packet) {
	n.Delivered++
	if n.deliverHook != nil {
		n.deliverHook(pkt)
	}
	h.deliverLocal(pkt)
}
