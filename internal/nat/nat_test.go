package nat

import (
	"fmt"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// rig builds: client (private) -- gw[NAT] -- WAN -- server (public),
// plus a second public host "other" for filtering tests.
type rig struct {
	eng            *sim.Engine
	nw             *netsim.Network
	gw             *Gateway
	client         *netsim.Host
	server, other  *netsim.Host
	serverGot      []netsim.Packet
	otherGot       []netsim.Packet
	clientGot      []netsim.Packet
	serverSock     *netsim.UDPSocket
	otherSock      *netsim.UDPSocket
	clientSock     *netsim.UDPSocket
	serverPort     uint16
	clientSrcPort  uint16
	clientReplyBuf []string
}

func newRig(t Type) *rig {
	r := &rig{}
	r.eng = sim.NewEngine(1)
	r.nw = netsim.New(r.eng)
	siteA := r.nw.NewSite("A")
	siteB := r.nw.NewSite("B")
	r.nw.SetRTT(siteA, siteB, 10*time.Millisecond)

	gwHost := r.nw.NewPublicHost("gw", siteA, netsim.MustParseIP("5.0.0.1"), 0, 0)
	lan := r.nw.NewLan("lan", siteA, 100e6, 50*time.Microsecond)
	lan.AttachGateway(gwHost, netsim.MustParseIP("192.168.0.1"))
	r.client = lan.NewHost("client", netsim.MustParseIP("192.168.0.2"))
	r.gw = Attach(gwHost, t)

	r.server = r.nw.NewPublicHost("server", siteB, netsim.MustParseIP("6.0.0.1"), 0, 0)
	r.other = r.nw.NewPublicHost("other", siteB, netsim.MustParseIP("6.0.0.2"), 0, 0)

	r.serverPort = 7000
	r.serverSock, _ = r.server.BindUDP(r.serverPort, func(p netsim.Packet) { r.serverGot = append(r.serverGot, p) })
	r.otherSock, _ = r.other.BindUDP(7000, func(p netsim.Packet) { r.otherGot = append(r.otherGot, p) })
	r.clientSrcPort = 4000
	r.clientSock, _ = r.client.BindUDP(r.clientSrcPort, func(p netsim.Packet) { r.clientGot = append(r.clientGot, p) })
	return r
}

func (r *rig) send() {
	r.clientSock.SendTo(netsim.Addr{IP: r.server.IP(), Port: r.serverPort}, []byte("ping"))
	r.eng.Run()
}

func TestOutboundSNAT(t *testing.T) {
	r := newRig(FullCone)
	r.send()
	if len(r.serverGot) != 1 {
		t.Fatalf("server received %d packets", len(r.serverGot))
	}
	got := r.serverGot[0]
	if got.Src.IP != r.gw.PublicIP() {
		t.Fatalf("src IP %s not rewritten to gateway %s", got.Src.IP, r.gw.PublicIP())
	}
	if got.Src.Port == r.clientSrcPort {
		t.Fatal("source port not translated")
	}
	if r.gw.Mappings() != 1 {
		t.Fatalf("mappings = %d, want 1", r.gw.Mappings())
	}
}

func TestMappingStability(t *testing.T) {
	// Cone NATs must reuse one external port for one internal endpoint
	// regardless of destination.
	for _, typ := range []Type{FullCone, RestrictedCone, PortRestrictedCone} {
		r := newRig(typ)
		r.clientSock.SendTo(netsim.Addr{IP: r.server.IP(), Port: 7000}, []byte("a"))
		r.clientSock.SendTo(netsim.Addr{IP: r.other.IP(), Port: 7000}, []byte("b"))
		r.eng.Run()
		if len(r.serverGot) != 1 || len(r.otherGot) != 1 {
			t.Fatalf("%v: delivery failed", typ)
		}
		if r.serverGot[0].Src != r.otherGot[0].Src {
			t.Fatalf("%v: external mapping differs per destination: %v vs %v",
				typ, r.serverGot[0].Src, r.otherGot[0].Src)
		}
	}
}

func TestSymmetricAllocatesPerDestination(t *testing.T) {
	r := newRig(Symmetric)
	r.clientSock.SendTo(netsim.Addr{IP: r.server.IP(), Port: 7000}, []byte("a"))
	r.clientSock.SendTo(netsim.Addr{IP: r.other.IP(), Port: 7000}, []byte("b"))
	r.eng.Run()
	if len(r.serverGot) != 1 || len(r.otherGot) != 1 {
		t.Fatal("delivery failed")
	}
	if r.serverGot[0].Src == r.otherGot[0].Src {
		t.Fatalf("symmetric NAT reused mapping across destinations: %v", r.serverGot[0].Src)
	}
	if r.gw.Mappings() != 2 {
		t.Fatalf("mappings = %d, want 2", r.gw.Mappings())
	}
}

// reply sends a packet from a given public host/port back to the client's
// external mapping, and reports whether it got through.
func (r *rig) replyFrom(h *netsim.Host, srcPort uint16, ext netsim.Addr) bool {
	before := len(r.clientGot)
	sock, err := h.BindUDP(srcPort, nil)
	if err != nil {
		// Port already bound in this test; reuse via raw send.
		h.SendRaw(&netsim.Packet{
			Src:     netsim.Addr{IP: h.IP(), Port: srcPort},
			Dst:     ext,
			Payload: []byte("reply"),
		})
		r.eng.Run()
		return len(r.clientGot) > before
	}
	sock.SendTo(ext, []byte("reply"))
	r.eng.Run()
	sock.Close()
	return len(r.clientGot) > before
}

func (r *rig) externalOf() netsim.Addr {
	if len(r.serverGot) == 0 {
		panic("no outbound packet seen")
	}
	return r.serverGot[0].Src
}

func TestFullConeAcceptsAnyone(t *testing.T) {
	r := newRig(FullCone)
	r.send()
	ext := r.externalOf()
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply from contacted server blocked")
	}
	if !r.replyFrom(r.other, 9999, ext) {
		t.Fatal("full cone should accept uncontacted senders")
	}
}

func TestRestrictedConeFiltersByIP(t *testing.T) {
	r := newRig(RestrictedCone)
	r.send()
	ext := r.externalOf()
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply from contacted IP blocked")
	}
	if !r.replyFrom(r.server, 9999, ext) {
		t.Fatal("restricted cone should accept any port of a contacted IP")
	}
	if r.replyFrom(r.other, 7000, ext) {
		t.Fatal("restricted cone accepted an uncontacted IP")
	}
}

func TestPortRestrictedConeFiltersByAddr(t *testing.T) {
	r := newRig(PortRestrictedCone)
	r.send()
	ext := r.externalOf()
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply from contacted addr blocked")
	}
	if r.replyFrom(r.server, 9999, ext) {
		t.Fatal("port-restricted cone accepted a different source port")
	}
	if r.replyFrom(r.other, 7000, ext) {
		t.Fatal("port-restricted cone accepted an uncontacted IP")
	}
}

func TestSymmetricFiltersByExactDestination(t *testing.T) {
	r := newRig(Symmetric)
	r.send()
	ext := r.externalOf()
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply from the mapped destination blocked")
	}
	if r.replyFrom(r.server, 9999, ext) {
		t.Fatal("symmetric NAT accepted a different source port")
	}
	if r.replyFrom(r.other, 7000, ext) {
		t.Fatal("symmetric NAT accepted a different host")
	}
}

func TestMappingExpiry(t *testing.T) {
	r := newRig(FullCone)
	r.gw.MappingTimeout = 30 * time.Second
	r.send()
	ext := r.externalOf()
	// Before expiry: reply passes.
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply before expiry blocked")
	}
	// Idle past the timeout: mapping must die.
	r.eng.RunFor(31 * time.Second)
	if r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("reply after expiry passed")
	}
	if r.gw.ExpiredDrops == 0 {
		t.Fatal("expiry not recorded")
	}
}

func TestKeepaliveRefreshesMapping(t *testing.T) {
	r := newRig(FullCone)
	r.gw.MappingTimeout = 30 * time.Second
	r.send()
	ext := r.externalOf()
	// Pulse outbound every 10s for 2 minutes: mapping stays alive.
	for i := 0; i < 12; i++ {
		r.eng.RunFor(10 * time.Second)
		r.clientSock.SendTo(netsim.Addr{IP: r.server.IP(), Port: r.serverPort}, []byte{0x01, 0x00})
		r.eng.Run()
	}
	if !r.replyFrom(r.server, r.serverPort, ext) {
		t.Fatal("keepalive failed to hold the mapping open")
	}
	if r.gw.Mappings() != 1 {
		t.Fatalf("mappings = %d, want the same single refreshed entry", r.gw.Mappings())
	}
}

func TestHairpinDisabledByDefault(t *testing.T) {
	r := newRig(FullCone)
	r.send()
	ext := r.externalOf()
	// Second LAN host targets the first's external mapping via the
	// gateway's public IP.
	lan := r.gw.Host().Lan()
	h2 := lan.NewHost("h2", netsim.MustParseIP("192.168.0.3"))
	s2, _ := h2.BindUDP(0, nil)
	before := len(r.clientGot)
	s2.SendTo(ext, []byte("hairpin"))
	r.eng.Run()
	if len(r.clientGot) != before {
		t.Fatal("hairpin delivered despite being disabled")
	}
	r.gw.Hairpin = true
	s2.SendTo(ext, []byte("hairpin"))
	r.eng.Run()
	if len(r.clientGot) != before+1 {
		t.Fatal("hairpin failed despite being enabled")
	}
}

func TestInboundWithoutMappingDropped(t *testing.T) {
	r := newRig(FullCone)
	s, _ := r.server.BindUDP(0, nil)
	s.SendTo(netsim.Addr{IP: r.gw.PublicIP(), Port: 3333}, []byte("unsolicited"))
	r.eng.Run()
	if len(r.clientGot) != 0 {
		t.Fatal("unsolicited inbound delivered")
	}
	if r.gw.NoMapDrops != 1 {
		t.Fatalf("NoMapDrops = %d, want 1", r.gw.NoMapDrops)
	}
}

func TestPunchabilityMatrix(t *testing.T) {
	all := []Type{FullCone, RestrictedCone, PortRestrictedCone, Symmetric}
	for _, a := range all {
		for _, b := range all {
			want := !(a == Symmetric && b == Symmetric ||
				a == Symmetric && b == PortRestrictedCone ||
				b == Symmetric && a == PortRestrictedCone)
			if got := Punchable(a, b); got != want {
				t.Errorf("Punchable(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		None: "none", FullCone: "full-cone", RestrictedCone: "restricted-cone",
		PortRestrictedCone: "port-restricted-cone", Symmetric: "symmetric",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), want)
		}
	}
	if fmt.Sprint(Type(99)) == "" {
		t.Error("unknown type should still format")
	}
}

func TestTwoClientsDistinctMappings(t *testing.T) {
	r := newRig(PortRestrictedCone)
	lan := r.gw.Host().Lan()
	c2 := lan.NewHost("c2", netsim.MustParseIP("192.168.0.9"))
	s2, _ := c2.BindUDP(4000, nil) // same private port as client 1
	r.clientSock.SendTo(netsim.Addr{IP: r.server.IP(), Port: 7000}, []byte("c1"))
	s2.SendTo(netsim.Addr{IP: r.server.IP(), Port: 7000}, []byte("c2"))
	r.eng.Run()
	if len(r.serverGot) != 2 {
		t.Fatalf("server received %d packets", len(r.serverGot))
	}
	if r.serverGot[0].Src == r.serverGot[1].Src {
		t.Fatal("two internal endpoints shared one external mapping")
	}
}
