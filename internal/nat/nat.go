// Package nat models the NAT gateways that stand between most Internet
// hosts and the WAN — the central obstacle WAVNet is designed to
// traverse. A Gateway attaches to a netsim public host that is also the
// default gateway of a LAN and rewrites traffic in both directions
// according to one of the four classic NAT behaviours the paper (and
// STUN, RFC 3489) distinguishes:
//
//   - Full Cone: one external port per internal endpoint; anyone may send
//     to it.
//   - Restricted Cone: as above, but inbound is accepted only from IPs the
//     internal endpoint has already sent to.
//   - Port Restricted Cone: inbound only from exact IP:port pairs already
//     contacted.
//   - Symmetric: a fresh external port per (internal endpoint,
//     destination) pair; inbound only from that destination.
//
// Mappings expire after an idle timeout (refreshed by outbound traffic,
// like iptables conntrack), which is why WAVNet's CONNECT_PULSE keepalive
// exists.
package nat

import (
	"fmt"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Type enumerates NAT behaviours.
type Type int

// NAT behaviour constants, ordered from most to least permissive.
const (
	None Type = iota // no NAT: public host
	FullCone
	RestrictedCone
	PortRestrictedCone
	Symmetric
)

// String returns the conventional name of the NAT type.
func (t Type) String() string {
	switch t {
	case None:
		return "none"
	case FullCone:
		return "full-cone"
	case RestrictedCone:
		return "restricted-cone"
	case PortRestrictedCone:
		return "port-restricted-cone"
	case Symmetric:
		return "symmetric"
	}
	return fmt.Sprintf("nat.Type(%d)", int(t))
}

// Punchable reports whether UDP hole punching between two hosts behind
// NATs of types a and b can succeed with the standard rendezvous
// technique (symmetric–symmetric and symmetric–port-restricted pairs
// cannot).
func Punchable(a, b Type) bool {
	if a == Symmetric && b == Symmetric {
		return false
	}
	if a == Symmetric && b == PortRestrictedCone || b == Symmetric && a == PortRestrictedCone {
		return false
	}
	return true
}

// DefaultMappingTimeout is the idle lifetime of a NAT mapping; the paper
// quotes "usually a couple of minutes".
const DefaultMappingTimeout = 120 * sim.Second

type internalKey struct {
	src netsim.Addr
	dst netsim.Addr // zero except for Symmetric
}

type mapping struct {
	internal    netsim.Addr
	external    uint16
	dst         netsim.Addr // Symmetric only
	peerIPs     map[netsim.IP]bool
	peers       map[netsim.Addr]bool
	lastRefresh sim.Time
}

// Gateway is a NAT device. Create with Attach.
type Gateway struct {
	host *netsim.Host
	typ  Type

	// MappingTimeout is the idle expiry of a translation entry.
	MappingTimeout sim.Duration
	// RefreshOnInbound extends mappings on inbound traffic too (most
	// consumer NATs refresh only on outbound, the conservative default).
	RefreshOnInbound bool
	// Hairpin allows a LAN host to reach another LAN host via the
	// gateway's public address. Most NATs of the paper's era did not.
	Hairpin bool

	byExternal map[uint16]*mapping
	byInternal map[internalKey]*mapping
	nextPort   uint16

	// Stats.
	Translated    uint64
	InboundOK     uint64
	FilteredDrops uint64
	ExpiredDrops  uint64
	NoMapDrops    uint64
}

// Attach installs NAT behaviour t on gw, which must be a public host
// already attached to a LAN as its gateway (see netsim.Lan.AttachGateway).
func Attach(gw *netsim.Host, t Type) *Gateway {
	if gw.Lan() == nil {
		panic("nat: host is not attached to a LAN")
	}
	g := &Gateway{
		host:           gw,
		typ:            t,
		MappingTimeout: DefaultMappingTimeout,
		byExternal:     make(map[uint16]*mapping),
		byInternal:     make(map[internalKey]*mapping),
		nextPort:       1024,
	}
	gw.SetRawHandler(g.handle)
	return g
}

// Type returns the gateway's NAT behaviour.
func (g *Gateway) Type() Type { return g.typ }

// Host returns the underlying netsim host.
func (g *Gateway) Host() *netsim.Host { return g.host }

// PublicIP returns the gateway's WAN address.
func (g *Gateway) PublicIP() netsim.IP { return g.host.IP() }

// Mappings reports the number of live translation entries.
func (g *Gateway) Mappings() int { return len(g.byExternal) }

func (g *Gateway) now() sim.Time { return g.host.Engine().Now() }

func (g *Gateway) expired(m *mapping) bool {
	return g.now().Sub(m.lastRefresh) > g.MappingTimeout
}

func (g *Gateway) drop(m *mapping) {
	delete(g.byExternal, m.external)
	delete(g.byInternal, internalKey{m.internal, m.dst})
}

// handle is the raw packet hook: true = consumed by NAT processing.
func (g *Gateway) handle(pkt *netsim.Packet) bool {
	fromLan := g.host.Lan() != nil && pkt.Src.IP.IsPrivate()
	toSelf := pkt.Dst.IP == g.host.IP()
	switch {
	case fromLan && !toSelf:
		g.outbound(pkt)
		return true
	case fromLan && toSelf:
		// Hairpin attempt: LAN host targeting our public address.
		if g.Hairpin {
			g.inbound(pkt)
		} else {
			g.FilteredDrops++
			pkt.Release()
		}
		return true
	case toSelf:
		g.inbound(pkt)
		return true
	}
	return false
}

// outbound translates a LAN-originated packet and emits it to the WAN.
func (g *Gateway) outbound(pkt *netsim.Packet) {
	key := internalKey{src: pkt.Src}
	if g.typ == Symmetric {
		key.dst = pkt.Dst
	}
	m, ok := g.byInternal[key]
	if ok && g.expired(m) {
		g.drop(m)
		ok = false
	}
	if !ok {
		ext := g.allocPort()
		if ext == 0 {
			g.NoMapDrops++
			pkt.Release()
			return
		}
		m = &mapping{
			internal: pkt.Src,
			external: ext,
			dst:      key.dst,
			peerIPs:  make(map[netsim.IP]bool),
			peers:    make(map[netsim.Addr]bool),
		}
		g.byInternal[key] = m
		g.byExternal[ext] = m
	}
	m.lastRefresh = g.now()
	m.peerIPs[pkt.Dst.IP] = true
	m.peers[pkt.Dst] = true
	g.Translated++
	out := *pkt
	out.Src = netsim.Addr{IP: g.host.IP(), Port: m.external}
	g.host.SendRaw(&out)
}

// inbound filters and translates a WAN packet addressed to our public IP.
func (g *Gateway) inbound(pkt *netsim.Packet) {
	m, ok := g.byExternal[pkt.Dst.Port]
	if !ok {
		g.NoMapDrops++
		pkt.Release()
		return
	}
	if g.expired(m) {
		g.drop(m)
		g.ExpiredDrops++
		pkt.Release()
		return
	}
	if !g.admit(m, pkt.Src) {
		g.FilteredDrops++
		pkt.Release()
		return
	}
	if g.RefreshOnInbound {
		m.lastRefresh = g.now()
	}
	g.InboundOK++
	in := *pkt
	in.Dst = m.internal
	g.host.SendLan(m.internal.IP, &in)
}

func (g *Gateway) admit(m *mapping, src netsim.Addr) bool {
	switch g.typ {
	case FullCone:
		return true
	case RestrictedCone:
		return m.peerIPs[src.IP]
	case PortRestrictedCone:
		return m.peers[src]
	case Symmetric:
		return src == m.dst
	}
	return false
}

func (g *Gateway) allocPort() uint16 {
	for i := 0; i < 64512; i++ {
		p := g.nextPort
		g.nextPort++
		if g.nextPort == 0 {
			g.nextPort = 1024
		}
		if _, busy := g.byExternal[p]; !busy && p >= 1024 {
			return p
		}
	}
	return 0
}
