package dhcp

import (
	"errors"
	"fmt"
	"sort"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// ServerConfig tunes a DHCP server.
type ServerConfig struct {
	// PoolStart/PoolEnd bound the assignable range (inclusive).
	PoolStart, PoolEnd netsim.IP
	// Lease is the granted lease duration (default 10 minutes).
	Lease sim.Duration
	// SubnetMask and Router are handed to clients (both optional).
	SubnetMask, Router netsim.IP
	// OfferHold reserves an offered address against other clients until
	// the offer is taken or abandoned (default 10 s).
	OfferHold sim.Duration
}

func (c ServerConfig) withDefaults() (ServerConfig, error) {
	if c.PoolStart == 0 || c.PoolEnd == 0 || c.PoolEnd < c.PoolStart {
		return c, errors.New("dhcp: invalid address pool")
	}
	if c.Lease <= 0 {
		c.Lease = 10 * sim.Minute
	}
	if c.OfferHold <= 0 {
		c.OfferHold = 10 * sim.Second
	}
	return c, nil
}

// Lease is one granted address binding.
type Lease struct {
	IP      netsim.IP
	MAC     ether.MAC
	Expires sim.Time
}

// Server leases addresses from a pool to clients on the same virtual L2
// segment. It binds UDP port 67 on the given stack.
type Server struct {
	stack *ipstack.Stack
	eng   *sim.Engine
	cfg   ServerConfig
	sock  *ipstack.UDPSock

	byIP  map[netsim.IP]*Lease
	byMAC map[ether.MAC]*Lease
	// offers holds short-lived reservations keyed by MAC.
	offers map[ether.MAC]*Lease
	// reserved holds addresses pinned outside DHCP (VM specs): never
	// offered or acked, however requested.
	reserved map[netsim.IP]bool

	// Stats.
	Discovers, Offers, Requests, Acks, Naks, Releases uint64
}

// NewServer starts a DHCP server on stack, leasing from cfg's pool. The
// stack must already have a (static) address: it is the server identifier.
func NewServer(stack *ipstack.Stack, cfg ServerConfig) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if stack.IP() == 0 {
		return nil, errors.New("dhcp: server stack needs a static address")
	}
	s := &Server{
		stack:    stack,
		eng:      stack.Engine(),
		cfg:      cfg,
		byIP:     make(map[netsim.IP]*Lease),
		byMAC:    make(map[ether.MAC]*Lease),
		offers:   make(map[ether.MAC]*Lease),
		reserved: make(map[netsim.IP]bool),
	}
	sock, err := stack.BindUDP(ServerPort, s.onDatagram)
	if err != nil {
		return nil, err
	}
	s.sock = sock
	return s, nil
}

// Close releases the server port.
func (s *Server) Close() { s.sock.Close() }

// Reserve pins an address against leasing: it is never offered or
// acked until Unreserve. Addresses assigned outside DHCP (a tenant
// spec's VM IPs) use this so the pool cannot hand them to a client.
func (s *Server) Reserve(ip netsim.IP) { s.reserved[ip] = true }

// Unreserve lifts a reservation.
func (s *Server) Unreserve(ip netsim.IP) { delete(s.reserved, ip) }

// Leases returns the live leases sorted by IP (expired ones are pruned).
func (s *Server) Leases() []Lease {
	s.expire()
	out := make([]Lease, 0, len(s.byIP))
	for _, l := range s.byIP {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

func (s *Server) expire() {
	now := s.eng.Now()
	for ip, l := range s.byIP {
		if l.Expires <= now {
			delete(s.byIP, ip)
			delete(s.byMAC, l.MAC)
		}
	}
	for mac, l := range s.offers {
		if l.Expires <= now {
			delete(s.offers, mac)
		}
	}
}

func (s *Server) onDatagram(d ipstack.Datagram) {
	m, err := Unmarshal(d.Payload)
	if err != nil || m.Op != opRequest {
		return
	}
	switch m.Type {
	case Discover:
		s.onDiscover(m)
	case Request:
		s.onRequest(m)
	case Release:
		s.onRelease(m)
	case Decline:
		s.onDecline(m)
	}
}

// pick chooses an address for mac: an existing lease or offer first (so
// rediscovery is stable), then the lowest free pool address.
func (s *Server) pick(mac ether.MAC, requested netsim.IP) (netsim.IP, error) {
	s.expire()
	if l, ok := s.byMAC[mac]; ok {
		return l.IP, nil
	}
	if l, ok := s.offers[mac]; ok {
		return l.IP, nil
	}
	free := func(ip netsim.IP) bool {
		if ip < s.cfg.PoolStart || ip > s.cfg.PoolEnd {
			return false
		}
		if s.reserved[ip] {
			return false
		}
		_, leased := s.byIP[ip]
		if leased {
			return false
		}
		for _, o := range s.offers {
			if o.IP == ip {
				return false
			}
		}
		return true
	}
	if requested != 0 && free(requested) {
		return requested, nil
	}
	for ip := s.cfg.PoolStart; ip <= s.cfg.PoolEnd; ip++ {
		if free(ip) {
			return ip, nil
		}
	}
	return 0, errors.New("dhcp: address pool exhausted")
}

func (s *Server) onDiscover(m *Message) {
	s.Discovers++
	ip, err := s.pick(m.CHAddr, m.RequestedIP)
	if err != nil {
		return // RFC 2131: a server with nothing to offer stays silent
	}
	s.offers[m.CHAddr] = &Lease{IP: ip, MAC: m.CHAddr, Expires: s.eng.Now().Add(s.cfg.OfferHold)}
	s.Offers++
	s.reply(m, Offer, ip)
}

func (s *Server) onRequest(m *Message) {
	s.Requests++
	s.expire()
	// SELECTING state names a server; if it is not us the client took a
	// competing offer — forget ours.
	if m.ServerID != 0 && m.ServerID != s.stack.IP() {
		delete(s.offers, m.CHAddr)
		return
	}
	want := m.RequestedIP
	if want == 0 {
		want = m.CIAddr // RENEWING/REBINDING carry the address in ciaddr
	}
	if want == 0 {
		s.nak(m)
		return
	}
	// The address must be ours to give and either free or already bound
	// to this client.
	if want < s.cfg.PoolStart || want > s.cfg.PoolEnd || s.reserved[want] {
		s.nak(m)
		return
	}
	if cur, leased := s.byIP[want]; leased && cur.MAC != m.CHAddr {
		s.nak(m)
		return
	}
	if o, ok := s.offers[m.CHAddr]; ok && o.IP != want {
		s.nak(m)
		return
	}
	delete(s.offers, m.CHAddr)
	l := &Lease{IP: want, MAC: m.CHAddr, Expires: s.eng.Now().Add(s.cfg.Lease)}
	s.byIP[want] = l
	s.byMAC[m.CHAddr] = l
	s.Acks++
	s.reply(m, Ack, want)
}

func (s *Server) onRelease(m *Message) {
	s.Releases++
	if l, ok := s.byMAC[m.CHAddr]; ok && (m.CIAddr == 0 || m.CIAddr == l.IP) {
		delete(s.byIP, l.IP)
		delete(s.byMAC, m.CHAddr)
	}
}

// onDecline (client found the address in use, e.g. via ARP) blacklists
// nothing in this simulation but drops the binding so another address is
// offered next time.
func (s *Server) onDecline(m *Message) {
	if l, ok := s.byMAC[m.CHAddr]; ok {
		delete(s.byIP, l.IP)
		delete(s.byMAC, m.CHAddr)
	}
	delete(s.offers, m.CHAddr)
}

func (s *Server) nak(m *Message) {
	s.Naks++
	s.reply(m, Nak, 0)
}

func (s *Server) reply(req *Message, t MsgType, yiaddr netsim.IP) {
	resp := &Message{
		Op:       opReply,
		XID:      req.XID,
		Flags:    req.Flags,
		YIAddr:   yiaddr,
		CHAddr:   req.CHAddr,
		Type:     t,
		ServerID: s.stack.IP(),
	}
	if t == Ack || t == Offer {
		resp.LeaseSecs = uint32(s.cfg.Lease / sim.Second)
		resp.SubnetMask = s.cfg.SubnetMask
		resp.Router = s.cfg.Router
	}
	// Clients that set the broadcast flag (ours always do) cannot receive
	// unicast yet; renewing clients can.
	dst := netsim.Addr{IP: netsim.BroadcastIP, Port: ClientPort}
	if req.Flags&broadcastFlag == 0 && req.CIAddr != 0 {
		dst.IP = req.CIAddr
	}
	if err := s.sock.SendTo(dst, resp.Marshal()); err != nil {
		// Reply exceeding the MTU would be a codec bug, surface loudly.
		panic(fmt.Sprintf("dhcp: reply send: %v", err))
	}
}
