package dhcp

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// lanWorld is a bridge-connected L2 segment with a DHCP server and n
// unconfigured client stacks.
type lanWorld struct {
	eng     *sim.Engine
	br      *ether.Bridge
	server  *Server
	srvSt   *ipstack.Stack
	clients []*Client
	stacks  []*ipstack.Stack
}

func buildLAN(t *testing.T, nClients int, cfg ServerConfig) *lanWorld {
	t.Helper()
	eng := sim.NewEngine(1)
	br := ether.NewBridge(eng, "br0", 10*time.Microsecond)
	w := &lanWorld{eng: eng, br: br}
	w.srvSt = ipstack.New(eng, "dhcpd", br.AddPort("p0"), ether.SeqMAC(1),
		netsim.MustParseIP("10.9.0.1"), ipstack.Config{})
	if cfg.PoolStart == 0 {
		cfg.PoolStart = netsim.MustParseIP("10.9.0.100")
		cfg.PoolEnd = netsim.MustParseIP("10.9.0.109")
	}
	srv, err := NewServer(w.srvSt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.server = srv
	for i := 0; i < nClients; i++ {
		st := ipstack.New(eng, "client", br.AddPort("p"), ether.SeqMAC(uint32(10+i)), 0, ipstack.Config{})
		cl, err := NewClient(st, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		w.stacks = append(w.stacks, st)
		w.clients = append(w.clients, cl)
	}
	return w
}

// acquireAll runs Acquire on every client concurrently and returns the
// outcomes after the world settles.
func (w *lanWorld) acquireAll() ([]netsim.IP, []error) {
	ips := make([]netsim.IP, len(w.clients))
	errs := make([]error, len(w.clients))
	for i, cl := range w.clients {
		i, cl := i, cl
		w.eng.Spawn("acquire", func(p *sim.Proc) {
			ips[i], errs[i] = cl.Acquire(p)
		})
	}
	w.eng.RunFor(40 * time.Second)
	return ips, errs
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Op:          opRequest,
		XID:         0xdeadbeef,
		Secs:        3,
		Flags:       broadcastFlag,
		CIAddr:      netsim.MustParseIP("10.0.0.9"),
		YIAddr:      netsim.MustParseIP("10.0.0.10"),
		CHAddr:      ether.SeqMAC(7),
		Type:        Request,
		RequestedIP: netsim.MustParseIP("10.0.0.10"),
		ServerID:    netsim.MustParseIP("10.0.0.1"),
		LeaseSecs:   600,
		SubnetMask:  netsim.MustParseIP("255.255.255.0"),
		Router:      netsim.MustParseIP("10.0.0.1"),
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(xid uint32, secs, flags uint16, ci, yi, req, sid uint32, lease uint32, typ uint8, mac [6]byte) bool {
		m := &Message{
			Op: opReply, XID: xid, Secs: secs, Flags: flags,
			CIAddr: netsim.IP(ci), YIAddr: netsim.IP(yi),
			CHAddr: ether.MAC(mac), Type: MsgType(typ%7 + 1),
			RequestedIP: netsim.IP(req), ServerID: netsim.IP(sid),
			LeaseSecs: lease,
		}
		got, err := Unmarshal(m.Marshal())
		return err == nil && *got == *m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Unmarshal(b) // must not panic, error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	m := (&Message{Op: opRequest, Type: Discover, CHAddr: ether.SeqMAC(1)}).Marshal()
	m[headerLen-4] = 0 // corrupt cookie
	if _, err := Unmarshal(m); err == nil {
		t.Fatal("bad cookie accepted")
	}
	m = (&Message{Op: opRequest, Type: Discover}).Marshal()
	if _, err := Unmarshal(m[:len(m)-4]); err == nil {
		t.Fatal("truncated option accepted")
	}
	// A message whose options carry no type is rejected.
	noType := make([]byte, headerLen+1)
	copy(noType[headerLen-4:], magicCookie[:])
	noType[headerLen] = optEnd
	if _, err := Unmarshal(noType); err == nil {
		t.Fatal("missing message type accepted")
	}
}

func TestLeaseAcquisition(t *testing.T) {
	w := buildLAN(t, 1, ServerConfig{})
	ips, errs := w.acquireAll()
	if errs[0] != nil {
		t.Fatalf("acquire: %v", errs[0])
	}
	want := netsim.MustParseIP("10.9.0.100")
	if ips[0] != want {
		t.Fatalf("leased %v, want %v", ips[0], want)
	}
	if w.stacks[0].IP() != want {
		t.Fatalf("stack not configured: %v", w.stacks[0].IP())
	}
	if n := len(w.server.Leases()); n != 1 {
		t.Fatalf("server has %d leases, want 1", n)
	}
	// The configured stack is reachable: ping it from the server.
	var rtt sim.Duration
	var err error
	w.eng.Spawn("ping", func(p *sim.Proc) {
		rtt, err = w.srvSt.Ping(p, want, 56, 5*time.Second)
	})
	w.eng.RunFor(10 * time.Second)
	if err != nil || rtt <= 0 {
		t.Fatalf("leased address unreachable: rtt=%v err=%v", rtt, err)
	}
}

func TestConcurrentClientsGetDistinctAddresses(t *testing.T) {
	const n = 5
	w := buildLAN(t, n, ServerConfig{})
	ips, errs := w.acquireAll()
	seen := make(map[netsim.IP]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if seen[ips[i]] {
			t.Fatalf("address %v leased twice", ips[i])
		}
		seen[ips[i]] = true
	}
	if got := len(w.server.Leases()); got != n {
		t.Fatalf("server has %d leases, want %d", got, n)
	}
}

func TestPoolExhaustion(t *testing.T) {
	w := buildLAN(t, 3, ServerConfig{
		PoolStart: netsim.MustParseIP("10.9.0.100"),
		PoolEnd:   netsim.MustParseIP("10.9.0.101"), // two addresses, three clients
	})
	_, errs := w.acquireAll()
	failures := 0
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, ErrNoOffer) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("%d clients failed, want exactly 1", failures)
	}
}

func TestReleaseReturnsAddressToPool(t *testing.T) {
	w := buildLAN(t, 2, ServerConfig{
		PoolStart: netsim.MustParseIP("10.9.0.100"),
		PoolEnd:   netsim.MustParseIP("10.9.0.100"), // single address
	})
	var ip0 netsim.IP
	var err0 error
	w.eng.Spawn("first", func(p *sim.Proc) {
		ip0, err0 = w.clients[0].Acquire(p)
		if err0 != nil {
			return
		}
		p.Sleep(time.Second)
		w.clients[0].Release()
	})
	w.eng.RunFor(10 * time.Second)
	if err0 != nil {
		t.Fatalf("first acquire: %v", err0)
	}
	if w.clients[0].Bound() || w.stacks[0].IP() != 0 {
		t.Fatal("release did not deconfigure the first client")
	}
	var ip1 netsim.IP
	var err1 error
	w.eng.Spawn("second", func(p *sim.Proc) {
		ip1, err1 = w.clients[1].Acquire(p)
	})
	w.eng.RunFor(20 * time.Second)
	if err1 != nil {
		t.Fatalf("second acquire: %v", err1)
	}
	if ip1 != ip0 {
		t.Fatalf("released address not reused: got %v, want %v", ip1, ip0)
	}
}

func TestRenewalKeepsLeaseAlive(t *testing.T) {
	w := buildLAN(t, 1, ServerConfig{Lease: 20 * time.Second})
	_, errs := w.acquireAll()
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	// Without renewals the 20 s lease would expire well within 2 min.
	w.eng.RunFor(2 * time.Minute)
	if !w.clients[0].Bound() {
		t.Fatal("client lost its lease despite renewing")
	}
	if w.clients[0].Renewals < 5 {
		t.Fatalf("only %d renewals in 2 min of a 20 s lease", w.clients[0].Renewals)
	}
	if n := len(w.server.Leases()); n != 1 {
		t.Fatalf("server shows %d leases after renewals, want 1", n)
	}
}

func TestLeaseExpiresWithoutRenewal(t *testing.T) {
	w := buildLAN(t, 1, ServerConfig{Lease: 20 * time.Second})
	_, errs := w.acquireAll()
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	// Kill the client's renewal loop (simulates a crashed host).
	w.clients[0].Close()
	w.eng.RunFor(time.Minute)
	if n := len(w.server.Leases()); n != 0 {
		t.Fatalf("server still holds %d leases after expiry", n)
	}
}

func TestNakOnAddressLeasedToAnotherClient(t *testing.T) {
	w := buildLAN(t, 1, ServerConfig{})
	ips, errs := w.acquireAll()
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	// A rogue stack REQUESTs the address already leased to client 0.
	eng := w.eng
	rogue := ipstack.New(eng, "rogue", w.br.AddPort("rogue"),
		ether.SeqMAC(99), 0, ipstack.Config{})
	gotNak := false
	sock, err := rogue.BindUDP(ClientPort, func(d ipstack.Datagram) {
		if m, err := Unmarshal(d.Payload); err == nil && m.Type == Nak {
			gotNak = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	req := &Message{
		Op: opRequest, XID: 42, Flags: broadcastFlag, CHAddr: ether.SeqMAC(99),
		Type: Request, RequestedIP: ips[0], ServerID: w.srvSt.IP(),
	}
	sock.SendTo(netsim.Addr{IP: netsim.BroadcastIP, Port: ServerPort}, req.Marshal())
	eng.RunFor(5 * time.Second)
	if !gotNak {
		t.Fatal("server did not NAK a REQUEST for another client's address")
	}
	if w.server.Naks == 0 {
		t.Fatal("server NAK counter not incremented")
	}
}

func TestAcquireSurvivesFrameLoss(t *testing.T) {
	// 25% frame loss on the client's NIC: DISCOVER/REQUEST retransmit
	// with backoff until the handshake lands.
	eng := sim.NewEngine(3)
	br := ether.NewBridge(eng, "br0", 10*time.Microsecond)
	srvSt := ipstack.New(eng, "dhcpd", br.AddPort("s"), ether.SeqMAC(1),
		netsim.MustParseIP("10.9.0.1"), ipstack.Config{})
	if _, err := NewServer(srvSt, ServerConfig{
		PoolStart: netsim.MustParseIP("10.9.0.100"),
		PoolEnd:   netsim.MustParseIP("10.9.0.109"),
	}); err != nil {
		t.Fatal(err)
	}
	lossy := ether.Impair(br.AddPort("c"), 0.25, eng.Rand())
	clientSt := ipstack.New(eng, "client", lossy, ether.SeqMAC(9), 0, ipstack.Config{})
	client, err := NewClient(clientSt, ClientConfig{Tries: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ip netsim.IP
	var acqErr error
	eng.Spawn("acquire", func(p *sim.Proc) {
		ip, acqErr = client.Acquire(p)
	})
	eng.RunFor(10 * time.Minute)
	if acqErr != nil {
		t.Fatalf("acquire under loss: %v", acqErr)
	}
	if ip == 0 || clientSt.IP() != ip {
		t.Fatalf("client not configured: ip=%v stack=%v", ip, clientSt.IP())
	}
	if client.DiscoversSent+client.RequestsSent <= 2 {
		t.Fatal("no retransmissions under 25% loss — loss injection inert?")
	}
}

func TestRediscoveryIsStable(t *testing.T) {
	// A client that re-runs Acquire (e.g. after reboot) gets its old
	// address back while the lease is still current.
	w := buildLAN(t, 1, ServerConfig{})
	ips, errs := w.acquireAll()
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	w.clients[0].Release()
	// Re-acquire immediately: pool scan starts at the lowest free
	// address, which is the one just released.
	var again netsim.IP
	var err error
	w.eng.Spawn("re", func(p *sim.Proc) {
		again, err = w.clients[0].Acquire(p)
	})
	w.eng.RunFor(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if again != ips[0] {
		t.Fatalf("re-acquired %v, want original %v", again, ips[0])
	}
}
