package dhcp_test

import (
	"testing"
	"time"

	"wavnet/internal/core"
	"wavnet/internal/dhcp"
	"wavnet/internal/ipstack"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// TestDHCPAcrossWAVNetTunnel is the paper's §II.B claim made executable:
// "the two hosts are connected as if to an Ethernet switch. Therefore,
// protocols such as DHCP can be applied without any modification." An
// unconfigured stack on one NATed host broadcasts DISCOVER; the frame is
// tunneled across the emulated WAN to a DHCP server on the other host,
// and the lease configures the client end-to-end.
func TestDHCPAcrossWAVNetTunnel(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	hub := nw.NewSite("hub")
	rdvHost := nw.NewPublicHost("rdv", hub, netsim.MustParseIP("50.0.0.1"), 100e6, time.Millisecond)
	rdv, err := rendezvous.NewServer(rdvHost, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rdv.Bootstrap()

	var hosts []*core.Host
	var sites []*netsim.Site
	for i := 0; i < 2; i++ {
		site := nw.NewSite("site")
		sites = append(sites, site)
		nw.SetRTT(hub, site, 30*time.Millisecond)
		gw := nw.NewPublicHost("gw", site, netsim.MakeIP(60, byte(i+1), 0, 1), 100e6, 100*time.Microsecond)
		lan := nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		nat.Attach(gw, nat.PortRestrictedCone)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := core.NewHost(phys, []string{"alpha", "beta"}[i], core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
		hh := h
		eng.Spawn("join", func(p *sim.Proc) {
			if e := hh.Join(p, rdv.Addr()); e != nil {
				t.Errorf("join: %v", e)
			}
		})
	}
	nw.SetRTT(sites[0], sites[1], 60*time.Millisecond)
	eng.RunFor(20 * time.Second)
	eng.Spawn("connect", func(p *sim.Proc) {
		if _, err := hosts[0].ConnectTo(p, "beta"); err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	eng.RunFor(20 * time.Second)

	// DHCP server on alpha's side of the virtual LAN.
	srvStack := hosts[0].CreateDom0(netsim.MustParseIP("10.9.0.1"))
	if _, err := dhcp.NewServer(srvStack, dhcp.ServerConfig{
		PoolStart: netsim.MustParseIP("10.9.0.100"),
		PoolEnd:   netsim.MustParseIP("10.9.0.109"),
	}); err != nil {
		t.Fatal(err)
	}

	// Unconfigured stack on beta, across the WAN.
	clientStack := ipstack.New(eng, "beta-guest", hosts[1].AttachVIF("vif1"),
		hosts[1].NewMAC(), 0, ipstack.Config{MTU: hosts[1].VirtualMTU()})
	client, err := dhcp.NewClient(clientStack, dhcp.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var leased netsim.IP
	var acqErr error
	var rtt sim.Duration
	var pingErr error
	eng.Spawn("acquire", func(p *sim.Proc) {
		leased, acqErr = client.Acquire(p)
		if acqErr != nil {
			return
		}
		// The fresh lease is immediately usable across the tunnel.
		rtt, pingErr = clientStack.Ping(p, srvStack.IP(), 56, 5*time.Second)
	})
	eng.RunFor(time.Minute)

	if acqErr != nil {
		t.Fatalf("acquire over tunnel: %v", acqErr)
	}
	if leased != netsim.MustParseIP("10.9.0.100") {
		t.Fatalf("leased %v, want 10.9.0.100", leased)
	}
	if clientStack.IP() != leased {
		t.Fatalf("client stack not configured: %v", clientStack.IP())
	}
	if pingErr != nil {
		t.Fatalf("ping over fresh lease: %v", pingErr)
	}
	// RTT must reflect the WAN path (two 30 ms spokes), not a local reply.
	if rtt < 50*time.Millisecond {
		t.Fatalf("rtt %v implausibly low for the WAN path", rtt)
	}
}
