package dhcp

import (
	"errors"

	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Client states.
type clientState int

const (
	stateInit clientState = iota
	stateSelecting
	stateRequesting
	stateBound
	stateRenewing
)

// ClientConfig tunes a DHCP client.
type ClientConfig struct {
	// Tries bounds DISCOVER and REQUEST retransmissions (default 4).
	Tries int
	// RetryBase is the first retransmission interval; it doubles per try
	// (default 1 s, so 1+2+4+8 s for four tries).
	RetryBase sim.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Tries <= 0 {
		c.Tries = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = sim.Second
	}
	return c
}

// Errors returned by Acquire.
var (
	ErrNoOffer = errors.New("dhcp: no offer received")
	ErrNoAck   = errors.New("dhcp: request went unanswered")
	ErrNak     = errors.New("dhcp: server refused the request")
)

// Client obtains and maintains one address lease for its stack. The
// stack usually starts unconfigured (IP 0.0.0.0); Acquire assigns the
// leased address with SetIP and starts the renewal loop.
type Client struct {
	stack *ipstack.Stack
	eng   *sim.Engine
	cfg   ClientConfig
	sock  *ipstack.UDPSock

	state    clientState
	xid      uint32
	offer    *Message
	ack      *Message
	waiter   *sim.Proc
	bound    bool
	boundAt  sim.Time
	leaseFor sim.Duration
	renewTk  *sim.Ticker

	// Stats.
	DiscoversSent, RequestsSent uint64
	OffersRecv, AcksRecv        uint64
	NaksRecv                    uint64
	Renewals                    uint64
}

// NewClient creates a client on stack (binds UDP port 68).
func NewClient(stack *ipstack.Stack, cfg ClientConfig) (*Client, error) {
	c := &Client{stack: stack, eng: stack.Engine(), cfg: cfg.withDefaults()}
	sock, err := stack.BindUDP(ClientPort, c.onDatagram)
	if err != nil {
		return nil, err
	}
	c.sock = sock
	return c, nil
}

// Lease reports the bound address and the lease duration (zero before
// Acquire succeeds).
func (c *Client) Lease() (netsim.IP, sim.Duration) {
	if !c.bound {
		return 0, 0
	}
	return c.stack.IP(), c.leaseFor
}

// Bound reports whether the client currently holds a lease.
func (c *Client) Bound() bool { return c.bound }

// Acquire runs the DISCOVER/OFFER/REQUEST/ACK handshake, blocking the
// process until the stack is configured or the retry budget is spent.
// On success the stack's IP is set and a renewal loop keeps the lease.
func (c *Client) Acquire(p *sim.Proc) (netsim.IP, error) {
	// Phase 1: DISCOVER until an OFFER arrives.
	c.xid = uint32(c.eng.Rand().Int63())
	c.state = stateSelecting
	c.offer = nil
	c.waiter = p
	if !c.retryUntil(p, func() {
		c.DiscoversSent++
		c.send(&Message{
			Op:     opRequest,
			XID:    c.xid,
			Flags:  broadcastFlag,
			CHAddr: c.stack.MAC(),
			Type:   Discover,
		})
	}, func() bool { return c.offer != nil }) {
		c.state = stateInit
		c.waiter = nil
		return 0, ErrNoOffer
	}

	// Phase 2: REQUEST the offered address until ACK or NAK (a NAK
	// clears c.offer, which doubles as the "stop retrying" signal).
	c.state = stateRequesting
	c.ack = nil
	offered := c.offer
	if !c.retryUntil(p, func() {
		c.RequestsSent++
		c.send(&Message{
			Op:          opRequest,
			XID:         c.xid,
			Flags:       broadcastFlag,
			CHAddr:      c.stack.MAC(),
			Type:        Request,
			RequestedIP: offered.YIAddr,
			ServerID:    offered.ServerID,
		})
	}, func() bool { return c.ack != nil || c.offer == nil }) {
		c.state = stateInit
		c.waiter = nil
		return 0, ErrNoAck
	}
	c.waiter = nil
	if c.ack == nil {
		c.state = stateInit
		return 0, ErrNak
	}

	// Bound: configure the stack and schedule renewal at T1 = lease/2.
	c.state = stateBound
	c.bound = true
	c.boundAt = c.eng.Now()
	c.leaseFor = sim.Duration(c.ack.LeaseSecs) * sim.Second
	c.stack.SetIP(c.ack.YIAddr)
	c.startRenewal()
	return c.ack.YIAddr, nil
}

// retryUntil fires send, then waits with exponential backoff until ok()
// or the try budget is exhausted.
func (c *Client) retryUntil(p *sim.Proc, send func(), ok func() bool) bool {
	wait := c.cfg.RetryBase
	for try := 0; try < c.cfg.Tries; try++ {
		send()
		deadline := sim.NewTimer(c.eng, func() {
			if c.waiter != nil {
				c.waiter.Unpark()
			}
		})
		deadline.Reset(wait)
		for !ok() && deadline.Active() {
			if !p.Park() {
				deadline.Stop()
				return ok()
			}
		}
		deadline.Stop()
		if ok() {
			return true
		}
		wait *= 2
	}
	return ok()
}

// startRenewal arms a ticker at T1 (half the lease) that unicasts a
// renewal REQUEST to the leasing server. A missed renewal falls back to
// rediscovery on the next tick.
func (c *Client) startRenewal() {
	if c.renewTk != nil {
		c.renewTk.Stop()
	}
	t1 := c.leaseFor / 2
	if t1 <= 0 {
		return
	}
	c.renewTk = sim.NewTicker(c.eng, t1, func() {
		if !c.bound {
			return
		}
		c.state = stateRenewing
		c.Renewals++
		c.RequestsSent++
		// RENEWING: unicast to the server, address in ciaddr, no server id.
		resp := &Message{
			Op:     opRequest,
			XID:    c.xid,
			CIAddr: c.stack.IP(),
			CHAddr: c.stack.MAC(),
			Type:   Request,
		}
		c.sendTo(netsim.Addr{IP: c.ack.ServerID, Port: ServerPort}, resp)
	})
}

// Release gives the lease back and deconfigures the stack.
func (c *Client) Release() {
	if !c.bound {
		return
	}
	c.sendTo(netsim.Addr{IP: c.ack.ServerID, Port: ServerPort}, &Message{
		Op:     opRequest,
		XID:    c.xid,
		CIAddr: c.stack.IP(),
		CHAddr: c.stack.MAC(),
		Type:   Release,
	})
	if c.renewTk != nil {
		c.renewTk.Stop()
		c.renewTk = nil
	}
	c.bound = false
	c.state = stateInit
	c.stack.SetIP(0)
}

// Close releases the client port (the lease, if any, simply expires).
func (c *Client) Close() {
	if c.renewTk != nil {
		c.renewTk.Stop()
		c.renewTk = nil
	}
	c.sock.Close()
}

func (c *Client) send(m *Message) {
	c.sendTo(netsim.Addr{IP: netsim.BroadcastIP, Port: ServerPort}, m)
}

func (c *Client) sendTo(dst netsim.Addr, m *Message) {
	// Send errors (closed socket during shutdown) are not actionable here.
	_ = c.sock.SendTo(dst, m.Marshal())
}

func (c *Client) onDatagram(d ipstack.Datagram) {
	m, err := Unmarshal(d.Payload)
	if err != nil || m.Op != opReply || m.XID != c.xid || m.CHAddr != c.stack.MAC() {
		return
	}
	switch m.Type {
	case Offer:
		c.OffersRecv++
		if c.state == stateSelecting && c.offer == nil {
			c.offer = m
			if c.waiter != nil {
				c.waiter.Unpark()
			}
		}
	case Ack:
		c.AcksRecv++
		switch c.state {
		case stateRequesting:
			c.ack = m
			if c.waiter != nil {
				c.waiter.Unpark()
			}
		case stateRenewing:
			c.state = stateBound
			c.boundAt = c.eng.Now()
			if m.LeaseSecs != 0 {
				granted := sim.Duration(m.LeaseSecs) * sim.Second
				if granted != c.leaseFor {
					// The server changed the lease; re-pace T1.
					c.leaseFor = granted
					c.startRenewal()
				}
			}
		}
	case Nak:
		c.NaksRecv++
		switch c.state {
		case stateRequesting:
			c.offer = nil
			if c.waiter != nil {
				c.waiter.Unpark()
			}
		case stateRenewing:
			// Lost the lease: deconfigure; the owner must re-Acquire.
			c.bound = false
			c.state = stateInit
			c.stack.SetIP(0)
			if c.renewTk != nil {
				c.renewTk.Stop()
				c.renewTk = nil
			}
		}
	}
}
