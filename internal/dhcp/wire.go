// Package dhcp implements a DHCP server and client (RFC 2131 message
// flow) running entirely on WAVNet's virtual link layer. The paper's
// §II.B claims that once hosts are connected "as if to an Ethernet
// switch ... protocols such as DHCP can be applied without any
// modification"; this package is that claim made executable: an
// unconfigured stack broadcasts DISCOVER through the tap, the Packet
// Assembler tunnels it across the WAN, and a server on the far side of a
// punched tunnel leases it an address.
package dhcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
)

// Well-known DHCP ports.
const (
	ServerPort = 67
	ClientPort = 68
)

// Message op codes (BOOTP).
const (
	opRequest = 1 // client -> server
	opReply   = 2 // server -> client
)

// MsgType is the DHCP message type (option 53).
type MsgType uint8

// DHCP message types.
const (
	Discover MsgType = 1
	Offer    MsgType = 2
	Request  MsgType = 3
	Decline  MsgType = 4
	Ack      MsgType = 5
	Nak      MsgType = 6
	Release  MsgType = 7
)

// String names the message type as tcpdump would.
func (t MsgType) String() string {
	switch t {
	case Discover:
		return "DISCOVER"
	case Offer:
		return "OFFER"
	case Request:
		return "REQUEST"
	case Decline:
		return "DECLINE"
	case Ack:
		return "ACK"
	case Nak:
		return "NAK"
	case Release:
		return "RELEASE"
	}
	return fmt.Sprintf("dhcp-type-%d", uint8(t))
}

// Option codes used on the virtual LAN.
const (
	optPad         = 0
	optSubnetMask  = 1
	optRouter      = 3
	optRequestedIP = 50
	optLeaseTime   = 51
	optMsgType     = 53
	optServerID    = 54
	optEnd         = 255
)

// magicCookie marks the start of the options field (RFC 1497).
var magicCookie = [4]byte{99, 130, 83, 99}

// headerLen is the fixed BOOTP header: op..giaddr (44 bytes), chaddr
// (16), sname (64), file (128), then the 4-byte cookie.
const headerLen = 44 + 16 + 64 + 128 + 4

// Message is a decoded DHCP message. Zero-valued fields are simply
// absent on the wire.
type Message struct {
	Op    uint8
	XID   uint32
	Secs  uint16
	Flags uint16

	CIAddr netsim.IP // client's current address (renewals)
	YIAddr netsim.IP // "your" address (server assignments)
	SIAddr netsim.IP // next server
	GIAddr netsim.IP // relay agent

	CHAddr ether.MAC // client hardware address

	// Options.
	Type        MsgType
	RequestedIP netsim.IP
	ServerID    netsim.IP
	LeaseSecs   uint32
	SubnetMask  netsim.IP
	Router      netsim.IP
}

// broadcastFlag is the RFC 2131 BROADCAST bit: the client cannot yet
// receive unicast, so replies must be broadcast. Our clients always set
// it (an unconfigured virtual stack has no address to unicast to).
const broadcastFlag = 0x8000

// Marshal encodes the message in RFC 2131 wire format.
func (m *Message) Marshal() []byte {
	opts := make([]byte, 0, 32)
	opts = append(opts, optMsgType, 1, byte(m.Type))
	put := func(code byte, ip netsim.IP) {
		if ip == 0 {
			return
		}
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(ip))
		opts = append(opts, code, 4)
		opts = append(opts, b[:]...)
	}
	put(optRequestedIP, m.RequestedIP)
	put(optServerID, m.ServerID)
	put(optSubnetMask, m.SubnetMask)
	put(optRouter, m.Router)
	if m.LeaseSecs != 0 {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], m.LeaseSecs)
		opts = append(opts, optLeaseTime, 4)
		opts = append(opts, b[:]...)
	}
	opts = append(opts, optEnd)

	b := make([]byte, headerLen+len(opts))
	b[0] = m.Op
	b[1] = 1 // htype: Ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:], m.XID)
	binary.BigEndian.PutUint16(b[8:], m.Secs)
	binary.BigEndian.PutUint16(b[10:], m.Flags)
	binary.BigEndian.PutUint32(b[12:], uint32(m.CIAddr))
	binary.BigEndian.PutUint32(b[16:], uint32(m.YIAddr))
	binary.BigEndian.PutUint32(b[20:], uint32(m.SIAddr))
	binary.BigEndian.PutUint32(b[24:], uint32(m.GIAddr))
	copy(b[28:34], m.CHAddr[:])
	copy(b[headerLen-4:], magicCookie[:])
	copy(b[headerLen:], opts)
	return b
}

// Unmarshal decodes a DHCP message; unknown options are skipped.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerLen {
		return nil, errors.New("dhcp: short message")
	}
	if [4]byte(b[headerLen-4:headerLen]) != magicCookie {
		return nil, errors.New("dhcp: bad magic cookie")
	}
	m := &Message{
		Op:     b[0],
		XID:    binary.BigEndian.Uint32(b[4:]),
		Secs:   binary.BigEndian.Uint16(b[8:]),
		Flags:  binary.BigEndian.Uint16(b[10:]),
		CIAddr: netsim.IP(binary.BigEndian.Uint32(b[12:])),
		YIAddr: netsim.IP(binary.BigEndian.Uint32(b[16:])),
		SIAddr: netsim.IP(binary.BigEndian.Uint32(b[20:])),
		GIAddr: netsim.IP(binary.BigEndian.Uint32(b[24:])),
	}
	copy(m.CHAddr[:], b[28:34])
	opts := b[headerLen:]
	for i := 0; i < len(opts); {
		code := opts[i]
		if code == optEnd {
			break
		}
		if code == optPad {
			i++
			continue
		}
		if i+1 >= len(opts) {
			return nil, errors.New("dhcp: truncated option")
		}
		n := int(opts[i+1])
		if i+2+n > len(opts) {
			return nil, errors.New("dhcp: truncated option value")
		}
		v := opts[i+2 : i+2+n]
		switch code {
		case optMsgType:
			if n == 1 {
				m.Type = MsgType(v[0])
			}
		case optRequestedIP:
			if n == 4 {
				m.RequestedIP = netsim.IP(binary.BigEndian.Uint32(v))
			}
		case optServerID:
			if n == 4 {
				m.ServerID = netsim.IP(binary.BigEndian.Uint32(v))
			}
		case optSubnetMask:
			if n == 4 {
				m.SubnetMask = netsim.IP(binary.BigEndian.Uint32(v))
			}
		case optRouter:
			if n == 4 {
				m.Router = netsim.IP(binary.BigEndian.Uint32(v))
			}
		case optLeaseTime:
			if n == 4 {
				m.LeaseSecs = binary.BigEndian.Uint32(v)
			}
		}
		i += 2 + n
	}
	if m.Type == 0 {
		return nil, errors.New("dhcp: missing message type")
	}
	return m, nil
}
