package experiments

import (
	"strings"
	"testing"
)

func TestVPCScale(t *testing.T) {
	r, err := VPCScale(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CrossDelivered != 0 {
			t.Fatalf("%d tenants: %d cross-tenant frames delivered", row.Tenants, row.CrossDelivered)
		}
		if row.LookupLeaks != 0 {
			t.Fatalf("%d tenants: %d rendezvous records leaked", row.Tenants, row.LookupLeaks)
		}
		if row.Tenants > 1 && row.CrossDropped == 0 {
			t.Fatalf("%d tenants: no traffic crossed the forced tunnel (vacuous)", row.Tenants)
		}
		if row.Tenants > 1 && row.FloodSuppressed == 0 {
			t.Fatalf("%d tenants: smarter flooding suppressed nothing", row.Tenants)
		}
		if row.IntraRTT <= 0 {
			t.Fatalf("%d tenants: intra RTT %v", row.Tenants, row.IntraRTT)
		}
	}
	if !strings.Contains(r.String(), "Cross delivered") {
		t.Fatal("table missing leak column")
	}
}
