// Package experiments reproduces every table and figure of the paper's
// evaluation (Section III). Each driver builds its scenario, runs the
// measurement end-to-end on the simulated substrate, and returns a typed
// result whose String() renders a paper-style table; cmd/wavnet-bench
// and the repository-root benchmarks are thin wrappers around these
// functions.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"wavnet/internal/scenario"
	"wavnet/internal/sim"
)

// Options tunes experiment cost. Quick mode shrinks durations and
// transfer sizes (the defaults used by `go test -bench`); Paper mode
// uses the paper's parameters where tractable.
type Options struct {
	Seed int64
	// Quick selects reduced durations/sizes (default true).
	Quick bool
	// Observer, when set, is handed each built world after its
	// measurement completes and before the final scrape check.
	// cmd/wavnet-bench uses it to dump flow telemetry and alert state
	// from the same worlds the experiments measured.
	Observer func(*scenario.World)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// finish runs the caller's observer (if any) over the measured world,
// then asserts the world-wide scrape is intact — every driver's final
// step before returning its row.
func (o Options) finish(w *scenario.World) error {
	if o.Observer != nil {
		o.Observer(w)
	}
	return w.ScrapeCheck()
}

// scaled returns q in quick mode, p otherwise.
func (o Options) scaled(q, p sim.Duration) sim.Duration {
	if o.Quick {
		return q
	}
	return p
}

func (o Options) scaledBytes(q, p int64) int64 {
	if o.Quick {
		return q
	}
	return p
}

// Runner is a registered experiment.
type Runner struct {
	ID    string // "table2", "figure6", ...
	Title string
	Run   func(Options) (fmt.Stringer, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Table I: host configuration (topology definition)", func(o Options) (fmt.Stringer, error) { return TableI(o) }},
		{"table2", "Table II: network latency by ICMP request/response", func(o Options) (fmt.Stringer, error) { return TableII(o) }},
		{"figure6", "Figure 6: TTCP bandwidth benchmark over WAN (HKU-SIAT)", func(o Options) (fmt.Stringer, error) { return Figure6(o) }},
		{"figure7", "Figure 7: bandwidth utilization under different network conditions", func(o Options) (fmt.Stringer, error) { return Figure7(o) }},
		{"figure8", "Figure 8: Netperf performance while scaling virtual cluster size", func(o Options) (fmt.Stringer, error) { return Figure8(o) }},
		{"figure9", "Figure 9: VM network bandwidth during live migration", func(o Options) (fmt.Stringer, error) { return Figure9(o) }},
		{"table3", "Table III: HTTP connection time before/after VM migration", func(o Options) (fmt.Stringer, error) { return TableIII(o) }},
		{"table4", "Table IV: HTTP throughput before/after VM migration", func(o Options) (fmt.Stringer, error) { return TableIV(o) }},
		{"figure10", "Figure 10: ICMP RTT and HTTP throughput during live migration", func(o Options) (fmt.Stringer, error) { return Figure10(o) }},
		{"table5", "Table V: time of VM live migration among different sites", func(o Options) (fmt.Stringer, error) { return TableV(o) }},
		{"figure11", "Figure 11: MPICH heat distribution with/without VM migration", func(o Options) (fmt.Stringer, error) { return Figure11(o) }},
		{"figure12", "Figure 12: network latency reported on PlanetLab (400 hosts)", func(o Options) (fmt.Stringer, error) { return Figure12(o) }},
		{"figure13", "Figure 13: average and maximum latency within virtual cluster", func(o Options) (fmt.Stringer, error) { return Figure13(o) }},
		{"figure14", "Figure 14: locality-sensitive vs random selection (NAS EP/FT)", func(o Options) (fmt.Stringer, error) { return Figure14(o) }},
		{"vpc", "VPC isolation & scale: overlapping tenants over one shared fabric (beyond the paper)", func(o Options) (fmt.Stringer, error) { return VPCScale(o) }},
		{"peering", "VPC peering & quotas: policy-allowed routes and tenant rate limits (beyond the paper)", func(o Options) (fmt.Stringer, error) { return PeeringQuota(o) }},
		{"federation", "Federated rendezvous: cross-broker lookup/connect vs broker count and replication lag (beyond the paper)", func(o Options) (fmt.Stringer, error) { return Federation(o) }},
		{"failover", "Broker failover: time-to-re-home and connect success after a home-broker crash (beyond the paper)", func(o Options) (fmt.Stringer, error) { return Failover(o) }},
		{"placement", "VM placement: scheduler locality, migration time and connect success per tenant (beyond the paper)", func(o Options) (fmt.Stringer, error) { return Placement(o) }},
		{"migration", "VM migration micro-sweep: time/downtime/rounds and clean abort under partition (beyond the paper)", func(o Options) (fmt.Stringer, error) { return MigrationSweep(o) }},
		{"service", "Tenant services: VIP failover time and request success vs probe budget, backends and brokers (beyond the paper)", func(o Options) (fmt.Stringer, error) { return ServiceFailover(o) }},
	}
}

// ByID resolves a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- rendering helpers ----

type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func ms(d sim.Duration) string   { return fmt.Sprintf("%.3f", float64(d)/1e6) }
func msf(v float64) string       { return fmt.Sprintf("%.1f", v) }
func mbps(v float64) string      { return fmt.Sprintf("%.2f", v) }
func secs(d sim.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
