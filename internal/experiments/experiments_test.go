package experiments

import (
	"strings"
	"testing"

	"wavnet/internal/sim"
)

// quick returns quick-mode options with a fixed seed.
func quick() Options { return Options{Seed: 7, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %s", r.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "table4", "table5",
		"figure6", "figure7", "figure8", "figure9", "figure10", "figure11", "figure12", "figure13", "figure14"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("table2"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID invented an experiment")
	}
}

func TestTableI(t *testing.T) {
	r, err := TableI(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "SIAT") {
		t.Fatal("missing site rows")
	}
}

func TestTableII(t *testing.T) {
	r, err := TableII(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Both overlays must be close to physical (within 3 ms as the
		// paper finds), and IPOP at or above WAVNet.
		dWav := row.WAVNet - row.Physical
		dIpop := row.IPOP - row.Physical
		if dWav < 0 {
			dWav = -dWav
		}
		if float64(dWav) > 3e6 {
			t.Errorf("%s: WAVNet rtt %v far from physical %v", row.Pair, row.WAVNet, row.Physical)
		}
		if dIpop < 0 {
			t.Errorf("%s: IPOP rtt %v below physical %v", row.Pair, row.IPOP, row.Physical)
		}
	}
	// SIAT-PU must reflect the measured override (~219 ms), not hub sums.
	if r.Rows[2].Physical < 210e6 || r.Rows[2].Physical > 230e6 {
		t.Errorf("SIAT-PU physical = %v, want ≈219 ms", r.Rows[2].Physical)
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !(row.Physical > row.WAVNet && row.WAVNet > row.IPOP) {
			t.Errorf("%dMB: want physical > WAVNet > IPOP, got %.0f/%.0f/%.0f",
				row.SizeMB, row.Physical, row.WAVNet, row.IPOP)
		}
		rel := row.WAVNet / row.Physical
		if rel < 0.5 || rel > 1.0 {
			t.Errorf("%dMB: WAVNet/physical = %.2f outside the paper's 0.57-0.85 band", row.SizeMB, rel)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if rel := row.WAVNet / row.Physical; rel < 0.75 {
			t.Errorf("%.2f Mbps: WAVNet relative %.2f, want near native", row.WANMbps, rel)
		}
	}
	// IPOP: fine when congested, collapsed at 100 Mbps.
	first := r.Rows[0].IPOP / r.Rows[0].Physical
	last := r.Rows[len(r.Rows)-1].IPOP / r.Rows[len(r.Rows)-1].Physical
	if first < 0.5 {
		t.Errorf("IPOP at 6.25 Mbps relative %.2f, want usable", first)
	}
	if last > 0.35 {
		t.Errorf("IPOP at 100 Mbps relative %.2f, want collapsed (<20%% in the paper)", last)
	}
	if last >= first {
		t.Error("IPOP relative bandwidth must decline with link speed")
	}
}

func TestFigure12And13(t *testing.T) {
	r12, err := Figure12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r12.Pairs != 400*399/2 || r12.Over1s == 0 {
		t.Fatalf("figure12: pairs=%d over1s=%d", r12.Pairs, r12.Over1s)
	}
	r13, err := Figure13(quick())
	if err != nil {
		t.Fatal(err)
	}
	var prev sim.Duration
	for _, row := range r13.Rows {
		if row.Max < row.Avg {
			t.Fatalf("k=%d: max %v < avg %v", row.K, row.Max, row.Avg)
		}
		if row.Avg < prev {
			// Not strictly monotone in theory, but collapse signals a bug.
			if float64(prev-row.Avg) > 0.5*float64(prev) {
				t.Fatalf("k=%d: avg dropped sharply from %v to %v", row.K, prev, row.Avg)
			}
		}
		prev = row.Avg
	}
	// The small clusters must be tight (paper: k=8 ≈ 1.3 ms avg over
	// PlanetLab; our synthetic universe is similar within an order).
	if r13.Rows[0].Avg > 20e6 {
		t.Fatalf("k=2 avg %v too large", r13.Rows[0].Avg)
	}
}
