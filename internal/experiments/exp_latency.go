package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
)

// TableIResult reports the scenario definition derived from Table I.
type TableIResult struct{ tbl table }

func (r *TableIResult) String() string { return r.tbl.String() }

// TableI renders the topology the real-WAN experiments run on and
// verifies it builds.
func TableI(o Options) (*TableIResult, error) {
	o = o.withDefaults()
	if _, err := scenario.Build(o.Seed, scenario.RealWANSpecs(), scenario.RealWANOverrides()); err != nil {
		return nil, err
	}
	res := &TableIResult{tbl: table{
		title:  "Table I — host configuration in the (simulated) real WAN environment",
		header: []string{"Site", "RTT to HKU (ms)", "Access (Mbps)", "NAT"},
	}}
	for _, sp := range scenario.RealWANSpecs() {
		res.tbl.addRow(sp.Key, ms(sp.RTTToHub), mbps(sp.AccessBps/1e6), sp.NAT.String())
	}
	return res, nil
}

// TableIIRow is one site pair's latency measurement.
type TableIIRow struct {
	Pair                   string
	Physical, WAVNet, IPOP sim.Duration
	LossPct                float64
}

// TableIIResult holds the ICMP comparison of Table II.
type TableIIResult struct {
	Rows []TableIIRow
}

// String renders the paper-style table.
func (r *TableIIResult) String() string {
	t := table{
		title:  "Table II — network latency test by ICMP request/response (mean RTT, ms)",
		header: []string{"Sites", "Physical", "WAVNet", "IPOP"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Pair, ms(row.Physical), ms(row.WAVNet), ms(row.IPOP))
	}
	t.notes = append(t.notes, "paper: HKU-SIAT 74.244/74.207/74.596; HKU-PU 30.233/30.753/31.187; SIAT-PU 219.427/219.783/220.533")
	return t.String()
}

// TableII runs ping over the physical path, the WAVNet tunnel and the
// IPOP overlay for the paper's three site pairs.
func TableII(o Options) (*TableIIResult, error) {
	o = o.withDefaults()
	w, err := scenario.Build(o.Seed, scenario.RealWANSpecs(), scenario.RealWANOverrides())
	if err != nil {
		return nil, err
	}
	keys := []string{"HKU1", "SIAT", "PU"}
	if err := w.WAVNetUp(keys...); err != nil {
		return nil, err
	}
	if err := w.IPOPUp(keys...); err != nil {
		return nil, err
	}
	pairs := [][2]string{{"HKU1", "SIAT"}, {"HKU1", "PU"}, {"SIAT", "PU"}}
	duration := o.scaled(30*time.Second, 10*time.Minute)
	interval := time.Second

	res := &TableIIResult{}
	for _, pair := range pairs {
		a, b := w.M(pair[0]), w.M(pair[1])
		pa, pb, err := w.PhysicalPair(a, b)
		if err != nil {
			return nil, err
		}
		_ = pb
		// Warm every path's ARP before measuring.
		warm := func(run func(p *sim.Proc)) {
			w.Eng.Spawn("warm", func(p *sim.Proc) { run(p) })
			w.Eng.RunFor(5 * time.Second)
		}
		warm(func(p *sim.Proc) { pa.Ping(p, pb.IP(), 56, 2*time.Second) })
		warm(func(p *sim.Proc) { a.Dom0().Ping(p, b.VIP, 56, 2*time.Second) })
		warm(func(p *sim.Proc) { a.IPOP.Dom0().Ping(p, b.IPOPVIP, 56, 2*time.Second) })

		phys, _ := apps.StartPinger(pa, pb.IP(), interval, duration)
		wav, _ := apps.StartPinger(a.Dom0(), b.VIP, interval, duration)
		ipp, _ := apps.StartPinger(a.IPOP.Dom0(), b.IPOPVIP, interval, duration)
		w.Eng.RunFor(duration + 5*time.Second)
		row := TableIIRow{
			Pair:     fmt.Sprintf("%s-%s", pair[0], pair[1]),
			Physical: sim.Duration(phys.RTTms.Summary().Mean * 1e6),
			WAVNet:   sim.Duration(wav.RTTms.Summary().Mean * 1e6),
			IPOP:     sim.Duration(ipp.RTTms.Summary().Mean * 1e6),
			LossPct:  100 * (phys.LossRate() + wav.LossRate() + ipp.LossRate()),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
