package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// PeeringRow is one policy case of the peered-vs-isolated sweep: two
// networks of one tenant, probed from the first network toward the
// second's anchor (inside every allow policy used) and toward its
// second member (outside the partial policy).
type PeeringRow struct {
	Case        string
	ToAnchorOK  bool
	ToMemberOK  bool
	Forwards    uint64 // gateway re-injections at the receiving side
	PolicyDrops uint64 // gateway policy refusals at the receiving side
}

// QuotaRow is one contention point of the quota fairness sweep: two
// tenants run identical concurrent bulk transfers; one is metered.
type QuotaRow struct {
	QuotaMbps   float64 // 0 = unmetered baseline
	LimitedMbps float64 // metered tenant's achieved throughput
	OpenMbps    float64 // unmetered tenant's achieved throughput
	QuotaDrops  uint64  // frames dropped by the metered tenant's buckets
}

// PeeringResult reports the peering policy and quota fairness sweeps.
type PeeringResult struct {
	Policy []PeeringRow
	Quota  []QuotaRow
}

// String renders both tables.
func (r *PeeringResult) String() string {
	pt := table{
		title:  "VPC peering — policy-controlled routes between two networks of one tenant (beyond the paper)",
		header: []string{"Case", "To anchor", "To member", "Gw forwards", "Policy drops"},
	}
	okStr := func(ok bool) string {
		if ok {
			return "delivered"
		}
		return "blocked"
	}
	for _, row := range r.Policy {
		pt.addRow(row.Case, okStr(row.ToAnchorOK), okStr(row.ToMemberOK),
			fmt.Sprintf("%d", row.Forwards), fmt.Sprintf("%d", row.PolicyDrops))
	}
	pt.notes = append(pt.notes,
		"isolated: no PeeringSpec, nothing crosses; partial: AllowB covers only the anchor's /31")
	qt := table{
		title:  "VPC quotas — per-(tenant, tunnel) token buckets under contention",
		header: []string{"Quota (Mbps)", "Limited tenant (Mbps)", "Open tenant (Mbps)", "Quota drops"},
	}
	for _, row := range r.Quota {
		q := "none"
		if row.QuotaMbps > 0 {
			q = fmt.Sprintf("%.0f", row.QuotaMbps)
		}
		qt.addRow(q, mbps(row.LimitedMbps), mbps(row.OpenMbps), fmt.Sprintf("%d", row.QuotaDrops))
	}
	qt.notes = append(qt.notes,
		"both tenants transfer concurrently over one shared WAN; the open tenant must stay unaffected")
	return pt.String() + "\n" + qt.String()
}

// PeeringQuota runs the peered-vs-isolated pair sweep and the quota
// fairness sweep, all through the declarative Apply API.
func PeeringQuota(o Options) (*PeeringResult, error) {
	o = o.withDefaults()
	res := &PeeringResult{}
	cases := []struct {
		name    string
		peering []vpc.PeeringSpec
	}{
		{"isolated", nil},
		{"peered-full", []vpc.PeeringSpec{{A: "red", B: "blue"}}},
		{"peered-partial", []vpc.PeeringSpec{{A: "red", B: "blue", AllowB: []string{"10.20.0.0/31"}}}},
	}
	for _, c := range cases {
		row, err := peeringOnce(o, c.name, c.peering)
		if err != nil {
			return nil, fmt.Errorf("peering case %s: %w", c.name, err)
		}
		res.Policy = append(res.Policy, *row)
	}
	quotas := []float64{0, 4e6}
	if !o.Quick {
		quotas = []float64{0, 2e6, 8e6}
	}
	for _, q := range quotas {
		row, err := quotaOnce(o, q)
		if err != nil {
			return nil, fmt.Errorf("quota sweep %.0f bps: %w", q, err)
		}
		res.Quota = append(res.Quota, *row)
	}
	return res, nil
}

func peeringOnce(o Options, name string, peerings []vpc.PeeringSpec) (*PeeringRow, error) {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		return nil, err
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "red", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
			{Name: "blue", CIDR: "10.20.0.0/24", Members: []string{"pc02", "pc03"}, StaticAddressing: true},
		},
		Peerings: peerings,
	}
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	red, _ := w.VPC().Get("red")
	blue, _ := w.VPC().Get("blue")
	sender := red.Members()[0]
	row := &PeeringRow{Case: name}
	ping := func(p *sim.Proc, ip netsim.IP) bool {
		if _, err := sender.Stack.Ping(p, ip, 32, 4*time.Second); err == nil {
			return true
		}
		_, err := sender.Stack.Ping(p, ip, 32, 4*time.Second)
		return err == nil
	}
	w.Eng.Spawn("probe", func(p *sim.Proc) {
		row.ToAnchorOK = ping(p, blue.Members()[0].IP)
		row.ToMemberOK = ping(p, blue.Members()[1].IP)
	})
	w.Eng.RunFor(time.Minute)
	counters := metrics.NewCounterSet()
	for _, m := range blue.Members() {
		counters.Merge(m.Host.VPCCounters())
	}
	row.Forwards = counters.Get("peered_forwards")
	row.PolicyDrops = counters.Get("peer_policy_drops")
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}

func quotaOnce(o Options, quotaBps float64) (*QuotaRow, error) {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		return nil, err
	}
	limited := vpc.TenantSpec{
		Tenant: "limited",
		Networks: []vpc.NetworkSpec{
			{Name: "lim", CIDR: "10.40.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
		},
		Quota: vpc.QuotaSpec{RateBps: quotaBps},
	}
	open := vpc.TenantSpec{
		Tenant: "open",
		Networks: []vpc.NetworkSpec{
			{Name: "opn", CIDR: "10.50.0.0/24", Members: []string{"pc02", "pc03"}, StaticAddressing: true},
		},
	}
	if _, err := w.ApplySync(limited); err != nil {
		return nil, err
	}
	if _, err := w.ApplySync(open); err != nil {
		return nil, err
	}
	lim, _ := w.VPC().Get("lim")
	opn, _ := w.VPC().Get("opn")
	bytes := o.scaledBytes(1<<20, 4<<20)
	row := &QuotaRow{QuotaMbps: quotaBps / 1e6}
	run := func(n *vpc.Network, out *float64, errOut *error) {
		src, dst := n.Members()[0], n.Members()[1]
		if _, err := apps.StartSink(dst.Stack, 5001); err != nil {
			*errOut = err
			return
		}
		w.Eng.Spawn("ttcp-"+n.Name, func(p *sim.Proc) {
			r, err := apps.TTCP(p, src.Stack, netsim.Addr{IP: dst.IP, Port: 5001}, bytes, 16384)
			if err != nil {
				*errOut = err
				return
			}
			*out = metrics.Rate(r.Bytes, r.Elapsed)
		})
	}
	var limErr, opnErr error
	run(lim, &row.LimitedMbps, &limErr)
	run(opn, &row.OpenMbps, &opnErr)
	// Budget for the slowest case: the whole transfer at the quota rate,
	// padded generously for TCP recovery after policer drops.
	budget := 4 * time.Minute
	if quotaBps > 0 {
		budget += time.Duration(float64(bytes*8)/quotaBps*4) * time.Second
	}
	w.Eng.RunFor(budget)
	if limErr != nil {
		return nil, fmt.Errorf("limited tenant transfer: %w", limErr)
	}
	if opnErr != nil {
		return nil, fmt.Errorf("open tenant transfer: %w", opnErr)
	}
	counters := metrics.NewCounterSet()
	for _, m := range lim.Members() {
		counters.Merge(m.Host.VPCCounters())
	}
	row.QuotaDrops = counters.Get("quota_drops")
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
