package experiments

import (
	"fmt"
	"strings"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// VPCRow is one tenant-count sweep point.
type VPCRow struct {
	Tenants, HostsPerTenant int
	// Setup is the simulated time to admit every host into its tenant
	// (rendezvous join, scoped mesh, DHCP lease).
	Setup sim.Duration
	// IntraRTT is the mean anchor->member virtual-LAN RTT across tenants.
	IntraRTT sim.Duration
	// FloodSuppressed counts frames the attacker's own VNI-aware
	// flooding refused to send toward foreign tunnels (smarter
	// flooding: the first isolation layer).
	FloodSuppressed uint64
	// CrossDropped counts frames that crossed the deliberately forced
	// inter-tenant tunnel — with suppression disabled — and died at the
	// receiver's VNI tag check (the second layer).
	CrossDropped uint64
	// CrossDelivered counts frames that leaked into a foreign tenant's
	// bridges (must be zero).
	CrossDelivered uint64
	// LookupLeaks counts rendezvous records a tenant host could resolve
	// about foreign hosts (must be zero).
	LookupLeaks int
}

// VPCResult reports the multi-tenant isolation/scale sweep.
type VPCResult struct {
	Rows []VPCRow
}

// String renders the sweep.
func (r *VPCResult) String() string {
	t := table{
		title:  "VPC isolation & scale — tenants with overlapping 10.0.0.0/24 spaces over one shared WAN (beyond the paper)",
		header: []string{"Tenants", "Hosts/tenant", "Setup (s)", "Intra RTT (ms)", "Flood suppressed", "Cross dropped", "Cross delivered", "Lookup leaks"},
	}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Tenants),
			fmt.Sprintf("%d", row.HostsPerTenant),
			secs(row.Setup),
			ms(row.IntraRTT),
			fmt.Sprintf("%d", row.FloodSuppressed),
			fmt.Sprintf("%d", row.CrossDropped),
			fmt.Sprintf("%d", row.CrossDelivered),
			fmt.Sprintf("%d", row.LookupLeaks),
		)
	}
	t.notes = append(t.notes,
		"every tenant runs the same CIDR; cross delivered and lookup leaks must be 0",
		"flood suppressed > 0: VNI-aware flooding kept tagged broadcast off the forced inter-tenant tunnel",
		"cross dropped > 0 proves traffic really crossed that tunnel (suppression disabled) and died at the VNI check")
	return t.String()
}

// VPCScale sweeps the tenant count over one shared emulated WAN. Every
// tenant gets the same 10.0.0.0/24 CIDR — the strongest overlap — and
// a tunnel between the first two tenants' anchors is forced BEFORE the
// tenants split, so the data-plane tag check (not just control-plane
// scoping) is what the leak counters measure.
func VPCScale(o Options) (*VPCResult, error) {
	o = o.withDefaults()
	tenantCounts := []int{1, 2, 4}
	hostsPer := 2
	if !o.Quick {
		tenantCounts = []int{2, 4, 8}
		hostsPer = 3
	}
	res := &VPCResult{}
	for _, tenants := range tenantCounts {
		row, err := vpcOnce(o, tenants, hostsPer)
		if err != nil {
			return nil, fmt.Errorf("vpc sweep %d tenants: %w", tenants, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func vpcOnce(o Options, tenants, hostsPer int) (*VPCRow, error) {
	total := tenants * hostsPer
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(total, 100e6), nil)
	if err != nil {
		return nil, err
	}
	key := func(tenant, i int) string { return fmt.Sprintf("pc%02d", tenant*hostsPer+i) }

	// Force a shared-fabric tunnel between the first two tenants'
	// anchors before the split (with one tenant there is nothing to
	// force).
	if tenants > 1 {
		if err := w.WAVNetUp(key(0, 0), key(1, 0)); err != nil {
			return nil, err
		}
	}

	start := w.Eng.Now()
	nets := make([]*vpc.Network, tenants)
	for tnt := 0; tnt < tenants; tnt++ {
		n, err := w.CreateVPC(fmt.Sprintf("tenant%02d", tnt), "10.0.0.0/24")
		if err != nil {
			return nil, err
		}
		nets[tnt] = n
		keys := make([]string, hostsPer)
		for i := range keys {
			keys[i] = key(tnt, i)
		}
		if err := w.JoinVPC(n.Name, keys...); err != nil {
			return nil, err
		}
	}
	row := &VPCRow{Tenants: tenants, HostsPerTenant: hostsPer, Setup: w.Eng.Now().Sub(start)}

	// Intra-tenant RTT: anchor -> second member in every tenant.
	var rtts []sim.Duration
	for _, n := range nets {
		mem := n.Members()
		if len(mem) < 2 {
			continue
		}
		var rtt sim.Duration
		var pingErr error
		w.Eng.Spawn("intra", func(p *sim.Proc) {
			mem[0].Stack.Ping(p, mem[1].IP, 56, 5*time.Second) // warm ARP
			rtt, pingErr = mem[0].Stack.Ping(p, mem[1].IP, 56, 5*time.Second)
		})
		w.Eng.RunFor(15 * time.Second)
		if pingErr != nil {
			return nil, fmt.Errorf("intra-tenant ping in %s: %w", n.Name, pingErr)
		}
		rtts = append(rtts, rtt)
	}
	if len(rtts) > 0 {
		var sum sim.Duration
		for _, r := range rtts {
			sum += r
		}
		row.IntraRTT = sum / sim.Duration(len(rtts))
	}

	if tenants > 1 {
		// Leak detection: listeners on every bridge of tenant 1's anchor
		// count frames from foreign source MACs (tenant 1's own ARP and
		// DHCP chatter must not read as a leak); tenant 0's anchor
		// floods ARP for an unowned address, which crosses the forced
		// tunnel.
		victim := nets[1].Members()[0].Host
		coMACs := make(map[ether.MAC]bool)
		for _, mem := range nets[1].Members() {
			if mem.Stack != nil {
				coMACs[mem.Stack.MAC()] = true
			}
		}
		delivered := uint64(0)
		for _, vni := range victim.VNIs() {
			br, ok := victim.SegmentBridge(vni)
			if !ok {
				continue
			}
			vni := vni
			br.AddPort("leak-listener").SetRecv(func(f *ether.Frame) {
				if vni != 0 && !coMACs[f.Src] {
					delivered++
				}
			})
		}
		attacker := nets[0].Members()[0]
		// 10.0.0.200 is inside every tenant's CIDR but owned by no one:
		// each attempt broadcasts ARP through all tunnels, including the
		// forced cross-tenant one. Counters come from the uniform
		// metrics export, not struct fields.
		flood := func() {
			w.Eng.Spawn("cross", func(p *sim.Proc) {
				for i := 0; i < 10; i++ {
					attacker.Stack.Ping(p, attacker.Net.CIDR.Base+200, 56, time.Second)
				}
			})
			w.Eng.RunFor(30 * time.Second)
		}

		// Layer 1 — smarter flooding: the attacker's host knows (from
		// VNI announcements) that the victim carries a different tenant
		// and suppresses the tagged broadcast before the wire.
		suppressedBefore := attacker.Host.VPCCounters().Get("suppressed_floods")
		flood()
		row.FloodSuppressed = attacker.Host.VPCCounters().Get("suppressed_floods") - suppressedBefore
		if row.FloodSuppressed == 0 {
			return nil, fmt.Errorf("no floods were suppressed toward the forced tunnel")
		}

		// Layer 2 — receiver-side tag check: disable suppression so the
		// frames really cross, and count them dying at the victim.
		attacker.Host.SetFloodAll(true)
		dropsBefore := victim.VPCCounters().Get("cross_vni_drops")
		flood()
		row.CrossDropped = victim.VPCCounters().Get("cross_vni_drops") - dropsBefore
		row.CrossDelivered = delivered
		if row.CrossDropped == 0 {
			return nil, fmt.Errorf("no frames crossed the forced tunnel; leak counters are vacuous")
		}

		// Control-plane leak: can tenant 0 resolve tenant 1's hosts?
		probe := nets[0].Members()[0].Host
		leaks := 0
		var lookErr error
		w.Eng.Spawn("leak-lookup", func(p *sim.Proc) {
			for i := 0; i < hostsPer; i++ {
				recs, err := probe.Lookup(p, key(1, i))
				if err != nil {
					lookErr = err
					return
				}
				leaks += len(recs)
			}
		})
		w.Eng.RunFor(60 * time.Second)
		if lookErr != nil {
			return nil, lookErr
		}
		row.LookupLeaks = leaks

		// Flow telemetry must surface the deliberately hot flow: the
		// attacker's ARP flood for the unowned 10.0.0.200 ranks among the
		// attacker tenant's top talkers.
		target := (attacker.Net.CIDR.Base + 200).String()
		hot := false
		for _, tk := range w.TopTalkers(nets[0].Name, 10) {
			if strings.Contains(tk.Key, ">"+target) && tk.Bytes > 0 {
				hot = true
			}
		}
		if !hot {
			return nil, fmt.Errorf("ARP flood toward %s missing from top talkers: %v",
				target, w.TopTalkers(nets[0].Name, 10))
		}
	}
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
