package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
)

// MigrationRow is one point of the migration micro-sweep: one VM
// migrated between two emulated-WAN hosts, characterized by its
// counter export — plus one fault row where the destination is
// partitioned away mid-copy and the migration must abort cleanly.
type MigrationRow struct {
	MemMB     int
	DirtyRate float64
	Fault     string // "" or "partition"

	Outcome   string // "ok" or "aborted"
	Time      sim.Duration
	Downtime  sim.Duration
	Rounds    uint64
	Pages     uint64
	Aborts    uint64
	PingAfter bool // the VM answers a third party after the episode
}

// MigrationResult reports the sweep.
type MigrationResult struct {
	Rows []MigrationRow
}

// String renders the table.
func (r *MigrationResult) String() string {
	t := table{
		title: "VM live migration micro-sweep — time, downtime and pre-copy behaviour vs memory and dirty rate, with a clean abort under partition (beyond the paper)",
		header: []string{"Mem (MB)", "Dirty (pages/s)", "Fault", "Outcome",
			"Time (s)", "Downtime (s)", "Rounds", "Pages", "Aborts", "VM answers after"},
	}
	for _, row := range r.Rows {
		fault := row.Fault
		if fault == "" {
			fault = "-"
		}
		t.addRow(
			fmt.Sprintf("%d", row.MemMB),
			fmt.Sprintf("%.0f", row.DirtyRate),
			fault,
			row.Outcome,
			secs(row.Time),
			fmt.Sprintf("%.2f", row.Downtime.Seconds()),
			fmt.Sprintf("%d", row.Rounds),
			fmt.Sprintf("%d", row.Pages),
			fmt.Sprintf("%d", row.Aborts),
			fmt.Sprintf("%v", row.PingAfter),
		)
	}
	t.notes = append(t.notes,
		"counters come from vm.VM's uniform export (migrations/rounds/pages_copied/downtime_us/aborts)",
		"partition row: the destination becomes unreachable mid-copy; the stall watchdog aborts and the VM keeps serving at the source")
	return t.String()
}

// MigrationSweep runs the micro-sweep.
func MigrationSweep(o Options) (*MigrationResult, error) {
	o = o.withDefaults()
	type point struct {
		memMB int
		dirty float64
		fault string
	}
	points := []point{
		{32, 500, ""},
		{64, 2000, ""},
		{64, 8000, ""},
		{64, 2000, "partition"},
	}
	if !o.Quick {
		points = append(points, point{256, 2000, ""}, point{256, 2000, "partition"})
	}
	res := &MigrationResult{}
	for i, pt := range points {
		row, err := MigrationOnce(Options{Seed: o.Seed + int64(i), Quick: o.Quick},
			pt.memMB, pt.dirty, pt.fault)
		if err != nil {
			return nil, fmt.Errorf("migration %d MB dirty %.0f fault %q: %w",
				pt.memMB, pt.dirty, pt.fault, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// MigrationOnce measures one (memory, dirty rate, fault) point on a
// three-machine emulated WAN: the VM migrates pc00 -> pc01 while pc02
// observes.
func MigrationOnce(o Options, memMB int, dirtyRate float64, fault string) (*MigrationRow, error) {
	o = o.withDefaults()
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		return nil, err
	}
	if err := w.WAVNetUp(); err != nil {
		return nil, err
	}
	stall := 5 * time.Second
	v, err := w.AddVM("pc00", "vm-mig", netsim.MustParseIP("10.77.0.50"), vm.Config{
		MemoryMB:     memMB,
		DirtyRate:    dirtyRate,
		StallTimeout: stall,
	})
	if err != nil {
		return nil, err
	}
	row := &MigrationRow{MemMB: memMB, DirtyRate: dirtyRate, Fault: fault}

	healAt := sim.Duration(0)
	var fi *scenario.FaultInjector
	if fault == "partition" {
		// Cut the source-destination WAN path mid-copy and heal it well
		// after the watchdog has fired.
		healAt = 2*time.Second + 5*stall
		fi = w.Inject(
			scenario.PartitionAt(2*time.Second, "pc00", "pc01"),
			scenario.HealAt(healAt, "pc00", "pc01"),
		)
	}

	var migErr error
	var mrep *vm.MigrationReport
	done := false
	start := w.Eng.Now()
	var doneAt sim.Time
	w.Eng.Spawn("migrate", func(p *sim.Proc) {
		mrep, migErr = v.Migrate(p, w.M("pc01").WAV)
		done = true
		doneAt = p.Now()
	})
	budget := 20*time.Minute + healAt
	for spent := time.Duration(0); !done && spent < budget; spent += 5 * time.Second {
		w.Eng.RunFor(5 * time.Second)
	}
	if !done {
		return nil, fmt.Errorf("migration never returned")
	}
	w.Eng.RunFor(healAt + 2*time.Second) // past any pending heal
	if fi != nil {
		if fails := fi.Failures(); len(fails) != 0 {
			return nil, fmt.Errorf("fault schedule: %v", fails)
		}
	}

	c := v.Counters()
	row.Rounds = c.Get("rounds")
	row.Pages = c.Get("pages_copied")
	row.Aborts = c.Get("aborts")
	switch {
	case migErr == nil:
		row.Outcome = "ok"
		row.Time = mrep.Total()
		row.Downtime = mrep.Downtime
	case fault != "":
		row.Outcome = "aborted"
		row.Time = doneAt.Sub(start)
	default:
		return nil, fmt.Errorf("migration failed without a fault: %w", migErr)
	}

	// Whatever happened, the VM must answer a third party afterwards —
	// at the destination on success, at the source after an abort.
	var pingErr error
	pinged := false
	w.Eng.Spawn("ping", func(p *sim.Proc) {
		_, pingErr = w.M("pc02").Dom0().Ping(p, v.IP(), 56, 5*time.Second)
		pinged = true
	})
	w.Eng.RunFor(20 * time.Second)
	row.PingAfter = pinged && pingErr == nil
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
