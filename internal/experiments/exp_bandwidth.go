package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
)

// Figure6Row is one ttcp transfer-size measurement (rate in KB/s).
type Figure6Row struct {
	SizeMB                 int
	Physical, WAVNet, IPOP float64
}

// Figure6Result reproduces the TTCP bar chart.
type Figure6Result struct{ Rows []Figure6Row }

// String renders the series.
func (r *Figure6Result) String() string {
	t := table{
		title:  "Figure 6 — TTCP benchmarking over WAN HKU-SIAT (transfer rate, KB/s; buf 16384 B)",
		header: []string{"Transfer", "Physical", "WAVNet", "IPOP"},
	}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%dMB", row.SizeMB), msf(row.Physical), msf(row.WAVNet), msf(row.IPOP))
	}
	t.notes = append(t.notes,
		"paper shape: both VPNs reach 57-85% of physical; WAVNet above IPOP in every case")
	return t.String()
}

// Figure6 runs ttcp for 64/128/256 MB between HKU and SIAT on all three
// paths (quick mode scales sizes by 1/8).
func Figure6(o Options) (*Figure6Result, error) {
	o = o.withDefaults()
	w, err := scenario.Build(o.Seed, scenario.RealWANSpecs(), scenario.RealWANOverrides())
	if err != nil {
		return nil, err
	}
	if err := w.WAVNetUp("HKU1", "SIAT"); err != nil {
		return nil, err
	}
	if err := w.IPOPUp("HKU1", "SIAT"); err != nil {
		return nil, err
	}
	hku, siat := w.M("HKU1"), w.M("SIAT")
	pa, pb, err := w.PhysicalPair(hku, siat)
	if err != nil {
		return nil, err
	}
	if _, err := apps.StartSink(pb, 5001); err != nil {
		return nil, err
	}
	if _, err := apps.StartSink(siat.Dom0(), 5001); err != nil {
		return nil, err
	}
	if _, err := apps.StartSink(siat.IPOP.Dom0(), 5001); err != nil {
		return nil, err
	}

	res := &Figure6Result{}
	for _, sizeMB := range []int{64, 128, 256} {
		bytes := o.scaledBytes(int64(sizeMB)<<20/8, int64(sizeMB)<<20)
		row := Figure6Row{SizeMB: sizeMB}
		runs := []struct {
			name string
			run  func() (float64, error)
		}{
			{"physical", func() (float64, error) { return ttcpOnce(w, pa, netsim.Addr{IP: pb.IP(), Port: 5001}, bytes) }},
			{"wavnet", func() (float64, error) {
				return ttcpOnce(w, hku.Dom0(), netsim.Addr{IP: siat.VIP, Port: 5001}, bytes)
			}},
			{"ipop", func() (float64, error) {
				return ttcpOnce(w, hku.IPOP.Dom0(), netsim.Addr{IP: siat.IPOPVIP, Port: 5001}, bytes)
			}},
		}
		vals := make([]float64, 3)
		for i, r := range runs {
			v, err := r.run()
			if err != nil {
				return nil, fmt.Errorf("figure6 %s %dMB: %w", r.name, sizeMB, err)
			}
			vals[i] = v
		}
		row.Physical, row.WAVNet, row.IPOP = vals[0], vals[1], vals[2]
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func ttcpOnce(w *scenario.World, src *ipstack.Stack, dst netsim.Addr, bytes int64) (float64, error) {
	var rate float64
	var err error
	done := false
	w.Eng.Spawn("ttcp", func(p *sim.Proc) {
		var r *apps.TTCPResult
		r, err = apps.TTCP(p, src, dst, bytes, 16384)
		if r != nil {
			rate = r.KBps
		}
		done = true
	})
	w.Eng.RunFor(60 * time.Minute)
	if !done {
		return 0, fmt.Errorf("ttcp did not finish")
	}
	return rate, err
}

// Figure7Row is one shaped-bandwidth point.
type Figure7Row struct {
	WANMbps                float64
	Physical, WAVNet, IPOP float64 // measured Mbps
}

// Figure7Result reproduces the relative-bandwidth chart.
type Figure7Result struct{ Rows []Figure7Row }

// String renders measured and relative bandwidth.
func (r *Figure7Result) String() string {
	t := table{
		title:  "Figure 7 — bandwidth utilization under different WAN conditions (relative to physical)",
		header: []string{"WAN Mbps", "Physical", "WAVNet", "IPOP", "WAVNet rel", "IPOP rel"},
	}
	for _, row := range r.Rows {
		t.addRow(mbps(row.WANMbps), mbps(row.Physical), mbps(row.WAVNet), mbps(row.IPOP),
			fmt.Sprintf("%.2f", row.WAVNet/row.Physical), fmt.Sprintf("%.2f", row.IPOP/row.Physical))
	}
	t.notes = append(t.notes,
		"paper shape: WAVNet near native at every rate; IPOP adequate when congested but <20% of native at 100 Mbps")
	return t.String()
}

// Figure7 shapes the emulated WAN to 6.25..100 Mbps and measures netperf
// TCP_STREAM on each path.
func Figure7(o Options) (*Figure7Result, error) {
	o = o.withDefaults()
	duration := o.scaled(15*time.Second, 360*time.Second)
	res := &Figure7Result{}
	for _, wan := range []float64{6.25e6, 12.5e6, 25e6, 50e6, 100e6} {
		w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(2, wan), nil)
		if err != nil {
			return nil, err
		}
		if err := w.WAVNetUp(); err != nil {
			return nil, err
		}
		if err := w.IPOPUp(); err != nil {
			return nil, err
		}
		a, b := w.Machines[0], w.Machines[1]
		pa, pb, err := w.PhysicalPair(a, b)
		if err != nil {
			return nil, err
		}
		// The paper measures each path in a separate netperf run; running
		// the three flows concurrently would make them contend for the
		// same shaped WAN link and skew every number.
		row := Figure7Row{WANMbps: wan / 1e6}
		phys, err := apps.StartNetperf(pa, pb, 5001, duration, duration)
		if err != nil {
			return nil, err
		}
		w.Eng.RunFor(duration + 2*time.Minute)
		wav, err := apps.StartNetperf(a.Dom0(), b.Dom0(), 5002, duration, duration)
		if err != nil {
			return nil, err
		}
		w.Eng.RunFor(duration + 2*time.Minute)
		ipp, err := apps.StartNetperf(a.IPOP.Dom0(), b.IPOP.Dom0(), 5003, duration, duration)
		if err != nil {
			return nil, err
		}
		w.Eng.RunFor(duration + 2*time.Minute)
		if phys.Err != nil || wav.Err != nil || ipp.Err != nil {
			return nil, fmt.Errorf("figure7 %g: %v %v %v", wan, phys.Err, wav.Err, ipp.Err)
		}
		row.Physical, row.WAVNet, row.IPOP = phys.Mbps(), wav.Mbps(), ipp.Mbps()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Figure8Row is one cluster-size scalability point.
type Figure8Row struct {
	Nodes            int
	Physical, WAVNet float64 // mean Mbps from the probe node to the rest
	IPOP             float64
}

// Figure8Result reproduces the scalability chart.
type Figure8Result struct{ Rows []Figure8Row }

// String renders the series.
func (r *Figure8Result) String() string {
	t := table{
		title:  "Figure 8 — Netperf while scaling virtual cluster size (mean Mbps, probe node to peers)",
		header: []string{"Nodes", "Physical", "WAVNet", "IPOP"},
	}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%d", row.Nodes), mbps(row.Physical), mbps(row.WAVNet), mbps(row.IPOP))
	}
	t.notes = append(t.notes,
		"paper shape: WAVNet flat as the cluster grows (keepalives are negligible); IPOP degrades with size")
	return t.String()
}

// Figure8 builds clusters of 8..64 hosts with a full WAVNet mesh (5 s
// CONNECT_PULSE keepalives on every tunnel), then measures sequential
// netperf runs from one probe node to a sample of peers.
func Figure8(o Options) (*Figure8Result, error) {
	o = o.withDefaults()
	sizes := []int{8, 16, 24, 32, 48, 64}
	if o.Quick {
		sizes = []int{8, 16, 32, 64}
	}
	duration := o.scaled(3*time.Second, 10*time.Second)
	res := &Figure8Result{}
	for _, n := range sizes {
		w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(n, 100e6), nil)
		if err != nil {
			return nil, err
		}
		if err := w.WAVNetUp(); err != nil {
			return nil, err
		}
		if err := w.IPOPUp(); err != nil {
			return nil, err
		}
		probe := w.Machines[0]
		// Sample peers to keep runtime bounded: every peer for small
		// clusters, eight spread peers for big ones.
		peers := w.Machines[1:]
		if len(peers) > 8 {
			step := len(peers) / 8
			var sampled []*scenario.Machine
			for i := 0; i < len(peers); i += step {
				sampled = append(sampled, peers[i])
			}
			peers = sampled[:8]
		}
		var physSum, wavSum, ipopSum float64
		for pi, peer := range peers {
			pa, pb, err := w.PhysicalPair(probe, peer)
			if err != nil {
				return nil, err
			}
			port := uint16(6000 + pi*4)
			phys, err := apps.StartNetperf(pa, pb, port, duration, duration)
			if err != nil {
				return nil, err
			}
			w.Eng.RunFor(duration + 20*time.Second)
			wav, err := apps.StartNetperf(probe.Dom0(), peer.Dom0(), port+1, duration, duration)
			if err != nil {
				return nil, err
			}
			w.Eng.RunFor(duration + 20*time.Second)
			ipp, err := apps.StartNetperf(probe.IPOP.Dom0(), peer.IPOP.Dom0(), port+2, duration, duration)
			if err != nil {
				return nil, err
			}
			w.Eng.RunFor(duration + 20*time.Second)
			if phys.Err != nil || wav.Err != nil || ipp.Err != nil {
				return nil, fmt.Errorf("figure8 n=%d peer %s: %v %v %v", n, peer.Key, phys.Err, wav.Err, ipp.Err)
			}
			physSum += phys.Mbps()
			wavSum += wav.Mbps()
			ipopSum += ipp.Mbps()
		}
		k := float64(len(peers))
		res.Rows = append(res.Rows, Figure8Row{
			Nodes: n, Physical: physSum / k, WAVNet: wavSum / k, IPOP: ipopSum / k,
		})
	}
	return res, nil
}
