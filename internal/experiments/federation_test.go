package experiments

import "testing"

// TestFederationSmallScale runs the federation experiment's smallest
// cross-broker point and checks the acceptance properties: cross-broker
// connects succeed at least as often as same-broker ones, lookups all
// resolve, and the unnamed witness broker holds zero tenant records.
func TestFederationSmallScale(t *testing.T) {
	row, err := FederationOnce(quick(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stray != 0 {
		t.Fatalf("witness broker holds %d tenant records, want 0", row.Stray)
	}
	if row.LookupN == 0 || row.LookupOK != row.LookupN {
		t.Fatalf("lookups %d/%d", row.LookupOK, row.LookupN)
	}
	if row.SameN == 0 || row.CrossN == 0 {
		t.Fatalf("sweep degenerate: same %d, cross %d pairs", row.SameN, row.CrossN)
	}
	sameRate := float64(row.SameOK) / float64(row.SameN)
	crossRate := float64(row.CrossOK) / float64(row.CrossN)
	if crossRate < sameRate {
		t.Fatalf("cross-broker connect success %.2f below same-broker %.2f", crossRate, sameRate)
	}
	if row.CrossOK != row.CrossN {
		t.Fatalf("cross-broker connects failed: %d/%d", row.CrossOK, row.CrossN)
	}
	if row.Forwards == 0 {
		t.Fatal("no forwarded connects counted; the cross pairs never crossed brokers")
	}
	if row.Replications == 0 {
		t.Fatal("no replications counted")
	}
	// Immediate replication: the replica lands within a broker-broker
	// round trip, far under a second.
	if row.Visibility < 0 || row.Visibility > 1e9 {
		t.Fatalf("visibility = %v, want ~0 for immediate replication", row.Visibility)
	}
}

// TestFederationLagVisible: batching replication must show up as a
// larger cross-broker visibility window.
func TestFederationLagVisible(t *testing.T) {
	fast, err := FederationOnce(quick(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := FederationOnce(quick(), 2, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Visibility <= fast.Visibility {
		t.Fatalf("lagged visibility %v not above immediate %v", slow.Visibility, fast.Visibility)
	}
	if slow.Stray != 0 {
		t.Fatalf("stray records under lag: %d", slow.Stray)
	}
}
