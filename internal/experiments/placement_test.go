package experiments

import "testing"

// TestPlacementSmallScale runs one wide-spread placement point and
// checks the acceptance properties: the scheduler lands the unpinned VM
// in the tight cluster, the pin-away migration completes, post-migration
// connect success is no worse than the baseline, and the unnamed
// witness broker held zero tenant records throughout.
func TestPlacementSmallScale(t *testing.T) {
	row, err := PlacementOnce(quick(), 2, 32, "wide")
	if err != nil {
		t.Fatal(err)
	}
	if !row.InTight {
		t.Fatalf("scheduler chose %q outside the tight cluster", row.Chosen)
	}
	if row.Migration <= 0 || row.Rounds < 2 {
		t.Fatalf("migration %v over %d rounds, want a real pre-copy", row.Migration, row.Rounds)
	}
	if row.BaseN == 0 || row.PostN == 0 {
		t.Fatalf("ping sweep degenerate: baseline %d, post %d", row.BaseN, row.PostN)
	}
	if row.PostOK < row.BaseOK {
		t.Fatalf("post-migration connect success %d/%d below baseline %d/%d",
			row.PostOK, row.PostN, row.BaseOK, row.BaseN)
	}
	if row.Stray != 0 {
		t.Fatalf("witness broker holds %d tenant records, want 0", row.Stray)
	}
}

// TestPlacementTightSpreadStillConverges runs the degenerate all-near
// spread: every host qualifies, the scheduler must still pick one and
// the migration must still converge.
func TestPlacementTightSpreadStillConverges(t *testing.T) {
	row, err := PlacementOnce(quick(), 2, 32, "tight")
	if err != nil {
		t.Fatal(err)
	}
	if row.Chosen == "" || row.Migration <= 0 {
		t.Fatalf("row %+v: want a choice and a migration", row)
	}
	if row.PostOK < row.BaseOK {
		t.Fatalf("post-migration connect success %d/%d below baseline %d/%d",
			row.PostOK, row.PostN, row.BaseOK, row.BaseN)
	}
}

// TestMigrationSweepPoints runs one healthy and one faulted point of
// the migration micro-sweep: the healthy one pre-copies over multiple
// rounds and the VM answers at the destination; the partitioned one
// aborts cleanly (counted) and the VM answers at the source.
func TestMigrationSweepPoints(t *testing.T) {
	ok, err := MigrationOnce(quick(), 32, 2000, "")
	if err != nil {
		t.Fatal(err)
	}
	if ok.Outcome != "ok" || ok.Rounds < 2 || ok.Aborts != 0 {
		t.Fatalf("healthy point: %+v", ok)
	}
	if !ok.PingAfter {
		t.Fatal("healthy point: VM unreachable after migration")
	}
	ab, err := MigrationOnce(quick(), 64, 2000, "partition")
	if err != nil {
		t.Fatal(err)
	}
	if ab.Outcome != "aborted" || ab.Aborts != 1 {
		t.Fatalf("partition point: %+v", ab)
	}
	if !ab.PingAfter {
		t.Fatal("partition point: VM unreachable at the source after the abort")
	}
}
