package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/nat"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// PlacementRow is one point of the placement sweep: one tenant network
// spread over a tight and a distant cluster and a broker federation,
// with one scheduler-placed VM that is then pinned away and
// live-migrated. It reports where the scheduler put the VM, how long
// the migration took, and connect success to the VM before vs after.
type PlacementRow struct {
	Brokers int
	MemMB   int
	Spread  string // "tight": all sites near; "wide": half the sites 60 ms out

	// Scheduler decision: the chosen host and whether it landed in the
	// near cluster (for "tight" spreads every host qualifies).
	Chosen  string
	InTight bool

	// Migration of the VM to the far end of the network.
	Migration sim.Duration
	Downtime  sim.Duration
	Rounds    uint64

	// Ping success from every co-member to the VM, before the migration
	// (baseline) and after it (the acceptance comparison).
	BaseOK, BaseN int
	PostOK, PostN int

	// Stray is the tenant's record count on the unnamed witness broker
	// (must stay 0 through placement and migration).
	Stray int
}

// PlacementResult reports the sweep.
type PlacementResult struct {
	Rows []PlacementRow
}

// String renders the table.
func (r *PlacementResult) String() string {
	t := table{
		title: "VM placement — scheduler locality, migration time and connect success vs spread, memory and broker count (beyond the paper)",
		header: []string{"Brokers", "Mem (MB)", "Spread", "Chosen", "In tight cluster",
			"Migration (s)", "Downtime (s)", "Rounds", "Baseline conn", "Post-migration conn", "Stray"},
	}
	frac := func(ok, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d", ok, n)
	}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Brokers),
			fmt.Sprintf("%d", row.MemMB),
			row.Spread,
			row.Chosen,
			fmt.Sprintf("%v", row.InTight),
			secs(row.Migration),
			fmt.Sprintf("%.2f", row.Downtime.Seconds()),
			fmt.Sprintf("%d", row.Rounds),
			frac(row.BaseOK, row.BaseN),
			frac(row.PostOK, row.PostN),
			fmt.Sprintf("%d", row.Stray),
		)
	}
	t.notes = append(t.notes,
		"chosen: the scheduler's host for an unpinned VMSpec, scored by locality core + load",
		"migration: the VM is then pinned to the network's far end and converged by live migration",
		"conn: members pinging the VM on the tenant segment, before vs after the migration",
		"stray: tenant records on the unnamed witness broker (must be 0)")
	return t.String()
}

// Placement sweeps locality spread and memory size at two broker
// counts; paper mode adds a larger federation and image.
func Placement(o Options) (*PlacementResult, error) {
	o = o.withDefaults()
	type point struct {
		brokers int
		memMB   int
		spread  string
	}
	points := []point{{2, 32, "tight"}, {2, 32, "wide"}, {3, 64, "wide"}}
	if !o.Quick {
		points = append(points, point{4, 128, "wide"})
	}
	res := &PlacementResult{}
	for i, pt := range points {
		row, err := PlacementOnce(Options{Seed: o.Seed + int64(i), Quick: o.Quick},
			pt.brokers, pt.memMB, pt.spread)
		if err != nil {
			return nil, fmt.Errorf("placement %d brokers, %d MB, %s: %w",
				pt.brokers, pt.memMB, pt.spread, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// PlacementOnce measures one (broker count, memory, spread) point.
func PlacementOnce(o Options, brokers, memMB int, spread string) (*PlacementRow, error) {
	o = o.withDefaults()
	tight := []string{"n0", "n1", "n2"}
	far := []string{"f0", "f1", "f2"}
	farRTT := time.Millisecond
	if spread == "wide" {
		farRTT = 60 * time.Millisecond
	}
	var specs []scenario.Spec
	for _, k := range tight {
		specs = append(specs, scenario.Spec{Key: k, RTTToHub: time.Millisecond, AccessBps: 100e6, NAT: nat.FullCone})
	}
	for _, k := range far {
		specs = append(specs, scenario.Spec{Key: k, RTTToHub: farRTT, AccessBps: 100e6, NAT: nat.RestrictedCone})
	}
	w, err := scenario.Build(o.Seed, specs, nil)
	if err != nil {
		return nil, err
	}
	names := make([]string, brokers)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		if _, err := w.AddBroker(names[i], rendezvous.Config{}); err != nil {
			return nil, err
		}
	}
	witness, err := w.AddBroker("witness", rendezvous.Config{})
	if err != nil {
		return nil, err
	}
	members := append(append([]string(nil), tight...), far...)
	for i, key := range members {
		if err := w.SetHome(key, names[i%brokers]); err != nil {
			return nil, err
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "pl",
		Networks: []vpc.NetworkSpec{{
			Name: "pnet", CIDR: "10.88.0.0/24", StaticAddressing: true,
			Members: members, Brokers: names,
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	if err := w.ReportNetRTTs("pnet"); err != nil {
		return nil, err
	}
	row := &PlacementRow{Brokers: brokers, MemMB: memMB, Spread: spread}

	// Scheduler placement: an unpinned VM.
	spec.VMs = []vpc.VMSpec{{Name: "vm", Network: "pnet", IP: "10.88.0.200", MemoryMB: memMB}}
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	chosen, ok := w.VMHost("vm")
	if !ok {
		return nil, fmt.Errorf("placement: VM never placed")
	}
	row.Chosen = chosen
	for _, k := range tight {
		if chosen == k {
			row.InTight = true
		}
	}
	v, _ := w.ResolveVM("vm")

	// pingSweep pings the VM from every other member on the tenant
	// segment.
	net, _ := w.VPC().Get("pnet")
	pingSweep := func(name string) (ok, n int) {
		done := false
		w.Eng.Spawn(name, func(p *sim.Proc) {
			defer func() { done = true }()
			for _, m := range net.Members() {
				if m.Host.Name() == v.Host().Name() {
					continue
				}
				n++
				if _, err := m.Stack.Ping(p, v.IP(), 56, 5*time.Second); err == nil {
					ok++
				}
			}
		})
		for !done {
			w.Eng.RunFor(5 * time.Second)
		}
		return ok, n
	}
	row.BaseOK, row.BaseN = pingSweep("baseline")

	// Pin the VM to the far end of the network and converge by live
	// migration.
	target := far[len(far)-1]
	if target == chosen {
		target = far[0]
	}
	spec.VMs[0].Host = target
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	if len(v.Migrations) == 0 {
		return nil, fmt.Errorf("placement: no migration was recorded")
	}
	mrep := v.Migrations[len(v.Migrations)-1]
	row.Migration = mrep.Total()
	row.Downtime = mrep.Downtime
	row.Rounds = v.Counters().Get("rounds")

	row.PostOK, row.PostN = pingSweep("post")
	row.Stray = witness.RecordsFor("pnet")
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
