package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"wavnet/internal/grouping"
	"wavnet/internal/nat"
	"wavnet/internal/planetlab"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
)

// Figure12Result summarizes the synthetic PlanetLab latency universe.
type Figure12Result struct {
	Hosts      int
	Pairs      int
	Under1s    int
	Over1s     int
	MaxRTT     sim.Duration
	Percentile map[int]sim.Duration // 10,50,90,99 → RTT
}

// String renders the distribution the way Figure 12 plots it.
func (r *Figure12Result) String() string {
	t := table{
		title:  "Figure 12 — pairwise network latency across the PlanetLab-like universe",
		header: []string{"Metric", "Value"},
	}
	t.addRow("hosts", fmt.Sprintf("%d", r.Hosts))
	t.addRow("pairs", fmt.Sprintf("%d", r.Pairs))
	t.addRow("pairs < 1 s", fmt.Sprintf("%d (%.1f%%)", r.Under1s, 100*float64(r.Under1s)/float64(r.Pairs)))
	t.addRow("pairs ≥ 1 s", fmt.Sprintf("%d", r.Over1s))
	for _, p := range []int{10, 50, 90, 99} {
		t.addRow(fmt.Sprintf("p%d", p), ms(r.Percentile[p])+" ms")
	}
	t.addRow("max", ms(r.MaxRTT)+" ms")
	t.notes = append(t.notes,
		"paper shape: ~80000 observed pairs, bulk below 1 s with a long overloaded-node tail up to ~10 s")
	return t.String()
}

// Figure12 generates the 400-host dataset and reports its distribution.
func Figure12(o Options) (*Figure12Result, error) {
	o = o.withDefaults()
	d := planetlab.Generate(o.Seed, planetlab.Config{Hosts: 400})
	res := &Figure12Result{Hosts: d.N(), Percentile: make(map[int]sim.Duration)}
	var all []sim.Duration
	d.Pairs(func(i, j int, rtt sim.Duration) {
		all = append(all, rtt)
		res.Pairs++
		if rtt < time.Second {
			res.Under1s++
		} else {
			res.Over1s++
		}
		if rtt > res.MaxRTT {
			res.MaxRTT = rtt
		}
	})
	// Percentiles over the sorted pair latencies.
	sortDurations(all)
	for _, p := range []int{10, 50, 90, 99} {
		res.Percentile[p] = all[len(all)*p/100]
	}
	return res, nil
}

func sortDurations(ds []sim.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Figure13Row is one cluster-size point of the grouping-quality curve.
type Figure13Row struct {
	K        int
	Avg, Max sim.Duration
}

// Figure13Result holds the grouping-quality curve.
type Figure13Result struct{ Rows []Figure13Row }

// String renders the curve.
func (r *Figure13Result) String() string {
	t := table{
		title:  "Figure 13 — average and maximum latency within locality-selected virtual clusters",
		header: []string{"Hosts", "Avg (ms)", "Max (ms)"},
	}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%d", row.K), ms(row.Avg), ms(row.Max))
	}
	t.notes = append(t.notes,
		"paper: k=8→1.3/1.9 ms, 16→15.4/25.4, 32→26.1/44.8, 64→54.1/67.3")
	return t.String()
}

// Figure13 runs the locality-sensitive grouping for k = 2..75 on the
// 400-host dataset.
func Figure13(o Options) (*Figure13Result, error) {
	o = o.withDefaults()
	d := planetlab.Generate(o.Seed, planetlab.Config{Hosts: 400})
	ks := []int{2, 4, 8, 12, 16, 24, 32, 48, 64, 75}
	if o.Quick {
		ks = []int{2, 8, 16, 32, 64}
	}
	res := &Figure13Result{}
	for _, k := range ks {
		g, err := grouping.LocalitySensitive(d.RTT, k)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure13Row{
			K:   k,
			Avg: grouping.MeanLatency(d.RTT, g),
			Max: grouping.MaxLatency(d.RTT, g),
		})
	}
	return res, nil
}

// ---- shared helpers for Figure 14 ----

// planetlabPool derives a pool of scenario specs whose pairwise RTTs are
// sampled from the PlanetLab dataset: the pool is pre-filtered with the
// locality strategy (as the paper pre-selects 64 reasonable hosts from
// the 400) so that even "random" clusters are connectable.
func planetlabPool(seed int64, pool int) ([]scenario.Spec, map[[2]string]sim.Duration, [][]sim.Duration) {
	d := planetlab.Generate(seed, planetlab.Config{Hosts: 400})
	// Pre-select connectable candidates the way the paper pre-filters 64
	// of 400: drop overloaded nodes but keep the geographic spread, so
	// random clusters still straddle continents while the
	// locality-sensitive strategy can find a regional subcluster.
	var healthy []int
	for i, h := range d.Hosts {
		if !h.Overloaded {
			healthy = append(healthy, i)
		}
	}
	pre := make([]int, 0, pool)
	step := len(healthy) / pool
	if step < 1 {
		step = 1
	}
	for i := 0; len(pre) < pool && i < len(healthy); i += step {
		pre = append(pre, healthy[i])
	}
	specs := make([]scenario.Spec, pool)
	overrides := make(map[[2]string]sim.Duration)
	rtts := make([][]sim.Duration, pool)
	for i := range specs {
		specs[i] = scenario.Spec{
			Key:       fmt.Sprintf("pl%03d", pre[i]),
			RTTToHub:  d.RTT[pre[i]][pre[0]]/2 + time.Millisecond,
			AccessBps: 100e6,
			NAT:       nat.FullCone,
		}
		rtts[i] = make([]sim.Duration, pool)
	}
	for i := 0; i < pool; i++ {
		for j := 0; j < pool; j++ {
			if i == j {
				continue
			}
			rtts[i][j] = d.RTT[pre[i]][pre[j]]
			if i < j {
				overrides[[2]string{specs[i].Key, specs[j].Key}] = d.RTT[pre[i]][pre[j]]
			}
		}
	}
	return specs, overrides, rtts
}

func localityGroup(rtts [][]sim.Duration, k int) ([]int, error) {
	return grouping.LocalitySensitive(rtts, k)
}

func randomGroup(rtts [][]sim.Duration, k int, seed int64) ([]int, error) {
	return grouping.Random(rtts, k, rand.New(rand.NewSource(seed)))
}
