// The pinned macro-benchmark trajectory: five end-to-end benchmarks —
// tagged forwarding, flood suppression, quota token buckets, rendezvous
// lookup latency/throughput, and live migration — whose results are
// emitted as BENCH_<pr>.json rows. The simulation is bit-for-bit
// deterministic per seed, so a committed trajectory point doubles as
// the CI regression baseline: CompareBench fails the build when a
// directed metric moves more than 10% the wrong way against the
// previous point.

package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
	"wavnet/internal/vpc"
)

// BenchRow is one (benchmark, metric) measurement of a trajectory point.
type BenchRow struct {
	PR     int     `json:"pr"`
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// BenchDirections declares, per "bench/metric", which way is better:
// +1 means higher is better (throughput), -1 means lower is better
// (latency, downtime, error). Metrics absent here are informational and
// never fail the trajectory comparison.
var BenchDirections = map[string]int{
	"forward_tagged/throughput_mbps": +1,
	"flood_suppress/suppressed":      +1,
	"quota/quota_error_pct":          -1,
	"quota/open_mbps":                +1,
	"rendezvous_ops/lookup_p50_ms":   -1,
	"rendezvous_ops/lookup_p95_ms":   -1,
	"rendezvous_ops/lookups_per_sec": +1,
	"migration/migration_s":          -1,
	"migration/downtime_ms":          -1,
	"migration/migrate_mbps":         +1,
	"service_failover/failover_ms":   -1,
	"service_failover/success_ratio": +1,
}

// CompareBench diffs a trajectory point against a baseline and returns
// one message per regression: a directed metric that moved more than
// 10% the wrong way. Metrics without a declared direction, and metrics
// present in only one of the two points, are skipped.
func CompareBench(cur, base []BenchRow) []string {
	curBy := make(map[string]BenchRow, len(cur))
	for _, r := range cur {
		curBy[r.Bench+"/"+r.Metric] = r
	}
	var regressions []string
	for _, b := range base {
		key := b.Bench + "/" + b.Metric
		dir, directed := BenchDirections[key]
		if !directed || b.Value == 0 {
			continue
		}
		c, ok := curBy[key]
		if !ok {
			continue
		}
		change := (c.Value - b.Value) / b.Value
		if float64(dir)*change < -0.10 {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g -> %.4g %s (%+.1f%%)", key, b.Value, c.Value, b.Unit, 100*change))
		}
	}
	return regressions
}

// MarshalBench renders trajectory rows as the committed BENCH_<pr>.json
// (one indented JSON array, trailing newline).
func MarshalBench(rows []BenchRow) ([]byte, error) {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// BenchResult holds one trajectory point.
type BenchResult struct{ Rows []BenchRow }

// String renders the trajectory point as a table.
func (r *BenchResult) String() string {
	t := table{
		title:  "Trajectory point — pinned macro-benchmarks (BENCH_<pr>.json)",
		header: []string{"Bench", "Metric", "Value", "Unit"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Bench, row.Metric, fmt.Sprintf("%.4g", row.Value), row.Unit)
	}
	t.notes = append(t.notes,
		"deterministic per seed: the committed point is also the CI regression baseline",
		"CompareBench fails CI when a directed metric moves >10% the wrong way")
	return t.String()
}

// Trajectory runs the pinned macro-benchmark suite and returns one row
// per metric, stamped with the trajectory point's PR number.
func Trajectory(o Options, pr int) (*BenchResult, error) {
	o = o.withDefaults()
	res := &BenchResult{}
	add := func(bench, metric string, value float64, unit string) {
		res.Rows = append(res.Rows, BenchRow{PR: pr, Bench: bench, Metric: metric, Value: value, Unit: unit})
	}
	steps := []struct {
		name string
		run  func(Options, func(string, string, float64, string)) error
	}{
		{"forward_tagged", benchForwardTagged},
		{"flood_suppress", benchFloodSuppress},
		{"quota", benchQuota},
		{"rendezvous_ops", benchRendezvousOps},
		{"migration", benchMigration},
		{"service_failover", benchServiceFailover},
	}
	for _, s := range steps {
		if err := s.run(o, add); err != nil {
			return nil, fmt.Errorf("trajectory %s: %w", s.name, err)
		}
	}
	return res, nil
}

// benchForwardTagged measures bulk TCP throughput across one tenant's
// VNI-tagged tunnel — the core data path every other benchmark rides —
// plus the declarative setup time to admit both members.
func benchForwardTagged(o Options, add func(string, string, float64, string)) error {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		return err
	}
	setupStart := w.Eng.Now()
	spec := vpc.TenantSpec{
		Tenant: "bench",
		Networks: []vpc.NetworkSpec{{
			Name: "fwd", CIDR: "10.60.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		return err
	}
	setup := w.Eng.Now().Sub(setupStart)
	n, _ := w.VPC().Get("fwd")
	src, dst := n.Members()[0], n.Members()[1]
	if _, err := apps.StartSink(dst.Stack, 5001); err != nil {
		return err
	}
	bytes := o.scaledBytes(2<<20, 32<<20)
	var rate float64
	var terr error
	w.Eng.Spawn("ttcp", func(p *sim.Proc) {
		r, err := apps.TTCP(p, src.Stack, netsim.Addr{IP: dst.IP, Port: 5001}, bytes, 16384)
		if err != nil {
			terr = err
			return
		}
		rate = metrics.Rate(r.Bytes, r.Elapsed)
	})
	w.Eng.RunFor(4 * time.Minute)
	if terr != nil {
		return terr
	}
	if rate == 0 {
		return fmt.Errorf("transfer never finished")
	}
	add("forward_tagged", "throughput_mbps", rate, "Mbps")
	add("forward_tagged", "setup_s", setup.Seconds(), "s")
	return nil
}

// benchFloodSuppress counts VNI-aware flood suppression across a forced
// cross-tenant tunnel: tagged broadcasts for an unowned address must
// die at the sender instead of burning WAN bandwidth.
func benchFloodSuppress(o Options, add func(string, string, float64, string)) error {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		return err
	}
	// Force a shared-fabric tunnel between the two tenants' anchors
	// before the split, so there is a cross-tenant path to suppress on.
	if err := w.WAVNetUp("pc00", "pc02"); err != nil {
		return err
	}
	tenants := []struct {
		name string
		keys []string
	}{
		{"t0", []string{"pc00", "pc01"}},
		{"t1", []string{"pc02", "pc03"}},
	}
	for _, tnt := range tenants {
		spec := vpc.TenantSpec{
			Tenant: tnt.name,
			Networks: []vpc.NetworkSpec{{
				Name: "net-" + tnt.name, CIDR: "10.0.0.0/24", StaticAddressing: true,
				Members: tnt.keys,
			}},
		}
		if _, err := w.ApplySync(spec); err != nil {
			return err
		}
	}
	n, _ := w.VPC().Get("net-t0")
	attacker := n.Members()[0]
	suppressedBefore := attacker.Host.VPCCounters().Get("suppressed_floods")
	floodedBefore := attacker.Host.VPCCounters().Get("flooded_frames")
	w.Eng.Spawn("flood", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			// Inside the CIDR but owned by no one: every attempt floods
			// ARP through all tunnels, including the forced one.
			attacker.Stack.Ping(p, n.CIDR.Base+200, 56, time.Second)
		}
	})
	w.Eng.RunFor(30 * time.Second)
	suppressed := attacker.Host.VPCCounters().Get("suppressed_floods") - suppressedBefore
	flooded := attacker.Host.VPCCounters().Get("flooded_frames") - floodedBefore
	if suppressed == 0 {
		return fmt.Errorf("no floods were suppressed toward the forced tunnel")
	}
	add("flood_suppress", "suppressed", float64(suppressed), "frames")
	add("flood_suppress", "suppression_ratio",
		float64(suppressed)/float64(suppressed+flooded), "ratio")
	return nil
}

// benchQuota measures the token-bucket policer's accuracy: a metered
// tenant's transfer must land on its quota while an unmetered tenant
// runs open on the same fabric.
func benchQuota(o Options, add func(string, string, float64, string)) error {
	const quotaBps = 4e6
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		return err
	}
	limited := vpc.TenantSpec{
		Tenant: "limited",
		Networks: []vpc.NetworkSpec{{
			Name: "lim", CIDR: "10.40.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
		Quota: vpc.QuotaSpec{RateBps: quotaBps},
	}
	open := vpc.TenantSpec{
		Tenant: "open",
		Networks: []vpc.NetworkSpec{{
			Name: "opn", CIDR: "10.50.0.0/24", StaticAddressing: true,
			Members: []string{"pc02", "pc03"},
		}},
	}
	if _, err := w.ApplySync(limited); err != nil {
		return err
	}
	if _, err := w.ApplySync(open); err != nil {
		return err
	}
	bytes := o.scaledBytes(1<<20, 4<<20)
	var limMbps, opnMbps float64
	var limErr, opnErr error
	run := func(netName string, out *float64, errOut *error) {
		n, _ := w.VPC().Get(netName)
		src, dst := n.Members()[0], n.Members()[1]
		if _, err := apps.StartSink(dst.Stack, 5001); err != nil {
			*errOut = err
			return
		}
		w.Eng.Spawn("ttcp-"+netName, func(p *sim.Proc) {
			r, err := apps.TTCP(p, src.Stack, netsim.Addr{IP: dst.IP, Port: 5001}, bytes, 16384)
			if err != nil {
				*errOut = err
				return
			}
			*out = metrics.Rate(r.Bytes, r.Elapsed)
		})
	}
	run("lim", &limMbps, &limErr)
	run("opn", &opnMbps, &opnErr)
	// Budget for the metered transfer: the whole image at the quota
	// rate, padded for TCP recovery after policer drops.
	budget := 4*time.Minute + time.Duration(float64(bytes*8)/quotaBps*4)*time.Second
	w.Eng.RunFor(budget)
	if limErr != nil {
		return fmt.Errorf("limited transfer: %w", limErr)
	}
	if opnErr != nil {
		return fmt.Errorf("open transfer: %w", opnErr)
	}
	if limMbps == 0 || opnMbps == 0 {
		return fmt.Errorf("a transfer never finished (limited %.2f, open %.2f Mbps)", limMbps, opnMbps)
	}
	quotaMbps := quotaBps / 1e6
	errPct := 100 * (limMbps - quotaMbps) / quotaMbps
	if errPct < 0 {
		errPct = -errPct
	}
	add("quota", "limited_mbps", limMbps, "Mbps")
	add("quota", "open_mbps", opnMbps, "Mbps")
	add("quota", "quota_error_pct", errPct, "%")
	return nil
}

// benchRendezvousOps drives a federated two-broker control plane with a
// lookup storm and reports the latency quantiles — straight out of the
// obs histogram — plus sustained lookup throughput.
func benchRendezvousOps(o Options, add func(string, string, float64, string)) error {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(6, 100e6), nil)
	if err != nil {
		return err
	}
	if _, err := w.AddBroker("b1", rendezvous.Config{}); err != nil {
		return err
	}
	keys := []string{"pc00", "pc01", "pc02", "pc03", "pc04", "pc05"}
	for _, key := range keys[3:] {
		if err := w.SetHome(key, "b1"); err != nil {
			return err
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "bench",
		Networks: []vpc.NetworkSpec{{
			Name: "rdz", CIDR: "10.66.0.0/24", StaticAddressing: true,
			Members: keys,
			Brokers: []string{scenario.PrimaryBroker, "b1"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		return err
	}
	// Let replication flush so cross-broker lookups resolve locally.
	w.Eng.RunFor(15 * time.Second)

	hist := obs.NewHistogram()
	rounds := 5
	if !o.Quick {
		rounds = 20
	}
	lookups := 0
	done := 0
	var lookErr error
	stormStart := w.Eng.Now()
	for i, key := range keys {
		i, key := i, key
		// Always resolve a host homed on the other broker.
		target := keys[(i+3)%len(keys)]
		h := w.M(key).WAV
		w.Eng.Spawn("lookup-"+key, func(p *sim.Proc) {
			defer func() { done++ }()
			for r := 0; r < rounds; r++ {
				t0 := p.Now()
				recs, err := h.Lookup(p, target)
				if err != nil {
					lookErr = err
					return
				}
				if len(recs) == 0 {
					lookErr = fmt.Errorf("%s resolved %s to nothing", key, target)
					return
				}
				hist.Observe(p.Now().Sub(t0).Seconds() * 1e3)
				lookups++
			}
		})
	}
	for spent := 0; done < len(keys) && spent < 120; spent++ {
		w.Eng.RunFor(time.Second)
	}
	if lookErr != nil {
		return lookErr
	}
	if done < len(keys) {
		return fmt.Errorf("lookup storm never finished (%d/%d workers)", done, len(keys))
	}
	elapsed := w.Eng.Now().Sub(stormStart).Seconds()
	if elapsed <= 0 || hist.Count() == 0 {
		return fmt.Errorf("lookup storm measured nothing")
	}
	add("rendezvous_ops", "lookup_p50_ms", hist.P50(), "ms")
	add("rendezvous_ops", "lookup_p95_ms", hist.P95(), "ms")
	add("rendezvous_ops", "lookups_per_sec", float64(lookups)/elapsed, "ops/s")
	return nil
}

// benchMigration live-migrates a VM between two machines and reports
// total time, downtime, and effective image transfer rate.
func benchMigration(o Options, add func(string, string, float64, string)) error {
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		return err
	}
	if err := w.WAVNetUp(); err != nil {
		return err
	}
	memMB := 32
	if !o.Quick {
		memMB = 256
	}
	v, err := w.AddVM("pc00", "vm-bench", netsim.MustParseIP("10.77.0.50"), vm.Config{
		MemoryMB:  memMB,
		DirtyRate: 2000,
	})
	if err != nil {
		return err
	}
	var mrep *vm.MigrationReport
	var migErr error
	done := false
	w.Eng.Spawn("migrate", func(p *sim.Proc) {
		mrep, migErr = v.Migrate(p, w.M("pc01").WAV)
		done = true
	})
	for spent := 0; !done && spent < 20*60; spent += 5 {
		w.Eng.RunFor(5 * time.Second)
	}
	if !done {
		return fmt.Errorf("migration never returned")
	}
	if migErr != nil {
		return migErr
	}
	add("migration", "migration_s", mrep.Total().Seconds(), "s")
	add("migration", "downtime_ms", mrep.Downtime.Seconds()*1e3, "ms")
	add("migration", "migrate_mbps", metrics.Rate(mrep.BytesSent, mrep.Total()), "Mbps")
	return nil
}

// benchServiceFailover isolates the active backend of a three-backend
// failover-ordered VIP and reports the client-observed failover time
// and the episode's request success ratio.
func benchServiceFailover(o Options, add func(string, string, float64, string)) error {
	row, err := ServiceOnce(o, 3, 3, 2)
	if err != nil {
		return err
	}
	if row.Stray != 0 {
		return fmt.Errorf("witness broker holds %d stray VIP records", row.Stray)
	}
	add("service_failover", "failover_ms", row.Failover.Seconds()*1e3, "ms")
	add("service_failover", "success_ratio", row.SuccessRatio(), "ratio")
	add("service_failover", "budget_ms", row.Budget.Seconds()*1e3, "ms")
	return nil
}
