package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/metrics"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// FederationRow is one point of the federated-rendezvous sweep: one
// tenant network spread over a broker count, with the brokers'
// replication batched at a configurable interval (the lag knob).
type FederationRow struct {
	Brokers int
	ReplLag sim.Duration // broker replication interval (0 = immediate)
	Setup   sim.Duration // apply: joins, scoped mesh, federation config

	// Name lookups from one host to every co-tenant; cross-broker names
	// answer from the local replica store (no extra hop).
	LookupOK, LookupN int
	LookupRTT         sim.Duration // mean

	// Fresh connects between co-tenants, split by whether both ends
	// home on the same broker or the punch was forwarded between
	// brokers.
	SameOK, SameN   int
	SameLat         sim.Duration // mean, successful connects
	CrossOK, CrossN int
	CrossLat        sim.Duration

	// Visibility is the replication lag made visible: the time between
	// a fresh join landing on its home broker and the replica appearing
	// on another broker of the set (0 when only one broker).
	Visibility sim.Duration

	// Broker-side counters, from the uniform metrics export.
	Replications uint64 // replications_out, summed over the set
	Forwards     uint64 // fwd_connects_out during the connect phase
	Stray        int    // tenant records held by the unnamed witness broker
}

// FederationResult reports the sweep.
type FederationResult struct {
	Rows []FederationRow
}

// String renders the table.
func (r *FederationResult) String() string {
	t := table{
		title: "Federated rendezvous — cross-broker lookup and connect vs broker count and replication lag (beyond the paper)",
		header: []string{"Brokers", "Repl lag (s)", "Setup (s)", "Lookups", "Lookup (ms)",
			"Same-broker conn", "Same (ms)", "Cross-broker conn", "Cross (ms)",
			"Visibility (ms)", "Replications", "Forwards", "Stray"},
	}
	frac := func(ok, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d", ok, n)
	}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Brokers),
			fmt.Sprintf("%.1f", row.ReplLag.Seconds()),
			secs(row.Setup),
			frac(row.LookupOK, row.LookupN),
			ms(row.LookupRTT),
			frac(row.SameOK, row.SameN),
			ms(row.SameLat),
			frac(row.CrossOK, row.CrossN),
			ms(row.CrossLat),
			ms(row.Visibility),
			fmt.Sprintf("%d", row.Replications),
			fmt.Sprintf("%d", row.Forwards),
			fmt.Sprintf("%d", row.Stray),
		)
	}
	t.notes = append(t.notes,
		"stray counts the tenant's records on a federated broker its spec does not name (must be 0)",
		"cross-broker connects forward the punch orchestration to the target's home broker",
		"visibility: fresh join on one broker -> replica present on another (tracks the replication lag)")
	return t.String()
}

// Federation sweeps broker count (replication immediate) and then
// replication lag at a fixed broker count.
func Federation(o Options) (*FederationResult, error) {
	o = o.withDefaults()
	type point struct {
		brokers int
		lag     sim.Duration
	}
	points := []point{{1, 0}, {2, 0}, {2, 2 * sim.Second}}
	if !o.Quick {
		points = []point{{1, 0}, {2, 0}, {3, 0}, {2, 1 * sim.Second}, {2, 5 * sim.Second}}
	}
	res := &FederationResult{}
	for _, pt := range points {
		row, err := FederationOnce(o, pt.brokers, pt.lag)
		if err != nil {
			return nil, fmt.Errorf("federation %d brokers, lag %v: %w", pt.brokers, pt.lag, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// FederationOnce measures one (broker count, replication lag) point.
func FederationOnce(o Options, brokers int, lag sim.Duration) (*FederationRow, error) {
	o = o.withDefaults()
	hostsPer := 2
	total := brokers * hostsPer
	// One spare machine for the visibility probe.
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(total+1, 100e6), nil)
	if err != nil {
		return nil, err
	}
	names := make([]string, brokers)
	servers := make([]*rendezvous.Server, brokers)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		s, err := w.AddBroker(names[i], rendezvous.Config{ReplicateInterval: lag})
		if err != nil {
			return nil, err
		}
		servers[i] = s
	}
	witness, err := w.AddBroker("witness", rendezvous.Config{})
	if err != nil {
		return nil, err
	}
	key := func(i int) string { return fmt.Sprintf("pc%02d", i) }
	home := func(i int) int { return i % brokers }
	members := make([]string, total)
	for i := range members {
		members[i] = key(i)
		if err := w.SetHome(key(i), names[home(i)]); err != nil {
			return nil, err
		}
	}
	spare := key(total)
	if err := w.SetHome(spare, names[brokers-1]); err != nil {
		return nil, err
	}

	spec := vpc.TenantSpec{
		Tenant: "fed",
		Networks: []vpc.NetworkSpec{{
			Name: "fednet", CIDR: "10.60.0.0/24", StaticAddressing: true,
			Members: members, Brokers: names,
		}},
	}
	start := w.Eng.Now()
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	row := &FederationRow{Brokers: brokers, ReplLag: lag, Setup: w.Eng.Now().Sub(start)}

	// Lookup sweep: every host resolves every co-tenant by name.
	var lookupSum sim.Duration
	done := false
	var sweepErr error
	w.Eng.Spawn("lookup-sweep", func(p *sim.Proc) {
		defer func() { done = true }()
		for i := 0; i < total; i++ {
			h := w.M(key(i)).WAV
			for j := 0; j < total; j++ {
				if i == j {
					continue
				}
				t0 := w.Eng.Now()
				recs, err := h.Lookup(p, key(j))
				if err != nil {
					sweepErr = err
					return
				}
				row.LookupN++
				if len(recs) > 0 {
					row.LookupOK++
					lookupSum += w.Eng.Now().Sub(t0)
				}
			}
		}
	})
	for !done {
		w.Eng.RunFor(time.Second)
	}
	if sweepErr != nil {
		return nil, fmt.Errorf("lookup sweep: %w", sweepErr)
	}
	if row.LookupOK > 0 {
		row.LookupRTT = lookupSum / sim.Duration(row.LookupOK)
	}

	// Connect sweep: tear each pair's tunnel down and re-broker it,
	// classifying by same- vs cross-broker homing. Counters from the
	// uniform export, snapshotted around the phase.
	before := metrics.NewCounterSet()
	for _, s := range servers {
		before.Merge(s.Counters())
	}
	var sameSum, crossSum sim.Duration
	done = false
	w.Eng.Spawn("connect-sweep", func(p *sim.Proc) {
		defer func() { done = true }()
		for i := 0; i < total; i++ {
			for j := i + 1; j < total; j++ {
				a, b := w.M(key(i)).WAV, w.M(key(j)).WAV
				a.Disconnect(key(j))
				b.Disconnect(key(i))
				cross := home(i) != home(j)
				t0 := w.Eng.Now()
				_, err := a.ConnectTo(p, key(j))
				d := w.Eng.Now().Sub(t0)
				if cross {
					row.CrossN++
					if err == nil {
						row.CrossOK++
						crossSum += d
					}
				} else {
					row.SameN++
					if err == nil {
						row.SameOK++
						sameSum += d
					}
				}
			}
		}
	})
	for !done {
		w.Eng.RunFor(5 * time.Second)
	}
	if row.SameOK > 0 {
		row.SameLat = sameSum / sim.Duration(row.SameOK)
	}
	if row.CrossOK > 0 {
		row.CrossLat = crossSum / sim.Duration(row.CrossOK)
	}
	phase := metrics.NewCounterSet()
	for _, s := range servers {
		phase.Merge(s.Counters())
	}
	row.Forwards = phase.Delta(before).Get("fwd_connects_out")

	// Visibility probe: admit the spare member on the last broker and
	// watch for its session at home and its replica on broker 0.
	if brokers > 1 {
		var homed, replicated sim.Time
		baseline := servers[brokers-1].RecordsFor("fednet")
		probe := sim.NewTicker(w.Eng, 20*time.Millisecond, func() {
			now := w.Eng.Now()
			if homed == 0 && servers[brokers-1].RecordsFor("fednet") > baseline {
				homed = now
			}
			if replicated == 0 && servers[0].HasReplica(spare) {
				replicated = now
			}
		})
		grow := spec
		grow.Networks = append([]vpc.NetworkSpec(nil), spec.Networks...)
		grow.Networks[0].Members = append(append([]string(nil), members...), spare)
		if _, err := w.ApplySync(grow); err != nil {
			return nil, fmt.Errorf("visibility probe apply: %w", err)
		}
		w.Eng.RunFor(lag + 5*time.Second)
		probe.Stop()
		if homed == 0 || replicated == 0 {
			return nil, fmt.Errorf("visibility probe never converged (homed=%v replicated=%v)", homed, replicated)
		}
		row.Visibility = replicated.Sub(homed)
	}

	totals := metrics.NewCounterSet()
	for _, s := range servers {
		totals.Merge(s.Counters())
	}
	row.Replications = totals.Get("replications_out")
	row.Stray = witness.RecordsFor("fednet")
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
