package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func row(bench, metric string, v float64) BenchRow {
	return BenchRow{PR: 6, Bench: bench, Metric: metric, Value: v, Unit: "u"}
}

func TestCompareBenchDirections(t *testing.T) {
	base := []BenchRow{
		row("forward_tagged", "throughput_mbps", 100), // higher is better
		row("migration", "downtime_ms", 100),          // lower is better
		row("forward_tagged", "setup_s", 100),         // undirected: informational
	}

	// Within 10% either way: clean.
	cur := []BenchRow{
		row("forward_tagged", "throughput_mbps", 95),
		row("migration", "downtime_ms", 105),
		row("forward_tagged", "setup_s", 900),
	}
	if regr := CompareBench(cur, base); len(regr) != 0 {
		t.Fatalf("within tolerance, got regressions: %v", regr)
	}

	// Throughput collapse and downtime blow-up both flag; the
	// undirected metric never does; improvements never do.
	cur = []BenchRow{
		row("forward_tagged", "throughput_mbps", 50),
		row("migration", "downtime_ms", 200),
		row("forward_tagged", "setup_s", 900),
	}
	regr := CompareBench(cur, base)
	if len(regr) != 2 {
		t.Fatalf("want 2 regressions, got %v", regr)
	}
	joined := strings.Join(regr, "\n")
	for _, want := range []string{"forward_tagged/throughput_mbps", "migration/downtime_ms"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %v", want, regr)
		}
	}

	// A metric present only in the baseline (or only current) is skipped.
	if regr := CompareBench(nil, base); len(regr) != 0 {
		t.Fatalf("missing current metrics must not flag: %v", regr)
	}

	// Improvements in the good direction never flag.
	cur = []BenchRow{
		row("forward_tagged", "throughput_mbps", 300),
		row("migration", "downtime_ms", 10),
	}
	if regr := CompareBench(cur, base); len(regr) != 0 {
		t.Fatalf("improvements flagged: %v", regr)
	}
}

func TestMarshalBenchRoundTrip(t *testing.T) {
	rows := []BenchRow{row("quota", "quota_error_pct", 12.5)}
	data, err := MarshalBench(rows)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("missing trailing newline")
	}
	var back []BenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != rows[0] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for _, key := range []string{`"pr"`, `"bench"`, `"metric"`, `"value"`, `"unit"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("schema key %s missing in %s", key, data)
		}
	}
}

// TestTrajectoryQuick runs the full pinned suite at quick scale: every
// bench must produce its rows with the agreed names, since CI and the
// committed BENCH_<pr>.json depend on them.
func TestTrajectoryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory suite in -short")
	}
	res, err := Trajectory(Options{Seed: 1, Quick: true}, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range res.Rows {
		if r.PR != 6 {
			t.Errorf("row %s/%s has pr %d", r.Bench, r.Metric, r.PR)
		}
		got[r.Bench+"/"+r.Metric] = true
	}
	for key := range BenchDirections {
		if !got[key] {
			t.Errorf("directed metric %s missing from trajectory point", key)
		}
	}
	if len(res.Rows) < 10 {
		t.Fatalf("suspiciously small trajectory point: %d rows", len(res.Rows))
	}
}
