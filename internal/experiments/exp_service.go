package experiments

import (
	"fmt"

	"wavnet/internal/core"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// ServiceRow is one point of the tenant-service failover sweep: a VIP
// with a declared backend count over a broker count, its active backend
// isolated mid-measurement. It reports the client-observed failover
// time (last ping into the dead backend to first ping served by the
// next), request success across the whole episode, and the probe
// budget the failover must stay under.
type ServiceRow struct {
	Backends int
	Fall     int
	Brokers  int

	// Budget is the worst-case detection window: Fall probe intervals
	// plus one probe timeout.
	Budget sim.Duration
	// Failover is the client-observed VIP outage after the kill.
	Failover sim.Duration
	// Pings/OK count every client request of the episode (before,
	// during and after the outage).
	Pings, OK int

	// Withdrawals and Failovers from the service controller's counters.
	Withdrawals, Failovers uint64
	// Stray is the VIP record count on the unnamed witness broker
	// (must stay 0).
	Stray int
}

// SuccessRatio is the fraction of client requests the VIP served.
func (r ServiceRow) SuccessRatio() float64 {
	if r.Pings == 0 {
		return 0
	}
	return float64(r.OK) / float64(r.Pings)
}

// ServiceResult reports the sweep.
type ServiceResult struct {
	Rows []ServiceRow
}

// String renders the table.
func (r *ServiceResult) String() string {
	t := table{
		title: "Tenant services — VIP failover time and request success vs probe budget, backend count and broker count (beyond the paper)",
		header: []string{"Backends", "Fall", "Brokers", "Budget (s)", "Failover (s)",
			"Requests", "Success", "Withdrawals", "Failovers", "Stray"},
	}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Backends),
			fmt.Sprintf("%d", row.Fall),
			fmt.Sprintf("%d", row.Brokers),
			secs(row.Budget),
			fmt.Sprintf("%.2f", row.Failover.Seconds()),
			fmt.Sprintf("%d/%d", row.OK, row.Pings),
			fmt.Sprintf("%.3f", row.SuccessRatio()),
			fmt.Sprintf("%d", row.Withdrawals),
			fmt.Sprintf("%d", row.Failovers),
			fmt.Sprintf("%d", row.Stray),
		)
	}
	t.notes = append(t.notes,
		"failover: active backend isolated -> first client request served by the next backend",
		"budget: Fall probe intervals + one probe timeout (the detection window); the",
		"  client-observed failover adds at most one request timeout + pacing on top of it",
		"stray: VIP records on the unnamed witness broker (must be 0)")
	return t.String()
}

// ServiceFailover sweeps the probe fall budget, then backend count,
// then broker count.
func ServiceFailover(o Options) (*ServiceResult, error) {
	o = o.withDefaults()
	type point struct{ backends, fall, brokers int }
	points := []point{
		{2, 2, 2}, {2, 3, 2}, {2, 5, 2}, // probe budget
		{3, 3, 2},            // backend count
		{2, 3, 1}, {2, 3, 3}, // broker count
	}
	if !o.Quick {
		points = append(points, point{4, 3, 2}, point{2, 8, 2}, point{3, 3, 4})
	}
	res := &ServiceResult{}
	for _, pt := range points {
		row, err := ServiceOnce(o, pt.backends, pt.fall, pt.brokers)
		if err != nil {
			return nil, fmt.Errorf("service %d backends, fall %d, %d brokers: %w",
				pt.backends, pt.fall, pt.brokers, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// ServiceOnce measures one (backend count, fall budget, broker count)
// point: a failover-ordered VIP probed every 500 ms, its active backend
// isolated from the whole fabric five seconds in, a client pinging the
// VIP throughout.
func ServiceOnce(o Options, backends, fall, brokers int) (*ServiceRow, error) {
	o = o.withDefaults()
	if backends < 2 {
		return nil, fmt.Errorf("service failover needs at least 2 backends")
	}
	const (
		interval = 500 * sim.Millisecond
		timeout  = 200 * sim.Millisecond
	)
	// pc00 anchors (and probes), pc01..pcN back the VIP, the last
	// machine is the client.
	total := backends + 2
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(total, 100e6), nil)
	if err != nil {
		return nil, err
	}
	w.HostCfg = core.Config{
		RendezvousPulsePeriod: 2 * sim.Second,
		BrokerTimeout:         6 * sim.Second,
	}
	names := make([]string, brokers)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		if _, err := w.AddBroker(names[i], rendezvous.Config{SessionTTL: 30 * sim.Second}); err != nil {
			return nil, err
		}
	}
	witness, err := w.AddBroker("witness", rendezvous.Config{SessionTTL: 30 * sim.Second})
	if err != nil {
		return nil, err
	}
	key := func(i int) string { return fmt.Sprintf("pc%02d", i) }
	members := make([]string, total)
	for i := range members {
		members[i] = key(i)
		if err := w.SetHome(key(i), names[i%brokers]); err != nil {
			return nil, err
		}
	}
	backendSpecs := make([]vpc.BackendSpec, backends)
	for i := range backendSpecs {
		backendSpecs[i] = vpc.BackendSpec{Member: key(i + 1)}
	}
	spec := vpc.TenantSpec{
		Tenant: "svc",
		Networks: []vpc.NetworkSpec{{
			Name: "snet", CIDR: "10.91.0.0/24", StaticAddressing: true,
			ServicePool: "10.91.0.192/28",
			Members:     members, Brokers: names,
		}},
		Services: []vpc.ServiceSpec{{
			Name: "vip", Network: "snet",
			Policy:   rendezvous.PolicyFailoverOrdered,
			Backends: backendSpecs,
			Interval: interval, Timeout: timeout, Fall: fall, Rise: 2,
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	vip, ok := w.ServiceVIP("vip")
	if !ok {
		return nil, fmt.Errorf("service VIP unresolved")
	}
	svc, _ := w.ResolveService("vip")
	row := &ServiceRow{
		Backends: backends, Fall: fall, Brokers: brokers,
		Budget: sim.Duration(fall)*interval + timeout,
	}

	// The client pings the VIP every 200 ms for the whole episode.
	n, _ := w.VPC().Get("snet")
	client, _ := n.Member(key(total - 1))
	type sample struct {
		at sim.Time // completion time
		ok bool
	}
	var samples []sample
	stop := false
	w.Eng.Spawn("client", func(p *sim.Proc) {
		for !stop {
			_, err := client.Stack.Ping(p, vip, 56, 500*sim.Millisecond)
			samples = append(samples, sample{at: p.Now(), ok: err == nil})
			if !p.Sleep(200 * sim.Millisecond) {
				return
			}
		}
	})
	w.Eng.RunFor(5 * sim.Second) // settle: tunnels, steering, first probes
	w.Scrape()                   // rate baseline for the withdrawal alert

	// Isolate the active backend (pc01, the first declared rank) from
	// every machine and broker: a partial cut would let the fabric's
	// relay fallback keep it reachable.
	killTime := w.Eng.Now()
	for i := 0; i < total; i++ {
		if key(i) == key(1) {
			continue
		}
		if err := w.Partition(key(1), key(i)); err != nil {
			return nil, err
		}
	}
	for _, b := range append(names, "witness") {
		if err := w.Partition(key(1), b); err != nil {
			return nil, err
		}
	}
	w.Eng.RunFor(row.Budget + 10*sim.Second)
	stop = true
	w.Eng.RunFor(sim.Second)

	if got, _ := svc.Active(); got != key(2) {
		return nil, fmt.Errorf("active backend %q after kill, want %s", got, key(2))
	}
	firstOK := sim.Time(0)
	for _, s := range samples {
		row.Pings++
		if s.ok {
			row.OK++
		}
		if s.ok && s.at > killTime && firstOK == 0 {
			firstOK = s.at
		}
	}
	if firstOK == 0 {
		return nil, fmt.Errorf("VIP never recovered after the kill (%d/%d pings ok)", row.OK, row.Pings)
	}
	row.Failover = firstOK.Sub(killTime)
	c := svc.Counters()
	row.Withdrawals = c.Get("withdrawals")
	row.Failovers = c.Get("failovers")
	row.Stray = witness.VIPRecordsFor("snet")
	// Flow telemetry: the client's accounting must carry the ICMP flow
	// into the VIP itself (steering happens under the VIP's address, so
	// the client-side key keeps it).
	flowSeen := false
	for _, st := range client.Host.Flows().Snapshot() {
		if st.Key.Proto == 1 && st.Key.DstIP == vip && st.Frames > 0 {
			flowSeen = true
		}
	}
	if !flowSeen {
		return nil, fmt.Errorf("client flow table lacks the ICMP flow to VIP %s", vip)
	}
	// And the withdrawal surfaced as an alert: this scrape rates the
	// service withdrawal counter against the settle-time baseline.
	w.Scrape()
	if w.Alerts.Fired("vip-backend-withdrawn") == 0 {
		return nil, fmt.Errorf("vip-backend-withdrawn alert never fired (withdrawals=%d)",
			row.Withdrawals)
	}
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
