package experiments

import (
	"strings"
	"testing"
)

func TestPeeringQuota(t *testing.T) {
	r, err := PeeringQuota(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policy) != 3 {
		t.Fatalf("policy rows = %d", len(r.Policy))
	}
	byCase := map[string]PeeringRow{}
	for _, row := range r.Policy {
		byCase[row.Case] = row
	}
	iso := byCase["isolated"]
	if iso.ToAnchorOK || iso.ToMemberOK {
		t.Fatalf("isolated pair exchanged traffic: %+v", iso)
	}
	full := byCase["peered-full"]
	if !full.ToAnchorOK || !full.ToMemberOK {
		t.Fatalf("fully peered pair blocked traffic: %+v", full)
	}
	if full.Forwards == 0 {
		t.Fatalf("fully peered pair recorded no gateway forwards")
	}
	part := byCase["peered-partial"]
	if !part.ToAnchorOK {
		t.Fatalf("partial policy blocked the allowed destination: %+v", part)
	}
	if part.ToMemberOK {
		t.Fatalf("partial policy delivered a denied destination: %+v", part)
	}
	if part.PolicyDrops == 0 {
		t.Fatalf("partial policy recorded no policy drops (vacuous)")
	}

	if len(r.Quota) != 2 {
		t.Fatalf("quota rows = %d", len(r.Quota))
	}
	base, capped := r.Quota[0], r.Quota[1]
	if base.QuotaMbps != 0 || capped.QuotaMbps <= 0 {
		t.Fatalf("unexpected sweep points: %+v", r.Quota)
	}
	if base.LimitedMbps <= 0 || base.OpenMbps <= 0 || capped.LimitedMbps <= 0 || capped.OpenMbps <= 0 {
		t.Fatalf("a transfer did not complete: %+v", r.Quota)
	}
	if base.QuotaDrops != 0 {
		t.Fatalf("unmetered baseline dropped %d frames", base.QuotaDrops)
	}
	if capped.QuotaDrops == 0 {
		t.Fatalf("metered run dropped nothing; the bucket never engaged")
	}
	// Enforcement: the metered tenant lands near its cap (policers let a
	// burst through, so allow slack) while the concurrent open tenant
	// keeps a decisively higher rate.
	if capped.LimitedMbps > capped.QuotaMbps*1.5 {
		t.Fatalf("limited tenant got %.2f Mbps with a %.0f Mbps quota", capped.LimitedMbps, capped.QuotaMbps)
	}
	if capped.OpenMbps < capped.LimitedMbps*2 {
		t.Fatalf("open tenant (%.2f Mbps) not clearly above limited (%.2f Mbps)", capped.OpenMbps, capped.LimitedMbps)
	}
	if !strings.Contains(r.String(), "Policy drops") || !strings.Contains(r.String(), "Quota drops") {
		t.Fatal("table missing columns")
	}
}
