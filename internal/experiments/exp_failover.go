package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/core"
	"wavnet/internal/metrics"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// FailoverRow is one point of the broker-failover sweep: one tenant
// network spread over a broker count, with the first broker killed at a
// configurable offset. It reports how fast the affected hosts re-homed
// onto survivors and how connect success after the failover compares to
// the same-broker baseline measured before the kill.
type FailoverRow struct {
	Brokers int
	KillAt  sim.Duration // kill offset after the baseline sweep

	// Re-homing: hosts homed on the killed broker, how many re-homed,
	// and the time from the kill to their session appearing on a
	// survivor (the control plane's failover latency).
	Affected, Rehomed  int
	RehomeMean, Rehome sim.Duration // mean and max
	TTL                sim.Duration // the liveness TTL the max must stay under

	// Connect success: same-broker pairs before the kill (baseline) vs
	// every pair after the failover (the acceptance comparison).
	BaseOK, BaseN int
	PostOK, PostN int

	// Cleanup proof, from the survivors' uniform counter export:
	// replicas superseded by re-homing sessions plus replicas withdrawn
	// for the dead broker (TTL expiry or liveness sweep).
	Cleanup uint64
	// Stray is the tenant's record count on the unnamed witness broker
	// (must stay 0 through the whole episode).
	Stray int
}

// FailoverResult reports the sweep.
type FailoverResult struct {
	Rows []FailoverRow
}

// String renders the table.
func (r *FailoverResult) String() string {
	t := table{
		title: "Broker failover — time-to-re-home and post-failover connect success vs broker count and kill timing (beyond the paper)",
		header: []string{"Brokers", "Kill at (s)", "Affected", "Re-homed",
			"Re-home mean (s)", "Re-home max (s)", "TTL (s)",
			"Baseline conn", "Post-failover conn", "Cleanup", "Stray"},
	}
	frac := func(ok, n int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d", ok, n)
	}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%d", row.Brokers),
			fmt.Sprintf("%.0f", row.KillAt.Seconds()),
			fmt.Sprintf("%d", row.Affected),
			fmt.Sprintf("%d", row.Rehomed),
			secs(row.RehomeMean),
			secs(row.Rehome),
			secs(row.TTL),
			frac(row.BaseOK, row.BaseN),
			frac(row.PostOK, row.PostN),
			fmt.Sprintf("%d", row.Cleanup),
			fmt.Sprintf("%d", row.Stray),
		)
	}
	t.notes = append(t.notes,
		"re-home: home broker killed -> host session visible on a surviving declared broker",
		"baseline: same-broker connect success before the kill; post-failover covers every pair",
		"cleanup: stale replicas superseded or withdrawn on the survivors (counter-backed)",
		"stray: tenant records on the unnamed witness broker (must be 0)")
	return t.String()
}

// Failover sweeps broker count at a fixed kill offset, then kill timing
// at a fixed broker count.
func Failover(o Options) (*FailoverResult, error) {
	o = o.withDefaults()
	type point struct {
		brokers int
		killAt  sim.Duration
	}
	points := []point{{2, 5 * sim.Second}, {3, 5 * sim.Second}, {4, 5 * sim.Second}}
	if !o.Quick {
		points = append(points, point{2, 20 * sim.Second}, point{2, 45 * sim.Second})
	}
	res := &FailoverResult{}
	for _, pt := range points {
		row, err := FailoverOnce(o, pt.brokers, pt.killAt)
		if err != nil {
			return nil, fmt.Errorf("failover %d brokers, kill at %v: %w", pt.brokers, pt.killAt, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// FailoverOnce measures one (broker count, kill offset) point.
func FailoverOnce(o Options, brokers int, killAt sim.Duration) (*FailoverRow, error) {
	o = o.withDefaults()
	if brokers < 2 {
		return nil, fmt.Errorf("failover needs at least 2 brokers to fail over between")
	}
	hostsPer := 2
	total := brokers * hostsPer
	w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(total, 100e6), nil)
	if err != nil {
		return nil, err
	}
	// Short keepalives keep the measured episode tractable; the ratios
	// (detection at 3 pulses, TTL at 60 s) match the defaults.
	w.HostCfg = core.Config{
		RendezvousPulsePeriod: 5 * sim.Second,
		BrokerTimeout:         15 * sim.Second,
	}
	bcfg := rendezvous.Config{SessionTTL: 60 * sim.Second}
	names := make([]string, brokers)
	servers := make([]*rendezvous.Server, brokers)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		s, err := w.AddBroker(names[i], bcfg)
		if err != nil {
			return nil, err
		}
		servers[i] = s
	}
	witness, err := w.AddBroker("witness", bcfg)
	if err != nil {
		return nil, err
	}
	key := func(i int) string { return fmt.Sprintf("pc%02d", i) }
	home := func(i int) int { return i % brokers }
	members := make([]string, total)
	for i := range members {
		members[i] = key(i)
		if err := w.SetHome(key(i), names[home(i)]); err != nil {
			return nil, err
		}
	}
	spec := vpc.TenantSpec{
		Tenant: "fo",
		Networks: []vpc.NetworkSpec{{
			Name: "fonet", CIDR: "10.90.0.0/24", StaticAddressing: true,
			Members: members, Brokers: names,
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		return nil, err
	}
	row := &FailoverRow{Brokers: brokers, KillAt: killAt, TTL: bcfg.SessionTTL}

	// connectSweep tears down and re-brokers every pair pick() admits.
	connectSweep := func(name string, pick func(i, j int) bool) (ok, n int) {
		done := false
		w.Eng.Spawn(name, func(p *sim.Proc) {
			defer func() { done = true }()
			for i := 0; i < total; i++ {
				for j := i + 1; j < total; j++ {
					if !pick(i, j) {
						continue
					}
					a, b := w.M(key(i)).WAV, w.M(key(j)).WAV
					a.Disconnect(key(j))
					b.Disconnect(key(i))
					n++
					if _, err := a.ConnectTo(p, key(j)); err == nil {
						ok++
					}
				}
			}
		})
		for !done {
			w.Eng.RunFor(5 * sim.Second)
		}
		return ok, n
	}

	// Baseline: same-broker pairs, before any fault.
	row.BaseOK, row.BaseN = connectSweep("baseline", func(i, j int) bool {
		return home(i) == home(j)
	})

	// The fault: kill broker 0 at the configured offset; watch every
	// affected host for its session appearing on a survivor.
	w.Scrape() // alert rate baseline before the fault
	fi := w.Inject(scenario.KillBrokerAt(killAt, names[0]))
	killTime := w.Eng.Now().Add(killAt)
	affected := make([]string, 0, hostsPer)
	for i := 0; i < total; i++ {
		if home(i) == 0 {
			affected = append(affected, key(i))
		}
	}
	row.Affected = len(affected)
	rehomedAt := make(map[string]sim.Time, len(affected))
	probe := sim.NewTicker(w.Eng, 50*time.Millisecond, func() {
		for _, k := range affected {
			if _, seen := rehomedAt[k]; seen {
				continue
			}
			for _, s := range servers[1:] {
				if s.HasSession(k) {
					rehomedAt[k] = w.Eng.Now()
					break
				}
			}
		}
	})
	budget := killAt + row.TTL + 30*sim.Second
	for spent := sim.Duration(0); len(rehomedAt) < len(affected) && spent < budget; spent += sim.Second {
		w.Eng.RunFor(sim.Second)
		// The scrape cadence drives the alert engine: the window holding
		// the re-home wave rates rehomes > 0 and fires broker-rehome.
		w.Scrape()
	}
	probe.Stop()
	if w.Alerts.Fired("broker-rehome") == 0 {
		return nil, fmt.Errorf("broker-rehome alert never fired across the re-home wave")
	}
	if fails := fi.Failures(); len(fails) != 0 {
		return nil, fmt.Errorf("fault schedule: %v", fails)
	}
	var sum sim.Duration
	for _, k := range affected {
		at, ok := rehomedAt[k]
		if !ok {
			continue
		}
		row.Rehomed++
		d := at.Sub(killTime)
		sum += d
		if d > row.Rehome {
			row.Rehome = d
		}
	}
	if row.Rehomed > 0 {
		row.RehomeMean = sum / sim.Duration(row.Rehomed)
	}

	// Post-failover: every pair re-brokers through the survivors.
	row.PostOK, row.PostN = connectSweep("post", func(i, j int) bool { return true })

	cleanup := metrics.NewCounterSet()
	for _, s := range servers[1:] {
		cleanup.Merge(s.Counters())
	}
	row.Cleanup = cleanup.Get("replica_adopted") +
		cleanup.Get("replica_dead_broker") + cleanup.Get("replica_expired")
	row.Stray = witness.RecordsFor("fonet")
	// One quiet window after the wave: the rehome rate falls back to
	// zero and the alert must resolve, closing its span.
	w.Eng.RunFor(sim.Second)
	w.Scrape()
	if w.Alerts.IsFiring("broker-rehome") {
		return nil, fmt.Errorf("broker-rehome alert still firing after the wave settled")
	}
	if w.Alerts.Resolved("broker-rehome") == 0 {
		return nil, fmt.Errorf("broker-rehome alert never resolved")
	}
	if err := o.finish(w); err != nil {
		return nil, err
	}
	return row, nil
}
