package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
)

// Figure9Series is one network's bandwidth timeline during migration.
type Figure9Series struct {
	Name          string
	Interval      *metrics.Series // receiver Mbps every 500 ms
	MigrationTime sim.Duration
	Downtime      sim.Duration
	StalledAfter  bool // the IPOP symptom: stream dead after migration
	MeanMbps      float64
}

// Figure9Result compares VM bandwidth during live migration under LAN,
// WAVNet and IPOP.
type Figure9Result struct{ Series []Figure9Series }

// String summarizes the timelines.
func (r *Figure9Result) String() string {
	t := table{
		title:  "Figure 9 — VM network bandwidth during live migration (netperf polled every 500 ms)",
		header: []string{"Network", "Mean Mbps", "Migration (s)", "Downtime (s)", "Stream after migration"},
	}
	for _, s := range r.Series {
		after := "continues"
		if s.StalledAfter {
			after = "STALLED"
		}
		t.addRow(s.Name, mbps(s.MeanMbps), secs(s.MigrationTime), fmt.Sprintf("%.2f", s.Downtime.Seconds()), after)
	}
	t.notes = append(t.notes,
		"paper shape: LAN ≈ native with ~20 s migration; WAVNet ≈ 60% native, <30 s, stream survives; IPOP <10% native, ~130 s, stream stalls after migration")
	return t.String()
}

// Figure9 runs the three variants. The LAN case uses an unshaped
// three-machine world; WAVNet/IPOP use the 100 Mbps emulated WAN.
func Figure9(o Options) (*Figure9Result, error) {
	o = o.withDefaults()
	memMB := 256
	if o.Quick {
		memMB = 64
	}
	streamFor := o.scaled(60*time.Second, 340*time.Second)
	res := &Figure9Result{}

	type hostPort = vm.HostPort
	run := func(name string, w *scenario.World, vmHost, dstHost hostPort, observer *netsimStackPair) error {
		v := vm.New(vmHost, "vm-"+name, netsim.MustParseIP("10.77.0.9"), vm.Config{MemoryMB: memMB})
		dur := streamFor
		if name == "ipop" {
			w.IPOPNet.RegisterIP(v.IP(), w.Machines[0].IPOP)
			// IPOP's migration itself crawls at the overlay's capped
			// throughput; keep streaming long enough to observe the
			// post-migration behaviour.
			dur = streamFor * 8
		}
		np, err := apps.StartNetperf(observer.stack, v.Stack(), 5001, dur, 500*time.Millisecond)
		if err != nil {
			return err
		}
		var rep *vm.MigrationReport
		var migErr error
		w.Eng.Spawn("migrate", func(p *sim.Proc) {
			p.Sleep(o.scaled(10*time.Second, 40*time.Second))
			rep, migErr = v.Migrate(p, dstHost)
		})
		w.Eng.RunFor(dur + 10*time.Minute)
		if migErr != nil {
			return fmt.Errorf("figure9 %s migrate: %w", name, migErr)
		}
		s := Figure9Series{Name: name, Interval: np.IntervalMbps, MeanMbps: np.Mbps()}
		if rep != nil {
			s.MigrationTime = rep.Total()
			s.Downtime = rep.Downtime
			// When the stream never finishes (the IPOP stall), report the
			// pre-migration mean instead of zero.
			if s.MeanMbps == 0 {
				if pre := np.IntervalMbps.Between(0, rep.Start); pre.Len() > 0 {
					s.MeanMbps = pre.Summary().Mean
				}
			}
		}
		// Stalled if the last quarter of intervals carried (almost) no
		// traffic.
		samples := np.IntervalMbps.Samples
		if len(samples) >= 8 {
			tail := samples[len(samples)*3/4:]
			var sum float64
			for _, smp := range tail {
				sum += smp.Value
			}
			s.StalledAfter = sum/float64(len(tail)) < 0.5
		}
		res.Series = append(res.Series, s)
		return nil
	}

	// LAN: three machines on one unshaped gigabit... the paper's LAN is
	// 100 Mbps Ethernet; use 100 Mbps access, sub-ms RTT, WAVNet used
	// purely as the bridge fabric (its overhead at LAN scale is small).
	{
		w, err := scenario.Build(o.Seed, scenario.EmulatedWANSpecs(3, 95e6), nil)
		if err != nil {
			return nil, err
		}
		// LAN variant: direct physical stacks would not carry a VM; the
		// paper's LAN row is native bridged Ethernet. We model it with
		// WAVNet over an unshaped LAN-latency fabric, which measures
		// within a few percent of native at 100 Mbps.
		if err := w.WAVNetUp(); err != nil {
			return nil, err
		}
		if err := run("lan", w, w.Machines[0].WAV, w.Machines[1].WAV,
			&netsimStackPair{stack: w.Machines[2].Dom0()}); err != nil {
			return nil, err
		}
	}
	// WAVNet over the shaped emulated WAN.
	{
		w, err := scenario.Build(o.Seed+1, scenario.EmulatedWANSpecs(3, 100e6), nil)
		if err != nil {
			return nil, err
		}
		if err := w.WAVNetUp(); err != nil {
			return nil, err
		}
		if err := run("wavnet", w, w.Machines[0].WAV, w.Machines[1].WAV,
			&netsimStackPair{stack: w.Machines[2].Dom0()}); err != nil {
			return nil, err
		}
	}
	// IPOP baseline.
	{
		w, err := scenario.Build(o.Seed+2, scenario.EmulatedWANSpecs(3, 100e6), nil)
		if err != nil {
			return nil, err
		}
		if err := w.IPOPUp(); err != nil {
			return nil, err
		}
		if err := run("ipop", w, w.Machines[0].IPOP, w.Machines[1].IPOP,
			&netsimStackPair{stack: w.Machines[2].IPOP.Dom0()}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// netsimStackPair wraps the observer stack handed to figure9's runner.
type netsimStackPair struct{ stack *ipstack.Stack }

// TableIIIRow is one before/after HTTP connection-time measurement.
type TableIIIRow struct {
	Label          string
	PingRTT        sim.Duration
	Min, Mean, Max float64 // connection time, ms
}

// TableIIIResult holds Table III.
type TableIIIResult struct{ Rows []TableIIIRow }

// String renders the table.
func (r *TableIIIResult) String() string {
	t := table{
		title:  "Table III — HTTP connection time before/after VM migration",
		header: []string{"Client and VM location", "Ping (ms)", "Min", "Mean", "Max"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Label, ms(row.PingRTT), msf(row.Min), msf(row.Mean), msf(row.Max))
	}
	t.notes = append(t.notes,
		"paper: Sinica→VM@SIAT 99/107/148 → @HKU2 25/33/67; HKU1→VM@SIAT 76/80/90 → @HKU2 0/7/16")
	return t.String()
}

// TableIVRow is one before/after throughput measurement.
type TableIVRow struct {
	Label        string
	NetperfMbps  float64
	Req1K, Req8K float64
	Req64K       float64
}

// TableIVResult holds Table IV.
type TableIVResult struct{ Rows []TableIVRow }

// String renders the table.
func (r *TableIVResult) String() string {
	t := table{
		title:  "Table IV — HTTP throughput before/after VM migration (requests/second)",
		header: []string{"Client and VM location", "WAVNet bw (Mbps)", "1K", "8K", "64K"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Label, mbps(row.NetperfMbps), msf(row.Req1K), msf(row.Req8K), msf(row.Req64K))
	}
	t.notes = append(t.notes,
		"paper: Sinica 18.05→21.69 Mbps, 432.9→583.3 req/s @1K; HKU1 18.6→79.15 Mbps, 473.1→775.5 req/s @1K")
	return t.String()
}

// tables34 runs the shared scenario behind Tables III and IV: an HTTP
// server VM at SIAT serving clients at HKU1 and Sinica, migrated to HKU2.
func tables34(o Options) (*TableIIIResult, *TableIVResult, error) {
	o = o.withDefaults()
	w, err := scenario.Build(o.Seed, scenario.RealWANSpecs(), scenario.RealWANOverrides())
	if err != nil {
		return nil, nil, err
	}
	keys := []string{"HKU1", "HKU2", "Sinica", "SIAT"}
	if err := w.WAVNetUp(keys...); err != nil {
		return nil, nil, err
	}
	v := vm.New(w.M("SIAT").WAV, "httpd-vm", netsim.MustParseIP("10.77.0.10"), vm.Config{MemoryMB: 128})
	if err := apps.StartHTTPServer(v.Stack(), 80); err != nil {
		return nil, nil, err
	}
	res3 := &TableIIIResult{}
	res4 := &TableIVResult{}
	abFor := o.scaled(10*time.Second, 60*time.Second)

	measure := func(clientKey, label string) error {
		client := w.M(clientKey).Dom0()
		// Ping RTT to the VM.
		var rtt sim.Duration
		w.Eng.Spawn("ping", func(p *sim.Proc) {
			client.Ping(p, v.IP(), 56, 5*time.Second)
			rtt, _ = client.Ping(p, v.IP(), 56, 5*time.Second)
		})
		w.Eng.RunFor(15 * time.Second)
		// Netperf throughput to the VM.
		np, err := apps.StartNetperf(client, v.Stack(), 5600, o.scaled(8*time.Second, 30*time.Second), time.Second)
		if err != nil {
			return err
		}
		w.Eng.RunFor(o.scaled(8*time.Second, 30*time.Second) + 30*time.Second)
		row4 := TableIVRow{Label: label, NetperfMbps: np.Mbps()}
		// AB with 1K/8K/64K files (concurrency 8 as a stand-in for the
		// paper's unspecified AB settings in these tables).
		var reqRates [3]float64
		var connStats metrics.Summary
		for i, size := range []int{1 << 10, 8 << 10, 64 << 10} {
			ab := apps.StartAB(client, netsim.Addr{IP: v.IP(), Port: 80}, size, 50, abFor, 0)
			w.Eng.RunFor(abFor + 30*time.Second)
			if !ab.Done {
				return fmt.Errorf("AB %s size %d did not finish", label, size)
			}
			reqRates[i] = ab.ReqPerSec()
			if i == 0 {
				connStats = ab.ConnMs
			}
		}
		row4.Req1K, row4.Req8K, row4.Req64K = reqRates[0], reqRates[1], reqRates[2]
		res4.Rows = append(res4.Rows, row4)
		res3.Rows = append(res3.Rows, TableIIIRow{
			Label: label, PingRTT: rtt,
			Min: connStats.Min, Mean: connStats.Mean, Max: connStats.Max,
		})
		return nil
	}

	if err := measure("Sinica", "Sinica to VM@SIAT (before)"); err != nil {
		return nil, nil, err
	}
	if err := measure("HKU1", "HKU1 to VM@SIAT (before)"); err != nil {
		return nil, nil, err
	}
	// Migrate SIAT → HKU2.
	var migErr error
	migDone := false
	w.Eng.Spawn("migrate", func(p *sim.Proc) {
		_, migErr = v.Migrate(p, w.M("HKU2").WAV)
		migDone = true
	})
	w.Eng.RunFor(20 * time.Minute)
	if !migDone || migErr != nil {
		return nil, nil, fmt.Errorf("tables 3/4 migration: done=%v err=%v", migDone, migErr)
	}
	if err := measure("Sinica", "Sinica to VM@HKU2 (after)"); err != nil {
		return nil, nil, err
	}
	if err := measure("HKU1", "HKU1 to VM@HKU2 (after)"); err != nil {
		return nil, nil, err
	}
	return res3, res4, nil
}

// TableIII measures HTTP connection times before/after migration.
func TableIII(o Options) (*TableIIIResult, error) {
	r3, _, err := tables34(o)
	return r3, err
}

// TableIV measures HTTP throughput before/after migration.
func TableIV(o Options) (*TableIVResult, error) {
	_, r4, err := tables34(o)
	return r4, err
}

// Figure10Run is one site-pair migration timeline.
type Figure10Run struct {
	Pair      string
	RTTms     *metrics.Series
	ABSeries  *metrics.Series
	Losses    []sim.Time
	Downtime  sim.Duration
	Migration sim.Duration
	ThpBefore float64
	ThpAfter  float64
}

// Figure10Result holds the three timelines of Figure 10.
type Figure10Result struct{ Runs []Figure10Run }

// String summarizes downtime, loss and throughput improvement.
func (r *Figure10Result) String() string {
	t := table{
		title:  "Figure 10 — ICMP RTT and HTTP throughput during live migration (1 KB file, c=50)",
		header: []string{"Migration", "Downtime (s)", "ICMP losses", "Thp before (req/s)", "Thp after (req/s)", "Migration (s)"},
	}
	for _, run := range r.Runs {
		t.addRow(run.Pair, fmt.Sprintf("%.2f", run.Downtime.Seconds()),
			fmt.Sprintf("%d", len(run.Losses)), msf(run.ThpBefore), msf(run.ThpAfter), secs(run.Migration))
	}
	t.notes = append(t.notes,
		"paper: downtimes 2.1 s (AIST), 1.0 s (SIAT), 0.6 s (OffCam); throughput jumps ~600 → 1500+ req/s after relocating near the clients")
	return t.String()
}

// Figure10 migrates a 128 MB HTTP-serving VM from AIST/SIAT/OffCam to
// HKU2 while an HKU1 client hammers it with AB and pings it.
func Figure10(o Options) (*Figure10Result, error) {
	o = o.withDefaults()
	res := &Figure10Result{}
	for i, from := range []string{"AIST", "SIAT", "OffCam"} {
		w, err := scenario.Build(o.Seed+int64(i), scenario.RealWANSpecs(), scenario.RealWANOverrides())
		if err != nil {
			return nil, err
		}
		if err := w.WAVNetUp("HKU1", "HKU2", from); err != nil {
			return nil, err
		}
		vmMem := 128
		if o.Quick {
			vmMem = 64
		}
		v := vm.New(w.M(from).WAV, "httpd-vm", netsim.MustParseIP("10.77.0.11"),
			vm.Config{MemoryMB: vmMem, DirtyRate: 300})
		if err := apps.StartHTTPServer(v.Stack(), 80); err != nil {
			return nil, err
		}
		client := w.M("HKU1").Dom0()
		total := o.scaled(110*time.Second, 150*time.Second)
		ping, _ := apps.StartPinger(client, v.IP(), 500*time.Millisecond, total)
		ab := apps.StartAB(client, netsim.Addr{IP: v.IP(), Port: 80}, 1<<10, 50, total, time.Second)
		var rep *vm.MigrationReport
		var migErr error
		w.Eng.Spawn("migrate", func(p *sim.Proc) {
			p.Sleep(o.scaled(10*time.Second, 30*time.Second))
			rep, migErr = v.Migrate(p, w.M("HKU2").WAV)
		})
		w.Eng.RunFor(total + 10*time.Minute)
		if migErr != nil {
			return nil, fmt.Errorf("figure10 %s: %w", from, migErr)
		}
		run := Figure10Run{
			Pair: from + "-HKU", RTTms: ping.RTTms, ABSeries: ab.ThroughputSeries,
			Losses: ping.Losses,
		}
		if rep != nil {
			run.Downtime = rep.Downtime
			run.Migration = rep.Total()
			// Throughput before: AB windows fully before migration
			// start; after: windows after it ends.
			before := ab.ThroughputSeries.Between(0, rep.Start)
			after := ab.ThroughputSeries.Between(rep.End.Add(2*time.Second), 1<<62)
			if before.Len() > 0 {
				run.ThpBefore = before.Summary().Mean
			}
			if after.Len() > 0 {
				run.ThpAfter = after.Summary().Mean
			}
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// TableVRow is one site-pair/memory-size migration timing.
type TableVRow struct {
	Pair        string
	RTT         sim.Duration
	NetperfMbps float64
	T128, T512  sim.Duration
}

// TableVResult holds Table V.
type TableVResult struct{ Rows []TableVRow }

// String renders the table.
func (r *TableVResult) String() string {
	t := table{
		title:  "Table V — time of VM live migration among different sites (seconds)",
		header: []string{"Sites", "RTT (ms)", "WAVNet bw (Mbps)", "128 MB", "512 MB"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Pair, ms(row.RTT), mbps(row.NetperfMbps), secs(row.T128), secs(row.T512))
	}
	t.notes = append(t.notes,
		"paper: OffCam 16/120, Sinica 92.5/202.5, AIST 107.5/208, SIAT 130/377.5, SDSC 310.5/1023 (seconds; non-proportionality from pre-copy dirty rounds)")
	return t.String()
}

// TableV migrates VMs of 128 and 512 MB from each remote site to HKU2.
func TableV(o Options) (*TableVResult, error) {
	o = o.withDefaults()
	sizes := []int{128, 512}
	if o.Quick {
		sizes = []int{32, 128}
	}
	res := &TableVResult{}
	for i, from := range []string{"OffCam", "Sinica", "AIST", "SIAT", "SDSC"} {
		row := TableVRow{Pair: from + "-HKU"}
		for si, memMB := range sizes {
			w, err := scenario.Build(o.Seed+int64(i), scenario.RealWANSpecs(), scenario.RealWANOverrides())
			if err != nil {
				return nil, err
			}
			if err := w.WAVNetUp("HKU2", from); err != nil {
				return nil, err
			}
			if si == 0 {
				// Measure path RTT and WAVNet bandwidth once.
				var rtt sim.Duration
				w.Eng.Spawn("rtt", func(p *sim.Proc) {
					rtt, _ = w.M(from).WAV.TunnelRTT(p, "HKU2")
				})
				w.Eng.RunFor(10 * time.Second)
				row.RTT = rtt
				np, err := apps.StartNetperf(w.M(from).Dom0(), w.M("HKU2").Dom0(), 5700,
					o.scaled(8*time.Second, 30*time.Second), time.Second)
				if err != nil {
					return nil, err
				}
				w.Eng.RunFor(o.scaled(8*time.Second, 30*time.Second) + 30*time.Second)
				row.NetperfMbps = np.Mbps()
			}
			v := vm.New(w.M(from).WAV, "vm", netsim.MustParseIP("10.77.0.12"),
				vm.Config{MemoryMB: memMB, DirtyRate: 1500})
			var rep *vm.MigrationReport
			var migErr error
			done := false
			w.Eng.Spawn("migrate", func(p *sim.Proc) {
				rep, migErr = v.Migrate(p, w.M("HKU2").WAV)
				done = true
			})
			w.Eng.RunFor(4 * time.Hour)
			if !done || migErr != nil {
				return nil, fmt.Errorf("tableV %s %dMB: done=%v err=%v", from, memMB, done, migErr)
			}
			if si == 0 {
				row.T128 = rep.Total()
			} else {
				row.T512 = rep.Total()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
