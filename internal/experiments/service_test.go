package experiments

import (
	"testing"

	"wavnet/internal/sim"
)

// TestServiceFailoverSmallScale runs the service experiment's smallest
// point and checks the acceptance properties: the VIP recovers after
// the active backend's isolation, the client-observed failover stays
// within the probe fall budget plus one request timeout and pacing
// interval, exactly one withdrawal moved traffic, and the unnamed
// witness broker held zero VIP records.
func TestServiceFailoverSmallScale(t *testing.T) {
	row, err := ServiceOnce(quick(), 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Failover <= 0 {
		t.Fatalf("failover time %v", row.Failover)
	}
	// Client pings pace at 200 ms with a 500 ms timeout; the observed
	// outage can trail detection by at most one in-flight request.
	slack := 500*sim.Millisecond + 200*sim.Millisecond
	if row.Failover > row.Budget+slack {
		t.Fatalf("client-observed failover %v beyond budget %v + slack %v",
			row.Failover, row.Budget, slack)
	}
	if row.Withdrawals != 1 || row.Failovers != 1 {
		t.Fatalf("withdrawals=%d failovers=%d, want exactly 1 each", row.Withdrawals, row.Failovers)
	}
	if ratio := row.SuccessRatio(); ratio < 0.9 {
		t.Fatalf("request success %.3f, want >=0.9 for a %v outage", ratio, row.Failover)
	}
	if row.Stray != 0 {
		t.Fatalf("witness broker holds %d VIP records, want 0", row.Stray)
	}
}

// TestServiceFailoverLongerFall: a larger fall budget must not change
// the outcome, only stretch the detection window proportionally.
func TestServiceFailoverLongerFall(t *testing.T) {
	short, err := ServiceOnce(quick(), 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := ServiceOnce(quick(), 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if long.Failover <= short.Failover {
		t.Fatalf("fall=5 failover %v not beyond fall=2's %v", long.Failover, short.Failover)
	}
	if long.SuccessRatio() >= short.SuccessRatio() {
		t.Fatalf("fall=5 success %.3f not below fall=2's %.3f",
			long.SuccessRatio(), short.SuccessRatio())
	}
}
