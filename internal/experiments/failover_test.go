package experiments

import "testing"

// TestFailoverSmallScale runs the failover experiment's smallest point
// and checks the acceptance properties: every host homed on the killed
// broker re-homes within the liveness TTL, post-failover connect
// success is no worse than the same-broker baseline, cleanup left a
// counter trace, and the unnamed witness broker held zero tenant
// records through the whole episode.
func TestFailoverSmallScale(t *testing.T) {
	row, err := FailoverOnce(quick(), 2, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	if row.Affected == 0 || row.Rehomed != row.Affected {
		t.Fatalf("re-homed %d/%d affected hosts", row.Rehomed, row.Affected)
	}
	if row.Rehome <= 0 || row.Rehome > row.TTL {
		t.Fatalf("max time-to-re-home %v outside (0, %v]", row.Rehome, row.TTL)
	}
	if row.BaseN == 0 || row.PostN == 0 {
		t.Fatalf("sweep degenerate: baseline %d, post %d pairs", row.BaseN, row.PostN)
	}
	baseRate := float64(row.BaseOK) / float64(row.BaseN)
	postRate := float64(row.PostOK) / float64(row.PostN)
	if postRate < baseRate {
		t.Fatalf("post-failover connect success %.2f below same-broker baseline %.2f",
			postRate, baseRate)
	}
	if row.Cleanup == 0 {
		t.Fatal("no stale-replica cleanup was counted on the survivors")
	}
	if row.Stray != 0 {
		t.Fatalf("witness broker holds %d tenant records, want 0", row.Stray)
	}
}

// TestFailoverLaterKillStillConverges moves the kill later into the
// steady state (a different phase of the pulse/refresh cycle); the
// failover must converge all the same.
func TestFailoverLaterKillStillConverges(t *testing.T) {
	row, err := FailoverOnce(quick(), 2, 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if row.Rehomed != row.Affected {
		t.Fatalf("re-homed %d/%d affected hosts", row.Rehomed, row.Affected)
	}
	if row.Rehome > row.TTL {
		t.Fatalf("max time-to-re-home %v beyond the %v TTL", row.Rehome, row.TTL)
	}
	if row.PostOK != row.PostN {
		t.Fatalf("post-failover connects failed: %d/%d", row.PostOK, row.PostN)
	}
}
