package experiments

import (
	"fmt"
	"time"

	"wavnet/internal/ipstack"
	"wavnet/internal/mpi"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
)

// heatCalibration maps problem size to iteration count, calibrated so
// that without-migration runtimes reproduce the paper's 397/1214/3798 s
// at the measured HKU–SIAT RTT (see EXPERIMENTS.md).
var heatCalibration = map[int]struct {
	iters   int
	compute sim.Duration
}{
	64:  {5300, 4700 * time.Microsecond},
	128: {16200, 4700 * time.Microsecond},
	256: {50600, 4700 * time.Microsecond},
}

// Figure11Row is one problem size's with/without-migration comparison.
type Figure11Row struct {
	Size            int
	Without, With   sim.Duration
	MigrationTime   sim.Duration
	WithOverWithout float64
}

// Figure11Result holds the heat-distribution comparison.
type Figure11Result struct{ Rows []Figure11Row }

// String renders the chart data.
func (r *Figure11Result) String() string {
	t := table{
		title:  "Figure 11 — MPICH heat distribution with/without VM migration (seconds)",
		header: []string{"Problem", "w/o migration", "with migration", "migration time", "ratio"},
	}
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%dx%d", row.Size, row.Size), secs(row.Without), secs(row.With),
			secs(row.MigrationTime), fmt.Sprintf("%.3f", row.WithOverWithout))
	}
	t.notes = append(t.notes,
		"paper: 397→121 s (30.5%), 1214→179 s (14.7%), 3798→365 s; migrating the SIAT VM to HKU removes the WAN halo-exchange bottleneck")
	return t.String()
}

// Figure11 runs four MPI ranks in VMs — three in HKU, one in SIAT — and
// compares runtimes with and without migrating the SIAT VM to HKU after
// the job starts.
func Figure11(o Options) (*Figure11Result, error) {
	o = o.withDefaults()
	sizes := []int{64, 128, 256}
	if o.Quick {
		sizes = []int{64, 128}
	}
	res := &Figure11Result{}
	for _, size := range sizes {
		cal := heatCalibration[size]
		iters := cal.iters
		runOnce := func(migrate bool) (sim.Duration, sim.Duration, error) {
			w, err := scenario.Build(o.Seed, scenario.RealWANSpecs(), scenario.RealWANOverrides())
			if err != nil {
				return 0, 0, err
			}
			keys := []string{"HKU1", "HKU2", "HKU3", "SIAT"}
			if err := w.WAVNetUp(keys...); err != nil {
				return 0, 0, err
			}
			vmMem := 128
			if o.Quick {
				vmMem = 64
			}
			var stacks []*ipstack.Stack
			var vms []*vm.VM
			for i, k := range keys {
				machine := w.M(k)
				g := vm.New(machine.WAV, fmt.Sprintf("mpi-vm%d", i),
					netsim.MakeIP(10, 77, 1, byte(i+1)), vm.Config{MemoryMB: vmMem, DirtyRate: 300})
				vms = append(vms, g)
				stacks = append(stacks, g.Stack())
			}
			world := mpi.NewWorld(w.Eng, stacks)
			var elapsed, migTime sim.Duration
			var runErr error
			done := false
			w.Eng.Spawn("job", func(p *sim.Proc) {
				defer func() { done = true }()
				if runErr = world.Connect(p); runErr != nil {
					return
				}
				elapsed, runErr = mpi.RunHeat(p, world, mpi.HeatParams{
					M: size, Iterations: iters, ComputePerIter: cal.compute,
				})
			})
			if migrate {
				w.Eng.Spawn("migrate", func(p *sim.Proc) {
					p.Sleep(5 * time.Second) // after the program starts
					rep, err := vms[3].Migrate(p, w.M("HKU1").WAV)
					if err == nil && rep != nil {
						migTime = rep.Total()
					}
				})
			}
			w.Eng.RunFor(4 * time.Hour)
			if !done || runErr != nil {
				return 0, 0, fmt.Errorf("figure11 %d migrate=%v: done=%v err=%v", size, migrate, done, runErr)
			}
			return elapsed, migTime, nil
		}
		without, _, err := runOnce(false)
		if err != nil {
			return nil, err
		}
		with, migTime, err := runOnce(true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure11Row{
			Size: size, Without: without, With: with, MigrationTime: migTime,
			WithOverWithout: float64(with) / float64(without),
		})
	}
	return res, nil
}

// Figure14Row is one benchmark/cluster-size cell.
type Figure14Row struct {
	Bench            string
	Hosts            int
	Random, Locality sim.Duration
}

// Figure14Result holds the NAS comparison.
type Figure14Result struct{ Rows []Figure14Row }

// String renders the chart data.
func (r *Figure14Result) String() string {
	t := table{
		title:  "Figure 14 — NAS on random vs locality-sensitive virtual clusters (seconds)",
		header: []string{"Case", "Hosts", "Random", "Locality-sensitive", "speedup"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Bench, fmt.Sprintf("%d", row.Hosts), secs(row.Random), secs(row.Locality),
			fmt.Sprintf("%.2fx", float64(row.Random)/float64(row.Locality)))
	}
	t.notes = append(t.notes,
		"paper shape: EP (compute-bound) barely improves; FT (alltoall-bound) improves severalfold")
	return t.String()
}

// Figure14 builds a pool of candidate machines with PlanetLab-like
// pairwise latencies, selects 4- and 8-host clusters randomly vs with
// the locality-sensitive strategy, and runs NAS EP and FT on WAVNet
// meshes over each cluster.
func Figure14(o Options) (*Figure14Result, error) {
	o = o.withDefaults()
	pool := 20
	res := &Figure14Result{}
	cases := []struct {
		bench string
		class mpi.NASClass
		hosts int
	}{
		{"EP(A)", mpi.ClassA, 4},
		{"EP(B)", mpi.ClassB, 4},
		{"FT(A)", mpi.ClassA, 4},
		{"FT(B)", mpi.ClassB, 4},
		{"EP(A)", mpi.ClassA, 8},
		{"EP(B)", mpi.ClassB, 8},
		{"FT(A)", mpi.ClassA, 8},
		{"FT(B)", mpi.ClassB, 8},
	}
	if o.Quick {
		cases = []struct {
			bench string
			class mpi.NASClass
			hosts int
		}{
			{"EP(A)", mpi.ClassA, 4},
			{"FT(A)", mpi.ClassA, 4},
			{"EP(A)", mpi.ClassA, 8},
			{"FT(A)", mpi.ClassA, 8},
		}
	}
	for _, c := range cases {
		random, err := figure14Run(o, pool, c.hosts, c.bench, c.class, false)
		if err != nil {
			return nil, err
		}
		local, err := figure14Run(o, pool, c.hosts, c.bench, c.class, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure14Row{Bench: c.bench, Hosts: c.hosts, Random: random, Locality: local})
	}
	return res, nil
}

// figure14Run builds the candidate world, picks the cluster, meshes it
// with WAVNet and runs the kernel.
func figure14Run(o Options, pool, k int, bench string, class mpi.NASClass, locality bool) (sim.Duration, error) {
	specs, overrides, rtts := planetlabPool(o.Seed, pool)
	w, err := scenario.Build(o.Seed, specs, overrides)
	if err != nil {
		return 0, err
	}
	// Select the cluster.
	var idx []int
	if locality {
		idx, err = localityGroup(rtts, k)
	} else {
		idx, err = randomGroup(rtts, k, o.Seed+int64(len(bench)))
	}
	if err != nil {
		return 0, err
	}
	keys := make([]string, len(idx))
	for i, id := range idx {
		keys[i] = specs[id].Key
	}
	if err := w.WAVNetUp(keys...); err != nil {
		return 0, err
	}
	var stacks []*ipstack.Stack
	for _, key := range keys {
		stacks = append(stacks, w.M(key).Dom0())
	}
	world := mpi.NewWorld(w.Eng, stacks)
	var elapsed sim.Duration
	var runErr error
	done := false
	w.Eng.Spawn("nas", func(p *sim.Proc) {
		defer func() { done = true }()
		if runErr = world.Connect(p); runErr != nil {
			return
		}
		switch bench[:2] {
		case "EP":
			elapsed, runErr = mpi.RunEP(p, world, mpi.EPParams{Class: class})
		default:
			elapsed, runErr = mpi.RunFT(p, world, mpi.FTParams{Class: class, ComputeRate: 60e6})
		}
	})
	w.Eng.RunFor(12 * time.Hour)
	if !done || runErr != nil {
		return 0, fmt.Errorf("figure14 %s k=%d locality=%v: done=%v err=%v", bench, k, locality, done, runErr)
	}
	return elapsed, nil
}
