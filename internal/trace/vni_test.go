package trace_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/trace"
)

// udpFrame wraps a UDP payload in hand-built IPv4+UDP headers inside
// an Ethernet frame, as the tracer sees WAVNet tunnel traffic on a
// physical NIC.
func udpFrame(payload []byte) *ether.Frame {
	b := make([]byte, 20+8+len(payload))
	b[0] = 4<<4 | 5                                // IPv4, IHL 5
	b[9] = 17                                      // UDP
	binary.BigEndian.PutUint32(b[12:], 0x0a000001) // 10.0.0.1
	binary.BigEndian.PutUint32(b[16:], 0x0a000002) // 10.0.0.2
	binary.BigEndian.PutUint16(b[20:], 4500)
	binary.BigEndian.PutUint16(b[22:], 4500)
	binary.BigEndian.PutUint16(b[24:], uint16(8+len(payload)))
	copy(b[28:], payload)
	return &ether.Frame{Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2), Type: ether.TypeIPv4, Payload: b}
}

// arpAnnounce builds the gratuitous ARP the migration experiment
// watches for, as an inner tunneled frame.
func arpAnnounce() *ether.Frame {
	a := ether.ARP{Op: ether.ARPRequest, SenderMAC: ether.SeqMAC(9)}
	a.SenderIP = 0x0a010101
	a.TargetIP = 0x0a010101
	return &ether.Frame{Src: ether.SeqMAC(9), Dst: ether.Broadcast, Type: ether.TypeARP, Payload: a.Marshal()}
}

func TestSummarizeVNITaggedFrame(t *testing.T) {
	inner := arpAnnounce()
	r := trace.Record{Frame: udpFrame(core.MarshalVNIFrame(42, inner))}
	line := r.String()
	if !strings.Contains(line, "WAVNet VNI 42 frame:") {
		t.Errorf("tagged frame line lacks VNI: %s", line)
	}
	if !strings.Contains(line, "ARP announce") {
		t.Errorf("inner frame not summarized: %s", line)
	}

	// The untagged legacy encapsulation still summarizes, without a VNI.
	r = trace.Record{Frame: udpFrame(core.MarshalVNIFrame(0, inner))}
	line = r.String()
	if !strings.Contains(line, "WAVNet frame:") || strings.Contains(line, "VNI") {
		t.Errorf("untagged frame line wrong: %s", line)
	}
}

func TestSummarizeVNISetAnnouncement(t *testing.T) {
	b := make([]byte, 3+4*2)
	b[0] = 0x18 // paVNISet
	binary.BigEndian.PutUint16(b[1:], 2)
	binary.BigEndian.PutUint32(b[3:], 7)
	binary.BigEndian.PutUint32(b[7:], 99)
	line := (&trace.Record{Frame: udpFrame(b)}).String()
	if !strings.Contains(line, "WAVNet VNI-set announce [7 99]") {
		t.Errorf("VNI-set line wrong: %s", line)
	}
}

func TestSummarizeWAVNetMalformedAndForeign(t *testing.T) {
	// Truncated tag: reported as malformed, not crashed on.
	line := (&trace.Record{Frame: udpFrame([]byte{0x17, 0, 0})}).String()
	if !strings.Contains(line, "malformed") {
		t.Errorf("truncated tagged frame: %s", line)
	}
	// Truncated VNI-set.
	line = (&trace.Record{Frame: udpFrame([]byte{0x18, 0, 5})}).String()
	if !strings.Contains(line, "malformed") {
		t.Errorf("truncated VNI-set: %s", line)
	}
	// Non-WAVNet payloads keep the generic UDP line.
	line = (&trace.Record{Frame: udpFrame([]byte("hello"))}).String()
	if !strings.Contains(line, "UDP len 5") {
		t.Errorf("foreign payload line: %s", line)
	}
}
