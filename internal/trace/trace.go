// Package trace is the simulation's tcpdump: a transparent tap on any
// virtual NIC that records frames crossing it in both directions and
// renders them in a tcpdump-like text form. The paper uses tcpdump on
// the tap device to show that WAVNet tunnels the gratuitous ARP
// broadcast a VMM emits when live migration finishes (§III.C); the
// tracer reproduces that observation inside the simulated world.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Dir is the direction of a captured frame relative to the traced NIC.
type Dir int

// Frame directions.
const (
	In  Dir = iota // frame delivered to the NIC's owner
	Out            // frame sent by the NIC's owner
)

// String renders the direction as tcpdump does.
func (d Dir) String() string {
	if d == In {
		return "In "
	}
	return "Out"
}

// Record is one captured frame.
type Record struct {
	Time  sim.Time
	Dir   Dir
	Frame *ether.Frame
}

// String renders the record in a tcpdump-like single line.
func (r *Record) String() string {
	return fmt.Sprintf("%.6f %s %s", r.Time.Seconds(), r.Dir, summarize(r.Frame))
}

// summarize decodes just enough of a frame for a capture line.
func summarize(f *ether.Frame) string {
	switch f.Type {
	case ether.TypeARP:
		a, err := ether.UnmarshalARP(f.Payload)
		if err != nil {
			return fmt.Sprintf("ARP malformed (%d bytes)", len(f.Payload))
		}
		switch {
		case a.Op == ether.ARPRequest && a.SenderIP == a.TargetIP:
			// A gratuitous ARP announces a (possibly new) location.
			return fmt.Sprintf("ARP announce %s is-at %s", a.SenderIP, a.SenderMAC)
		case a.Op == ether.ARPRequest:
			return fmt.Sprintf("ARP request who-has %s tell %s", a.TargetIP, a.SenderIP)
		default:
			return fmt.Sprintf("ARP reply %s is-at %s", a.SenderIP, a.SenderMAC)
		}
	case ether.TypeIPv4:
		return summarizeIPv4(f.Payload)
	default:
		return fmt.Sprintf("ethertype 0x%04x %s > %s len %d", f.Type, f.Src, f.Dst, len(f.Payload))
	}
}

// IP protocol numbers the summarizer understands.
const (
	protoICMP = 1
	protoTCP  = 6
	protoUDP  = 17
)

func summarizeIPv4(b []byte) string {
	if len(b) < 20 || b[0]>>4 != 4 {
		return fmt.Sprintf("IP malformed (%d bytes)", len(b))
	}
	proto := b[9]
	src := netsim.IP(binary.BigEndian.Uint32(b[12:]))
	dst := netsim.IP(binary.BigEndian.Uint32(b[16:]))
	body := b[20:]
	switch proto {
	case protoICMP:
		kind := "icmp"
		if len(body) > 0 {
			switch body[0] {
			case 8:
				kind = "ICMP echo request"
			case 0:
				kind = "ICMP echo reply"
			}
		}
		return fmt.Sprintf("IP %s > %s: %s", src, dst, kind)
	case protoUDP:
		if len(body) >= 8 {
			sp := binary.BigEndian.Uint16(body[0:])
			dp := binary.BigEndian.Uint16(body[2:])
			if s, ok := summarizeWAVNet(body[8:]); ok {
				return fmt.Sprintf("IP %s.%d > %s.%d: %s", src, sp, dst, dp, s)
			}
			return fmt.Sprintf("IP %s.%d > %s.%d: UDP len %d", src, sp, dst, dp, len(body)-8)
		}
		return fmt.Sprintf("IP %s > %s: UDP malformed", src, dst)
	case protoTCP:
		if len(body) >= 20 {
			sp := binary.BigEndian.Uint16(body[0:])
			dp := binary.BigEndian.Uint16(body[2:])
			seq := binary.BigEndian.Uint32(body[4:])
			flags := tcpFlagString(body[12])
			return fmt.Sprintf("IP %s.%d > %s.%d: TCP [%s] seq %d", src, sp, dst, dp, flags, seq)
		}
		return fmt.Sprintf("IP %s > %s: TCP malformed", src, dst)
	default:
		return fmt.Sprintf("IP %s > %s: proto %d", src, dst, proto)
	}
}

// WAVNet Packet Assembler type bytes the summarizer understands (the
// tunnel encapsulations a capture inside a tenant actually sees; the
// full catalogue lives in internal/core).
const (
	paFrame       = 0x11 // untagged encapsulated Ethernet frame
	paFrameVNI    = 0x17 // VNI-tagged frame: [0x17][vni:4][frame]
	paVNISet      = 0x18 // VNI membership announcement: [0x18][n:2][vni:4]*n
	paVIPAnnounce = 0x19 // VIP health: [0x19][flags:1][vni:4][vip:4][mac:6][nameLen:1][name]
	paFrameBatch  = 0x1A // aggregated egress batch: [0x1A]([len:2][frame image])*
)

// summarizeWAVNet decodes the tunnel encapsulations of the WAVNet data
// plane riding inside a UDP datagram: plain and VNI-tagged frames
// (recursively summarizing the inner frame) and VNI-set announcements.
// It reports false for anything it does not recognize, leaving the
// generic UDP line to the caller.
func summarizeWAVNet(b []byte) (string, bool) {
	if len(b) == 0 {
		return "", false
	}
	switch b[0] {
	case paFrame, paFrameVNI:
		vni, f, err := core.UnmarshalVNIFrame(b)
		if err != nil {
			return fmt.Sprintf("WAVNet frame malformed (%d bytes)", len(b)), true
		}
		if vni == 0 {
			return "WAVNet frame: " + summarize(f), true
		}
		return fmt.Sprintf("WAVNet VNI %d frame: %s", vni, summarize(f)), true
	case paFrameBatch:
		var inner []string
		off := 1
		for off+2 <= len(b) {
			n := int(b[off])<<8 | int(b[off+1])
			off += 2
			if n == 0 || off+n > len(b) {
				return fmt.Sprintf("WAVNet batch malformed at +%d (%d bytes)", off, len(b)), true
			}
			s, ok := summarizeWAVNet(b[off : off+n])
			if !ok {
				s = fmt.Sprintf("unknown entry (%d bytes)", n)
			}
			inner = append(inner, s)
			off += n
		}
		return fmt.Sprintf("WAVNet batch x%d {%s}", len(inner), strings.Join(inner, "; ")), true
	case paVNISet:
		if len(b) < 3 {
			return fmt.Sprintf("WAVNet VNI-set malformed (%d bytes)", len(b)), true
		}
		n := int(binary.BigEndian.Uint16(b[1:]))
		if len(b) < 3+4*n {
			return fmt.Sprintf("WAVNet VNI-set malformed (%d bytes)", len(b)), true
		}
		vnis := make([]string, n)
		for i := 0; i < n; i++ {
			vnis[i] = fmt.Sprintf("%d", binary.BigEndian.Uint32(b[3+4*i:]))
		}
		return fmt.Sprintf("WAVNet VNI-set announce [%s]", strings.Join(vnis, " ")), true
	case paVIPAnnounce:
		if len(b) < 17 || len(b) < 17+int(b[16]) {
			return fmt.Sprintf("WAVNet VIP-announce malformed (%d bytes)", len(b)), true
		}
		health := "down"
		if b[1]&0x01 != 0 {
			health = "up"
		}
		vni := binary.BigEndian.Uint32(b[2:])
		vip := netsim.IP(binary.BigEndian.Uint32(b[6:]))
		var mac ether.MAC
		copy(mac[:], b[10:16])
		backend := string(b[17 : 17+int(b[16])])
		return fmt.Sprintf("WAVNet VNI %d VIP-announce %s backend %s (%s) %s",
			vni, vip, backend, mac, health), true
	default:
		return "", false
	}
}

func tcpFlagString(f byte) string {
	var sb strings.Builder
	for _, fl := range []struct {
		bit  byte
		name string
	}{{1 << 1, "S"}, {1 << 0, "F"}, {1 << 2, "R"}, {1 << 3, "P"}, {1 << 4, "."}} {
		if f&fl.bit != 0 {
			sb.WriteString(fl.name)
		}
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}

// Filter selects which frames a tracer keeps. Nil keeps everything.
type Filter func(*Record) bool

// ARPOnly keeps ARP frames (tcpdump "arp").
func ARPOnly(r *Record) bool { return r.Frame.Type == ether.TypeARP }

// GratuitousARPOnly keeps gratuitous ARP announcements — the frame the
// paper's migration experiment watches for.
func GratuitousARPOnly(r *Record) bool {
	if r.Frame.Type != ether.TypeARP {
		return false
	}
	a, err := ether.UnmarshalARP(r.Frame.Payload)
	return err == nil && a.Op == ether.ARPRequest && a.SenderIP == a.TargetIP
}

// Broadcast keeps frames addressed to the broadcast MAC.
func Broadcast(r *Record) bool { return r.Frame.Dst.IsBroadcast() }

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(r *Record) bool {
		for _, f := range fs {
			if !f(r) {
				return false
			}
		}
		return true
	}
}

// Tracer interposes on an ether.NIC, recording frames in both directions
// while remaining transparent to the NIC's owner. Attach it between a
// stack (or bridge port) and the link:
//
//	port := host.AttachVIF("vif1")
//	tap := trace.Attach(eng, "tcpdump-vif1", port)
//	stack := ipstack.New(eng, "guest", tap, mac, ip, cfg)
type Tracer struct {
	eng    *sim.Engine
	name   string
	nic    ether.NIC
	recv   func(*ether.Frame)
	filter Filter
	limit  int

	records []Record
	// Dropped counts frames not kept because of the capture limit (the
	// filter does not count: filtered frames were never wanted).
	Dropped uint64
}

// Attach wraps nic in a tracer. The tracer captures at most limit frames
// when SetLimit is used; by default capture is unbounded.
func Attach(eng *sim.Engine, name string, nic ether.NIC) *Tracer {
	t := &Tracer{eng: eng, name: name, nic: nic}
	nic.SetRecv(t.onRecv)
	return t
}

// SetFilter installs a capture filter (nil captures everything).
func (t *Tracer) SetFilter(f Filter) { t.filter = f }

// SetLimit caps the number of records kept (0 = unbounded); further
// frames still flow but are counted in Dropped.
func (t *Tracer) SetLimit(n int) { t.limit = n }

// Name returns the tracer's diagnostic name.
func (t *Tracer) Name() string { return t.name }

// Send implements ether.NIC: record, then forward outward.
func (t *Tracer) Send(f *ether.Frame) {
	t.record(Out, f)
	t.nic.Send(f)
}

// SetRecv implements ether.NIC: the owner's receive callback.
func (t *Tracer) SetRecv(fn func(*ether.Frame)) { t.recv = fn }

func (t *Tracer) onRecv(f *ether.Frame) {
	t.record(In, f)
	if t.recv != nil {
		t.recv(f)
	}
}

func (t *Tracer) record(d Dir, f *ether.Frame) {
	r := Record{Time: t.eng.Now(), Dir: d, Frame: f}
	if t.filter != nil && !t.filter(&r) {
		return
	}
	if t.limit > 0 && len(t.records) >= t.limit {
		t.Dropped++
		return
	}
	t.records = append(t.records, r)
}

// Records returns the captured frames in order.
func (t *Tracer) Records() []Record { return append([]Record(nil), t.records...) }

// Count reports the number of captured frames.
func (t *Tracer) Count() int { return len(t.records) }

// Reset discards the capture buffer.
func (t *Tracer) Reset() {
	t.records = nil
	t.Dropped = 0
}

// Find returns the first captured record matching f, if any.
func (t *Tracer) Find(f Filter) (Record, bool) {
	for i := range t.records {
		if f(&t.records[i]) {
			return t.records[i], true
		}
	}
	return Record{}, false
}

// WriteTo dumps the capture in text form, one line per frame.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for i := range t.records {
		n, err := fmt.Fprintln(w, t.records[i].String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

var _ ether.NIC = (*Tracer)(nil)
