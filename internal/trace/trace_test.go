package trace_test

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/trace"
	"wavnet/internal/vm"
)

// pipeWithTracer builds two stacks over a link pipe with a tracer
// interposed on side A.
func pipeWithTracer(seed int64) (*sim.Engine, *trace.Tracer, *ipstack.Stack, *ipstack.Stack) {
	eng := sim.NewEngine(seed)
	pipe := ether.NewLinkPipe(eng, 0, 5*time.Millisecond, 0)
	tr := trace.Attach(eng, "tcpdump", pipe.A)
	a := ipstack.New(eng, "a", tr, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), ipstack.Config{})
	b := ipstack.New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), ipstack.Config{})
	return eng, tr, a, b
}

func TestTracerIsTransparent(t *testing.T) {
	eng, tr, a, b := pipeWithTracer(1)
	_ = b
	var rtt sim.Duration
	var err error
	eng.Spawn("ping", func(p *sim.Proc) {
		rtt, err = a.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
	})
	eng.Run()
	if err != nil {
		t.Fatalf("ping through tracer: %v", err)
	}
	if rtt < 10*time.Millisecond {
		t.Fatalf("rtt %v below the 2×5 ms pipe delay", rtt)
	}
	// The capture holds both directions: ARP exchange + echo pair.
	var out, in int
	for _, r := range tr.Records() {
		if r.Dir == trace.Out {
			out++
		} else {
			in++
		}
	}
	if out == 0 || in == 0 {
		t.Fatalf("capture misses a direction: out=%d in=%d", out, in)
	}
}

func TestCaptureLinesDecodeProtocols(t *testing.T) {
	eng, tr, a, b := pipeWithTracer(1)
	eng.Spawn("traffic", func(p *sim.Proc) {
		a.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
		// UDP datagram.
		us, _ := a.BindUDP(0, nil)
		ub, _ := b.BindUDP(7000, nil)
		_ = ub
		us.SendTo(netsim.Addr{IP: b.IP(), Port: 7000}, []byte("hello"))
		p.Sleep(time.Second)
		// TCP handshake.
		lis, _ := b.Listen(8000)
		_ = lis
		if conn, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 8000}); err == nil {
			conn.Close()
		}
		p.Sleep(time.Second)
	})
	eng.RunFor(time.Minute)
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, want := range []string{
		"ARP request who-has 10.0.0.2 tell 10.0.0.1",
		"ICMP echo request",
		"ICMP echo reply",
		"UDP len 5",
		"TCP [S]",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump lacks %q:\n%s", want, dump)
		}
	}
}

func TestFilterAndLimit(t *testing.T) {
	eng, tr, a, b := pipeWithTracer(1)
	_ = b
	tr.SetFilter(trace.ARPOnly)
	eng.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
		}
	})
	eng.RunFor(time.Minute)
	for _, r := range tr.Records() {
		if r.Frame.Type != ether.TypeARP {
			t.Fatalf("non-ARP frame passed the filter: %s", r.String())
		}
	}
	if tr.Count() == 0 {
		t.Fatal("filter dropped everything")
	}

	// Limit: re-run with a 1-frame cap.
	eng2, tr2, a2, _ := pipeWithTracer(2)
	tr2.SetLimit(1)
	eng2.Spawn("ping", func(p *sim.Proc) {
		a2.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
	})
	eng2.RunFor(time.Minute)
	if tr2.Count() != 1 {
		t.Fatalf("limit=1 kept %d records", tr2.Count())
	}
	if tr2.Dropped == 0 {
		t.Fatal("overflow not counted")
	}
}

func TestCombinedFilters(t *testing.T) {
	r := &trace.Record{Frame: ether.GratuitousARP(ether.SeqMAC(3), netsim.MustParseIP("10.0.0.7"))}
	if !trace.GratuitousARPOnly(r) {
		t.Fatal("gratuitous ARP not recognized")
	}
	if !trace.Broadcast(r) {
		t.Fatal("gratuitous ARP is broadcast")
	}
	if !trace.And(trace.ARPOnly, trace.Broadcast)(r) {
		t.Fatal("And filter rejected a matching record")
	}
	req := &ether.ARP{Op: ether.ARPRequest, SenderIP: netsim.MustParseIP("10.0.0.1"), TargetIP: netsim.MustParseIP("10.0.0.2")}
	plain := &trace.Record{Frame: &ether.Frame{Dst: ether.Broadcast, Type: ether.TypeARP, Payload: req.Marshal()}}
	if trace.GratuitousARPOnly(plain) {
		t.Fatal("ordinary ARP request classified as gratuitous")
	}
}

func TestSummarizerHandlesMalformedFrames(t *testing.T) {
	eng := sim.NewEngine(1)
	pipe := ether.NewLinkPipe(eng, 0, time.Millisecond, 0)
	tr := trace.Attach(eng, "t", pipe.A)
	frames := []*ether.Frame{
		{Type: ether.TypeARP, Payload: []byte{1, 2, 3}},          // short ARP
		{Type: ether.TypeIPv4, Payload: []byte{0x45, 0}},         // short IP
		{Type: ether.TypeIPv4, Payload: make([]byte, 24)},        // version 0
		{Type: 0x86DD, Src: ether.SeqMAC(1), Payload: []byte{0}}, // IPv6: unknown
		{Type: ether.TypeIPv4, Payload: ipWithProto(99)},         // odd proto
		{Type: ether.TypeIPv4, Payload: ipWithProto(17)[:20+4]},  // truncated UDP
		{Type: ether.TypeIPv4, Payload: ipWithProto(6)[:20+8]},   // truncated TCP
	}
	for _, f := range frames {
		tr.Send(f) // must not panic
	}
	eng.Run()
	recs := tr.Records()
	if len(recs) != len(frames) {
		t.Fatalf("captured %d of %d frames", len(recs), len(frames))
	}
	for i, r := range recs {
		if r.String() == "" {
			t.Fatalf("record %d rendered empty", i)
		}
	}
	for _, want := range []string{"ARP malformed", "IP malformed", "ethertype 0x86dd",
		"proto 99", "UDP malformed", "TCP malformed"} {
		found := false
		for _, r := range recs {
			if strings.Contains(r.String(), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no capture line contains %q", want)
		}
	}
}

// ipWithProto builds a minimal valid IPv4 packet with the given protocol
// and a 24-byte body.
func ipWithProto(proto byte) []byte {
	b := make([]byte, 20+24)
	b[0] = 0x45
	b[9] = proto
	return b
}

// TestGratuitousARPCapturedAcrossWAN reproduces the paper's §III.C
// tcpdump observation: when live migration finishes, the VMM's
// gratuitous ARP broadcast is tunneled by WAVNet and can be captured on
// the tap of a *different* physical host across the WAN.
func TestGratuitousARPCapturedAcrossWAN(t *testing.T) {
	w, err := scenario.Build(1, scenario.RealWANSpecs(), scenario.RealWANOverrides())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WAVNetUp("HKU1", "HKU2", "SIAT"); err != nil {
		t.Fatal(err)
	}

	// tcpdump on HKU2's tap: a bare tracer on a bridge port, no stack.
	observer := trace.Attach(w.Eng, "tcpdump-hku2", w.M("HKU2").WAV.AttachVIF("tcpdump"))
	observer.SetFilter(trace.GratuitousARPOnly)

	// VM on SIAT, migrated to HKU1.
	guest := vm.New(w.M("SIAT").WAV, "web", netsim.MustParseIP("10.1.0.50"), vm.Config{MemoryMB: 64})
	var rep *vm.MigrationReport
	var migErr error
	w.Eng.Spawn("migrate", func(p *sim.Proc) {
		rep, migErr = guest.Migrate(p, w.M("HKU1").WAV)
	})
	w.Eng.RunFor(10 * time.Minute)
	if migErr != nil {
		t.Fatalf("migration: %v", migErr)
	}
	if rep == nil || rep.Downtime <= 0 {
		t.Fatalf("implausible migration report: %+v", rep)
	}

	rec, ok := observer.Find(func(r *trace.Record) bool { return true })
	if !ok {
		t.Fatal("observer captured no gratuitous ARP after migration")
	}
	line := rec.String()
	if !strings.Contains(line, "ARP announce 10.1.0.50 is-at "+guest.MAC().String()) {
		t.Fatalf("capture line does not announce the migrated VM: %s", line)
	}
	// The announcement must arrive after the migration finished (it is
	// the resume-time broadcast), within a WAN RTT.
	if rec.Time < rep.End.Add(-time.Second) {
		t.Fatalf("gratuitous ARP at %v predates migration end %v", rec.Time, rep.End)
	}
}
