package vm

import (
	"errors"
	"io"
	"testing"
	"time"

	"wavnet/internal/core"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// testWorld: rendezvous + three WAVNet hosts (NATed) fully meshed, with
// dom0 stacks 10.0.0.1-3.
type testWorld struct {
	eng   *sim.Engine
	nw    *netsim.Network
	hosts []*core.Host
}

func buildWorld(t *testing.T, seed int64, rates []float64, rtts []sim.Duration) *testWorld {
	t.Helper()
	w := &testWorld{eng: sim.NewEngine(seed)}
	w.nw = netsim.New(w.eng)
	hub := w.nw.NewSite("hub")
	rdvHost := w.nw.NewPublicHost("rdv", hub, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	rdv, err := rendezvous.NewServer(rdvHost, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rdv.Bootstrap()

	for i := range rates {
		site := w.nw.NewSite("s")
		w.nw.SetRTT(hub, site, rtts[i])
		for j := 1; j <= i; j++ {
			w.nw.SetRTT(w.nw.Sites()[j], site, rtts[i]+rtts[j-1])
		}
		gw := w.nw.NewPublicHost("gw", site, netsim.MakeIP(60, byte(i+1), 0, 1), rates[i], 100*time.Microsecond)
		lan := w.nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		nat.Attach(gw, nat.FullCone)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := core.NewHost(phys, "h"+string(rune('0'+i)), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		w.hosts = append(w.hosts, h)
	}
	errs := make([]error, len(w.hosts))
	for i, h := range w.hosts {
		i, h := i, h
		w.eng.Spawn("join", func(p *sim.Proc) {
			if errs[i] = h.Join(p, rdv.Addr()); errs[i] != nil {
				return
			}
			h.CreateDom0(netsim.MakeIP(10, 0, 0, byte(i+1)))
		})
	}
	w.eng.RunFor(30 * time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d join: %v", i, err)
		}
	}
	// Full mesh.
	done := 0
	want := 0
	for i := range w.hosts {
		for j := i + 1; j < len(w.hosts); j++ {
			i, j := i, j
			want++
			w.eng.Spawn("mesh", func(p *sim.Proc) {
				if _, err := w.hosts[i].ConnectTo(p, w.hosts[j].Name()); err != nil {
					t.Errorf("connect %d-%d: %v", i, j, err)
				}
				done++
			})
		}
	}
	w.eng.RunFor(30 * time.Second)
	if done != want {
		t.Fatalf("mesh incomplete: %d/%d", done, want)
	}
	return w
}

func TestMigrationMovesVMAndPreservesConnectivity(t *testing.T) {
	w := buildWorld(t, 1,
		[]float64{100e6, 100e6, 100e6},
		[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
	v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"), Config{MemoryMB: 64})
	var before, after sim.Duration
	var rep *MigrationReport
	var err error
	w.eng.Spawn("driver", func(p *sim.Proc) {
		// Third party pings the VM at its original host.
		obs := w.hosts[2].Dom0()
		obs.Ping(p, v.IP(), 56, 5*time.Second)
		before, err = obs.Ping(p, v.IP(), 56, 5*time.Second)
		if err != nil {
			return
		}
		rep, err = v.Migrate(p, w.hosts[1])
		if err != nil {
			return
		}
		p.Sleep(time.Second)
		// Ping again: must reach the VM at its new host without manual
		// reconfiguration (gratuitous ARP re-pointed the switches).
		after, err = obs.Ping(p, v.IP(), 56, 5*time.Second)
	})
	w.eng.RunFor(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if v.Host() != w.hosts[1] {
		t.Fatal("VM host not updated")
	}
	if rep.Downtime <= 0 || rep.Downtime > 5*time.Second {
		t.Fatalf("downtime = %v", rep.Downtime)
	}
	if rep.Rounds < 2 {
		t.Fatalf("rounds = %d, want pre-copy iterations", rep.Rounds)
	}
	if rep.BytesSent < int64(64<<20) {
		t.Fatalf("bytes sent %d < image size", rep.BytesSent)
	}
	if before <= 0 || after <= 0 {
		t.Fatalf("pings: before=%v after=%v", before, after)
	}
	// Host2 is nearer host1 (8+12? hub spokes: h2->h0 = 12+5=17ms,
	// h2->h1 = 12+8=20ms)... just require both pings sane.
	_ = after
	// The uniform counter export agrees with the report.
	c := v.Counters()
	if c.Get("migrations") != 1 || c.Get("aborts") != 0 {
		t.Fatalf("counters %s: want migrations=1 aborts=0", c)
	}
	if c.Get("rounds") != uint64(rep.Rounds) {
		t.Fatalf("counters rounds=%d, report says %d", c.Get("rounds"), rep.Rounds)
	}
	if c.Get("pages_copied") < uint64(64<<20/4096) {
		t.Fatalf("counters pages_copied=%d < image pages", c.Get("pages_copied"))
	}
	if c.Get("downtime_us") == 0 {
		t.Fatal("counters downtime_us=0 after a stop-and-copy")
	}
}

func TestTCPSessionSurvivesMigration(t *testing.T) {
	w := buildWorld(t, 2,
		[]float64{100e6, 100e6, 100e6},
		[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
	v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"), Config{MemoryMB: 32})

	total := 2 << 20
	received := 0
	var srvErr, sendErr, migErr error
	// VM runs a sink server.
	w.eng.Spawn("vm-server", func(p *sim.Proc) {
		l, _ := v.Stack().Listen(5001)
		c, err := l.Accept(p)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(p, buf)
			received += n
			if err == io.EOF {
				return
			}
			if err != nil {
				srvErr = err
				return
			}
		}
	})
	// Client streams to the VM throughout the migration.
	w.eng.Spawn("client", func(p *sim.Proc) {
		c, err := w.hosts[2].Dom0().Dial(p, netsim.Addr{IP: v.IP(), Port: 5001})
		if err != nil {
			sendErr = err
			return
		}
		chunk := make([]byte, 16384)
		for sent := 0; sent < total; sent += len(chunk) {
			if _, err := c.Write(p, chunk); err != nil {
				sendErr = err
				return
			}
		}
		c.Close()
	})
	w.eng.Spawn("migrate", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond) // let the stream start
		_, migErr = v.Migrate(p, w.hosts[1])
	})
	w.eng.RunFor(20 * time.Minute)
	if srvErr != nil || sendErr != nil || migErr != nil {
		t.Fatalf("srv=%v send=%v mig=%v", srvErr, sendErr, migErr)
	}
	if received != total {
		t.Fatalf("received %d of %d across migration", received, total)
	}
}

func TestMigrationTimeScalesWithMemoryAndBandwidth(t *testing.T) {
	run := func(memMB int, rate float64) sim.Duration {
		w := buildWorld(t, 3,
			[]float64{rate, rate, rate},
			[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
		v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"), Config{MemoryMB: memMB})
		var rep *MigrationReport
		var err error
		w.eng.Spawn("driver", func(p *sim.Proc) {
			rep, err = v.Migrate(p, w.hosts[1])
		})
		w.eng.RunFor(60 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total()
	}
	small := run(32, 100e6)
	big := run(128, 100e6)
	slow := run(32, 20e6)
	if big <= small {
		t.Fatalf("128 MB (%v) should take longer than 32 MB (%v)", big, small)
	}
	if slow <= small {
		t.Fatalf("20 Mbps (%v) should take longer than 100 Mbps (%v)", slow, small)
	}
}

func TestHigherDirtyRateMoreRounds(t *testing.T) {
	run := func(dirtyRate float64) *MigrationReport {
		w := buildWorld(t, 4,
			[]float64{50e6, 50e6, 50e6},
			[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
		v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"),
			Config{MemoryMB: 64, DirtyRate: dirtyRate})
		var rep *MigrationReport
		var err error
		w.eng.Spawn("driver", func(p *sim.Proc) {
			rep, err = v.Migrate(p, w.hosts[1])
		})
		w.eng.RunFor(60 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	calm := run(200)
	busy := run(5000)
	if busy.BytesSent <= calm.BytesSent {
		t.Fatalf("busy VM resent %d bytes <= calm %d", busy.BytesSent, calm.BytesSent)
	}
	if busy.Downtime <= calm.Downtime {
		t.Fatalf("busy downtime %v <= calm %v", busy.Downtime, calm.Downtime)
	}
}

// TestMigrationAbortsCleanlyWhenDestinationUnreachable severs the WAN
// path between source and destination mid-copy: the stall watchdog must
// abort the transfer within StallTimeout (not TCP's full retransmission
// budget), count the abort, and leave the VM running at the source.
func TestMigrationAbortsCleanlyWhenDestinationUnreachable(t *testing.T) {
	w := buildWorld(t, 6,
		[]float64{50e6, 50e6, 50e6},
		[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
	stall := 5 * time.Second
	v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"),
		Config{MemoryMB: 64, StallTimeout: stall})
	var migErr error
	done := false
	var doneAt sim.Time
	w.eng.Spawn("migrate", func(p *sim.Proc) {
		_, migErr = v.Migrate(p, w.hosts[1])
		done = true
		doneAt = p.Now()
	})
	// 64 MB at 50 Mbps needs ~10 s; cut the source-destination WAN path
	// 2 s in, squarely inside the first pre-copy round.
	srcSite := w.hosts[0].Phys().Site()
	dstSite := w.hosts[1].Phys().Site()
	w.eng.Schedule(2*time.Second, func() { w.nw.Partition(srcSite, dstSite) })
	start := w.eng.Now()
	w.eng.RunFor(10 * time.Minute)
	if !done {
		t.Fatal("migration never returned after the partition")
	}
	if !errors.Is(migErr, ErrStalled) {
		t.Fatalf("migration error = %v, want ErrStalled", migErr)
	}
	// Clean and prompt: abort within partition time + StallTimeout + the
	// watchdog's tick slack, nowhere near TCP's retransmission budget.
	if d := doneAt.Sub(start); d > 2*time.Second+3*stall {
		t.Fatalf("abort took %v, want under %v", d, 2*time.Second+3*stall)
	}
	if v.Host() != w.hosts[0] {
		t.Fatal("aborted migration moved the VM")
	}
	if !v.Running() {
		t.Fatal("VM not running at the source after the abort")
	}
	c := v.Counters()
	if c.Get("aborts") != 1 || c.Get("migrations") != 0 {
		t.Fatalf("counters %s: want aborts=1 migrations=0", c)
	}
	if len(v.Migrations) != 0 {
		t.Fatalf("aborted migration left %d reports", len(v.Migrations))
	}
	// After healing, the VM still serves traffic from its old home.
	w.nw.Heal(srcSite, dstSite)
	var pingErr error
	pinged := false
	w.eng.Spawn("ping", func(p *sim.Proc) {
		_, pingErr = w.hosts[2].Dom0().Ping(p, v.IP(), 56, 5*time.Second)
		pinged = true
	})
	w.eng.RunFor(30 * time.Second)
	if !pinged || pingErr != nil {
		t.Fatalf("post-abort ping: done=%v err=%v", pinged, pingErr)
	}
}

func TestPauseResume(t *testing.T) {
	w := buildWorld(t, 5,
		[]float64{100e6, 100e6, 100e6},
		[]sim.Duration{5 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond})
	v := New(w.hosts[0], "vm1", netsim.MustParseIP("10.0.0.100"), Config{MemoryMB: 16})
	var during, afterResume error
	w.eng.Spawn("driver", func(p *sim.Proc) {
		obs := w.hosts[1].Dom0()
		obs.Ping(p, v.IP(), 56, 5*time.Second) // warm ARP
		v.Pause()
		_, during = obs.Ping(p, v.IP(), 56, time.Second)
		v.Resume()
		_, afterResume = obs.Ping(p, v.IP(), 56, 5*time.Second)
	})
	w.eng.RunFor(5 * time.Minute)
	if during == nil {
		t.Fatal("paused VM answered a ping")
	}
	if afterResume != nil {
		t.Fatalf("resumed VM unreachable: %v", afterResume)
	}
}
