// Package vm models virtual machines and Xen-style pre-copy live
// migration over the virtual network (paper §II.C).
//
// A VM is a protocol stack plugged into a host's bridge through a
// virtual interface, plus a memory image with a dirty-page process.
// Migration transfers the image over a real TCP connection between the
// source and destination hosts' management (Dom0) stacks — so migration
// traffic shares links with the workload and the bandwidth dip of
// Figure 9 emerges from the link model. Rounds follow Xen's pre-copy:
// the first round copies every page, each later round copies the pages
// dirtied during the previous one, and stop-and-copy pauses the VM to
// send the final set. On resume the destination injects gratuitous ARP
// broadcasts, which is what re-points WAV-Switch tables network-wide.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// HostPort is where a VM plugs in. Both core.Host (WAVNet) and ipop.Node
// (the baseline) implement it.
type HostPort interface {
	Name() string
	AttachVIF(name string) ether.NIC
	DetachVIF(nic ether.NIC)
	Dom0() *ipstack.Stack
	NewMAC() ether.MAC
	VirtualMTU() int
}

// Config tunes a VM.
type Config struct {
	MemoryMB int // default 256
	PageSize int // default 4096
	// DirtyRate is the page-dirtying rate (pages/second) while the VM
	// runs; it drives pre-copy convergence (default 2000 ≈ 8 MB/s).
	DirtyRate float64
	// MaxRounds bounds pre-copy iterations (Xen uses ~30).
	MaxRounds int
	// StopCopyPages: when a round's dirty set is at most this many
	// pages, pause and do the final copy (default 64 pages = 256 KB).
	StopCopyPages int
	// MigrationPort is the Dom0 TCP port used for image transfer.
	MigrationPort uint16
	// HandoffDelay models device re-attachment at the destination before
	// the VM resumes (default 50 ms).
	HandoffDelay sim.Duration
	// StallTimeout aborts a migration whose image transfer has made no
	// progress for this long — the destination became unreachable
	// mid-copy. The transfer channel is torn down, the abort is counted,
	// and the VM keeps running (or resumes) at the source (default 15 s).
	StallTimeout sim.Duration
	// Tracer records sim-time spans for migrations (one span per
	// migration, one child per pre-copy round); nil disables tracing.
	Tracer *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.MemoryMB <= 0 {
		c.MemoryMB = 256
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.DirtyRate <= 0 {
		c.DirtyRate = 2000
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 30
	}
	if c.StopCopyPages <= 0 {
		c.StopCopyPages = 64
	}
	if c.MigrationPort == 0 {
		c.MigrationPort = 8002
	}
	if c.HandoffDelay <= 0 {
		c.HandoffDelay = 50 * sim.Millisecond
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 15 * sim.Second
	}
	return c
}

// MigrationReport records one live migration.
type MigrationReport struct {
	VM         string
	From, To   string
	Start, End sim.Time
	// Downtime is the stop-and-copy pause as perceived by the VM.
	Downtime sim.Duration
	Rounds   int
	// BytesSent is the total image traffic, including re-sent dirty pages.
	BytesSent  int64
	RoundBytes []int64
}

// Total returns the wall-clock migration duration.
func (r *MigrationReport) Total() sim.Duration { return r.End.Sub(r.Start) }

// VM is a running virtual machine.
type VM struct {
	name  string
	cfg   Config
	eng   *sim.Engine
	host  HostPort
	vif   ether.NIC
	stack *ipstack.Stack
	mac   ether.MAC
	ip    netsim.IP

	running   bool
	migrating bool

	// traceParent, when set, becomes the parent of the next migration
	// span — the VPC reconciler threads its apply span through here so a
	// managed migration shows up inside the apply that ordered it.
	traceParent *obs.Span

	// Migrations lists completed migration reports.
	Migrations []*MigrationReport

	// Cumulative migration statistics; Counters exports them.
	statMigrations uint64
	statRounds     uint64
	statPages      uint64
	statDowntimeUs uint64
	statAborts     uint64
}

// Errors returned by VM operations.
var (
	ErrMigrating = errors.New("vm: migration already in progress")
	ErrNotUp     = errors.New("vm: not running")
	// ErrStalled reports a migration aborted by the stall watchdog: the
	// image transfer stopped making progress (destination unreachable
	// mid-copy), so the channel was torn down and the VM stayed at the
	// source.
	ErrStalled = errors.New("vm: migration aborted: image transfer stalled")
)

// New creates a VM on host with the given virtual IP and boots it
// (attaches its NIC and stack).
func New(host HostPort, name string, ip netsim.IP, cfg Config) *VM {
	cfg = cfg.withDefaults()
	v := &VM{
		name: name,
		cfg:  cfg,
		eng:  host.Dom0().Engine(),
		host: host,
		mac:  host.NewMAC(),
		ip:   ip,
	}
	v.vif = host.AttachVIF("vif-" + name)
	v.stack = ipstack.New(v.eng, name, v.vif, v.mac, ip, ipstack.Config{MTU: host.VirtualMTU()})
	v.running = true
	return v
}

// Name returns the VM name.
func (v *VM) Name() string { return v.name }

// IP returns the VM's virtual address.
func (v *VM) IP() netsim.IP { return v.ip }

// MAC returns the VM's hardware address (stable across migrations).
func (v *VM) MAC() ether.MAC { return v.mac }

// Stack is the VM's protocol stack; applications run on it.
func (v *VM) Stack() *ipstack.Stack { return v.stack }

// Host returns the current physical host.
func (v *VM) Host() HostPort { return v.host }

// Running reports whether the VM is executing (false while paused).
func (v *VM) Running() bool { return v.running }

// Pause stops the VM: its NIC detaches and traffic in both directions is
// dropped (timers inside the guest keep running — a documented
// simplification; externally observed behaviour matches a paused guest).
func (v *VM) Pause() {
	if !v.running {
		return
	}
	v.running = false
	v.host.DetachVIF(v.vif)
	v.stack.SetNIC(nil)
	v.vif = nil
}

// Resume restarts the VM on its current host.
func (v *VM) Resume() {
	if v.running {
		return
	}
	v.vif = v.host.AttachVIF("vif-" + v.name)
	v.stack.SetNIC(v.vif)
	v.running = true
}

// Counters exports the VM's cumulative migration statistics as a
// metrics.CounterSet, the uniform export format every other subsystem
// uses: completed migrations, pre-copy rounds, pages copied (re-sent
// dirty pages included), stop-and-copy downtime in microseconds, and
// aborted migrations (failures that left the VM at the source).
func (v *VM) Counters() *metrics.CounterSet {
	c := metrics.NewCounterSet()
	c.Set("migrations", v.statMigrations)
	c.Set("rounds", v.statRounds)
	c.Set("pages_copied", v.statPages)
	c.Set("downtime_us", v.statDowntimeUs)
	c.Set("aborts", v.statAborts)
	return c
}

// SetTraceParent makes sp the parent of the VM's next migration span,
// linking a managed migration to the VPC apply that ordered it. The
// parent is consumed by the next Migrate call; nil clears it.
func (v *VM) SetTraceParent(sp *obs.Span) { v.traceParent = sp }

// totalPages is the VM image size in pages.
func (v *VM) totalPages() int { return v.cfg.MemoryMB << 20 / v.cfg.PageSize }

// Migrate live-migrates the VM to dst using iterative pre-copy over a
// TCP connection between the two hosts' Dom0 stacks. It blocks the
// calling process until the VM runs on dst and returns the report.
func (v *VM) Migrate(p *sim.Proc, dst HostPort) (*MigrationReport, error) {
	if v.migrating {
		return nil, ErrMigrating
	}
	if !v.running {
		return nil, ErrNotUp
	}
	src := v.host
	if src.Dom0() == nil || dst.Dom0() == nil {
		return nil, fmt.Errorf("vm: both hosts need Dom0 stacks for migration")
	}
	v.migrating = true
	defer func() { v.migrating = false }()

	rep := &MigrationReport{VM: v.name, From: src.Name(), To: dst.Name(), Start: p.Now()}
	sp := v.cfg.Tracer.Start(v.traceParent, "migrate", obs.Labels{Host: src.Name()})
	v.traceParent = nil
	sp.Event("vm %s: %s -> %s", v.name, src.Name(), dst.Name())
	defer sp.End()

	// Destination side: accept the image stream and count arrivals; each
	// length-prefixed round is acknowledged by unparking the migrator.
	lis, err := dst.Dom0().Listen(v.cfg.MigrationPort)
	if err != nil {
		return nil, err
	}
	defer lis.Close()
	var roundDone bool
	var recvConn *ipstack.Conn
	recvErr := error(nil)
	v.eng.Spawn("migrate-recv-"+v.name, func(rp *sim.Proc) {
		conn, err := lis.Accept(rp)
		if err != nil {
			recvErr = err
			p.Unpark()
			return
		}
		recvConn = conn
		hdr := make([]byte, 8)
		buf := make([]byte, 64<<10)
		for {
			if _, err := conn.ReadFull(rp, hdr); err != nil {
				return
			}
			n := int64(binary.BigEndian.Uint64(hdr))
			if n == 0 { // end of stream
				conn.Close()
				return
			}
			for n > 0 {
				chunk := buf
				if n < int64(len(chunk)) {
					chunk = chunk[:n]
				}
				got, err := conn.ReadFull(rp, chunk)
				n -= int64(got)
				if err != nil {
					recvErr = err
					p.Unpark()
					return
				}
			}
			roundDone = true
			p.Unpark()
		}
	})

	conn, err := src.Dom0().Dial(p, netsim.Addr{IP: dst.Dom0().IP(), Port: v.cfg.MigrationPort})
	if err != nil {
		v.statAborts++
		sp.Event("aborted: migration channel: %v", err)
		return nil, fmt.Errorf("vm: migration channel: %w", err)
	}
	defer conn.Close()

	// Stall watchdog: the transfer's only liveness signal is new bytes
	// entering the TCP stream (acks drain the send buffer and let more
	// in). When the destination becomes unreachable mid-copy the stream
	// freezes; rather than stalling until TCP's full retransmission
	// budget expires, abort both ends after StallTimeout of no progress
	// and fail the migration cleanly — the VM stays at the source.
	var stallErr error
	lastOut := conn.BytesOut
	lastProgress := v.eng.Now()
	watchdog := sim.NewTicker(v.eng, v.cfg.StallTimeout/4, func() {
		if stallErr != nil {
			return
		}
		if conn.BytesOut != lastOut {
			lastOut = conn.BytesOut
			lastProgress = v.eng.Now()
			return
		}
		if v.eng.Now().Sub(lastProgress) < v.cfg.StallTimeout {
			return
		}
		stallErr = ErrStalled
		conn.Abort()
		if recvConn != nil {
			recvConn.Abort()
		}
		p.Unpark()
	})
	defer watchdog.Stop()

	pageSize := int64(v.cfg.PageSize)
	sendRound := func(pages int64) error {
		bytes := pages * pageSize
		hdr := make([]byte, 8)
		binary.BigEndian.PutUint64(hdr, uint64(bytes))
		if _, err := conn.Write(p, hdr); err != nil {
			if stallErr != nil {
				return stallErr
			}
			return err
		}
		chunk := make([]byte, 64<<10)
		for sent := int64(0); sent < bytes; {
			n := bytes - sent
			if n > int64(len(chunk)) {
				n = int64(len(chunk))
			}
			if _, err := conn.Write(p, chunk[:n]); err != nil {
				if stallErr != nil {
					return stallErr
				}
				return err
			}
			sent += n
		}
		// Wait for the receiver to consume the round.
		roundDone = false
		for !roundDone && recvErr == nil && stallErr == nil {
			if !p.Park() {
				return errors.New("vm: migration interrupted")
			}
		}
		if stallErr != nil {
			return stallErr
		}
		rep.BytesSent += bytes
		rep.RoundBytes = append(rep.RoundBytes, bytes)
		return recvErr
	}

	// Iterative pre-copy.
	toSend := int64(v.totalPages())
	prev := toSend + 1
	for round := 0; ; round++ {
		roundStart := p.Now()
		rs := v.cfg.Tracer.Start(sp, "migrate.round", obs.Labels{Host: src.Name()})
		rs.Event("round %d: %d pages", round, toSend)
		if err := sendRound(toSend); err != nil {
			v.statAborts++
			rs.Event("aborted: %v", err)
			rs.End()
			sp.Event("aborted in round %d: %v", round, err)
			return nil, err
		}
		rs.End()
		rep.Rounds++
		elapsed := p.Now().Sub(roundStart)
		dirtied := int64(v.cfg.DirtyRate * elapsed.Seconds())
		if max := int64(v.totalPages()); dirtied > max {
			dirtied = max
		}
		if dirtied <= int64(v.cfg.StopCopyPages) ||
			round+1 >= v.cfg.MaxRounds ||
			dirtied >= prev {
			prev = dirtied
			toSend = dirtied
			break
		}
		prev = toSend
		toSend = dirtied
	}

	// Stop-and-copy: pause, send the final set plus device state, hand
	// off, resume at the destination.
	pausedAt := p.Now()
	v.Pause()
	if toSend < 1 {
		toSend = 1
	}
	sc := v.cfg.Tracer.Start(sp, "migrate.stopcopy", obs.Labels{Host: src.Name()})
	sc.Event("%d pages", toSend)
	if err := sendRound(toSend); err != nil {
		// Roll back: resume at the source.
		v.Resume()
		v.statAborts++
		sc.Event("aborted, resumed at source: %v", err)
		sc.End()
		sp.Event("aborted in stop-and-copy: %v", err)
		return nil, err
	}
	sc.End()
	rep.Rounds++
	// End-of-stream marker.
	zero := make([]byte, 8)
	conn.Write(p, zero)

	// The transfer is complete; the watchdog must not misread the quiet
	// handoff as a stall.
	watchdog.Stop()
	p.Sleep(v.cfg.HandoffDelay)
	v.host = dst
	v.Resume()
	rep.Downtime = p.Now().Sub(pausedAt)

	// The resumed VMM announces the VM's new location; WAVNet floods the
	// broadcast over every tunnel, IPOP ignores it (stale routes).
	v.stack.AnnounceGratuitousARP()
	for i := 1; i <= 2; i++ {
		v.eng.Schedule(sim.Duration(i)*200*sim.Millisecond, v.stack.AnnounceGratuitousARP)
	}

	sp.Event("resumed at %s: downtime %v, %d rounds, %d bytes",
		dst.Name(), rep.Downtime, rep.Rounds, rep.BytesSent)
	rep.End = p.Now()
	v.Migrations = append(v.Migrations, rep)
	v.statMigrations++
	v.statRounds += uint64(rep.Rounds)
	v.statPages += uint64(rep.BytesSent / pageSize)
	v.statDowntimeUs += uint64(rep.Downtime / sim.Microsecond)
	return rep, nil
}
