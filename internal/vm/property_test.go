package vm

import (
	"math/rand"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// TestMigrationReportInvariants randomizes the VM configuration and
// checks that every migration report obeys the pre-copy algorithm's
// structural invariants, whatever the parameters.
func TestMigrationReportInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		memMB := 16 << rng.Intn(3)             // 16/32/64 MB
		dirty := float64(500 + rng.Intn(4000)) // pages/s
		maxRounds := 5 + rng.Intn(25)
		cfg := Config{
			MemoryMB:  memMB,
			DirtyRate: dirty,
			MaxRounds: maxRounds,
		}
		w := buildWorld(t, int64(trial+1), []float64{100e6, 100e6}, []sim.Duration{
			10 * time.Millisecond, 20 * time.Millisecond,
		})
		guest := New(w.hosts[0], "vm", netsim.MakeIP(10, 0, 1, byte(trial+1)), cfg)
		var rep *MigrationReport
		var err error
		w.eng.Spawn("migrate", func(p *sim.Proc) {
			rep, err = guest.Migrate(p, w.hosts[1])
		})
		w.eng.RunFor(30 * time.Minute)
		if err != nil {
			t.Fatalf("trial %d (%+v): migrate: %v", trial, cfg, err)
		}
		if rep == nil {
			t.Fatalf("trial %d: migration did not finish", trial)
		}
		total := rep.Total()
		if rep.Downtime <= 0 || rep.Downtime > total {
			t.Errorf("trial %d: downtime %v outside (0, total=%v]", trial, rep.Downtime, total)
		}
		if rep.Rounds < 1 || rep.Rounds > maxRounds+1 {
			t.Errorf("trial %d: rounds %d outside [1, %d]", trial, rep.Rounds, maxRounds+1)
		}
		if rep.BytesSent < int64(memMB)<<20 {
			t.Errorf("trial %d: sent %d bytes < memory size %d", trial, rep.BytesSent, int64(memMB)<<20)
		}
		if len(rep.RoundBytes) != rep.Rounds {
			t.Errorf("trial %d: %d round records for %d rounds", trial, len(rep.RoundBytes), rep.Rounds)
		}
		var sum int64
		for r, b := range rep.RoundBytes {
			if b < 0 {
				t.Errorf("trial %d: round %d negative bytes", trial, r)
			}
			sum += b
		}
		if sum != rep.BytesSent {
			t.Errorf("trial %d: round bytes sum %d != total %d", trial, sum, rep.BytesSent)
		}
		// First round ships the whole image; later rounds only dirties.
		if rep.Rounds > 1 && rep.RoundBytes[0] < rep.RoundBytes[rep.Rounds-1] {
			t.Errorf("trial %d: final round (%d B) larger than full copy (%d B)",
				trial, rep.RoundBytes[rep.Rounds-1], rep.RoundBytes[0])
		}
		if rep.From != w.hosts[0].Name() || rep.To != w.hosts[1].Name() {
			t.Errorf("trial %d: report endpoints %s->%s", trial, rep.From, rep.To)
		}
		if guest.Host() != w.hosts[1] {
			t.Errorf("trial %d: VM not rehomed", trial)
		}
	}
}

// TestMigrationUnderPacketLoss injects WAN loss and requires the
// migration to complete anyway (the image moves over TCP, which
// recovers), with a plausible report.
func TestMigrationUnderPacketLoss(t *testing.T) {
	w := buildWorld(t, 7, []float64{50e6, 50e6}, []sim.Duration{
		15 * time.Millisecond, 30 * time.Millisecond,
	})
	w.nw.LossRate = 0.02
	guest := New(w.hosts[0], "vm", netsim.MakeIP(10, 0, 2, 1), Config{MemoryMB: 32})
	var rep *MigrationReport
	var err error
	w.eng.Spawn("migrate", func(p *sim.Proc) {
		rep, err = guest.Migrate(p, w.hosts[1])
	})
	w.eng.RunFor(time.Hour)
	if err != nil {
		t.Fatalf("migration under loss: %v", err)
	}
	if rep == nil {
		t.Fatal("migration did not finish under 2% loss")
	}
	if rep.BytesSent < 32<<20 {
		t.Fatalf("sent %d bytes, want at least the image", rep.BytesSent)
	}
	// The VM answers on the far side even with lossy WAN.
	var rtt sim.Duration
	var pingErr error
	w.eng.Spawn("ping", func(p *sim.Proc) {
		rtt, pingErr = w.hosts[0].Dom0().Ping(p, guest.IP(), 56, 20*time.Second)
		if pingErr != nil { // one echo may be unlucky under loss; retry once
			rtt, pingErr = w.hosts[0].Dom0().Ping(p, guest.IP(), 56, 20*time.Second)
		}
	})
	w.eng.RunFor(time.Minute)
	if pingErr != nil {
		t.Fatalf("migrated VM unreachable under loss: %v", pingErr)
	}
	if rtt <= 0 {
		t.Fatal("no rtt to migrated VM")
	}
}
