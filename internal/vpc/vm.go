// Tenant-aware VM placement: the reconciler's VM pass. A VMSpec
// declares where a VM plugs in (network + IP) and where it runs (a
// member host, or "" for a scheduler choice); this file diffs desired
// against live placement and converges it — booting VMs onto member
// segments (vm-place), moving them with the pre-copy live-migration
// engine when the desired host changes (vm-migrate), and detaching
// those the spec dropped (vm-evict). Migration traffic rides the
// members' per-network stacks, so the image transfer itself never
// leaves the tenant's overlay.

package vpc

import (
	"fmt"
	"sort"

	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/placement"
	"wavnet/internal/sim"
	"wavnet/internal/vm"
)

// vmPort adapts one network membership to vm.HostPort: the VM's vif
// attaches to the member's VNI segment (never the default bridge), and
// the migration channel runs over the member's per-network stack.
type vmPort struct {
	h    *core.Host
	vni  uint32
	dom0 *ipstack.Stack
}

func newVMPort(m *Member) *vmPort {
	return &vmPort{h: m.Host, vni: m.Net.VNI, dom0: m.Stack}
}

func (pt *vmPort) Name() string { return pt.h.Name() }

func (pt *vmPort) AttachVIF(name string) ether.NIC {
	nic, err := pt.h.AttachVIFOn(pt.vni, name)
	if err != nil {
		// A member's segment exists for as long as the membership does,
		// and the reconciler evicts VMs before members; losing it while
		// a VM is attached is a wiring error.
		panic(fmt.Sprintf("vpc: %s lost segment %d under a VM: %v", pt.h.Name(), pt.vni, err))
	}
	return nic
}

func (pt *vmPort) DetachVIF(nic ether.NIC) { pt.h.DetachVIF(nic) }
func (pt *vmPort) Dom0() *ipstack.Stack    { return pt.dom0 }
func (pt *vmPort) NewMAC() ether.MAC       { return pt.h.NewMAC() }
func (pt *vmPort) VirtualMTU() int         { return pt.h.SegmentMTU(pt.vni) }

// vmRec is the reconciler's memory of one placed VM.
type vmRec struct {
	spec VMSpec // normalized; Host as declared ("" = scheduler's call)
	host string // machine key the VM currently runs on
	vm   *vm.VM
}

// scheduler returns the manager's placement scheduler (created lazily).
func (mg *Manager) scheduler() *placement.Scheduler {
	if mg.sched == nil {
		mg.sched = placement.New(placement.Config{})
	}
	return mg.sched
}

// PlacementCounters exports the placement scheduler's decision
// statistics (placements, locality-core hits, broker filtering).
func (mg *Manager) PlacementCounters() *metrics.CounterSet {
	return mg.scheduler().Counters()
}

// vmRecByName resolves a managed VM record by name. Tenants are
// scanned in sorted order so a cross-tenant name collision resolves
// deterministically (to the lexically first tenant's VM).
func (mg *Manager) vmRecByName(name string) (*vmRec, bool) {
	tenants := make([]string, 0, len(mg.tenants))
	for t := range mg.tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if rec, ok := mg.tenants[t].vms[name]; ok {
			return rec, true
		}
	}
	return nil, false
}

// VM resolves a reconciler-managed VM by name across tenants.
func (mg *Manager) VM(name string) (*vm.VM, bool) {
	rec, ok := mg.vmRecByName(name)
	if !ok {
		return nil, false
	}
	return rec.vm, true
}

// VMHost reports the machine key a managed VM currently runs on.
func (mg *Manager) VMHost(name string) (string, bool) {
	rec, ok := mg.vmRecByName(name)
	if !ok {
		return "", false
	}
	return rec.host, true
}

// VMNames lists a tenant's managed VMs, sorted.
func (mg *Manager) VMNames(tenant string) []string {
	ts, ok := mg.tenants[tenant]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ts.vms))
	for name := range ts.vms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// vmPlacementEqual reports whether a live VM already satisfies the
// spec's immutable attachment (network, IP, image geometry). A mismatch
// means recreate, not migrate.
func vmPlacementEqual(live, want VMSpec) bool {
	return live.Network == want.Network &&
		live.IP == want.IP &&
		live.MemoryMB == want.MemoryMB &&
		live.DirtyRate == want.DirtyRate
}

// evictVM detaches one VM and drops its record, reporting the action.
// keepIP retains the address reservation: the pre-pass sets it when the
// desired spec still claims the same (network, IP) — the VM will be
// re-placed there later in the same apply, and releasing in between
// would let a DHCP member admitted by the membership pass lease the
// address out from under it.
func (mg *Manager) evictVM(ts *tenantState, name string, keepIP bool, rep *ApplyReport) {
	rec := ts.vms[name]
	rec.vm.Pause() // detaches the vif; the VM object is abandoned
	if n, ok := mg.networks[rec.spec.Network]; ok && !keepIP {
		n.releaseIP(rec.vm.IP())
	}
	delete(ts.vms, name)
	Action{Op: "vm-evict", Network: rec.spec.Network, Host: rec.host, Detail: name}.record(rep)
}

// reconcileVMsPre runs BEFORE networks and memberships change: it
// evicts every live VM the desired spec no longer supports — dropped
// outright, re-attached elsewhere (network/IP/geometry changed), on a
// network leaving the spec, or on a host leaving its network's member
// list. Anything evicted here that the spec still wants is re-placed by
// the main VM pass after memberships converge.
func (mg *Manager) reconcileVMsPre(spec *TenantSpec, ts *tenantState, rep *ApplyReport) {
	desired := make(map[string]VMSpec, len(spec.VMs))
	for _, vs := range spec.VMs {
		desired[vs.Name] = vs.normalized()
	}
	nets := make(map[string]*NetworkSpec, len(spec.Networks))
	for i := range spec.Networks {
		nets[spec.Networks[i].Name] = &spec.Networks[i]
	}
	names := make([]string, 0, len(ts.vms))
	for name := range ts.vms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := ts.vms[name]
		want, keep := desired[name]
		ns := nets[rec.spec.Network]
		hostStays := false
		if ns != nil {
			for _, m := range ns.Members {
				if m == rec.host {
					hostStays = true
					break
				}
			}
		}
		// The reservation survives the eviction when the spec still
		// claims the same address in the same network — the placement
		// pass re-places the VM there after memberships converge.
		keepIP := keep && want.Network == rec.spec.Network && want.IP == rec.spec.IP
		switch {
		case !keep:
			mg.evictVM(ts, name, false, rep)
		case !vmPlacementEqual(rec.spec, want):
			// The attachment itself changed: a migration cannot carry a
			// VM to a different network or address, so recreate.
			mg.evictVM(ts, name, keepIP, rep)
		case ns == nil || !hostStays:
			// The current host is leaving the VM's network (or the
			// network is going away entirely): the source end of any
			// migration would disappear mid-apply, so detach now and let
			// the placement pass boot it fresh on a surviving member.
			mg.evictVM(ts, name, keepIP, rep)
		}
	}
}

// reconcileVMs is the placement pass, run after memberships have
// converged: it places missing VMs (pinned host or scheduler choice)
// and live-migrates the ones whose desired host moved.
func (mg *Manager) reconcileVMs(p *sim.Proc, spec *TenantSpec, ts *tenantState, fab Fabric, rep *ApplyReport) error {
	for i := range spec.VMs {
		want := spec.VMs[i].normalized()
		n := mg.networks[want.Network]
		rec, live := ts.vms[want.Name]
		if live {
			// Attachment already matches (the pre-pass evicted
			// mismatches); converge the host.
			target := want.Host
			if target == "" {
				target = rec.host // scheduler choices are sticky
			}
			rec.spec = want
			if target == rec.host {
				continue
			}
			dstM, ok := n.Member(target)
			if !ok {
				return fmt.Errorf("vpc: VM %q: migration target %s is not a member of %s",
					want.Name, target, want.Network)
			}
			dst := newVMPort(dstM)
			// Parent the migration span under this apply's span, so the
			// timeline shows which reconcile ordered the move.
			rec.vm.SetTraceParent(rep.span)
			mrep, err := rec.vm.Migrate(p, dst)
			if err != nil {
				return fmt.Errorf("vpc: VM %q: migrate %s -> %s: %w", want.Name, rec.host, target, err)
			}
			from := rec.host
			rec.host = target
			Action{Op: "vm-migrate", Network: want.Network, Host: target,
				Detail: fmt.Sprintf("%s from %s in %.1fs (downtime %.0fms)",
					want.Name, from, mrep.Total().Seconds(),
					float64(mrep.Downtime)/1e6)}.record(rep)
			continue
		}
		// Place: pinned host, or the scheduler's pick over the network's
		// members.
		target := want.Host
		if target == "" {
			choice, err := mg.placeVM(want, n, ts, fab)
			if err != nil {
				return fmt.Errorf("vpc: VM %q: %w", want.Name, err)
			}
			target = choice
		}
		m, ok := n.Member(target)
		if !ok {
			return fmt.Errorf("vpc: VM %q: host %s is not a member of %s", want.Name, target, want.Network)
		}
		ip, _ := netsim.ParseIP(want.IP) // validated
		// Pin the address: a VM must never share an IP with a member's
		// stack, and neither static assignment nor the DHCP pool may
		// hand it out later.
		if err := n.reserveIP(ip); err != nil {
			return fmt.Errorf("vpc: VM %q: %w", want.Name, err)
		}
		v := vm.New(newVMPort(m), want.Name, ip, vm.Config{
			MemoryMB:  want.MemoryMB,
			DirtyRate: want.DirtyRate,
			Tracer:    mg.tracer,
		})
		ts.vms[want.Name] = &vmRec{spec: want, host: target, vm: v}
		Action{Op: "vm-place", Network: want.Network, Host: target,
			Detail: fmt.Sprintf("%s %s (%d MB)", want.Name, want.IP, want.MemoryMB)}.record(rep)
	}
	// Reservation sweep: with every desired VM placed, any reserved
	// address no live VM holds is an orphan — left by a kept-through-
	// eviction reservation whose apply failed before re-placement, then
	// resolved by a later spec that dropped the VM. Release them so the
	// pools get the addresses back. Service VIPs also live in the
	// reserved map (including those carried through a same-apply
	// rebuild, which the service pass re-binds after this sweep), so
	// they count as claimed.
	for i := range spec.Networks {
		n, ok := mg.networks[spec.Networks[i].Name]
		if !ok {
			continue
		}
		claimed := make(map[netsim.IP]bool)
		for _, rec := range ts.vms {
			if rec.spec.Network == n.Name {
				claimed[rec.vm.IP()] = true
			}
		}
		for _, rec := range ts.services {
			if rec.spec.Network == n.Name && rec.vip != 0 {
				claimed[rec.vip] = true
			}
		}
		for ip := range n.reserved {
			if !claimed[ip] {
				n.releaseIP(ip)
			}
		}
	}
	return nil
}

// ScrapeInto adds the control plane's labeled series to r: every
// managed VM's migration counters under the VM's {tenant, net, host}
// labels (prefixed "vm."), every live service's probe counters under
// the service's {tenant, net} labels (prefixed "service.<name>."), and
// the placement scheduler's decision counters under a "placement."
// prefix when the scheduler has run.
func (mg *Manager) ScrapeInto(r *obs.Registry) {
	tenants := make([]string, 0, len(mg.tenants))
	for t := range mg.tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		ts := mg.tenants[t]
		names := make([]string, 0, len(ts.vms))
		for name := range ts.vms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec := ts.vms[name]
			r.AddCounterSetPrefix("vm.",
				obs.Labels{Tenant: t, Net: rec.spec.Network, Host: rec.host},
				rec.vm.Counters())
		}
		svcNames := make([]string, 0, len(ts.services))
		for name := range ts.services {
			svcNames = append(svcNames, name)
		}
		sort.Strings(svcNames)
		for _, name := range svcNames {
			rec := ts.services[name]
			if rec.svc == nil {
				continue
			}
			r.AddCounterSetPrefix("service."+name+".",
				obs.Labels{Tenant: t, Net: rec.spec.Network},
				rec.svc.Counters())
		}
	}
	if mg.sched != nil {
		r.AddCounterSetPrefix("placement.", obs.Labels{}, mg.sched.Counters())
	}
}

// placeVM asks the placement scheduler for a host: candidates are the
// network's members with their declared home brokers and current VM
// load, scored against the distance locator's measured RTT matrix.
func (mg *Manager) placeVM(want VMSpec, n *Network, ts *tenantState, fab Fabric) (string, error) {
	members := n.Members()
	cands := make([]placement.Candidate, 0, len(members))
	for _, m := range members {
		key := m.Host.Name()
		c := placement.Candidate{Key: key, Broker: fab.HomeBroker(key)}
		for _, rec := range ts.vms {
			if rec.host == key {
				c.VMs++
				c.MemMB += rec.spec.MemoryMB
			}
		}
		cands = append(cands, c)
	}
	names, rtts := fab.Locality(n.Name)
	dec, err := mg.scheduler().Choose(placement.Request{
		VM:       want.Name,
		MemoryMB: want.MemoryMB,
		Brokers:  n.Brokers,
	}, cands, names, rtts)
	if err != nil {
		return "", err
	}
	return dec.Host, nil
}
