// Tenant L3 services: the reconciler's service pass. A ServiceSpec
// declares a VIP (pinned, or drawn from the network's ServicePool), a
// backend set of member hosts and/or managed VMs, and a steering
// policy; this file diffs desired against live services and converges
// them through the service controller (internal/service) — reserving
// the VIP against the network's address pools exactly like a VM
// address, programming every member host's steering table, announcing
// rendezvous-layer VIP records through the anchor's home broker, and
// running the health-probe loop that withdraws dead backends.
//
// The pass is split like the VM pass: a pre-pass (before any network or
// membership change) stops every service the spec dropped or changed —
// while its network, members and backends still exist — and a main
// pass (after VM placement, so backend VMs are resolved post-migration)
// builds what the spec wants. A service rebuilt in the same apply keeps
// its VIP reservation and inherits observed backend health.

package vpc

import (
	"fmt"
	"sort"

	"wavnet/internal/core"
	"wavnet/internal/netsim"
	"wavnet/internal/service"
	"wavnet/internal/sim"
)

// svcRec is the reconciler's memory of one applied service.
type svcRec struct {
	spec ServiceSpec // normalized
	vip  netsim.IP   // resolved VIP, reserved in the network
	svc  *service.Service
	// health is the last observed backend health, stashed when the
	// pre-pass stops a changed service so the rebuild inherits it.
	health map[string]bool
}

// svcRecByName resolves a managed service record by name, scanning
// tenants in sorted order (like vmRecByName).
func (mg *Manager) svcRecByName(name string) (*svcRec, bool) {
	tenants := make([]string, 0, len(mg.tenants))
	for t := range mg.tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if rec, ok := mg.tenants[t].services[name]; ok {
			return rec, true
		}
	}
	return nil, false
}

// Service resolves a reconciler-managed service by name across tenants.
func (mg *Manager) Service(name string) (*service.Service, bool) {
	rec, ok := mg.svcRecByName(name)
	if !ok || rec.svc == nil {
		return nil, false
	}
	return rec.svc, true
}

// ServiceVIP reports the resolved VIP of a managed service.
func (mg *Manager) ServiceVIP(name string) (netsim.IP, bool) {
	rec, ok := mg.svcRecByName(name)
	if !ok {
		return 0, false
	}
	return rec.vip, true
}

// ServiceNames lists a tenant's managed services, sorted.
func (mg *Manager) ServiceNames(tenant string) []string {
	ts, ok := mg.tenants[tenant]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ts.services))
	for name := range ts.services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// evictService stops one service and drops its record: probe loop down,
// VIP records retracted, steering tables cleared, the VIP reservation
// released back to the network's pools.
func (mg *Manager) evictService(ts *tenantState, name string, rep *ApplyReport) {
	rec := ts.services[name]
	if rec.svc != nil {
		rec.svc.Stop()
	}
	if n, ok := mg.networks[rec.spec.Network]; ok && rec.vip != 0 {
		n.releaseIP(rec.vip)
	}
	delete(ts.services, name)
	Action{Op: "service-evict", Network: rec.spec.Network,
		Detail: fmt.Sprintf("%s vip %s", name, rec.vip)}.record(rep)
}

// reconcileServicesPre runs FIRST, before any network, membership or VM
// change: services the spec dropped (or whose network is going away)
// are evicted outright; services whose spec changed are stopped — their
// backends, members and probe targets may be about to move — with the
// VIP reservation and observed health carried over for the main pass to
// rebuild from. Runs before the VM pre-pass so a service never probes a
// backend that was detached under it.
func (mg *Manager) reconcileServicesPre(spec *TenantSpec, ts *tenantState, rep *ApplyReport) {
	desired := make(map[string]ServiceSpec, len(spec.Services))
	for _, ss := range spec.Services {
		desired[ss.Name] = ss.normalized()
	}
	nets := make(map[string]bool, len(spec.Networks))
	for i := range spec.Networks {
		nets[spec.Networks[i].Name] = true
	}
	names := make([]string, 0, len(ts.services))
	for name := range ts.services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := ts.services[name]
		want, keep := desired[name]
		switch {
		case !keep, !nets[rec.spec.Network], keep && want.Network != rec.spec.Network:
			mg.evictService(ts, name, rep)
		case !serviceSpecEqual(rec.spec, want):
			// Stop now, rebuild in the main pass (reported there as one
			// service-update). The VIP reservation survives when the new
			// spec resolves to the same address: pinned to it, or drawing
			// from the pool (sticky allocation).
			if rec.svc != nil {
				rec.health = rec.svc.HealthSnapshot()
				rec.svc.Stop()
				rec.svc = nil
			}
			if want.VIP != "" {
				if vip, err := netsim.ParseIP(want.VIP); err == nil && vip != rec.vip {
					if n, ok := mg.networks[rec.spec.Network]; ok && rec.vip != 0 {
						n.releaseIP(rec.vip)
					}
					rec.vip = 0
				}
			}
		}
	}
}

// reconcileServices is the main service pass, run LAST — after
// memberships converged and the VM pass placed or migrated every
// backend VM — so backends resolve to their final host, address and
// stack. Unchanged live services are left untouched (re-apply is a
// no-op); everything else is built, reported as service-create for new
// names and service-update for rebuilt ones.
func (mg *Manager) reconcileServices(spec *TenantSpec, ts *tenantState, fab Fabric, rep *ApplyReport) error {
	for i := range spec.Services {
		want := spec.Services[i].normalized()
		n := mg.networks[want.Network]
		rec := ts.services[want.Name]
		backends, err := mg.resolveBackends(want, n, ts)
		if err != nil {
			return err
		}
		var vip netsim.IP
		switch {
		case want.VIP != "":
			vip, _ = netsim.ParseIP(want.VIP) // validated
		case rec != nil && rec.vip != 0:
			vip = rec.vip // sticky pool allocation
		default:
			vip, err = n.allocVIP()
			if err != nil {
				return fmt.Errorf("vpc: service %q: %w", want.Name, err)
			}
		}
		if rec != nil && rec.svc != nil && rec.vip == vip &&
			serviceSpecEqual(rec.spec, want) && backendsEqual(rec.svc.Backends(), backends) {
			continue // in sync
		}
		existed := rec != nil
		var health map[string]bool
		if rec != nil {
			health = rec.health
			if rec.svc != nil {
				// Live but drifted (a backend VM migrated, a member's
				// stack changed): rebuild in place with observed health.
				health = rec.svc.HealthSnapshot()
				rec.svc.Stop()
			}
			if rec.vip != 0 && rec.vip != vip {
				n.releaseIP(rec.vip)
			}
		}
		if rec == nil || rec.vip != vip {
			if err := n.reserveIP(vip); err != nil {
				return fmt.Errorf("vpc: service %q: %w", want.Name, err)
			}
		}
		anchorM := n.Members()[0]
		members := make([]*core.Host, 0, len(n.order))
		for _, m := range n.Members() {
			members = append(members, m.Host)
		}
		netName := want.Network
		dist := func(from, to string) (sim.Duration, bool) {
			names, rtts := fab.Locality(netName)
			fi, ti := -1, -1
			for k, nm := range names {
				if nm == from {
					fi = k
				}
				if nm == to {
					ti = k
				}
			}
			if fi < 0 || ti < 0 || rtts[fi][ti] == 0 {
				return 0, false
			}
			return rtts[fi][ti], true
		}
		svc := service.New(anchorM.Host.Phys().Engine(), service.Config{
			Name: want.Name, Tenant: spec.Tenant, Net: want.Network,
			VNI: n.VNI, VIP: vip, Policy: want.Policy,
			Interval: want.Interval, Timeout: want.Timeout,
			Fall: want.Fall, Rise: want.Rise,
			Distance: dist, Tracer: mg.tracer, InitialHealth: health,
		}, anchorM.Host, anchorM.Stack, members, backends)
		svc.Start()
		ts.services[want.Name] = &svcRec{spec: want, vip: vip, svc: svc}
		op := "service-create"
		if existed {
			op = "service-update"
		}
		Action{Op: op, Network: want.Network,
			Detail: fmt.Sprintf("%s vip %s %s, %d backend(s)",
				want.Name, vip, want.Policy, len(backends))}.record(rep)
	}
	return nil
}

// resolveBackends pins each declared backend down to what the steering
// layer needs: the member's (or VM's) current host, address, MAC and
// stack. Declared order becomes the failover rank.
func (mg *Manager) resolveBackends(want ServiceSpec, n *Network, ts *tenantState) ([]service.Backend, error) {
	out := make([]service.Backend, 0, len(want.Backends))
	for i, bs := range want.Backends {
		if bs.Member != "" {
			m, ok := n.Member(bs.Member)
			if !ok {
				return nil, fmt.Errorf("vpc: service %q: backend %s is not admitted into %s",
					want.Name, bs.Member, n.Name)
			}
			out = append(out, service.Backend{
				Name: bs.Member, Host: m.Host.Name(), IP: m.IP,
				MAC: m.Stack.MAC(), Order: i, Stack: m.Stack,
			})
			continue
		}
		rec, ok := ts.vms[bs.VM]
		if !ok {
			return nil, fmt.Errorf("vpc: service %q: backend VM %q is not placed", want.Name, bs.VM)
		}
		out = append(out, service.Backend{
			Name: bs.VM, Host: rec.host, IP: rec.vm.IP(),
			MAC: rec.vm.MAC(), Order: i, Stack: rec.vm.Stack(),
		})
	}
	return out, nil
}

// backendsEqual compares two resolved backend sets field by field
// (both sides sorted by name; the stack pointer identifies the actual
// instance — a recreated VM resolves unequal even at the same address).
func backendsEqual(a, b []service.Backend) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]service.Backend(nil), a...)
	bs := append([]service.Backend(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// allocVIP hands out the first free address of the service pool.
func (n *Network) allocVIP() (netsim.IP, error) {
	if !n.hasPool {
		return 0, fmt.Errorf("network %q declares no service pool", n.Name)
	}
	for ip := n.svcPool.Base; ip <= n.svcPool.Broadcast(); ip++ {
		if !n.reserved[ip] {
			return ip, nil
		}
	}
	return 0, ErrPoolExhausted
}
