package vpc_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestApplyServiceLifecycle drives one service through its declarative
// life: creation with a pool-drawn VIP, idempotent re-apply, a probe
// knob change (VIP stays sticky), a VIP re-pin, eviction, and a full
// tenant teardown where the service pre-pass runs before any eviction.
func TestApplyServiceLifecycle(t *testing.T) {
	w, err := scenario.Build(19, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustApply := func(spec vpc.TenantSpec, wantOps string) {
		t.Helper()
		rep, err := apply(t, w, spec)
		if err != nil {
			t.Fatalf("apply: %v (report so far: %v)", err, rep)
		}
		if got := ops(rep); got != wantOps {
			t.Fatalf("ops = %q, want %q", got, wantOps)
		}
		again, err := apply(t, w, spec)
		if err != nil {
			t.Fatalf("re-apply: %v", err)
		}
		if !again.Empty() {
			t.Fatalf("re-apply not idempotent: %v", again)
		}
	}

	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "app", CIDR: "10.34.0.0/24", StaticAddressing: true,
			ServicePool: "10.34.0.64/28",
			Members:     []string{"pc00", "pc01", "pc02"},
		}},
		Services: []vpc.ServiceSpec{{
			Name: "web", Network: "app",
			Backends: []vpc.BackendSpec{{Member: "pc01"}, {Member: "pc02"}},
		}},
	}
	mustApply(spec, "create-network,admit,admit,admit,service-create")
	vip, ok := w.VPC().ServiceVIP("web")
	if !ok || vip.String() != "10.34.0.64" {
		t.Fatalf("VIP = %v (ok=%v), want first pool address 10.34.0.64", vip, ok)
	}
	svc, ok := w.VPC().Service("web")
	if !ok || !svc.Running() {
		t.Fatal("service not running after apply")
	}

	// Members never landed inside the carve-out.
	n, _ := w.VPC().Get("app")
	for _, m := range n.Members() {
		if pool, has := n.ServicePool(); has && pool.Contains(m.IP) {
			t.Fatalf("member %s addressed inside the service pool: %s", m.Host.Name(), m.IP)
		}
	}

	// A probe-budget change rebuilds the service; the pool allocation is
	// sticky across the rebuild.
	spec.Services[0].Fall = 5
	mustApply(spec, "service-update")
	if vip2, _ := w.VPC().ServiceVIP("web"); vip2 != vip {
		t.Fatalf("VIP moved across a knob change: %s -> %s", vip, vip2)
	}

	// Re-pinning the VIP moves the service and releases the old address
	// back to the pool: a second service allocates it.
	spec.Services[0].VIP = "10.34.0.70"
	mustApply(spec, "service-update")
	if vip2, _ := w.VPC().ServiceVIP("web"); vip2.String() != "10.34.0.70" {
		t.Fatalf("VIP = %s after re-pin, want 10.34.0.70", vip2)
	}
	spec.Services = append(spec.Services, vpc.ServiceSpec{
		Name: "api", Network: "app",
		Backends: []vpc.BackendSpec{{Member: "pc02"}},
	})
	mustApply(spec, "service-create")
	if vip2, _ := w.VPC().ServiceVIP("api"); vip2.String() != "10.34.0.64" {
		t.Fatalf("api VIP = %s, want the released 10.34.0.64", vip2)
	}

	// Dropping one service evicts exactly it.
	spec.Services = spec.Services[:1]
	mustApply(spec, "service-evict")
	if _, ok := w.VPC().Service("api"); ok {
		t.Fatal("api still resolvable after eviction")
	}

	// Full teardown in one apply: the service pre-pass stops the service
	// while its network and backends still exist, then members leave,
	// then the network goes.
	spec.Networks = nil
	spec.Services = nil
	mustApply(spec, "service-evict,evict,evict,evict,delete-network")
	if svc.Running() {
		t.Fatal("service still running after teardown")
	}
	if names := w.VPC().ServiceNames("acme"); len(names) != 0 {
		t.Fatalf("services survive teardown: %v", names)
	}
}

// TestApplyServiceVIPReservationBlocksDHCP: a pinned VIP on a DHCP
// network is reserved against the network's server at service
// admission — a later member must lease around it — and released at
// eviction.
func TestApplyServiceVIPReservationBlocksDHCP(t *testing.T) {
	w, err := scenario.Build(23, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.35.0.0/24",
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	// Pool starts at .2; pc01 leased it. The VIP pins .3, which the
	// server would otherwise offer to the next client.
	spec.Services = []vpc.ServiceSpec{{
		Name: "web", Network: "vnet", VIP: "10.35.0.3",
		Backends: []vpc.BackendSpec{{Member: "pc01"}},
	}}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.Networks[0].Members = append(spec.Networks[0].Members, "pc02")
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	n, _ := w.VPC().Get("vnet")
	m, _ := n.Member("pc02")
	if m.IP.String() != "10.35.0.4" {
		t.Fatalf("pc02 leased %s, want 10.35.0.4 (VIP holds .3)", m.IP)
	}

	// Eviction releases the address: the next member leases it.
	spec.Services = nil
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.Networks[0].Members = append(spec.Networks[0].Members, "pc03")
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	m3, _ := n.Member("pc03")
	if m3.IP.String() != "10.35.0.3" {
		t.Fatalf("pc03 leased %s, want the released 10.35.0.3", m3.IP)
	}
}

// TestApplyServiceRejects: invalid service declarations must be refused
// at validation, before the apply mutates anything.
func TestApplyServiceRejects(t *testing.T) {
	w, err := scenario.Build(29, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := func() vpc.TenantSpec {
		return vpc.TenantSpec{
			Tenant: "acme",
			Networks: []vpc.NetworkSpec{{
				Name: "app", CIDR: "10.36.0.0/24", StaticAddressing: true,
				ServicePool: "10.36.0.64/28",
				Members:     []string{"pc00", "pc01"},
			}},
			VMs: []vpc.VMSpec{{Name: "job", Network: "app", IP: "10.36.0.40", MemoryMB: 16, Host: "pc00"}},
			Services: []vpc.ServiceSpec{{
				Name: "web", Network: "app",
				Backends: []vpc.BackendSpec{{Member: "pc01"}},
			}},
		}
	}
	cases := []struct {
		name string
		mut  func(*vpc.TenantSpec)
		want string
	}{
		{"vip outside the declared pool", func(s *vpc.TenantSpec) {
			s.Services[0].VIP = "10.36.0.5"
		}, "outside network \"app\"'s declared service pool"},
		{"vip outside the network", func(s *vpc.TenantSpec) {
			s.Services[0].VIP = "10.99.0.5"
		}, "outside network"},
		{"vip on the gateway", func(s *vpc.TenantSpec) {
			s.Services[0].VIP = "10.36.0.1"
		}, "gateway"},
		{"backend outside the network", func(s *vpc.TenantSpec) {
			s.Services[0].Backends = []vpc.BackendSpec{{Member: "pc02"}}
		}, "not a member of network"},
		{"backend names unknown vm", func(s *vpc.TenantSpec) {
			s.Services[0].Backends = []vpc.BackendSpec{{VM: "ghost"}}
		}, "unknown VM"},
		{"backend names both member and vm", func(s *vpc.TenantSpec) {
			s.Services[0].Backends = []vpc.BackendSpec{{Member: "pc01", VM: "job"}}
		}, "exactly one"},
		{"unpooled network with unpinned vip", func(s *vpc.TenantSpec) {
			s.Networks[0].ServicePool = ""
		}, "declares no service pool"},
		{"duplicate vip", func(s *vpc.TenantSpec) {
			s.Services[0].VIP = "10.36.0.70"
			s.Services = append(s.Services, vpc.ServiceSpec{
				Name: "web2", Network: "app", VIP: "10.36.0.70",
				Backends: []vpc.BackendSpec{{Member: "pc00"}},
			})
		}, "two services claim VIP"},
		{"vm address inside the pool", func(s *vpc.TenantSpec) {
			s.VMs[0].IP = "10.36.0.65"
		}, "falls inside network"},
		{"pool not strictly inside the cidr", func(s *vpc.TenantSpec) {
			s.Networks[0].ServicePool = "10.36.0.240/28"
			s.Services[0].VIP = "10.36.0.241"
		}, "strictly inside"},
		{"negative probe budget", func(s *vpc.TenantSpec) {
			s.Services[0].Timeout = -time.Second
		}, "negative probe budget"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mut(&spec)
		_, err := apply(t, w, spec)
		if err == nil {
			t.Fatalf("%s: apply succeeded, want rejection", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The world is untouched: the valid base spec still converges from
	// scratch.
	if _, err := apply(t, w, base()); err != nil {
		t.Fatalf("base spec after rejections: %v", err)
	}
}

// TestServiceTeardownGuards: imperative teardown around a live service
// is refused — the network cannot be deleted, a backend cannot be
// evicted — while the spec-driven path converges deterministically.
func TestServiceTeardownGuards(t *testing.T) {
	w, err := scenario.Build(31, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "app", CIDR: "10.37.0.0/24", StaticAddressing: true,
			ServicePool: "10.37.0.64/28",
			Members:     []string{"pc00", "pc01"},
		}},
		Services: []vpc.ServiceSpec{{
			Name: "web", Network: "app",
			Backends: []vpc.BackendSpec{{Member: "pc01"}},
		}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}

	if err := w.VPC().Delete("app"); !errors.Is(err, vpc.ErrNotEmpty) {
		t.Fatalf("Delete of a populated network = %v, want ErrNotEmpty", err)
	}
	var evictErr error
	done := false
	w.Eng.Spawn("evict", func(p *sim.Proc) {
		evictErr = w.VPC().Evict(p, w.M("pc01").WAV, "app")
		done = true
	})
	w.Eng.RunFor(10 * time.Second)
	if !done {
		t.Fatal("evict never finished")
	}
	if evictErr == nil || !strings.Contains(evictErr.Error(), "still backs service") {
		t.Fatalf("evicting a live backend = %v, want a service guard", evictErr)
	}

	// The declarative path tears everything down in one deterministic
	// apply: service first, then members, then the network.
	spec.Networks = nil
	spec.Services = nil
	rep, err := apply(t, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ops(rep); got != "service-evict,evict,evict,delete-network" {
		t.Fatalf("teardown ops = %q", got)
	}
	if _, ok := w.VPC().Get("app"); ok {
		t.Fatal("network survives teardown")
	}
}
