package vpc_test

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

func TestParseCIDR(t *testing.T) {
	c, err := vpc.ParseCIDR("10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if c.Base != netsim.MustParseIP("10.0.0.0") || c.Bits != 24 {
		t.Fatalf("parsed %v", c)
	}
	if c.Mask() != netsim.MustParseIP("255.255.255.0") {
		t.Fatalf("mask %v", c.Mask())
	}
	if c.Broadcast() != netsim.MustParseIP("10.0.0.255") {
		t.Fatalf("broadcast %v", c.Broadcast())
	}
	if !c.Contains(netsim.MustParseIP("10.0.0.77")) || c.Contains(netsim.MustParseIP("10.0.1.1")) {
		t.Fatal("containment wrong")
	}
	// Non-aligned bases are truncated to the prefix.
	c2, err := vpc.ParseCIDR("10.0.0.9/24")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Base != netsim.MustParseIP("10.0.0.0") {
		t.Fatalf("base not masked: %v", c2.Base)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/4", "nope/24", "10.0.0/24",
		"10.0.0.0/24x", "10.0.0.0/2 4", "10.0.0.0/24.", "10.0.0.0/"} {
		if _, err := vpc.ParseCIDR(bad); err == nil {
			t.Fatalf("ParseCIDR(%q) accepted", bad)
		}
	}
}

func TestManagerCRUD(t *testing.T) {
	mg := vpc.NewManager()
	red, err := mg.Create("red", "10.0.0.0/24", vpc.NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if red.VNI != 1 {
		t.Fatalf("auto VNI = %d, want 1", red.VNI)
	}
	blue, err := mg.Create("blue", "10.0.0.0/24", vpc.NetworkConfig{Default: true})
	if err != nil {
		t.Fatal(err)
	}
	if blue.VNI != 2 {
		t.Fatalf("auto VNI = %d, want 2", blue.VNI)
	}
	if _, err := mg.Create("red", "10.1.0.0/24", vpc.NetworkConfig{}); err != vpc.ErrNetworkExists {
		t.Fatalf("duplicate name: %v", err)
	}
	if _, err := mg.Create("green", "10.2.0.0/24", vpc.NetworkConfig{VNI: 2}); err != vpc.ErrVNIInUse {
		t.Fatalf("duplicate VNI: %v", err)
	}
	if _, err := mg.Create("usurper", "10.3.0.0/24", vpc.NetworkConfig{Default: true}); err != vpc.ErrDefaultExists {
		t.Fatalf("second default: %v", err)
	}
	if n, ok := mg.Get(""); !ok || n != blue {
		t.Fatal("default network not resolved")
	}
	if got := mg.Networks(); len(got) != 2 || got[0].Name != "blue" || got[1].Name != "red" {
		t.Fatalf("Networks() = %v", got)
	}
	if err := mg.Delete("red"); err != nil {
		t.Fatal(err)
	}
	if _, ok := mg.Get("red"); ok {
		t.Fatal("deleted network still resolvable")
	}
	// A deleted network's VNI may not come back even by explicit
	// pinning: stale segments for it could still pass the tag check.
	if _, err := mg.Create("necro", "10.4.0.0/24", vpc.NetworkConfig{VNI: red.VNI}); err != vpc.ErrVNIRetired {
		t.Fatalf("pinned retired VNI: %v", err)
	}
	if _, err := mg.Create("green", "10.2.0.0/24", vpc.NetworkConfig{}); err != nil {
		t.Fatal(err)
	}
	if n, _ := mg.Get("green"); n.VNI == red.VNI || n.VNI == blue.VNI {
		t.Fatalf("VNI %d reused", n.VNI)
	}
}

// TestTwoTenantsOverlappingCIDR is the subsystem's acceptance test: two
// VPCs with the SAME 10.0.0.0/24 address space run concurrently over
// one shared physical WAN. Intra-tenant ping succeeds, cross-tenant
// ping (to an address only the other tenant owns) fails because ARP
// never resolves across tenants, and rendezvous Lookup from a tenant
// host sees co-tenants only.
func TestTwoTenantsOverlappingCIDR(t *testing.T) {
	w, err := scenario.Build(1, scenario.EmulatedWANSpecs(5, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateVPC("red", "10.0.0.0/24"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateVPC("blue", "10.0.0.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := w.JoinVPC("red", "pc00", "pc01"); err != nil {
		t.Fatal(err)
	}
	if err := w.JoinVPC("blue", "pc02", "pc03", "pc04"); err != nil {
		t.Fatal(err)
	}
	red, _ := w.VPC().Get("red")
	blue, _ := w.VPC().Get("blue")

	// Overlap: both anchors sit on 10.0.0.1, both second members lease
	// 10.0.0.2 from their own pool.
	rm, bm := red.Members(), blue.Members()
	if len(rm) != 2 || len(bm) != 3 {
		t.Fatalf("membership %d/%d", len(rm), len(bm))
	}
	if rm[0].IP != bm[0].IP || rm[0].IP != netsim.MustParseIP("10.0.0.1") {
		t.Fatalf("anchors %v/%v, want both 10.0.0.1", rm[0].IP, bm[0].IP)
	}
	if rm[1].IP != bm[1].IP || rm[1].IP != netsim.MustParseIP("10.0.0.2") {
		t.Fatalf("second members %v/%v, want both 10.0.0.2", rm[1].IP, bm[1].IP)
	}
	if blue.DHCPServer() == nil || len(blue.DHCPServer().Leases()) != 2 {
		t.Fatalf("blue DHCP leases = %v", blue.DHCPServer().Leases())
	}

	// Intra-tenant ping succeeds in both tenants — concurrently, on the
	// same addresses.
	var redRTT, blueRTT sim.Duration
	var redErr, blueErr error
	w.Eng.Spawn("red-ping", func(p *sim.Proc) {
		rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second) // warm ARP
		redRTT, redErr = rm[0].Stack.Ping(p, rm[1].IP, 56, 5*time.Second)
	})
	w.Eng.Spawn("blue-ping", func(p *sim.Proc) {
		bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
		blueRTT, blueErr = bm[0].Stack.Ping(p, bm[1].IP, 56, 5*time.Second)
	})
	w.Eng.RunFor(30 * time.Second)
	if redErr != nil || blueErr != nil {
		t.Fatalf("intra-tenant ping: red=%v blue=%v", redErr, blueErr)
	}
	if redRTT <= 0 || blueRTT <= 0 {
		t.Fatalf("rtts %v/%v", redRTT, blueRTT)
	}

	// Cross-tenant: 10.0.0.3 exists in blue only. A red host pinging it
	// gets nothing — its ARP broadcast never leaves the red tenant.
	target := bm[2].IP
	if target != netsim.MustParseIP("10.0.0.3") {
		t.Fatalf("blue third member at %v", target)
	}
	var crossErr, blueToThirdErr error
	w.Eng.Spawn("cross-ping", func(p *sim.Proc) {
		_, crossErr = rm[0].Stack.Ping(p, target, 56, 5*time.Second)
	})
	w.Eng.Spawn("blue-third", func(p *sim.Proc) {
		bm[0].Stack.Ping(p, target, 56, 5*time.Second)
		_, blueToThirdErr = bm[0].Stack.Ping(p, target, 56, 5*time.Second)
	})
	w.Eng.RunFor(30 * time.Second)
	if crossErr == nil {
		t.Fatal("cross-tenant ping succeeded; tenants are not isolated")
	}
	if blueToThirdErr != nil {
		t.Fatalf("blue-internal ping to %v failed: %v", target, blueToThirdErr)
	}

	// Rendezvous scoping: a red host resolves co-tenants but not blue
	// hosts, and a brokered cross-tenant connect is refused.
	redHost := rm[0].Host
	var coRecs, crossRecs int
	var lookErr, connErr error
	w.Eng.Spawn("lookups", func(p *sim.Proc) {
		recs, err := redHost.Lookup(p, "pc01")
		if err != nil {
			lookErr = err
			return
		}
		coRecs = len(recs)
		recs, err = redHost.Lookup(p, "pc02")
		if err != nil {
			lookErr = err
			return
		}
		crossRecs = len(recs)
		_, connErr = redHost.ConnectTo(p, "pc02")
	})
	w.Eng.RunFor(90 * time.Second)
	if lookErr != nil {
		t.Fatalf("lookup: %v", lookErr)
	}
	if coRecs != 1 {
		t.Fatalf("co-tenant lookup returned %d records, want 1", coRecs)
	}
	if crossRecs != 0 {
		t.Fatalf("cross-tenant lookup returned %d records, want 0", crossRecs)
	}
	if connErr == nil {
		t.Fatal("cross-tenant ConnectTo succeeded")
	}
	if !strings.Contains(connErr.Error(), "cross-tenant") &&
		connErr != nil && !strings.Contains(connErr.Error(), "punch") {
		t.Logf("cross-tenant connect failed with: %v", connErr)
	}

	// No tunnel ever crossed tenants, so no frames were dropped by the
	// data-plane tag check either — isolation held at the control plane.
	for _, m := range append(rm, bm...) {
		for peer := range m.Host.Tunnels() {
			sameNet := false
			for _, co := range append(rm, bm...) {
				if co.Host.Name() == peer {
					n1, _ := m.Host.Network()
					n2, _ := co.Host.Network()
					sameNet = n1 == n2
				}
			}
			if !sameNet {
				t.Fatalf("%s holds a tunnel to foreign host %s", m.Host.Name(), peer)
			}
		}
	}
}

// TestEvict checks membership teardown ordering.
func TestEvict(t *testing.T) {
	w, err := scenario.Build(3, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateVPC("solo", "10.5.0.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := w.JoinVPC("solo"); err != nil {
		t.Fatal(err)
	}
	n, _ := w.VPC().Get("solo")
	anchor := n.Members()[0]
	other := n.Members()[1]
	if err := w.VPC().Delete("solo"); err != vpc.ErrNotEmpty {
		t.Fatalf("delete non-empty: %v", err)
	}
	var pinErr, evictOtherErr, evictAnchorErr error
	w.Eng.Spawn("evict", func(p *sim.Proc) {
		pinErr = w.VPC().Evict(p, anchor.Host, "solo")
		evictOtherErr = w.VPC().Evict(p, other.Host, "solo")
		evictAnchorErr = w.VPC().Evict(p, anchor.Host, "solo")
	})
	w.Eng.RunFor(time.Minute)
	if pinErr != vpc.ErrAnchorPinned {
		t.Fatalf("anchor evict: %v", pinErr)
	}
	if evictOtherErr != nil || evictAnchorErr != nil {
		t.Fatalf("evict: %v / %v", evictOtherErr, evictAnchorErr)
	}
	// Eviction must restore the hosts' default scope so they can be
	// admitted elsewhere.
	if net, vni := other.Host.Network(); net != "" || vni != 0 {
		t.Fatalf("evicted host still scoped to %q/%d", net, vni)
	}
	if err := w.VPC().Delete("solo"); err != nil {
		t.Fatal(err)
	}
	// And a fresh admission of an evicted host works end to end.
	if _, err := w.CreateVPC("next", "10.6.0.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := w.JoinVPC("next"); err != nil {
		t.Fatal(err)
	}
	next, _ := w.VPC().Get("next")
	if len(next.Members()) != 2 {
		t.Fatalf("re-admission got %d members", len(next.Members()))
	}
}
