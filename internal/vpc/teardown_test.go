package vpc_test

import (
	"testing"
	"time"

	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// Teardown promptness: with the interrupt flag sticky in the sim core,
// the mesh-repair and service-probe loops exit as soon as their stop
// request lands — no flag-gate in vpc/service code, no waiting out
// another interval, no zombie proc parked inside a nested wait.

func TestMeshRepairStopsOnTeardown(t *testing.T) {
	w, err := scenario.Build(31, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "app", CIDR: "10.70.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	n, ok := w.VPC().Get("app")
	if !ok || !n.MeshRepairAlive() {
		t.Fatal("mesh-repair loop not running after admission")
	}
	// Let the loop take a few rounds so it is parked mid-interval, the
	// steady state a teardown interrupts.
	w.Eng.RunFor(25 * time.Second)
	if !n.MeshRepairAlive() {
		t.Fatal("mesh-repair loop died on its own")
	}
	spec.Networks = nil
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	// ApplySync returns with the teardown's events drained: the loop
	// must already be dead, not merely signalled.
	if n.MeshRepairAlive() {
		t.Fatal("mesh-repair loop survives network teardown")
	}
}

func TestServiceProbeStopsWhileParkedInPing(t *testing.T) {
	w, err := scenario.Build(32, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "app", CIDR: "10.71.0.0/24", StaticAddressing: true,
			ServicePool: "10.71.0.64/28",
			Members:     []string{"pc00", "pc01", "pc02"},
		}},
		Services: []vpc.ServiceSpec{{
			Name: "web", Network: "app",
			Backends: []vpc.BackendSpec{{Member: "pc01"}, {Member: "pc02"}},
		}},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatal(err)
	}
	svc, ok := w.VPC().Service("web")
	if !ok || svc.ProbeDead() {
		t.Fatal("probe loop not running after apply")
	}
	// Cut the prober off from both backends: every probe now parks the
	// full timeout inside Ping, so a stop is near-certain to land while
	// the proc is deep in the stack's wait queue, not in its Sleep.
	if err := w.Partition("pc00", "pc01"); err != nil {
		t.Fatal(err)
	}
	if err := w.Partition("pc00", "pc02"); err != nil {
		t.Fatal(err)
	}
	// Watcher: the probes_sent bump happens just before the ping parks;
	// stopping at the next 10 ms tick catches the proc mid-ping.
	sent0 := svc.Counters().Get("probes_sent")
	var stoppedAt sim.Time
	w.Eng.Spawn("watcher", func(p *sim.Proc) {
		for svc.Counters().Get("probes_sent") == sent0 {
			p.Sleep(10 * time.Millisecond)
		}
		svc.Stop()
		stoppedAt = p.Now()
	})
	w.Eng.RunFor(30 * time.Second)
	if stoppedAt == 0 {
		t.Fatal("no probe was ever observed; fixture broken")
	}
	if !svc.ProbeDead() {
		t.Fatal("probe loop survives Stop")
	}
	// The loop must not have run another round after the stop landed.
	sentAtStop := svc.Counters().Get("probes_sent")
	w.Eng.RunFor(10 * time.Second)
	if got := svc.Counters().Get("probes_sent"); got != sentAtStop {
		t.Fatalf("probes kept flowing after Stop: %d -> %d", sentAtStop, got)
	}
}
