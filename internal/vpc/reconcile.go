// Tenant API v2: the reconciler. Reconcile diffs a declarative
// TenantSpec against the manager's live state and converges it —
// creating and deleting networks, admitting and evicting members (with
// the existing admission rollback), installing and removing peering
// gateways, and setting per-tenant quotas — idempotently: applying the
// same spec twice yields an empty second report.

package vpc

import (
	"fmt"
	"sort"

	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// Fabric is what the reconciler needs from the surrounding world: a way
// to resolve machine keys to joined WAVNet hosts, control over the
// rendezvous layer's peering allowances, and the broker topology —
// which broker each machine homes on and how a network's records
// federate across brokers. scenario.World implements it.
type Fabric interface {
	// ResolveHost returns the named machine's WAVNet host, creating it
	// and joining it to the rendezvous layer first if needed. It blocks
	// the calling process.
	ResolveHost(p *sim.Proc, key string) (*core.Host, error)
	// AllowNetPeering permits brokered connects between the two named
	// networks; RevokeNetPeering withdraws the allowance.
	AllowNetPeering(a, b string)
	RevokeNetPeering(a, b string)
	// HomeBroker names the rendezvous broker the machine registers
	// with (the fabric's primary broker when unset). The empty key
	// names the primary broker itself.
	HomeBroker(key string) string
	// ConfigureNetFederation installs the network's replication set on
	// every named broker — records of the network replicate among
	// exactly those brokers. An empty list withdraws the network from
	// the federation (primary broker only).
	ConfigureNetFederation(net string, brokers []string) error
	// BrokerAddr resolves a broker name to the address hosts dial; the
	// empty name resolves the fabric's primary broker. The reconciler
	// pushes these addresses to member hosts as their failover candidate
	// set, so re-homing after a broker death stays inside the network's
	// declared broker set.
	BrokerAddr(name string) (netsim.Addr, bool)
	// Locality returns the measured RTT matrix the distance locator has
	// accumulated for the named network (rows follow names; 0 entries
	// are unmeasured). The placement scheduler scores candidate hosts
	// with it; returning (nil, nil) degrades placement to pure load
	// balancing.
	Locality(net string) (names []string, rtts [][]sim.Duration)
}

// tenantState is the reconciler's memory of what it last applied for a
// tenant: the peering policies and the quota. Network ownership lives
// on Network.Tenant; memberships are read live.
type tenantState struct {
	peerings map[[2]string]PeeringSpec
	// peerLinks records the cross-network tunnels each peering CREATED
	// (host-name pairs), so unpeering tears down exactly those and
	// never severs pre-existing shared-fabric tunnels that also carry
	// other traffic.
	peerLinks map[[2]string]map[[2]string]bool
	// vms are the tenant's placed virtual machines, keyed by VM name.
	vms map[string]*vmRec
	// services are the tenant's live L3 services, keyed by service name.
	services map[string]*svcRec
	quota    QuotaSpec
	quotaSet bool
}

func (mg *Manager) tenant(name string) *tenantState {
	ts, ok := mg.tenants[name]
	if !ok {
		ts = &tenantState{
			peerings:  make(map[[2]string]PeeringSpec),
			peerLinks: make(map[[2]string]map[[2]string]bool),
			vms:       make(map[string]*vmRec),
			services:  make(map[string]*svcRec),
		}
		mg.tenants[name] = ts
	}
	return ts
}

// SnapshotTenant reconstructs a TenantSpec from a tenant's live state
// (networks sorted by name, members in admission order, applied
// peerings and quota). Applying the snapshot back is a no-op; the
// legacy imperative API is a thin layer over snapshot-mutate-apply.
func (mg *Manager) SnapshotTenant(tenant string) TenantSpec {
	spec := TenantSpec{Tenant: tenant}
	for _, n := range mg.Networks() {
		if n.Tenant != tenant {
			continue
		}
		ns := NetworkSpec{
			Name:             n.Name,
			CIDR:             n.CIDR.String(),
			VNI:              n.VNI,
			StaticAddressing: n.cfg.StaticAddressing,
			Lease:            n.cfg.Lease,
			Brokers:          append([]string(nil), n.Brokers...),
			ServicePool:      n.cfg.ServicePool,
		}
		for _, m := range n.Members() {
			ns.Members = append(ns.Members, m.Host.Name())
		}
		spec.Networks = append(spec.Networks, ns)
	}
	if ts, ok := mg.tenants[tenant]; ok {
		keys := make([][2]string, 0, len(ts.peerings))
		for k := range ts.peerings {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
		})
		for _, k := range keys {
			spec.Peerings = append(spec.Peerings, ts.peerings[k])
		}
		if ts.quotaSet {
			spec.Quota = ts.quota
		}
		vmNames := make([]string, 0, len(ts.vms))
		for name := range ts.vms {
			vmNames = append(vmNames, name)
		}
		sort.Strings(vmNames)
		for _, name := range vmNames {
			spec.VMs = append(spec.VMs, ts.vms[name].spec)
		}
		svcNames := make([]string, 0, len(ts.services))
		for name := range ts.services {
			svcNames = append(svcNames, name)
		}
		sort.Strings(svcNames)
		for _, name := range svcNames {
			spec.Services = append(spec.Services, ts.services[name].spec)
		}
	}
	return spec
}

// Reconcile converges live state onto spec and reports every action it
// took. On error the returned report still lists the actions performed
// before the failure.
func (mg *Manager) Reconcile(p *sim.Proc, spec TenantSpec, fab Fabric) (*ApplyReport, error) {
	rep := &ApplyReport{Tenant: spec.Tenant}
	rep.span = mg.tracer.Start(nil, "apply", obs.Labels{Tenant: spec.Tenant})
	defer rep.span.End()
	if err := spec.validate(); err != nil {
		rep.span.Event("rejected: %v", err)
		return rep, err
	}
	ts := mg.tenant(spec.Tenant)

	// Ownership: a network name may not be taken from another tenant.
	desired := make(map[string]*NetworkSpec, len(spec.Networks))
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		desired[ns.Name] = ns
		if live, ok := mg.networks[ns.Name]; ok && live.Tenant != "" && live.Tenant != spec.Tenant {
			return rep, fmt.Errorf("vpc: network %q belongs to tenant %q, not %q",
				ns.Name, live.Tenant, spec.Tenant)
		}
	}
	desiredPairs := make(map[[2]string]PeeringSpec, len(spec.Peerings))
	for _, pe := range spec.Peerings {
		desiredPairs[pairKey(pe.A, pe.B)] = pe
	}

	// Federation scope, checked before any state is touched: every
	// member's record lives on its home broker, so that broker must be
	// in the network's set — or be the primary, for networks that
	// declare none — or the record would sit outside the declared
	// federation (a silent partition: co-tenants on the named brokers
	// could never look the member up). This also refuses shrinking the
	// broker set from under an existing member.
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		named := make(map[string]bool, len(ns.Brokers))
		for _, b := range ns.Brokers {
			named[b] = true
		}
		if len(ns.Brokers) == 0 {
			named[fab.HomeBroker("")] = true // unfederated: primary only
		}
		for _, key := range ns.Members {
			if home := fab.HomeBroker(key); !named[home] {
				return rep, fmt.Errorf("vpc: member %s homes on broker %q, which network %q's broker set %v does not name",
					key, home, ns.Name, ns.Brokers)
			}
		}
	}

	// 0. Service pre-pass, before anything moves: dropped services are
	// evicted and changed ones stopped while their networks, members
	// and backend VMs still exist (VIP reservation and observed health
	// carry over to the rebuild). Then the VM pre-pass: every VM the
	// desired spec no longer supports where it runs is detached now,
	// while its segment still exists. VMs the spec still wants are
	// re-placed (or migrated) by the placement pass after memberships
	// converge.
	mg.reconcileServicesPre(&spec, ts, rep)
	mg.reconcileVMsPre(&spec, ts, rep)

	// 1. Remove stale peerings first, while both sides' networks and
	// members still exist.
	stale := make([][2]string, 0)
	for pair := range ts.peerings {
		if _, keep := desiredPairs[pair]; !keep {
			stale = append(stale, pair)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		return stale[i][0] < stale[j][0] || (stale[i][0] == stale[j][0] && stale[i][1] < stale[j][1])
	})
	for _, pair := range stale {
		delete(ts.peerings, pair)
		Action{Op: "unpeer", Network: pair[0] + "<->" + pair[1]}.record(rep)
		mg.removePeering(pair, ts, fab, rep)
	}

	// 2. Tear down owned networks missing from the spec: members leave
	// in reverse admission order (anchor last), then the network goes.
	for _, live := range mg.Networks() {
		if live.Tenant != spec.Tenant {
			continue
		}
		if _, keep := desired[live.Name]; keep {
			continue
		}
		members := live.Members()
		for i := len(members) - 1; i >= 0; i-- {
			m := members[i]
			if err := mg.Evict(p, m.Host, live.Name); err != nil {
				return rep, fmt.Errorf("vpc: evict %s from %s: %w", m.Host.Name(), live.Name, err)
			}
			Action{Op: "evict", Network: live.Name, Host: m.Host.Name()}.record(rep)
		}
		// Withdraw the network from the federation before the name is
		// freed: a reusable name must not inherit a replication set.
		if len(live.Brokers) > 0 {
			if err := fab.ConfigureNetFederation(live.Name, nil); err != nil {
				return rep, fmt.Errorf("vpc: defederate %s: %w", live.Name, err)
			}
			Action{Op: "defederate", Network: live.Name}.record(rep)
		}
		if err := mg.Delete(live.Name); err != nil {
			return rep, fmt.Errorf("vpc: delete %s: %w", live.Name, err)
		}
		Action{Op: "delete-network", Network: live.Name}.record(rep)
	}

	// 3. Create, adopt or recreate the declared networks, then converge
	// each network's federation: the replication set is installed on
	// exactly the named brokers BEFORE any member joins, so a record is
	// never registered outside its network's broker set.
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		if err := mg.reconcileNetwork(spec.Tenant, ns, ts, fab, rep); err != nil {
			return rep, err
		}
	}
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		live := mg.networks[ns.Name]
		if stringsEqual(live.Brokers, ns.Brokers) {
			continue
		}
		if err := fab.ConfigureNetFederation(ns.Name, ns.Brokers); err != nil {
			return rep, fmt.Errorf("vpc: federate %s: %w", ns.Name, err)
		}
		live.Brokers = append([]string(nil), ns.Brokers...)
		if len(ns.Brokers) == 0 {
			Action{Op: "defederate", Network: ns.Name}.record(rep)
		} else {
			Action{Op: "federate", Network: ns.Name,
				Detail: fmt.Sprintf("brokers %v", ns.Brokers)}.record(rep)
		}
	}

	// 4. Membership, in two passes over ALL networks: every eviction
	// first (reverse admission order within a network), then every
	// admission (spec order; the first member anchors the network). A
	// single interleaved pass would fail to move a host between two of
	// the tenant's networks whenever the destination reconciles first —
	// the host would still be scoped to its old network at Admit time.
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		live := mg.networks[ns.Name]
		want := make(map[string]bool, len(ns.Members))
		for _, m := range ns.Members {
			want[m] = true
		}
		members := live.Members()
		for j := len(members) - 1; j >= 0; j-- {
			m := members[j]
			if want[m.Host.Name()] {
				continue
			}
			if err := mg.Evict(p, m.Host, ns.Name); err != nil {
				if err == ErrAnchorPinned {
					return rep, fmt.Errorf("vpc: %s anchors %s and cannot leave while members remain; drop the whole network or keep %s in the spec",
						m.Host.Name(), ns.Name, m.Host.Name())
				}
				return rep, fmt.Errorf("vpc: evict %s from %s: %w", m.Host.Name(), ns.Name, err)
			}
			Action{Op: "evict", Network: ns.Name, Host: m.Host.Name()}.record(rep)
		}
	}
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		live := mg.networks[ns.Name]
		for _, key := range ns.Members {
			if _, in := live.Member(key); in {
				continue
			}
			h, err := fab.ResolveHost(p, key)
			if err != nil {
				return rep, fmt.Errorf("vpc: resolve %s: %w", key, err)
			}
			m, err := mg.Admit(p, h, ns.Name)
			if err != nil {
				return rep, fmt.Errorf("vpc: admit %s into %s: %w", key, ns.Name, err)
			}
			Action{Op: "admit", Network: ns.Name, Host: key, Detail: m.IP.String()}.record(rep)
		}
	}

	// Membership epilogue: every member learns the dial addresses of its
	// network's broker set as failover candidates, so a host whose home
	// broker dies re-homes onto another *declared* broker — never onto
	// one outside the federation scope. Asserted on every apply (like
	// quotas), covering members admitted above and broker-set changes.
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		names := ns.Brokers
		if len(names) == 0 {
			names = []string{fab.HomeBroker("")}
		}
		addrs := make([]netsim.Addr, 0, len(names))
		for _, b := range names {
			a, ok := fab.BrokerAddr(b)
			if !ok {
				return rep, fmt.Errorf("vpc: network %q names unresolvable broker %q", ns.Name, b)
			}
			addrs = append(addrs, a)
		}
		for _, m := range mg.networks[ns.Name].Members() {
			m.Host.SetBrokerCandidates(addrs)
		}
	}

	// 5. Peerings: install the inter-VNI gateway policy on every member
	// of both sides and broker the cross-network tunnels. Rules are
	// re-asserted on every apply (covering members admitted above);
	// actions are recorded only for new pairs or changed policy.
	for _, pe := range spec.Peerings {
		pair := pairKey(pe.A, pe.B)
		prev, had := ts.peerings[pair]
		switch {
		case !had:
			Action{Op: "peer", Network: pe.A + "<->" + pe.B, Detail: peeringDetail(pe)}.record(rep)
		case !peeringEqual(prev, pe):
			Action{Op: "repeer", Network: pe.A + "<->" + pe.B, Detail: peeringDetail(pe)}.record(rep)
		}
		// Record the pair BEFORE installing: a partially installed
		// peering (rules and allowance in, a connect failed) must stay
		// tracked so a later spec without it still revokes everything.
		ts.peerings[pair] = pe
		if err := mg.installPeering(p, pe, ts, fab, rep); err != nil {
			return rep, err
		}
	}

	// 6. Quota: asserted on every member (idempotent at the host);
	// reported only when the tenant's quota actually changed.
	q := spec.Quota
	for i := range spec.Networks {
		live := mg.networks[spec.Networks[i].Name]
		for _, m := range live.Members() {
			if q.RateBps > 0 {
				m.Host.SetVNIQuota(live.VNI, core.QuotaConfig{
					Tenant: spec.Tenant, RateBps: q.RateBps, BurstBytes: q.BurstBytes,
				})
			} else {
				m.Host.ClearVNIQuota(live.VNI)
			}
		}
	}
	if q.RateBps > 0 && (!ts.quotaSet || ts.quota != q) {
		Action{Op: "set-quota", Detail: fmt.Sprintf("%.0f bps/tunnel", q.RateBps)}.record(rep)
	} else if q.RateBps == 0 && ts.quotaSet && ts.quota.RateBps > 0 {
		Action{Op: "clear-quota"}.record(rep)
	}
	ts.quota, ts.quotaSet = q, true

	// 7. VMs: place what is missing (pinned host or scheduler choice)
	// and live-migrate what runs on the wrong member. Runs last so every
	// admission, federation push and quota above is already in force on
	// both ends of any migration.
	if err := mg.reconcileVMs(p, &spec, ts, fab, rep); err != nil {
		return rep, err
	}

	// 8. Services, last of all: backends resolve to their final host,
	// address and stack only after the VM pass placed and migrated
	// everything. Unchanged live services are untouched.
	if err := mg.reconcileServices(&spec, ts, fab, rep); err != nil {
		return rep, err
	}

	return rep, nil
}

// reconcileNetwork brings one declared network into existence: create
// it, adopt an unowned live one, or — when an empty live network
// disagrees on CIDR/VNI/addressing — recreate it from the spec. A
// non-empty network that disagrees is an error: converging it would
// disrupt members the spec wants kept.
func (mg *Manager) reconcileNetwork(tenant string, ns *NetworkSpec, ts *tenantState, fab Fabric, rep *ApplyReport) error {
	cfg := NetworkConfig{VNI: ns.VNI, StaticAddressing: ns.StaticAddressing,
		Lease: ns.Lease, ServicePool: ns.ServicePool}
	live, ok := mg.networks[ns.Name]
	if !ok {
		n, err := mg.Create(ns.Name, ns.CIDR, cfg)
		if err != nil {
			return fmt.Errorf("vpc: create %s: %w", ns.Name, err)
		}
		n.Tenant = tenant
		Action{Op: "create-network", Network: ns.Name,
			Detail: fmt.Sprintf("%s vni %d", n.CIDR, n.VNI)}.record(rep)
		return nil
	}
	if live.Tenant == "" {
		live.Tenant = tenant
		Action{Op: "adopt-network", Network: ns.Name}.record(rep)
	}
	prefix, _ := ParseCIDR(ns.CIDR) // validated earlier
	effLease := ns.Lease
	if effLease <= 0 {
		effLease = 10 * sim.Minute
	}
	matches := live.CIDR == prefix &&
		(ns.VNI == 0 || ns.VNI == live.VNI) &&
		live.cfg.StaticAddressing == ns.StaticAddressing &&
		live.cfg.Lease == effLease &&
		live.cfg.ServicePool == ns.ServicePool
	if matches {
		return nil
	}
	if len(live.members) > 0 {
		return fmt.Errorf("vpc: network %q exists as %s (vni %d) with members; cannot converge to %s — evict them first",
			ns.Name, live.CIDR, live.VNI, ns.CIDR)
	}
	// A still-desired peering that references this network blocks the
	// delete; remove it here — step 5 re-installs it against the
	// recreated network (and reports it as a fresh "peer").
	for pair := range ts.peerings {
		if pair[0] == ns.Name || pair[1] == ns.Name {
			delete(ts.peerings, pair)
			mg.removePeering(pair, ts, fab, rep)
		}
	}
	// The recreated network starts unfederated; the federation step
	// right after network reconciliation re-installs the spec's set.
	if len(live.Brokers) > 0 {
		if err := fab.ConfigureNetFederation(ns.Name, nil); err != nil {
			return fmt.Errorf("vpc: recreate %s: defederate: %w", ns.Name, err)
		}
	}
	if err := mg.Delete(ns.Name); err != nil {
		return fmt.Errorf("vpc: recreate %s: %w", ns.Name, err)
	}
	if ns.VNI != 0 && ns.VNI == live.VNI {
		// Recreating the same network of the same tenant with its VNI
		// pinned: the delete-and-create is one reconcile step, so the
		// never-reuse-a-retired-VNI rule (which protects a NEW tenant
		// from a dead network's stale segments) does not apply.
		delete(mg.retired, ns.VNI)
	}
	n, err := mg.Create(ns.Name, ns.CIDR, cfg)
	if err != nil {
		return fmt.Errorf("vpc: recreate %s: %w", ns.Name, err)
	}
	n.Tenant = tenant
	Action{Op: "recreate-network", Network: ns.Name,
		Detail: fmt.Sprintf("%s vni %d", n.CIDR, n.VNI)}.record(rep)
	return nil
}

// peeringPrefixes resolves a peering side's allow list: explicit
// prefixes, or the whole CIDR of the destination network.
func peeringPrefixes(allow []string, into *Network) []ether.Prefix {
	if len(allow) == 0 {
		return []ether.Prefix{{IP: into.CIDR.Base, Bits: into.CIDR.Bits}}
	}
	out := make([]ether.Prefix, 0, len(allow))
	for _, s := range allow {
		pfx, _ := ParsePrefix(s) // validated earlier
		out = append(out, pfx)
	}
	return out
}

// installPeering asserts one peering end to end: gateway rules on every
// member of both networks, the broker allowance, and the bipartite
// tunnel mesh between the two memberships. Tunnels it creates (as
// opposed to pre-existing shared-fabric ones) are recorded so unpeering
// can tear down exactly them.
func (mg *Manager) installPeering(p *sim.Proc, pe PeeringSpec, ts *tenantState, fab Fabric, rep *ApplyReport) error {
	netA, netB := mg.networks[pe.A], mg.networks[pe.B]
	intoA := peeringPrefixes(pe.AllowA, netA)
	intoB := peeringPrefixes(pe.AllowB, netB)
	install := func(h *core.Host) {
		h.AllowPeering(netB.VNI, netA.VNI, intoA) // frames from B entering A
		h.AllowPeering(netA.VNI, netB.VNI, intoB) // frames from A entering B
	}
	for _, m := range netA.Members() {
		install(m.Host)
	}
	for _, m := range netB.Members() {
		install(m.Host)
	}
	fab.AllowNetPeering(pe.A, pe.B)
	pair := pairKey(pe.A, pe.B)
	for _, a := range netA.Members() {
		for _, b := range netB.Members() {
			if t, ok := a.Host.Tunnel(b.Host.Name()); ok && t.Established() {
				continue
			}
			if _, err := a.Host.ConnectTo(p, b.Host.Name()); err != nil {
				return fmt.Errorf("vpc: peering %s<->%s: connect %s-%s: %w",
					pe.A, pe.B, a.Host.Name(), b.Host.Name(), err)
			}
			links := ts.peerLinks[pair]
			if links == nil {
				links = make(map[[2]string]bool)
				ts.peerLinks[pair] = links
			}
			links[[2]string{a.Host.Name(), b.Host.Name()}] = true
			Action{Op: "peer-connect", Network: pe.A + "<->" + pe.B,
				Host: a.Host.Name(), Detail: "to " + b.Host.Name()}.record(rep)
		}
	}
	return nil
}

// removePeering tears one peering down: broker allowance, gateway rules
// on every member, and only the cross-network tunnels the peering
// itself created — tunnels that predate it (the shared fabric) keep
// carrying their other traffic. Each destroyed tunnel is reported as a
// peer-disconnect action.
func (mg *Manager) removePeering(pair [2]string, ts *tenantState, fab Fabric, rep *ApplyReport) {
	fab.RevokeNetPeering(pair[0], pair[1])
	links := make([][2]string, 0, len(ts.peerLinks[pair]))
	for link := range ts.peerLinks[pair] {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool {
		return links[i][0] < links[j][0] || (links[i][0] == links[j][0] && links[i][1] < links[j][1])
	})
	delete(ts.peerLinks, pair)
	netA, okA := mg.networks[pair[0]]
	netB, okB := mg.networks[pair[1]]
	if !okA || !okB {
		return
	}
	hosts := make(map[string]*core.Host)
	for _, m := range netA.Members() {
		m.Host.RevokePeering(netB.VNI, netA.VNI)
		m.Host.RevokePeering(netA.VNI, netB.VNI)
		hosts[m.Host.Name()] = m.Host
	}
	for _, m := range netB.Members() {
		m.Host.RevokePeering(netB.VNI, netA.VNI)
		m.Host.RevokePeering(netA.VNI, netB.VNI)
		hosts[m.Host.Name()] = m.Host
	}
	for _, link := range links {
		if a := hosts[link[0]]; a != nil {
			a.Disconnect(link[1])
		}
		if b := hosts[link[1]]; b != nil {
			b.Disconnect(link[0])
		}
		Action{Op: "peer-disconnect", Network: pair[0] + "<->" + pair[1],
			Host: link[0], Detail: "from " + link[1]}.record(rep)
	}
}

func peeringDetail(pe PeeringSpec) string {
	sideA, sideB := "all", "all"
	if len(pe.AllowA) > 0 {
		sideA = fmt.Sprintf("%v", pe.AllowA)
	}
	if len(pe.AllowB) > 0 {
		sideB = fmt.Sprintf("%v", pe.AllowB)
	}
	return fmt.Sprintf("into %s: %s, into %s: %s", pe.A, sideA, pe.B, sideB)
}
