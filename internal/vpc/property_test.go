package vpc_test

import (
	"math/rand"
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestCrossTenantTrafficNeverDelivered is the data-plane isolation
// property: even when a tunnel DOES exist between hosts of different
// tenants (established before the hosts were admitted, so the scoped
// control plane could not refuse it), randomized traffic injected into
// one tenant's segment is never delivered into the other tenant's
// bridges. Every frame crosses the wire, hits the VNI tag check on the
// far side, and dies there.
func TestCrossTenantTrafficNeverDelivered(t *testing.T) {
	w, err := scenario.Build(11, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mesh FIRST, in the default network: this is the shared fabric.
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	a, b := w.Machines[0].WAV, w.Machines[1].WAV
	if _, ok := a.Tunnel("pc01"); !ok {
		t.Fatal("no shared tunnel")
	}

	// Now the tenants split: a joins red (VNI 1), b joins blue (VNI 2).
	mg := w.VPC()
	if _, err := mg.Create("red", "10.0.0.0/24", vpc.NetworkConfig{VNI: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Create("blue", "10.0.0.0/24", vpc.NetworkConfig{VNI: 2}); err != nil {
		t.Fatal(err)
	}
	var joinErr error
	w.Eng.Spawn("split", func(p *sim.Proc) {
		if err := a.JoinVPC(p, "red", 1); err != nil {
			joinErr = err
			return
		}
		joinErr = b.JoinVPC(p, "blue", 2)
	})
	w.Eng.RunFor(10 * time.Second)
	if joinErr != nil {
		t.Fatal(joinErr)
	}

	// Victim-side listeners on every bridge b owns.
	delivered := 0
	listen := func(vni uint32) {
		br, ok := b.SegmentBridge(vni)
		if !ok {
			t.Fatalf("b has no segment %d", vni)
		}
		port := br.AddPort("listener")
		port.SetRecv(func(f *ether.Frame) { delivered++ })
	}
	listen(0)
	listen(2)

	// Randomized attack traffic out of a's red segment: random unicast,
	// broadcast and multicast destinations, random types and payloads.
	rng := rand.New(rand.NewSource(99))
	injector, err := a.AttachVIFOn(1, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 400
	injected := 0
	tick := sim.NewTicker(w.Eng, 50*time.Millisecond, func() {
		if injected >= frames {
			return
		}
		injected++
		var dst ether.MAC
		switch rng.Intn(3) {
		case 0:
			dst = ether.Broadcast
		case 1:
			rng.Read(dst[:])
			dst[0] |= 1 // multicast
		default:
			rng.Read(dst[:])
			dst[0] &^= 1 // unicast
		}
		var src ether.MAC
		rng.Read(src[:])
		src[0] &^= 1
		payload := make([]byte, 1+rng.Intn(a.SegmentMTU(1)-ether.HeaderLen))
		rng.Read(payload)
		injector.Send(&ether.Frame{
			Dst: dst, Src: src,
			Type:    uint16(rng.Intn(1 << 16)),
			Payload: payload,
		})
	})
	w.Eng.RunFor(frames*50*time.Millisecond + 10*time.Second)
	tick.Stop()

	if injected != frames {
		t.Fatalf("injected %d/%d", injected, frames)
	}
	if delivered != 0 {
		t.Fatalf("%d cross-tenant frames delivered into the victim's bridges", delivered)
	}
	// The property is only meaningful if the traffic actually crossed
	// the wire: every frame must have reached b and died at the check.
	if b.CrossVNIDrops < frames {
		t.Fatalf("CrossVNIDrops = %d, want >= %d (traffic never reached the victim)", b.CrossVNIDrops, frames)
	}

	// Control: co-tenant traffic on a shared VNI IS delivered (the
	// property is not vacuous).
	b.JoinVNI(1)
	coDelivered := 0
	br, _ := b.SegmentBridge(1)
	br.AddPort("co-listener").SetRecv(func(f *ether.Frame) { coDelivered++ })
	w.Eng.Schedule(time.Second, func() {
		injector.Send(&ether.Frame{Dst: ether.Broadcast, Src: ether.SeqMAC(7), Type: ether.TypeIPv4, Payload: []byte("hello")})
	})
	w.Eng.RunFor(10 * time.Second)
	if coDelivered == 0 {
		t.Fatal("co-tenant frame was not delivered; fabric is dead, property vacuous")
	}
}
