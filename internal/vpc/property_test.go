package vpc_test

import (
	"math/rand"
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// TestCrossTenantTrafficNeverDelivered is the data-plane isolation
// property: even when a tunnel DOES exist between hosts of different
// tenants (established before the hosts were admitted, so the scoped
// control plane could not refuse it), randomized traffic injected into
// one tenant's segment is never delivered into the other tenant's
// bridges. Isolation is enforced twice: the sender's VNI-aware flooding
// suppresses tagged frames toward tunnels whose far end announced no
// segment for the tag, and — with suppression disabled — every frame
// that does cross the wire dies at the receiver's isolation check.
func TestCrossTenantTrafficNeverDelivered(t *testing.T) {
	w, err := scenario.Build(11, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mesh FIRST, in the default network: this is the shared fabric.
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	a, b := w.Machines[0].WAV, w.Machines[1].WAV
	if _, ok := a.Tunnel("pc01"); !ok {
		t.Fatal("no shared tunnel")
	}

	// Now the tenants split: a joins red (VNI 1), b joins blue (VNI 2).
	mg := w.VPC()
	if _, err := mg.Create("red", "10.0.0.0/24", vpc.NetworkConfig{VNI: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Create("blue", "10.0.0.0/24", vpc.NetworkConfig{VNI: 2}); err != nil {
		t.Fatal(err)
	}
	var joinErr error
	w.Eng.Spawn("split", func(p *sim.Proc) {
		if err := a.JoinVPC(p, "red", 1); err != nil {
			joinErr = err
			return
		}
		joinErr = b.JoinVPC(p, "blue", 2)
	})
	w.Eng.RunFor(10 * time.Second)
	if joinErr != nil {
		t.Fatal(joinErr)
	}

	// Victim-side listeners on every bridge b owns.
	delivered := 0
	listen := func(vni uint32) {
		br, ok := b.SegmentBridge(vni)
		if !ok {
			t.Fatalf("b has no segment %d", vni)
		}
		port := br.AddPort("listener")
		port.SetRecv(func(f *ether.Frame) { delivered++ })
	}
	listen(0)
	listen(2)

	// Randomized attack traffic out of a's red segment: random unicast,
	// broadcast and multicast destinations, random types and payloads.
	rng := rand.New(rand.NewSource(99))
	injector, err := a.AttachVIFOn(1, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 400
	injected := 0
	inject := func() {
		injected++
		var dst ether.MAC
		switch rng.Intn(3) {
		case 0:
			dst = ether.Broadcast
		case 1:
			rng.Read(dst[:])
			dst[0] |= 1 // multicast
		default:
			rng.Read(dst[:])
			dst[0] &^= 1 // unicast
		}
		var src ether.MAC
		rng.Read(src[:])
		src[0] &^= 1
		payload := make([]byte, 1+rng.Intn(a.SegmentMTU(1)-ether.HeaderLen))
		rng.Read(payload)
		injector.Send(&ether.Frame{
			Dst: dst, Src: src,
			Type:    uint16(rng.Intn(1 << 16)),
			Payload: payload,
		})
	}

	// Layer 1 — smarter flooding: with announcements exchanged, the
	// sender itself suppresses red-tagged frames toward b (which
	// announced segments {0, 2} only). Nothing even crosses the wire.
	const warmup = 20
	tick0 := sim.NewTicker(w.Eng, 50*time.Millisecond, func() {
		if injected < warmup {
			inject()
		}
	})
	w.Eng.RunFor(warmup*50*time.Millisecond + 5*time.Second)
	tick0.Stop()
	if injected != warmup {
		t.Fatalf("warmup injected %d/%d", injected, warmup)
	}
	if delivered != 0 {
		t.Fatalf("%d frames delivered during suppression phase", delivered)
	}
	if b.CrossVNIDrops != 0 {
		t.Fatalf("CrossVNIDrops = %d during suppression phase, want 0 (frames should not cross at all)", b.CrossVNIDrops)
	}
	if a.SuppressedFloods < warmup {
		t.Fatalf("SuppressedFloods = %d, want >= %d", a.SuppressedFloods, warmup)
	}
	if c := a.VPCCounters(); c.Get("suppress.vni1") < warmup {
		t.Fatalf("counter suppress.vni1 = %d, want >= %d", c.Get("suppress.vni1"), warmup)
	}

	// Layer 2 — receiver-side isolation check: disable the sender
	// optimization so traffic really crosses the wire, and hits the
	// VNI tag check on the far side.
	a.SetFloodAll(true)
	injected = 0
	tick := sim.NewTicker(w.Eng, 50*time.Millisecond, func() {
		if injected < frames {
			inject()
		}
	})
	w.Eng.RunFor(frames*50*time.Millisecond + 10*time.Second)
	tick.Stop()

	if injected != frames {
		t.Fatalf("injected %d/%d", injected, frames)
	}
	if delivered != 0 {
		t.Fatalf("%d cross-tenant frames delivered into the victim's bridges", delivered)
	}
	// The property is only meaningful if the traffic actually crossed
	// the wire: every frame must have reached b and died at the check.
	if b.CrossVNIDrops < frames {
		t.Fatalf("CrossVNIDrops = %d, want >= %d (traffic never reached the victim)", b.CrossVNIDrops, frames)
	}

	// Control: co-tenant traffic on a shared VNI IS delivered (the
	// property is not vacuous).
	b.JoinVNI(1)
	coDelivered := 0
	br, _ := b.SegmentBridge(1)
	br.AddPort("co-listener").SetRecv(func(f *ether.Frame) { coDelivered++ })
	w.Eng.Schedule(time.Second, func() {
		injector.Send(&ether.Frame{Dst: ether.Broadcast, Src: ether.SeqMAC(7), Type: ether.TypeIPv4, Payload: []byte("hello")})
	})
	w.Eng.RunFor(10 * time.Second)
	if coDelivered == 0 {
		t.Fatal("co-tenant frame was not delivered; fabric is dead, property vacuous")
	}
}

// TestTransitivePeeringNeverLeaks is the ROADMAP's transitivity
// property: with red<->mid and mid<->green peered — under any
// combination of allow policies — nothing ever crosses red<->green.
// The inter-VNI gateway is single-hop: a frame tagged with red's VNI is
// only ever re-injected by a rule installed for the explicit pair
// (red, local), and an injected frame enters the peered bridge through
// its tap, which the bridge never echoes back out — so no rule chain
// red->mid->green exists.
func TestTransitivePeeringNeverLeaks(t *testing.T) {
	// Candidate allow-lists per direction (nil = the whole CIDR). The
	// leak property must hold for every draw; the full/full draw doubles
	// as the non-vacuity control (red<->mid and mid<->green deliver).
	intoRed := [][]string{nil, {"10.10.0.1/32"}, {"10.10.0.0/31"}}
	intoMid := [][]string{nil, {"10.20.0.1/32"}, {"10.20.0.0/31"}}
	intoGreen := [][]string{nil, {"10.30.0.1/32"}, {"10.30.0.200/32"}}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 4; i++ {
		ab := vpc.PeeringSpec{A: "red", B: "mid"}
		bc := vpc.PeeringSpec{A: "mid", B: "green"}
		full := i == 0 // first draw: everything allowed, both peerings
		if !full {
			ab.AllowA = intoRed[rng.Intn(len(intoRed))]
			ab.AllowB = intoMid[rng.Intn(len(intoMid))]
			bc.AllowA = intoMid[rng.Intn(len(intoMid))]
			bc.AllowB = intoGreen[rng.Intn(len(intoGreen))]
		}
		transitiveOnce(t, int64(50+i), ab, bc, full)
	}
}

func transitiveOnce(t *testing.T, seed int64, ab, bc vpc.PeeringSpec, wantDelivery bool) {
	t.Helper()
	w, err := scenario.Build(seed, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shared fabric first: every host pair holds a tunnel before the
	// split, so non-delivery below is policy, not disconnection.
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "red", CIDR: "10.10.0.0/24", Members: []string{"pc00"}, StaticAddressing: true},
			{Name: "mid", CIDR: "10.20.0.0/24", Members: []string{"pc01"}, StaticAddressing: true},
			{Name: "green", CIDR: "10.30.0.0/24", Members: []string{"pc02"}, StaticAddressing: true},
		},
		Peerings: []vpc.PeeringSpec{ab, bc},
	}
	if _, err := w.ApplySync(spec); err != nil {
		t.Fatalf("apply (ab=%+v bc=%+v): %v", ab, bc, err)
	}
	red, _ := w.VPC().Get("red")
	mid, _ := w.VPC().Get("mid")
	green, _ := w.VPC().Get("green")
	sender := red.Members()[0]
	greenMember := green.Members()[0]

	// Listener on green's segment: any frame sourced by red's member is
	// a transitive leak (mid's frames are legitimate — mid<->green ARE
	// peered).
	redMAC := sender.Stack.MAC()
	leaked := 0
	br, ok := greenMember.Host.SegmentBridge(green.VNI)
	if !ok {
		t.Fatal("green member lost its segment")
	}
	br.AddPort("leak-listener").SetRecv(func(f *ether.Frame) {
		if f.Src == redMAC {
			leaked++
		}
	})

	var redMidErr, midGreenErr, redGreenErr, redGreenFloodErr error
	w.Eng.Spawn("probe", func(p *sim.Proc) {
		ping := func(from *vpc.Member, ip netsim.IP) error {
			if _, err := from.Stack.Ping(p, ip, 32, 4*time.Second); err == nil {
				return nil
			}
			_, err := from.Stack.Ping(p, ip, 32, 4*time.Second)
			return err
		}
		redMidErr = ping(sender, mid.Members()[0].IP)
		midGreenErr = ping(mid.Members()[0], greenMember.IP)
		// The property: red never reaches green, first with VNI-aware
		// flood suppression doing its job...
		redGreenErr = ping(sender, greenMember.IP)
		// ...then with the sender flooding everywhere, so red-tagged
		// frames really arrive at green's host and must die there.
		sender.Host.SetFloodAll(true)
		redGreenFloodErr = ping(sender, greenMember.IP)
	})
	w.Eng.RunFor(3 * time.Minute)

	if wantDelivery {
		if redMidErr != nil {
			t.Errorf("red->mid ping failed under full policy: %v", redMidErr)
		}
		if midGreenErr != nil {
			t.Errorf("mid->green ping failed under full policy: %v", midGreenErr)
		}
	}
	if redGreenErr == nil || redGreenFloodErr == nil {
		t.Errorf("red->green delivered (suppressed=%v flooded=%v) with ab=%+v bc=%+v; transitive peering must not leak",
			redGreenErr, redGreenFloodErr, ab, bc)
	}
	if leaked != 0 {
		t.Errorf("%d foreign frames delivered into green's segment (ab=%+v bc=%+v)", leaked, ab, bc)
	}
	// Non-vacuity of the forced-flood phase: red-tagged frames must have
	// reached green's host and died at its gateway/isolation check.
	if drops := greenMember.Host.CrossVNIDrops + greenMember.Host.PeerPolicyDrops; drops == 0 {
		t.Errorf("no red-tagged frames ever reached green's host; leak check vacuous (ab=%+v bc=%+v)", ab, bc)
	}
}

// TestPeeringPolicyProperty is the peering property: randomized traffic
// between peered networks is delivered exactly for policy-allowed
// destination prefixes, and networks without a PeeringSpec remain
// absolutely isolated even over a pre-established shared tunnel mesh.
func TestPeeringPolicyProperty(t *testing.T) {
	w, err := scenario.Build(21, scenario.EmulatedWANSpecs(5, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shared fabric first: every host pair holds a tunnel before the
	// tenant splits, so non-delivery below is policy, not disconnection.
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}

	// One tenant, three networks. red<->blue peer with policy: all of
	// red is reachable from blue, but only 10.20.0.0/31 of blue (its
	// anchor 10.20.0.1, not the member at 10.20.0.2) is reachable from
	// red. green has no peering at all.
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "red", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
			{Name: "blue", CIDR: "10.20.0.0/24", Members: []string{"pc02", "pc03"}, StaticAddressing: true},
			{Name: "green", CIDR: "10.30.0.0/24", Members: []string{"pc04"}, StaticAddressing: true},
		},
		Peerings: []vpc.PeeringSpec{
			{A: "red", B: "blue", AllowB: []string{"10.20.0.0/31"}},
		},
	}
	var rep1, rep2 *vpc.ApplyReport
	var applyErr error
	w.Eng.Spawn("apply", func(p *sim.Proc) {
		rep1, applyErr = w.Apply(p, spec)
		if applyErr != nil {
			return
		}
		rep2, applyErr = w.Apply(p, spec)
	})
	w.Eng.RunFor(2 * time.Minute)
	if applyErr != nil {
		t.Fatal(applyErr)
	}
	if rep1 == nil || rep1.Empty() {
		t.Fatalf("first apply reported no actions: %v", rep1)
	}
	if rep2 == nil || !rep2.Empty() {
		t.Fatalf("second apply not idempotent: %v", rep2)
	}

	red, _ := w.VPC().Get("red")
	blue, _ := w.VPC().Get("blue")
	green, _ := w.VPC().Get("green")
	sender := red.Members()[0] // 10.10.0.1

	// Listeners on the green host's non-default bridges: nothing from
	// outside green may ever be delivered there.
	greenHost := green.Members()[0].Host
	greenDelivered := 0
	greenMAC := green.Members()[0].Stack.MAC()
	for _, vni := range greenHost.VNIs() {
		if vni == 0 {
			continue
		}
		br, ok := greenHost.SegmentBridge(vni)
		if !ok {
			continue
		}
		br.AddPort("leak-listener").SetRecv(func(f *ether.Frame) {
			if f.Src != greenMAC {
				greenDelivered++
			}
		})
	}

	// Randomized destinations in blue's CIDR: a ping must succeed
	// exactly when the address is both policy-allowed and owned.
	blueIPs := map[netsim.IP]bool{}
	for _, m := range blue.Members() {
		blueIPs[m.IP] = true
	}
	allowed := func(ip netsim.IP) bool { return ip >= blue.CIDR.Base && ip <= blue.CIDR.Base+1 }
	rng := rand.New(rand.NewSource(7))
	targets := []netsim.IP{blue.CIDR.Base + 1, blue.CIDR.Base + 2} // anchor (allowed), member (denied)
	for i := 0; i < 6; i++ {
		targets = append(targets, blue.CIDR.Base+netsim.IP(rng.Intn(254)+1))
	}
	type outcome struct {
		ip  netsim.IP
		err error
	}
	var results []outcome
	var reverseErr, greenErr, greenErr2 error
	w.Eng.Spawn("probe", func(p *sim.Proc) {
		for _, ip := range targets {
			// Two attempts: the first may lose its ARP round to timing.
			if _, err := sender.Stack.Ping(p, ip, 32, 4*time.Second); err == nil {
				results = append(results, outcome{ip, nil})
				continue
			}
			_, err := sender.Stack.Ping(p, ip, 32, 4*time.Second)
			results = append(results, outcome{ip, err})
		}
		// Reverse direction: blue's anchor reaches red's member (all of
		// red is allowed into red from blue).
		blueAnchor := blue.Members()[0]
		blueAnchor.Stack.Ping(p, red.Members()[1].IP, 32, 4*time.Second)
		_, reverseErr = blueAnchor.Stack.Ping(p, red.Members()[1].IP, 32, 4*time.Second)
		// Unpeered: red -> green must fail both with suppression on...
		_, greenErr = sender.Stack.Ping(p, green.Members()[0].IP, 32, 4*time.Second)
		// ...and with the sender flooding everywhere (receiver check).
		sender.Host.SetFloodAll(true)
		_, greenErr2 = sender.Stack.Ping(p, green.Members()[0].IP, 32, 4*time.Second)
	})
	w.Eng.RunFor(5 * time.Minute)

	if len(results) != len(targets) {
		t.Fatalf("probed %d/%d targets", len(results), len(targets))
	}
	for _, r := range results {
		want := allowed(r.ip) && blueIPs[r.ip]
		if want && r.err != nil {
			t.Errorf("ping %v: err=%v, want delivery (allowed+owned)", r.ip, r.err)
		}
		if !want && r.err == nil {
			t.Errorf("ping %v succeeded, want failure (allowed=%v owned=%v)", r.ip, allowed(r.ip), blueIPs[r.ip])
		}
	}
	if reverseErr != nil {
		t.Errorf("blue->red ping failed: %v", reverseErr)
	}
	if greenErr == nil || greenErr2 == nil {
		t.Errorf("red->green ping succeeded (%v/%v); unpeered networks must stay isolated", greenErr, greenErr2)
	}
	if greenDelivered != 0 {
		t.Errorf("%d frames delivered into green's segment from outside", greenDelivered)
	}
	// Policy refusals must be visible on the receiving gateway.
	var policyDrops uint64
	for _, m := range blue.Members() {
		policyDrops += m.Host.VPCCounters().Get("peer_policy_drops")
	}
	if policyDrops == 0 {
		t.Error("no peer_policy_drops recorded; the denied pings never hit the policy check (vacuous)")
	}
}
