// Tenant API v2: declarative specs. A TenantSpec is pure data — the
// networks a tenant wants, who is in them, how they peer and what rate
// they may spend — and the reconciler (reconcile.go) converges live
// state onto it. Applying the same spec twice is a no-op.

package vpc

import (
	"fmt"
	"strconv"
	"strings"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// TenantSpec is the desired state of one tenant's private cloud.
type TenantSpec struct {
	// Tenant names the owner; every network in the spec belongs to it.
	Tenant string
	// Networks are the tenant's virtual networks. Networks the tenant
	// owns that are missing from the spec are torn down.
	Networks []NetworkSpec
	// Peerings are policy-controlled routes between pairs of the
	// tenant's networks. Absent pairs are absolutely isolated.
	Peerings []PeeringSpec
	// VMs are the tenant's virtual machines: each plugs its vif into one
	// of the spec's networks and runs on a declared (or
	// scheduler-chosen) member host. VMs missing from the spec are
	// evicted; a VM whose desired host differs from where it runs is
	// converged by live migration.
	VMs []VMSpec
	// Services are the tenant's L3 services: a VIP backed by member
	// hosts and/or managed VMs, health-checked and steered per policy.
	// Services missing from the spec are evicted (VIP released).
	Services []ServiceSpec
	// Quota caps the tenant's send rate per (member host, tunnel);
	// RateBps 0 means unmetered.
	Quota QuotaSpec
}

// NetworkSpec describes one virtual network declaratively.
type NetworkSpec struct {
	// Name is the network's unique name.
	Name string
	// CIDR is the address space, e.g. "10.0.0.0/24".
	CIDR string
	// VNI pins the network identifier; 0 auto-allocates.
	VNI uint32
	// Members are the machine keys to admit, in admission order; the
	// first member anchors the network (gateway + DHCP server). Members
	// not listed are evicted.
	Members []string
	// StaticAddressing skips DHCP: members get sequential addresses at
	// admission.
	StaticAddressing bool
	// Lease is the DHCP lease duration (default 10 minutes).
	Lease sim.Duration
	// Brokers is the network's federation: the named rendezvous brokers
	// replicate this network's host records among themselves, and only
	// among themselves — a broker the spec does not name never learns
	// about the network. Members must home on one of the named brokers.
	// Empty keeps the network on the fabric's primary broker alone.
	Brokers []string
	// ServicePool is a sub-CIDR of CIDR carved out for service VIPs
	// (e.g. "10.0.0.240/28"). Its addresses are reserved against the
	// network's DHCP server and skipped by static assignment; services
	// without a pinned VIP draw from it, and a pinned VIP must fall
	// inside it. Empty means services must pin their VIPs explicitly.
	ServicePool string
}

// PeeringSpec is a policy-carrying route between two of the tenant's
// networks. Traffic crosses only when the destination address is
// allowed: frames entering A must match AllowA, frames entering B must
// match AllowB. An empty list defaults to the whole CIDR of that side.
type PeeringSpec struct {
	A, B string
	// AllowA are destination prefixes within A reachable from B.
	AllowA []string
	// AllowB are destination prefixes within B reachable from A.
	AllowB []string
}

// VMSpec declares one virtual machine of the tenant: where it plugs in
// (a network and an address inside its CIDR) and where it should run.
// The reconciler keeps the VM where the spec says via live migration:
// changing Host on an applied spec pre-copies the image to the new
// member and resumes it there without the vif ever leaving the tenant.
type VMSpec struct {
	// Name is the VM's unique name within the tenant.
	Name string
	// Network names the tenant network whose segment the VM's vif joins.
	Network string
	// IP is the VM's address inside the network's CIDR. Placement
	// reserves it against the network's address pools: it must not
	// already belong to a member, and neither static assignment nor the
	// DHCP server will hand it out while the VM exists.
	IP string
	// MemoryMB sizes the VM image (default 256).
	MemoryMB int
	// DirtyRate is the page-dirtying rate while the VM runs (pages/s,
	// default 2000); it drives pre-copy convergence.
	DirtyRate float64
	// Host pins the VM to a member machine key of its network. "" lets
	// the placement scheduler choose: locality-scored over the distance
	// locator's measured RTTs, load-balanced, and constrained to hosts
	// homed on the network's declared brokers. A scheduler choice is
	// sticky — re-applying does not move the VM while its host remains a
	// valid member.
	Host string
}

// ServiceSpec declares one L3 service of the tenant: a VIP on one of
// the tenant's networks, a backend set, a steering policy and the
// health-probe budget. The reconciler converges it through the service
// controller (internal/service): backends alias the VIP, member hosts
// steer clients to the first healthy backend of their per-host
// preference list, and the probe loop withdraws dead backends within
// the fall budget.
type ServiceSpec struct {
	// Name is the service's unique name within the tenant.
	Name string
	// Network names the tenant network the VIP lives on.
	Network string
	// VIP pins the service address inside the network's CIDR (and
	// inside its ServicePool, when one is declared). Empty draws the
	// first free address from the pool; the allocation is sticky across
	// re-applies.
	VIP string
	// Policy is the steering policy: "anycast-nearest" (default — each
	// client host prefers the closest healthy backend by measured RTT)
	// or "failover-ordered" (every host prefers the first healthy
	// backend in declared order).
	Policy string
	// Backends are the service's backends in declared preference order
	// (the rank failover-ordered steering follows). Each names exactly
	// one member host or one managed VM of the service's network.
	Backends []BackendSpec
	// Interval is the probe period (default 1s); Timeout bounds one
	// probe (default 250ms).
	Interval sim.Duration
	Timeout  sim.Duration
	// Fall consecutive probe failures withdraw a backend (default 3);
	// Rise consecutive successes re-announce it (default 2).
	Fall int
	Rise int
}

// BackendSpec names one backend of a service: exactly one of Member (a
// machine key listed in the network's Members) or VM (a VMSpec name on
// the same network).
type BackendSpec struct {
	Member string
	VM     string
}

// name is the backend's name within the service.
func (b BackendSpec) name() string {
	if b.Member != "" {
		return b.Member
	}
	return b.VM
}

// normalized fills a ServiceSpec's defaulted fields so live state can
// be compared against the spec field by field.
func (s ServiceSpec) normalized() ServiceSpec {
	if s.Policy == "" {
		s.Policy = "anycast-nearest"
	}
	if s.Interval <= 0 {
		s.Interval = 1 * sim.Second
	}
	if s.Timeout <= 0 {
		s.Timeout = 250 * sim.Millisecond
	}
	if s.Fall <= 0 {
		s.Fall = 3
	}
	if s.Rise <= 0 {
		s.Rise = 2
	}
	return s
}

// serviceSpecEqual compares two normalized service specs field by
// field (backend order matters: it is the failover rank).
func serviceSpecEqual(x, y ServiceSpec) bool {
	x, y = x.normalized(), y.normalized()
	if x.Name != y.Name || x.Network != y.Network || x.VIP != y.VIP ||
		x.Policy != y.Policy || x.Interval != y.Interval || x.Timeout != y.Timeout ||
		x.Fall != y.Fall || x.Rise != y.Rise || len(x.Backends) != len(y.Backends) {
		return false
	}
	for i := range x.Backends {
		if x.Backends[i] != y.Backends[i] {
			return false
		}
	}
	return true
}

// QuotaSpec is a per-tenant rate limit, enforced by a token bucket per
// (member host, tunnel) in the data plane, plus the tenant's VM
// capacity envelope enforced by the placement pass.
type QuotaSpec struct {
	// RateBps is the sustained rate in bits per second; 0 = unmetered.
	RateBps float64
	// BurstBytes is the bucket depth (default 64 KiB).
	BurstBytes int
	// MaxVMs caps the tenant's VM count across all networks (0 =
	// unlimited).
	MaxVMs int
	// MaxVMMemoryMB caps the tenant's total declared VM memory in MB,
	// defaults included (0 = unlimited).
	MaxVMMemoryMB int
}

// ParsePrefix parses a policy prefix "a.b.c.d/n" with 1 <= n <= 32
// (network CIDRs stay restricted to /8../30, but policy may name a
// single host or half a subnet).
func ParsePrefix(s string) (ether.Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return ether.Prefix{}, fmt.Errorf("vpc: bad prefix %q (no length)", s)
	}
	ip, err := netsim.ParseIP(s[:slash])
	if err != nil {
		return ether.Prefix{}, err
	}
	bits, err2 := strconv.Atoi(s[slash+1:])
	if err2 != nil || bits < 1 || bits > 32 {
		return ether.Prefix{}, fmt.Errorf("vpc: bad prefix length in %q", s)
	}
	return ether.Prefix{IP: ip, Bits: bits}, nil
}

// Action is one state change the reconciler performed.
type Action struct {
	// Op identifies the change: create-network, adopt-network,
	// recreate-network, delete-network, admit, evict, peer, repeer,
	// unpeer, peer-connect, peer-disconnect, set-quota, clear-quota,
	// federate, defederate, vm-place, vm-migrate, vm-evict,
	// service-create, service-update, service-evict.
	Op string
	// Network is the affected network (or "a<->b" pair for peerings).
	Network string
	// Host is the affected machine key, when the change is per-host.
	Host string
	// Detail carries human-readable specifics (CIDR, policy, rate).
	Detail string
}

// String renders "op network[/host] (detail)".
func (a Action) String() string {
	var b strings.Builder
	b.WriteString(a.Op)
	if a.Network != "" {
		b.WriteByte(' ')
		b.WriteString(a.Network)
	}
	if a.Host != "" {
		b.WriteByte('/')
		b.WriteString(a.Host)
	}
	if a.Detail != "" {
		fmt.Fprintf(&b, " (%s)", a.Detail)
	}
	return b.String()
}

// ApplyReport lists every action one Apply took, in execution order. An
// empty report means live state already matched the spec.
type ApplyReport struct {
	Tenant  string
	Actions []Action

	// span is the "apply" span covering this reconcile; record emits
	// each action as a timestamped event on it (nil-safe).
	span *obs.Span
}

// Empty reports whether the apply was a no-op.
func (r *ApplyReport) Empty() bool { return len(r.Actions) == 0 }

// Ops returns just the action op names, in order (handy for tests and
// examples).
func (r *ApplyReport) Ops() []string {
	out := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		out[i] = a.Op
	}
	return out
}

// String renders one action per line.
func (r *ApplyReport) String() string {
	if r.Empty() {
		return fmt.Sprintf("tenant %s: in sync (no actions)", r.Tenant)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tenant %s: %d action(s)\n", r.Tenant, len(r.Actions))
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

func (a Action) record(rep *ApplyReport) {
	rep.span.Event("%s", a)
	rep.Actions = append(rep.Actions, a)
}

// validate checks a spec's internal consistency before any state is
// touched.
func (spec *TenantSpec) validate() error {
	if spec.Tenant == "" {
		return fmt.Errorf("vpc: tenant needs a name")
	}
	names := make(map[string]*NetworkSpec, len(spec.Networks))
	owner := make(map[string]string) // member -> network
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		if ns.Name == "" {
			return fmt.Errorf("vpc: tenant %s: network %d needs a name", spec.Tenant, i)
		}
		if _, dup := names[ns.Name]; dup {
			return fmt.Errorf("vpc: tenant %s: duplicate network %q", spec.Tenant, ns.Name)
		}
		names[ns.Name] = ns
		if _, err := ParseCIDR(ns.CIDR); err != nil {
			return fmt.Errorf("vpc: tenant %s: network %q: %w", spec.Tenant, ns.Name, err)
		}
		seen := make(map[string]bool, len(ns.Members))
		for _, m := range ns.Members {
			if m == "" {
				return fmt.Errorf("vpc: tenant %s: network %q lists an empty member", spec.Tenant, ns.Name)
			}
			if seen[m] {
				return fmt.Errorf("vpc: tenant %s: network %q lists %q twice", spec.Tenant, ns.Name, m)
			}
			seen[m] = true
			if other, ok := owner[m]; ok {
				return fmt.Errorf("vpc: tenant %s: member %q in both %q and %q (hosts join one network)",
					spec.Tenant, m, other, ns.Name)
			}
			owner[m] = ns.Name
		}
		seenBrokers := make(map[string]bool, len(ns.Brokers))
		for _, b := range ns.Brokers {
			if b == "" {
				return fmt.Errorf("vpc: tenant %s: network %q lists an empty broker", spec.Tenant, ns.Name)
			}
			if seenBrokers[b] {
				return fmt.Errorf("vpc: tenant %s: network %q lists broker %q twice", spec.Tenant, ns.Name, b)
			}
			seenBrokers[b] = true
		}
		if ns.ServicePool != "" {
			pool, err := ParseCIDR(ns.ServicePool)
			if err != nil {
				return fmt.Errorf("vpc: tenant %s: network %q service pool: %w", spec.Tenant, ns.Name, err)
			}
			cidr, _ := ParseCIDR(ns.CIDR) // validated above
			if !cidr.Contains(pool.Base) || !cidr.Contains(pool.Broadcast()) ||
				pool.Base <= cidr.Base+1 || pool.Broadcast() >= cidr.Broadcast() {
				return fmt.Errorf("vpc: tenant %s: network %q service pool %s must sit strictly inside %s (past the gateway, before broadcast)",
					spec.Tenant, ns.Name, ns.ServicePool, ns.CIDR)
			}
		}
	}
	pairs := make(map[[2]string]bool, len(spec.Peerings))
	for _, pe := range spec.Peerings {
		if pe.A == pe.B {
			return fmt.Errorf("vpc: tenant %s: peering %q with itself", spec.Tenant, pe.A)
		}
		for _, side := range []string{pe.A, pe.B} {
			if _, ok := names[side]; !ok {
				return fmt.Errorf("vpc: tenant %s: peering names unknown network %q", spec.Tenant, side)
			}
		}
		key := pairKey(pe.A, pe.B)
		if pairs[key] {
			return fmt.Errorf("vpc: tenant %s: duplicate peering %s<->%s", spec.Tenant, key[0], key[1])
		}
		pairs[key] = true
		for _, ps := range append(append([]string(nil), pe.AllowA...), pe.AllowB...) {
			if _, err := ParsePrefix(ps); err != nil {
				return fmt.Errorf("vpc: tenant %s: peering %s<->%s: %w", spec.Tenant, pe.A, pe.B, err)
			}
		}
	}
	if spec.Quota.RateBps < 0 {
		return fmt.Errorf("vpc: tenant %s: negative quota rate", spec.Tenant)
	}
	if spec.Quota.MaxVMs < 0 || spec.Quota.MaxVMMemoryMB < 0 {
		return fmt.Errorf("vpc: tenant %s: negative VM quota", spec.Tenant)
	}
	vmNames := make(map[string]bool, len(spec.VMs))
	vmIPs := make(map[string]map[netsim.IP]bool)
	totalMem := 0
	for i := range spec.VMs {
		vs := &spec.VMs[i]
		if vs.Name == "" {
			return fmt.Errorf("vpc: tenant %s: VM %d needs a name", spec.Tenant, i)
		}
		if vmNames[vs.Name] {
			return fmt.Errorf("vpc: tenant %s: duplicate VM %q", spec.Tenant, vs.Name)
		}
		vmNames[vs.Name] = true
		ns, ok := names[vs.Network]
		if !ok {
			return fmt.Errorf("vpc: tenant %s: VM %q names unknown network %q", spec.Tenant, vs.Name, vs.Network)
		}
		if vs.MemoryMB < 0 || vs.DirtyRate < 0 {
			return fmt.Errorf("vpc: tenant %s: VM %q: negative memory or dirty rate", spec.Tenant, vs.Name)
		}
		ip, err := netsim.ParseIP(vs.IP)
		if err != nil {
			return fmt.Errorf("vpc: tenant %s: VM %q: %w", spec.Tenant, vs.Name, err)
		}
		cidr, _ := ParseCIDR(ns.CIDR) // validated above
		switch {
		case !cidr.Contains(ip):
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s outside network %q (%s)",
				spec.Tenant, vs.Name, vs.IP, ns.Name, ns.CIDR)
		case ip == cidr.Base || ip == cidr.Broadcast():
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s is the network/broadcast address",
				spec.Tenant, vs.Name, vs.IP)
		case ip == cidr.Base+1:
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s is the network's gateway",
				spec.Tenant, vs.Name, vs.IP)
		}
		if ns.ServicePool != "" {
			if pool, err := ParseCIDR(ns.ServicePool); err == nil && pool.Contains(ip) {
				return fmt.Errorf("vpc: tenant %s: VM %q: IP %s falls inside network %q's service pool %s",
					spec.Tenant, vs.Name, vs.IP, ns.Name, ns.ServicePool)
			}
		}
		if vmIPs[ns.Name] == nil {
			vmIPs[ns.Name] = make(map[netsim.IP]bool)
		}
		if vmIPs[ns.Name][ip] {
			return fmt.Errorf("vpc: tenant %s: two VMs claim %s in network %q", spec.Tenant, vs.IP, ns.Name)
		}
		vmIPs[ns.Name][ip] = true
		if vs.Host != "" {
			member := false
			for _, m := range ns.Members {
				if m == vs.Host {
					member = true
					break
				}
			}
			if !member {
				return fmt.Errorf("vpc: tenant %s: VM %q pins host %q, which network %q does not list as a member",
					spec.Tenant, vs.Name, vs.Host, ns.Name)
			}
		}
		totalMem += vs.normalized().MemoryMB
	}
	svcNames := make(map[string]bool, len(spec.Services))
	svcVIPs := make(map[string]map[netsim.IP]bool)
	for i := range spec.Services {
		ss := &spec.Services[i]
		if ss.Name == "" {
			return fmt.Errorf("vpc: tenant %s: service %d needs a name", spec.Tenant, i)
		}
		if svcNames[ss.Name] {
			return fmt.Errorf("vpc: tenant %s: duplicate service %q", spec.Tenant, ss.Name)
		}
		svcNames[ss.Name] = true
		ns, ok := names[ss.Network]
		if !ok {
			return fmt.Errorf("vpc: tenant %s: service %q names unknown network %q", spec.Tenant, ss.Name, ss.Network)
		}
		if len(ns.Members) == 0 {
			return fmt.Errorf("vpc: tenant %s: service %q: network %q has no members to probe from",
				spec.Tenant, ss.Name, ss.Network)
		}
		switch ss.Policy {
		case "", "anycast-nearest", "failover-ordered":
		default:
			return fmt.Errorf("vpc: tenant %s: service %q: unknown policy %q", spec.Tenant, ss.Name, ss.Policy)
		}
		if ss.Interval < 0 || ss.Timeout < 0 || ss.Fall < 0 || ss.Rise < 0 {
			return fmt.Errorf("vpc: tenant %s: service %q: negative probe budget", spec.Tenant, ss.Name)
		}
		if len(ss.Backends) == 0 {
			return fmt.Errorf("vpc: tenant %s: service %q has no backends", spec.Tenant, ss.Name)
		}
		seenBackends := make(map[string]bool, len(ss.Backends))
		for _, bs := range ss.Backends {
			if (bs.Member == "") == (bs.VM == "") {
				return fmt.Errorf("vpc: tenant %s: service %q: a backend names exactly one member or VM",
					spec.Tenant, ss.Name)
			}
			if seenBackends[bs.name()] {
				return fmt.Errorf("vpc: tenant %s: service %q lists backend %q twice",
					spec.Tenant, ss.Name, bs.name())
			}
			seenBackends[bs.name()] = true
			if bs.Member != "" {
				member := false
				for _, m := range ns.Members {
					if m == bs.Member {
						member = true
						break
					}
				}
				if !member {
					return fmt.Errorf("vpc: tenant %s: service %q: backend %q is not a member of network %q",
						spec.Tenant, ss.Name, bs.Member, ss.Network)
				}
				continue
			}
			found := false
			for j := range spec.VMs {
				if spec.VMs[j].Name != bs.VM {
					continue
				}
				found = true
				if spec.VMs[j].Network != ss.Network {
					return fmt.Errorf("vpc: tenant %s: service %q: backend VM %q lives in network %q, not %q",
						spec.Tenant, ss.Name, bs.VM, spec.VMs[j].Network, ss.Network)
				}
			}
			if !found {
				return fmt.Errorf("vpc: tenant %s: service %q: backend names unknown VM %q",
					spec.Tenant, ss.Name, bs.VM)
			}
		}
		if ss.VIP == "" {
			if ns.ServicePool == "" {
				return fmt.Errorf("vpc: tenant %s: service %q: no VIP pinned and network %q declares no service pool",
					spec.Tenant, ss.Name, ss.Network)
			}
			continue
		}
		vip, err := netsim.ParseIP(ss.VIP)
		if err != nil {
			return fmt.Errorf("vpc: tenant %s: service %q: %w", spec.Tenant, ss.Name, err)
		}
		cidr, _ := ParseCIDR(ns.CIDR) // validated above
		switch {
		case !cidr.Contains(vip):
			return fmt.Errorf("vpc: tenant %s: service %q: VIP %s outside network %q (%s)",
				spec.Tenant, ss.Name, ss.VIP, ns.Name, ns.CIDR)
		case vip == cidr.Base || vip == cidr.Broadcast():
			return fmt.Errorf("vpc: tenant %s: service %q: VIP %s is the network/broadcast address",
				spec.Tenant, ss.Name, ss.VIP)
		case vip == cidr.Base+1:
			return fmt.Errorf("vpc: tenant %s: service %q: VIP %s is the network's gateway",
				spec.Tenant, ss.Name, ss.VIP)
		}
		if ns.ServicePool != "" {
			pool, _ := ParseCIDR(ns.ServicePool) // validated above
			if !pool.Contains(vip) {
				return fmt.Errorf("vpc: tenant %s: service %q: VIP %s outside network %q's declared service pool %s",
					spec.Tenant, ss.Name, ss.VIP, ns.Name, ns.ServicePool)
			}
		}
		if vmIPs[ss.Network][vip] {
			return fmt.Errorf("vpc: tenant %s: service %q: VIP %s collides with a VM address in network %q",
				spec.Tenant, ss.Name, ss.VIP, ss.Network)
		}
		if svcVIPs[ss.Network] == nil {
			svcVIPs[ss.Network] = make(map[netsim.IP]bool)
		}
		if svcVIPs[ss.Network][vip] {
			return fmt.Errorf("vpc: tenant %s: two services claim VIP %s in network %q", spec.Tenant, ss.VIP, ss.Network)
		}
		svcVIPs[ss.Network][vip] = true
	}
	// The VM capacity envelope is declarative: a spec that exceeds it is
	// refused outright, before any state is touched.
	if q := spec.Quota.MaxVMs; q > 0 && len(spec.VMs) > q {
		return fmt.Errorf("vpc: tenant %s: %d VMs exceed quota MaxVMs=%d", spec.Tenant, len(spec.VMs), q)
	}
	if q := spec.Quota.MaxVMMemoryMB; q > 0 && totalMem > q {
		return fmt.Errorf("vpc: tenant %s: %d MB of VM memory exceeds quota MaxVMMemoryMB=%d",
			spec.Tenant, totalMem, q)
	}
	return nil
}

// normalized fills a VMSpec's defaulted fields so live state can be
// compared against the spec field by field.
func (v VMSpec) normalized() VMSpec {
	if v.MemoryMB <= 0 {
		v.MemoryMB = 256
	}
	if v.DirtyRate <= 0 {
		v.DirtyRate = 2000
	}
	return v
}

// pairKey normalizes an unordered network pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// peeringEqual compares two peering specs for the same pair, policy
// included (order of prefixes matters: specs are data, not sets).
func peeringEqual(x, y PeeringSpec) bool {
	if pairKey(x.A, x.B) != pairKey(y.A, y.B) {
		return false
	}
	// Normalize orientation before comparing the per-side policies.
	xa, xb := x.AllowA, x.AllowB
	if x.A > x.B {
		xa, xb = xb, xa
	}
	ya, yb := y.AllowA, y.AllowB
	if y.A > y.B {
		ya, yb = yb, ya
	}
	return stringsEqual(xa, ya) && stringsEqual(xb, yb)
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
