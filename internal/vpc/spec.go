// Tenant API v2: declarative specs. A TenantSpec is pure data — the
// networks a tenant wants, who is in them, how they peer and what rate
// they may spend — and the reconciler (reconcile.go) converges live
// state onto it. Applying the same spec twice is a no-op.

package vpc

import (
	"fmt"
	"strconv"
	"strings"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/sim"
)

// TenantSpec is the desired state of one tenant's private cloud.
type TenantSpec struct {
	// Tenant names the owner; every network in the spec belongs to it.
	Tenant string
	// Networks are the tenant's virtual networks. Networks the tenant
	// owns that are missing from the spec are torn down.
	Networks []NetworkSpec
	// Peerings are policy-controlled routes between pairs of the
	// tenant's networks. Absent pairs are absolutely isolated.
	Peerings []PeeringSpec
	// VMs are the tenant's virtual machines: each plugs its vif into one
	// of the spec's networks and runs on a declared (or
	// scheduler-chosen) member host. VMs missing from the spec are
	// evicted; a VM whose desired host differs from where it runs is
	// converged by live migration.
	VMs []VMSpec
	// Quota caps the tenant's send rate per (member host, tunnel);
	// RateBps 0 means unmetered.
	Quota QuotaSpec
}

// NetworkSpec describes one virtual network declaratively.
type NetworkSpec struct {
	// Name is the network's unique name.
	Name string
	// CIDR is the address space, e.g. "10.0.0.0/24".
	CIDR string
	// VNI pins the network identifier; 0 auto-allocates.
	VNI uint32
	// Members are the machine keys to admit, in admission order; the
	// first member anchors the network (gateway + DHCP server). Members
	// not listed are evicted.
	Members []string
	// StaticAddressing skips DHCP: members get sequential addresses at
	// admission.
	StaticAddressing bool
	// Lease is the DHCP lease duration (default 10 minutes).
	Lease sim.Duration
	// Brokers is the network's federation: the named rendezvous brokers
	// replicate this network's host records among themselves, and only
	// among themselves — a broker the spec does not name never learns
	// about the network. Members must home on one of the named brokers.
	// Empty keeps the network on the fabric's primary broker alone.
	Brokers []string
}

// PeeringSpec is a policy-carrying route between two of the tenant's
// networks. Traffic crosses only when the destination address is
// allowed: frames entering A must match AllowA, frames entering B must
// match AllowB. An empty list defaults to the whole CIDR of that side.
type PeeringSpec struct {
	A, B string
	// AllowA are destination prefixes within A reachable from B.
	AllowA []string
	// AllowB are destination prefixes within B reachable from A.
	AllowB []string
}

// VMSpec declares one virtual machine of the tenant: where it plugs in
// (a network and an address inside its CIDR) and where it should run.
// The reconciler keeps the VM where the spec says via live migration:
// changing Host on an applied spec pre-copies the image to the new
// member and resumes it there without the vif ever leaving the tenant.
type VMSpec struct {
	// Name is the VM's unique name within the tenant.
	Name string
	// Network names the tenant network whose segment the VM's vif joins.
	Network string
	// IP is the VM's address inside the network's CIDR. Placement
	// reserves it against the network's address pools: it must not
	// already belong to a member, and neither static assignment nor the
	// DHCP server will hand it out while the VM exists.
	IP string
	// MemoryMB sizes the VM image (default 256).
	MemoryMB int
	// DirtyRate is the page-dirtying rate while the VM runs (pages/s,
	// default 2000); it drives pre-copy convergence.
	DirtyRate float64
	// Host pins the VM to a member machine key of its network. "" lets
	// the placement scheduler choose: locality-scored over the distance
	// locator's measured RTTs, load-balanced, and constrained to hosts
	// homed on the network's declared brokers. A scheduler choice is
	// sticky — re-applying does not move the VM while its host remains a
	// valid member.
	Host string
}

// QuotaSpec is a per-tenant rate limit, enforced by a token bucket per
// (member host, tunnel) in the data plane, plus the tenant's VM
// capacity envelope enforced by the placement pass.
type QuotaSpec struct {
	// RateBps is the sustained rate in bits per second; 0 = unmetered.
	RateBps float64
	// BurstBytes is the bucket depth (default 64 KiB).
	BurstBytes int
	// MaxVMs caps the tenant's VM count across all networks (0 =
	// unlimited).
	MaxVMs int
	// MaxVMMemoryMB caps the tenant's total declared VM memory in MB,
	// defaults included (0 = unlimited).
	MaxVMMemoryMB int
}

// ParsePrefix parses a policy prefix "a.b.c.d/n" with 1 <= n <= 32
// (network CIDRs stay restricted to /8../30, but policy may name a
// single host or half a subnet).
func ParsePrefix(s string) (ether.Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return ether.Prefix{}, fmt.Errorf("vpc: bad prefix %q (no length)", s)
	}
	ip, err := netsim.ParseIP(s[:slash])
	if err != nil {
		return ether.Prefix{}, err
	}
	bits, err2 := strconv.Atoi(s[slash+1:])
	if err2 != nil || bits < 1 || bits > 32 {
		return ether.Prefix{}, fmt.Errorf("vpc: bad prefix length in %q", s)
	}
	return ether.Prefix{IP: ip, Bits: bits}, nil
}

// Action is one state change the reconciler performed.
type Action struct {
	// Op identifies the change: create-network, adopt-network,
	// recreate-network, delete-network, admit, evict, peer, repeer,
	// unpeer, peer-connect, peer-disconnect, set-quota, clear-quota,
	// federate, defederate, vm-place, vm-migrate, vm-evict.
	Op string
	// Network is the affected network (or "a<->b" pair for peerings).
	Network string
	// Host is the affected machine key, when the change is per-host.
	Host string
	// Detail carries human-readable specifics (CIDR, policy, rate).
	Detail string
}

// String renders "op network[/host] (detail)".
func (a Action) String() string {
	var b strings.Builder
	b.WriteString(a.Op)
	if a.Network != "" {
		b.WriteByte(' ')
		b.WriteString(a.Network)
	}
	if a.Host != "" {
		b.WriteByte('/')
		b.WriteString(a.Host)
	}
	if a.Detail != "" {
		fmt.Fprintf(&b, " (%s)", a.Detail)
	}
	return b.String()
}

// ApplyReport lists every action one Apply took, in execution order. An
// empty report means live state already matched the spec.
type ApplyReport struct {
	Tenant  string
	Actions []Action

	// span is the "apply" span covering this reconcile; record emits
	// each action as a timestamped event on it (nil-safe).
	span *obs.Span
}

// Empty reports whether the apply was a no-op.
func (r *ApplyReport) Empty() bool { return len(r.Actions) == 0 }

// Ops returns just the action op names, in order (handy for tests and
// examples).
func (r *ApplyReport) Ops() []string {
	out := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		out[i] = a.Op
	}
	return out
}

// String renders one action per line.
func (r *ApplyReport) String() string {
	if r.Empty() {
		return fmt.Sprintf("tenant %s: in sync (no actions)", r.Tenant)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tenant %s: %d action(s)\n", r.Tenant, len(r.Actions))
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

func (a Action) record(rep *ApplyReport) {
	rep.span.Event("%s", a)
	rep.Actions = append(rep.Actions, a)
}

// validate checks a spec's internal consistency before any state is
// touched.
func (spec *TenantSpec) validate() error {
	if spec.Tenant == "" {
		return fmt.Errorf("vpc: tenant needs a name")
	}
	names := make(map[string]*NetworkSpec, len(spec.Networks))
	owner := make(map[string]string) // member -> network
	for i := range spec.Networks {
		ns := &spec.Networks[i]
		if ns.Name == "" {
			return fmt.Errorf("vpc: tenant %s: network %d needs a name", spec.Tenant, i)
		}
		if _, dup := names[ns.Name]; dup {
			return fmt.Errorf("vpc: tenant %s: duplicate network %q", spec.Tenant, ns.Name)
		}
		names[ns.Name] = ns
		if _, err := ParseCIDR(ns.CIDR); err != nil {
			return fmt.Errorf("vpc: tenant %s: network %q: %w", spec.Tenant, ns.Name, err)
		}
		seen := make(map[string]bool, len(ns.Members))
		for _, m := range ns.Members {
			if m == "" {
				return fmt.Errorf("vpc: tenant %s: network %q lists an empty member", spec.Tenant, ns.Name)
			}
			if seen[m] {
				return fmt.Errorf("vpc: tenant %s: network %q lists %q twice", spec.Tenant, ns.Name, m)
			}
			seen[m] = true
			if other, ok := owner[m]; ok {
				return fmt.Errorf("vpc: tenant %s: member %q in both %q and %q (hosts join one network)",
					spec.Tenant, m, other, ns.Name)
			}
			owner[m] = ns.Name
		}
		seenBrokers := make(map[string]bool, len(ns.Brokers))
		for _, b := range ns.Brokers {
			if b == "" {
				return fmt.Errorf("vpc: tenant %s: network %q lists an empty broker", spec.Tenant, ns.Name)
			}
			if seenBrokers[b] {
				return fmt.Errorf("vpc: tenant %s: network %q lists broker %q twice", spec.Tenant, ns.Name, b)
			}
			seenBrokers[b] = true
		}
	}
	pairs := make(map[[2]string]bool, len(spec.Peerings))
	for _, pe := range spec.Peerings {
		if pe.A == pe.B {
			return fmt.Errorf("vpc: tenant %s: peering %q with itself", spec.Tenant, pe.A)
		}
		for _, side := range []string{pe.A, pe.B} {
			if _, ok := names[side]; !ok {
				return fmt.Errorf("vpc: tenant %s: peering names unknown network %q", spec.Tenant, side)
			}
		}
		key := pairKey(pe.A, pe.B)
		if pairs[key] {
			return fmt.Errorf("vpc: tenant %s: duplicate peering %s<->%s", spec.Tenant, key[0], key[1])
		}
		pairs[key] = true
		for _, ps := range append(append([]string(nil), pe.AllowA...), pe.AllowB...) {
			if _, err := ParsePrefix(ps); err != nil {
				return fmt.Errorf("vpc: tenant %s: peering %s<->%s: %w", spec.Tenant, pe.A, pe.B, err)
			}
		}
	}
	if spec.Quota.RateBps < 0 {
		return fmt.Errorf("vpc: tenant %s: negative quota rate", spec.Tenant)
	}
	if spec.Quota.MaxVMs < 0 || spec.Quota.MaxVMMemoryMB < 0 {
		return fmt.Errorf("vpc: tenant %s: negative VM quota", spec.Tenant)
	}
	vmNames := make(map[string]bool, len(spec.VMs))
	vmIPs := make(map[string]map[netsim.IP]bool)
	totalMem := 0
	for i := range spec.VMs {
		vs := &spec.VMs[i]
		if vs.Name == "" {
			return fmt.Errorf("vpc: tenant %s: VM %d needs a name", spec.Tenant, i)
		}
		if vmNames[vs.Name] {
			return fmt.Errorf("vpc: tenant %s: duplicate VM %q", spec.Tenant, vs.Name)
		}
		vmNames[vs.Name] = true
		ns, ok := names[vs.Network]
		if !ok {
			return fmt.Errorf("vpc: tenant %s: VM %q names unknown network %q", spec.Tenant, vs.Name, vs.Network)
		}
		if vs.MemoryMB < 0 || vs.DirtyRate < 0 {
			return fmt.Errorf("vpc: tenant %s: VM %q: negative memory or dirty rate", spec.Tenant, vs.Name)
		}
		ip, err := netsim.ParseIP(vs.IP)
		if err != nil {
			return fmt.Errorf("vpc: tenant %s: VM %q: %w", spec.Tenant, vs.Name, err)
		}
		cidr, _ := ParseCIDR(ns.CIDR) // validated above
		switch {
		case !cidr.Contains(ip):
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s outside network %q (%s)",
				spec.Tenant, vs.Name, vs.IP, ns.Name, ns.CIDR)
		case ip == cidr.Base || ip == cidr.Broadcast():
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s is the network/broadcast address",
				spec.Tenant, vs.Name, vs.IP)
		case ip == cidr.Base+1:
			return fmt.Errorf("vpc: tenant %s: VM %q: IP %s is the network's gateway",
				spec.Tenant, vs.Name, vs.IP)
		}
		if vmIPs[ns.Name] == nil {
			vmIPs[ns.Name] = make(map[netsim.IP]bool)
		}
		if vmIPs[ns.Name][ip] {
			return fmt.Errorf("vpc: tenant %s: two VMs claim %s in network %q", spec.Tenant, vs.IP, ns.Name)
		}
		vmIPs[ns.Name][ip] = true
		if vs.Host != "" {
			member := false
			for _, m := range ns.Members {
				if m == vs.Host {
					member = true
					break
				}
			}
			if !member {
				return fmt.Errorf("vpc: tenant %s: VM %q pins host %q, which network %q does not list as a member",
					spec.Tenant, vs.Name, vs.Host, ns.Name)
			}
		}
		totalMem += vs.normalized().MemoryMB
	}
	// The VM capacity envelope is declarative: a spec that exceeds it is
	// refused outright, before any state is touched.
	if q := spec.Quota.MaxVMs; q > 0 && len(spec.VMs) > q {
		return fmt.Errorf("vpc: tenant %s: %d VMs exceed quota MaxVMs=%d", spec.Tenant, len(spec.VMs), q)
	}
	if q := spec.Quota.MaxVMMemoryMB; q > 0 && totalMem > q {
		return fmt.Errorf("vpc: tenant %s: %d MB of VM memory exceeds quota MaxVMMemoryMB=%d",
			spec.Tenant, totalMem, q)
	}
	return nil
}

// normalized fills a VMSpec's defaulted fields so live state can be
// compared against the spec field by field.
func (v VMSpec) normalized() VMSpec {
	if v.MemoryMB <= 0 {
		v.MemoryMB = 256
	}
	if v.DirtyRate <= 0 {
		v.DirtyRate = 2000
	}
	return v
}

// pairKey normalizes an unordered network pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// peeringEqual compares two peering specs for the same pair, policy
// included (order of prefixes matters: specs are data, not sets).
func peeringEqual(x, y PeeringSpec) bool {
	if pairKey(x.A, x.B) != pairKey(y.A, y.B) {
		return false
	}
	// Normalize orientation before comparing the per-side policies.
	xa, xb := x.AllowA, x.AllowB
	if x.A > x.B {
		xa, xb = xb, xa
	}
	ya, yb := y.AllowA, y.AllowB
	if y.A > y.B {
		ya, yb = yb, ya
	}
	return stringsEqual(xa, ya) && stringsEqual(xb, yb)
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
