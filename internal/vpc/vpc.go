// Package vpc is the multi-tenant control plane that turns the flat
// WAVNet virtual LAN into a Virtual Private Cloud: many isolated
// virtual networks multiplexed over one shared tunnel fabric.
//
// A Manager creates and deletes networks — each with a name, a VNI
// (virtual network identifier), a CIDR address space and an optional
// default flag — and admits WAVNet hosts into them. Admission wires
// three layers at once:
//
//   - data plane: the host joins the VNI's bridge segment, so its
//     frames are VNI-tagged on the wire and foreign tags are dropped
//     (core's isolation check);
//   - control plane: the host re-registers with the rendezvous layer
//     scoped to the network, so Lookup, GroupQuery and brokered
//     connects only ever see co-tenants;
//   - addressing: the first admitted host anchors the network with a
//     static gateway address and a per-network DHCP pool carved from
//     the CIDR; later members lease their addresses over the virtual
//     LAN with the unmodified DHCP client (the paper's §II.B claim,
//     now per tenant).
//
// Because every network has its own VNI, MAC learning tables and DHCP
// pool, two tenants can run the same CIDR (both 10.0.0.0/24) over the
// same physical WAN without ever seeing each other's ARP, broadcast or
// unicast traffic.
package vpc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"wavnet/internal/core"
	"wavnet/internal/dhcp"
	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/placement"
	"wavnet/internal/sim"
)

// Errors returned by the manager.
var (
	ErrNoSuchNetwork = errors.New("vpc: no such network")
	ErrNetworkExists = errors.New("vpc: network name already in use")
	ErrVNIInUse      = errors.New("vpc: VNI already in use")
	ErrVNIRetired    = errors.New("vpc: VNI belonged to a deleted network and is never reused")
	ErrPeered        = errors.New("vpc: network still has an applied peering; remove it from the tenant spec first")
	ErrNotEmpty      = errors.New("vpc: network still has members")
	ErrAnchorPinned  = errors.New("vpc: cannot evict the anchor while other members remain")
	ErrNoDefault     = errors.New("vpc: no default network configured")
	ErrDefaultExists = errors.New("vpc: a default network already exists")
	ErrAlreadyMember = errors.New("vpc: host is already a member of another network")
	ErrPoolExhausted = errors.New("vpc: address pool exhausted")
	ErrNotMember     = errors.New("vpc: host is not a member")
	ErrHasServices   = errors.New("vpc: network still has live services; remove them from the tenant spec first")
)

// CIDR is an IPv4 prefix.
type CIDR struct {
	Base netsim.IP
	Bits int
}

// ParseCIDR parses "a.b.c.d/n".
func ParseCIDR(s string) (CIDR, error) {
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return CIDR{}, fmt.Errorf("vpc: bad CIDR %q (no prefix length)", s)
	}
	ip, err := netsim.ParseIP(s[:slash])
	if err != nil {
		return CIDR{}, err
	}
	bits, err2 := strconv.Atoi(s[slash+1:])
	if err2 != nil || bits < 8 || bits > 30 {
		return CIDR{}, fmt.Errorf("vpc: bad prefix length in %q", s)
	}
	return CIDR{Base: ip & netsim.IP(^uint32(0)<<(32-bits)), Bits: bits}, nil
}

// Mask returns the netmask.
func (c CIDR) Mask() netsim.IP { return netsim.IP(^uint32(0) << (32 - c.Bits)) }

// Broadcast returns the prefix's broadcast address.
func (c CIDR) Broadcast() netsim.IP { return c.Base | ^c.Mask() }

// Contains reports whether ip falls inside the prefix.
func (c CIDR) Contains(ip netsim.IP) bool { return ip&c.Mask() == c.Base }

// String renders "a.b.c.d/n".
func (c CIDR) String() string { return fmt.Sprintf("%s/%d", c.Base, c.Bits) }

// NetworkConfig tunes one virtual network at creation.
type NetworkConfig struct {
	// VNI pins the network's identifier; 0 auto-allocates the next
	// free one (VNI 0 itself is reserved for the default flat LAN).
	VNI uint32
	// Default marks this network as the one hosts are admitted into
	// when they name none.
	Default bool
	// StaticAddressing skips DHCP: members get sequential addresses
	// from the pool at admission (cheaper for large-scale sweeps).
	StaticAddressing bool
	// Lease is the DHCP lease duration (default 10 minutes).
	Lease sim.Duration
	// ServicePool carves a sub-CIDR out of the network's address space
	// for service VIPs: the DHCP server never leases it and static
	// assignment skips it. Empty disables the carve-out.
	ServicePool string
}

// Network is one isolated virtual network.
type Network struct {
	Name    string
	VNI     uint32
	CIDR    CIDR
	Default bool
	// Tenant is the owner that declared this network through a
	// TenantSpec ("" for networks created imperatively).
	Tenant string
	// Brokers is the applied federation: the rendezvous brokers that
	// replicate this network's records among themselves (empty = the
	// fabric's primary broker alone). Maintained by the reconciler.
	Brokers []string

	cfg     NetworkConfig
	members map[string]*Member
	order   []string // admission order; order[0] is the anchor
	dhcpSrv *dhcp.Server
	nextIP  netsim.IP // static-addressing cursor
	// svcPool is the parsed service VIP carve-out (zero when none).
	svcPool CIDR
	hasPool bool
	// reserved pins addresses assigned outside the pools (VM spec IPs):
	// static assignment skips them and the DHCP server never leases
	// them.
	reserved map[netsim.IP]bool

	// repair is the mesh-repair loop (see startMeshRepair).
	repair *sim.Proc
}

// Member is one host's membership in a network.
type Member struct {
	Host  *core.Host
	Net   *Network
	Stack *ipstack.Stack
	IP    netsim.IP

	vif   ether.NIC
	dhcpc *dhcp.Client
}

// Anchor reports whether this member hosts the network's DHCP server.
func (m *Member) Anchor() bool {
	return len(m.Net.order) > 0 && m.Net.order[0] == m.Host.Name()
}

// Members returns the current members in admission order.
func (n *Network) Members() []*Member {
	out := make([]*Member, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.members[name])
	}
	return out
}

// Member returns one host's membership.
func (n *Network) Member(hostName string) (*Member, bool) {
	m, ok := n.members[hostName]
	return m, ok
}

// GatewayIP is the anchor's address (the first usable address of the
// CIDR), which doubles as the DHCP server identifier.
func (n *Network) GatewayIP() netsim.IP { return n.CIDR.Base + 1 }

// DHCPServer exposes the per-network DHCP server (nil before the first
// admission or under static addressing).
func (n *Network) DHCPServer() *dhcp.Server { return n.dhcpSrv }

// reserveIP pins an address for a VM: it must not already belong to a
// member, static assignment skips it, and the DHCP pool refuses to
// lease it.
func (n *Network) reserveIP(ip netsim.IP) error {
	for _, m := range n.Members() {
		if m.IP == ip {
			return fmt.Errorf("address %s already belongs to member %s of %s",
				ip, m.Host.Name(), n.Name)
		}
	}
	n.reserved[ip] = true
	if n.dhcpSrv != nil {
		n.dhcpSrv.Reserve(ip)
	}
	return nil
}

// releaseIP lifts a VM's address reservation.
func (n *Network) releaseIP(ip netsim.IP) {
	delete(n.reserved, ip)
	if n.dhcpSrv != nil {
		n.dhcpSrv.Unreserve(ip)
	}
}

// ServicePool reports the network's VIP carve-out (false when none is
// declared).
func (n *Network) ServicePool() (CIDR, bool) { return n.svcPool, n.hasPool }

// inServicePool reports whether ip falls inside the VIP carve-out.
func (n *Network) inServicePool(ip netsim.IP) bool {
	return n.hasPool && n.svcPool.Contains(ip)
}

// Config returns the configuration the network was created with.
func (n *Network) Config() NetworkConfig { return n.cfg }

// Manager is the multi-tenant control plane.
type Manager struct {
	networks map[string]*Network
	byVNI    map[uint32]*Network
	def      *Network
	nextVNI  uint32
	// retired holds VNIs of deleted networks: stale data-plane segments
	// for them may linger on hosts, so they are never handed out again
	// — not by auto-allocation, and not by explicit pinning.
	retired map[uint32]bool

	// tenants carries the reconciler's per-tenant policy state
	// (applied peerings, placed VMs and quota); network ownership itself
	// lives on Network.Tenant.
	tenants map[string]*tenantState

	// sched is the placement scheduler the VM pass consults for
	// unpinned VMs (created lazily).
	sched *placement.Scheduler

	// tracer records one span per Reconcile (with the actions as events)
	// and parents managed migrations under it; nil disables tracing.
	tracer *obs.Trace
}

// SetTracer installs the span tracer reconciles and managed VM
// migrations record into (nil disables tracing).
func (mg *Manager) SetTracer(tr *obs.Trace) { mg.tracer = tr }

// NewManager returns an empty control plane.
func NewManager() *Manager {
	return &Manager{
		networks: make(map[string]*Network),
		byVNI:    make(map[uint32]*Network),
		nextVNI:  1,
		retired:  make(map[uint32]bool),
		tenants:  make(map[string]*tenantState),
	}
}

// Create registers a new virtual network.
func (mg *Manager) Create(name, cidr string, cfg NetworkConfig) (*Network, error) {
	if name == "" {
		return nil, errors.New("vpc: network needs a name")
	}
	if _, ok := mg.networks[name]; ok {
		return nil, ErrNetworkExists
	}
	if cfg.Default && mg.def != nil {
		return nil, ErrDefaultExists
	}
	prefix, err := ParseCIDR(cidr)
	if err != nil {
		return nil, err
	}
	var pool CIDR
	hasPool := false
	if cfg.ServicePool != "" {
		pool, err = ParseCIDR(cfg.ServicePool)
		if err != nil {
			return nil, err
		}
		if !prefix.Contains(pool.Base) || !prefix.Contains(pool.Broadcast()) ||
			pool.Base <= prefix.Base+1 || pool.Broadcast() >= prefix.Broadcast() {
			return nil, fmt.Errorf("vpc: service pool %s must sit strictly inside %s (past the gateway, before broadcast)",
				cfg.ServicePool, cidr)
		}
		hasPool = true
	}
	vni := cfg.VNI
	if vni == 0 {
		vni = mg.nextVNI
		mg.nextVNI++
	} else if mg.byVNI[vni] != nil {
		return nil, ErrVNIInUse
	} else if mg.retired[vni] {
		return nil, ErrVNIRetired
	} else if vni >= mg.nextVNI {
		// Never auto-allocate a VNI that was ever pinned: stale
		// data-plane segments for a deleted network must not start
		// matching a new tenant's tag.
		mg.nextVNI = vni + 1
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 10 * sim.Minute
	}
	n := &Network{
		Name:     name,
		VNI:      vni,
		CIDR:     prefix,
		Default:  cfg.Default,
		cfg:      cfg,
		members:  make(map[string]*Member),
		nextIP:   prefix.Base + 2,
		reserved: make(map[netsim.IP]bool),
		svcPool:  pool,
		hasPool:  hasPool,
	}
	mg.networks[name] = n
	mg.byVNI[vni] = n
	if cfg.Default {
		mg.def = n
	}
	return n, nil
}

// Delete removes an empty network. Its VNI is never reused. A network
// that still has an applied peering is refused: the manager alone
// cannot revoke the broker allowance or the peer side's gateway rules,
// and network names are reusable — a dangling allowance would link a
// future stranger's network to this tenant. Drop the peering from the
// tenant spec (and Apply) first; the reconciler's own teardown path
// always unpeers before deleting.
func (mg *Manager) Delete(name string) error {
	n, ok := mg.networks[name]
	if !ok {
		return ErrNoSuchNetwork
	}
	if len(n.members) > 0 {
		return ErrNotEmpty
	}
	if ts, ok := mg.tenants[n.Tenant]; ok {
		for pair := range ts.peerings {
			if pair[0] == name || pair[1] == name {
				return ErrPeered
			}
		}
		// A live service's VIP, aliases and probe loop all hang off this
		// network; the reconciler's service pre-pass always evicts them
		// before teardown reaches here.
		for _, rec := range ts.services {
			if rec.spec.Network == name {
				return ErrHasServices
			}
		}
	}
	n.stopMeshRepair()
	delete(mg.networks, name)
	delete(mg.byVNI, n.VNI)
	mg.retired[n.VNI] = true
	if mg.def == n {
		mg.def = nil
	}
	return nil
}

// Get resolves a network by name; the empty name resolves the default.
func (mg *Manager) Get(name string) (*Network, bool) {
	if name == "" {
		if mg.def == nil {
			return nil, false
		}
		return mg.def, true
	}
	n, ok := mg.networks[name]
	return n, ok
}

// Networks lists every network sorted by name.
func (mg *Manager) Networks() []*Network {
	out := make([]*Network, 0, len(mg.networks))
	for _, n := range mg.networks {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// meshRepairInterval paces the per-network repair loop. It is longer
// than the default tunnel timeout divided by anything meaningful on
// purpose: repair is the slow path for members that were cut off long
// enough to be garbage-collected, not a keepalive.
const meshRepairInterval = 10 * sim.Second

// startMeshRepair spawns the network's mesh-repair loop (idempotent).
// The intra-tenant mesh is built once at admission; a member cut off
// from the fabric longer than the tunnel timeout has its tunnels
// garbage-collected on both ends, and nothing on the data path
// re-creates them — so a recovered member (a healed partition, a
// restarted site) would stay unreachable forever. The loop walks member
// pairs every interval and re-punches the missing edges through the
// current home brokers, best effort: a still-dark peer just fails and
// is retried next round.
func (n *Network) startMeshRepair(eng *sim.Engine) {
	if n.repair != nil && !n.repair.Dead() {
		return
	}
	// The loop runs until interrupted: the sticky interrupt propagates
	// out of ConnectTo's wait loops, so Sleep observes it no matter
	// where the stop request landed.
	n.repair = eng.Spawn("vpc/"+n.Name+"/mesh-repair", func(p *sim.Proc) {
		for p.Sleep(meshRepairInterval) {
			n.repairMesh(p)
		}
	})
}

// repairMesh runs one repair round: re-connect every member pair whose
// tunnel is missing or not established.
func (n *Network) repairMesh(p *sim.Proc) {
	order := append([]string(nil), n.order...)
	for i, a := range order {
		for _, b := range order[i+1:] {
			if p.Interrupted() {
				return // stopped mid-round
			}
			ma, oka := n.members[a]
			mb, okb := n.members[b]
			if !oka || !okb { // evicted while we slept
				continue
			}
			if t, ok := ma.Host.Tunnel(b); ok && t.Established() {
				continue
			}
			_, _ = ma.Host.ConnectTo(p, mb.Host.Name())
		}
	}
}

// stopMeshRepair ends the repair loop (idempotent).
func (n *Network) stopMeshRepair() {
	if n.repair != nil && !n.repair.Dead() {
		n.repair.Interrupt()
	}
	n.repair = nil
}

// MeshRepairAlive reports whether the network's repair loop is running;
// teardown tests pin the loop's prompt exit on it.
func (n *Network) MeshRepairAlive() bool {
	return n.repair != nil && !n.repair.Dead()
}

// Admit brings a WAVNet host into a network end-to-end: VPC join
// (segment + scoped rendezvous registration), tunnels to every
// existing co-tenant, and an address — static for the anchor (the
// network's gateway, which also runs the DHCP server), leased over the
// fresh virtual LAN for everyone else. It blocks the calling process
// until the member's stack is configured and reachable.
func (mg *Manager) Admit(p *sim.Proc, h *core.Host, network string) (*Member, error) {
	n, ok := mg.Get(network)
	if !ok {
		if network == "" {
			return nil, ErrNoDefault
		}
		return nil, ErrNoSuchNetwork
	}
	if m, ok := n.members[h.Name()]; ok {
		return m, nil
	}
	prevNet, prevVNI := h.Network()
	if prevNet != "" && (prevNet != n.Name || prevVNI != n.VNI) {
		return nil, ErrAlreadyMember
	}
	_, hadSegment := h.SegmentBridge(n.VNI)
	if err := h.JoinVPC(p, n.Name, n.VNI); err != nil {
		return nil, err
	}
	// A failed admission must not strand the host scoped to a network
	// it never became a member of: restore its previous scope (and
	// only drop the segment if this attempt created it).
	rollback := func() {
		if !hadSegment {
			h.LeaveVNI(n.VNI)
		}
		_ = h.JoinVPC(p, prevNet, prevVNI)
	}
	// Intra-tenant mesh: a member reaches every co-tenant directly.
	for _, peer := range n.order {
		if _, err := h.ConnectTo(p, peer); err != nil {
			rollback()
			return nil, fmt.Errorf("vpc: %s -> %s: %w", h.Name(), peer, err)
		}
	}
	m := &Member{Host: h, Net: n}
	if len(n.order) == 0 {
		if err := n.anchor(m); err != nil {
			rollback()
			return nil, err
		}
	} else if err := n.address(p, m); err != nil {
		rollback()
		return nil, err
	}
	n.members[h.Name()] = m
	n.order = append(n.order, h.Name())
	n.startMeshRepair(h.Phys().Engine())
	return m, nil
}

// anchor configures the first member: static gateway address plus the
// per-network DHCP server leasing the rest of the CIDR.
func (n *Network) anchor(m *Member) error {
	st, err := m.Host.CreateDom0On(n.VNI, n.GatewayIP())
	if err != nil {
		return err
	}
	m.Stack, m.IP = st, n.GatewayIP()
	if n.cfg.StaticAddressing {
		return nil
	}
	// The pool is the CIDR's usable range minus the network address,
	// the gateway/anchor (+1) and the broadcast address.
	srv, err := dhcp.NewServer(st, dhcp.ServerConfig{
		PoolStart:  n.GatewayIP() + 1,
		PoolEnd:    n.CIDR.Broadcast() - 1,
		SubnetMask: n.CIDR.Mask(),
		Router:     n.GatewayIP(),
		Lease:      n.cfg.Lease,
	})
	if err != nil {
		return err
	}
	// The service VIP carve-out is reserved wholesale: the pool's
	// addresses belong to services, never to leases. Individual VIPs are
	// additionally pinned via reserveIP at service admission (so pinned
	// VIPs outside any pool are protected too).
	if n.hasPool {
		for ip := n.svcPool.Base; ip <= n.svcPool.Broadcast(); ip++ {
			srv.Reserve(ip)
		}
	}
	n.dhcpSrv = srv
	return nil
}

// address configures a non-anchor member's stack on the VNI segment.
func (n *Network) address(p *sim.Proc, m *Member) error {
	h := m.Host
	vifName := fmt.Sprintf("vpc%d", n.VNI)
	vif, err := h.AttachVIFOn(n.VNI, vifName)
	if err != nil {
		return err
	}
	m.vif = vif
	stackName := fmt.Sprintf("%s-%s", h.Name(), n.Name)
	if n.cfg.StaticAddressing {
		for n.reserved[n.nextIP] || n.inServicePool(n.nextIP) {
			n.nextIP++
		}
		ip := n.nextIP
		if ip >= n.CIDR.Broadcast() {
			h.DetachVIF(vif)
			return ErrPoolExhausted
		}
		n.nextIP++
		m.Stack = ipstack.New(h.Phys().Engine(), stackName, vif, h.NewMAC(), ip,
			ipstack.Config{MTU: h.SegmentMTU(n.VNI)})
		m.IP = ip
		return nil
	}
	// Lease over the virtual LAN with the unmodified DHCP client.
	m.Stack = ipstack.New(h.Phys().Engine(), stackName, vif, h.NewMAC(), 0,
		ipstack.Config{MTU: h.SegmentMTU(n.VNI)})
	cl, err := dhcp.NewClient(m.Stack, dhcp.ClientConfig{})
	if err != nil {
		h.DetachVIF(vif)
		return err
	}
	m.dhcpc = cl
	ip, err := cl.Acquire(p)
	if err != nil {
		cl.Close()
		h.DetachVIF(vif)
		return fmt.Errorf("vpc: %s: %w", h.Name(), err)
	}
	m.IP = ip
	return nil
}

// Evict removes a member from its network: the lease is released, the
// vif detached, the host's segment dropped (after which the tag check
// discards any traffic still addressed to it), and the host is
// re-scoped to the default network so it can be admitted elsewhere.
// The anchor can only leave last (it hosts the DHCP server).
func (mg *Manager) Evict(p *sim.Proc, h *core.Host, network string) error {
	n, ok := mg.Get(network)
	if !ok {
		return ErrNoSuchNetwork
	}
	m, ok := n.members[h.Name()]
	if !ok {
		return ErrNotMember
	}
	if m.Anchor() && len(n.members) > 1 {
		return ErrAnchorPinned
	}
	// A member still running one of the tenant's VMs cannot leave: its
	// departure would drop the segment out from under the vif. The
	// reconciler's VM pre-pass detaches such VMs before any eviction;
	// imperative callers must drop the VM from the tenant spec first.
	if ts, ok := mg.tenants[n.Tenant]; ok {
		for name, rec := range ts.vms {
			if rec.host == h.Name() && rec.spec.Network == n.Name {
				return fmt.Errorf("vpc: %s still runs VM %q; remove it from the tenant spec first",
					h.Name(), name)
			}
		}
		// Likewise a member still backing a LIVE service: its stack
		// aliases the VIP and the probe loop pings it. The service
		// pre-pass stops affected services before evictions run.
		for name, rec := range ts.services {
			if rec.svc == nil || rec.spec.Network != n.Name {
				continue
			}
			for _, bs := range rec.spec.Backends {
				if bs.Member == h.Name() {
					return fmt.Errorf("vpc: %s still backs service %q; remove it from the tenant spec first",
						h.Name(), name)
				}
			}
		}
	}
	// Control-plane scope must not outlive the membership: co-tenants
	// could otherwise still discover and broker-connect to the evicted
	// host, and the host itself could join nothing else. Re-scope
	// FIRST: if the RPC fails the membership stays intact and the
	// eviction can simply be retried.
	if err := h.LeaveVPC(p); err != nil {
		return err
	}
	if m.dhcpc != nil {
		m.dhcpc.Release()
		m.dhcpc.Close()
	}
	if m.vif != nil {
		h.DetachVIF(m.vif)
	}
	if m.Anchor() && n.dhcpSrv != nil {
		n.dhcpSrv.Close()
		n.dhcpSrv = nil
	}
	h.LeaveVNI(n.VNI)
	// Per-tenant data-plane policy must not outlive the membership.
	h.ClearVNIQuota(n.VNI)
	h.DropPeeringsOf(n.VNI)
	delete(n.members, h.Name())
	for i, name := range n.order {
		if name == h.Name() {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	return nil
}
