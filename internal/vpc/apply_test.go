package vpc_test

import (
	"strings"
	"testing"
	"time"

	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/vpc"
)

// apply converges one spec through the public synchronous entry point.
func apply(t *testing.T, w *scenario.World, spec vpc.TenantSpec) (*vpc.ApplyReport, error) {
	t.Helper()
	return w.ApplySync(spec)
}

func ops(rep *vpc.ApplyReport) string { return strings.Join(rep.Ops(), ",") }

// TestApplyLifecycle drives one tenant through its whole declarative
// life: create, grow, shrink, peer, unpeer, re-quota, tear down — and
// checks that every intermediate re-apply of the same spec is a no-op.
func TestApplyLifecycle(t *testing.T) {
	w, err := scenario.Build(5, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustApply := func(spec vpc.TenantSpec, wantOps string) {
		t.Helper()
		rep, err := apply(t, w, spec)
		if err != nil {
			t.Fatalf("apply: %v (report so far: %v)", err, rep)
		}
		if got := ops(rep); got != wantOps {
			t.Fatalf("ops = %q, want %q", got, wantOps)
		}
		again, err := apply(t, w, spec)
		if err != nil {
			t.Fatalf("re-apply: %v", err)
		}
		if !again.Empty() {
			t.Fatalf("re-apply not idempotent: %v", again)
		}
	}

	// Birth: one network, two members, a quota.
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "app", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
		},
		Quota: vpc.QuotaSpec{RateBps: 8e6},
	}
	mustApply(spec, "create-network,admit,admit,set-quota")
	n, _ := w.VPC().Get("app")
	if n.Tenant != "acme" {
		t.Fatalf("network owner %q", n.Tenant)
	}
	if q, ok := n.Members()[0].Host.VNIQuota(n.VNI); !ok || q.RateBps != 8e6 {
		t.Fatalf("member quota = %+v %v", q, ok)
	}

	// Growth: a second network, a third member, a peering.
	spec.Networks[0].Members = append(spec.Networks[0].Members, "pc02")
	spec.Networks = append(spec.Networks, vpc.NetworkSpec{
		Name: "db", CIDR: "10.20.0.0/24", Members: []string{"pc03"}, StaticAddressing: true,
	})
	spec.Peerings = []vpc.PeeringSpec{{A: "app", B: "db"}}
	// Network creation reconciles before membership, so db appears
	// before pc02's admission into app.
	mustApply(spec, "create-network,admit,admit,peer,peer-connect,peer-connect,peer-connect")

	// Policy change alone re-peers without reconnecting.
	spec.Peerings[0].AllowB = []string{"10.20.0.0/31"}
	mustApply(spec, "repeer")

	// Shrink: drop a member; its host must be reusable afterwards.
	spec.Networks[0].Members = []string{"pc00", "pc01"}
	mustApply(spec, "evict")
	if net, vni := w.M("pc02").WAV.Network(); net != "" || vni != 0 {
		t.Fatalf("evicted host still scoped to %q/%d", net, vni)
	}

	// Unpeer and delete the db network in one apply: the peering goes
	// first (while both sides exist) and reports the tunnels it tears
	// down, then members, then the network. Only 2 of the 3 recorded
	// peer links still have their app-side host (pc02 was evicted), but
	// all 3 disconnects are reported.
	spec.Peerings = nil
	spec.Networks = spec.Networks[:1]
	mustApply(spec, "unpeer,peer-disconnect,peer-disconnect,peer-disconnect,evict,delete-network")
	if _, ok := w.VPC().Get("db"); ok {
		t.Fatal("db still exists")
	}

	// Quota withdrawal.
	spec.Quota = vpc.QuotaSpec{}
	mustApply(spec, "clear-quota")
	if _, ok := n.Members()[0].Host.VNIQuota(n.VNI); ok {
		t.Fatal("quota still set after clear")
	}

	// A snapshot of live state applies as a no-op.
	snap := w.VPC().SnapshotTenant("acme")
	rep, err := apply(t, w, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("snapshot apply not a no-op: %v", rep)
	}
}

// TestApplyMovesMemberBetweenNetworks: moving a host from one of the
// tenant's networks to another must converge regardless of the order
// the networks appear in the spec (all evictions run before any
// admission).
func TestApplyMovesMemberBetweenNetworks(t *testing.T) {
	w, err := scenario.Build(13, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "b", CIDR: "10.20.0.0/24", Members: []string{"pc02"}, StaticAddressing: true},
			{Name: "a", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
		},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	// Move pc01 from a to b; the destination network is declared FIRST.
	spec.Networks[0].Members = []string{"pc02", "pc01"}
	spec.Networks[1].Members = []string{"pc00"}
	rep, err := apply(t, w, spec)
	if err != nil {
		t.Fatalf("move did not converge: %v", err)
	}
	if got := ops(rep); got != "evict,admit" {
		t.Fatalf("ops = %q, want evict,admit", got)
	}
	b, _ := w.VPC().Get("b")
	if _, in := b.Member("pc01"); !in {
		t.Fatal("pc01 not in b after the move")
	}
}

// TestJoinVPCAdoptsExistingMembers: the deprecated JoinVPC shim on an
// imperatively created network must keep the members that were already
// admitted outside the spec machinery.
func TestJoinVPCAdoptsExistingMembers(t *testing.T) {
	w, err := scenario.Build(17, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.VPC().Create("legacy", "10.7.0.0/24", vpc.NetworkConfig{StaticAddressing: true}); err != nil {
		t.Fatal(err)
	}
	// Admit pc00 through the raw manager (no tenant ownership at all).
	var admitErr error
	w.Eng.Spawn("admit", func(p *sim.Proc) {
		h, err := w.ResolveHost(p, "pc00")
		if err != nil {
			admitErr = err
			return
		}
		_, admitErr = w.VPC().Admit(p, h, "legacy")
	})
	w.Eng.RunFor(time.Minute)
	if admitErr != nil {
		t.Fatal(admitErr)
	}
	if err := w.JoinVPC("legacy", "pc01"); err != nil {
		t.Fatal(err)
	}
	n, _ := w.VPC().Get("legacy")
	if len(n.Members()) != 2 {
		t.Fatalf("members = %d, want 2 (adoption evicted the pre-existing member?)", len(n.Members()))
	}
	if _, in := n.Member("pc00"); !in {
		t.Fatal("pc00 was evicted by the JoinVPC shim")
	}
	if n.Tenant != "legacy" {
		t.Fatalf("network not adopted: tenant %q", n.Tenant)
	}
}

// TestUnpeerKeepsSharedFabric: removing a peering tears down only the
// tunnels the peering created. A tunnel that predates it (the shared
// default-network fabric) keeps carrying its other traffic.
func TestUnpeerKeepsSharedFabric(t *testing.T) {
	w, err := scenario.Build(9, scenario.EmulatedWANSpecs(2, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Default-network mesh FIRST: pc00-pc01 tunnel + Dom0 stacks.
	if err := w.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{
			{Name: "a", CIDR: "10.10.0.0/24", Members: []string{"pc00"}, StaticAddressing: true},
			{Name: "b", CIDR: "10.20.0.0/24", Members: []string{"pc01"}, StaticAddressing: true},
		},
		Peerings: []vpc.PeeringSpec{{A: "a", B: "b"}},
	}
	rep, err := apply(t, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The fabric tunnel already existed, so peering must not have
	// created (and therefore must not later destroy) any.
	for _, a := range rep.Actions {
		if a.Op == "peer-connect" {
			t.Fatalf("peer-connect over a pre-existing tunnel: %v", a)
		}
	}
	spec.Peerings = nil
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	tun, ok := w.M("pc00").WAV.Tunnel("pc01")
	if !ok || !tun.Established() {
		t.Fatal("unpeer severed the pre-existing shared-fabric tunnel")
	}
	// And the default virtual LAN still works over it.
	var rtt sim.Duration
	var pingErr error
	w.Eng.Spawn("ping", func(p *sim.Proc) {
		w.M("pc00").Dom0().Ping(p, w.M("pc01").VIP, 56, 5*time.Second)
		rtt, pingErr = w.M("pc00").Dom0().Ping(p, w.M("pc01").VIP, 56, 5*time.Second)
	})
	w.Eng.RunFor(30 * time.Second)
	if pingErr != nil || rtt <= 0 {
		t.Fatalf("default-LAN ping after unpeer: rtt=%v err=%v", rtt, pingErr)
	}
}

// TestApplyRejects covers the error paths: invalid specs, ownership
// collisions, and convergence the reconciler must refuse.
func TestApplyRejects(t *testing.T) {
	w, err := scenario.Build(6, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []vpc.TenantSpec{
		{}, // no tenant name
		{Tenant: "t", Networks: []vpc.NetworkSpec{{Name: "", CIDR: "10.0.0.0/24"}}},
		{Tenant: "t", Networks: []vpc.NetworkSpec{{Name: "a", CIDR: "nope"}}},
		{Tenant: "t", Networks: []vpc.NetworkSpec{
			{Name: "a", CIDR: "10.0.0.0/24"}, {Name: "a", CIDR: "10.1.0.0/24"}}},
		{Tenant: "t", Networks: []vpc.NetworkSpec{
			{Name: "a", CIDR: "10.0.0.0/24", Members: []string{"pc00"}},
			{Name: "b", CIDR: "10.1.0.0/24", Members: []string{"pc00"}}}},
		{Tenant: "t", Networks: []vpc.NetworkSpec{{Name: "a", CIDR: "10.0.0.0/24"}},
			Peerings: []vpc.PeeringSpec{{A: "a", B: "ghost"}}},
		{Tenant: "t", Networks: []vpc.NetworkSpec{{Name: "a", CIDR: "10.0.0.0/24"}},
			Peerings: []vpc.PeeringSpec{{A: "a", B: "a"}}},
	}
	for i, spec := range bad {
		if _, err := apply(t, w, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}

	// Ownership: tenant two cannot claim tenant one's network.
	good := vpc.TenantSpec{Tenant: "one", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.0.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true}}}
	if _, err := apply(t, w, good); err != nil {
		t.Fatal(err)
	}
	thief := vpc.TenantSpec{Tenant: "two", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.0.0.0/24"}}}
	if _, err := apply(t, w, thief); err == nil || !strings.Contains(err.Error(), "belongs to tenant") {
		t.Fatalf("ownership violation: %v", err)
	}

	// A populated network cannot silently change CIDR.
	moved := vpc.TenantSpec{Tenant: "one", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.9.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true}}}
	if _, err := apply(t, w, moved); err == nil || !strings.Contains(err.Error(), "cannot converge") {
		t.Fatalf("CIDR change on populated network: %v", err)
	}

	// Removing the anchor while keeping members cannot converge.
	headless := vpc.TenantSpec{Tenant: "one", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.0.0.0/24", Members: []string{"pc01"}, StaticAddressing: true}}}
	if _, err := apply(t, w, headless); err == nil || !strings.Contains(err.Error(), "anchors") {
		t.Fatalf("anchor removal: %v", err)
	}

	// An EMPTY network may change CIDR: recreate from the spec.
	empty := vpc.TenantSpec{Tenant: "one", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.0.0.0/24", StaticAddressing: true}}}
	if _, err := apply(t, w, empty); err != nil {
		t.Fatal(err)
	}
	recreated := vpc.TenantSpec{Tenant: "one", Networks: []vpc.NetworkSpec{
		{Name: "net", CIDR: "10.9.0.0/24", StaticAddressing: true}}}
	rep, err := apply(t, w, recreated)
	if err != nil {
		t.Fatal(err)
	}
	if got := ops(rep); got != "recreate-network" {
		t.Fatalf("ops = %q", got)
	}
}

// TestApplyVMFollowsMembership: when a VM's current host leaves its
// network in the same apply, the VM cannot migrate (its source end is
// leaving the tenant), so the pre-pass detaches it and the placement
// pass boots it fresh on a surviving member. An imperative eviction of
// a host still running a VM is refused outright.
func TestApplyVMFollowsMembership(t *testing.T) {
	w, err := scenario.Build(14, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.30.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01", "pc02"},
		}},
		VMs: []vpc.VMSpec{{Name: "job", Network: "vnet", IP: "10.30.0.200", MemoryMB: 16, Host: "pc02"}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}

	// Evicting pc02 imperatively while the VM runs there is refused.
	n, _ := w.VPC().Get("vnet")
	m, _ := n.Member("pc02")
	evictErr := error(nil)
	evicted := false
	w.Eng.Spawn("evict", func(p *sim.Proc) {
		evictErr = w.VPC().Evict(p, m.Host, "vnet")
		evicted = true
	})
	w.Eng.RunFor(10 * time.Second)
	if !evicted || evictErr == nil || !strings.Contains(evictErr.Error(), "still runs VM") {
		t.Fatalf("evicting a VM's host: done=%v err=%v", evicted, evictErr)
	}

	// Declaratively dropping the host (with the VM unpinned) re-places
	// the VM on a surviving member: evict before the membership change,
	// place after it.
	spec.Networks[0].Members = []string{"pc00", "pc01"}
	spec.VMs[0].Host = ""
	rep, err := apply(t, w, spec)
	if err != nil {
		t.Fatalf("apply: %v (report: %v)", err, rep)
	}
	got := ops(rep)
	if !strings.Contains(got, "vm-evict") || !strings.Contains(got, "evict") ||
		!strings.Contains(got, "vm-place") {
		t.Fatalf("ops = %q, want vm-evict ... evict ... vm-place", got)
	}
	host, ok := w.VPC().VMHost("job")
	if !ok || (host != "pc00" && host != "pc01") {
		t.Fatalf("VM on %q, want a surviving member", host)
	}
	// Idempotent afterwards.
	again, err := apply(t, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Fatalf("re-apply not idempotent: %v", again)
	}
}

// TestApplyVMAddressReservation: a VM's spec'd IP is pinned against the
// network's address pools — a spec claiming a member's live address is
// refused at placement, static assignment skips reserved addresses when
// later members join, and eviction releases the reservation.
func TestApplyVMAddressReservation(t *testing.T) {
	w, err := scenario.Build(15, scenario.EmulatedWANSpecs(4, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.31.0.0/24", StaticAddressing: true,
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	n, _ := w.VPC().Get("vnet")
	// Static addressing: anchor pc00 = .1, pc01 = .2; a VM claiming .2
	// collides with pc01 and must be refused.
	taken := spec
	taken.VMs = []vpc.VMSpec{{Name: "clash", Network: "vnet", IP: "10.31.0.2", MemoryMB: 16, Host: "pc00"}}
	if _, err := apply(t, w, taken); err == nil || !strings.Contains(err.Error(), "already belongs to member") {
		t.Fatalf("member-address clash error = %v", err)
	}

	// A VM at .3 — exactly where the static cursor points next — forces
	// the next admitted member to skip to .4.
	spec.VMs = []vpc.VMSpec{{Name: "job", Network: "vnet", IP: "10.31.0.3", MemoryMB: 16, Host: "pc00"}}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.Networks[0].Members = append(spec.Networks[0].Members, "pc02")
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	m, _ := n.Member("pc02")
	if m.IP.String() != "10.31.0.4" {
		t.Fatalf("pc02 got %s, want 10.31.0.4 (VM holds .3)", m.IP)
	}

	// Eviction releases the reservation: the next member takes .3... the
	// cursor already moved past it, but a fresh VM may claim it again.
	spec.VMs = nil
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.VMs = []vpc.VMSpec{{Name: "job2", Network: "vnet", IP: "10.31.0.3", MemoryMB: 16, Host: "pc00"}}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatalf("re-claiming a released VM address: %v", err)
	}
}

// TestApplyVMReservationBlocksDHCP: on a DHCP-addressed network the
// VM's address is reserved on the per-network server, so a member
// joining later leases around it.
func TestApplyVMReservationBlocksDHCP(t *testing.T) {
	w, err := scenario.Build(16, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.32.0.0/24",
			Members: []string{"pc00", "pc01"},
		}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	// Pool starts at .2; pc01 leased it. The VM takes .3, which the
	// server would otherwise offer to the next client.
	spec.VMs = []vpc.VMSpec{{Name: "job", Network: "vnet", IP: "10.32.0.3", MemoryMB: 16, Host: "pc00"}}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.Networks[0].Members = append(spec.Networks[0].Members, "pc02")
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	n, _ := w.VPC().Get("vnet")
	m, _ := n.Member("pc02")
	v, _ := w.VPC().VM("job")
	if m.IP == v.IP() {
		t.Fatalf("DHCP leased the VM's reserved address %s to pc02", m.IP)
	}
	if m.IP.String() != "10.32.0.4" {
		t.Fatalf("pc02 leased %s, want 10.32.0.4 (VM holds .3)", m.IP)
	}
}

// TestApplyVMReservationSurvivesReplace is the regression guard for a
// one-apply race: a VM the spec still wants is evicted by the pre-pass
// (geometry change forces recreate) while a new DHCP member joins in
// the same apply. The VM's address reservation must survive the
// eviction, or the fresh member leases the address and the re-place
// fails on a perfectly valid spec.
func TestApplyVMReservationSurvivesReplace(t *testing.T) {
	w, err := scenario.Build(17, scenario.EmulatedWANSpecs(3, 100e6), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := vpc.TenantSpec{
		Tenant: "acme",
		Networks: []vpc.NetworkSpec{{
			Name: "vnet", CIDR: "10.33.0.0/24", Members: []string{"pc00"},
		}},
		VMs: []vpc.VMSpec{{Name: "job", Network: "vnet", IP: "10.33.0.2", MemoryMB: 16, Host: "pc00"}},
	}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}
	spec.Networks[0].Members = []string{"pc00", "pc01"}
	if _, err := apply(t, w, spec); err != nil {
		t.Fatal(err)
	}

	// One apply: pc01 out, pc02 in, and the VM's memory doubles (the
	// pre-pass must evict + re-place it at the same address).
	spec.Networks[0].Members = []string{"pc00", "pc02"}
	spec.VMs[0].MemoryMB = 32
	rep, err := apply(t, w, spec)
	if err != nil {
		t.Fatalf("apply: %v (report: %v)", err, rep)
	}
	got := ops(rep)
	if !strings.Contains(got, "vm-evict") || !strings.Contains(got, "vm-place") {
		t.Fatalf("ops = %q, want vm-evict ... vm-place", got)
	}
	v, ok := w.VPC().VM("job")
	if !ok || v.IP().String() != "10.33.0.2" {
		t.Fatalf("VM missing or moved off its address: ok=%v ip=%v", ok, v.IP())
	}
	n, _ := w.VPC().Get("vnet")
	m, _ := n.Member("pc02")
	if m.IP == v.IP() {
		t.Fatalf("pc02 leased the VM's reserved address %s", m.IP)
	}
}
