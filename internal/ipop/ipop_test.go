package ipop

import (
	"testing"

	"time"
	"wavnet/internal/ipstack"

	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// rig builds an IPOP deployment of n NATed nodes plus a public STUN
// server, bootstraps it, and creates dom0 stacks 10.20.0.<i+1>.
type rig struct {
	eng   *sim.Engine
	nw    *netsim.Network
	inet  *Network
	nodes []*Node
}

func buildRig(t *testing.T, seed int64, n int, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(seed)}
	r.nw = netsim.New(r.eng)
	hub := r.nw.NewSite("hub")
	stunHost := r.nw.NewPublicHost("stun", hub, netsim.MustParseIP("70.0.0.1"), 0, time.Millisecond)
	if _, err := stun.NewServer(stunHost, netsim.MustParseIP("70.0.0.2"), 3478, 3479); err != nil {
		t.Fatal(err)
	}
	r.inet = New(r.eng, cfg)
	for i := 0; i < n; i++ {
		site := r.nw.NewSite("s")
		r.nw.SetRTT(hub, site, time.Duration(10+5*i)*time.Millisecond)
		for j, other := range r.nw.Sites()[1 : i+1] {
			r.nw.SetRTT(other, site, time.Duration(20+5*(i+j))*time.Millisecond)
		}
		gw := r.nw.NewPublicHost("gw", site, netsim.MakeIP(80, byte(i+1), 0, 1), 100e6, 100*time.Microsecond)
		lan := r.nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		nat.Attach(gw, nat.FullCone)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		node, err := r.inet.AddNode(phys, "node"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
	}
	r.inet.Build()
	failed := -1
	r.eng.Spawn("bootstrap", func(p *sim.Proc) {
		failed = r.inet.Bootstrap(p, netsim.Addr{IP: netsim.MustParseIP("70.0.0.1"), Port: 3478})
	})
	r.eng.RunFor(30 * time.Second)
	if failed != 0 {
		t.Fatalf("bootstrap: %d links failed", failed)
	}
	for i, node := range r.nodes {
		node.CreateDom0(netsim.MakeIP(10, 20, 0, byte(i+1)))
	}
	return r
}

func TestOverlayPing(t *testing.T) {
	r := buildRig(t, 1, 4, Config{})
	var rtt sim.Duration
	var err error
	r.eng.Spawn("ping", func(p *sim.Proc) {
		// Warm up ARP/proxy paths, then measure.
		r.nodes[0].Dom0().Ping(p, r.nodes[3].Dom0().IP(), 56, 5*time.Second)
		rtt, err = r.nodes[0].Dom0().Ping(p, r.nodes[3].Dom0().IP(), 56, 5*time.Second)
	})
	r.eng.RunFor(30 * time.Second)
	if err != nil {
		t.Fatalf("overlay ping: %v", err)
	}
	if rtt <= 0 {
		t.Fatal("no RTT measured")
	}
}

func TestOverlayMultiHopCostsMore(t *testing.T) {
	// With 8 nodes, some pairs route through intermediates: their RTT
	// must exceed the direct-physical path RTT (the overlay detour +
	// per-hop processing the paper attributes IPOP's slowdown to).
	r := buildRig(t, 2, 8, Config{})
	rtts := make([]sim.Duration, 0, 7)
	r.eng.Spawn("probe", func(p *sim.Proc) {
		for i := 1; i < 8; i++ {
			r.nodes[0].Dom0().Ping(p, r.nodes[i].Dom0().IP(), 56, 10*time.Second)
			rtt, err := r.nodes[0].Dom0().Ping(p, r.nodes[i].Dom0().IP(), 56, 10*time.Second)
			if err != nil {
				t.Errorf("ping %d: %v", i, err)
				return
			}
			rtts = append(rtts, rtt)
		}
	})
	r.eng.RunFor(5 * time.Minute)
	if len(rtts) != 7 {
		t.Fatalf("measured %d of 7 RTTs", len(rtts))
	}
	total := r.inet.Routed
	if total == 0 {
		t.Fatal("no packets routed through the overlay")
	}
}

func TestProcessingRateCap(t *testing.T) {
	// Offer far more packets than ProcRate allows: deliveries must be
	// capped near ProcRate and the backlog guard must drop the excess.
	r := buildRig(t, 3, 2, Config{ProcRate: 500})
	n0, n1 := r.nodes[0], r.nodes[1]
	got := 0
	sock1, err := n1.Dom0().BindUDP(7000, func(ipstack.Datagram) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	_ = sock1
	r.eng.Spawn("blast", func(p *sim.Proc) {
		cli, _ := n0.Dom0().BindUDP(0, nil)
		// 2000 pps for 4 s = 8000 datagrams against a 500 pps cap.
		for i := 0; i < 8000; i++ {
			cli.SendTo(netsim.Addr{IP: n1.Dom0().IP(), Port: 7000}, make([]byte, 100))
			p.Sleep(500 * time.Microsecond)
		}
	})
	r.eng.RunFor(20 * time.Second)
	if got > 3000 {
		t.Fatalf("rate cap leaked: %d datagrams delivered (cap 500 pps × ~5 s)", got)
	}
	if n0.ProcDrops == 0 {
		t.Fatal("no processing drops recorded under overload")
	}
	if got < 1000 {
		t.Fatalf("cap too aggressive: only %d delivered", got)
	}
}

func TestStaleRouteAfterOwnerGone(t *testing.T) {
	// The migration flaw in miniature: the IP map still points at node 0
	// even after its stack detaches; traffic must keep flowing there and
	// die, not find the new location.
	r := buildRig(t, 4, 3, Config{})
	moved := netsim.MakeIP(10, 20, 0, 99)
	r.inet.RegisterIP(moved, r.nodes[0]) // "VM" lives on node 0 per the overlay
	var err error
	r.eng.Spawn("probe", func(p *sim.Proc) {
		// Node 2 pings the address: node 0 has no such local stack, so
		// delivery fails (ARP on the local bridge never resolves).
		_, err = r.nodes[2].Dom0().Ping(p, moved, 56, 3*time.Second)
	})
	r.eng.RunFor(30 * time.Second)
	if err == nil {
		t.Fatal("ping to stale-mapped address succeeded; IPOP should not track moves")
	}
}
