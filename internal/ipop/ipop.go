// Package ipop implements the comparison baseline of the paper's
// evaluation: an IPOP-like layer-3 overlay VPN (Ganguly et al., "IP over
// P2P"). It differs from WAVNet in exactly the ways the paper calls out:
//
//   - Data packets are routed through the structured P2P overlay (a ring
//     with finger shortcuts), traversing intermediate nodes rather than a
//     direct host-to-host tunnel.
//   - Every overlay packet pays user-level processing at each hop: a
//     fixed per-packet delay plus a node-wide service-rate cap, which is
//     what collapses IPOP's relative bandwidth on fast links (Figure 7).
//   - The mapping from virtual IP to overlay node is established when a
//     node registers the address and is not updated by gratuitous ARP, so
//     after VM live migration packets keep flowing to the stale node
//     (Figure 9's post-migration stall).
//
// Node-to-node overlay links are opened by a bootstrap round that
// discovers each node's NAT mapping via STUN and fires simultaneous
// hellos — a stand-in for Brunet's connection protocol.
package ipop

import (
	"encoding/binary"
	"sort"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// RouterMAC is the MAC the IPOP tap impersonates for all remote virtual
// IPs (proxy ARP, as in IPOP's router mode).
var RouterMAC = ether.MAC{0x02, 0x50, 0x4F, 0x50, 0x00, 0x01}

// Overlay packet types.
const (
	opHello = 0x21
	opData  = 0x22
)

// overlayHeaderExtra models Brunet's per-packet header overhead beyond
// our compact 12-byte routing header.
const overlayHeaderExtra = 30

// Config tunes an IPOP node.
type Config struct {
	Port uint16 // overlay UDP port (default 4600)
	// ProcRate is the node's user-level forwarding capacity in
	// packets/second (default 1800, calibrated to Figure 7's collapse).
	ProcRate float64
	// ProcDelay is the fixed per-packet processing latency (default 150µs).
	ProcDelay sim.Duration
	// BridgeLatency matches core's software bridge cost.
	BridgeLatency sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = 4600
	}
	if c.ProcRate <= 0 {
		c.ProcRate = 1800
	}
	if c.ProcDelay <= 0 {
		c.ProcDelay = 150 * sim.Microsecond
	}
	if c.BridgeLatency <= 0 {
		c.BridgeLatency = 10 * sim.Microsecond
	}
	return c
}

// Network is an IPOP deployment: the bootstrap-time registry of nodes,
// the ring structure, and the static virtual-IP ownership map.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*Node
	ipMap map[netsim.IP]*Node

	// Stats.
	Routed  uint64
	Dropped uint64
}

// New creates an empty IPOP deployment.
func New(eng *sim.Engine, cfg Config) *Network {
	return &Network{eng: eng, cfg: cfg.withDefaults(), ipMap: make(map[netsim.IP]*Node)}
}

// Node is one IPOP endpoint.
type Node struct {
	nw     *Network
	name   string
	phys   *netsim.Host
	sock   *netsim.UDPSocket
	ringID uint32
	mapped netsim.Addr // NAT mapping discovered at bootstrap

	// Overlay links: peer ring ID -> external address; established by
	// the bootstrap hello exchange.
	links map[uint32]*overlayLink

	bridge *ether.Bridge
	tap    *ether.BridgePort
	dom0   *ipstack.Stack
	macSeq uint32

	// Local delivery: virtual IP -> MAC on the local bridge.
	localMACs map[netsim.IP]ether.MAC
	pending   map[netsim.IP][][]byte

	// Processing queue state (rate cap).
	busyUntil sim.Time

	// stunWait captures the next STUN response during bootstrap.
	stunWait func(*stun.Message)

	// Stats.
	Forwarded, Delivered, ProcDrops uint64
}

type overlayLink struct {
	peer *Node
	addr netsim.Addr
	up   bool
}

// AddNode attaches a new IPOP node running on a physical host.
func (nw *Network) AddNode(phys *netsim.Host, name string) (*Node, error) {
	n := &Node{
		nw:        nw,
		name:      name,
		phys:      phys,
		ringID:    fnv32(name),
		links:     make(map[uint32]*overlayLink),
		localMACs: make(map[netsim.IP]ether.MAC),
		pending:   make(map[netsim.IP][][]byte),
	}
	sock, err := phys.BindUDP(nw.cfg.Port, n.onPacket)
	if err != nil {
		return nil, err
	}
	n.sock = sock
	n.bridge = ether.NewBridge(nw.eng, name+"-ipop-br", nw.cfg.BridgeLatency)
	n.tap = n.bridge.AddPort("ipop0")
	n.tap.SetRecv(n.onTapFrame)
	nw.nodes = append(nw.nodes, n)
	return n, nil
}

func fnv32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Bridge returns the node's local bridge.
func (n *Node) Bridge() *ether.Bridge { return n.bridge }

// VirtualMTU reports the MTU usable above the IPOP encapsulation.
func (n *Node) VirtualMTU() int {
	return 1472 - 12 - overlayHeaderExtra - ether.HeaderLen
}

// AttachVIF adds a local bridge port (VM NIC).
func (n *Node) AttachVIF(name string) ether.NIC { return n.bridge.AddPort(name) }

// DetachVIF removes a local bridge port.
func (n *Node) DetachVIF(nic ether.NIC) {
	if p, ok := nic.(*ether.BridgePort); ok {
		n.bridge.RemovePort(p)
	}
}

// CreateDom0 attaches the node's management stack and registers its IP.
func (n *Node) CreateDom0(ip netsim.IP) *ipstack.Stack {
	n.macSeq++
	mac := ether.MAC{0x02, 0x49, byte(n.ringID >> 16), byte(n.ringID >> 8), byte(n.ringID), byte(n.macSeq)}
	n.dom0 = ipstack.New(n.nw.eng, n.name+"-ipop-dom0", n.AttachVIF("vnet0"), mac, ip,
		ipstack.Config{MTU: n.VirtualMTU()})
	n.nw.RegisterIP(ip, n)
	return n.dom0
}

// Dom0 returns the management stack.
func (n *Node) Dom0() *ipstack.Stack { return n.dom0 }

// NewMAC hands out MACs for VMs hosted on this node.
func (n *Node) NewMAC() ether.MAC {
	n.macSeq++
	return ether.MAC{0x02, 0x49, byte(n.ringID >> 16), byte(n.ringID >> 8), byte(n.ringID), byte(n.macSeq)}
}

// RegisterIP binds a virtual IP to its owning node. The binding is
// static: IPOP does not follow VM migration (deliberately — this is the
// baseline's documented flaw).
func (nw *Network) RegisterIP(ip netsim.IP, n *Node) { nw.ipMap[ip] = n }

// Build computes the ring: each node links to its successor, predecessor
// and finger shortcuts at power-of-two ring offsets.
func (nw *Network) Build() {
	sort.Slice(nw.nodes, func(i, j int) bool { return nw.nodes[i].ringID < nw.nodes[j].ringID })
	n := len(nw.nodes)
	if n < 2 {
		return
	}
	for i, node := range nw.nodes {
		add := func(j int) {
			peer := nw.nodes[((j%n)+n)%n]
			if peer == node {
				return
			}
			// Links are symmetric: both ends must know each other for
			// the hello exchange and for reverse-path routing.
			if _, dup := node.links[peer.ringID]; !dup {
				node.links[peer.ringID] = &overlayLink{peer: peer}
			}
			if _, dup := peer.links[node.ringID]; !dup {
				peer.links[node.ringID] = &overlayLink{peer: node}
			}
		}
		add(i + 1)
		add(i - 1)
		for off := 2; off < n; off *= 2 {
			add(i + off)
		}
	}
}

// Bootstrap discovers every node's NAT mapping via the given STUN server
// and opens all overlay links with simultaneous hellos. It blocks the
// calling process until the links are up (or the attempt budget runs
// out) and returns the number of links that failed.
func (nw *Network) Bootstrap(p *sim.Proc, stunServer netsim.Addr) int {
	// Phase 1: every node learns its external mapping.
	remaining := len(nw.nodes)
	for _, node := range nw.nodes {
		node := node
		nw.eng.Spawn("ipop-stun", func(sp *sim.Proc) {
			defer func() { remaining--; p.Unpark() }()
			res, err := stun.Classify(sp, node.phys, stunServer, stun.Config{})
			if err == nil {
				// Re-map for the overlay socket: one binding request
				// from it (the classification socket's mapping differs).
				node.mapped = res.Mapped
			}
			node.bindOwnMapping(sp, stunServer)
		})
	}
	for remaining > 0 {
		if !p.Park() {
			break
		}
	}
	// Phase 2: simultaneous hello exchange on every link.
	for _, node := range nw.nodes {
		for _, l := range node.links {
			l.addr = l.peer.mapped
		}
	}
	for try := 0; try < 10; try++ {
		for _, node := range nw.nodes {
			for _, l := range node.sortedLinks() {
				if !l.up {
					node.sendHello(l)
				}
			}
		}
		if !p.Sleep(200 * sim.Millisecond) {
			break
		}
	}
	failed := 0
	for _, node := range nw.nodes {
		for _, l := range node.links {
			if !l.up {
				failed++
			}
		}
	}
	// Link maintenance: Brunet pings its connections, which keeps the
	// NAT mappings under the overlay links alive.
	for _, node := range nw.nodes {
		node := node
		sim.NewTicker(nw.eng, 10*sim.Second, func() {
			for _, l := range node.sortedLinks() {
				if l.up {
					node.sendHello(l)
				}
			}
		})
	}
	return failed
}

// bindOwnMapping sends one STUN binding request from the overlay socket
// so the advertised address reflects this socket's NAT mapping.
func (n *Node) bindOwnMapping(p *sim.Proc, server netsim.Addr) {
	got := false
	n.stunWait = func(m *stun.Message) {
		n.mapped = m.Mapped
		got = true
		p.Unpark()
	}
	req := &stun.Message{Type: stun.TypeBindingRequest}
	req.TxID[0] = 0xAA
	for try := 0; try < 3 && !got; try++ {
		n.sock.SendTo(server, req.Marshal())
		timer := sim.NewTimer(n.nw.eng, func() { p.Unpark() })
		timer.Reset(500 * sim.Millisecond)
		p.Park()
		timer.Stop()
	}
	n.stunWait = nil
	if n.mapped.IsZero() {
		// Public host: its own address is the mapping.
		n.mapped = netsim.Addr{IP: n.phys.IP(), Port: n.nw.cfg.Port}
	}
}

func (n *Node) sortedLinks() []*overlayLink {
	out := make([]*overlayLink, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].peer.ringID < out[j].peer.ringID })
	return out
}

func (n *Node) sendHello(l *overlayLink) {
	b := make([]byte, 5)
	b[0] = opHello
	binary.BigEndian.PutUint32(b[1:], n.ringID)
	n.sock.SendTo(l.addr, b)
}

func (n *Node) onPacket(pkt netsim.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	switch pkt.Payload[0] {
	case 0x00, 0x01:
		if m, err := stun.Unmarshal(pkt.Payload); err == nil &&
			m.Type == stun.TypeBindingResponse && n.stunWait != nil {
			n.stunWait(m)
		}
	case opHello:
		if len(pkt.Payload) < 5 {
			return
		}
		id := binary.BigEndian.Uint32(pkt.Payload[1:])
		if l, ok := n.links[id]; ok {
			l.up = true
			l.addr = pkt.Src
		}
	case opData:
		n.process(func() { n.onOverlayData(pkt) })
	}
}

// process applies the node's user-level packet cost: fixed delay plus a
// service-rate queue. Packets beyond one second of backlog are dropped —
// the overloaded-daemon behaviour behind Figure 7.
func (n *Node) process(fn func()) {
	now := n.nw.eng.Now()
	if n.busyUntil < now {
		n.busyUntil = now
	}
	service := sim.Duration(1e9 / n.nw.cfg.ProcRate)
	if n.busyUntil.Sub(now) > sim.Second {
		n.ProcDrops++
		n.nw.Dropped++
		return
	}
	n.busyUntil = n.busyUntil.Add(service)
	n.nw.eng.At(n.busyUntil.Add(n.nw.cfg.ProcDelay), fn)
}

// ---- data path ----

// onTapFrame handles frames leaving the local bridge through the tap:
// proxy-ARP for remote addresses, overlay routing for IP packets sent to
// the router MAC.
func (n *Node) onTapFrame(f *ether.Frame) {
	switch f.Type {
	case ether.TypeARP:
		arp, err := ether.UnmarshalARP(f.Payload)
		if err != nil {
			return
		}
		// Learn local bindings from any local ARP traffic.
		n.learnLocal(arp.SenderIP, arp.SenderMAC)
		if arp.Op != ether.ARPRequest {
			return
		}
		owner := n.nw.ipMap[arp.TargetIP]
		if owner == nil || owner == n {
			return // local owner answers on the bridge itself
		}
		reply := &ether.ARP{
			Op:        ether.ARPReply,
			SenderMAC: RouterMAC,
			SenderIP:  arp.TargetIP,
			TargetMAC: arp.SenderMAC,
			TargetIP:  arp.SenderIP,
		}
		n.tap.Send(&ether.Frame{Dst: arp.SenderMAC, Src: RouterMAC, Type: ether.TypeARP, Payload: reply.Marshal()})
	case ether.TypeIPv4:
		if f.Dst != RouterMAC {
			return
		}
		if len(f.Payload) < 20 {
			return
		}
		dst := netsim.IP(binary.BigEndian.Uint32(f.Payload[16:20]))
		src := netsim.IP(binary.BigEndian.Uint32(f.Payload[12:16]))
		n.learnLocal(src, f.Src)
		n.process(func() { n.route(dst, f) })
	}
}

func (n *Node) learnLocal(ip netsim.IP, mac ether.MAC) {
	if ip == 0 || mac == RouterMAC {
		return
	}
	n.localMACs[ip] = mac
	if q, ok := n.pending[ip]; ok {
		delete(n.pending, ip)
		for _, raw := range q {
			n.deliverLocal(ip, raw)
		}
	}
}

// route forwards an IP frame toward the registered owner of dst.
func (n *Node) route(dst netsim.IP, f *ether.Frame) {
	owner := n.nw.ipMap[dst]
	if owner == nil {
		n.nw.Dropped++
		return
	}
	if owner == n {
		n.deliverLocal(dst, f.Payload)
		return
	}
	n.forward(owner.ringID, dst, f.Payload, 32)
}

// forward sends an overlay data packet one hop closer to the target ring
// position.
func (n *Node) forward(target uint32, dst netsim.IP, ipPacket []byte, ttl int) {
	if ttl <= 0 {
		n.nw.Dropped++
		return
	}
	var best *overlayLink
	bestDist := ringDist(n.ringID, target)
	for _, l := range n.sortedLinks() {
		if !l.up {
			continue
		}
		if d := ringDist(l.peer.ringID, target); d < bestDist {
			best, bestDist = l, d
		}
	}
	if best == nil {
		n.nw.Dropped++
		return
	}
	b := make([]byte, 12+len(ipPacket))
	b[0] = opData
	b[1] = byte(ttl)
	binary.BigEndian.PutUint32(b[2:], target)
	binary.BigEndian.PutUint32(b[6:], uint32(dst))
	copy(b[12:], ipPacket)
	n.Forwarded++
	n.nw.Routed++
	n.sock.SendToSized(best.addr, b, len(b)+28+overlayHeaderExtra)
}

// ringDist is the clockwise-or-counterclockwise distance on the 32-bit
// ring.
func ringDist(a, b uint32) uint32 {
	d := a - b
	if d2 := b - a; d2 < d {
		d = d2
	}
	return d
}

func (n *Node) onOverlayData(pkt netsim.Packet) {
	b := pkt.Payload
	if len(b) < 12 {
		return
	}
	target := binary.BigEndian.Uint32(b[2:])
	dst := netsim.IP(binary.BigEndian.Uint32(b[6:]))
	ttl := int(b[1])
	if target == n.ringID {
		n.deliverLocal(dst, b[12:])
		return
	}
	n.forward(target, dst, b[12:], ttl-1)
}

// deliverLocal hands an IP packet to the local owner of dst via the
// bridge, resolving its MAC with a router-originated ARP if needed.
func (n *Node) deliverLocal(dst netsim.IP, ipPacket []byte) {
	mac, ok := n.localMACs[dst]
	if !ok {
		if len(n.pending[dst]) < 64 {
			cp := make([]byte, len(ipPacket))
			copy(cp, ipPacket)
			n.pending[dst] = append(n.pending[dst], cp)
		}
		req := &ether.ARP{Op: ether.ARPRequest, SenderMAC: RouterMAC, TargetIP: dst}
		n.tap.Send(&ether.Frame{Dst: ether.Broadcast, Src: RouterMAC, Type: ether.TypeARP, Payload: req.Marshal()})
		return
	}
	n.Delivered++
	cp := make([]byte, len(ipPacket))
	copy(cp, ipPacket)
	n.tap.Send(&ether.Frame{Dst: mac, Src: RouterMAC, Type: ether.TypeIPv4, Payload: cp})
}
