// Package service implements tenant L3 services over the WAVNet
// overlay: a virtual IP (VIP) backed by a set of member hosts and
// managed VMs, steered and health-checked without any middlebox in the
// data path.
//
// A Service owns no NIC. Every backend's stack aliases the VIP (it
// accepts traffic for it but never ARPs for it), and each member host
// of the network holds a per-host preference-ordered steering table
// (core.SetVIPBackends): declared rank for failover-ordered services,
// locator distance for anycast-nearest — so two clients on different
// hosts may be steered to different backends of the same VIP.
//
// Health is probed actively from the network's anchor: a spawned
// simulation process pings every backend's real address each Interval,
// with a per-probe Timeout. Fall consecutive failures withdraw the
// backend — a 0x19 announcement floods the tunnel mesh, every member's
// steering table flips, the rendezvous-layer VIP record is retracted
// from the network's broker set, and (for failover-ordered services)
// the new active backend floods a gratuitous ARP for the VIP so
// established client caches re-point. Rise consecutive successes
// re-announce it. Each withdrawal that moves traffic is recorded as a
// "service.failover" span whose duration covers first missed probe to
// steering flip — the observable failover budget.
package service

import (
	"sort"

	"wavnet/internal/core"
	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// Probe loop defaults.
const (
	DefaultInterval = 1 * sim.Second
	DefaultTimeout  = 250 * sim.Millisecond
	DefaultFall     = 3
	DefaultRise     = 2
)

// Config describes one service instance.
type Config struct {
	// Name is the service's unique name within its tenant.
	Name string
	// Tenant and Net scope the service (span labels, VIP records).
	Tenant string
	Net    string
	// VNI is the network segment the VIP lives on.
	VNI uint32
	// VIP is the service's virtual address.
	VIP netsim.IP
	// Policy is rendezvous.PolicyAnycastNearest (default) or
	// rendezvous.PolicyFailoverOrdered.
	Policy string
	// Interval is the probe period; Timeout bounds one probe.
	Interval sim.Duration
	Timeout  sim.Duration
	// Fall consecutive probe failures withdraw a backend; Rise
	// consecutive successes re-announce it.
	Fall int
	Rise int
	// Distance reports the fabric's measured RTT between two named
	// hosts (false = unmeasured). Anycast steering sorts with it; nil
	// degrades to name order.
	Distance func(from, to string) (sim.Duration, bool)
	// Tracer records service.failover spans (nil disables tracing).
	Tracer *obs.Trace
	// InitialHealth seeds per-backend health (by backend name) so a
	// rebuilt service — a reconcile that changed its backend set —
	// inherits observed state instead of re-announcing dead backends.
	// Absent backends start healthy.
	InitialHealth map[string]bool
}

func (c Config) normalized() Config {
	if c.Policy == "" {
		c.Policy = rendezvous.PolicyAnycastNearest
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Fall <= 0 {
		c.Fall = DefaultFall
	}
	if c.Rise <= 0 {
		c.Rise = DefaultRise
	}
	return c
}

// Backend is one resolved backend of a service: a member host's own
// stack or a managed VM's, pinned down to the address and MAC the
// steering layer needs.
type Backend struct {
	// Name is the backend's name within the service.
	Name string
	// Host is the WAVNet member host carrying the backend (the member
	// itself, or the VM's current home).
	Host string
	// IP is the backend's real address — what probes ping.
	IP netsim.IP
	// MAC is what client frames are steered to.
	MAC ether.MAC
	// Order is the failover-ordered rank (lower wins).
	Order int
	// Stack is the backend's IP stack; the VIP is aliased onto it.
	Stack *ipstack.Stack
}

// backendState is the probe loop's memory of one backend.
type backendState struct {
	healthy bool
	fails   int
	oks     int
	// failSpan covers an in-progress fall sequence: opened at the first
	// missed probe, ended at withdrawal (or at recovery before Fall).
	failSpan *obs.Span
}

// Service is one running VIP: steering tables programmed, records
// announced, probe loop live.
type Service struct {
	cfg      Config
	eng      *sim.Engine
	anchor   *core.Host
	prober   *ipstack.Stack
	members  []*core.Host
	backends []Backend
	state    map[string]*backendState
	counters *metrics.CounterSet
	proc     *sim.Proc
	running  bool
}

// New builds a service instance. anchor is the host that announces VIP
// records through its home broker and floods 0x19 health transitions;
// prober is the stack probes originate from (the anchor member's);
// members are every member host of the network, whose steering tables
// the service programs. Call Start to go live.
func New(eng *sim.Engine, cfg Config, anchor *core.Host, prober *ipstack.Stack, members []*core.Host, backends []Backend) *Service {
	cfg = cfg.normalized()
	s := &Service{
		cfg:      cfg,
		eng:      eng,
		anchor:   anchor,
		prober:   prober,
		members:  append([]*core.Host(nil), members...),
		backends: append([]Backend(nil), backends...),
		state:    make(map[string]*backendState, len(backends)),
		counters: metrics.NewCounterSet(),
	}
	sort.Slice(s.backends, func(i, j int) bool { return s.backends[i].Name < s.backends[j].Name })
	sort.Slice(s.members, func(i, j int) bool { return s.members[i].Name() < s.members[j].Name() })
	for _, b := range s.backends {
		healthy := true
		if h, ok := cfg.InitialHealth[b.Name]; ok {
			healthy = h
		}
		s.state[b.Name] = &backendState{healthy: healthy}
	}
	return s
}

// Config returns the normalized configuration.
func (s *Service) Config() Config { return s.cfg }

// Backends returns the resolved backend set, sorted by name.
func (s *Service) Backends() []Backend { return append([]Backend(nil), s.backends...) }

// Start aliases the VIP onto every backend stack, programs every member
// host's steering table, announces a VIP record per healthy backend and
// spawns the probe loop. Idempotent.
func (s *Service) Start() {
	if s.running {
		return
	}
	s.running = true
	for _, b := range s.backends {
		b.Stack.AddAlias(s.cfg.VIP)
	}
	s.programHosts()
	for _, b := range s.backends {
		if s.state[b.Name].healthy {
			s.anchor.AnnounceVIPRecord(s.record(b))
		}
	}
	// Stop's Interrupt is sticky: even a probe parked deep inside Ping
	// returns promptly, and the Sleep here observes the pending flag
	// without waiting out another interval.
	s.proc = s.eng.Spawn("service/"+s.cfg.Net+"/"+s.cfg.Name, func(p *sim.Proc) {
		for p.Sleep(s.cfg.Interval) {
			s.probeRound(p)
		}
	})
}

// Stop withdraws the service: probe loop down, records retracted,
// steering tables cleared, aliases removed. In-flight connections die
// with their ARP entries, exactly like an evicted service should.
func (s *Service) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.proc != nil && !s.proc.Dead() {
		s.proc.Interrupt()
	}
	for _, b := range s.backends {
		if s.state[b.Name].healthy {
			s.anchor.WithdrawVIPRecord(s.record(b))
		}
		b.Stack.RemoveAlias(s.cfg.VIP)
	}
	for _, h := range s.members {
		h.ClearVIP(s.cfg.VNI, s.cfg.VIP)
	}
}

// Running reports whether Start has been called (and Stop has not).
func (s *Service) Running() bool { return s.running }

// ProbeDead reports whether the probe loop has fully exited (true also
// before Start); teardown tests pin the loop's prompt exit on it.
func (s *Service) ProbeDead() bool { return s.proc == nil || s.proc.Dead() }

// Healthy reports a backend's current health (false for unknown names).
func (s *Service) Healthy(backend string) bool {
	st, ok := s.state[backend]
	return ok && st.healthy
}

// HealthSnapshot captures per-backend health, in the shape
// Config.InitialHealth accepts — the reconciler threads it through a
// service rebuild.
func (s *Service) HealthSnapshot() map[string]bool {
	out := make(map[string]bool, len(s.state))
	for name, st := range s.state {
		out[name] = st.healthy
	}
	return out
}

// Active reports the backend the ANCHOR host currently steers the VIP
// to (per-host tables may disagree for anycast services).
func (s *Service) Active() (string, bool) {
	mac, ok := s.anchor.VIPChoice(s.cfg.VNI, s.cfg.VIP)
	if !ok {
		return "", false
	}
	for _, b := range s.backends {
		if b.MAC == mac {
			return b.Name, true
		}
	}
	return "", false
}

// Counters exports the probe loop's counters: probes_sent,
// probes_failed, withdrawals, recoveries, failovers.
func (s *Service) Counters() *metrics.CounterSet { return s.counters }

// record builds the rendezvous-layer VIP record for one backend.
func (s *Service) record(b Backend) rendezvous.VIPRecord {
	return rendezvous.VIPRecord{
		Service: s.cfg.Name, Net: s.cfg.Net, VIP: s.cfg.VIP,
		Backend: b.Name, Host: b.Host, Order: b.Order, Policy: s.cfg.Policy,
	}
}

// prefsFor computes one member host's preference-ordered steering list:
// declared rank for failover-ordered services; for anycast-nearest the
// host's own backends first, then measured distance, unmeasured last,
// name-tied for determinism.
func (s *Service) prefsFor(h *core.Host) []core.VIPBackend {
	idx := make([]int, len(s.backends))
	for i := range idx {
		idx[i] = i
	}
	if s.cfg.Policy == rendezvous.PolicyFailoverOrdered {
		sort.Slice(idx, func(a, b int) bool {
			x, y := s.backends[idx[a]], s.backends[idx[b]]
			if x.Order != y.Order {
				return x.Order < y.Order
			}
			return x.Name < y.Name
		})
	} else {
		from := h.Name()
		sort.Slice(idx, func(a, b int) bool {
			x, y := s.backends[idx[a]], s.backends[idx[b]]
			xl, yl := x.Host == from, y.Host == from
			if xl != yl {
				return xl
			}
			var xd, yd sim.Duration
			var xok, yok bool
			if s.cfg.Distance != nil {
				xd, xok = s.cfg.Distance(from, x.Host)
				yd, yok = s.cfg.Distance(from, y.Host)
			}
			if xok != yok {
				return xok
			}
			if xok && yok && xd != yd {
				return xd < yd
			}
			return x.Name < y.Name
		})
	}
	out := make([]core.VIPBackend, 0, len(idx))
	for _, i := range idx {
		b := s.backends[i]
		out = append(out, core.VIPBackend{Name: b.Name, MAC: b.MAC, Healthy: s.state[b.Name].healthy})
	}
	return out
}

// programHosts pushes the current steering state to every member host
// (hosts whose effective choice changes inject a local gratuitous ARP
// on their own).
func (s *Service) programHosts() {
	for _, h := range s.members {
		h.SetVIPBackends(s.cfg.VNI, s.cfg.VIP, s.prefsFor(h))
	}
}

// probeRound pings every backend once, serially, and applies fall/rise
// transitions. A backend probed from its own stack degenerates to a
// liveness truism (the prober shares its fate) and counts as success
// without wire traffic.
func (s *Service) probeRound(p *sim.Proc) {
	for _, b := range s.backends {
		st := s.state[b.Name]
		var err error
		s.counters.Add("probes_sent", 1)
		if b.Stack != s.prober {
			_, err = s.prober.Ping(p, b.IP, 32, s.cfg.Timeout)
		}
		if p.Interrupted() {
			return // stopped while parked in a probe
		}
		if err != nil {
			s.counters.Add("probes_failed", 1)
			st.oks = 0
			st.fails++
			if st.fails == 1 && st.healthy {
				st.failSpan = s.cfg.Tracer.Start(nil, "service.failover", obs.Labels{
					Tenant: s.cfg.Tenant, Net: s.cfg.Net, Host: b.Host,
				})
				st.failSpan.Event("service %s backend %s missed a probe", s.cfg.Name, b.Name)
			}
			if st.fails >= s.cfg.Fall && st.healthy {
				s.transition(b, st, false)
			}
			continue
		}
		st.fails = 0
		st.oks++
		if st.failSpan != nil && st.healthy {
			st.failSpan.Event("recovered before fall budget")
			st.failSpan.End()
			st.failSpan = nil
		}
		if st.oks >= s.cfg.Rise && !st.healthy {
			s.transition(b, st, true)
		}
	}
}

// transition applies one health flip end to end: steering tables on
// every member, a 0x19 flood over the tunnel mesh, the rendezvous-layer
// record, and — when a failover-ordered service's active backend moved
// — a fabric-wide gratuitous ARP from the new active so established
// client caches re-point without waiting for re-ARP.
func (s *Service) transition(b Backend, st *backendState, healthy bool) {
	prevMAC, prevOK := s.anchor.VIPChoice(s.cfg.VNI, s.cfg.VIP)
	st.healthy = healthy
	st.fails, st.oks = 0, 0
	s.programHosts()
	s.anchor.AnnounceVIP(s.cfg.VNI, s.cfg.VIP, b.MAC, b.Name, healthy)
	if healthy {
		s.counters.Add("recoveries", 1)
		s.anchor.AnnounceVIPRecord(s.record(b))
	} else {
		s.counters.Add("withdrawals", 1)
		s.anchor.WithdrawVIPRecord(s.record(b))
	}
	newMAC, newOK := s.anchor.VIPChoice(s.cfg.VNI, s.cfg.VIP)
	moved := prevOK != newOK || prevMAC != newMAC
	if moved && newOK {
		s.counters.Add("failovers", 1)
		if next, ok := s.backendByMAC(newMAC); ok && s.cfg.Policy == rendezvous.PolicyFailoverOrdered {
			next.Stack.AnnounceGratuitousARPFor(s.cfg.VIP)
		}
	}
	if !healthy {
		if st.failSpan == nil {
			st.failSpan = s.cfg.Tracer.Start(nil, "service.failover", obs.Labels{
				Tenant: s.cfg.Tenant, Net: s.cfg.Net, Host: b.Host,
			})
		}
		st.failSpan.Event("withdrew backend %s after %d missed probes", b.Name, s.cfg.Fall)
		if moved {
			if next, ok := s.backendByMAC(newMAC); ok {
				st.failSpan.Event("steered %s to backend %s on %s", s.cfg.VIP, next.Name, next.Host)
			}
		} else if !newOK {
			st.failSpan.Event("no healthy backend remains for %s", s.cfg.VIP)
		}
		st.failSpan.End()
		st.failSpan = nil
	}
}

// backendByMAC resolves a steering choice back to the backend.
func (s *Service) backendByMAC(mac ether.MAC) (Backend, bool) {
	for _, b := range s.backends {
		if b.MAC == mac {
			return b, true
		}
	}
	return Backend{}, false
}
