package service

import (
	"testing"

	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.Policy != rendezvous.PolicyAnycastNearest {
		t.Fatalf("default policy %q", c.Policy)
	}
	if c.Interval != DefaultInterval || c.Timeout != DefaultTimeout ||
		c.Fall != DefaultFall || c.Rise != DefaultRise {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c = Config{Interval: 2 * sim.Second, Timeout: sim.Second, Fall: 5, Rise: 1,
		Policy: rendezvous.PolicyFailoverOrdered}.normalized()
	if c.Interval != 2*sim.Second || c.Timeout != sim.Second || c.Fall != 5 || c.Rise != 1 ||
		c.Policy != rendezvous.PolicyFailoverOrdered {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestNewSeedsStateAndSortsBackends(t *testing.T) {
	backends := []Backend{
		{Name: "zeta", Host: "h2", IP: netsim.MustParseIP("10.0.0.3"), Order: 1},
		{Name: "alpha", Host: "h1", IP: netsim.MustParseIP("10.0.0.2"), Order: 0},
	}
	s := New(nil, Config{
		Name: "web", Net: "app", VIP: netsim.MustParseIP("10.0.0.200"),
		InitialHealth: map[string]bool{"zeta": false},
	}, nil, nil, nil, backends)

	got := s.Backends()
	if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "zeta" {
		t.Fatalf("backends not sorted by name: %+v", got)
	}
	// Seeded health: absent backends start healthy, declared ones keep
	// their observed state.
	if !s.Healthy("alpha") || s.Healthy("zeta") {
		t.Fatalf("health seeding wrong: alpha=%v zeta=%v", s.Healthy("alpha"), s.Healthy("zeta"))
	}
	if s.Healthy("ghost") {
		t.Fatal("unknown backend reports healthy")
	}
	snap := s.HealthSnapshot()
	if len(snap) != 2 || !snap["alpha"] || snap["zeta"] {
		t.Fatalf("snapshot %v", snap)
	}
	if s.Running() {
		t.Fatal("running before Start")
	}
	if c := s.Config(); c.Fall != DefaultFall {
		t.Fatalf("config not normalized through New: %+v", c)
	}
}
