package ipstack

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// TCP connection states (RFC 793, TIME_WAIT shortened).
type connState int

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateLastAck
	stateClosing
	stateTimeWait
	stateClosed
)

func (s connState) String() string {
	names := []string{"SYN_SENT", "SYN_RCVD", "ESTABLISHED", "FIN_WAIT_1", "FIN_WAIT_2",
		"CLOSE_WAIT", "LAST_ACK", "CLOSING", "TIME_WAIT", "CLOSED"}
	if int(s) < len(names) {
		return names[s]
	}
	return "?"
}

// Errors surfaced by TCP operations.
var (
	ErrConnReset   = errors.New("ipstack: connection reset")
	ErrConnClosed  = errors.New("ipstack: connection closed")
	ErrConnTimeout = errors.New("ipstack: connection timed out")
	ErrRefused     = errors.New("ipstack: connection refused")
)

const (
	initialRTO = sim.Second
	minRTO     = 200 * sim.Millisecond
	maxRTO     = 60 * sim.Second
	timeWait   = sim.Second
	maxSynTry  = 6
	maxRtxTry  = 12
	// maxBurstSegs bounds segments emitted per ACK/doorbell (like
	// Linux's tcp_limit_output): it stops window-sized line-rate bursts
	// from repeatedly overflowing shallow bottleneck queues.
	maxBurstSegs = 10
)

type connKey struct {
	localPort  uint16
	remoteIP   netsim.IP
	remotePort uint16
}

// Conn is a TCP connection. All methods taking a *sim.Proc block that
// process; the rest run in event context.
type Conn struct {
	stack  *Stack
	key    connKey
	state  connState
	local  netsim.Addr
	remote netsim.Addr
	lis    *Listener // non-nil until accepted

	mss int

	// Send side. sndBuf[0] corresponds to sequence sndUna once
	// established (the SYN consumed iss).
	iss            uint32
	sndUna, sndNxt uint32
	sndBuf         []byte
	sndClosed      bool
	finSent        bool
	finAcked       bool
	finSeq         uint32
	cwnd, ssthresh float64
	peerWnd        uint32
	dupAcks        int
	inRecovery     bool
	recover        uint32
	rtxTimer       *sim.Timer
	rtxTries       int
	backoff        int
	tlpTimer       *sim.Timer
	tlpOut         bool
	srtt, rttvar   sim.Duration
	rto            sim.Duration
	rttPending     bool
	rttSeq         uint32
	rttTime        sim.Time
	persistTimer   *sim.Timer
	// SACK scoreboard: sorted, disjoint [start,end) ranges the peer has
	// acknowledged above sndUna.
	sacked [][2]uint32
	// Loss marking (fast recovery and RTO share it): sequences below
	// lostBelow not covered by the scoreboard are considered lost and
	// excluded from the pipe; [sndUna, rtxUntil) has been retransmitted
	// once and counts again. lostBelow == sndUna means nothing is marked.
	lostBelow uint32
	rtxUntil  uint32

	// Receive side.
	rcvNxt      uint32
	rcvBuf      []byte
	ooo         []oooSeg
	peerFin     bool
	peerFinSeq  uint32
	peerFinDone bool
	lastAdvWnd  uint32

	// App wait queues.
	readWq, writeWq, connWq sim.WaitQueue

	err error

	// Stats.
	BytesIn, BytesOut uint64
	SegsIn, SegsOut   uint64
	Retransmits       uint64
	FastRetransmits   uint64
	TailProbes        uint64
	Timeouts          uint64
	DupAcksSeen       uint64
	timeWaitEv        *sim.Event
}

type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	stack   *Stack
	port    uint16
	backlog []*Conn
	wq      sim.WaitQueue
	closed  bool
}

// Listen binds a TCP listener.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if port == 0 {
		p, err := s.allocPort()
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, busy := s.listeners[port]; busy {
		return nil, fmt.Errorf("ipstack %s: TCP port %d in use", s.name, port)
	}
	l := &Listener{stack: s, port: port}
	s.listeners[port] = l
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Addr returns the listener's full address.
func (l *Listener) Addr() netsim.Addr { return netsim.Addr{IP: l.stack.ip, Port: l.port} }

// Accept blocks until a connection completes the handshake.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrConnClosed
		}
		if !l.wq.Wait(p) {
			return nil, ErrConnClosed
		}
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	c.lis = nil
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.port)
	l.wq.Broadcast()
}

// Dial opens a connection to remote and blocks until established.
func (s *Stack) Dial(p *sim.Proc, remote netsim.Addr) (*Conn, error) {
	port, err := s.allocPort()
	if err != nil {
		return nil, err
	}
	c := s.newConn(connKey{port, remote.IP, remote.Port}, stateSynSent)
	c.iss = s.eng.Rand().Uint32()
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.lostBelow, c.rtxUntil, c.recover = c.sndUna, c.sndUna, c.sndUna
	c.sendSeg(&tcpSegment{Flags: flagSYN, Seq: c.iss, Wnd: c.advWnd()})
	c.armRTX()
	for c.state != stateEstablished && c.err == nil {
		if !c.connWq.Wait(p) {
			return nil, ErrConnClosed
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

func (s *Stack) newConn(key connKey, st connState) *Conn {
	c := &Conn{
		stack:    s,
		key:      key,
		state:    st,
		local:    netsim.Addr{IP: s.ip, Port: key.localPort},
		remote:   netsim.Addr{IP: key.remoteIP, Port: key.remotePort},
		mss:      s.cfg.MTU - IPHeaderLen - TCPHeaderLen,
		ssthresh: 1 << 30,
		rto:      initialRTO,
		backoff:  1,
		peerWnd:  uint32(s.cfg.RecvBuf),
	}
	c.cwnd = float64(10 * c.mss) // IW10
	c.rtxTimer = sim.NewTimer(s.eng, c.onRTO)
	c.tlpTimer = sim.NewTimer(s.eng, c.onTLP)
	c.persistTimer = sim.NewTimer(s.eng, c.onPersist)
	s.conns[key] = c
	return c
}

// LocalAddr returns the connection's local endpoint.
func (c *Conn) LocalAddr() netsim.Addr { return c.local }

// RemoteAddr returns the connection's remote endpoint.
func (c *Conn) RemoteAddr() netsim.Addr { return c.remote }

// State returns the current TCP state (for tests and diagnostics).
func (c *Conn) State() string { return c.state.String() }

// MSS returns the negotiated (configured) maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

func (c *Conn) advWnd() uint32 {
	free := c.stack.cfg.RecvBuf - len(c.rcvBuf)
	if free < 0 {
		free = 0
	}
	return uint32(free)
}

func (c *Conn) flight() uint32 { return c.sndNxt - c.sndUna }

// ---- output ----

func (c *Conn) sendSeg(seg *tcpSegment) {
	seg.SrcPort = c.local.Port
	seg.DstPort = c.remote.Port
	c.SegsOut++
	c.lastAdvWnd = seg.Wnd
	// Source from the connection's own local address: connections
	// accepted on an alias (a service VIP) must answer as the VIP, or
	// the client's demux key would never match.
	c.stack.sendIPFrom(c.local.IP, c.remote.IP, ProtoTCP, marshalTCP(seg))
}

func (c *Conn) sendACK() {
	c.sendSeg(&tcpSegment{Flags: flagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Wnd: c.advWnd(), SACK: c.sackBlocks()})
}

// sackBlocks reports the receiver's out-of-order ranges (already
// coalesced by stashOOO) as SACK blocks: the lowest blocks (the frontier
// the sender must fill first) plus always the highest block, so the
// sender can bound the truly-lost span.
func (c *Conn) sackBlocks() [][2]uint32 {
	if len(c.ooo) == 0 {
		return nil
	}
	var blocks [][2]uint32
	n := len(c.ooo)
	take := n
	if take > maxSACKBlocks {
		take = maxSACKBlocks - 1
	}
	for _, s := range c.ooo[:take] {
		blocks = append(blocks, [2]uint32{s.seq, s.seq + uint32(len(s.data))})
	}
	if take < n {
		last := c.ooo[n-1]
		blocks = append(blocks, [2]uint32{last.seq, last.seq + uint32(len(last.data))})
	}
	return blocks
}

// pump transmits as much pending data as the congestion and peer windows
// allow, then the FIN if the stream is closed and drained.
func (c *Conn) pump() {
	if c.state != stateEstablished && c.state != stateCloseWait &&
		c.state != stateFinWait1 && c.state != stateLastAck && c.state != stateClosing {
		return
	}
	wnd := int(c.cwnd)
	if int(c.peerWnd) < wnd {
		wnd = int(c.peerWnd)
	}
	for burst := 0; burst < maxBurstSegs; burst++ {
		out := c.pipe() // bytes believed in flight (SACKed excluded)
		if c.finSent {
			break
		}
		sentData := int(c.sndNxt - c.sndUna) // bytes of sndBuf already sent
		avail := len(c.sndBuf) - sentData
		if avail <= 0 {
			break
		}
		if out >= wnd {
			break
		}
		n := avail
		if n > c.mss {
			n = c.mss
		}
		if rem := wnd - out; n > rem {
			n = rem
		}
		if n <= 0 {
			break
		}
		// Sender-side silly-window avoidance: a sub-MSS segment is only
		// worth sending when it carries the tail of the buffered data;
		// window-growth crumbs wait for the window to open further.
		if n < c.mss && n < avail {
			break
		}
		payload := make([]byte, n)
		copy(payload, c.sndBuf[sentData:sentData+n])
		seg := &tcpSegment{
			Flags:   flagACK | flagPSH,
			Seq:     c.sndNxt,
			Ack:     c.rcvNxt,
			Wnd:     c.advWnd(),
			Payload: payload,
		}
		if !c.rttPending {
			c.rttPending = true
			c.rttSeq = c.sndNxt + uint32(n)
			c.rttTime = c.stack.eng.Now()
		}
		c.sndNxt += uint32(n)
		c.BytesOut += uint64(n)
		c.sendSeg(seg)
	}
	// FIN once everything is sent.
	if c.sndClosed && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.finSeq = c.sndNxt
		c.finSent = true
		c.sndNxt++
		c.sendSeg(&tcpSegment{Flags: flagFIN | flagACK, Seq: c.finSeq, Ack: c.rcvNxt, Wnd: c.advWnd()})
		switch c.state {
		case stateEstablished:
			c.setState(stateFinWait1)
		case stateCloseWait:
			c.setState(stateLastAck)
		}
	}
	if c.flight() > 0 {
		c.armRTX()
		c.armTLP()
	} else {
		c.rtxTimer.Stop()
		c.tlpTimer.Stop()
	}
	// Zero-window probing.
	if c.peerWnd == 0 && len(c.sndBuf) > 0 && c.flight() == 0 {
		if !c.persistTimer.Active() {
			c.persistTimer.Reset(c.rto)
		}
	}
}

func (c *Conn) onPersist() {
	if c.state == stateClosed || c.peerWnd > 0 || len(c.sndBuf) == 0 {
		return
	}
	// Probe with one byte beyond the window.
	probe := &tcpSegment{
		Flags:   flagACK,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Wnd:     c.advWnd(),
		Payload: c.sndBuf[int(c.sndNxt-c.sndUna):][:1],
	}
	c.sendSeg(probe)
	c.persistTimer.Reset(c.rto)
}

// retransmit resends the handshake segment (SYN states only; data
// retransmission goes through retransmitRange).
func (c *Conn) retransmit() {
	c.Retransmits++
	switch c.state {
	case stateSynSent:
		c.sendSeg(&tcpSegment{Flags: flagSYN, Seq: c.iss, Wnd: c.advWnd()})
	case stateSynRcvd:
		c.sendSeg(&tcpSegment{Flags: flagSYN | flagACK, Seq: c.iss, Ack: c.rcvNxt, Wnd: c.advWnd()})
	}
}

func (c *Conn) armRTX() {
	c.rtxTimer.Reset(c.rto * sim.Duration(c.backoff))
}

// armTLP schedules a tail-loss probe (RFC 8985-style). When the tail of
// the stream is in flight and the ACK clock stalls, a dropped last
// segment (or FIN) would otherwise sit silent until the 200 ms minimum
// RTO — the dominant cost of short transfers over a drop-tail
// bottleneck. The probe fires roughly two RTTs after the last ACK and
// retransmits the highest outstanding segment; if the tail really was
// lost the resulting SACK opens fast recovery instead of an RTO.
func (c *Conn) armTLP() {
	if c.srtt == 0 || c.tlpOut || c.inRecovery || seqGT(c.lostBelow, c.sndUna) {
		return
	}
	pto := 2*c.srtt + 2*sim.Millisecond
	if pto < 10*sim.Millisecond {
		pto = 10 * sim.Millisecond
	}
	if pto >= c.rto*sim.Duration(c.backoff) {
		return // RTO fires first anyway
	}
	c.tlpTimer.Reset(pto)
}

// onTLP sends the tail-loss probe: the FIN when all data is
// acknowledged, otherwise the last full segment of sent data (a FIN
// cannot be SACKed by the receiver, so probing data keeps the loss
// signal alive when both were dropped). One probe per flight; the RTO
// stays armed behind it.
func (c *Conn) onTLP() {
	if c.state == stateClosed || c.flight() == 0 || c.inRecovery || seqGT(c.lostBelow, c.sndUna) {
		return
	}
	c.tlpOut = true
	c.TailProbes++
	sent := int(c.sndNxt - c.sndUna)
	if c.finSent {
		sent--
	}
	if sent > 0 {
		n := sent
		if n > c.mss {
			n = c.mss
		}
		seq := c.sndUna + uint32(sent-n)
		c.retransmitRange(seq, seq+uint32(n))
	} else if c.finSent && !c.finAcked {
		c.retransmitRange(c.finSeq, c.finSeq+1)
	}
	c.armRTX()
}

func (c *Conn) onRTO() {
	if c.state == stateClosed || c.flight() == 0 {
		return
	}
	c.Timeouts++
	c.rtxTries++
	maxTries := maxRtxTry
	if c.state == stateSynSent || c.state == stateSynRcvd {
		maxTries = maxSynTry
	}
	if c.rtxTries > maxTries {
		err := ErrConnTimeout
		if c.state == stateSynSent {
			err = ErrRefused
		}
		c.teardown(err)
		return
	}
	// Reno loss response: collapse to one segment, halve ssthresh.
	fl := float64(c.flight())
	c.ssthresh = fl / 2
	if c.ssthresh < float64(2*c.mss) {
		c.ssthresh = float64(2 * c.mss)
	}
	c.cwnd = float64(c.mss)
	c.inRecovery = false
	c.dupAcks = 0
	c.rttPending = false // Karn's rule
	if c.backoff < 64 {
		c.backoff *= 2
	}
	if c.state == stateSynSent || c.state == stateSynRcvd {
		c.retransmit()
		c.armRTX()
		return
	}
	// Mark the whole flight lost and retransmit it sequentially under
	// slow start, skipping SACKed ranges. sndNxt is preserved so later
	// cumulative ACKs remain valid. (A FIN at the top of the lost span is
	// resent by retransmitRange when the pointer reaches finSeq.)
	c.inRecovery = false
	c.lostBelow = c.sndNxt
	c.rtxUntil = c.sndUna
	c.tlpTimer.Stop()
	c.pumpLost()
	c.armRTX()
}

// ---- input ----

func (s *Stack) onTCP(h *ipv4Header, payload []byte) {
	seg, err := unmarshalTCP(payload)
	if err != nil {
		s.Drops++
		return
	}
	key := connKey{seg.DstPort, h.Src, seg.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.SegsIn++
		c.onSegment(seg)
		return
	}
	// New connection to a listener?
	if l, ok := s.listeners[seg.DstPort]; ok && seg.has(flagSYN) && !seg.has(flagACK) && !l.closed {
		c := s.newConn(key, stateSynRcvd)
		// The SYN's destination is the connection's local address for its
		// whole life — an alias (VIP) stays the source of every reply.
		c.local.IP = h.Dst
		c.lis = l
		c.iss = s.eng.Rand().Uint32()
		c.sndUna, c.sndNxt = c.iss, c.iss+1
		c.lostBelow, c.rtxUntil, c.recover = c.sndUna, c.sndUna, c.sndUna
		c.rcvNxt = seg.Seq + 1
		c.peerWnd = seg.Wnd
		c.sendSeg(&tcpSegment{Flags: flagSYN | flagACK, Seq: c.iss, Ack: c.rcvNxt, Wnd: c.advWnd()})
		c.armRTX()
		return
	}
	// No home for this segment: RST.
	if !seg.has(flagRST) {
		rst := &tcpSegment{SrcPort: seg.DstPort, DstPort: seg.SrcPort, Flags: flagRST | flagACK}
		if seg.has(flagACK) {
			rst.Seq = seg.Ack
		}
		rst.Ack = seg.Seq + uint32(len(seg.Payload))
		if seg.has(flagSYN) {
			rst.Ack++
		}
		s.sendIPFrom(h.Dst, h.Src, ProtoTCP, marshalTCP(rst))
	}
}

func (c *Conn) onSegment(seg *tcpSegment) {
	if seg.has(flagRST) {
		if c.state == stateSynSent {
			c.teardown(ErrRefused)
		} else {
			c.teardown(ErrConnReset)
		}
		return
	}
	switch c.state {
	case stateSynSent:
		if seg.has(flagSYN) && seg.has(flagACK) && seg.Ack == c.iss+1 {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.peerWnd = seg.Wnd
			c.setState(stateEstablished)
			c.backoff, c.rtxTries = 1, 0
			c.rtxTimer.Stop()
			c.sendACK()
			c.connWq.Broadcast()
			c.pump()
		}
		return
	case stateSynRcvd:
		if seg.has(flagACK) && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.peerWnd = seg.Wnd
			c.setState(stateEstablished)
			c.backoff, c.rtxTries = 1, 0
			c.rtxTimer.Stop()
			if c.lis != nil {
				c.lis.backlog = append(c.lis.backlog, c)
				c.lis.wq.Signal()
			}
			// Fall through to process any piggybacked data.
		} else {
			return
		}
	case stateClosed:
		return
	}

	if seg.has(flagACK) {
		c.processAck(seg)
	}
	if len(seg.Payload) > 0 || seg.has(flagFIN) {
		c.processData(seg)
	}
}

// ---- SACK scoreboard ----

// addSacked merges a peer-reported range into the scoreboard.
func (c *Conn) addSacked(start, end uint32) {
	if seqGEQ(start, end) || seqLEQ(end, c.sndUna) || seqGT(end, c.sndNxt) {
		return
	}
	if seqLT(start, c.sndUna) {
		start = c.sndUna
	}
	c.sacked = append(c.sacked, [2]uint32{start, end})
	sort.Slice(c.sacked, func(i, j int) bool { return seqLT(c.sacked[i][0], c.sacked[j][0]) })
	merged := c.sacked[:1]
	for _, r := range c.sacked[1:] {
		last := &merged[len(merged)-1]
		if seqLEQ(r[0], last[1]) {
			if seqGT(r[1], last[1]) {
				last[1] = r[1]
			}
		} else {
			merged = append(merged, r)
		}
	}
	c.sacked = merged
}

// trimSacked drops scoreboard ranges at or below sndUna.
func (c *Conn) trimSacked() {
	out := c.sacked[:0]
	for _, r := range c.sacked {
		if seqLEQ(r[1], c.sndUna) {
			continue
		}
		if seqLT(r[0], c.sndUna) {
			r[0] = c.sndUna
		}
		out = append(out, r)
	}
	c.sacked = out
}

// sackedBytes is the total SACKed volume above sndUna.
func (c *Conn) sackedBytes() int {
	n := 0
	for _, r := range c.sacked {
		n += int(r[1] - r[0])
	}
	return n
}

// pipe estimates bytes actually in flight: sent minus SACKed minus the
// marked-lost span that has not been retransmitted yet.
func (c *Conn) pipe() int {
	var p int
	if seqGT(c.lostBelow, c.sndUna) {
		retransmitted := int(c.rtxUntil-c.sndUna) - c.sackedBytesIn(c.sndUna, c.rtxUntil)
		afterLoss := int(c.sndNxt-c.lostBelow) - c.sackedBytesIn(c.lostBelow, c.sndNxt)
		p = retransmitted + afterLoss
	} else {
		p = int(c.flight()) - c.sackedBytes()
	}
	if p < 0 {
		p = 0
	}
	return p
}

// sackedBytesIn reports the scoreboard volume inside [from, to).
func (c *Conn) sackedBytesIn(from, to uint32) int {
	n := 0
	for _, r := range c.sacked {
		lo, hi := r[0], r[1]
		if seqLT(lo, from) {
			lo = from
		}
		if seqGT(hi, to) {
			hi = to
		}
		if seqLT(lo, hi) {
			n += int(hi - lo)
		}
	}
	return n
}

// pumpLost retransmits the lost span [rtxUntil, lostBelow) under the
// cwnd/pipe budget, skipping SACKed ranges.
func (c *Conn) pumpLost() {
	for burst := 0; seqLT(c.rtxUntil, c.lostBelow) && burst < maxBurstSegs; burst++ {
		if int(c.cwnd)-c.pipe() <= 0 {
			return
		}
		seq := c.rtxUntil
		// Skip anything the receiver already holds.
		skipped := false
		for _, r := range c.sacked {
			if seqGEQ(seq, r[0]) && seqLT(seq, r[1]) {
				c.rtxUntil = r[1]
				skipped = true
				break
			}
		}
		if skipped {
			continue
		}
		limit := c.lostBelow
		for _, r := range c.sacked {
			if seqGT(r[0], seq) && seqLT(r[0], limit) {
				limit = r[0]
				break
			}
		}
		n := c.retransmitRange(seq, limit)
		if n == 0 {
			return
		}
		c.rtxUntil = seq + uint32(n)
	}
}

// highestSacked returns the top of the scoreboard (sndUna when empty).
func (c *Conn) highestSacked() uint32 {
	if len(c.sacked) == 0 {
		return c.sndUna
	}
	return c.sacked[len(c.sacked)-1][1]
}

// retransmitRange resends up to one MSS starting at seq (or the FIN).
func (c *Conn) retransmitRange(seq, limit uint32) int {
	if c.finSent && seq == c.finSeq {
		c.sendSeg(&tcpSegment{Flags: flagFIN | flagACK, Seq: c.finSeq, Ack: c.rcvNxt, Wnd: c.advWnd()})
		c.Retransmits++
		return 1
	}
	off := int(seq - c.sndUna)
	if off < 0 || off >= len(c.sndBuf) {
		return 0
	}
	n := len(c.sndBuf) - off
	if n > c.mss {
		n = c.mss
	}
	if lim := int(limit - seq); n > lim {
		n = lim
	}
	if n <= 0 {
		return 0
	}
	payload := make([]byte, n)
	copy(payload, c.sndBuf[off:off+n])
	c.sendSeg(&tcpSegment{Flags: flagACK | flagPSH, Seq: seq, Ack: c.rcvNxt, Wnd: c.advWnd(), Payload: payload})
	c.Retransmits++
	return n
}

// markLost marks everything up to seq as lost (not in the pipe unless
// SACKed or retransmitted) and begins hole retransmission.
func (c *Conn) markLost(seq uint32) {
	if seqGT(seq, c.lostBelow) {
		c.lostBelow = seq
	}
	if seqLT(c.rtxUntil, c.sndUna) {
		c.rtxUntil = c.sndUna
	}
}

func (c *Conn) enterRecovery(halve bool) {
	if halve {
		c.FastRetransmits++
		fl := float64(int(c.flight()) - c.sackedBytes())
		c.ssthresh = fl / 2
		if c.ssthresh < float64(2*c.mss) {
			c.ssthresh = float64(2 * c.mss)
		}
		c.cwnd = c.ssthresh
	}
	c.inRecovery = true
	c.recover = c.sndNxt
	c.rtxUntil = c.sndUna
	if len(c.sacked) == 0 {
		// No SACK information (pure triple-dup): classic fast
		// retransmit of the first segment only.
		c.retransmitRange(c.sndUna, c.sndNxt)
		c.rtxUntil = c.sndUna + uint32(c.mss)
	} else {
		c.markLost(c.highestSacked())
		c.pumpLost()
	}
	c.pump()
	c.armRTX()
}

func (c *Conn) processAck(seg *tcpSegment) {
	ack := seg.Ack
	if seqGT(ack, c.sndNxt) {
		return // acks data we never sent
	}
	for _, blk := range seg.SACK {
		c.addSacked(blk[0], blk[1])
	}
	if seqGT(ack, c.sndUna) {
		ackedData := ack - c.sndUna
		if c.finSent && seqGEQ(ack, c.finSeq+1) {
			c.finAcked = true
			ackedData--
		}
		if int(ackedData) > len(c.sndBuf) {
			ackedData = uint32(len(c.sndBuf))
		}
		c.sndBuf = c.sndBuf[ackedData:]
		c.sndUna = ack
		c.trimSacked()
		c.peerWnd = seg.Wnd
		c.dupAcks = 0
		c.backoff = 1
		c.rtxTries = 0
		c.tlpOut = false

		// RTT sample (Karn-safe: rttPending cleared on RTO).
		if c.rttPending && seqGEQ(ack, c.rttSeq) {
			c.rttPending = false
			c.updateRTT(c.stack.eng.Now().Sub(c.rttTime))
		}

		if seqGT(c.sndUna, c.rtxUntil) {
			c.rtxUntil = c.sndUna
		}
		if c.inRecovery && seqGEQ(ack, c.recover) {
			// Full recovery: deflate to ssthresh and clear loss marks.
			c.inRecovery = false
			c.cwnd = c.ssthresh
			c.lostBelow, c.rtxUntil = c.sndUna, c.sndUna
		}
		if c.inRecovery {
			// Partial ACK: keep filling holes. cwnd normally sits at
			// ssthresh; if recovery was re-entered after an RTO collapse
			// it ramps back up (PRR-like) instead of staying frozen.
			if c.cwnd < c.ssthresh {
				inc := float64(ackedData)
				if inc > float64(2*c.mss) {
					inc = float64(2 * c.mss)
				}
				c.cwnd += inc
			}
			c.markLost(c.highestSacked())
			c.pumpLost()
			// A lost FIN cannot be marked by the SACK scoreboard: once
			// every data byte is acknowledged, resend it directly rather
			// than waiting out the RTO.
			if c.finSent && !c.finAcked && c.sndUna == c.finSeq {
				c.retransmitRange(c.finSeq, c.finSeq+1)
			}
		} else {
			if seqGT(c.lostBelow, c.sndUna) {
				// RTO recovery: retransmission continues under slow start.
				c.pumpLost()
			} else {
				c.lostBelow, c.rtxUntil = c.sndUna, c.sndUna
			}
			if c.cwnd < c.ssthresh {
				// Slow start with byte counting (RFC 3465, L=2*MSS).
				inc := float64(ackedData)
				if inc > float64(2*c.mss) {
					inc = float64(2 * c.mss)
				}
				c.cwnd += inc
			} else {
				// Congestion avoidance.
				c.cwnd += float64(c.mss) * float64(c.mss) / c.cwnd
			}
		}

		if c.flight() > 0 {
			c.armRTX()
			c.armTLP()
		} else {
			c.rtxTimer.Stop()
			c.tlpTimer.Stop()
		}
		c.maybeFinish()
		c.writeWq.Broadcast()
		c.pump()
		return
	}
	// Duplicate ACK detection: same ack, no payload, data outstanding,
	// and either an unchanged window (RFC 5681) or SACK info present.
	if ack == c.sndUna && len(seg.Payload) == 0 && c.flight() > 0 &&
		!seg.has(flagSYN) && !seg.has(flagFIN) &&
		(seg.Wnd == c.peerWnd || len(seg.SACK) > 0) {
		c.dupAcks++
		c.DupAcksSeen++
		c.peerWnd = seg.Wnd
		if c.dupAcks == 3 && !c.inRecovery {
			// NewReno "careful" re-entry (RFC 6582): only halve once per
			// window of data. Dup ACKs for losses inside a window we
			// already responded to resume recovery at the current cwnd.
			c.enterRecovery(seqGEQ(c.sndUna, c.recover))
		} else if c.tlpOut && !c.inRecovery && len(seg.SACK) > 0 {
			// The tail probe was SACKed while the hole below it persists:
			// the tail of the flight was genuinely lost, and no further
			// dup ACKs are coming to reach the usual threshold of three.
			c.enterRecovery(seqGEQ(c.sndUna, c.recover))
		} else if c.inRecovery {
			c.markLost(c.highestSacked())
			c.pumpLost()
			c.pump()
		}
		return
	}
	// Window update.
	c.peerWnd = seg.Wnd
	if c.peerWnd > 0 {
		c.persistTimer.Stop()
		c.pump()
	}
}

func (c *Conn) processData(seg *tcpSegment) {
	seq := seg.Seq
	data := seg.Payload
	if seg.has(flagFIN) {
		c.peerFin = true
		c.peerFinSeq = seg.Seq + uint32(len(data))
	}
	if len(data) > 0 {
		end := seq + uint32(len(data))
		switch {
		case seqLEQ(end, c.rcvNxt):
			// Entirely old: re-ACK.
		case seqGT(seq, c.rcvNxt):
			// Out of order: stash, dup-ACK.
			c.stashOOO(seq, data, false)
		default:
			if seqLT(seq, c.rcvNxt) {
				data = data[c.rcvNxt-seq:]
				seq = c.rcvNxt
			}
			c.admit(data)
			c.drainOOO()
		}
	}
	c.consumeFin()
	c.sendACK()
	c.readWq.Broadcast()
}

// admit appends in-order data to the receive buffer.
func (c *Conn) admit(data []byte) {
	free := c.stack.cfg.RecvBuf - len(c.rcvBuf)
	if len(data) > free {
		data = data[:free] // peer overran our advertised window
	}
	c.rcvBuf = append(c.rcvBuf, data...)
	c.rcvNxt += uint32(len(data))
	c.BytesIn += uint64(len(data))
}

// stashOOO stores an out-of-order segment, keeping the list sorted and
// coalesced so it doubles as the SACK block set.
func (c *Conn) stashOOO(seq uint32, data []byte, fin bool) {
	if len(c.ooo) >= 256 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.ooo = append(c.ooo, oooSeg{seq: seq, data: cp, fin: fin})
	sort.Slice(c.ooo, func(i, j int) bool { return seqLT(c.ooo[i].seq, c.ooo[j].seq) })
	// Coalesce overlapping/adjacent runs.
	merged := c.ooo[:1]
	for _, s := range c.ooo[1:] {
		last := &merged[len(merged)-1]
		lastEnd := last.seq + uint32(len(last.data))
		if seqLEQ(s.seq, lastEnd) {
			sEnd := s.seq + uint32(len(s.data))
			if seqGT(sEnd, lastEnd) {
				last.data = append(last.data, s.data[lastEnd-s.seq:]...)
			}
			last.fin = last.fin || s.fin
		} else {
			merged = append(merged, s)
		}
	}
	c.ooo = merged
}

func (c *Conn) drainOOO() {
	changed := true
	for changed {
		changed = false
		for i, s := range c.ooo {
			end := s.seq + uint32(len(s.data))
			if seqLEQ(end, c.rcvNxt) {
				c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
				changed = true
				break
			}
			if seqLEQ(s.seq, c.rcvNxt) {
				c.admit(s.data[c.rcvNxt-s.seq:])
				c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
				changed = true
				break
			}
		}
	}
}

// consumeFin advances past the peer's FIN once all data before it has
// been received, and drives the close state machine.
func (c *Conn) consumeFin() {
	if !c.peerFin || c.peerFinDone || c.rcvNxt != c.peerFinSeq {
		return
	}
	c.rcvNxt++
	c.peerFinDone = true
	switch c.state {
	case stateEstablished:
		c.setState(stateCloseWait)
	case stateFinWait1:
		if c.finAcked {
			c.enterTimeWait()
		} else {
			c.setState(stateClosing)
		}
	case stateFinWait2:
		c.enterTimeWait()
	}
	c.readWq.Broadcast()
}

// maybeFinish advances close states that were waiting on our FIN's ACK.
func (c *Conn) maybeFinish() {
	if !c.finAcked {
		return
	}
	switch c.state {
	case stateFinWait1:
		if c.peerFinDone {
			c.enterTimeWait()
		} else {
			c.setState(stateFinWait2)
		}
	case stateClosing:
		c.enterTimeWait()
	case stateLastAck:
		c.remove()
	}
}

func (c *Conn) enterTimeWait() {
	c.setState(stateTimeWait)
	c.rtxTimer.Stop()
	c.tlpTimer.Stop()
	if c.timeWaitEv != nil {
		c.stack.eng.Cancel(c.timeWaitEv)
	}
	c.timeWaitEv = c.stack.eng.Schedule(timeWait, c.remove)
}

func (c *Conn) setState(s connState) { c.state = s }

// remove deletes the connection from the stack's demux table.
func (c *Conn) remove() {
	c.setState(stateClosed)
	c.rtxTimer.Stop()
	c.tlpTimer.Stop()
	c.persistTimer.Stop()
	delete(c.stack.conns, c.key)
	c.readWq.Broadcast()
	c.writeWq.Broadcast()
	c.connWq.Broadcast()
}

// teardown aborts with an error.
func (c *Conn) teardown(err error) {
	if c.state == stateClosed {
		return
	}
	c.err = err
	c.remove()
}

func (c *Conn) updateRTT(r sim.Duration) {
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// SRTT exposes the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Duration { return c.srtt }

// ---- application interface ----

// Read copies received bytes into buf, blocking until data, EOF or error.
func (c *Conn) Read(p *sim.Proc, buf []byte) (int, error) {
	for {
		if len(c.rcvBuf) > 0 {
			n := copy(buf, c.rcvBuf)
			c.rcvBuf = c.rcvBuf[n:]
			// Window update if we freed a meaningful amount.
			if adv := c.advWnd(); adv >= uint32(c.mss) && adv-c.lastAdvWnd >= uint32(c.mss) && c.state != stateClosed {
				c.sendACK()
			}
			return n, nil
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.peerFinDone {
			return 0, io.EOF
		}
		if c.state == stateClosed {
			return 0, ErrConnClosed
		}
		if !c.readWq.Wait(p) {
			return 0, ErrConnClosed
		}
	}
}

// ReadFull reads exactly len(buf) bytes unless EOF or error intervenes.
func (c *Conn) ReadFull(p *sim.Proc, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(p, buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Write queues data on the stream, blocking while the send buffer is
// full. It returns the number of bytes accepted.
func (c *Conn) Write(p *sim.Proc, data []byte) (int, error) {
	written := 0
	for written < len(data) {
		if c.err != nil {
			return written, c.err
		}
		if c.sndClosed || c.state == stateClosed {
			return written, ErrConnClosed
		}
		space := c.stack.cfg.SendBuf - len(c.sndBuf)
		if space <= 0 {
			if !c.writeWq.Wait(p) {
				return written, ErrConnClosed
			}
			continue
		}
		n := len(data) - written
		if n > space {
			n = space
		}
		c.sndBuf = append(c.sndBuf, data[written:written+n]...)
		written += n
		c.pump()
	}
	return written, nil
}

// Close half-closes the stream: queued data is delivered, then a FIN.
// Reading remains possible until the peer closes.
func (c *Conn) Close() {
	if c.sndClosed || c.state == stateClosed {
		return
	}
	c.sndClosed = true
	c.pump()
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.sendSeg(&tcpSegment{Flags: flagRST | flagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
	c.teardown(ErrConnReset)
}

// Err returns the terminal error, if any.
func (c *Conn) Err() error { return c.err }

// Diagnostic accessors used by tests and the benchmark harness.

// Ssthresh exposes the slow-start threshold.
func (c *Conn) Ssthresh() float64 { return c.ssthresh }

// Pipe exposes the estimated bytes in flight.
func (c *Conn) Pipe() int { return c.pipe() }

// Flight exposes sndNxt-sndUna.
func (c *Conn) Flight() int { return int(c.flight()) }

// InRecovery reports whether fast recovery is active.
func (c *Conn) InRecovery() bool { return c.inRecovery }
