package ipstack

import (
	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// arpCache resolves virtual IPs to MACs on the flat L2 segment, queueing
// outbound packets during resolution and retrying requests.
type arpCache struct {
	stack   *Stack
	entries map[netsim.IP]*arpEntry
	pending map[netsim.IP]*arpPending

	// Stats.
	Requests, Replies uint64
	Failures          uint64
}

type arpEntry struct {
	mac  ether.MAC
	seen sim.Time
}

type arpPending struct {
	queue [][]byte // marshalled IPv4 packets awaiting the MAC
	tries int
	timer *sim.Timer
}

const (
	arpRetryInterval = sim.Second
	arpMaxTries      = 3
	arpMaxQueue      = 64
)

func newARPCache(s *Stack) *arpCache {
	return &arpCache{
		stack:   s,
		entries: make(map[netsim.IP]*arpEntry),
		pending: make(map[netsim.IP]*arpPending),
	}
}

// lookup returns a fresh cache entry's MAC.
func (a *arpCache) lookup(ip netsim.IP) (ether.MAC, bool) {
	e, ok := a.entries[ip]
	if !ok {
		return ether.MAC{}, false
	}
	if a.stack.eng.Now().Sub(e.seen) > a.stack.cfg.ARPTimeout {
		delete(a.entries, ip)
		return ether.MAC{}, false
	}
	return e.mac, true
}

// sendResolved transmits an IPv4 packet, resolving the MAC first if
// needed.
func (a *arpCache) sendResolved(dst netsim.IP, ipPkt []byte) {
	if mac, ok := a.lookup(dst); ok {
		a.stack.sendFrame(&ether.Frame{Dst: mac, Src: a.stack.mac, Type: ether.TypeIPv4, Payload: ipPkt})
		return
	}
	p, inFlight := a.pending[dst]
	if !inFlight {
		p = &arpPending{}
		a.pending[dst] = p
		a.request(dst, p)
	}
	if len(p.queue) < arpMaxQueue {
		p.queue = append(p.queue, ipPkt)
	} else {
		a.stack.Drops++
	}
}

func (a *arpCache) request(dst netsim.IP, p *arpPending) {
	p.tries++
	a.Requests++
	req := &ether.ARP{
		Op:        ether.ARPRequest,
		SenderMAC: a.stack.mac,
		SenderIP:  a.stack.ip,
		TargetIP:  dst,
	}
	a.stack.sendFrame(&ether.Frame{Dst: ether.Broadcast, Src: a.stack.mac, Type: ether.TypeARP, Payload: req.Marshal()})
	p.timer = sim.NewTimer(a.stack.eng, func() {
		if p.tries >= arpMaxTries {
			a.Failures++
			a.stack.Drops += uint64(len(p.queue))
			delete(a.pending, dst)
			return
		}
		a.request(dst, p)
	})
	p.timer.Reset(arpRetryInterval)
}

// onPacket handles inbound ARP traffic: answers requests for our IP and
// learns bindings from any sender (including gratuitous announcements,
// which is how migrated VMs re-point their peers).
func (a *arpCache) onPacket(f *ether.Frame) {
	pkt, err := ether.UnmarshalARP(f.Payload)
	if err != nil {
		return
	}
	// Learn/refresh the sender binding unconditionally.
	if pkt.SenderIP != 0 {
		a.learn(pkt.SenderIP, pkt.SenderMAC)
	}
	if pkt.Op == ether.ARPRequest && pkt.TargetIP == a.stack.ip && pkt.SenderIP != a.stack.ip {
		reply := &ether.ARP{
			Op:        ether.ARPReply,
			SenderMAC: a.stack.mac,
			SenderIP:  a.stack.ip,
			TargetMAC: pkt.SenderMAC,
			TargetIP:  pkt.SenderIP,
		}
		a.Replies++
		a.stack.sendFrame(&ether.Frame{Dst: pkt.SenderMAC, Src: a.stack.mac, Type: ether.TypeARP, Payload: reply.Marshal()})
	}
}

func (a *arpCache) learn(ip netsim.IP, mac ether.MAC) {
	a.entries[ip] = &arpEntry{mac: mac, seen: a.stack.eng.Now()}
	if p, ok := a.pending[ip]; ok {
		delete(a.pending, ip)
		if p.timer != nil {
			p.timer.Stop()
		}
		for _, pkt := range p.queue {
			a.stack.sendFrame(&ether.Frame{Dst: mac, Src: a.stack.mac, Type: ether.TypeIPv4, Payload: pkt})
		}
	}
}
