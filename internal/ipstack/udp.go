package ipstack

import (
	"fmt"

	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Datagram is a received virtual-UDP datagram.
type Datagram struct {
	From    netsim.Addr
	Payload []byte
}

// UDPSock is a bound virtual UDP socket with a receive queue and both
// callback and blocking receive interfaces.
type UDPSock struct {
	stack   *Stack
	port    uint16
	handler func(Datagram)
	queue   []Datagram
	qcap    int
	wq      sim.WaitQueue
	closed  bool

	// Stats.
	In, Out, QueueDrops uint64
}

// BindUDP binds port (0 = ephemeral). If handler is non-nil it is invoked
// per datagram; otherwise datagrams queue for Recv.
func (s *Stack) BindUDP(port uint16, handler func(Datagram)) (*UDPSock, error) {
	if port == 0 {
		p, err := s.allocPort()
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, busy := s.udpPorts[port]; busy {
		return nil, fmt.Errorf("ipstack %s: UDP port %d in use", s.name, port)
	}
	u := &UDPSock{stack: s, port: port, handler: handler, qcap: 256}
	s.udpPorts[port] = u
	return u, nil
}

// Port returns the bound port.
func (u *UDPSock) Port() uint16 { return u.port }

// Addr returns the socket's full address.
func (u *UDPSock) Addr() netsim.Addr { return netsim.Addr{IP: u.stack.ip, Port: u.port} }

// SendTo emits a datagram. Payloads larger than MTU−28 return an error
// (no fragmentation).
func (u *UDPSock) SendTo(dst netsim.Addr, payload []byte) error {
	if u.closed {
		return fmt.Errorf("ipstack: send on closed socket")
	}
	if len(payload) > u.stack.cfg.MTU-IPHeaderLen-UDPHeaderLen {
		return fmt.Errorf("ipstack: datagram of %d bytes exceeds MTU", len(payload))
	}
	u.Out++
	u.stack.sendIP(dst.IP, ProtoUDP, marshalUDP(u.port, dst.Port, payload))
	return nil
}

// Recv blocks the process until a datagram arrives; ok=false only if the
// wait is interrupted.
func (u *UDPSock) Recv(p *sim.Proc) (Datagram, bool) {
	for len(u.queue) == 0 {
		if u.closed {
			return Datagram{}, false
		}
		if !u.wq.Wait(p) {
			return Datagram{}, false
		}
	}
	d := u.queue[0]
	u.queue = u.queue[1:]
	return d, true
}

// RecvTimeout is Recv with a deadline.
func (u *UDPSock) RecvTimeout(p *sim.Proc, d sim.Duration) (Datagram, bool) {
	if len(u.queue) > 0 {
		dg := u.queue[0]
		u.queue = u.queue[1:]
		return dg, true
	}
	deadline := p.Now().Add(d)
	fired := false
	timer := sim.NewTimer(p.Engine(), func() { fired = true; p.Interrupt() })
	timer.Reset(d)
	defer func() {
		timer.Stop()
		if fired {
			// Our own deadline interrupt, not an external stop: consume
			// it so later waits on this proc are unaffected.
			p.ClearInterrupt()
		}
	}()
	for len(u.queue) == 0 {
		if !u.wq.Wait(p) {
			return Datagram{}, false
		}
		if p.Now() >= deadline && len(u.queue) == 0 {
			return Datagram{}, false
		}
	}
	dg := u.queue[0]
	u.queue = u.queue[1:]
	return dg, true
}

// Close releases the port.
func (u *UDPSock) Close() {
	if u.closed {
		return
	}
	u.closed = true
	delete(u.stack.udpPorts, u.port)
	u.wq.Broadcast()
}

func (s *Stack) onUDP(h *ipv4Header, payload []byte) {
	uh, data, err := unmarshalUDP(payload)
	if err != nil {
		s.Drops++
		return
	}
	sock, ok := s.udpPorts[uh.Dst]
	if !ok {
		s.Drops++
		return
	}
	sock.In++
	d := Datagram{From: netsim.Addr{IP: h.Src, Port: uh.Src}, Payload: data}
	if sock.handler != nil {
		sock.handler(d)
		return
	}
	if len(sock.queue) >= sock.qcap {
		sock.QueueDrops++
		return
	}
	sock.queue = append(sock.queue, d)
	sock.wq.Signal()
}
